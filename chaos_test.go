package gossip

import (
	"errors"
	"testing"
	"time"
)

// chaosTick keeps chaos runs fast while staying coarse enough for timer
// resolution under -race.
const chaosTick = 500 * time.Microsecond

// TestZeroFaultEquivalence is the satellite-2 check through the public API:
// a FaultTransport with an all-zero plan must leave a run indistinguishable
// from the bare transport — same completion, same informed set per seed, and
// a ledger showing zero injected faults.
func TestZeroFaultEquivalence(t *testing.T) {
	graphs := map[string]*Graph{
		"ringcliques": RingOfCliques(8, 8, 4),
		"dumbbell":    Dumbbell(8, 6),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{1, 42} {
				bare, err := RunLive(g, LivePushPull(0), LiveOptions{Seed: seed, Tick: chaosTick})
				if err != nil {
					t.Fatalf("seed %d bare run: %v", seed, err)
				}
				faulted, err := RunLive(g, LivePushPull(0), LiveOptions{
					Seed:   seed,
					Tick:   chaosTick,
					Faults: &LiveFaultConfig{Seed: seed},
				})
				if err != nil {
					t.Fatalf("seed %d zero-fault run: %v", seed, err)
				}
				if bare.Completed != faulted.Completed {
					t.Errorf("seed %d: completed %v vs %v", seed, bare.Completed, faulted.Completed)
				}
				for u := 0; u < g.N(); u++ {
					if bare.Done[u] != faulted.Done[u] {
						t.Errorf("seed %d node %d: informed %v bare vs %v zero-fault",
							seed, u, bare.Done[u], faulted.Done[u])
					}
				}
				f := faulted.Faults
				if f.InjectedDrops != 0 || f.InjectedDups != 0 || f.Jittered != 0 || f.PartitionDrops != 0 {
					t.Errorf("seed %d: zero plan injected faults: %+v", seed, f.FaultCounts)
				}
			}
		})
	}
}

// TestChaosPushPullRingOfCliques is the acceptance scenario: push-pull on
// the ring of cliques under 10% drop, 5% dup, one partition-heal epoch and a
// permanent crash of one interior node completes among the reachable
// survivors, and a second identical run agrees on the outcome. (The fault
// decisions themselves are pure functions of the fault seed and message
// identity — see TestFaultTransportDeterministicReport in internal/live for
// the byte-identical-report check on a fixed message schedule.)
func TestChaosPushPullRingOfCliques(t *testing.T) {
	g := RingOfCliques(8, 8, 4) // 64 nodes: cliques {0..7}, {8..15}, ...
	var cliqueA, rest []NodeID
	for u := 0; u < g.N(); u++ {
		if u < 8 {
			cliqueA = append(cliqueA, NodeID(u))
		} else {
			rest = append(rest, NodeID(u))
		}
	}
	const crashed = 12 // interior node of the second clique
	run := func() LiveResult {
		res, err := RunLive(g, LivePushPull(0), LiveOptions{
			Seed: 7,
			Tick: chaosTick,
			Faults: &LiveFaultConfig{
				Seed:      1234,
				Drop:      0.10,
				Duplicate: 0.05,
				Partitions: []LivePartition{
					{From: 5, Until: 40, Edges: LiveCutBetween(g, cliqueA, rest)},
				},
			},
			Crashes: map[NodeID]LiveCrash{crashed: {At: 1}},
		})
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return res
	}
	r1 := run()
	if !r1.Completed {
		t.Fatal("chaos run did not complete among reachable survivors")
	}
	if r1.Done[crashed] {
		t.Error("permanently crashed node reported informed")
	}
	if !r1.Crashed[crashed] {
		t.Error("crashed node not marked crashed")
	}
	for u := 0; u < g.N(); u++ {
		if u != crashed && !r1.Done[u] {
			t.Errorf("survivor %d not informed", u)
		}
	}
	if r1.Faults.Dropped() == 0 || r1.Faults.InjectedDups == 0 {
		t.Errorf("chaos plan injected nothing: %+v", r1.Faults.FaultCounts)
	}
	if len(r1.Faults.Partitions) != 1 {
		t.Errorf("partition epoch not echoed in the report: %+v", r1.Faults.Partitions)
	}
	if len(r1.Faults.InformedOverTime) == 0 {
		t.Error("informed-over-time series missing")
	}

	r2 := run()
	if r1.Completed != r2.Completed {
		t.Errorf("identical chaos runs disagree on completion: %v vs %v", r1.Completed, r2.Completed)
	}
	for u := 0; u < g.N(); u++ {
		if r1.Done[u] != r2.Done[u] {
			t.Errorf("identical chaos runs disagree on node %d: %v vs %v", u, r1.Done[u], r2.Done[u])
		}
	}
}

// TestChaosPushPullPropertyCompletes is the satellite-3 property: live
// push-pull with drop <= 0.3 and duplication <= 0.2 still completes on
// connected seeded random graphs — randomized gossip reroutes around loss,
// the robustness the paper's conclusion credits it with.
func TestChaosPushPullPropertyCompletes(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := GNP(24, 0.3, 1, true, seed) // forced connected
		res, err := RunLive(g, LivePushPull(0), LiveOptions{
			Seed: seed,
			Tick: chaosTick,
			Faults: &LiveFaultConfig{
				Seed:        seed * 77,
				Drop:        0.30,
				Duplicate:   0.20,
				JitterTicks: 2,
			},
		})
		if err != nil {
			t.Errorf("seed %d: lossy push-pull failed: %v", seed, err)
			continue
		}
		if !res.Completed {
			t.Errorf("seed %d: lossy push-pull did not complete", seed)
		}
		if res.Faults.InjectedDrops == 0 {
			t.Errorf("seed %d: 30%% drop plan dropped nothing", seed)
		}
	}
}

// TestPartitionRRBroadcastFailsClosed is the other half of satellite 3: RR
// Broadcast runs a fixed schedule through specific spanner edges, so an
// unhealed mid-run partition of the dumbbell bridge must leave it incomplete
// — and it must fail closed (ErrLiveMaxTicks well before the tick budget's worth
// of wall time), not hang.
func TestPartitionRRBroadcastFailsClosed(t *testing.T) {
	g := Dumbbell(4, 2) // 8 nodes, one bridge
	var left, right []NodeID
	for u := 0; u < 4; u++ {
		left = append(left, NodeID(u))
	}
	for u := 4; u < 8; u++ {
		right = append(right, NodeID(u))
	}
	opts := LiveOptions{
		Seed:     3,
		Tick:     chaosTick,
		MaxTicks: 4000,
		Faults: &LiveFaultConfig{
			Seed: 3,
			Partitions: []LivePartition{
				{From: 4, Until: 0, Edges: LiveCutBetween(g, left, right)}, // never heals
			},
		},
	}
	proto, err := LiveRRBroadcast(g, 2, 0, opts)
	if err != nil {
		t.Fatalf("LiveRRBroadcast: %v", err)
	}
	done := make(chan struct{})
	var res LiveResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = RunLive(g, proto, opts)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("partitioned RR broadcast hung instead of failing closed")
	}
	if res.Completed {
		t.Fatal("RR broadcast completed across an unhealed partition")
	}
	if !errors.Is(runErr, ErrLiveMaxTicks) {
		t.Errorf("want ErrLiveMaxTicks, got %v", runErr)
	}
	// The fixed schedule ends long before the tick budget: failing closed
	// means the run stopped at schedule end, not at MaxTicks.
	if res.Metrics.Ticks >= opts.MaxTicks {
		t.Errorf("run burned the whole tick budget (%d): schedule did not fail closed", res.Metrics.Ticks)
	}
	if res.Faults.PartitionDrops == 0 {
		t.Error("partition cut no messages")
	}
}

// TestChaosRRBroadcastFaultFree sanity-checks the live RR descriptor on a
// healthy network: the fixed schedule completes all-to-all dissemination
// just as it does under the round simulator.
func TestChaosRRBroadcastFaultFree(t *testing.T) {
	g := Dumbbell(4, 2)
	opts := LiveOptions{Seed: 3, Tick: chaosTick, MaxTicks: 4000}
	proto, err := LiveRRBroadcast(g, 2, 0, opts)
	if err != nil {
		t.Fatalf("LiveRRBroadcast: %v", err)
	}
	res, err := RunLive(g, proto, opts)
	if err != nil {
		t.Fatalf("fault-free RR run: %v", err)
	}
	if !res.Completed {
		t.Fatal("fault-free RR broadcast did not complete")
	}
	for u := 0; u < g.N(); u++ {
		if !res.Done[u] {
			t.Errorf("node %d missing rumors after RR broadcast", u)
		}
	}
}

// TestChaosCrashRecoveryPublicAPI drives a crash-recovery schedule through
// LiveOptions: the recovering node rejoins with cleared state, is
// re-informed, and counts toward completion.
func TestChaosCrashRecoveryPublicAPI(t *testing.T) {
	g := Clique(6, 1)
	res, err := RunLive(g, LivePushPull(0), LiveOptions{
		Seed:    5,
		Tick:    chaosTick,
		Crashes: map[NodeID]LiveCrash{3: {At: 2, RecoverAt: 12}},
	})
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if !res.Completed {
		t.Fatal("run with a recovering node did not complete")
	}
	if !res.Recovered[3] || res.Crashed[3] || !res.Done[3] {
		t.Errorf("recovery outcome wrong: recovered=%v crashed=%v done=%v",
			res.Recovered[3], res.Crashed[3], res.Done[3])
	}
}
