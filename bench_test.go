// Benchmark harness: one testing.B benchmark per experiment in the
// DESIGN.md §4 index (regenerating each paper claim at quick scale), plus
// micro-benchmarks of the substrates. Rounds are reported as a custom
// metric so `go test -bench` output doubles as a results table.
package gossip

import (
	"fmt"
	"testing"
	"time"

	"gossip/internal/exp"
	"gossip/internal/spanner"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := exp.Run(id, exp.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("experiment %s: empty table", id)
		}
	}
}

// Lower bounds (Section 3).

func BenchmarkExpL4Guessing(b *testing.B)              { benchExperiment(b, "L4") }
func BenchmarkExpL5GuessingRandomP(b *testing.B)       { benchExperiment(b, "L5") }
func BenchmarkExpT6DeltaLowerBound(b *testing.B)       { benchExperiment(b, "T6") }
func BenchmarkExpT7ConductanceLowerBound(b *testing.B) { benchExperiment(b, "T7") }
func BenchmarkExpT8TradeOff(b *testing.B)              { benchExperiment(b, "T8") }
func BenchmarkExpL9Conductance(b *testing.B)           { benchExperiment(b, "L9") }

// Upper bounds (Sections 4–6, Appendix E).

func BenchmarkExpT12PushPull(b *testing.B)      { benchExperiment(b, "T12") }
func BenchmarkExpT14Spanner(b *testing.B)       { benchExperiment(b, "T14") }
func BenchmarkExpL15RRBroadcast(b *testing.B)   { benchExperiment(b, "L15") }
func BenchmarkExpL17EID(b *testing.B)           { benchExperiment(b, "L17") }
func BenchmarkExpT19GeneralEID(b *testing.B)    { benchExperiment(b, "T19") }
func BenchmarkExpT20Unified(b *testing.B)       { benchExperiment(b, "T20") }
func BenchmarkExpL24PathDiscovery(b *testing.B) { benchExperiment(b, "L24") }
func BenchmarkExpDiscovery(b *testing.B)        { benchExperiment(b, "DISC") }

// Ablations (DESIGN.md §5).

func BenchmarkAblationSnapshot(b *testing.B)   { benchExperiment(b, "ABL-DELIVERY") }
func BenchmarkAblationPushOnly(b *testing.B)   { benchExperiment(b, "ABL-PUSHONLY") }
func BenchmarkAblationSpannerK(b *testing.B)   { benchExperiment(b, "ABL-SPANNERK") }
func BenchmarkAblationTree(b *testing.B)       { benchExperiment(b, "ABL-TREE") }
func BenchmarkAblationLocalBcast(b *testing.B) { benchExperiment(b, "ABL-LB") }
func BenchmarkAblationBias(b *testing.B)       { benchExperiment(b, "ABL-BIAS") }

// Extensions (the conclusion's open issues, measured).

func BenchmarkExpFaultTolerance(b *testing.B)    { benchExperiment(b, "FAULT") }
func BenchmarkExpMessageComplexity(b *testing.B) { benchExperiment(b, "MSG") }
func BenchmarkExpL3Reduction(b *testing.B)       { benchExperiment(b, "L3") }
func BenchmarkExpCongestion(b *testing.B)        { benchExperiment(b, "CONG") }
func BenchmarkExpInformedCurve(b *testing.B)     { benchExperiment(b, "CURVE") }
func BenchmarkExpLoadBalance(b *testing.B)       { benchExperiment(b, "LOAD") }
func BenchmarkExpFigure1(b *testing.B)           { benchExperiment(b, "F1") }
func BenchmarkExpFigure2(b *testing.B)           { benchExperiment(b, "F2") }
func BenchmarkExpSocial(b *testing.B)            { benchExperiment(b, "SOCIAL") }
func BenchmarkExpChurn(b *testing.B)             { benchExperiment(b, "CHURN") }
func BenchmarkExpChurnLoss(b *testing.B)         { benchExperiment(b, "CHURN-LOSS") }

// ---- protocol micro-benchmarks on fixed topologies ----

func benchPushPull(b *testing.B, g *Graph) {
	b.Helper()
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		res, err := RunPushPull(g, 0, Options{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		totalRounds += res.Metrics.Rounds
	}
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/op")
}

func BenchmarkPushPullClique256(b *testing.B) { benchPushPull(b, Clique(256, 1)) }

func BenchmarkPushPullRingOfCliques(b *testing.B) { benchPushPull(b, RingOfCliques(16, 16, 8)) }

func BenchmarkPushPullDumbbell(b *testing.B) { benchPushPull(b, Dumbbell(64, 32)) }

func BenchmarkFloodGrid(b *testing.B) {
	g := Grid(16, 16, 3)
	for i := 0; i < b.N; i++ {
		if _, err := RunFlood(g, 0, Options{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalBroadcastDTG(b *testing.B) {
	g := RingOfCliques(4, 8, 4)
	for i := 0; i < b.N; i++ {
		res, err := RunLocalBroadcast(g, 4, Options{Seed: uint64(i) + 1})
		if err != nil || !res.Completed {
			b.Fatalf("err=%v completed=%v", err, res.Completed)
		}
	}
}

func BenchmarkEIDKnownD(b *testing.B) {
	g := RingOfCliques(3, 5, 2)
	d := g.WeightedDiameter()
	for i := 0; i < b.N; i++ {
		res, err := RunEID(g, d, Options{Seed: uint64(i) + 1})
		if err != nil || !res.Completed {
			b.Fatalf("err=%v completed=%v", err, res.Completed)
		}
	}
}

func BenchmarkGeneralEID(b *testing.B) {
	g := Clique(12, 1)
	for i := 0; i < b.N; i++ {
		res, err := RunGeneralEID(g, Options{Seed: uint64(i) + 1})
		if err != nil || !res.Completed {
			b.Fatalf("err=%v completed=%v", err, res.Completed)
		}
	}
}

func BenchmarkPathDiscovery(b *testing.B) {
	g := Clique(10, 1)
	for i := 0; i < b.N; i++ {
		res, err := RunPathDiscovery(g, Options{Seed: uint64(i) + 1})
		if err != nil || !res.Completed {
			b.Fatalf("err=%v completed=%v", err, res.Completed)
		}
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkSpannerBuild(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := GNP(n, 0.2, 1, true, 5)
			for i := 0; i < b.N; i++ {
				if _, err := spanner.Build(g, 4, n, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWeightedConductanceHeuristic(b *testing.B) {
	g := RingOfCliques(8, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WeightedConductance(g, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightedDiameter(b *testing.B) {
	g := RingOfCliques(8, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.WeightedDiameter()
	}
}

// BenchmarkLiveInProc measures a full live push-pull broadcast over the
// in-process channel transport: sharded event-loop wall-clock execution
// with a short tick, reporting protocol ticks alongside ns/op. The wall
// time is dominated by tick duration by design — the interesting outputs
// are the tick and message counts staying flat as scheduling jitter varies.
func BenchmarkLiveInProc(b *testing.B) {
	g := RingOfCliques(4, 8, 4) // 32 nodes
	b.ResetTimer()
	var ticks, msgs int
	for i := 0; i < b.N; i++ {
		res, err := RunLive(g, LivePushPull(0), LiveOptions{
			Seed: uint64(i) + 1,
			Tick: 200 * time.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		ticks += res.Metrics.Ticks
		msgs += res.Metrics.Messages()
	}
	b.ReportMetric(float64(ticks)/float64(b.N), "ticks/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}
