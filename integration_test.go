package gossip

import (
	"fmt"
	"testing"
)

// TestIntegrationMatrix runs every dissemination protocol against every
// graph family and requires completion — the broad compatibility sweep a
// downstream user implicitly relies on.
func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix is long-running")
	}
	families := []struct {
		name string
		g    *Graph
	}{
		{name: "clique", g: Clique(12, 1)},
		{name: "star", g: Star(12, 2)},
		{name: "path", g: Path(10, 3)},
		{name: "cycle", g: Cycle(10, 2)},
		{name: "grid", g: Grid(3, 4, 2)},
		{name: "torus", g: Torus(3, 4, 1)},
		{name: "hypercube", g: Hypercube(3, 2)},
		{name: "tree", g: CompleteBinaryTree(15, 1)},
		{name: "caterpillar", g: Caterpillar(4, 2, 2)},
		{name: "ringcliques", g: RingOfCliques(3, 4, 3)},
		{name: "dumbbell", g: Dumbbell(6, 5)},
		{name: "randreg", g: RandomRegular(14, 4, 2, 7)},
		{name: "gnp", g: GNP(14, 0.3, 1, true, 7)},
		{name: "mixed", g: RandomLatencies(GNP(12, 0.4, 1, true, 9), 1, 5, 9)},
	}
	type proto struct {
		name string
		run  func(g *Graph, d int) (bool, error)
	}
	opts := Options{Seed: 31}
	protos := []proto{
		{name: "pushpull", run: func(g *Graph, d int) (bool, error) {
			r, err := RunPushPull(g, 0, opts)
			return r.Completed, err
		}},
		{name: "flood", run: func(g *Graph, d int) (bool, error) {
			r, err := RunFlood(g, 0, opts)
			return r.Completed, err
		}},
		{name: "dtg", run: func(g *Graph, d int) (bool, error) {
			r, err := RunLocalBroadcast(g, d, opts)
			return r.Completed, err
		}},
		{name: "rr", run: func(g *Graph, d int) (bool, error) {
			r, err := RunRRBroadcast(g, d, 0, opts)
			return r.Completed, err
		}},
		{name: "eid", run: func(g *Graph, d int) (bool, error) {
			r, err := RunEID(g, d, opts)
			return r.Completed, err
		}},
		{name: "generaleid", run: func(g *Graph, d int) (bool, error) {
			r, err := RunGeneralEID(g, opts)
			return r.Completed, err
		}},
		{name: "tseq", run: func(g *Graph, d int) (bool, error) {
			r, err := RunTSequence(g, d, opts)
			return r.Completed, err
		}},
		{name: "pathdiscovery", run: func(g *Graph, d int) (bool, error) {
			r, err := RunPathDiscovery(g, opts)
			return r.Completed, err
		}},
		{name: "discovereid", run: func(g *Graph, d int) (bool, error) {
			r, err := RunDiscoverEID(g, opts)
			return r.Completed, err
		}},
	}
	for _, f := range families {
		d := f.g.WeightedDiameter()
		for _, p := range protos {
			t.Run(fmt.Sprintf("%s/%s", p.name, f.name), func(t *testing.T) {
				completed, err := p.run(f.g, d)
				if err != nil {
					t.Fatalf("%s on %s: %v", p.name, f.name, err)
				}
				if !completed {
					t.Fatalf("%s on %s did not complete", p.name, f.name)
				}
			})
		}
	}
}

// TestDeterminismAcrossProtocols re-runs a fixed scenario twice per protocol
// and requires identical metrics — the reproducibility guarantee.
func TestDeterminismAcrossProtocols(t *testing.T) {
	g := RingOfCliques(3, 5, 2)
	d := g.WeightedDiameter()
	runs := map[string]func() (Metrics, error){
		"pushpull": func() (Metrics, error) {
			r, err := RunPushPull(g, 0, Options{Seed: 77})
			return r.Metrics, err
		},
		"eid": func() (Metrics, error) {
			r, err := RunEID(g, d, Options{Seed: 77})
			return r.Metrics, err
		},
		"generaleid": func() (Metrics, error) {
			r, err := RunGeneralEID(g, Options{Seed: 77})
			return r.Metrics, err
		},
		"pathdiscovery": func() (Metrics, error) {
			r, err := RunPathDiscovery(g, Options{Seed: 77})
			return r.Metrics, err
		},
		"discovereid": func() (Metrics, error) {
			r, err := RunDiscoverEID(g, Options{Seed: 77})
			return r.Metrics, err
		},
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			a, err := run()
			if err != nil {
				t.Fatal(err)
			}
			b, err := run()
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("non-deterministic metrics:\n  first  %+v\n  second %+v", a, b)
			}
		})
	}
}
