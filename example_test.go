package gossip_test

import (
	"fmt"

	"gossip"
)

// The basic workflow: build a latency-weighted network, analyze its
// connectivity, and broadcast.
func Example() {
	g := gossip.RingOfCliques(4, 6, 3)
	wc, err := gossip.WeightedConductance(g, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("critical latency ℓ* = %d\n", wc.EllStar)

	res, err := gossip.RunPushPull(g, 0, gossip.Options{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed = %v\n", res.Completed)
	// Output:
	// critical latency ℓ* = 3
	// completed = true
}

// Building a custom topology edge by edge.
func ExampleNewGraph() {
	g := gossip.NewGraph(3)
	g.MustAddEdge(0, 1, 1)  // fast LAN link
	g.MustAddEdge(1, 2, 10) // slow WAN link
	fmt.Println("diameter:", g.WeightedDiameter())
	// Output:
	// diameter: 11
}

// All-to-all dissemination with known latencies and unknown diameter: every
// node ends holding every rumor, and all nodes terminate in the same round
// (Lemma 18).
func ExampleRunGeneralEID() {
	g := gossip.Clique(8, 2)
	res, err := gossip.RunGeneralEID(g, gossip.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	same := true
	for _, r := range res.TerminatedAt {
		if r != res.TerminatedAt[0] {
			same = false
		}
	}
	fmt.Printf("completed=%v sameRoundTermination=%v\n", res.Completed, same)
	// Output:
	// completed=true sameRoundTermination=true
}

// Fault injection: push-pull completes among the survivors even when nodes
// crash mid-broadcast.
func ExampleOptions_crashes() {
	g := gossip.RingOfCliques(3, 6, 2)
	res, err := gossip.RunPushPull(g, 0, gossip.Options{
		Seed:    5,
		Crashes: map[gossip.NodeID]int{1: 3, 7: 3}, // two interior nodes die at round 3
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("survivors informed:", res.Completed)
	// Output:
	// survivors informed: true
}

// The lower-bound gadget of Theorem 6: constant weighted diameter, yet
// dissemination must pay Ω(Δ) to find the hidden fast edge.
func ExampleNewTheoremSixNetwork() {
	h, err := gossip.NewTheoremSixNetwork(40, 16, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%d Δ=%d D=%d\n", h.G.N(), h.G.MaxDegree(), h.G.WeightedDiameter())
	// Output:
	// n=40 Δ=32 D=5
}
