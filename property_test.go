package gossip

import (
	"testing"
	"testing/quick"
)

// randomConnectedGraph derives a small random weighted graph from a seed.
func randomConnectedGraph(seed uint64) *Graph {
	n := 6 + int(seed%10)
	maxLat := 1 + int(seed%5)
	return RandomLatencies(GNP(n, 0.35, 1, true, seed), 1, maxLat, seed^0x5151)
}

// TestQuickGeneralEIDInvariants quick-checks the Theorem 19 / Lemma 18
// guarantees over random weighted graphs: completion, same-round
// termination, and a final estimate within doubling of the diameter.
func TestQuickGeneralEIDInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running property check")
	}
	f := func(seed uint64) bool {
		g := randomConnectedGraph(seed)
		res, err := RunGeneralEID(g, Options{Seed: seed})
		if err != nil || !res.Completed {
			t.Logf("seed %d: err=%v completed=%v", seed, err, res.Completed)
			return false
		}
		for _, r := range res.TerminatedAt {
			if r != res.TerminatedAt[0] {
				t.Logf("seed %d: termination rounds differ", seed)
				return false
			}
		}
		d := g.WeightedDiameter()
		if res.FinalEstimate >= 4*d && d > 0 {
			t.Logf("seed %d: estimate %d overshoots 4D=%d", seed, res.FinalEstimate, 4*d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickPushPullBeatsLatencyFloor quick-checks Theorem 12's lower
// anchor: push-pull can never finish before the causal floor ⌈ecc/2⌉
// (information travels at most one latency-½ per round one-way), and always
// completes on connected graphs.
func TestQuickPushPullCausalFloor(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnectedGraph(seed)
		res, err := RunPushPull(g, 0, Options{Seed: seed})
		if err != nil || !res.Completed {
			return false
		}
		ecc := 0
		for _, d := range g.Distances(0) {
			if d > ecc {
				ecc = d
			}
		}
		return res.Metrics.Rounds >= (ecc+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickLocalBroadcastVariantsAgree quick-checks that the deterministic
// and randomized local broadcasts produce the same coverage (the knowledge
// sets may differ beyond the required neighbors, but both must cover the
// ℓ-neighborhood).
func TestQuickLocalBroadcastVariantsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running property check")
	}
	f := func(seed uint64) bool {
		g := randomConnectedGraph(seed)
		ell := 1 + int(seed%3)
		a, errA := RunLocalBroadcast(g, ell, Options{Seed: seed})
		b, errB := RunLocalBroadcastRandom(g, ell, Options{Seed: seed})
		if errA != nil || errB != nil || !a.Completed || !b.Completed {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for _, he := range g.Neighbors(u) {
				if he.Latency > ell {
					continue
				}
				if !a.Know[u][he.To] || !b.Know[u][he.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
