package gossip

import (
	"fmt"
	"testing"

	"gossip/internal/check"
)

// TestConformanceMatrix sweeps the engine options (delivery model, crashes,
// bounded in-degree) against the option-insensitive broadcast protocols and
// asserts the model invariants hold in every combination — the engine's
// feature interactions are where regressions hide.
func TestConformanceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running conformance sweep")
	}
	g := RingOfCliques(4, 6, 3)
	crashSet := map[NodeID]int{1: 4, 9: 4} // interior nodes; survivors stay connected
	optionSets := []struct {
		name string
		opts Options
	}{
		{name: "base", opts: Options{Seed: 3}},
		{name: "full-rtt", opts: Options{Seed: 3, FullRTTDelivery: true}},
		{name: "crashes", opts: Options{Seed: 3, Crashes: crashSet}},
		{name: "bounded-indegree", opts: Options{Seed: 3, MaxResponsesPerRound: 2, MaxRounds: 100000}},
		{name: "crashes+bounded", opts: Options{Seed: 3, Crashes: crashSet, MaxResponsesPerRound: 2, MaxRounds: 100000}},
		{name: "nhint", opts: Options{Seed: 3, NHint: 64}},
	}
	protos := []struct {
		name string
		run  func(opts Options) (BroadcastResult, error)
	}{
		{name: "pushpull", run: func(o Options) (BroadcastResult, error) { return RunPushPull(g, 0, o) }},
		{name: "flood", run: func(o Options) (BroadcastResult, error) { return RunFlood(g, 0, o) }},
	}
	for _, p := range protos {
		for _, os := range optionSets {
			t.Run(fmt.Sprintf("%s/%s", p.name, os.name), func(t *testing.T) {
				var rec Recorder
				opts := os.opts
				opts.Trace = rec.Tracer()
				res, err := p.run(opts)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if !res.Completed {
					t.Fatal("broadcast incomplete")
				}
				crashed := func(v NodeID) bool {
					_, ok := opts.Crashes[v]
					return ok
				}
				if err := check.Coverage(res.InformedAt, func(v NodeID) bool { return !crashed(v) }); err != nil {
					t.Error(err)
				}
				// Causality only binds under the split delivery model (the
				// full-RTT variant is strictly slower, so it holds there too).
				if err := check.Causality(g, 0, res.InformedAt); err != nil {
					t.Error(err)
				}
				if err := check.Metrics(res.Metrics); err != nil {
					t.Error(err)
				}
				if err := check.TraceConsistency(rec.Events, opts.FullRTTDelivery); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestConformanceAllToAll sweeps the same options against anti-entropy.
func TestConformanceAllToAll(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running conformance sweep")
	}
	g := RingOfCliques(3, 6, 2)
	for _, opts := range []Options{
		{Seed: 5},
		{Seed: 5, FullRTTDelivery: true},
		{Seed: 5, Crashes: map[NodeID]int{2: 3}},
		{Seed: 5, MaxResponsesPerRound: 1, MaxRounds: 200000},
	} {
		res, err := RunPushPullAllToAll(g, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !res.Completed {
			t.Errorf("opts %+v: anti-entropy did not converge", opts)
		}
		if err := check.Metrics(res.Metrics); err != nil {
			t.Error(err)
		}
	}
}
