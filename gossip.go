// Package gossip is a library for information dissemination in networks
// whose edges have latencies, reproducing "Gossiping with Latencies"
// (Gilbert, Robinson, Sourav; PODC 2017 / arXiv:1611.06343).
//
// The package exposes three layers:
//
//   - Graphs: latency-weighted graphs, standard generators, and the paper's
//     lower-bound gadget constructions (Figures 1–2).
//   - Analysis: weighted conductance φ*, critical latency ℓ* (Definition 2),
//     and the φ_ℓ ladder.
//   - Protocols: one-call runners for every algorithm in the paper —
//     push-pull (Theorem 12), flooding, ℓ-DTG local broadcast (Appendix C),
//     RR Broadcast over an oriented Baswana–Sen spanner (Lemmas 13–16), EID
//     and General EID (Section 5), the T(k) schedule and Path Discovery
//     (Appendix E), latency discovery (Section 4.2), and the unified
//     algorithm (Theorem 20).
//
// Quick start:
//
//	g := gossip.RingOfCliques(8, 8, 4) // 8 cliques of 8, bridges of latency 4
//	res, err := gossip.RunPushPull(g, 0, gossip.Options{Seed: 1})
//	if err != nil { ... }
//	fmt.Println("broadcast completed in", res.Metrics.Rounds, "rounds")
//
// All runs are deterministic for a fixed Options.Seed.
package gossip

import (
	"net"
	"time"

	"gossip/internal/core"
	"gossip/internal/cut"
	"gossip/internal/graph"
	"gossip/internal/live"
	"gossip/internal/member"
	"gossip/internal/par"
	"gossip/internal/sim"
)

// Graph is a connected, undirected graph with integer edge latencies — the
// network model of the paper (Section 1).
type Graph = graph.Graph

// Edge is an undirected latency-weighted edge.
type Edge = graph.Edge

// NodeID identifies a node (0..N-1).
type NodeID = graph.NodeID

// NewGraph returns an empty graph on n nodes; add edges with AddEdge.
func NewGraph(n int) *Graph { return graph.New(n) }

// Generators for standard topologies (uniform latency unless noted).
var (
	// Clique returns the complete graph K_n.
	Clique = graph.Clique
	// Star returns a star with center 0.
	Star = graph.Star
	// Path returns the path 0-1-...-(n-1).
	Path = graph.Path
	// Cycle returns the n-cycle.
	Cycle = graph.Cycle
	// Grid returns the rows×cols grid.
	Grid = graph.Grid
	// GNP returns an Erdős–Rényi graph, optionally forced connected.
	GNP = graph.GNP
	// RingOfCliques returns k cliques of size s joined in a ring by bridges
	// of the given latency — a family with conductance known by design.
	RingOfCliques = graph.RingOfCliques
	// Dumbbell returns two cliques joined by one bridge edge.
	Dumbbell = graph.Dumbbell
	// Torus returns the rows×cols torus.
	Torus = graph.Torus
	// Hypercube returns the 2^dim-node hypercube.
	Hypercube = graph.Hypercube
	// CompleteBinaryTree returns the n-node complete binary tree.
	CompleteBinaryTree = graph.CompleteBinaryTree
	// RandomRegular returns a connected random near-d-regular graph.
	RandomRegular = graph.RandomRegular
	// Caterpillar returns a spine path with pendant leaves per spine node.
	Caterpillar = graph.Caterpillar
	// ChungLu returns a power-law random graph with degree exponent beta and
	// the given expected average degree — the heavy-tailed family the
	// conductance-engine benchmarks run on.
	ChungLu = graph.ChungLu
	// RingChords returns a latency-1 ring overlaid with random chords of
	// heterogeneous latency — O(n·chords) construction, the family the
	// million-node cluster harness generates.
	RingChords = graph.RingChords
	// RandomLatencies re-draws a graph's latencies uniformly from [lo, hi].
	RandomLatencies = graph.RandomLatencies
)

// Lower-bound constructions of Section 3 (see internal/graph for details).
var (
	// NewGadget builds the guessing-game gadget G(P) or G_sym(P) (Figure 1).
	NewGadget = graph.NewGadget
	// NewTheoremSixNetwork builds the Ω(Δ) network H of Theorem 6.
	NewTheoremSixNetwork = graph.NewTheoremSixNetwork
	// NewTheoremSevenNetwork builds the Ω(1/φ+ℓ) network of Theorem 7.
	NewTheoremSevenNetwork = graph.NewTheoremSevenNetwork
	// NewRingNetwork builds the layered ring of Theorem 8 (Figure 2).
	NewRingNetwork = graph.NewRingNetwork
)

// Options configures a protocol run. The zero value is usable.
type Options struct {
	// Seed makes the run reproducible; runs with equal seeds are identical.
	Seed uint64
	// MaxRounds bounds the simulation (0 = a generous default).
	MaxRounds int
	// NHint is the polynomial upper bound on the network size known to the
	// nodes (Section 5.1); 0 means the exact size.
	NHint int
	// FullRTTDelivery switches the engine to the no-pipelining delivery
	// ablation (request and response both arrive ℓ rounds after initiation).
	FullRTTDelivery bool
	// Crashes schedules fail-stop node failures: Crashes[v] = r crashes
	// node v at round r. Broadcast runners complete when all *surviving*
	// nodes are informed.
	Crashes map[NodeID]int
	// MaxResponsesPerRound bounds how many requests a node answers per round
	// (0 = unlimited) — the bounded in-degree model the paper's conclusion
	// raises. Excess requests queue FIFO.
	MaxResponsesPerRound int
	// Trace, when non-nil, receives every engine event (initiations,
	// deliveries, crashes). See Recorder for a collecting implementation.
	Trace Tracer
}

// Tracer receives engine events during a run.
type Tracer = sim.Tracer

// TraceEvent is one observable engine event.
type TraceEvent = sim.TraceEvent

// Recorder collects trace events for inspection.
type Recorder = sim.Recorder

func (o Options) simConfig() sim.Config {
	return sim.Config{
		Seed:                 o.Seed,
		MaxRounds:            o.MaxRounds,
		NHint:                o.NHint,
		FullRTTDelivery:      o.FullRTTDelivery,
		Crashes:              o.Crashes,
		MaxResponsesPerRound: o.MaxResponsesPerRound,
		Trace:                o.Trace,
	}
}

// Metrics aggregates the cost of a run: rounds, messages, bytes, edge
// activations.
type Metrics = sim.Metrics

// BroadcastResult reports a single-source broadcast.
type BroadcastResult = core.BroadcastResult

// AllToAllResult reports an all-to-all dissemination run.
type AllToAllResult = core.AllToAllResult

// LocalBroadcastResult reports an ℓ-DTG local broadcast run.
type LocalBroadcastResult = core.LocalBroadcastResult

// RRBroadcastResult reports a standalone RR Broadcast run.
type RRBroadcastResult = core.RRBroadcastResult

// UnifiedResult reports the unified algorithm of Theorem 20.
type UnifiedResult = core.UnifiedResult

// RunPushPull broadcasts from source with the classical push-pull random
// phone call protocol. Latencies need not be known; completion takes
// O((ℓ*/φ*)·log n) rounds whp (Theorem 12).
func RunPushPull(g *Graph, source NodeID, opts Options) (BroadcastResult, error) {
	return core.PushPull(g, source, core.ModePushPull, opts.simConfig())
}

// RunPushOnly broadcasts with the pull direction disabled (the footnote-2
// baseline that needs Ω(nD) on a star).
func RunPushOnly(g *Graph, source NodeID, opts Options) (BroadcastResult, error) {
	return core.PushPull(g, source, core.ModePushOnly, opts.simConfig())
}

// RunFlood broadcasts from source by deterministic flooding: each informed
// node contacts each neighbor once.
func RunFlood(g *Graph, source NodeID, opts Options) (BroadcastResult, error) {
	return core.Flood(g, source, opts.simConfig())
}

// RunLocalBroadcast solves ℓ-local broadcast with the deterministic ℓ-DTG
// protocol of Appendix C in O(ℓ·log² n) rounds: every node learns the
// rumors of all neighbors connected by edges of latency <= ell.
func RunLocalBroadcast(g *Graph, ell int, opts Options) (LocalBroadcastResult, error) {
	return core.LocalBroadcastDTG(g, ell, opts.simConfig())
}

// RunPushPullAllToAll runs the all-to-all random phone call protocol
// (anti-entropy): every node ends with every surviving node's rumor; no
// latency knowledge or schedules needed, so it is robust to crashes.
func RunPushPullAllToAll(g *Graph, opts Options) (AllToAllResult, error) {
	return core.PushPullAllToAll(g, opts.simConfig())
}

// RunLocalBroadcastRandom solves ℓ-local broadcast with the randomized
// strategy (each round, exchange with a random not-yet-heard ℓ-neighbor) —
// the ablation counterpart of the deterministic ℓ-DTG.
func RunLocalBroadcastRandom(g *Graph, ell int, opts Options) (LocalBroadcastResult, error) {
	return core.LocalBroadcastRandom(g, ell, opts.simConfig())
}

// RunRRBroadcast builds an oriented spanner of the latency-<=k subgraph and
// runs RR Broadcast (Algorithm 2) for the Lemma 15 schedule. With k >= D it
// solves all-to-all dissemination in O(D·log² n) rounds (Corollary 16).
// spannerK overrides the Baswana–Sen parameter (0 = ⌈log₂ n⌉).
func RunRRBroadcast(g *Graph, k, spannerK int, opts Options) (RRBroadcastResult, error) {
	return core.RRBroadcast(g, k, spannerK, opts.simConfig())
}

// RunEID solves all-to-all dissemination with known latencies and known
// weighted diameter D in O(D·log³ n) rounds (Lemma 17).
func RunEID(g *Graph, d int, opts Options) (AllToAllResult, error) {
	return core.EID(g, d, opts.simConfig())
}

// RunGeneralEID solves all-to-all dissemination with known latencies and
// unknown diameter via guess-and-double with termination detection
// (Algorithm 4, Theorem 19); all nodes terminate in the same round
// (Lemma 18).
func RunGeneralEID(g *Graph, opts Options) (AllToAllResult, error) {
	return core.GeneralEID(g, opts.simConfig())
}

// RunTSequence solves all-to-all dissemination by executing the recursive
// T(k) schedule of Appendix E for the smallest power of two k >= d.
func RunTSequence(g *Graph, d int, opts Options) (AllToAllResult, error) {
	return core.TSequence(g, d, opts.simConfig())
}

// RunPathDiscovery solves all-to-all dissemination with unknown diameter
// using the Path Discovery algorithm (Appendix E, Algorithm 6) in
// O(D·log² n·log D) rounds.
func RunPathDiscovery(g *Graph, opts Options) (AllToAllResult, error) {
	return core.PathDiscovery(g, opts.simConfig())
}

// RunDiscoverEID solves all-to-all dissemination when latencies are NOT
// known: nodes probe to discover adjacent latencies (Section 4.2) and run
// EID over the discovered subgraph, doubling the budget until the
// termination check passes. O((D+Δ)·log³ n) rounds.
func RunDiscoverEID(g *Graph, opts Options) (AllToAllResult, error) {
	return core.DiscoverEID(g, opts.simConfig())
}

// TreeBroadcastResult reports a shortest-path-tree broadcast run.
type TreeBroadcastResult = core.TreeBroadcastResult

// RunTreeBroadcast solves all-to-all dissemination over the shortest-path
// tree rooted at root — the naive baseline whose unbounded fan-out motivates
// the spanner's O(log n) orientation (see the ABL-TREE experiment).
func RunTreeBroadcast(g *Graph, root NodeID, opts Options) (TreeBroadcastResult, error) {
	return core.TreeBroadcast(g, root, opts.simConfig())
}

// RunUnified runs the combined algorithm of Theorem 20: push-pull
// interleaved with the spanner-based algorithm (General EID when latencies
// are known, the discovery variant otherwise); completion is twice the
// faster component's solo time.
func RunUnified(g *Graph, source NodeID, knownLatencies bool, opts Options) (UnifiedResult, error) {
	return core.Unified(g, source, knownLatencies, opts.simConfig())
}

// ---- Live runtime ----
//
// The functions above run protocols inside the deterministic lockstep round
// simulator. The live runtime below executes the *same* protocol state
// machines over real concurrent transports, multiplexing hosted nodes onto a
// sharded event loop (O(shards) goroutines and timers, not O(nodes)) and
// mapping each edge latency to an actual wall-clock delay (see
// internal/live). It is the bridge from the paper's model to a deployed
// gossip system.

// DefaultLiveTick is the default wall-clock duration of one live round.
const DefaultLiveTick = live.DefaultTick

// LiveProtocol describes a protocol runnable on the live runtime: a
// per-node handler factory plus the node-local completion goal.
type LiveProtocol = live.Protocol

// LiveTransport moves messages between live nodes; see NewLiveTCPTransport
// for the multi-process implementation. RunLive builds an in-process
// channel transport automatically.
type LiveTransport = live.Transport

// LiveMetrics aggregates the cost of a live run (ticks, messages, bytes,
// wall time); Sim() converts it to the simulator's Metrics shape.
type LiveMetrics = live.Metrics

// LiveResult reports a live run, including its fault ledger (Faults) and
// per-node crash/recovery outcomes.
type LiveResult = live.Result

// LiveCrash schedules a crash-recovery epoch for one node: fail-stop at tick
// At; if RecoverAt > 0, rejoin at that tick with cleared protocol state.
// RecoverAt == 0 means the crash is permanent.
type LiveCrash = live.CrashPlan

// LiveFaultConfig configures deterministic fault injection for a live run:
// message drop and duplication probabilities, latency jitter, and scheduled
// link partitions. Every fault decision is a pure function of (Seed, message
// identity), so a fault plan replays identically across runs.
type LiveFaultConfig = live.FaultConfig

// LivePartition cuts a set of edges during a tick window (see LiveCutBetween
// for deriving the edge set from a node bipartition).
type LivePartition = live.Partition

// LiveFaultCounts aggregates fault accounting across the transport stack;
// Dropped() totals losses from every cause.
type LiveFaultCounts = live.FaultCounts

// LiveOverloadCounts is the named ledger of everything a live transport's
// overload protection shed, refused, or trimmed: bounded-queue sheds,
// membership backpressure, dead-peer flushes, and circuit-breaker activity.
type LiveOverloadCounts = live.OverloadCounts

// LiveDrainReport summarizes a graceful transport drain: what flushed, what
// the deadline abandoned, and whether the drain finished clean.
type LiveDrainReport = live.DrainReport

// LiveDrainer is implemented by transports supporting graceful shutdown;
// the TCP and channel transports and both chaos decorators implement it.
type LiveDrainer = live.Drainer

// LiveNemesis is the staged chaos orchestrator: a transport decorator that
// schedules fault phases — asymmetric partitions, flapping links, latency
// ramps, loss bursts — over tick windows, deterministically per seed.
type LiveNemesis = live.Nemesis

// LiveNemesisPhase is one staged fault epoch of a LiveNemesis.
type LiveNemesisPhase = live.NemesisPhase

// LiveNemesisReport is one phase's fault ledger.
type LiveNemesisReport = live.NemesisPhaseReport

// NewLiveNemesis wraps a transport with a staged chaos schedule; seed drives
// the loss draws and tick scales the latency ramps (0 = the default tick).
func NewLiveNemesis(inner LiveTransport, seed uint64, tick time.Duration, phases []LiveNemesisPhase) *LiveNemesis {
	return live.NewNemesis(inner, seed, tick, phases)
}

// LiveVerifyRecovery asserts the post-heal invariants of a chaos run: the
// run completed, every survivor is informed, and no false dead declaration
// survived. It returns nil when the cluster fully recovered.
func LiveVerifyRecovery(res LiveResult, survivors []NodeID) error {
	return live.VerifyRecovery(res, survivors)
}

// LiveFaultReport is the fault ledger of a live run: counters, partition
// epochs, and the informed-fraction-over-time trajectory.
type LiveFaultReport = live.FaultReport

// LiveFaultTransport decorates any LiveTransport with seeded fault
// injection; see NewLiveFaultTransport.
type LiveFaultTransport = live.FaultTransport

// NewLiveFaultTransport wraps a transport with the given fault plan. Most
// callers can set LiveOptions.Faults instead and let RunLive wrap for them;
// use this directly to stack faults over a custom transport arrangement.
func NewLiveFaultTransport(inner LiveTransport, cfg LiveFaultConfig) *LiveFaultTransport {
	return live.NewFaultTransport(inner, cfg)
}

// LiveCutBetween returns the IDs of all edges between node sets a and b —
// the cut's edge set, ready for LivePartition.Edges.
func LiveCutBetween(g *Graph, a, b []NodeID) []int {
	return live.CutBetween(g, a, b)
}

// ErrLiveMaxTicks reports that a live run stopped with every hosted node
// halted — tick budget spent or schedule ended — before the protocol's goal
// was reached. This is the fail-closed outcome: a fixed-schedule protocol
// whose window was cut by a fault surfaces this error instead of hanging.
var ErrLiveMaxTicks = live.ErrMaxTicks

// LiveOptions configures a live run. The zero value is usable.
type LiveOptions struct {
	// Seed makes per-node randomness reproducible and identical to a
	// simulator run with the same seed.
	Seed uint64
	// Tick is the wall-clock duration of one protocol round (0 = 1ms).
	// An edge of latency ℓ delays a request by ⌈ℓ/2⌉ ticks and its
	// response by ⌊ℓ/2⌋, as in the simulator.
	Tick time.Duration
	// MaxTicks bounds the run (0 = a generous default).
	MaxTicks int
	// NHint is the polynomial size bound known to nodes (0 = exact).
	NHint int
	// Crashes schedules crash-recovery epochs: Crashes[v] halts node v at
	// tick At (it stops ticking and drops messages unanswered) and, when
	// RecoverAt is set, rejoins it there with cleared state. Completion is
	// defined among reachable survivors: permanently crashed nodes don't
	// count; recovering nodes do.
	Crashes map[NodeID]LiveCrash
	// Faults, when non-nil, wraps the run's transport in a
	// LiveFaultTransport injecting the configured chaos (drops, dups,
	// jitter, partitions); the resulting ledger lands in LiveResult.Faults.
	Faults *LiveFaultConfig
	// Nodes restricts this runtime to a subset of the graph's nodes (nil =
	// all) — the multi-process deployment case; see RunLiveTransport.
	Nodes []NodeID
	// Linger keeps serving peers' requests this long after local
	// completion, so slower runtimes in a cluster can still pull from us.
	Linger time.Duration
	// Membership, when non-nil, runs a SWIM failure detector on every
	// hosted node: nodes bootstrap from a seed peer list, probe each other
	// over the run's transport, and completion counts only members
	// currently believed alive. See LiveMembership.
	Membership *LiveMembership
	// Interrupt, when non-nil, requests a graceful stop when it becomes
	// readable: hosted nodes broadcast a membership leave, serve through a
	// short grace window, and the run returns with Interrupted set. Pair it
	// with the transport's Drain for a full graceful shutdown.
	Interrupt <-chan struct{}
	// DrainTicks is the post-interrupt grace period in ticks (0 = default).
	DrainTicks int
	// Shards is the number of event-loop workers hosted nodes are
	// multiplexed onto (0 = one per available CPU core, and never more than
	// the hosted node count). Goroutine and timer cost scale with shards,
	// not nodes.
	Shards int
	// MailboxCap bounds each shard's mailbox, in posts (0 = a protective
	// default, negative = unbounded). Overflowing gossip posts are shed —
	// and locally delivered messages have no retransmit layer, so
	// repair-free protocols never recover them; bulk runs on dedicated
	// hardware should lift the cap and buffer the frontier in memory.
	MailboxCap int
}

func (o LiveOptions) liveOptions() live.Options {
	return live.Options{
		Seed:       o.Seed,
		Tick:       o.Tick,
		MaxTicks:   o.MaxTicks,
		NHint:      o.NHint,
		Nodes:      o.Nodes,
		Crashes:    o.Crashes,
		Linger:     o.Linger,
		Membership: o.Membership,
		Interrupt:  o.Interrupt,
		DrainTicks: o.DrainTicks,
		Shards:     o.Shards,
		MailboxCap: o.MailboxCap,
	}
}

// faultWrap applies o.Faults to tr, defaulting the fault plan's tick scale
// to the run's tick.
func (o LiveOptions) faultWrap(tr LiveTransport) LiveTransport {
	if o.Faults == nil {
		return tr
	}
	cfg := *o.Faults
	if cfg.Tick <= 0 {
		cfg.Tick = o.Tick
	}
	return live.NewFaultTransport(tr, cfg)
}

// LiveMembership configures SWIM-style dynamic membership for a live run:
// the seed peer list nodes bootstrap from, the probe/suspicion timing knobs,
// and the per-packet piggyback budget. Zero fields take the defaults of
// internal/member; see docs/ALGORITHMS.md for the state machine.
type LiveMembership = live.MembershipConfig

// MemberState is a member's health in a node's local view: MemberAlive,
// MemberSuspect, or MemberDead.
type MemberState = member.State

// Membership states, in escalation order. Only a refutation (an alive record
// with a strictly higher incarnation) revives a suspected or dead member.
const (
	MemberAlive   = member.Alive
	MemberSuspect = member.Suspect
	MemberDead    = member.Dead
)

// MemberUpdate is one membership delta: node v in a state at an incarnation.
// LiveResult.Members reports each node's final table as a sorted slice of
// these.
type MemberUpdate = member.Update

// MemberEvent is one local membership view transition, the unit of the event
// logs in LiveResult.MemberEvents (recorded under LiveMembership.Record).
type MemberEvent = member.Event

// MemberConfig is the detector tuning used by the deterministic membership
// driver (MemberCluster); LiveMembership lowers to it for live runs.
type MemberConfig = member.Config

// MemberCluster is the deterministic lockstep membership driver: the same
// SWIM state machines the live runtime runs, driven tick-by-tick with
// repeatable packet schedules — the tool behind the churn experiments and
// the byte-identical event-log tests.
type MemberCluster = member.Cluster

// NewMemberCluster builds an n-node lockstep membership cluster; nil seedsOf
// bootstraps every node from node 0 (the single-seed join topology).
func NewMemberCluster(n int, cfg MemberConfig, seedsOf func(v int) []int) *MemberCluster {
	return member.NewCluster(n, cfg, seedsOf)
}

// LivePushPull returns the live protocol for push-pull broadcast from
// source — the identical state machine RunPushPull drives in the simulator.
func LivePushPull(source NodeID) LiveProtocol {
	return core.PushPullLive(source, core.ModePushPull)
}

// LiveFlood returns the live protocol for deterministic flooding.
func LiveFlood(source NodeID) LiveProtocol {
	return core.FloodLive(source)
}

// LiveRRBroadcast returns the live protocol for RR Broadcast over an
// oriented spanner of the latency-<=k subgraph — the same fixed-schedule
// state machine RunRRBroadcast drives in the simulator. The seed and nHint
// must come from the run's LiveOptions so every process builds the identical
// spanner. Unlike push-pull, the fixed schedule does not reroute around
// faults: under partitions or crashes it fails closed (Completed=false)
// rather than self-healing.
func LiveRRBroadcast(g *Graph, k, spannerK int, opts LiveOptions) (LiveProtocol, error) {
	return core.RRBroadcastLive(g, k, spannerK, opts.NHint, opts.Seed)
}

// RunLive executes a protocol on the live wall-clock runtime over an
// in-process channel transport hosting every node: a sharded event loop,
// real latency delays, same seeded randomness as the simulator.
func RunLive(g *Graph, proto LiveProtocol, opts LiveOptions) (LiveResult, error) {
	tr := opts.faultWrap(live.NewChanTransport(g.N(), 0))
	defer tr.Close()
	o := opts.liveOptions()
	o.Nodes = nil // the in-process transport hosts everyone
	return live.Run(g, proto, tr, o)
}

// RunLiveTransport executes a protocol on the live runtime over a
// caller-supplied transport, hosting only opts.Nodes (nil = all). This is
// the multi-process entry point: each process hosts a node subset behind a
// NewLiveTCPTransport and the cluster jointly executes the protocol. When
// opts.Faults is set, the transport is wrapped in a LiveFaultTransport for
// the run. The caller keeps ownership of the transport and must Close it
// after the run (the wrapper closes with it).
func RunLiveTransport(g *Graph, proto LiveProtocol, tr LiveTransport, opts LiveOptions) (LiveResult, error) {
	return live.Run(g, proto, opts.faultWrap(tr), opts.liveOptions())
}

// LiveTCPTransport is the multi-process transport: length-prefixed binary
// frames over TCP (JSON lines behind SetWireFormat(LiveWireJSON)), batched
// writes, one listener per process.
type LiveTCPTransport = live.TCPTransport

// LiveWireFormat selects the TCP transport's frame encoding; receivers
// auto-detect the sender's format per connection, so daemons with different
// settings interoperate.
type LiveWireFormat = live.WireFormat

const (
	// LiveWireBinary is the compact varint frame format (the default).
	LiveWireBinary = live.WireBinary
	// LiveWireJSON is the legacy JSON line format, kept for debugging and
	// wire-level inspection (gossipd -wire json).
	LiveWireJSON = live.WireJSON
)

// ParseLiveWireFormat parses a wire format name ("binary" or "json"), as
// accepted by the gossipd -wire flag.
func ParseLiveWireFormat(s string) (LiveWireFormat, error) {
	return live.ParseWireFormat(s)
}

// NewLiveTCPTransport returns a TCP transport listening on listenAddr and
// hosting the given nodes; map the remaining nodes to their processes'
// addresses with SetPeers before running. See cmd/gossipd for the CLI.
func NewLiveTCPTransport(listenAddr string, local []NodeID) (*LiveTCPTransport, error) {
	return live.NewTCPTransport(listenAddr, local, 0)
}

// NewLiveTCPTransportFromListener is NewLiveTCPTransport over an
// already-bound listener, so a supervisor can reserve ports race-free and
// hand each daemon its socket (see cmd/gossipctl's fd-passing launch).
func NewLiveTCPTransportFromListener(ln net.Listener, local []NodeID) (*LiveTCPTransport, error) {
	return live.NewTCPTransportFromListener(ln, local, 0)
}

// NewLiveUnixTransport returns a stream transport listening on a unix domain
// socket at path — the same wire format and batching as TCP without the TCP
// stack. Peers dial it when their transports advertise the path via
// SetPeerSockets.
func NewLiveUnixTransport(path string, local []NodeID) (*LiveTCPTransport, error) {
	return live.NewUnixTransport(path, local, 0)
}

// Conductance reports the weighted conductance analysis of a graph.
type Conductance = cut.Result

// WeightedConductance computes φ*(G) and the critical latency ℓ*
// (Definition 2), exactly for n <= 24 and heuristically above.
func WeightedConductance(g *Graph, seed uint64) (Conductance, error) {
	return cut.WeightedConductance(g, seed)
}

// PhiCut returns the weight-ℓ conductance of a specific cut (Definition 1).
func PhiCut(g *Graph, set []NodeID, ell int) (float64, error) {
	return cut.PhiCut(g, set, ell)
}

// SetAnalysisWorkers caps the number of concurrent workers analysis fan-outs
// (the φ_ℓ ladder, experiment sweeps) may use, and returns the previous cap.
// n <= 1 forces fully sequential evaluation. Results never depend on the
// cap: parallel runs merge in index order and are byte-identical to
// sequential ones. The default is GOMAXPROCS.
func SetAnalysisWorkers(n int) int { return par.SetMaxWorkers(n) }

// AnalysisWorkers returns the current analysis worker cap.
func AnalysisWorkers() int { return par.MaxWorkers() }
