package gossip

import (
	"sync"
	"testing"
	"time"

	"gossip/internal/live"
)

// TestLiveMatchesSimPushPull is the sim/live equivalence check: a seeded
// push-pull run must reach the same informed set under the lockstep round
// simulator and the wall-clock in-process live runtime, with message counts
// of the same order. (Both engines drive the identical state machine with
// identical per-node random streams; wall-clock jitter perturbs round
// alignment, hence a bounded ratio rather than equality on counts.)
func TestLiveMatchesSimPushPull(t *testing.T) {
	graphs := map[string]*Graph{
		"ringcliques": RingOfCliques(8, 8, 4), // 64 nodes, slow bridges
		"dumbbell":    Dumbbell(8, 6),         // 16 nodes, one slow bridge
	}
	const seed = 42
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			simRes, err := RunPushPull(g, 0, Options{Seed: seed})
			if err != nil {
				t.Fatalf("sim run: %v", err)
			}
			liveRes, err := RunLive(g, LivePushPull(0), LiveOptions{Seed: seed, Tick: time.Millisecond})
			if err != nil {
				t.Fatalf("live run: %v", err)
			}
			if !liveRes.Completed {
				t.Fatal("live run not completed")
			}
			// Same informed set: the simulator informed every node (it ran to
			// completion), so the live run must too.
			for u := 0; u < g.N(); u++ {
				if simInformed := simRes.InformedAt[u] >= 0; simInformed != liveRes.Done[u] {
					t.Errorf("node %d: sim informed=%v live informed=%v", u, simInformed, liveRes.Done[u])
				}
			}
			// Message count within bounds: same protocol, same seed, so the
			// live count may only drift by scheduling jitter.
			simMsgs, liveMsgs := simRes.Metrics.Messages(), liveRes.Metrics.Messages()
			if liveMsgs == 0 || liveMsgs > 12*simMsgs || simMsgs > 12*liveMsgs {
				t.Errorf("message counts diverged: sim=%d live=%d", simMsgs, liveMsgs)
			}
			t.Logf("%s: sim %d rounds / %d msgs; live %d ticks / %d msgs in %v",
				name, simRes.Metrics.Rounds, simMsgs, liveRes.Metrics.Ticks, liveMsgs, liveRes.Metrics.Wall)
		})
	}
}

// TestRunLiveTCPRingOfCliques is the acceptance check for the second
// transport: push-pull on the 64-node ring of cliques completes over real
// TCP loopback sockets, with the cluster split across two runtimes — under
// both wire formats, since the encoding must be invisible to the protocol.
func TestRunLiveTCPRingOfCliques(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster run is not -short friendly")
	}
	for _, wf := range []LiveWireFormat{LiveWireBinary, LiveWireJSON} {
		t.Run(wf.String(), func(t *testing.T) { runLiveTCPRingOfCliques(t, wf) })
	}
}

func runLiveTCPRingOfCliques(t *testing.T, wf LiveWireFormat) {
	g := RingOfCliques(8, 8, 4)
	half := g.N() / 2
	var hosted [2][]NodeID
	for u := 0; u < g.N(); u++ {
		hosted[u/half] = append(hosted[u/half], NodeID(u))
	}

	var trs [2]*live.TCPTransport
	addrs := make(map[NodeID]string, g.N())
	for i := range trs {
		tr, err := NewLiveTCPTransport("127.0.0.1:0", hosted[i])
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		defer tr.Close()
		tr.SetWireFormat(wf)
		trs[i] = tr
		for _, u := range hosted[i] {
			addrs[u] = tr.Addr().String()
		}
	}
	for i := range trs {
		trs[i].SetPeers(addrs)
	}

	var wg sync.WaitGroup
	var results [2]LiveResult
	var errs [2]error
	for i := range trs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunLiveTransport(g, LivePushPull(0), trs[i], LiveOptions{
				Seed:   9,
				Tick:   time.Millisecond,
				Nodes:  hosted[i],
				Linger: 2 * time.Second,
			})
		}(i)
	}
	wg.Wait()

	for i := range trs {
		if errs[i] != nil {
			t.Fatalf("runtime %d: %v", i, errs[i])
		}
		if !results[i].Completed {
			t.Errorf("runtime %d did not complete", i)
		}
		for _, u := range hosted[i] {
			if !results[i].Done[u] {
				t.Errorf("node %d not informed over TCP", u)
			}
		}
	}
}

// TestLiveFloodCompletes exercises the second live protocol end to end.
func TestLiveFloodCompletes(t *testing.T) {
	g := Grid(4, 4, 1)
	res, err := RunLive(g, LiveFlood(0), LiveOptions{Seed: 5, Tick: 500 * time.Microsecond})
	if err != nil {
		t.Fatalf("RunLive flood: %v", err)
	}
	for u := 0; u < g.N(); u++ {
		if !res.Done[u] {
			t.Errorf("node %d not informed by flood", u)
		}
	}
}

// TestRunLiveCrashInjection checks fail-stop injection through the public
// API: crashing the only bridge endpoint of a dumbbell strands the far side.
func TestRunLiveCrashInjection(t *testing.T) {
	g := Dumbbell(4, 2) // nodes 0..3 and 4..7; bridge between 3 and 4
	bridge := bridgeEndpoint(t, g)
	res, err := RunLive(g, LivePushPull(0), LiveOptions{
		Seed:     2,
		Tick:     500 * time.Microsecond,
		MaxTicks: 100,
		Crashes:  map[NodeID]LiveCrash{bridge: {At: 1}},
	})
	if err == nil && res.Completed {
		t.Fatal("run completed across a crashed bridge")
	}
	if !res.Crashed[bridge] {
		t.Errorf("bridge node %d not marked crashed", bridge)
	}
}

// bridgeEndpoint finds the left endpoint of the dumbbell's bridge: the node
// in the source's clique with an edge leaving it.
func bridgeEndpoint(t *testing.T, g *Graph) NodeID {
	t.Helper()
	half := g.N() / 2
	for u := 0; u < half; u++ {
		for _, he := range g.Neighbors(u) {
			if int(he.To) >= half {
				return NodeID(u)
			}
		}
	}
	t.Fatal("no bridge found")
	return -1
}
