package gossip

import (
	"fmt"
	"testing"

	"gossip/internal/check"
)

// TestBroadcastInvariants checks the model's physics on every broadcast
// protocol and family: information never outruns latency (causality), all
// nodes get informed (coverage), and metrics are internally consistent.
func TestBroadcastInvariants(t *testing.T) {
	families := []struct {
		name string
		g    *Graph
	}{
		{name: "clique", g: Clique(24, 2)},
		{name: "path", g: Path(16, 5)},
		{name: "ringcliques", g: RingOfCliques(4, 6, 7)},
		{name: "dumbbell", g: Dumbbell(8, 12)},
		{name: "mixed", g: RandomLatencies(GNP(20, 0.3, 1, true, 3), 1, 9, 3)},
		{name: "torus", g: Torus(4, 4, 3)},
	}
	protos := []struct {
		name string
		run  func(g *Graph, seed uint64) (BroadcastResult, error)
	}{
		{name: "pushpull", run: func(g *Graph, seed uint64) (BroadcastResult, error) {
			return RunPushPull(g, 0, Options{Seed: seed})
		}},
		{name: "flood", run: func(g *Graph, seed uint64) (BroadcastResult, error) {
			return RunFlood(g, 0, Options{Seed: seed})
		}},
	}
	for _, f := range families {
		for _, p := range protos {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed%d", p.name, f.name, seed), func(t *testing.T) {
					res, err := p.run(f.g, seed)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if err := check.Causality(f.g, 0, res.InformedAt); err != nil {
						t.Error(err)
					}
					if err := check.Coverage(res.InformedAt, nil); err != nil {
						t.Error(err)
					}
					if err := check.Metrics(res.Metrics); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

// TestTraceInvariantOnProtocols replays real engine traces of the main
// protocols through the delivery-model checker.
func TestTraceInvariantOnProtocols(t *testing.T) {
	g := RingOfCliques(3, 5, 4)
	var rec Recorder
	if _, err := RunPushPull(g, 0, Options{Seed: 5, Trace: rec.Tracer()}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := check.TraceConsistency(rec.Events, false); err != nil {
		t.Error(err)
	}
}
