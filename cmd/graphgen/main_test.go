package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gossip/internal/graphio"
)

func TestRunAnalysis(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-graph", "dumbbell", "-s", "5", "-latency", "4"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"graph dumbbell", "connected=true", "weighted diameter", "φ* =", "φ_1", "φ_4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNoPhi(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-graph", "clique", "-n", "8", "-nophi"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(sb.String(), "φ*") {
		t.Error("-nophi should skip the conductance ladder")
	}
}

func TestJSONExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	var sb strings.Builder
	if err := run([]string{"-graph", "path", "-n", "4", "-latency", "3", "-json", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read export: %v", err)
	}
	var jg graphio.JSONGraph
	if err := json.Unmarshal(raw, &jg); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if jg.N != 4 || len(jg.Edges) != 3 {
		t.Errorf("exported n=%d edges=%d, want 4/3", jg.N, len(jg.Edges))
	}
	if jg.Edges[0].Latency != 3 {
		t.Errorf("latency = %d, want 3", jg.Edges[0].Latency)
	}
}

func TestDOTExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.dot")
	var sb strings.Builder
	if err := run([]string{"-graph", "cycle", "-n", "5", "-latency", "2", "-dot", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read export: %v", err)
	}
	out := string(raw)
	if !strings.HasPrefix(out, "graph G {") || !strings.Contains(out, "0 -- 1 [label=2];") {
		t.Errorf("DOT output malformed:\n%s", out)
	}
	if strings.Count(out, "--") != 5 {
		t.Errorf("DOT edge count = %d, want 5", strings.Count(out, "--"))
	}
}

func TestRunBadFamily(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-graph", "nope"}, &sb); err == nil {
		t.Error("unknown family should fail")
	}
}

func TestExportThenLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, ext := range []string{"json", "txt"} {
		t.Run(ext, func(t *testing.T) {
			path := filepath.Join(dir, "g."+ext)
			flag := "-json"
			if ext == "txt" {
				flag = "-edgelist"
			}
			var sb strings.Builder
			if err := run([]string{"-graph", "ringcliques", "-k", "3", "-s", "4", "-latency", "2", flag, path}, &sb); err != nil {
				t.Fatalf("export: %v", err)
			}
			var sb2 strings.Builder
			if err := run([]string{"-load", path}, &sb2); err != nil {
				t.Fatalf("load: %v", err)
			}
			if !strings.Contains(sb2.String(), "n=12 m=21") {
				t.Errorf("loaded graph stats wrong:\n%s", sb2.String())
			}
		})
	}
}

func TestLoadMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-load", "/nonexistent/file.json"}, &sb); err == nil {
		t.Error("missing file should fail")
	}
}
