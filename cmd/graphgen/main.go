// Command graphgen generates and analyzes the latency-weighted graph
// families of the repository: node/edge statistics, weighted diameter, and
// the weighted-conductance ladder (φ_ℓ, φ*, ℓ* of Definition 2). It can
// export the graph as JSON or Graphviz DOT.
//
// Usage:
//
//	graphgen -graph dumbbell -s 8 -latency 16
//	graphgen -graph ring8 -n 64 -alpha 0.25 -latency 8 -dot ring.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gossip"
	"gossip/internal/graphio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "ringcliques", "graph family (see gossipsim)")
		n         = fs.Int("n", 64, "node count")
		k         = fs.Int("k", 4, "cliques in ring / grid rows")
		s         = fs.Int("s", 8, "clique size / grid cols")
		latency   = fs.Int("latency", 1, "edge or bridge latency")
		p         = fs.Float64("p", 0.1, "GNP edge probability")
		phi       = fs.Float64("phi", 0.1, "Theorem 7 fast-edge probability")
		alpha     = fs.Float64("alpha", 0.25, "Theorem 8 parameter α")
		beta      = fs.Float64("beta", 2.5, "chunglu power-law degree exponent (>2)")
		avgDeg    = fs.Float64("avgdeg", 8, "chunglu expected average degree")
		latMax    = fs.Int("latmax", 0, "chunglu: draw latencies uniformly from [latency, latmax] (0 = uniform -latency)")
		delta     = fs.Int("delta", 16, "Theorem 6 Δ")
		seed      = fs.Uint64("seed", 1, "seed")
		parallel  = fs.Bool("parallel", true, "fan the φ_ℓ ladder across CPUs; false forces one worker")
		jsonPath  = fs.String("json", "", "write graph JSON to this file")
		edgePath  = fs.String("edgelist", "", "write plain edge-list text to this file")
		dotPath   = fs.String("dot", "", "write Graphviz DOT to this file")
		loadPath  = fs.String("load", "", "load the graph from a file (.json or edge-list text) instead of generating")
		noPhi     = fs.Bool("nophi", false, "skip the conductance ladder (slow on large graphs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*parallel {
		defer gossip.SetAnalysisWorkers(gossip.SetAnalysisWorkers(1))
	}
	var (
		g   *gossip.Graph
		err error
	)
	if *loadPath != "" {
		g, err = loadGraph(*loadPath)
		*graphName = *loadPath
	} else {
		g, err = buildGraph(*graphName, genParams{
			N: *n, K: *k, S: *s, Latency: *latency, LatMax: *latMax,
			P: *p, Phi: *phi, Alpha: *alpha, Beta: *beta, AvgDeg: *avgDeg,
			Delta: *delta, Seed: *seed,
		})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph %s: n=%d m=%d Δ=%d ℓmax=%d connected=%v\n",
		*graphName, g.N(), g.M(), g.MaxDegree(), g.MaxLatency(), g.Connected())
	if g.N() <= 512 {
		fmt.Fprintf(out, "weighted diameter D=%d hop diameter=%d\n", g.WeightedDiameter(), g.HopDiameter())
	} else {
		fmt.Fprintf(out, "weighted diameter D≈%d (2-approx)\n", g.WeightedDiameterApprox())
	}
	if !*noPhi {
		wc, err := gossip.WeightedConductance(g, *seed)
		if err != nil {
			return fmt.Errorf("conductance: %w", err)
		}
		fmt.Fprintf(out, "φ* = %.6f at ℓ* = %d (exact=%v)\n", wc.PhiStar, wc.EllStar, wc.Exact)
		for _, l := range wc.Ladder {
			fmt.Fprintf(out, "  φ_%-6d = %.6f   φ_ℓ/ℓ = %.6f\n", l.Ell, l.Phi, l.Ratio)
		}
	}
	for _, exp := range []struct {
		path  string
		write func(io.Writer, *gossip.Graph) error
	}{
		{path: *jsonPath, write: graphio.EncodeJSON},
		{path: *edgePath, write: graphio.WriteEdgeList},
		{path: *dotPath, write: graphio.WriteDOT},
	} {
		if exp.path == "" {
			continue
		}
		if err := writeFile(exp.path, g, exp.write); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", exp.path)
	}
	return nil
}

func writeFile(path string, g *gossip.Graph, write func(io.Writer, *gossip.Graph) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	return write(f, g)
}

func loadGraph(path string) (*gossip.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return graphio.DecodeJSON(f)
	}
	return graphio.ReadEdgeList(f)
}

// genParams bundles the family-selector knobs shared by gossipsim and
// graphgen.
type genParams struct {
	N, K, S       int
	Latency       int
	LatMax        int // chunglu: latencies uniform in [Latency, LatMax]
	P, Phi, Alpha float64
	Beta, AvgDeg  float64
	Delta         int
	Seed          uint64
}

// buildGraph mirrors gossipsim's family selector.
func buildGraph(name string, gp genParams) (*gossip.Graph, error) {
	switch name {
	case "clique":
		return gossip.Clique(gp.N, gp.Latency), nil
	case "star":
		return gossip.Star(gp.N, gp.Latency), nil
	case "path":
		return gossip.Path(gp.N, gp.Latency), nil
	case "cycle":
		return gossip.Cycle(gp.N, gp.Latency), nil
	case "grid":
		return gossip.Grid(gp.K, gp.S, gp.Latency), nil
	case "gnp":
		return gossip.GNP(gp.N, gp.P, gp.Latency, true, gp.Seed), nil
	case "ringcliques":
		return gossip.RingOfCliques(gp.K, gp.S, gp.Latency), nil
	case "dumbbell":
		return gossip.Dumbbell(gp.S, gp.Latency), nil
	case "chunglu":
		g := gossip.ChungLu(gp.N, gp.Beta, gp.AvgDeg, gp.Latency, gp.Seed)
		if gp.LatMax > gp.Latency {
			g = gossip.RandomLatencies(g, gp.Latency, gp.LatMax, gp.Seed)
		}
		return g, nil
	case "t6":
		h, err := gossip.NewTheoremSixNetwork(gp.N, gp.Delta, gp.Seed)
		if err != nil {
			return nil, err
		}
		return h.G, nil
	case "t7":
		tn, err := gossip.NewTheoremSevenNetwork(gp.N, gp.Phi, gp.Latency, gp.Seed)
		if err != nil {
			return nil, err
		}
		return tn.G, nil
	case "ring8":
		rn, err := gossip.NewRingNetwork(gp.N, gp.Alpha, gp.Latency, gp.Seed)
		if err != nil {
			return nil, err
		}
		return rn.G, nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", name)
	}
}
