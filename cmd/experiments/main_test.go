package main

import (
	"os"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, id := range []string{"L4", "T12", "T19", "FAULT", "MSG"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("-list output missing %s:\n%s", id, sb.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "L4", "-scale", "quick"}, &sb); err != nil {
		t.Fatalf("run L4: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "E-L4") || !strings.Contains(out, "finished in") {
		t.Errorf("output incomplete:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "NOPE"}, &sb); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-scale", "medium"}, &sb); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestTSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "L4", "-format", "tsv"}, &sb); err != nil {
		t.Fatalf("run tsv: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "# E-L4") || !strings.Contains(out, "\t") {
		t.Errorf("tsv output malformed:\n%s", out)
	}
	if err := run([]string{"-run", "L4", "-format", "xml"}, &sb); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestOutDir(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "F1", "-out", dir}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(dir + "/F1.tsv")
	if err != nil {
		t.Fatalf("read tsv: %v", err)
	}
	if !strings.Contains(string(raw), "\t") {
		t.Errorf("tsv file malformed:\n%s", raw)
	}
}
