// Command experiments regenerates the paper-reproduction tables indexed in
// DESIGN.md §4 / EXPERIMENTS.md.
//
// Usage:
//
//	experiments -list
//	experiments -run T12
//	experiments -run all -scale full -seed 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"gossip/internal/exp"
)

// writeTSVFile writes one experiment's table as <dir>/<id>.tsv.
func writeTSVFile(dir, id string, tb *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", dir, err)
	}
	f, err := os.Create(filepath.Join(dir, id+".tsv"))
	if err != nil {
		return fmt.Errorf("create tsv: %w", err)
	}
	defer f.Close()
	return tb.TSV(f)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		id       = fs.String("run", "all", "experiment ID or 'all'")
		scale    = fs.String("scale", "quick", "quick or full")
		seed     = fs.Uint64("seed", 1, "deterministic seed")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		format   = fs.String("format", "table", "output format: table or tsv")
		verify   = fs.Bool("verify", false, "assert each experiment's expected shape (exit nonzero on violation)")
		outDir   = fs.String("out", "", "also write one <ID>.tsv per experiment into this directory")
		parallel = fs.Bool("parallel", true, "fan trial cells across CPU cores (output is identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*parallel {
		exp.SetMaxWorkers(1)
	}
	if *list {
		for _, e := range exp.IDs() {
			fmt.Fprintln(out, e)
		}
		return nil
	}
	var sc exp.Scale
	switch *scale {
	case "quick":
		sc = exp.ScaleQuick
	case "full":
		sc = exp.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scale)
	}
	ids := []string{*id}
	if *id == "all" {
		ids = exp.IDs()
	}
	if *format != "table" && *format != "tsv" {
		return fmt.Errorf("unknown format %q (table|tsv)", *format)
	}
	for _, e := range ids {
		start := time.Now()
		tb, err := exp.Run(e, sc, *seed)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e, err)
		}
		if *verify {
			if err := exp.VerifyShape(e, tb); err != nil {
				return err
			}
		}
		if *outDir != "" {
			if err := writeTSVFile(*outDir, e, tb); err != nil {
				return err
			}
		}
		if *format == "tsv" {
			fmt.Fprintf(out, "# %s\n", tb.Title)
			if err := tb.TSV(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			continue
		}
		if err := tb.Fprint(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "[%s finished in %v]\n\n", e, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
