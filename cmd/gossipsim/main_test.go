package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunProtocols(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "pushpull-default",
			args: []string{"-graph", "ringcliques", "-k", "3", "-s", "4", "-latency", "2", "-proto", "pushpull"},
			want: []string{"graph=ringcliques", "completed=true"},
		},
		{
			name: "flood-grid",
			args: []string{"-graph", "grid", "-k", "3", "-s", "3", "-proto", "flood"},
			want: []string{"completed=true"},
		},
		{
			name: "rr-with-spanner-stats",
			args: []string{"-graph", "clique", "-n", "12", "-proto", "rr"},
			want: []string{"completed=true", "spanner:"},
		},
		{
			name: "generaleid",
			args: []string{"-graph", "clique", "-n", "10", "-proto", "generaleid"},
			want: []string{"completed=true", "final estimate="},
		},
		{
			name: "unified",
			args: []string{"-graph", "clique", "-n", "10", "-proto", "unified"},
			want: []string{"winner="},
		},
		{
			name: "analyze",
			args: []string{"-graph", "dumbbell", "-s", "5", "-latency", "4", "-proto", "pushpull", "-analyze"},
			want: []string{"φ* =", "φ_4"},
		},
		{
			name: "t6-gadget",
			args: []string{"-graph", "t6", "-n", "24", "-delta", "8", "-proto", "pushpull"},
			want: []string{"graph=t6", "completed=true"},
		},
		{
			name: "chunglu-sequential-analyze",
			args: []string{"-graph", "chunglu", "-n", "80", "-beta", "2.5", "-avgdeg", "6", "-latmax", "4", "-proto", "pushpull", "-analyze", "-parallel=false"},
			want: []string{"graph=chunglu", "φ* =", "completed=true"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tt.args, &sb); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			for _, w := range tt.want {
				if !strings.Contains(sb.String(), w) {
					t.Errorf("output missing %q:\n%s", w, sb.String())
				}
			}
		})
	}
}

func TestTraceFlag(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.txt"
	var sb strings.Builder
	err := run([]string{"-graph", "path", "-n", "4", "-latency", "3", "-proto", "flood", "-trace", path}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	out := string(raw)
	for _, want := range []string{"initiate", "request", "response"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown graph", args: []string{"-graph", "nope"}},
		{name: "unknown proto", args: []string{"-graph", "clique", "-n", "6", "-proto", "nope"}},
		{name: "bad flag", args: []string{"-not-a-flag"}},
		{name: "bad t7 phi", args: []string{"-graph", "t7", "-n", "8", "-phi", "0.9"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tt.args, &sb); err == nil {
				t.Errorf("run(%v) should fail", tt.args)
			}
		})
	}
}

func TestBuildGraphFamilies(t *testing.T) {
	gp := genParams{
		N: 24, K: 3, S: 4, Latency: 2,
		P: 0.2, Phi: 0.2, Alpha: 0.25, Beta: 2.5, AvgDeg: 6,
		Delta: 8, Seed: 1,
	}
	for _, name := range []string{"clique", "star", "path", "cycle", "grid", "gnp", "ringcliques", "dumbbell", "chunglu", "t6", "t7", "ring8"} {
		t.Run(name, func(t *testing.T) {
			g, err := buildGraph(name, gp)
			if err != nil {
				t.Fatalf("buildGraph(%s): %v", name, err)
			}
			if g.N() == 0 || !g.Connected() {
				t.Errorf("buildGraph(%s): n=%d connected=%v", name, g.N(), g.Connected())
			}
		})
	}
}

func TestChungLuLatMax(t *testing.T) {
	gp := genParams{N: 40, Latency: 1, LatMax: 5, Beta: 2.5, AvgDeg: 6, Seed: 3}
	g, err := buildGraph("chunglu", gp)
	if err != nil {
		t.Fatalf("buildGraph: %v", err)
	}
	if g.MaxLatency() <= 1 {
		t.Errorf("latmax ignored: max latency %d", g.MaxLatency())
	}
}

func TestTrialsFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-graph", "clique", "-n", "12", "-proto", "pushpull", "-trials", "5"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"trials=5", "mean=", "std=", "mean messages="} {
		if !strings.Contains(out, want) {
			t.Errorf("trials output missing %q:\n%s", want, out)
		}
	}
}

func TestSVGFlag(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/run.svg"
	var sb strings.Builder
	err := run([]string{"-graph", "dumbbell", "-s", "4", "-latency", "6", "-proto", "pushpull", "-svg", path}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read svg: %v", err)
	}
	out := string(raw)
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "<rect") {
		t.Errorf("svg malformed:\n%.200s", out)
	}
}
