// Command gossipsim runs one dissemination protocol on one graph family and
// prints the resulting metrics.
//
// Usage:
//
//	gossipsim -graph ringcliques -k 8 -s 8 -latency 4 -proto pushpull -seed 1
//	gossipsim -graph clique -n 64 -proto generaleid
//	gossipsim -graph t7 -n 64 -phi 0.1 -latency 4 -proto pushpull
//
// Graphs: clique, star, path, cycle, grid, gnp, ringcliques, dumbbell,
// chunglu (power-law, -beta/-avgdeg/-latmax), t6, t7, ring8 (the Theorem 8
// layered ring).
// Protocols: pushpull, pushonly, flood, dtg, rr, eid, generaleid, tseq,
// pathdiscovery, discovereid, unified.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gossip"
	"gossip/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "ringcliques", "graph family")
		proto     = fs.String("proto", "pushpull", "protocol to run")
		n         = fs.Int("n", 64, "node count (clique/star/path/cycle/gnp/t6/t7/ring8)")
		k         = fs.Int("k", 4, "cliques in ring / grid rows")
		s         = fs.Int("s", 8, "clique size / grid cols")
		latency   = fs.Int("latency", 1, "edge or bridge latency (family dependent)")
		p         = fs.Float64("p", 0.1, "GNP edge probability")
		phi       = fs.Float64("phi", 0.1, "Theorem 7 fast-edge probability")
		alpha     = fs.Float64("alpha", 0.25, "Theorem 8 conductance parameter α")
		beta      = fs.Float64("beta", 2.5, "chunglu power-law degree exponent (>2)")
		avgDeg    = fs.Float64("avgdeg", 8, "chunglu expected average degree")
		latMax    = fs.Int("latmax", 0, "chunglu: draw latencies uniformly from [latency, latmax] (0 = uniform -latency)")
		delta     = fs.Int("delta", 16, "Theorem 6 max degree Δ")
		source    = fs.Int("source", 0, "broadcast source node")
		seed      = fs.Uint64("seed", 1, "deterministic run seed")
		maxRounds = fs.Int("maxrounds", 0, "round budget (0 = default)")
		d         = fs.Int("d", 0, "diameter parameter for eid/tseq/rr/dtg (0 = computed)")
		analyze   = fs.Bool("analyze", false, "also print φ*/ℓ* analysis")
		parallel  = fs.Bool("parallel", true, "fan analysis work (φ_ℓ ladder) across CPUs; false forces one worker")
		tracePath = fs.String("trace", "", "write the engine event trace to this file")
		svgPath   = fs.String("svg", "", "write an SVG timeline of the run to this file")
		trials    = fs.Int("trials", 1, "repeat the run with seeds seed..seed+trials-1 and report statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*parallel {
		defer gossip.SetAnalysisWorkers(gossip.SetAnalysisWorkers(1))
	}

	g, err := buildGraph(*graphName, genParams{
		N: *n, K: *k, S: *s, Latency: *latency, LatMax: *latMax,
		P: *p, Phi: *phi, Alpha: *alpha, Beta: *beta, AvgDeg: *avgDeg,
		Delta: *delta, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph=%s nodes=%d edges=%d Δ=%d ℓmax=%d\n",
		*graphName, g.N(), g.M(), g.MaxDegree(), g.MaxLatency())

	diam := *d
	if diam <= 0 {
		diam = g.WeightedDiameterApprox()
	}
	fmt.Fprintf(out, "weighted diameter ≈ %d\n", diam)
	if *analyze {
		wc, err := gossip.WeightedConductance(g, *seed)
		if err != nil {
			return fmt.Errorf("conductance: %w", err)
		}
		fmt.Fprintf(out, "φ* = %.5f at ℓ* = %d (exact=%v)\n", wc.PhiStar, wc.EllStar, wc.Exact)
		for _, l := range wc.Ladder {
			fmt.Fprintf(out, "  φ_%d = %.5f (φ/ℓ = %.5f)\n", l.Ell, l.Phi, l.Ratio)
		}
	}

	opts := gossip.Options{Seed: *seed, MaxRounds: *maxRounds}
	if *trials > 1 {
		return runTrials(out, *proto, g, *source, diam, opts, *trials)
	}
	var rec gossip.Recorder
	var traceW *bufio.Writer
	if *tracePath != "" || *svgPath != "" {
		record := rec.Tracer()
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return fmt.Errorf("create trace file: %w", err)
			}
			defer f.Close()
			traceW = bufio.NewWriter(f)
			defer traceW.Flush()
		}
		opts.Trace = func(ev gossip.TraceEvent) {
			if *svgPath != "" {
				record(ev)
			}
			if traceW != nil {
				fmt.Fprintln(traceW, ev.String())
			}
		}
	}
	if err := runProtocol(out, *proto, g, *source, diam, opts); err != nil {
		return err
	}
	if *tracePath != "" {
		fmt.Fprintf(out, "wrote trace to %s\n", *tracePath)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return fmt.Errorf("create svg file: %w", err)
		}
		defer f.Close()
		title := fmt.Sprintf("%s on %s (n=%d)", *proto, *graphName, g.N())
		if err := viz.Timeline(f, g.N(), rec.Events, viz.TimelineOptions{Title: title}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote timeline to %s\n", *svgPath)
	}
	return nil
}

// genParams bundles the family-selector knobs shared by gossipsim and
// graphgen.
type genParams struct {
	N, K, S       int
	Latency       int
	LatMax        int // chunglu: latencies uniform in [Latency, LatMax]
	P, Phi, Alpha float64
	Beta, AvgDeg  float64
	Delta         int
	Seed          uint64
}

func buildGraph(name string, gp genParams) (*gossip.Graph, error) {
	switch name {
	case "clique":
		return gossip.Clique(gp.N, gp.Latency), nil
	case "star":
		return gossip.Star(gp.N, gp.Latency), nil
	case "path":
		return gossip.Path(gp.N, gp.Latency), nil
	case "cycle":
		return gossip.Cycle(gp.N, gp.Latency), nil
	case "grid":
		return gossip.Grid(gp.K, gp.S, gp.Latency), nil
	case "gnp":
		return gossip.GNP(gp.N, gp.P, gp.Latency, true, gp.Seed), nil
	case "ringcliques":
		return gossip.RingOfCliques(gp.K, gp.S, gp.Latency), nil
	case "dumbbell":
		return gossip.Dumbbell(gp.S, gp.Latency), nil
	case "chunglu":
		g := gossip.ChungLu(gp.N, gp.Beta, gp.AvgDeg, gp.Latency, gp.Seed)
		if gp.LatMax > gp.Latency {
			g = gossip.RandomLatencies(g, gp.Latency, gp.LatMax, gp.Seed)
		}
		return g, nil
	case "t6":
		h, err := gossip.NewTheoremSixNetwork(gp.N, gp.Delta, gp.Seed)
		if err != nil {
			return nil, err
		}
		return h.G, nil
	case "t7":
		tn, err := gossip.NewTheoremSevenNetwork(gp.N, gp.Phi, gp.Latency, gp.Seed)
		if err != nil {
			return nil, err
		}
		return tn.G, nil
	case "ring8":
		rn, err := gossip.NewRingNetwork(gp.N, gp.Alpha, gp.Latency, gp.Seed)
		if err != nil {
			return nil, err
		}
		return rn.G, nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", name)
	}
}

// runTrials repeats the protocol across consecutive seeds and prints
// round-count statistics.
func runTrials(out io.Writer, proto string, g *gossip.Graph, source, diam int, opts gossip.Options, trials int) error {
	var rounds []float64
	var msgs, bytes float64
	for i := 0; i < trials; i++ {
		o := opts
		o.Seed = opts.Seed + uint64(i)
		var sink strings.Builder
		m, err := runProtocolMetrics(&sink, proto, g, source, diam, o)
		if err != nil {
			return fmt.Errorf("trial %d: %w", i, err)
		}
		rounds = append(rounds, float64(m.Rounds))
		msgs += float64(m.Messages()) / float64(trials)
		bytes += float64(m.Bytes) / float64(trials)
	}
	mean, minV, maxV := 0.0, rounds[0], rounds[0]
	for _, r := range rounds {
		mean += r / float64(trials)
		if r < minV {
			minV = r
		}
		if r > maxV {
			maxV = r
		}
	}
	variance := 0.0
	for _, r := range rounds {
		variance += (r - mean) * (r - mean) / float64(trials)
	}
	fmt.Fprintf(out, "trials=%d rounds: mean=%.1f min=%.0f max=%.0f std=%.1f\n",
		trials, mean, minV, maxV, sqrt(variance))
	fmt.Fprintf(out, "mean messages=%.0f mean bytes=%.0f\n", msgs, bytes)
	return nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	r := x
	for i := 0; i < 40; i++ {
		r = (r + x/r) / 2
	}
	return r
}

// runProtocolMetrics runs one protocol and returns its metrics.
func runProtocolMetrics(out io.Writer, proto string, g *gossip.Graph, source, diam int, opts gossip.Options) (gossip.Metrics, error) {
	var captured gossip.Metrics
	err := runProtocolWith(out, proto, g, source, diam, opts, &captured)
	return captured, err
}

func runProtocol(out io.Writer, proto string, g *gossip.Graph, source, diam int, opts gossip.Options) error {
	var sink gossip.Metrics
	return runProtocolWith(out, proto, g, source, diam, opts, &sink)
}

func runProtocolWith(out io.Writer, proto string, g *gossip.Graph, source, diam int, opts gossip.Options, captured *gossip.Metrics) error {
	printMetrics := func(m gossip.Metrics, completed bool) {
		*captured = m
		fmt.Fprintf(out, "completed=%v rounds=%d messages=%d bytes=%d activations=%d\n",
			completed, m.Rounds, m.Messages(), m.Bytes, m.EdgeActivations)
	}
	switch proto {
	case "pushpull":
		res, err := gossip.RunPushPull(g, source, opts)
		printMetrics(res.Metrics, res.Completed)
		return err
	case "pushonly":
		res, err := gossip.RunPushOnly(g, source, opts)
		printMetrics(res.Metrics, res.Completed)
		return err
	case "flood":
		res, err := gossip.RunFlood(g, source, opts)
		printMetrics(res.Metrics, res.Completed)
		return err
	case "dtg":
		res, err := gossip.RunLocalBroadcast(g, diam, opts)
		printMetrics(res.Metrics, res.Completed)
		return err
	case "rr":
		res, err := gossip.RunRRBroadcast(g, diam, 0, opts)
		printMetrics(res.Metrics, res.Completed)
		fmt.Fprintf(out, "spanner: edges=%d Δout=%d stretch=%.2f completed@=%d\n",
			res.SpannerSize, res.MaxOutDegree, res.Stretch, res.RoundsToComplete)
		return err
	case "eid":
		res, err := gossip.RunEID(g, diam, opts)
		printMetrics(res.Metrics, res.Completed)
		return err
	case "generaleid":
		res, err := gossip.RunGeneralEID(g, opts)
		printMetrics(res.Metrics, res.Completed)
		fmt.Fprintf(out, "final estimate=%d\n", res.FinalEstimate)
		return err
	case "tseq":
		res, err := gossip.RunTSequence(g, diam, opts)
		printMetrics(res.Metrics, res.Completed)
		return err
	case "pathdiscovery":
		res, err := gossip.RunPathDiscovery(g, opts)
		printMetrics(res.Metrics, res.Completed)
		return err
	case "discovereid":
		res, err := gossip.RunDiscoverEID(g, opts)
		printMetrics(res.Metrics, res.Completed)
		return err
	case "unified":
		res, err := gossip.RunUnified(g, source, true, opts)
		if err != nil {
			return err
		}
		captured.Rounds = res.Rounds
		fmt.Fprintf(out, "winner=%s interleaved-rounds=%d (push-pull=%d, spanner=%d)\n",
			res.Winner, res.Rounds, res.PushPull.Metrics.Rounds, res.Spanner.Metrics.Rounds)
		return nil
	default:
		return errors.New("unknown protocol " + proto)
	}
}
