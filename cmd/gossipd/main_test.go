package main

import (
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
)

// TestSingleDaemonHostsAll is the smoke test: one daemon hosting every node
// needs no -peers and completes in-process.
func TestSingleDaemonHostsAll(t *testing.T) {
	var sb strings.Builder
	args := []string{
		"-graph", "clique", "-n", "8",
		"-listen", "127.0.0.1:0",
		"-tick", "500us", "-linger", "0s", "-seed", "3",
	}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	out := sb.String()
	for _, w := range []string{"gossipd: graph=clique nodes=8 hosting=8", "completed=true", "informed=8/8"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
}

// TestTwoDaemonCluster runs a real two-daemon push-pull cluster over TCP
// loopback under every wire-format pairing — including mixed, since inbound
// frames are auto-detected per connection — plus a batched-writes variant
// with a -flushwindow. Each daemon hosts one side of a dumbbell.
func TestTwoDaemonCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster run is not -short friendly")
	}
	cases := []struct {
		name   string
		extra0 []string // daemon 0's extra flags
		extra1 []string // daemon 1's
	}{
		{name: "binary"},
		{name: "json",
			extra0: []string{"-wire", "json"},
			extra1: []string{"-wire", "json"}},
		{name: "mixed",
			extra0: []string{"-wire", "binary"},
			extra1: []string{"-wire", "json"}},
		{name: "flushwindow",
			extra0: []string{"-flushwindow", "200us"},
			extra1: []string{"-flushwindow", "200us"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addrs := reservePorts(t, 2)
			peers := fmt.Sprintf("0-3=%s,4-7=%s", addrs[0], addrs[1])
			common := []string{
				"-graph", "dumbbell", "-s", "4", "-latency", "2",
				"-proto", "pushpull", "-seed", "7",
				"-tick", "1ms", "-linger", "2s",
				"-peers", peers,
			}
			var wg sync.WaitGroup
			outs := make([]strings.Builder, 2)
			errs := make([]error, 2)
			for i, spec := range []struct {
				listen, nodes string
				extra         []string
			}{
				{addrs[0], "0-3", tc.extra0},
				{addrs[1], "4-7", tc.extra1},
			} {
				wg.Add(1)
				go func(i int, listen, nodes string, extra []string) {
					defer wg.Done()
					args := append([]string{"-listen", listen, "-nodes", nodes}, common...)
					errs[i] = run(append(args, extra...), &outs[i])
				}(i, spec.listen, spec.nodes, spec.extra)
			}
			wg.Wait()
			for i := range outs {
				if errs[i] != nil {
					t.Fatalf("daemon %d: %v\n%s", i, errs[i], outs[i].String())
				}
				out := outs[i].String()
				for _, w := range []string{"completed=true", "informed=4/4"} {
					if !strings.Contains(out, w) {
						t.Errorf("daemon %d output missing %q:\n%s", i, w, out)
					}
				}
			}
		})
	}
}

// TestMemberSingleDaemon runs a daemon with SWIM membership enabled and the
// table dump on: the summary line and every hosted node's table must appear.
func TestMemberSingleDaemon(t *testing.T) {
	var sb strings.Builder
	args := []string{
		"-graph", "clique", "-n", "8",
		"-listen", "127.0.0.1:0",
		"-tick", "500us", "-linger", "0s", "-seed", "3",
		"-join", "0", "-probe-interval", "4", "-memberdump",
	}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	out := sb.String()
	for _, w := range []string{"completed=true", "membership: packets=", "member table 0:", "member table 7:"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "dead") && !strings.Contains(out, "dead=0") {
		t.Errorf("dead members declared with no crash injected:\n%s", out)
	}
}

// TestMemberTwoDaemonJoin is the README's two-daemon join example: two
// daemons, each hosting half a dumbbell, bootstrap membership from seed node
// 0 — which lives on daemon 0, so daemon 1's nodes join across the TCP
// transport (member packets as an interned binary payload type).
func TestMemberTwoDaemonJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster run is not -short friendly")
	}
	addrs := reservePorts(t, 2)
	peers := fmt.Sprintf("0-3=%s,4-7=%s", addrs[0], addrs[1])
	common := []string{
		"-graph", "dumbbell", "-s", "4", "-latency", "2",
		"-proto", "pushpull", "-seed", "7",
		"-tick", "1ms", "-linger", "2s",
		"-peers", peers,
		"-join", "0", "-probe-interval", "4", "-max-piggyback", "8",
	}
	var wg sync.WaitGroup
	outs := make([]strings.Builder, 2)
	errs := make([]error, 2)
	for i, spec := range []struct{ listen, nodes string }{
		{addrs[0], "0-3"},
		{addrs[1], "4-7"},
	} {
		wg.Add(1)
		go func(i int, listen, nodes string) {
			defer wg.Done()
			args := append([]string{"-listen", listen, "-nodes", nodes}, common...)
			errs[i] = run(args, &outs[i])
		}(i, spec.listen, spec.nodes)
	}
	wg.Wait()
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("daemon %d: %v\n%s", i, errs[i], outs[i].String())
		}
		out := outs[i].String()
		for _, w := range []string{"completed=true", "informed=4/4", "membership: packets="} {
			if !strings.Contains(out, w) {
				t.Errorf("daemon %d output missing %q:\n%s", i, w, out)
			}
		}
		if strings.Contains(out, "membership: packets=0 ") {
			t.Errorf("daemon %d sent no membership packets:\n%s", i, out)
		}
	}
}

// TestFlagErrors exercises the argument validation paths.
func TestFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "unknown-graph",
			args: []string{"-graph", "hypercube"},
			want: "unknown graph family",
		},
		{
			name: "unknown-proto",
			args: []string{"-graph", "clique", "-n", "4", "-proto", "quantum"},
			want: "unknown protocol",
		},
		{
			name: "bad-node-range",
			args: []string{"-graph", "clique", "-n", "4", "-nodes", "9-3"},
			want: "-nodes",
		},
		{
			name: "node-out-of-range",
			args: []string{"-graph", "clique", "-n", "4", "-nodes", "0-7"},
			want: "out of range",
		},
		{
			name: "duplicate-node",
			args: []string{"-graph", "clique", "-n", "4", "-nodes", "1,1"},
			want: "listed twice",
		},
		{
			name: "uncovered-peers",
			args: []string{"-graph", "clique", "-n", "4", "-nodes", "0-1"},
			want: "no peer address",
		},
		{
			name: "bad-peer-entry",
			args: []string{"-graph", "clique", "-n", "4", "-peers", "0-3"},
			want: "nodes=addr",
		},
		{
			name: "bad-crash-entry",
			args: []string{"-graph", "clique", "-n", "4", "-crash", "1=0"},
			want: "must be >= 1",
		},
		{
			name: "bad-wire-format",
			args: []string{"-graph", "clique", "-n", "4", "-wire", "protobuf"},
			want: "-wire",
		},
		{
			name: "negative-flushwindow",
			args: []string{"-graph", "clique", "-n", "4", "-flushwindow", "-1ms"},
			want: "-flushwindow",
		},
		{
			name: "bad-join-node",
			args: []string{"-graph", "clique", "-n", "4", "-join", "9"},
			want: "-join",
		},
		{
			name: "memberdump-without-join",
			args: []string{"-graph", "clique", "-n", "4", "-memberdump"},
			want: "-memberdump requires membership",
		},
		{
			name: "negative-shards",
			args: []string{"-graph", "clique", "-n", "4", "-shards", "-2"},
			want: "-shards",
		},
		{
			name: "negative-nodes-per-shard",
			args: []string{"-graph", "clique", "-n", "4", "-nodes-per-shard", "-1"},
			want: "-nodes-per-shard",
		},
		{
			name: "shards-and-nodes-per-shard",
			args: []string{"-graph", "clique", "-n", "4", "-shards", "2", "-nodes-per-shard", "2"},
			want: "mutually exclusive",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var sb strings.Builder
			err := run(append(tt.args, "-listen", "127.0.0.1:0"), &sb)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("run(%v) error = %v, want substring %q", tt.args, err, tt.want)
			}
		})
	}
}

func TestResolveShards(t *testing.T) {
	tests := []struct {
		shards, nodesPer, hosted int
		want                     int
		wantErr                  bool
	}{
		{0, 0, 64, 0, false},   // both unset: defer to the runtime default
		{4, 0, 64, 4, false},   // explicit shard count passes through
		{0, 16, 64, 4, false},  // exact division
		{0, 10, 64, 7, false},  // ceil(64/10)
		{0, 100, 64, 1, false}, // more per shard than hosted: one shard
		{-1, 0, 64, 0, true},   // negative shards
		{0, -1, 64, 0, true},   // negative nodes-per-shard
		{2, 2, 64, 0, true},    // mutually exclusive
	}
	for _, tt := range tests {
		got, err := resolveShards(tt.shards, tt.nodesPer, tt.hosted)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("resolveShards(%d, %d, %d) = %d, %v; want %d, err=%v",
				tt.shards, tt.nodesPer, tt.hosted, got, err, tt.want, tt.wantErr)
		}
	}
}

// TestTenThousandNodeSingleDaemon is the scale smoke test: one daemon hosting
// 10k nodes on the sharded event loop completes a flood in-process. With four
// nodes-per-shard-derived workers this exercises the exact configuration the
// flag pair exists for.
func TestTenThousandNodeSingleDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node run is not -short friendly")
	}
	var sb strings.Builder
	args := []string{
		"-graph", "star", "-n", "10000",
		"-proto", "pushpull", "-source", "0",
		"-listen", "127.0.0.1:0",
		"-tick", "2ms", "-linger", "0s", "-seed", "11",
		"-nodes-per-shard", "2500",
	}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	out := sb.String()
	for _, w := range []string{"hosting=10000", "completed=true", "informed=10000/10000"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
}

func TestParseNodeSet(t *testing.T) {
	ids, err := parseNodeSet("4,0-2", 8)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[0 1 2 4]" {
		t.Errorf("parseNodeSet = %v", ids)
	}
	if all, err := parseNodeSet("", 3); err != nil || len(all) != 3 {
		t.Errorf("empty spec: %v %v", all, err)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("0-1=a:1,3=b:2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[0] != "a:1" || peers[1] != "a:1" || peers[3] != "b:2" {
		t.Errorf("parsePeers = %v", peers)
	}
}

func TestParsePeerSockets(t *testing.T) {
	socks, err := parsePeerSockets("127.0.0.1:7000=/tmp/d0.sock,127.0.0.1:7001=/tmp/d1.sock")
	if err != nil {
		t.Fatal(err)
	}
	if len(socks) != 2 || socks["127.0.0.1:7000"] != "/tmp/d0.sock" ||
		socks["127.0.0.1:7001"] != "/tmp/d1.sock" {
		t.Errorf("parsePeerSockets = %v", socks)
	}
	for _, bad := range []string{"no-equals", "=path", "addr="} {
		if _, err := parsePeerSockets(bad); err == nil {
			t.Errorf("parsePeerSockets(%q) accepted a malformed entry", bad)
		}
	}
}

// TestListenFDInheritance exercises the supervisor handoff: the "parent"
// binds the port, hands the descriptor over, and the daemon serves on it
// without ever re-binding — the reserved address cannot be stolen in
// between. In-process we dup the descriptor and give run() sole ownership,
// exactly the lifetime a child process would see on fd 3.
func TestListenFDInheritance(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	f, err := ln.(*net.TCPListener).File()
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	fd, err := syscall.Dup(int(f.Fd()))
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	args := []string{
		"-graph", "clique", "-n", "8",
		"-listen-fd", strconv.Itoa(fd),
		"-tick", "500us", "-linger", "0s", "-seed", "3",
	}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	out := sb.String()
	for _, w := range []string{"listen=" + addr, "completed=true", "informed=8/8"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
}

// TestTwoDaemonUnixFabric pairs -listen-unix with -peer-sockets on both
// sides of a dumbbell: every cross-daemon frame must ride the unix socket
// (local-frames == frames in the wire ledger) and the drain must stay clean.
func TestTwoDaemonUnixFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("two-daemon cluster run is not -short friendly")
	}
	addrs := reservePorts(t, 2)
	dir := t.TempDir()
	socks := []string{filepath.Join(dir, "d0.sock"), filepath.Join(dir, "d1.sock")}
	sockMap := fmt.Sprintf("%s=%s,%s=%s", addrs[0], socks[0], addrs[1], socks[1])
	peers := fmt.Sprintf("0-3=%s,4-7=%s", addrs[0], addrs[1])
	common := []string{
		"-graph", "dumbbell", "-s", "4", "-latency", "2",
		"-proto", "pushpull", "-seed", "7",
		"-tick", "1ms", "-linger", "2s",
		"-peers", peers, "-peer-sockets", sockMap,
	}
	var wg sync.WaitGroup
	outs := make([]strings.Builder, 2)
	errs := make([]error, 2)
	for i, spec := range []struct {
		listen, unix, nodes string
	}{
		{addrs[0], socks[0], "0-3"},
		{addrs[1], socks[1], "4-7"},
	} {
		wg.Add(1)
		go func(i int, listen, unix, nodes string) {
			defer wg.Done()
			args := append([]string{"-listen", listen, "-listen-unix", unix, "-nodes", nodes}, common...)
			errs[i] = run(args, &outs[i])
		}(i, spec.listen, spec.unix, spec.nodes)
	}
	wg.Wait()
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("daemon %d: %v\n%s", i, errs[i], outs[i].String())
		}
		out := outs[i].String()
		for _, w := range []string{"completed=true", "informed=4/4", "drain: clean=true"} {
			if !strings.Contains(out, w) {
				t.Errorf("daemon %d output missing %q:\n%s", i, w, out)
			}
		}
		var frames, wireBytes, localFrames, localBytes int64
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "wire: ") {
				fmt.Sscanf(line, "wire: frames=%d bytes=%d local-frames=%d local-bytes=%d",
					&frames, &wireBytes, &localFrames, &localBytes)
			}
		}
		if frames == 0 || localFrames != frames {
			t.Errorf("daemon %d leaked frames onto TCP: local-frames=%d/%d\n%s",
				i, localFrames, frames, out)
		}
	}
}

// reservePorts grabs n distinct loopback addresses and releases them so the
// daemons under test can claim them. (The tiny window between release and
// re-listen is tolerable on loopback; the dial retry covers start order.)
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}
