// Command gossipd starts one daemon of a live gossip cluster: it hosts a
// subset of a graph's nodes behind a TCP transport and runs a protocol to
// completion together with its peer daemons. Every daemon is started with
// the same graph flags and the same full peer map; they may start in any
// order (the transport retries dials while peers come up).
//
// A two-process push-pull run over the 64-node ring of cliques:
//
//	gossipd -graph ringcliques -k 8 -s 8 -latency 4 \
//	    -listen 127.0.0.1:7000 -nodes 0-31 \
//	    -peers 0-31=127.0.0.1:7000,32-63=127.0.0.1:7001 &
//	gossipd -graph ringcliques -k 8 -s 8 -latency 4 \
//	    -listen 127.0.0.1:7001 -nodes 32-63 \
//	    -peers 0-31=127.0.0.1:7000,32-63=127.0.0.1:7001
//
// Graphs: clique, star, path, cycle, grid, gnp, ringcliques, dumbbell,
// chunglu (power-law, -beta/-avgdeg), ringchords (latency-1 ring plus random
// chords with latencies in [1,-latmax], O(n·d) — the million-node family), or
// -load FILE (.json as graphio JSON, anything else as an edge list).
// Protocols: pushpull, flood, rr.
//
// Frames go out as the compact binary wire format by default; -wire json
// switches to the legacy JSON lines for debugging (inbound frames are
// auto-detected per connection, so daemons with different -wire settings
// interoperate). -flushwindow widens write batches by waiting that long
// after the first queued frame before flushing — more messages per syscall
// at the cost of up to that much added delivery latency. With the binary
// format everything bound for the same peer daemon within a flush window
// coalesces into FrameBatch super-frames (one frame, one ack, one
// retransmission timer per batch); -batch=false restores per-message frames.
//
// -pprof ADDR serves net/http/pprof on ADDR so cluster-scale runs can be
// profiled in place (see PERFORMANCE.md).
//
// Hosted nodes run on a sharded event loop (one shard per CPU core by
// default), so one daemon comfortably hosts 100k+ nodes. -shards sets the
// worker count directly; -nodes-per-shard derives it from the hosted node
// count instead (the two are mutually exclusive).
//
// Chaos flags inject deterministic faults (same -seed + same flags = same
// faults on every daemon): -drop and -dup are per-message probabilities,
// -jitter adds up to that many ticks of extra delay, -crash takes
// "node=tick" (permanent) or "node=tick:tick2" (recover at tick2), and
// -partition cuts all edges between two node sets for a tick window:
//
//	-partition "50:150:0-31/32-63"   # cut halves during ticks [50,150)
//	-partition "50:0:0-31/32-63"     # ... and never heal (until = 0)
//
// Separate multiple partition epochs with ";".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gossip"
	"gossip/internal/graphio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gossipd", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "ringcliques", "graph family")
		loadPath  = fs.String("load", "", "load the graph from a file instead of -graph")
		n         = fs.Int("n", 64, "node count (clique/star/path/cycle/gnp)")
		k         = fs.Int("k", 8, "cliques in ring / grid rows")
		s         = fs.Int("s", 8, "clique size / grid cols")
		latency   = fs.Int("latency", 1, "edge or bridge latency (family dependent)")
		p         = fs.Float64("p", 0.1, "GNP edge probability")
		proto     = fs.String("proto", "pushpull", "protocol: pushpull or flood")
		source    = fs.Int("source", 0, "broadcast source node")
		seed      = fs.Uint64("seed", 1, "deterministic run seed (same on every daemon)")
		listen    = fs.String("listen", "127.0.0.1:0", "TCP listen address for this daemon")
		listenFD  = fs.Int("listen-fd", 0, "inherit the TCP listener from this file descriptor instead of binding -listen (supervisors pass a pre-bound socket so reserved ports cannot be stolen; 0 = bind -listen)")
		listenUDS = fs.String("listen-unix", "", "additionally listen on a unix socket at this path for co-located peers (empty = off)")
		peerSocks = fs.String("peer-sockets", "", "unix socket paths advertised by co-located peer daemons, e.g. 127.0.0.1:7000=/tmp/d0.sock,...; sends to a local peer with a socket skip TCP")
		nodesSpec = fs.String("nodes", "", "nodes hosted here, e.g. 0-31 or 0,5,9 (empty = all)")
		peersSpec = fs.String("peers", "", "peer map, e.g. 0-31=host:7000,32-63=host:7001")
		tick      = fs.Duration("tick", gossip.DefaultLiveTick, "wall-clock duration of one round")
		maxTicks  = fs.Int("maxticks", 0, "tick budget (0 = default)")
		linger    = fs.Duration("linger", 2*time.Second, "keep serving peers this long after local completion")
		drainWait = fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown deadline: how long SIGTERM/SIGINT waits for queues to flush before closing anyway")
		crashSpec = fs.String("crash", "", "crash injection, e.g. 3=10,7=25:60 (node=tick[:recover-tick])")
		drop      = fs.Float64("drop", 0, "per-message drop probability in [0,1]")
		dup       = fs.Float64("dup", 0, "per-message duplication probability in [0,1]")
		jitter    = fs.Int("jitter", 0, "extra delivery delay of up to this many ticks per message")
		partSpec  = fs.String("partition", "", "link cuts, e.g. 50:150:0-31/32-63 (from:until:setA/setB; until 0 = never heal; ';' separates epochs)")
		faultSeed = fs.Uint64("faultseed", 0, "fault-decision seed (0 = use -seed)")
		rrK       = fs.Int("rrk", 0, "RR broadcast latency bound k (0 = the graph's max edge latency)")
		wire      = fs.String("wire", "binary", "wire format for outgoing frames: binary or json (inbound is auto-detected)")
		flushWin  = fs.Duration("flushwindow", 0, "wait this long after the first queued frame before flushing, widening write batches (0 = flush when the queue drains)")
		batch     = fs.Bool("batch", true, "coalesce frames bound for the same peer daemon into super-frames (binary wire only)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address, e.g. 127.0.0.1:6060 (empty = off)")
		chords    = fs.Int("chords", 4, "ringchords: expected chord edges per node")
		latMax    = fs.Int("latmax", 16, "ringchords: chord latencies drawn uniformly from [1,latmax]")
		beta      = fs.Float64("beta", 2.5, "chunglu: degree exponent (must be > 2)")
		avgDeg    = fs.Float64("avgdeg", 8, "chunglu: expected average degree")
		shards    = fs.Int("shards", 0, "event-loop shards hosted nodes are multiplexed onto (0 = one per CPU core)")
		nodesPer  = fs.Int("nodes-per-shard", 0, "size shards by node count instead: ceil(hosted/this) shards (0 = use -shards)")
		queueCap  = fs.Int("queue-frames", 0, "per-connection writer queue cap in frames; overflow sheds gossip oldest-first (0 = default, negative = unbounded — for dedicated bulk runs)")
		mailCap   = fs.Int("mailbox", 0, "per-shard mailbox cap in posts; overflow sheds locally delivered gossip, which has no retransmit under it (0 = default, negative = unbounded)")
		pendCap   = fs.Int("max-pend", 0, "transport-wide unacked reliable-send cap; overflow evicts oldest gossip (0 = default, negative = unbounded)")
		rto       = fs.Duration("rto", 0, "initial retransmission timeout, also the adaptive RTO's floor (0 = default)")
		maxRetr   = fs.Int("retrans", 0, "retransmission budget before a message is abandoned (0 = default, negative = no retransmission)")

		joinSpec = fs.String("join", "", "enable SWIM membership, bootstrapping from these seed nodes, e.g. 0 or 0,32 (empty = membership off)")
		probeIvl = fs.Int("probe-interval", 0, "membership probe interval in ticks (0 = default)")
		suspMult = fs.Int("suspicion-mult", 0, "membership suspicion timeout multiplier (0 = default)")
		maxPiggy = fs.Int("max-piggyback", 0, "membership deltas piggybacked per packet (0 = default)")
		memDump  = fs.Bool("memberdump", false, "print every hosted node's final membership table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer pln.Close()
		// The blank net/http/pprof import registers its handlers on the
		// default mux; serve that.
		go http.Serve(pln, nil)
		fmt.Fprintf(out, "pprof: listening on %s\n", pln.Addr())
	}

	g, err := loadGraph(*loadPath, *graphName, *n, *k, *s, *latency, *p, *chords, *latMax, *beta, *avgDeg, *seed)
	if err != nil {
		return err
	}
	hosted, err := parseNodeSet(*nodesSpec, g.N())
	if err != nil {
		return fmt.Errorf("-nodes: %w", err)
	}
	peers, err := parsePeers(*peersSpec, g.N())
	if err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	crashes, err := parseCrashes(*crashSpec, g.N())
	if err != nil {
		return fmt.Errorf("-crash: %w", err)
	}
	partitions, err := parsePartitions(*partSpec, g)
	if err != nil {
		return fmt.Errorf("-partition: %w", err)
	}

	wf, err := gossip.ParseLiveWireFormat(*wire)
	if err != nil {
		return fmt.Errorf("-wire: %w", err)
	}
	if *flushWin < 0 {
		return fmt.Errorf("-flushwindow: must be >= 0")
	}
	nShards, err := resolveShards(*shards, *nodesPer, len(hosted))
	if err != nil {
		return err
	}

	var tr *gossip.LiveTCPTransport
	if *listenFD > 0 {
		f := os.NewFile(uintptr(*listenFD), "listen-fd")
		ln, lerr := net.FileListener(f)
		f.Close()
		if lerr != nil {
			return fmt.Errorf("-listen-fd %d: %w", *listenFD, lerr)
		}
		tr, err = gossip.NewLiveTCPTransportFromListener(ln, hosted)
	} else {
		tr, err = gossip.NewLiveTCPTransport(*listen, hosted)
	}
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	defer tr.Close()
	if *listenUDS != "" {
		if err := tr.ListenUnix(*listenUDS); err != nil {
			return fmt.Errorf("-listen-unix: %w", err)
		}
	}
	if *peerSocks != "" {
		socks, serr := parsePeerSockets(*peerSocks)
		if serr != nil {
			return fmt.Errorf("-peer-sockets: %w", serr)
		}
		tr.SetPeerSockets(socks)
	}
	tr.SetWireFormat(wf)
	tr.SetFlushWindow(*flushWin)
	tr.SetBatching(*batch)
	tr.SetOverloadLimits(*queueCap, *pendCap)
	tr.SetRetransmit(*rto, *maxRetr)
	// Hosted nodes route in-process; map them to our own address so peer
	// validation below only flags genuinely unreachable nodes.
	for _, u := range hosted {
		if _, ok := peers[u]; !ok {
			peers[u] = tr.Addr().String()
		}
	}
	var missing []int
	for u := 0; u < g.N(); u++ {
		if _, ok := peers[gossip.NodeID(u)]; !ok {
			missing = append(missing, u)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("no peer address for nodes %v (cover every node with -peers or -nodes)", missing)
	}
	tr.SetPeers(peers)

	// Graceful shutdown: SIGTERM or SIGINT interrupts the run — nodes
	// broadcast a membership leave and stop initiating — then the transport
	// drains its queues under -drain-timeout before closing.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	interrupt := make(chan struct{})
	relayDone := make(chan struct{})
	defer close(relayDone)
	go func() {
		select {
		case <-sigCh:
			close(interrupt)
		case <-relayDone:
		}
	}()

	opts := gossip.LiveOptions{
		Seed:       *seed,
		Tick:       *tick,
		MaxTicks:   *maxTicks,
		Nodes:      hosted,
		Crashes:    crashes,
		Linger:     *linger,
		Interrupt:  interrupt,
		Shards:     nShards,
		MailboxCap: *mailCap,
	}
	if *joinSpec != "" {
		seeds, err := parseNodeSet(*joinSpec, g.N())
		if err != nil {
			return fmt.Errorf("-join: %w", err)
		}
		opts.Membership = &gossip.LiveMembership{
			Seeds:         seeds,
			ProbeInterval: *probeIvl,
			SuspicionMult: *suspMult,
			MaxPiggyback:  *maxPiggy,
		}
	} else if *memDump {
		return fmt.Errorf("-memberdump requires membership (-join)")
	}
	if *drop > 0 || *dup > 0 || *jitter > 0 || len(partitions) > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		opts.Faults = &gossip.LiveFaultConfig{
			Seed:        fseed,
			Drop:        *drop,
			Duplicate:   *dup,
			JitterTicks: *jitter,
			Partitions:  partitions,
		}
	}

	var lp gossip.LiveProtocol
	switch *proto {
	case "pushpull":
		lp = gossip.LivePushPull(gossip.NodeID(*source))
	case "flood":
		lp = gossip.LiveFlood(gossip.NodeID(*source))
	case "rr":
		k := *rrK
		if k <= 0 {
			for _, e := range g.Edges() {
				if e.Latency > k {
					k = e.Latency
				}
			}
		}
		lp, err = gossip.LiveRRBroadcast(g, k, 0, opts)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown protocol %q (want pushpull, flood or rr)", *proto)
	}

	fmt.Fprintf(out, "gossipd: graph=%s nodes=%d hosting=%d listen=%s proto=%s seed=%d tick=%v wire=%s batch=%v\n",
		describeGraph(*loadPath, *graphName), g.N(), len(hosted), tr.Addr(), *proto, *seed, *tick, wf, tr.Batching())

	res, err := gossip.RunLiveTransport(g, lp, tr, opts)
	informed := 0
	for _, u := range hosted {
		if res.Done[u] {
			informed++
		}
	}
	fmt.Fprintf(out, "completed=%v interrupted=%v informed=%d/%d ticks=%d messages=%d bytes=%d wall=%v dropped=%d\n",
		res.Completed, res.Interrupted, informed, len(hosted), res.Metrics.Ticks, res.Metrics.Messages(),
		res.Metrics.Bytes, res.Metrics.Wall.Round(time.Millisecond), tr.Dropped())
	if f := res.Faults; f.Dropped() > 0 || f.InjectedDups > 0 || f.Retransmits > 0 || len(f.Partitions) > 0 {
		fmt.Fprintf(out, "faults: injected-drops=%d partition-drops=%d transport-drops=%d dups=%d jittered=%d retransmits=%d dedup-hits=%d partitions=%d\n",
			f.InjectedDrops, f.PartitionDrops, f.TransportDrops, f.InjectedDups, f.Jittered,
			f.Retransmits, f.DupsSuppressed, len(f.Partitions))
	}
	if ov := res.Faults.Overload; ov != (gossip.LiveOverloadCounts{}) {
		fmt.Fprintf(out, "overload: shed-queue=%d shed-pend=%d member-backpressured=%d retry-trimmed=%d dropped-dead-peer=%d breaker-opens=%d breaker-drops=%d\n",
			ov.ShedQueue, ov.ShedPend, ov.MemberBackpressured, ov.RetryBurstTrimmed,
			ov.DroppedDeadPeer, ov.BreakerOpens, ov.BreakerDrops)
	}
	if opts.Membership != nil {
		printMembership(out, res, hosted, *memDump)
	}
	// Always drain before exit — on interrupt this is the graceful-shutdown
	// flush; after a completed run it should be instant and clean, and the
	// report line is what cluster harnesses (cmd/gossipctl) assert on.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	rep, derr := tr.Drain(ctx)
	cancel()
	fmt.Fprintf(out, "drain: clean=%v queued=%d pending=%d abandoned-timers=%d wall=%v\n",
		rep.Clean, rep.QueuedAtClose, rep.PendingAtClose, rep.AbandonedTimers,
		rep.Wall.Round(time.Millisecond))
	// The wire ledger, printed after the drain so the tail of the ack traffic
	// is included. local-frames/local-bytes are the subset that rode a local
	// fabric (unix socket or in-process ring) instead of TCP — cluster
	// harnesses assert on them to prove the fast path was actually taken.
	fmt.Fprintf(out, "wire: frames=%d bytes=%d local-frames=%d local-bytes=%d\n",
		tr.WireFramesOut(), tr.WireBytesOut(), tr.WireLocalFrames(), tr.WireLocalBytes())
	if derr != nil && !errors.Is(derr, context.DeadlineExceeded) {
		return derr
	}
	return err
}

// printMembership summarizes the run's final membership views: one aggregate
// line always, and with -memberdump one table line per hosted node.
func printMembership(out io.Writer, res gossip.LiveResult, hosted []gossip.NodeID, dump bool) {
	alive, suspect, dead := 0, 0, 0
	for _, u := range hosted {
		for _, up := range res.Members[u] {
			switch up.St {
			case gossip.MemberAlive:
				alive++
			case gossip.MemberSuspect:
				suspect++
			case gossip.MemberDead:
				dead++
			}
		}
	}
	fmt.Fprintf(out, "membership: packets=%d bytes=%d view-entries alive=%d suspect=%d dead=%d\n",
		res.Metrics.MemberPackets, res.Metrics.MemberBytes, alive, suspect, dead)
	if !dump {
		return
	}
	for _, u := range hosted {
		var b strings.Builder
		fmt.Fprintf(&b, "member table %d:", u)
		for _, up := range res.Members[u] {
			fmt.Fprintf(&b, " %d=%s/%d", up.Node, up.St, up.Inc)
		}
		fmt.Fprintln(out, b.String())
	}
}

// resolveShards turns the -shards / -nodes-per-shard flag pair into a shard
// count for LiveOptions. The flags are mutually exclusive: -shards sets the
// worker count directly, -nodes-per-shard derives it from the hosted node
// count (ceil(hosted/nps)); zero for both defers to the runtime default (one
// shard per CPU core).
func resolveShards(shards, nodesPer, hosted int) (int, error) {
	if shards < 0 {
		return 0, fmt.Errorf("-shards: must be >= 0")
	}
	if nodesPer < 0 {
		return 0, fmt.Errorf("-nodes-per-shard: must be >= 0")
	}
	if shards > 0 && nodesPer > 0 {
		return 0, fmt.Errorf("-shards and -nodes-per-shard are mutually exclusive")
	}
	if nodesPer > 0 {
		n := (hosted + nodesPer - 1) / nodesPer
		if n < 1 {
			n = 1
		}
		return n, nil
	}
	return shards, nil
}

func loadGraph(loadPath, name string, n, k, s, latency int, p float64, chords, latMax int, beta, avgDeg float64, seed uint64) (*gossip.Graph, error) {
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(loadPath, ".json") {
			return graphio.DecodeJSON(f)
		}
		return graphio.ReadEdgeList(f)
	}
	switch name {
	case "clique":
		return gossip.Clique(n, latency), nil
	case "star":
		return gossip.Star(n, latency), nil
	case "path":
		return gossip.Path(n, latency), nil
	case "cycle":
		return gossip.Cycle(n, latency), nil
	case "grid":
		return gossip.Grid(k, s, latency), nil
	case "gnp":
		return gossip.GNP(n, p, latency, true, seed), nil
	case "ringcliques":
		return gossip.RingOfCliques(k, s, latency), nil
	case "dumbbell":
		return gossip.Dumbbell(s, latency), nil
	case "chunglu":
		return gossip.ChungLu(n, beta, avgDeg, latency, seed), nil
	case "ringchords":
		return gossip.RingChords(n, chords, latMax, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", name)
	}
}

func describeGraph(loadPath, name string) string {
	if loadPath != "" {
		return loadPath
	}
	return name
}

// parseNodeSet parses "0-31", "0,5,9", or a mix; empty means all n nodes.
func parseNodeSet(spec string, n int) ([]gossip.NodeID, error) {
	if spec == "" {
		all := make([]gossip.NodeID, n)
		for u := range all {
			all[u] = gossip.NodeID(u)
		}
		return all, nil
	}
	var ids []gossip.NodeID
	seen := make(map[gossip.NodeID]bool)
	for _, part := range strings.Split(spec, ",") {
		lo, hi, err := parseRange(part)
		if err != nil {
			return nil, err
		}
		for u := lo; u <= hi; u++ {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("node %d out of range [0,%d)", u, n)
			}
			if seen[gossip.NodeID(u)] {
				return nil, fmt.Errorf("node %d listed twice", u)
			}
			seen[gossip.NodeID(u)] = true
			ids = append(ids, gossip.NodeID(u))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// parsePeers parses "0-31=host:port,32-63=host:port" into a full address map.
func parsePeers(spec string, n int) (map[gossip.NodeID]string, error) {
	peers := make(map[gossip.NodeID]string)
	if spec == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		ids, addr, ok := strings.Cut(part, "=")
		if !ok || addr == "" {
			return nil, fmt.Errorf("entry %q is not nodes=addr", part)
		}
		lo, hi, err := parseRange(ids)
		if err != nil {
			return nil, err
		}
		for u := lo; u <= hi; u++ {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("node %d out of range [0,%d)", u, n)
			}
			peers[gossip.NodeID(u)] = addr
		}
	}
	return peers, nil
}

// parsePeerSockets parses "host:port=/path/a.sock,host:port=/path/b.sock"
// into the peer-address→socket map SetPeerSockets takes. Paths may not
// contain commas.
func parsePeerSockets(spec string) (map[string]string, error) {
	socks := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		addr, path, ok := strings.Cut(part, "=")
		if !ok || addr == "" || path == "" {
			return nil, fmt.Errorf("entry %q is not addr=path", part)
		}
		socks[addr] = path
	}
	return socks, nil
}

// parseCrashes parses "3=10,7=25:60" into node→crash plan: "node=tick"
// crashes permanently, "node=tick:tick2" rejoins with cleared state at tick2.
func parseCrashes(spec string, n int) (map[gossip.NodeID]gossip.LiveCrash, error) {
	if spec == "" {
		return nil, nil
	}
	crashes := make(map[gossip.NodeID]gossip.LiveCrash)
	for _, part := range strings.Split(spec, ",") {
		node, tickStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not node=tick[:recover-tick]", part)
		}
		u, err := strconv.Atoi(node)
		if err != nil || u < 0 || u >= n {
			return nil, fmt.Errorf("bad node in %q", part)
		}
		atStr, recStr, hasRec := strings.Cut(tickStr, ":")
		t, err := strconv.Atoi(atStr)
		if err != nil || t < 1 {
			return nil, fmt.Errorf("bad tick in %q (must be >= 1)", part)
		}
		plan := gossip.LiveCrash{At: t}
		if hasRec {
			r, err := strconv.Atoi(recStr)
			if err != nil || r <= t {
				return nil, fmt.Errorf("bad recovery tick in %q (must be > crash tick)", part)
			}
			plan.RecoverAt = r
		}
		crashes[gossip.NodeID(u)] = plan
	}
	return crashes, nil
}

// parsePartitions parses "from:until:setA/setB" epochs separated by ";" into
// partition schedules, deriving each epoch's cut edge set from the graph.
func parsePartitions(spec string, g *gossip.Graph) ([]gossip.LivePartition, error) {
	if spec == "" {
		return nil, nil
	}
	var parts []gossip.LivePartition
	for _, epoch := range strings.Split(spec, ";") {
		fields := strings.SplitN(epoch, ":", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("epoch %q is not from:until:setA/setB", epoch)
		}
		from, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || from < 0 {
			return nil, fmt.Errorf("bad from tick in %q", epoch)
		}
		until, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil || (until != 0 && until <= from) {
			return nil, fmt.Errorf("bad until tick in %q (must be > from, or 0 = never heal)", epoch)
		}
		aSpec, bSpec, ok := strings.Cut(fields[2], "/")
		if !ok {
			return nil, fmt.Errorf("epoch %q missing setA/setB", epoch)
		}
		a, err := parseNodeSet(aSpec, g.N())
		if err != nil {
			return nil, fmt.Errorf("epoch %q side A: %w", epoch, err)
		}
		b, err := parseNodeSet(bSpec, g.N())
		if err != nil {
			return nil, fmt.Errorf("epoch %q side B: %w", epoch, err)
		}
		edges := gossip.LiveCutBetween(g, a, b)
		if len(edges) == 0 {
			return nil, fmt.Errorf("epoch %q cuts no edges", epoch)
		}
		parts = append(parts, gossip.LivePartition{From: from, Until: until, Edges: edges})
	}
	return parts, nil
}

// parseRange parses "5" or "3-9" into an inclusive [lo, hi] pair.
func parseRange(s string) (lo, hi int, err error) {
	if a, b, ok := strings.Cut(s, "-"); ok {
		lo, err = strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
		hi, err = strconv.Atoi(strings.TrimSpace(b))
		if err != nil || hi < lo {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, 0, fmt.Errorf("bad node %q", s)
	}
	return lo, lo, nil
}
