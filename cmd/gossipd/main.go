// Command gossipd starts one daemon of a live gossip cluster: it hosts a
// subset of a graph's nodes behind a TCP transport and runs a protocol to
// completion together with its peer daemons. Every daemon is started with
// the same graph flags and the same full peer map; they may start in any
// order (the transport retries dials while peers come up).
//
// A two-process push-pull run over the 64-node ring of cliques:
//
//	gossipd -graph ringcliques -k 8 -s 8 -latency 4 \
//	    -listen 127.0.0.1:7000 -nodes 0-31 \
//	    -peers 0-31=127.0.0.1:7000,32-63=127.0.0.1:7001 &
//	gossipd -graph ringcliques -k 8 -s 8 -latency 4 \
//	    -listen 127.0.0.1:7001 -nodes 32-63 \
//	    -peers 0-31=127.0.0.1:7000,32-63=127.0.0.1:7001
//
// Graphs: clique, star, path, cycle, grid, gnp, ringcliques, dumbbell, or
// -load FILE (.json as graphio JSON, anything else as an edge list).
// Protocols: pushpull, flood.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"gossip"
	"gossip/internal/graphio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gossipd", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "ringcliques", "graph family")
		loadPath  = fs.String("load", "", "load the graph from a file instead of -graph")
		n         = fs.Int("n", 64, "node count (clique/star/path/cycle/gnp)")
		k         = fs.Int("k", 8, "cliques in ring / grid rows")
		s         = fs.Int("s", 8, "clique size / grid cols")
		latency   = fs.Int("latency", 1, "edge or bridge latency (family dependent)")
		p         = fs.Float64("p", 0.1, "GNP edge probability")
		proto     = fs.String("proto", "pushpull", "protocol: pushpull or flood")
		source    = fs.Int("source", 0, "broadcast source node")
		seed      = fs.Uint64("seed", 1, "deterministic run seed (same on every daemon)")
		listen    = fs.String("listen", "127.0.0.1:0", "TCP listen address for this daemon")
		nodesSpec = fs.String("nodes", "", "nodes hosted here, e.g. 0-31 or 0,5,9 (empty = all)")
		peersSpec = fs.String("peers", "", "peer map, e.g. 0-31=host:7000,32-63=host:7001")
		tick      = fs.Duration("tick", gossip.DefaultLiveTick, "wall-clock duration of one round")
		maxTicks  = fs.Int("maxticks", 0, "tick budget (0 = default)")
		linger    = fs.Duration("linger", 2*time.Second, "keep serving peers this long after local completion")
		crashSpec = fs.String("crash", "", "fail-stop injection, e.g. 3=10,7=25 (node=tick)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadGraph(*loadPath, *graphName, *n, *k, *s, *latency, *p, *seed)
	if err != nil {
		return err
	}
	hosted, err := parseNodeSet(*nodesSpec, g.N())
	if err != nil {
		return fmt.Errorf("-nodes: %w", err)
	}
	peers, err := parsePeers(*peersSpec, g.N())
	if err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	crashes, err := parseCrashes(*crashSpec, g.N())
	if err != nil {
		return fmt.Errorf("-crash: %w", err)
	}

	tr, err := gossip.NewLiveTCPTransport(*listen, hosted)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	defer tr.Close()
	// Hosted nodes route in-process; map them to our own address so peer
	// validation below only flags genuinely unreachable nodes.
	for _, u := range hosted {
		if _, ok := peers[u]; !ok {
			peers[u] = tr.Addr().String()
		}
	}
	var missing []int
	for u := 0; u < g.N(); u++ {
		if _, ok := peers[gossip.NodeID(u)]; !ok {
			missing = append(missing, u)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("no peer address for nodes %v (cover every node with -peers or -nodes)", missing)
	}
	tr.SetPeers(peers)

	var lp gossip.LiveProtocol
	switch *proto {
	case "pushpull":
		lp = gossip.LivePushPull(gossip.NodeID(*source))
	case "flood":
		lp = gossip.LiveFlood(gossip.NodeID(*source))
	default:
		return fmt.Errorf("unknown protocol %q (want pushpull or flood)", *proto)
	}

	fmt.Fprintf(out, "gossipd: graph=%s nodes=%d hosting=%d listen=%s proto=%s seed=%d tick=%v\n",
		describeGraph(*loadPath, *graphName), g.N(), len(hosted), tr.Addr(), *proto, *seed, *tick)

	res, err := gossip.RunLiveTransport(g, lp, tr, gossip.LiveOptions{
		Seed:     *seed,
		Tick:     *tick,
		MaxTicks: *maxTicks,
		Nodes:    hosted,
		Crashes:  crashes,
		Linger:   *linger,
	})
	informed := 0
	for _, u := range hosted {
		if res.Done[u] {
			informed++
		}
	}
	fmt.Fprintf(out, "completed=%v informed=%d/%d ticks=%d messages=%d bytes=%d wall=%v dropped=%d\n",
		res.Completed, informed, len(hosted), res.Metrics.Ticks, res.Metrics.Messages(),
		res.Metrics.Bytes, res.Metrics.Wall.Round(time.Millisecond), tr.Dropped())
	return err
}

func loadGraph(loadPath, name string, n, k, s, latency int, p float64, seed uint64) (*gossip.Graph, error) {
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(loadPath, ".json") {
			return graphio.DecodeJSON(f)
		}
		return graphio.ReadEdgeList(f)
	}
	switch name {
	case "clique":
		return gossip.Clique(n, latency), nil
	case "star":
		return gossip.Star(n, latency), nil
	case "path":
		return gossip.Path(n, latency), nil
	case "cycle":
		return gossip.Cycle(n, latency), nil
	case "grid":
		return gossip.Grid(k, s, latency), nil
	case "gnp":
		return gossip.GNP(n, p, latency, true, seed), nil
	case "ringcliques":
		return gossip.RingOfCliques(k, s, latency), nil
	case "dumbbell":
		return gossip.Dumbbell(s, latency), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", name)
	}
}

func describeGraph(loadPath, name string) string {
	if loadPath != "" {
		return loadPath
	}
	return name
}

// parseNodeSet parses "0-31", "0,5,9", or a mix; empty means all n nodes.
func parseNodeSet(spec string, n int) ([]gossip.NodeID, error) {
	if spec == "" {
		all := make([]gossip.NodeID, n)
		for u := range all {
			all[u] = gossip.NodeID(u)
		}
		return all, nil
	}
	var ids []gossip.NodeID
	seen := make(map[gossip.NodeID]bool)
	for _, part := range strings.Split(spec, ",") {
		lo, hi, err := parseRange(part)
		if err != nil {
			return nil, err
		}
		for u := lo; u <= hi; u++ {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("node %d out of range [0,%d)", u, n)
			}
			if seen[gossip.NodeID(u)] {
				return nil, fmt.Errorf("node %d listed twice", u)
			}
			seen[gossip.NodeID(u)] = true
			ids = append(ids, gossip.NodeID(u))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// parsePeers parses "0-31=host:port,32-63=host:port" into a full address map.
func parsePeers(spec string, n int) (map[gossip.NodeID]string, error) {
	peers := make(map[gossip.NodeID]string)
	if spec == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		ids, addr, ok := strings.Cut(part, "=")
		if !ok || addr == "" {
			return nil, fmt.Errorf("entry %q is not nodes=addr", part)
		}
		lo, hi, err := parseRange(ids)
		if err != nil {
			return nil, err
		}
		for u := lo; u <= hi; u++ {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("node %d out of range [0,%d)", u, n)
			}
			peers[gossip.NodeID(u)] = addr
		}
	}
	return peers, nil
}

// parseCrashes parses "3=10,7=25" into node→crash-tick.
func parseCrashes(spec string, n int) (map[gossip.NodeID]int, error) {
	if spec == "" {
		return nil, nil
	}
	crashes := make(map[gossip.NodeID]int)
	for _, part := range strings.Split(spec, ",") {
		node, tickStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not node=tick", part)
		}
		u, err := strconv.Atoi(node)
		if err != nil || u < 0 || u >= n {
			return nil, fmt.Errorf("bad node in %q", part)
		}
		t, err := strconv.Atoi(tickStr)
		if err != nil || t < 1 {
			return nil, fmt.Errorf("bad tick in %q (must be >= 1)", part)
		}
		crashes[gossip.NodeID(u)] = t
	}
	return crashes, nil
}

// parseRange parses "5" or "3-9" into an inclusive [lo, hi] pair.
func parseRange(s string) (lo, hi int, err error) {
	if a, b, ok := strings.Cut(s, "-"); ok {
		lo, err = strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
		hi, err = strconv.Atoi(strings.TrimSpace(b))
		if err != nil || hi < lo {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, 0, fmt.Errorf("bad node %q", s)
	}
	return lo, lo, nil
}
