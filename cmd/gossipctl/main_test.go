package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	builtPath string
	buildErr  error
)

// buildGossipd compiles the sibling gossipd command once per test binary and
// returns the path; gossipctl execs real daemon processes, exactly as in
// production.
func buildGossipd(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gossipctl-test")
		if err != nil {
			buildErr = err
			return
		}
		builtPath = filepath.Join(dir, "gossipd")
		cmd := exec.Command("go", "build", "-o", builtPath, "gossip/cmd/gossipd")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("go build gossipd: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building gossipd: %v", buildErr)
	}
	return builtPath
}

// TestGossipctlSmallCluster is the end-to-end harness check: four real
// daemon processes, a ringchords graph partitioned across them, flood to
// completion, clean drains everywhere.
func TestGossipctlSmallCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster run is not -short friendly")
	}
	bin := buildGossipd(t)
	var sb strings.Builder
	args := []string{
		"-gossipd", bin, "-daemons", "4",
		"-graph", "ringchords", "-n", "400", "-chords", "4", "-latmax", "8",
		"-proto", "flood", "-seed", "3",
		"-tick", "2ms", "-linger", "1s", "-timeout", "2m",
	}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "completed=true") || !strings.Contains(out, "drains-clean=true") {
		t.Errorf("summary missing completion markers:\n%s", out)
	}
}

// TestGossipctlLocalFabrics runs the small cluster once per socket fabric
// mode: -local-fabric unix requires every frame to ride the unix sockets,
// auto requires the fast path was taken at least once per daemon. Both
// asserts live in run() itself (scanning the daemons' wire: ledgers); here
// we additionally pin that the summary reports a nonzero local-frame count.
func TestGossipctlLocalFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster run is not -short friendly")
	}
	bin := buildGossipd(t)
	for _, fabric := range []string{"unix", "auto"} {
		t.Run(fabric, func(t *testing.T) {
			var sb strings.Builder
			args := []string{
				"-gossipd", bin, "-daemons", "3",
				"-graph", "ringchords", "-n", "300", "-chords", "4", "-latmax", "8",
				"-proto", "flood", "-seed", "7", "-local-fabric", fabric,
				"-tick", "2ms", "-linger", "1s", "-timeout", "2m",
			}
			if err := run(args, &sb); err != nil {
				t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
			}
			out := sb.String()
			if !strings.Contains(out, "completed=true") {
				t.Errorf("summary missing completion markers:\n%s", out)
			}
			if strings.Contains(out, "local-frames=0/") {
				t.Errorf("no frames took the local fabric:\n%s", out)
			}
		})
	}
}

// TestGossipctlMembership runs the convergence variant: SWIM on, every
// daemon's aggregated view must exist with zero false deaths.
func TestGossipctlMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster run is not -short friendly")
	}
	bin := buildGossipd(t)
	var sb strings.Builder
	args := []string{
		"-gossipd", bin, "-daemons", "2",
		"-graph", "ringchords", "-n", "64", "-chords", "4", "-latmax", "4",
		"-proto", "pushpull", "-seed", "5", "-join",
		"-tick", "2ms", "-linger", "1s", "-timeout", "2m",
	}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
}

// TestGossipctlMillionNodes is the acceptance-criteria run: >= 1M total
// nodes across 8 daemons over real TCP, broadcast completion and clean
// drains. Minutes of wall clock on one core, so it is opt-in:
//
//	GOSSIPCTL_1M=1 go test ./cmd/gossipctl -run MillionNodes -timeout 30m -v
//
// The run lifts the overload caps (-mailbox -1, -queue-frames -1) and
// widens the RTO floor: a 1M-node flood frontier is wider than the default
// per-shard mailbox (a 125k-node shard sees bursts far beyond the 64Ki
// cap), and shed local posts have no retransmit layer under them — flood
// has no protocol-level repair either, so every hosted range stalls a few
// dozen nodes short of completion under the protective defaults. On a
// dedicated box the right configuration is deep queues (memory is the
// buffer) and a patient RTO (acks legitimately sit behind seconds of
// queued bulk), which is exactly what these knobs are for.
func TestGossipctlMillionNodes(t *testing.T) {
	if os.Getenv("GOSSIPCTL_1M") == "" {
		t.Skip("set GOSSIPCTL_1M=1 to run the 1M-node cluster experiment")
	}
	bin := buildGossipd(t)
	var sb strings.Builder
	args := []string{
		"-gossipd", bin, "-daemons", "8",
		"-graph", "ringchords", "-n", "1000000", "-chords", "4", "-latmax", "16",
		"-proto", "flood", "-seed", "9",
		"-tick", "50ms", "-linger", "10s",
		"-flushwindow", "2ms", "-nodes-per-shard", "200000",
		"-mailbox", "-1", "-queue-frames", "-1", "-rto", "2s", "-retrans", "8",
		"-timeout", "25m", "-v",
	}
	err := run(args, &sb)
	t.Logf("gossipctl output:\n%s", tail(sb.String(), 40))
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
}

func tail(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

func TestGossipctlFlagErrors(t *testing.T) {
	for _, tt := range []struct {
		args []string
		want string
	}{
		{[]string{"-daemons", "0"}, "-daemons"},
		{[]string{"-daemons", "8", "-n", "4"}, "every daemon needs"},
		{[]string{"-local-fabric", "shm"}, "-local-fabric"},
	} {
		var sb strings.Builder
		err := run(tt.args, &sb)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("run(%v) error = %v, want substring %q", tt.args, err, tt.want)
		}
	}
}

// TestScanLine pins the output contract between gossipd and gossipctl: if a
// gossipd summary line changes shape, this fails before any cluster test.
func TestScanLine(t *testing.T) {
	var r daemonReport
	for _, line := range []string{
		"gossipd: graph=ringchords nodes=400 hosting=100 listen=127.0.0.1:9 proto=flood seed=3 tick=2ms wire=binary batch=true",
		"completed=true interrupted=false informed=100/100 ticks=42 messages=1234 bytes=99 wall=1s dropped=0",
		"membership: packets=10 bytes=100 view-entries alive=64 suspect=0 dead=0",
		"drain: clean=true queued=0 pending=0 abandoned-timers=0 wall=1ms",
		"wire: frames=5000 bytes=60000 local-frames=5000 local-bytes=60000",
	} {
		scanLine(&r, line)
	}
	if !r.started || !r.completed || r.informed != 100 || r.hosted != 100 ||
		r.messages != 1234 || !r.drainClean || !r.sawMember || !r.memberOK {
		t.Errorf("scan mismatch: %+v", r)
	}
	if !r.sawWire || r.frames != 5000 || r.localFrames != 5000 {
		t.Errorf("wire ledger scan mismatch: %+v", r)
	}
	var bad daemonReport
	scanLine(&bad, "completed=false interrupted=true informed=3/100 ticks=9 messages=1 bytes=2 wall=1s dropped=5")
	scanLine(&bad, "drain: clean=false queued=7 pending=1 abandoned-timers=0 wall=1ms")
	if bad.completed || bad.drainClean || bad.informed != 3 {
		t.Errorf("scan of failing daemon: %+v", bad)
	}
}
