// Command gossipctl launches and supervises a multi-daemon live gossip
// cluster on one machine: it partitions a generated graph into K contiguous
// node ranges, reserves a listen address per daemon, emits the shared peer
// map, starts K gossipd processes, streams and scans their output, and
// verifies the run end to end — every daemon must report broadcast
// completion (all hosted nodes informed) and a clean drain.
//
// A 4-daemon × 2.5k-node flood over the million-node-friendly ringchords
// family:
//
//	gossipctl -gossipd ./gossipd -daemons 4 -graph ringchords -n 10000 \
//	    -chords 4 -latmax 16 -proto flood -tick 5ms -linger 2s
//
// All graph and protocol flags are passed through to every daemon unchanged,
// so the fleet agrees on the graph by construction. -join additionally
// enables SWIM membership (bootstrapping from node 0) and reports the
// aggregated view convergence. -timeout bounds the whole run: on expiry the
// fleet is killed and the run fails.
//
// Listen ports are reserved race-free: gossipctl binds each daemon's TCP
// listener itself and passes the bound socket to the child as an inherited
// descriptor (gossipd -listen-fd), so nothing can steal a port between
// reservation and listen. -local-fabric picks the intra-host transport
// between the co-located daemons: "tcp" (default), "unix" (each daemon
// listens on a run-scoped unix socket, learns every peer's socket via
// -peer-sockets, and the run fails unless every frame rode the sockets), or
// "auto" (same wiring, but only requires that the fast path was taken at
// least once per daemon — the daemons themselves verify a peer's address is
// local before upgrading it). Both socket modes assert on the daemons' final
// "wire:" ledger lines (WireLocalFrames).
//
// The ≥1M-node configuration from the ROADMAP (8 daemons × 125k nodes, see
// PERFORMANCE.md) is exercised by TestGossipctlMillionNodes, gated behind
// GOSSIPCTL_1M=1 because it takes minutes of wall clock on one core.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipctl:", err)
		os.Exit(1)
	}
}

// daemonReport is what the output scanner extracts from one daemon's stdout.
type daemonReport struct {
	started     bool // saw the gossipd banner line
	completed   bool // completed=true
	informed    int  // informed=<x>/<y>
	hosted      int
	drainClean  bool // drain: clean=true
	messages    int64
	memberOK    bool // membership: ... suspect=0 dead=0 with alive>0
	sawMember   bool
	sawWire     bool  // saw the wire: ledger line
	frames      int64 // wire: frames=<n>
	localFrames int64 // wire: local-frames=<n>
	raw         strings.Builder
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gossipctl", flag.ContinueOnError)
	var (
		gossipd  = fs.String("gossipd", "gossipd", "path to the gossipd binary")
		daemons  = fs.Int("daemons", 4, "number of gossipd processes to launch")
		n        = fs.Int("n", 10000, "total node count, partitioned contiguously across daemons")
		graph    = fs.String("graph", "ringchords", "graph family (passed through to every daemon)")
		chords   = fs.Int("chords", 4, "ringchords: expected chord edges per node")
		latMax   = fs.Int("latmax", 16, "ringchords: chord latency bound")
		latency  = fs.Int("latency", 1, "edge latency (family dependent)")
		kFlag    = fs.Int("k", 8, "cliques in ring / grid rows")
		sFlag    = fs.Int("s", 8, "clique size / grid cols")
		p        = fs.Float64("p", 0.1, "GNP edge probability")
		beta     = fs.Float64("beta", 2.5, "chunglu degree exponent")
		avgDeg   = fs.Float64("avgdeg", 8, "chunglu average degree")
		proto    = fs.String("proto", "flood", "protocol: pushpull, flood or rr")
		source   = fs.Int("source", 0, "broadcast source node")
		seed     = fs.Uint64("seed", 1, "deterministic run seed (same on every daemon)")
		tick     = fs.Duration("tick", 2*time.Millisecond, "wall-clock duration of one round")
		maxTicks = fs.Int("maxticks", 0, "tick budget per daemon (0 = gossipd default)")
		linger   = fs.Duration("linger", 2*time.Second, "daemon linger after local completion")
		flushWin = fs.Duration("flushwindow", 200*time.Microsecond, "daemon flush window (super-frame aggregation width)")
		wire     = fs.String("wire", "binary", "wire format: binary or json")
		batch    = fs.Bool("batch", true, "cross-daemon super-frame batching")
		nodesPer = fs.Int("nodes-per-shard", 0, "per-daemon shard sizing (0 = gossipd default)")
		queueCap = fs.Int("queue-frames", 0, "per-connection writer queue cap (0 = gossipd default, negative = unbounded)")
		mailCap  = fs.Int("mailbox", 0, "per-shard mailbox cap in posts (0 = gossipd default, negative = unbounded)")
		pendCap  = fs.Int("max-pend", 0, "unacked reliable-send cap per daemon (0 = gossipd default, negative = unbounded)")
		rto      = fs.Duration("rto", 0, "initial retransmission timeout / adaptive-RTO floor (0 = gossipd default)")
		maxRetr  = fs.Int("retrans", 0, "retransmission budget (0 = gossipd default, negative = off)")
		join     = fs.Bool("join", false, "enable SWIM membership from seed node 0 and check convergence")
		timeout  = fs.Duration("timeout", 10*time.Minute, "kill the fleet and fail after this long")
		verbose  = fs.Bool("v", false, "stream per-daemon output, prefixed d<i>:")
		pprof0   = fs.Int("pprof-base", 0, "serve daemon i's pprof on 127.0.0.1:(base+i) (0 = off)")
		fabric   = fs.String("local-fabric", "tcp", "intra-host transport between the co-located daemons: tcp, unix (every frame must ride the sockets), or auto (daemons upgrade local peers to sockets; the run must use them at least once)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *daemons < 1 {
		return fmt.Errorf("-daemons: must be >= 1")
	}
	if *n < *daemons {
		return fmt.Errorf("-n %d < -daemons %d: every daemon needs at least one node", *n, *daemons)
	}
	switch *fabric {
	case "tcp", "unix", "auto":
	default:
		return fmt.Errorf("-local-fabric: %q (want tcp, unix or auto)", *fabric)
	}

	// Contiguous partition: daemon i hosts [i·n/K, (i+1)·n/K).
	ranges := make([][2]int, *daemons)
	for i := 0; i < *daemons; i++ {
		ranges[i] = [2]int{i * *n / *daemons, (i+1)**n / *daemons - 1}
	}
	// Reserve one listener per daemon and HOLD it: the bound socket is passed
	// to the daemon as an inherited descriptor (-listen-fd), so no other
	// process can steal the port between reservation and the daemon's listen
	// — the bind-then-close reservation this replaces had exactly that race.
	lns, addrs, err := reserveListeners(*daemons)
	if err != nil {
		return err
	}
	defer closeAll(lns)
	var peerParts []string
	for i, r := range ranges {
		peerParts = append(peerParts, fmt.Sprintf("%d-%d=%s", r[0], r[1], addrs[i]))
	}
	peers := strings.Join(peerParts, ",")

	// On the unix and auto fabrics every daemon listens on a socket in a
	// run-scoped directory and learns every peer's socket, so sends between
	// the co-located daemons skip TCP (the daemons verify the peer address is
	// local before upgrading — that is the "auto" in -local-fabric auto).
	var socks []string
	var sockMap string
	if *fabric != "tcp" {
		dir, terr := os.MkdirTemp("", "gossipctl-")
		if terr != nil {
			return terr
		}
		defer os.RemoveAll(dir)
		var sockParts []string
		for i := range ranges {
			sock := fmt.Sprintf("%s/d%d.sock", dir, i)
			socks = append(socks, sock)
			sockParts = append(sockParts, addrs[i]+"="+sock)
		}
		sockMap = strings.Join(sockParts, ",")
	}

	common := []string{
		"-graph", *graph, "-n", strconv.Itoa(*n),
		"-chords", strconv.Itoa(*chords), "-latmax", strconv.Itoa(*latMax),
		"-latency", strconv.Itoa(*latency),
		"-k", strconv.Itoa(*kFlag), "-s", strconv.Itoa(*sFlag),
		"-p", fmt.Sprint(*p), "-beta", fmt.Sprint(*beta), "-avgdeg", fmt.Sprint(*avgDeg),
		"-proto", *proto, "-source", strconv.Itoa(*source),
		"-seed", strconv.FormatUint(*seed, 10),
		"-tick", tick.String(), "-linger", linger.String(),
		"-flushwindow", flushWin.String(),
		"-wire", *wire, fmt.Sprintf("-batch=%v", *batch),
		"-peers", peers,
	}
	if *maxTicks > 0 {
		common = append(common, "-maxticks", strconv.Itoa(*maxTicks))
	}
	if *nodesPer > 0 {
		common = append(common, "-nodes-per-shard", strconv.Itoa(*nodesPer))
	}
	if *queueCap != 0 {
		common = append(common, "-queue-frames", strconv.Itoa(*queueCap))
	}
	if *mailCap != 0 {
		common = append(common, "-mailbox", strconv.Itoa(*mailCap))
	}
	if *pendCap != 0 {
		common = append(common, "-max-pend", strconv.Itoa(*pendCap))
	}
	if *rto != 0 {
		common = append(common, "-rto", rto.String())
	}
	if *maxRetr != 0 {
		common = append(common, "-retrans", strconv.Itoa(*maxRetr))
	}
	if *join {
		common = append(common, "-join", "0")
	}

	fmt.Fprintf(out, "gossipctl: daemons=%d nodes=%d graph=%s proto=%s peers=%d-ranges local-fabric=%s\n",
		*daemons, *n, *graph, *proto, len(ranges), *fabric)

	start := time.Now()
	reports := make([]daemonReport, *daemons)
	cmds := make([]*exec.Cmd, *daemons)
	scanners := make([]*lineWriter, *daemons)
	var outMu sync.Mutex
	for i := range cmds {
		// The daemon inherits its pre-bound listener as fd 3 (ExtraFiles[0]).
		args := append([]string{"-listen-fd", "3", "-nodes", fmt.Sprintf("%d-%d", ranges[i][0], ranges[i][1])}, common...)
		if socks != nil {
			args = append(args, "-listen-unix", socks[i], "-peer-sockets", sockMap)
		}
		if *pprof0 > 0 {
			args = append(args, "-pprof", fmt.Sprintf("127.0.0.1:%d", *pprof0+i))
		}
		lf, err := lns[i].(*net.TCPListener).File()
		if err != nil {
			killAll(cmds[:i])
			return fmt.Errorf("daemon %d listener fd: %w", i, err)
		}
		cmd := exec.Command(*gossipd, args...)
		cmd.ExtraFiles = []*os.File{lf}
		// Scan the daemon's output through an io.Writer rather than
		// StdoutPipe + goroutine: Wait closes a StdoutPipe as soon as the
		// child exits, which silently drops any still-buffered tail lines
		// (exactly the completed=/drain:/wire: lines the checks need) when
		// the scanner lags under load. With a Writer, Wait itself blocks
		// until every byte has been delivered.
		lw := &lineWriter{rep: &reports[i], daemon: i}
		if *verbose {
			lw.echo, lw.echoMu = out, &outMu
		}
		scanners[i] = lw
		cmd.Stdout = lw
		cmd.Stderr = lw // same Writer value: exec interleaves both streams
		if err := cmd.Start(); err != nil {
			lf.Close()
			killAll(cmds[:i])
			return fmt.Errorf("start daemon %d: %w", i, err)
		}
		// The child holds its own descriptor now; release both parent copies.
		lf.Close()
		lns[i].Close()
		lns[i] = nil
		cmds[i] = cmd
	}

	// Supervise: every daemon runs to completion on its own (the protocol
	// completes, linger expires, the daemon drains and exits). On timeout the
	// fleet is killed and the run fails.
	waitErrs := make([]error, *daemons)
	done := make(chan struct{})
	go func() {
		for i, cmd := range cmds {
			waitErrs[i] = cmd.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(*timeout):
		killAll(cmds)
		<-done
		return fmt.Errorf("fleet did not finish within %v (see -v output)", *timeout)
	}
	for _, lw := range scanners {
		lw.flush()
	}

	var totalMsgs int64
	var failures []string
	for i := range reports {
		r := &reports[i]
		totalMsgs += r.messages
		switch {
		case waitErrs[i] != nil:
			failures = append(failures, fmt.Sprintf("daemon %d exited with %v:\n%s", i, waitErrs[i], r.raw.String()))
		case !r.completed:
			failures = append(failures, fmt.Sprintf("daemon %d did not complete:\n%s", i, r.raw.String()))
		case r.informed != r.hosted || r.hosted == 0:
			failures = append(failures, fmt.Sprintf("daemon %d informed %d/%d", i, r.informed, r.hosted))
		case !r.drainClean:
			failures = append(failures, fmt.Sprintf("daemon %d drain not clean:\n%s", i, r.raw.String()))
		case *join && !(r.sawMember && r.memberOK):
			failures = append(failures, fmt.Sprintf("daemon %d membership not converged:\n%s", i, r.raw.String()))
		case *fabric != "tcp" && !(r.sawWire && r.localFrames > 0):
			failures = append(failures, fmt.Sprintf("daemon %d sent no frames over the local fabric (local-frames=%d):\n%s", i, r.localFrames, r.raw.String()))
		case *fabric == "unix" && r.localFrames != r.frames:
			failures = append(failures, fmt.Sprintf("daemon %d leaked frames onto TCP: local-frames=%d frames=%d", i, r.localFrames, r.frames))
		}
	}
	var localFrames, totalFrames int64
	for i := range reports {
		localFrames += reports[i].localFrames
		totalFrames += reports[i].frames
	}
	fmt.Fprintf(out, "gossipctl: completed=%v drains-clean=%v messages=%d local-frames=%d/%d wall=%v\n",
		len(failures) == 0, len(failures) == 0, totalMsgs, localFrames, totalFrames,
		time.Since(start).Round(time.Millisecond))
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d daemons failed:\n%s", len(failures), *daemons, strings.Join(failures, "\n"))
	}
	return nil
}

// lineWriter receives one daemon's interleaved stdout+stderr from exec.Cmd's
// internal copier (a single goroutine per daemon, so Write needs no lock) and
// feeds each complete line to scanLine. flush delivers a trailing partial
// line after Wait has returned.
type lineWriter struct {
	rep    *daemonReport
	daemon int
	echo   io.Writer   // non-nil in -v mode
	echoMu *sync.Mutex // guards echo, shared across daemons
	part   []byte      // carry-over of an incomplete final line
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.part = append(w.part, p...)
	for {
		nl := bytes.IndexByte(w.part, '\n')
		if nl < 0 {
			return len(p), nil
		}
		w.line(string(w.part[:nl]))
		w.part = w.part[nl+1:]
	}
}

func (w *lineWriter) flush() {
	if len(w.part) > 0 {
		w.line(string(w.part))
		w.part = nil
	}
}

func (w *lineWriter) line(line string) {
	line = strings.TrimSuffix(line, "\r")
	scanLine(w.rep, line)
	if w.echo != nil {
		w.echoMu.Lock()
		fmt.Fprintf(w.echo, "d%d: %s\n", w.daemon, line)
		w.echoMu.Unlock()
	}
}

// scanLine folds one gossipd stdout line into the daemon's report.
func scanLine(r *daemonReport, line string) {
	r.raw.WriteString(line)
	r.raw.WriteByte('\n')
	switch {
	case strings.HasPrefix(line, "gossipd:"):
		r.started = true
	case strings.HasPrefix(line, "completed="):
		for _, f := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(f, "completed="); ok {
				r.completed = v == "true"
			}
			if v, ok := strings.CutPrefix(f, "informed="); ok {
				fmt.Sscanf(v, "%d/%d", &r.informed, &r.hosted)
			}
			if v, ok := strings.CutPrefix(f, "messages="); ok {
				r.messages, _ = strconv.ParseInt(v, 10, 64)
			}
		}
	case strings.HasPrefix(line, "drain:"):
		r.drainClean = strings.Contains(line, "clean=true")
	case strings.HasPrefix(line, "wire:"):
		r.sawWire = true
		for _, f := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(f, "frames="); ok {
				r.frames, _ = strconv.ParseInt(v, 10, 64)
			}
			if v, ok := strings.CutPrefix(f, "local-frames="); ok {
				r.localFrames, _ = strconv.ParseInt(v, 10, 64)
			}
		}
	case strings.HasPrefix(line, "membership:"):
		r.sawMember = true
		alive := 0
		for _, f := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(f, "alive="); ok {
				alive, _ = strconv.Atoi(v)
			}
		}
		// Converged enough for a healthy run: views exist and nobody was
		// falsely declared dead. Transient suspicion at snapshot time is
		// normal SWIM noise (in-flight probes at run end), not divergence.
		r.memberOK = alive > 0 && strings.Contains(line, "dead=0")
	}
}

// reserveListeners binds k loopback ephemeral-port listeners and returns
// them still open, with their addresses. The listeners are handed to the
// daemons as inherited descriptors — holding the bound socket end to end is
// what closes the reserve/rebind window a bind-then-close reservation
// leaves open.
func reserveListeners(k int) ([]net.Listener, []string, error) {
	lns := make([]net.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(lns[:i])
			return nil, nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs, nil
}

func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			ln.Close()
		}
	}
}

func killAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}
