// Command gossipctl launches and supervises a multi-daemon live gossip
// cluster on one machine: it partitions a generated graph into K contiguous
// node ranges, reserves a listen address per daemon, emits the shared peer
// map, starts K gossipd processes, streams and scans their output, and
// verifies the run end to end — every daemon must report broadcast
// completion (all hosted nodes informed) and a clean drain.
//
// A 4-daemon × 2.5k-node flood over the million-node-friendly ringchords
// family:
//
//	gossipctl -gossipd ./gossipd -daemons 4 -graph ringchords -n 10000 \
//	    -chords 4 -latmax 16 -proto flood -tick 5ms -linger 2s
//
// All graph and protocol flags are passed through to every daemon unchanged,
// so the fleet agrees on the graph by construction. -join additionally
// enables SWIM membership (bootstrapping from node 0) and reports the
// aggregated view convergence. -timeout bounds the whole run: on expiry the
// fleet is killed and the run fails.
//
// The ≥1M-node configuration from the ROADMAP (8 daemons × 125k nodes, see
// PERFORMANCE.md) is exercised by TestGossipctlMillionNodes, gated behind
// GOSSIPCTL_1M=1 because it takes minutes of wall clock on one core.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipctl:", err)
		os.Exit(1)
	}
}

// daemonReport is what the output scanner extracts from one daemon's stdout.
type daemonReport struct {
	started    bool // saw the gossipd banner line
	completed  bool // completed=true
	informed   int  // informed=<x>/<y>
	hosted     int
	drainClean bool // drain: clean=true
	messages   int64
	memberOK   bool // membership: ... suspect=0 dead=0 with alive>0
	sawMember  bool
	raw        strings.Builder
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gossipctl", flag.ContinueOnError)
	var (
		gossipd  = fs.String("gossipd", "gossipd", "path to the gossipd binary")
		daemons  = fs.Int("daemons", 4, "number of gossipd processes to launch")
		n        = fs.Int("n", 10000, "total node count, partitioned contiguously across daemons")
		graph    = fs.String("graph", "ringchords", "graph family (passed through to every daemon)")
		chords   = fs.Int("chords", 4, "ringchords: expected chord edges per node")
		latMax   = fs.Int("latmax", 16, "ringchords: chord latency bound")
		latency  = fs.Int("latency", 1, "edge latency (family dependent)")
		kFlag    = fs.Int("k", 8, "cliques in ring / grid rows")
		sFlag    = fs.Int("s", 8, "clique size / grid cols")
		p        = fs.Float64("p", 0.1, "GNP edge probability")
		beta     = fs.Float64("beta", 2.5, "chunglu degree exponent")
		avgDeg   = fs.Float64("avgdeg", 8, "chunglu average degree")
		proto    = fs.String("proto", "flood", "protocol: pushpull, flood or rr")
		source   = fs.Int("source", 0, "broadcast source node")
		seed     = fs.Uint64("seed", 1, "deterministic run seed (same on every daemon)")
		tick     = fs.Duration("tick", 2*time.Millisecond, "wall-clock duration of one round")
		maxTicks = fs.Int("maxticks", 0, "tick budget per daemon (0 = gossipd default)")
		linger   = fs.Duration("linger", 2*time.Second, "daemon linger after local completion")
		flushWin = fs.Duration("flushwindow", 200*time.Microsecond, "daemon flush window (super-frame aggregation width)")
		wire     = fs.String("wire", "binary", "wire format: binary or json")
		batch    = fs.Bool("batch", true, "cross-daemon super-frame batching")
		nodesPer = fs.Int("nodes-per-shard", 0, "per-daemon shard sizing (0 = gossipd default)")
		queueCap = fs.Int("queue-frames", 0, "per-connection writer queue cap (0 = gossipd default, negative = unbounded)")
		mailCap  = fs.Int("mailbox", 0, "per-shard mailbox cap in posts (0 = gossipd default, negative = unbounded)")
		pendCap  = fs.Int("max-pend", 0, "unacked reliable-send cap per daemon (0 = gossipd default, negative = unbounded)")
		rto      = fs.Duration("rto", 0, "initial retransmission timeout / adaptive-RTO floor (0 = gossipd default)")
		maxRetr  = fs.Int("retrans", 0, "retransmission budget (0 = gossipd default, negative = off)")
		join     = fs.Bool("join", false, "enable SWIM membership from seed node 0 and check convergence")
		timeout  = fs.Duration("timeout", 10*time.Minute, "kill the fleet and fail after this long")
		verbose  = fs.Bool("v", false, "stream per-daemon output, prefixed d<i>:")
		pprof0   = fs.Int("pprof-base", 0, "serve daemon i's pprof on 127.0.0.1:(base+i) (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *daemons < 1 {
		return fmt.Errorf("-daemons: must be >= 1")
	}
	if *n < *daemons {
		return fmt.Errorf("-n %d < -daemons %d: every daemon needs at least one node", *n, *daemons)
	}

	// Contiguous partition: daemon i hosts [i·n/K, (i+1)·n/K).
	ranges := make([][2]int, *daemons)
	for i := 0; i < *daemons; i++ {
		ranges[i] = [2]int{i * *n / *daemons, (i+1)**n / *daemons - 1}
	}
	addrs, err := reserveAddrs(*daemons)
	if err != nil {
		return err
	}
	var peerParts []string
	for i, r := range ranges {
		peerParts = append(peerParts, fmt.Sprintf("%d-%d=%s", r[0], r[1], addrs[i]))
	}
	peers := strings.Join(peerParts, ",")

	common := []string{
		"-graph", *graph, "-n", strconv.Itoa(*n),
		"-chords", strconv.Itoa(*chords), "-latmax", strconv.Itoa(*latMax),
		"-latency", strconv.Itoa(*latency),
		"-k", strconv.Itoa(*kFlag), "-s", strconv.Itoa(*sFlag),
		"-p", fmt.Sprint(*p), "-beta", fmt.Sprint(*beta), "-avgdeg", fmt.Sprint(*avgDeg),
		"-proto", *proto, "-source", strconv.Itoa(*source),
		"-seed", strconv.FormatUint(*seed, 10),
		"-tick", tick.String(), "-linger", linger.String(),
		"-flushwindow", flushWin.String(),
		"-wire", *wire, fmt.Sprintf("-batch=%v", *batch),
		"-peers", peers,
	}
	if *maxTicks > 0 {
		common = append(common, "-maxticks", strconv.Itoa(*maxTicks))
	}
	if *nodesPer > 0 {
		common = append(common, "-nodes-per-shard", strconv.Itoa(*nodesPer))
	}
	if *queueCap != 0 {
		common = append(common, "-queue-frames", strconv.Itoa(*queueCap))
	}
	if *mailCap != 0 {
		common = append(common, "-mailbox", strconv.Itoa(*mailCap))
	}
	if *pendCap != 0 {
		common = append(common, "-max-pend", strconv.Itoa(*pendCap))
	}
	if *rto != 0 {
		common = append(common, "-rto", rto.String())
	}
	if *maxRetr != 0 {
		common = append(common, "-retrans", strconv.Itoa(*maxRetr))
	}
	if *join {
		common = append(common, "-join", "0")
	}

	fmt.Fprintf(out, "gossipctl: daemons=%d nodes=%d graph=%s proto=%s peers=%d-ranges\n",
		*daemons, *n, *graph, *proto, len(ranges))

	start := time.Now()
	reports := make([]daemonReport, *daemons)
	cmds := make([]*exec.Cmd, *daemons)
	var wg sync.WaitGroup
	var outMu sync.Mutex
	for i := range cmds {
		args := append([]string{"-listen", addrs[i], "-nodes", fmt.Sprintf("%d-%d", ranges[i][0], ranges[i][1])}, common...)
		if *pprof0 > 0 {
			args = append(args, "-pprof", fmt.Sprintf("127.0.0.1:%d", *pprof0+i))
		}
		cmd := exec.Command(*gossipd, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = cmd.Stdout // interleave; gossipd errors land in the scan too
		if err := cmd.Start(); err != nil {
			killAll(cmds[:i])
			return fmt.Errorf("start daemon %d: %w", i, err)
		}
		cmds[i] = cmd
		wg.Add(1)
		go func(i int, r io.Reader) {
			defer wg.Done()
			sc := bufio.NewScanner(r)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				line := sc.Text()
				scanLine(&reports[i], line)
				if *verbose {
					outMu.Lock()
					fmt.Fprintf(out, "d%d: %s\n", i, line)
					outMu.Unlock()
				}
			}
		}(i, stdout)
	}

	// Supervise: every daemon runs to completion on its own (the protocol
	// completes, linger expires, the daemon drains and exits). On timeout the
	// fleet is killed and the run fails.
	waitErrs := make([]error, *daemons)
	done := make(chan struct{})
	go func() {
		for i, cmd := range cmds {
			waitErrs[i] = cmd.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(*timeout):
		killAll(cmds)
		<-done
		wg.Wait()
		return fmt.Errorf("fleet did not finish within %v (see -v output)", *timeout)
	}
	wg.Wait()

	var totalMsgs int64
	var failures []string
	for i := range reports {
		r := &reports[i]
		totalMsgs += r.messages
		switch {
		case waitErrs[i] != nil:
			failures = append(failures, fmt.Sprintf("daemon %d exited with %v:\n%s", i, waitErrs[i], r.raw.String()))
		case !r.completed:
			failures = append(failures, fmt.Sprintf("daemon %d did not complete:\n%s", i, r.raw.String()))
		case r.informed != r.hosted || r.hosted == 0:
			failures = append(failures, fmt.Sprintf("daemon %d informed %d/%d", i, r.informed, r.hosted))
		case !r.drainClean:
			failures = append(failures, fmt.Sprintf("daemon %d drain not clean:\n%s", i, r.raw.String()))
		case *join && !(r.sawMember && r.memberOK):
			failures = append(failures, fmt.Sprintf("daemon %d membership not converged:\n%s", i, r.raw.String()))
		}
	}
	fmt.Fprintf(out, "gossipctl: completed=%v drains-clean=%v messages=%d wall=%v\n",
		len(failures) == 0, len(failures) == 0, totalMsgs, time.Since(start).Round(time.Millisecond))
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d daemons failed:\n%s", len(failures), *daemons, strings.Join(failures, "\n"))
	}
	return nil
}

// scanLine folds one gossipd stdout line into the daemon's report.
func scanLine(r *daemonReport, line string) {
	r.raw.WriteString(line)
	r.raw.WriteByte('\n')
	switch {
	case strings.HasPrefix(line, "gossipd:"):
		r.started = true
	case strings.HasPrefix(line, "completed="):
		for _, f := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(f, "completed="); ok {
				r.completed = v == "true"
			}
			if v, ok := strings.CutPrefix(f, "informed="); ok {
				fmt.Sscanf(v, "%d/%d", &r.informed, &r.hosted)
			}
			if v, ok := strings.CutPrefix(f, "messages="); ok {
				r.messages, _ = strconv.ParseInt(v, 10, 64)
			}
		}
	case strings.HasPrefix(line, "drain:"):
		r.drainClean = strings.Contains(line, "clean=true")
	case strings.HasPrefix(line, "membership:"):
		r.sawMember = true
		alive := 0
		for _, f := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(f, "alive="); ok {
				alive, _ = strconv.Atoi(v)
			}
		}
		// Converged enough for a healthy run: views exist and nobody was
		// falsely declared dead. Transient suspicion at snapshot time is
		// normal SWIM noise (in-flight probes at run end), not divergence.
		r.memberOK = alive > 0 && strings.Contains(line, "dead=0")
	}
}

// reserveAddrs picks k distinct loopback listen addresses by binding and
// immediately releasing ephemeral ports. The usual (benign) race: nothing
// else on the host grabs them between release and the daemons' listen.
func reserveAddrs(k int) ([]string, error) {
	addrs := make([]string, k)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

func killAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}
