package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gossip
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExpT12PushPull        	     115	  21890132 ns/op	10630461 B/op	   45980 allocs/op
BenchmarkPushPullClique256-8   	     324	   6969124 ns/op	         7.673 rounds/op	 4188169 B/op	    5357 allocs/op
PASS
ok  	gossip	16.369s
pkg: gossip/internal/sim
BenchmarkEngineRounds 	     744	   1607221 ns/op	 1110648 B/op	    7308 allocs/op
PASS
ok  	gossip/internal/sim	3.170s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample), "seed")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != schemaVersion || rep.Label != "seed" {
		t.Fatalf("header = %q/%q", rep.Schema, rep.Label)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("environment not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	// Sorted by (package, name): gossip.* before gossip/internal/sim.*.
	clique := rep.Benchmarks[1]
	if clique.Name != "BenchmarkPushPullClique256" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", clique.Name)
	}
	if clique.Package != "gossip" || clique.Iterations != 324 {
		t.Errorf("clique = %+v", clique)
	}
	if clique.NsPerOp != 6969124 || clique.BytesPerOp != 4188169 || clique.AllocsPerOp != 5357 {
		t.Errorf("standard units wrong: %+v", clique)
	}
	if clique.Metrics["rounds/op"] != 7.673 {
		t.Errorf("custom metric rounds/op = %v, want 7.673", clique.Metrics["rounds/op"])
	}
	if rep.Benchmarks[2].Package != "gossip/internal/sim" {
		t.Errorf("package tracking wrong: %+v", rep.Benchmarks[2])
	}
}

func TestCompareGate(t *testing.T) {
	base := &Report{Schema: schemaVersion, Label: "base", Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 1000},
		{Name: "BenchmarkB", Package: "p", NsPerOp: 1000},
		{Name: "BenchmarkGone", Package: "p", NsPerOp: 500},
	}}
	cur := &Report{Schema: schemaVersion, Label: "new", Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 1200}, // +20%: within threshold
		{Name: "BenchmarkB", Package: "p", NsPerOp: 1400}, // +40%: regression
		{Name: "BenchmarkNew", Package: "p", NsPerOp: 100},
	}}
	var sb strings.Builder
	err := Compare(&sb, base, cur, 0.30)
	if err == nil || !strings.Contains(err.Error(), "p.BenchmarkB") {
		t.Fatalf("err = %v, want regression on p.BenchmarkB", err)
	}
	if strings.Contains(err.Error(), "BenchmarkA") {
		t.Errorf("BenchmarkA within threshold must not fail the gate: %v", err)
	}
	for _, want := range []string{"new", "gone", "REGRESSION"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}

	// Improvement and within-threshold drift pass.
	cur.Benchmarks[1].NsPerOp = 800
	sb.Reset()
	if err := Compare(&sb, base, cur, 0.30); err != nil {
		t.Fatalf("no regression expected, got %v", err)
	}
}

// TestCompareGatesMemberMetrics exercises the -metrics extension: detection
// latency quantiles reported via b.ReportMetric are regression-gated like
// ns/op, while ungated metrics and metrics missing from a side stay advisory.
func TestCompareGatesMemberMetrics(t *testing.T) {
	base := &Report{Schema: schemaVersion, Label: "base", Benchmarks: []Benchmark{
		{Name: "BenchmarkMembershipDetection", Package: "p", NsPerOp: 1000,
			Metrics: map[string]float64{"p50-detect-ticks/op": 40, "p99-detect-ticks/op": 90, "msgs/op": 100}},
		{Name: "BenchmarkMembershipConvergence", Package: "p", NsPerOp: 1000,
			Metrics: map[string]float64{"ticks-to-converge/op": 50}},
	}}
	cur := &Report{Schema: schemaVersion, Label: "new", Benchmarks: []Benchmark{
		{Name: "BenchmarkMembershipDetection", Package: "p", NsPerOp: 1000,
			Metrics: map[string]float64{"p50-detect-ticks/op": 42, "p99-detect-ticks/op": 200, "msgs/op": 900}},
		{Name: "BenchmarkMembershipConvergence", Package: "p", NsPerOp: 1000,
			Metrics: map[string]float64{"ticks-to-converge/op": 51}},
	}}
	var sb strings.Builder
	err := Compare(&sb, base, cur, 0.30, "p50-detect-ticks/op", "p99-detect-ticks/op")
	if err == nil || !strings.Contains(err.Error(), "p99-detect-ticks/op") {
		t.Fatalf("err = %v, want p99 metric regression", err)
	}
	if strings.Contains(err.Error(), "p50-detect-ticks/op") {
		t.Errorf("p50 within threshold must not fail the gate: %v", err)
	}
	if strings.Contains(err.Error(), "msgs/op") {
		t.Errorf("ungated metric must not fail the gate: %v", err)
	}
	if !strings.Contains(sb.String(), "p99-detect-ticks/op") {
		t.Errorf("report does not show the gated metric rows:\n%s", sb.String())
	}

	// A gated metric absent from the baseline is skipped, not failed.
	sb.Reset()
	if err := Compare(&sb, base, cur, 0.30, "p50-detect-ticks/op", "absent/op"); err != nil {
		t.Fatalf("missing metric must be skipped, got %v", err)
	}
}

// TestSpeedupGate covers the cross-file floor: higher-is-better metrics
// (msgs/sec) pass when the ratio clears the floor, fail below it, derive
// ops/sec from ns/op when no metric is named, and reject missing names.
func TestSpeedupGate(t *testing.T) {
	base := &Report{Schema: schemaVersion, Label: "pr9", Benchmarks: []Benchmark{
		{Name: "BenchmarkLiveTCPBatched", Package: "p", NsPerOp: 2000,
			Metrics: map[string]float64{"msgs/sec": 875244}},
	}}
	cur := &Report{Schema: schemaVersion, Label: "pr10", Benchmarks: []Benchmark{
		{Name: "BenchmarkLiveUDS", Package: "p", NsPerOp: 1000,
			Metrics: map[string]float64{"msgs/sec": 3224959}},
	}}
	var sb strings.Builder
	err := Speedup(&sb, base, "BenchmarkLiveTCPBatched", cur, "BenchmarkLiveUDS", "msgs/sec", 1.3)
	if err != nil {
		t.Fatalf("3.68x over a 1.3x floor must pass, got %v", err)
	}
	if !strings.Contains(sb.String(), "3.68x") || !strings.Contains(sb.String(), "floor met") {
		t.Errorf("report missing the ratio:\n%s", sb.String())
	}

	sb.Reset()
	err = Speedup(&sb, base, "BenchmarkLiveTCPBatched", cur, "BenchmarkLiveUDS", "msgs/sec", 5.0)
	if err == nil || !strings.Contains(err.Error(), "need >= 5.00x") {
		t.Fatalf("3.68x under a 5x floor must fail, got %v", err)
	}

	// Empty metric falls back to ops/sec from ns/op: 2000ns -> 1000ns = 2x.
	sb.Reset()
	if err := Speedup(&sb, base, "BenchmarkLiveTCPBatched", cur, "BenchmarkLiveUDS", "", 1.9); err != nil {
		t.Fatalf("ns/op-derived 2x over a 1.9x floor must pass, got %v", err)
	}

	if _, err := benchValue(base, "BenchmarkMissing", "msgs/sec"); err == nil {
		t.Error("unknown benchmark name must error")
	}
	if _, err := benchValue(base, "BenchmarkLiveTCPBatched", "absent/sec"); err == nil {
		t.Error("absent metric must error")
	}
}

// TestSpeedupCommittedFiles runs the full -speedup CLI path against the
// repository's committed BENCH files — the exact invocations CI makes — so a
// regression in either the committed numbers or the flag plumbing fails here
// first.
func TestSpeedupCommittedFiles(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spec  string
		floor string
	}{
		{"uds-1.3x-over-pr9-tcp", "BenchmarkLiveTCPBatched,../../BENCH_pr10.json:BenchmarkLiveUDS", "1.3"},
		{"ring-3x-over-pr9-tcp", "BenchmarkLiveTCPBatched,../../BENCH_pr10.json:BenchmarkLiveShmRing", "3"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			args := []string{
				"-speedup", "../../BENCH_pr9.json:" + tc.spec,
				"-xmetric", "msgs/sec", "-min-speedup", tc.floor,
			}
			if err := run(args, &sb); err != nil {
				t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
			}
		})
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok x 1s\n"), "l")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("want no benchmarks, got %+v", rep.Benchmarks)
	}
}
