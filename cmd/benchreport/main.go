// Command benchreport runs the repository's benchmark suite (or parses a
// saved `go test -bench` transcript) and writes the results as a
// schema-stable BENCH_<label>.json, so benchmark numbers can be committed,
// diffed, and compared across revisions.
//
// Usage:
//
//	benchreport -label seed                        # run benches, write BENCH_seed.json
//	benchreport -label pr3 -input bench.txt        # parse a saved transcript instead
//	benchreport -input new.txt -compare BENCH_seed.json -threshold 0.30
//
// In -compare mode the command exits nonzero when any benchmark's ns/op
// regressed by more than the threshold fraction against the baseline — the
// CI regression gate. -metrics extends the gate to named custom metric
// units, e.g.:
//
//	benchreport -input new.txt -compare BENCH_pr6.json \
//	    -metrics p50-detect-ticks/op,p99-detect-ticks/op
//
// -speedup is the inverse gate for higher-is-better numbers: it compares one
// benchmark across two committed reports (no benchmarks are run) and exits
// nonzero unless new/base clears the floor. -compare cannot express this —
// there a rising metric reads as a regression — so throughput floors such as
// "unix sockets must beat last PR's TCP by 1.3x" use:
//
//	benchreport -speedup BENCH_pr9.json:BenchmarkLiveTCPBatched,BENCH_pr10.json:BenchmarkLiveUDS \
//	    -xmetric msgs/sec -min-speedup 1.3
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// schemaVersion identifies the BENCH_*.json layout; bump only on
// incompatible changes so downstream diff tooling can rely on it.
const schemaVersion = "gossip-bench/v1"

// Benchmark is one benchmark result. NsPerOp/BytesPerOp/AllocsPerOp mirror
// the standard testing outputs; Metrics holds custom b.ReportMetric units
// (rounds/op, msgs/op, ticks/op, ...).
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level BENCH_<label>.json document.
type Report struct {
	Schema     string      `json:"schema"`
	Label      string      `json:"label"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		label     = fs.String("label", "current", "label embedded in the report and the output file name")
		input     = fs.String("input", "", "parse this saved `go test -bench` transcript instead of running")
		benchRe   = fs.String("bench", ".", "benchmark regex passed to go test -bench")
		pkgs      = fs.String("packages", "./...", "space-separated package patterns to benchmark")
		benchtime = fs.String("benchtime", "", "passed through as go test -benchtime")
		count     = fs.Int("count", 1, "passed through as go test -count")
		outDir    = fs.String("out", ".", "directory for BENCH_<label>.json")
		baseline  = fs.String("compare", "", "baseline BENCH_*.json to compare against (regression gate)")
		threshold = fs.Float64("threshold", 0.30, "max tolerated fractional ns/op regression in -compare mode")
		metrics   = fs.String("metrics", "", "comma-separated custom metric units (e.g. p99-detect-ticks/op) to regression-gate alongside ns/op in -compare mode")
		noWrite   = fs.Bool("nowrite", false, "skip writing BENCH_<label>.json (compare only)")
		speedup   = fs.String("speedup", "", "cross-file floor gate: base.json:BenchmarkName,new.json:BenchmarkName compares one higher-is-better value across two committed reports; no benchmarks are run")
		xmetric   = fs.String("xmetric", "", "custom metric unit compared in -speedup mode (e.g. msgs/sec); empty derives ops/sec from ns/op")
		minRatio  = fs.Float64("min-speedup", 1.0, "minimum tolerated new/base ratio in -speedup mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *speedup != "" {
		parts := strings.Split(*speedup, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-speedup wants base.json:BenchmarkName,new.json:BenchmarkName, got %q", *speedup)
		}
		reps := make([]*Report, 2)
		names := make([]string, 2)
		for i, part := range parts {
			path, name, ok := strings.Cut(part, ":")
			if !ok || path == "" || name == "" {
				return fmt.Errorf("-speedup entry %q is not file.json:BenchmarkName", part)
			}
			rep, err := readReport(path)
			if err != nil {
				return err
			}
			reps[i], names[i] = rep, name
		}
		return Speedup(out, reps[0], names[0], reps[1], names[1], *xmetric, *minRatio)
	}

	var raw io.Reader
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		raw = f
	} else {
		gotest := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem", "-count", strconv.Itoa(*count)}
		if *benchtime != "" {
			gotest = append(gotest, "-benchtime", *benchtime)
		}
		gotest = append(gotest, strings.Fields(*pkgs)...)
		fmt.Fprintf(out, "running: go %s\n", strings.Join(gotest, " "))
		cmd := exec.Command("go", gotest...)
		cmd.Stderr = os.Stderr
		buf, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -bench: %w", err)
		}
		out.Write(buf)
		raw = strings.NewReader(string(buf))
	}

	rep, err := Parse(raw, *label)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found")
	}

	if !*noWrite {
		path := filepath.Join(*outDir, "BENCH_"+*label+".json")
		if err := writeReport(path, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		var gated []string
		for _, m := range strings.Split(*metrics, ",") {
			if m = strings.TrimSpace(m); m != "" {
				gated = append(gated, m)
			}
		}
		return Compare(out, base, rep, *threshold, gated...)
	}
	return nil
}

// Parse reads `go test -bench` output into a Report. Benchmarks are sorted
// by (package, name) so reports diff cleanly regardless of run order.
func Parse(r io.Reader, label string) (*Report, error) {
	rep := &Report{Schema: schemaVersion, Label: label}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line, pkg)
			if !ok {
				continue
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		a, b := rep.Benchmarks[i], rep.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkFoo-8   324   6969124 ns/op   7.673 rounds/op   4188169 B/op   5357 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		// Strip the -<GOMAXPROCS> suffix so reports from machines with
		// different core counts stay comparable.
		Name:       strings.SplitN(fields[0], "-", 2)[0],
		Package:    pkg,
		Iterations: iters,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// Compare prints a per-benchmark delta table and returns an error if any
// benchmark present in both reports regressed its ns/op — or any of the
// explicitly gated custom metric units (b.ReportMetric outputs such as
// p99-detect-ticks/op) — by more than the threshold fraction. Benchmarks
// present on only one side are reported but never fail the gate (suites are
// allowed to grow and shrink), and a gated metric absent from either side of
// a pair is likewise skipped.
func Compare(out io.Writer, base, cur *Report, threshold float64, gatedMetrics ...string) error {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Package+"."+b.Name] = b
	}
	var regressed []string
	fmt.Fprintf(out, "comparing against %q (threshold +%.0f%% ns/op)\n", base.Label, threshold*100)
	if len(gatedMetrics) > 0 {
		fmt.Fprintf(out, "also gating custom metrics: %s\n", strings.Join(gatedMetrics, ", "))
	}
	fmt.Fprintf(out, "%-45s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for _, b := range cur.Benchmarks {
		key := b.Package + "." + b.Name
		prev, ok := baseBy[key]
		if !ok {
			fmt.Fprintf(out, "%-45s %14s %14.0f %8s\n", key, "-", b.NsPerOp, "new")
			continue
		}
		delete(baseBy, key)
		delta := b.NsPerOp/prev.NsPerOp - 1
		mark := ""
		if delta > threshold {
			mark = "  << REGRESSION"
			regressed = append(regressed, key)
		}
		fmt.Fprintf(out, "%-45s %14.0f %14.0f %+7.1f%%%s\n", key, prev.NsPerOp, b.NsPerOp, delta*100, mark)
		for _, unit := range gatedMetrics {
			pv, curv := prev.Metrics[unit], b.Metrics[unit]
			if pv <= 0 || curv <= 0 {
				continue // metric missing on one side: not comparable
			}
			mdelta := curv/pv - 1
			mark := ""
			if mdelta > threshold {
				mark = "  << REGRESSION"
				regressed = append(regressed, key+" ["+unit+"]")
			}
			fmt.Fprintf(out, "%-45s %14.1f %14.1f %+7.1f%%%s\n", "  ↳ "+unit, pv, curv, mdelta*100, mark)
		}
	}
	missing := make([]string, 0, len(baseBy))
	for key := range baseBy {
		missing = append(missing, key)
	}
	sort.Strings(missing)
	for _, key := range missing {
		fmt.Fprintf(out, "%-45s %14.0f %14s %8s\n", key, baseBy[key].NsPerOp, "-", "gone")
	}
	if len(regressed) > 0 {
		sort.Strings(regressed)
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %s",
			len(regressed), threshold*100, strings.Join(regressed, ", "))
	}
	fmt.Fprintln(out, "no regressions above threshold")
	return nil
}

// Speedup is the higher-is-better cross-file gate: it reads one value from
// each of two reports — typically committed BENCH files from different
// revisions, so the check is deterministic in CI — and fails unless new/base
// reaches the floor. metric names a custom unit (e.g. msgs/sec); an empty
// metric derives ops/sec from ns/op.
func Speedup(out io.Writer, base *Report, baseName string, cur *Report, curName, metric string, floor float64) error {
	baseVal, err := benchValue(base, baseName, metric)
	if err != nil {
		return err
	}
	curVal, err := benchValue(cur, curName, metric)
	if err != nil {
		return err
	}
	unit := metric
	if unit == "" {
		unit = "ops/sec"
	}
	ratio := curVal / baseVal
	fmt.Fprintf(out, "%-45s %18s %14.0f\n", base.Label+":"+baseName, unit, baseVal)
	fmt.Fprintf(out, "%-45s %18s %14.0f\n", cur.Label+":"+curName, unit, curVal)
	fmt.Fprintf(out, "speedup = %.2fx (floor %.2fx)\n", ratio, floor)
	if ratio < floor {
		return fmt.Errorf("%s:%s is only %.2fx %s:%s on %s, need >= %.2fx",
			cur.Label, curName, ratio, base.Label, baseName, unit, floor)
	}
	fmt.Fprintln(out, "speedup floor met")
	return nil
}

// benchValue extracts the gated higher-is-better value from the named
// benchmark of a report.
func benchValue(rep *Report, name, metric string) (float64, error) {
	for _, b := range rep.Benchmarks {
		if b.Name != name {
			continue
		}
		if metric == "" {
			return 1e9 / b.NsPerOp, nil
		}
		if v := b.Metrics[metric]; v > 0 {
			return v, nil
		}
		return 0, fmt.Errorf("%s: benchmark %s has no %s metric", rep.Label, name, metric)
	}
	return 0, fmt.Errorf("%s: no benchmark named %s", rep.Label, name)
}

func writeReport(path string, rep *Report) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != schemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, schemaVersion)
	}
	return &rep, nil
}
