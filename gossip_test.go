package gossip

import (
	"testing"
)

// TestPublicAPISurface exercises every public runner end to end on small
// graphs — the quickstart paths a downstream user hits first.
func TestPublicAPISurface(t *testing.T) {
	g := RingOfCliques(3, 5, 2)
	opts := Options{Seed: 1}

	pp, err := RunPushPull(g, 0, opts)
	if err != nil || !pp.Completed {
		t.Fatalf("RunPushPull: %v completed=%v", err, pp.Completed)
	}
	fl, err := RunFlood(g, 0, opts)
	if err != nil || !fl.Completed {
		t.Fatalf("RunFlood: %v", err)
	}
	lb, err := RunLocalBroadcast(g, 2, opts)
	if err != nil || !lb.Completed {
		t.Fatalf("RunLocalBroadcast: %v", err)
	}
	d := g.WeightedDiameter()
	rr, err := RunRRBroadcast(g, d, 0, opts)
	if err != nil || !rr.Completed {
		t.Fatalf("RunRRBroadcast: %v", err)
	}
	eid, err := RunEID(g, d, opts)
	if err != nil || !eid.Completed {
		t.Fatalf("RunEID: %v", err)
	}
	gen, err := RunGeneralEID(g, opts)
	if err != nil || !gen.Completed {
		t.Fatalf("RunGeneralEID: %v", err)
	}
	ts, err := RunTSequence(g, d, opts)
	if err != nil || !ts.Completed {
		t.Fatalf("RunTSequence: %v", err)
	}
	pd, err := RunPathDiscovery(g, opts)
	if err != nil || !pd.Completed {
		t.Fatalf("RunPathDiscovery: %v", err)
	}
	de, err := RunDiscoverEID(g, opts)
	if err != nil || !de.Completed {
		t.Fatalf("RunDiscoverEID: %v", err)
	}
	uni, err := RunUnified(g, 0, true, opts)
	if err != nil {
		t.Fatalf("RunUnified: %v", err)
	}
	if uni.Winner == "" || uni.Rounds == 0 {
		t.Errorf("RunUnified result incomplete: %+v", uni)
	}

	wc, err := WeightedConductance(g, 1)
	if err != nil {
		t.Fatalf("WeightedConductance: %v", err)
	}
	if wc.PhiStar <= 0 || wc.EllStar < 1 {
		t.Errorf("conductance = %+v", wc)
	}
	if _, err := PhiCut(g, []NodeID{0, 1, 2, 3, 4}, 2); err != nil {
		t.Fatalf("PhiCut: %v", err)
	}
}

func TestPublicGadgets(t *testing.T) {
	if _, err := NewGadget(4, nil, true, 8); err != nil {
		t.Errorf("NewGadget: %v", err)
	}
	if _, err := NewTheoremSixNetwork(16, 4, 1); err != nil {
		t.Errorf("NewTheoremSixNetwork: %v", err)
	}
	if _, err := NewTheoremSevenNetwork(8, 0.3, 2, 1); err != nil {
		t.Errorf("NewTheoremSevenNetwork: %v", err)
	}
	if _, err := NewRingNetwork(32, 0.25, 2, 1); err != nil {
		t.Errorf("NewRingNetwork: %v", err)
	}
}

func TestPushOnlyBaseline(t *testing.T) {
	g := Star(32, 1)
	po, err := RunPushOnly(g, 1, Options{Seed: 3, MaxRounds: 100000})
	if err != nil || !po.Completed {
		t.Fatalf("RunPushOnly: %v", err)
	}
	pp, err := RunPushPull(g, 1, Options{Seed: 3})
	if err != nil {
		t.Fatalf("RunPushPull: %v", err)
	}
	if po.Metrics.Rounds <= pp.Metrics.Rounds {
		t.Errorf("push-only (%d) should be slower than push-pull (%d)",
			po.Metrics.Rounds, pp.Metrics.Rounds)
	}
}
