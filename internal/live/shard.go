package live

import (
	"sync"
	"time"

	"gossip/internal/graph"
)

// This file is the sharded event loop that multiplexes every locally hosted
// node onto a fixed set of workers. One shard owns a contiguous range of the
// runtime's hosted nodes as a dense slice, a hierarchical timer wheel holding
// that range's delayed deliveries (ticks = protocol ticks), and an MPSC
// mailbox through which transports and other shards post messages. The shard
// goroutine is the only thing that touches its nodes' handler state, so the
// sim.Handler single-goroutine contract holds exactly as it did when each
// node had a goroutine of its own — but a runtime hosting 100k nodes now
// costs O(shards) goroutines and zero per-node tickers.

// post is one mailbox entry: a message and its remaining delivery delay in
// protocol ticks (<= 0 delivers on the next drain).
type post struct {
	msg        Message
	delayTicks int64
}

// nodeLoc locates a hosted node: its owning shard and its index in that
// shard's dense node slice. {-1, -1} marks a node hosted elsewhere.
type nodeLoc struct {
	shard int32
	idx   int32
}

// shard is one event-loop worker.
type shard struct {
	rt    *Runtime
	id    int
	nodes []node // dense, contiguous slice of the runtime's hosted nodes

	wheel *wheel[Message] // delayed deliveries; one tick = one protocol tick
	now   int64           // protocol ticks elapsed, advanced toward wall time
	fired []Message       // scratch for wheel.advance

	mu      sync.Mutex
	q       []post // mailbox, guarded by mu
	qSpare  []post // drained buffer kept for reuse
	stopped bool

	notify chan struct{} // cap 1: wakes the loop for a fresh mailbox post
}

// DefaultMailboxCap bounds a shard's mailbox. Without it a degree hotspot
// (say a star center) lets producer shards outrun the owning shard and the
// queue — and the process — grows without bound. When full, gossip posts are
// shed and counted in the overload ledger; membership traffic is always
// admitted (hard backpressure, matching the transports' inbox policy).
// Options.MailboxCap overrides it per run (negative = unbounded): a shard
// hosting 100k+ nodes sees flood frontiers far wider than this default, and
// shed local posts — which have no retransmit layer under them — stall a
// repair-free protocol for good.
const DefaultMailboxCap = 1 << 16

// post enqueues msg for delivery to a node this shard owns, reporting false
// once the shard has stopped (the caller falls back to its legacy path; the
// message is lost exactly as a post-shutdown inbox delivery was).
func (s *shard) post(msg Message, delayTicks int64) bool {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return false
	}
	if mc := s.rt.mailCap; mc > 0 && len(s.q) >= mc && msg.Kind != MsgMember {
		s.mu.Unlock()
		s.rt.mailShed.Add(1)
		return true // handled: shed, not eligible for the legacy fallback
	}
	s.q = append(s.q, post{msg: msg, delayTicks: delayTicks})
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return true
}

// run is the shard's event loop: start every handler, then alternate between
// protocol ticks (wheel deliveries + a node sweep) and mailbox drains until
// the runtime stops.
func (s *shard) run() {
	defer s.rt.wg.Done()
	defer func() {
		s.mu.Lock()
		s.stopped = true
		s.mu.Unlock()
		// Unwind coroutine handlers (sim.Proc) so a shut-down runtime never
		// leaks a parked proc goroutine.
		for i := range s.nodes {
			s.nodes[i].stopHandler()
		}
	}()

	for i := range s.nodes {
		n := &s.nodes[i]
		n.h.Start(n.ctx)
		n.updateDone()
	}

	tick := s.rt.opts.Tick
	timer := time.NewTimer(tick)
	defer timer.Stop()
	for {
		wait := time.Duration(s.now+1)*tick - time.Since(s.rt.epoch)
		if wait <= 0 {
			s.tick()
			// Re-check stop between back-to-back catch-up ticks.
			select {
			case <-s.rt.stopCh:
				return
			default:
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-s.rt.stopCh:
			return
		case <-s.notify:
			s.drainMail()
		case <-timer.C:
			s.tick()
		}
	}
}

// tick advances the shard to the current wall tick: every due wheel delivery
// fires (in deadline order — a long scheduler stall is a jump, not a spin),
// the mailbox drains, and each owned node takes one onTick. A stalled shard
// runs one node sweep per loop pass, mirroring how a per-node ticker dropped
// missed ticks instead of replaying them.
func (s *shard) tick() {
	target := int64(time.Since(s.rt.epoch) / s.rt.opts.Tick)
	if target <= s.now {
		target = s.now + 1
	}
	s.fired = s.wheel.advance(target, s.fired[:0])
	s.now = target
	for _, msg := range s.fired {
		s.deliver(msg)
	}
	s.drainMail()
	for i := range s.nodes {
		s.nodes[i].onTick()
	}
}

// drainMail swaps out the mailbox under the lock and processes it outside:
// due posts deliver immediately (a zero-delay response reaches its initiator
// within the same tick, as the timer transports guaranteed), delayed posts
// arm on the wheel.
func (s *shard) drainMail() {
	for {
		s.mu.Lock()
		if len(s.q) == 0 {
			s.mu.Unlock()
			return
		}
		q := s.q
		s.q = s.qSpare[:0]
		s.mu.Unlock()
		for _, p := range q {
			if p.delayTicks <= 0 {
				s.deliver(p.msg)
			} else {
				s.wheel.arm(s.now+p.delayTicks, p.msg)
			}
		}
		s.qSpare = q[:0]
	}
}

// deliver hands one due message to its destination node. A halted (crashed)
// node drops arrivals unanswered, exactly as its goroutine predecessor did.
func (s *shard) deliver(msg Message) {
	loc := s.rt.loc[msg.To]
	if loc.idx < 0 {
		return // not ours: a post raced a topology error; drop
	}
	n := &s.nodes[loc.idx]
	if n.halted {
		return
	}
	n.handle(msg)
}

// sink is the DeliverySink the runtime installs on SinkTransports: route the
// message to its owning shard, converting the wall-clock delay to whole
// protocol ticks (rounded up, matching the transports' quantization of
// latency to tick multiples).
func (rt *Runtime) sink(msg Message, delay time.Duration) bool {
	if msg.To < 0 || int(msg.To) >= len(rt.loc) {
		return false
	}
	loc := rt.loc[msg.To]
	if loc.shard < 0 {
		return false
	}
	var ticks int64
	if delay > 0 {
		ticks = int64((delay + rt.opts.Tick - 1) / rt.opts.Tick)
	}
	return rt.shards[loc.shard].post(msg, ticks)
}

// forward is the fallback for transports that don't implement SinkTransport:
// one goroutine per hosted node pumps its inbox into the owning shard. The
// transport has already applied the latency delay by the time a message
// surfaces in the inbox, so posts carry no extra ticks.
func (rt *Runtime) forward(u graph.NodeID, inbox <-chan Message) {
	defer rt.wg.Done()
	loc := rt.loc[u]
	sh := rt.shards[loc.shard]
	for {
		select {
		case <-rt.stopCh:
			return
		case msg := <-inbox:
			sh.post(msg, 0)
		}
	}
}
