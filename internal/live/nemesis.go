package live

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
	"gossip/internal/member"
	"gossip/internal/rng"
)

// This file is the nemesis: a staged chaos orchestrator layered over any
// Transport. Where FaultTransport injects one homogeneous fault plan for a
// whole run, the Nemesis schedules *phases* — an asymmetric partition here, a
// flapping link there, a latency ramp on a slow node, a loss burst — each
// active over its own tick window, then verifies the cluster healed.
//
// Like FaultTransport, every decision is a pure function of (seed, phase
// index, message identity), and phases activate on msg.SentTick — the tick
// the exchange was initiated, stamped identically across runs — so two runs
// whose protocols emit the same messages experience byte-identical chaos
// regardless of goroutine scheduling or wire encoding.

// NemesisPhase is one staged fault epoch, active for exchanges initiated in
// the tick window [From, Until) (Until <= 0 means it never ends). A phase
// may combine several fault classes; zero-valued classes are inactive.
type NemesisPhase struct {
	// Name labels the phase in reports.
	Name string
	// From and Until bound the phase's tick window.
	From, Until int

	// Asymmetric partition: messages from a node in AsymFrom to a node in
	// AsymTo are dropped; the reverse direction flows freely. This is the
	// fault class symmetric Partitions cannot express — one-way reachability,
	// the classic trigger for false suspicion.
	AsymFrom, AsymTo []graph.NodeID

	// Flapping links: while the phase is active, the edges in FlapEdges are
	// cut and healed on a square wave — up for FlapUp ticks out of every
	// FlapPeriod (messages initiated during a down stretch are dropped).
	FlapEdges  []int
	FlapPeriod int
	FlapUp     int

	// Slow nodes: messages to or from a node in SlowNodes gain extra
	// delivery delay, ramping linearly from zero at From to SlowMaxTicks
	// ticks at Until (or a flat SlowMaxTicks when the phase is unbounded) —
	// a node sinking into overload rather than failing clean.
	SlowNodes    []graph.NodeID
	SlowMaxTicks int

	// Loss is a per-message drop probability in [0, 1] — a loss burst.
	Loss float64
}

// active reports whether the phase covers an exchange initiated at tick.
func (p *NemesisPhase) active(tick int) bool {
	return tick >= p.From && (p.Until <= 0 || tick < p.Until)
}

// flapDown reports whether the phase's flapping links are in a down stretch
// at tick (false when the phase has no flap plan).
func (p *NemesisPhase) flapDown(tick int) bool {
	if len(p.FlapEdges) == 0 || p.FlapPeriod <= 0 {
		return false
	}
	up := p.FlapUp
	if up <= 0 || up > p.FlapPeriod {
		up = (p.FlapPeriod + 1) / 2
	}
	return (tick-p.From)%p.FlapPeriod >= up
}

// slowExtra returns the phase's extra delay in ticks for an exchange
// initiated at tick: a linear ramp over the window.
func (p *NemesisPhase) slowExtra(tick int) int {
	if len(p.SlowNodes) == 0 || p.SlowMaxTicks <= 0 {
		return 0
	}
	if p.Until <= p.From {
		return p.SlowMaxTicks
	}
	extra := p.SlowMaxTicks * (tick - p.From + 1) / (p.Until - p.From)
	if extra > p.SlowMaxTicks {
		extra = p.SlowMaxTicks
	}
	return extra
}

// NemesisPhaseReport is one phase's fault ledger.
type NemesisPhaseReport struct {
	Name      string
	AsymDrops int64 // messages eaten by the one-way partition
	FlapDrops int64 // messages eaten by a down flapping link
	LossDrops int64 // messages eaten by the loss burst
	Delayed   int64 // messages slowed by the latency ramp
}

// nemesisPhaseCounts is the atomic backing of one phase's report.
type nemesisPhaseCounts struct {
	asym, flap, loss, delayed atomic.Int64
}

// Nemesis decorates a Transport with a staged chaos schedule. Compose it
// like FaultTransport: over a ChanTransport for deterministic in-process
// chaos, or over a TCPTransport to stage faults on a real network. Closing
// the Nemesis closes the inner transport.
type Nemesis struct {
	inner  Transport
	seed   uint64
	tick   time.Duration
	phases []NemesisPhase
	counts []nemesisPhaseCounts

	fromSet, toSet, slowSet []map[graph.NodeID]bool
	flapSet                 []map[int]bool
}

var _ Transport = (*Nemesis)(nil)
var _ SinkTransport = (*Nemesis)(nil)
var _ FaultReporter = (*Nemesis)(nil)
var _ Drainer = (*Nemesis)(nil)
var _ PeerStatusSink = (*Nemesis)(nil)

// NewNemesis wraps inner with the given phase schedule. seed drives the loss
// draws; tick scales the latency ramp (0 = DefaultTick).
func NewNemesis(inner Transport, seed uint64, tick time.Duration, phases []NemesisPhase) *Nemesis {
	if tick <= 0 {
		tick = DefaultTick
	}
	n := &Nemesis{
		inner:  inner,
		seed:   seed,
		tick:   tick,
		phases: phases,
		counts: make([]nemesisPhaseCounts, len(phases)),
	}
	set := func(ids []graph.NodeID) map[graph.NodeID]bool {
		if len(ids) == 0 {
			return nil
		}
		m := make(map[graph.NodeID]bool, len(ids))
		for _, u := range ids {
			m[u] = true
		}
		return m
	}
	for i := range phases {
		n.fromSet = append(n.fromSet, set(phases[i].AsymFrom))
		n.toSet = append(n.toSet, set(phases[i].AsymTo))
		n.slowSet = append(n.slowSet, set(phases[i].SlowNodes))
		var fm map[int]bool
		if len(phases[i].FlapEdges) > 0 {
			fm = make(map[int]bool, len(phases[i].FlapEdges))
			for _, e := range phases[i].FlapEdges {
				fm[e] = true
			}
		}
		n.flapSet = append(n.flapSet, fm)
	}
	return n
}

// nemesisTagLoss keeps the nemesis loss draw independent of FaultTransport's
// draws when both decorate the same stack.
const nemesisTagLoss uint64 = 0x4E454D // "NEM"

// Send implements Transport: each active phase gets a chance to eat or slow
// the message before it reaches the inner transport.
func (n *Nemesis) Send(msg Message, delay time.Duration) error {
	for i := range n.phases {
		p := &n.phases[i]
		if !p.active(msg.SentTick) {
			continue
		}
		c := &n.counts[i]
		if n.fromSet[i] != nil && n.fromSet[i][msg.From] && n.toSet[i][msg.To] {
			c.asym.Add(1)
			return nil // one-way cut: eaten silently
		}
		if n.flapSet[i] != nil && n.flapSet[i][msg.EdgeID] && p.flapDown(msg.SentTick) {
			c.flap.Add(1)
			return nil
		}
		if p.Loss > 0 && rng.Coin(p.Loss, n.seed,
			nemesisTagLoss, uint64(i), uint64(msg.EdgeID), uint64(msg.Kind),
			uint64(msg.From), uint64(uint32(msg.SentTick))) {
			c.loss.Add(1)
			return nil
		}
		if n.slowSet[i] != nil && (n.slowSet[i][msg.From] || n.slowSet[i][msg.To]) {
			if extra := p.slowExtra(msg.SentTick); extra > 0 {
				c.delayed.Add(1)
				delay += time.Duration(extra) * n.tick
			}
		}
	}
	return n.inner.Send(msg, delay)
}

// Recv implements Transport.
func (n *Nemesis) Recv(u graph.NodeID) <-chan Message { return n.inner.Recv(u) }

// Hosts implements SinkTransport by asking the inner transport (falling back
// to a Recv probe for foreign transports).
func (n *Nemesis) Hosts(u graph.NodeID) bool {
	if st, ok := n.inner.(SinkTransport); ok {
		return st.Hosts(u)
	}
	return n.inner.Recv(u) != nil
}

// SetSink forwards the runtime's sink to the inner transport; the phase
// schedule stays in force because chaos decisions happen in Send, before the
// inner transport hands the surviving message to the sink.
func (n *Nemesis) SetSink(sink DeliverySink) bool {
	if st, ok := n.inner.(SinkTransport); ok {
		return st.SetSink(sink)
	}
	return false
}

// Close implements Transport by closing the inner transport.
func (n *Nemesis) Close() error { return n.inner.Close() }

// Drain implements Drainer by forwarding to the inner transport.
func (n *Nemesis) Drain(ctx context.Context) (DrainReport, error) {
	if d, ok := n.inner.(Drainer); ok {
		return d.Drain(ctx)
	}
	return DrainReport{}, n.inner.Close()
}

// PeerDown / PeerUp forward membership verdicts to the inner transport.
func (n *Nemesis) PeerDown(u graph.NodeID) {
	if s, ok := n.inner.(PeerStatusSink); ok {
		s.PeerDown(u)
	}
}

func (n *Nemesis) PeerUp(u graph.NodeID) {
	if s, ok := n.inner.(PeerStatusSink); ok {
		s.PeerUp(u)
	}
}

// Report returns the per-phase fault ledger.
func (n *Nemesis) Report() []NemesisPhaseReport {
	out := make([]NemesisPhaseReport, len(n.phases))
	for i := range n.phases {
		out[i] = NemesisPhaseReport{
			Name:      n.phases[i].Name,
			AsymDrops: n.counts[i].asym.Load(),
			FlapDrops: n.counts[i].flap.Load(),
			LossDrops: n.counts[i].loss.Load(),
			Delayed:   n.counts[i].delayed.Load(),
		}
	}
	return out
}

// Faults implements FaultReporter: partition-class drops (asymmetric cuts,
// down flaps) count as PartitionDrops, loss bursts as InjectedDrops, and the
// latency ramp as Jittered, folded with whatever the inner transport reports.
func (n *Nemesis) Faults() FaultReport {
	var rep FaultReport
	for i := range n.counts {
		rep.PartitionDrops += n.counts[i].asym.Load() + n.counts[i].flap.Load()
		rep.InjectedDrops += n.counts[i].loss.Load()
		rep.Jittered += n.counts[i].delayed.Load()
	}
	if fr, ok := n.inner.(FaultReporter); ok {
		inner := fr.Faults()
		rep.FaultCounts.add(inner.FaultCounts)
		rep.Overload.add(inner.Overload)
		rep.Partitions = append(rep.Partitions, inner.Partitions...)
	}
	return rep
}

// VerifyRecovery asserts the post-heal invariants of a nemesis run over its
// Result: the run completed, every survivor reached the protocol goal, and —
// when membership ran — no surviving observer's final table holds a survivor
// Dead (zero false dead declarations survive the heal). A residual Suspect is
// tolerated: a live detector always has probes in flight, and suspicion is
// the self-correcting intermediate state, not a verdict. It returns nil when
// all invariants hold.
func VerifyRecovery(res Result, survivors []graph.NodeID) error {
	if !res.Completed {
		return fmt.Errorf("nemesis: run did not complete")
	}
	for _, v := range survivors {
		if int(v) < len(res.Done) && !res.Done[v] {
			return fmt.Errorf("nemesis: survivor %d not informed after heal", v)
		}
	}
	if res.Members == nil {
		return nil
	}
	surv := make(map[graph.NodeID]bool, len(survivors))
	for _, v := range survivors {
		surv[v] = true
	}
	for _, obs := range survivors {
		table, ok := res.Members[obs]
		if !ok {
			continue // hosted by another runtime
		}
		seen := make(map[int]member.State, len(table))
		for _, up := range table {
			seen[up.Node] = up.St
		}
		for _, v := range survivors {
			st, known := seen[int(v)]
			if !known {
				return fmt.Errorf("nemesis: observer %d never learned of survivor %d", obs, v)
			}
			if st == member.Dead {
				return fmt.Errorf("nemesis: observer %d holds survivor %d dead after heal (false dead declaration)", obs, v)
			}
		}
	}
	return nil
}
