package live

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
)

// wireMessage is the JSON line format of the TCP transport. Payloads travel
// as (registered type name, raw bytes) pairs — see codec.go. Seq is the
// sender-assigned reliable-delivery sequence number; an ack echoes it back.
type wireMessage struct {
	Kind        uint8           `json:"k"`
	Seq         uint64          `json:"q,omitempty"`
	From        int             `json:"f"`
	To          int             `json:"t"`
	EdgeID      int             `json:"e"`
	Latency     int             `json:"l"`
	SentTick    int             `json:"s"`
	PayloadType string          `json:"pt,omitempty"`
	Payload     json.RawMessage `json:"p,omitempty"`
}

// wireAck is the Kind of an acknowledgement frame (only Kind and Seq are
// meaningful); it never collides with MsgRequest/MsgResponse.
const wireAck uint8 = 0xFF

// Reliable-delivery defaults: the first retransmission fires after
// DefaultRetransmitRTO, each subsequent one doubles the wait (capped at
// 16×RTO), and after DefaultMaxRetransmits unacknowledged retransmissions
// the message is abandoned and counted as dropped.
const (
	DefaultRetransmitRTO  = 250 * time.Millisecond
	DefaultMaxRetransmits = 4
)

// TCPTransport moves messages between processes as JSON lines over TCP.
// Each process hosts a subset of the graph's nodes behind one listener;
// SetPeers maps every remote node to the listen address of the process
// hosting it. Messages between two locally hosted nodes short-circuit the
// socket and are delivered in memory.
//
// Remote delivery is reliable up to a retransmission budget: every remote
// message carries a sequence number, the receiver acks it on the same
// connection, and unacked messages are retransmitted with exponential
// backoff (a write failure evicts the broken connection so the retry
// redials). A message still unacked after the budget is abandoned and
// counted as dropped. Receivers deduplicate on (EdgeID, From, SentTick,
// Kind), so retransmissions and network duplicates are idempotent.
//
// Outbound connections are dialed lazily (with retries, so a cluster's
// processes may start in any order) and pooled per destination address.
type TCPTransport struct {
	ln      net.Listener
	inboxes map[graph.NodeID]chan Message

	mu      sync.Mutex
	peers   map[graph.NodeID]string
	outs    map[string]*connState
	accepts []*connState

	dialTimeout time.Duration
	rto         time.Duration
	maxRetrans  int

	seq     atomic.Uint64
	pendMu  sync.Mutex
	pending map[uint64]*pendingSend

	dedupMu sync.Mutex
	dedup   map[dedupKey]struct{}

	timers         timerSet     // armed latency-delay timers for not-yet-sent messages
	dropsGiveUp    atomic.Int64 // retransmission budget exhausted
	dropsClosed    atomic.Int64 // unacked or undelivered at Close
	dropsDecode    atomic.Int64 // undecodable wire payloads
	dropsMisroute  atomic.Int64 // wire messages for nodes not hosted here
	retransmits    atomic.Int64
	dupsSuppressed atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)
var _ FaultReporter = (*TCPTransport)(nil)

// connState is one connection (pooled outbound or accepted inbound); its
// write mutex serializes our frames — data one way, acks the other — so a
// slow peer only stalls traffic on its own connection.
type connState struct {
	mu  sync.Mutex
	c   net.Conn
	enc *json.Encoder
}

// writeFrame encodes one frame on the connection.
func (cs *connState) writeFrame(w *wireMessage) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.enc.Encode(w)
}

// pendingSend is one unacknowledged remote message awaiting ack; retry is
// the armed retransmission timer (stopped on ack or Close).
type pendingSend struct {
	addr     string
	w        wireMessage
	attempts int
	retry    *time.Timer
}

// dedupKey identifies a message for receiver-side deduplication: the node
// pair and tick of the exchange half. From disambiguates the two endpoints
// initiating on the same edge in the same tick.
type dedupKey struct {
	edge     int
	from     graph.NodeID
	sentTick int
	kind     MsgKind
}

// NewTCPTransport listens on listenAddr (e.g. "127.0.0.1:0") and hosts the
// given local nodes. Call Addr to learn the bound address and SetPeers to
// install the node→address map before the first remote Send.
func NewTCPTransport(listenAddr string, local []graph.NodeID, buffer int) (*TCPTransport, error) {
	if buffer <= 0 {
		buffer = DefaultInboxBuffer
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", listenAddr, err)
	}
	t := &TCPTransport{
		ln:          ln,
		inboxes:     make(map[graph.NodeID]chan Message, len(local)),
		peers:       make(map[graph.NodeID]string),
		outs:        make(map[string]*connState),
		dialTimeout: 10 * time.Second,
		rto:         DefaultRetransmitRTO,
		maxRetrans:  DefaultMaxRetransmits,
		pending:     make(map[uint64]*pendingSend),
		dedup:       make(map[dedupKey]struct{}),
		closed:      make(chan struct{}),
	}
	for _, u := range local {
		t.inboxes[u] = make(chan Message, buffer)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() net.Addr { return t.ln.Addr() }

// SetPeers installs (or extends) the node→address map used to route remote
// sends. Locally hosted nodes need no entry.
func (t *TCPTransport) SetPeers(addrs map[graph.NodeID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for u, a := range addrs {
		t.peers[u] = a
	}
}

// SetDialTimeout bounds how long a remote write retries dialing an
// unreachable peer before failing the attempt (default 10s — generous so a
// cluster's processes may start in any order).
func (t *TCPTransport) SetDialTimeout(d time.Duration) { t.dialTimeout = d }

// SetRetransmit tunes reliable delivery: rto is the wait before the first
// retransmission (doubling per attempt), maxRetransmits the budget before a
// message is abandoned and counted as dropped. Zero values keep defaults;
// maxRetransmits < 0 disables retransmission entirely.
func (t *TCPTransport) SetRetransmit(rto time.Duration, maxRetransmits int) {
	if rto > 0 {
		t.rto = rto
	}
	if maxRetransmits != 0 {
		t.maxRetrans = maxRetransmits
	}
}

// Dropped returns the number of messages lost for any terminal reason since
// the transport started: retransmission give-ups, messages unacked or
// undelivered at Close, undecodable payloads, and misroutes. Suppressed
// duplicates are not drops (their content arrived).
func (t *TCPTransport) Dropped() int64 {
	return t.dropsGiveUp.Load() + t.dropsClosed.Load() + t.dropsDecode.Load() + t.dropsMisroute.Load()
}

// Retransmits returns the number of reliable-delivery retransmissions.
func (t *TCPTransport) Retransmits() int64 { return t.retransmits.Load() }

// DupsSuppressed returns the number of duplicate arrivals the receiver-side
// dedup swallowed.
func (t *TCPTransport) DupsSuppressed() int64 { return t.dupsSuppressed.Load() }

// Faults implements FaultReporter with the transport's real-network ledger.
func (t *TCPTransport) Faults() FaultReport {
	return FaultReport{FaultCounts: FaultCounts{
		TransportDrops: t.Dropped(),
		Retransmits:    t.retransmits.Load(),
		DupsSuppressed: t.dupsSuppressed.Load(),
	}}
}

// Send implements Transport. Local destinations are delivered in memory;
// remote destinations are encoded eagerly (so codec errors surface here)
// and handed to reliable delivery after the latency delay.
func (t *TCPTransport) Send(msg Message, delay time.Duration) error {
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	if inbox, ok := t.inboxes[msg.To]; ok {
		if !deliverAfter(&t.timers, inbox, msg, delay, t.closed) {
			t.dropsClosed.Add(1)
			return ErrTransportClosed
		}
		return nil
	}
	t.mu.Lock()
	addr, ok := t.peers[msg.To]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("live: no peer address for node %d", msg.To)
	}
	pt, data, err := encodePayload(msg.Payload)
	if err != nil {
		return err
	}
	w := wireMessage{
		Kind:        uint8(msg.Kind),
		Seq:         t.seq.Add(1),
		From:        int(msg.From),
		To:          int(msg.To),
		EdgeID:      msg.EdgeID,
		Latency:     msg.Latency,
		SentTick:    msg.SentTick,
		PayloadType: pt,
		Payload:     data,
	}
	if !t.timers.schedule(delay, func() { t.transmit(addr, w) }) {
		t.dropsClosed.Add(1)
		return ErrTransportClosed
	}
	return nil
}

// transmit performs the first wire attempt of w and registers it for
// retransmission until acked (or the budget runs out).
func (t *TCPTransport) transmit(addr string, w wireMessage) {
	p := &pendingSend{addr: addr, w: w}
	t.pendMu.Lock()
	select {
	case <-t.closed:
		t.pendMu.Unlock()
		t.dropsClosed.Add(1)
		return
	default:
	}
	t.pending[w.Seq] = p
	t.armRetryLocked(p)
	t.pendMu.Unlock()
	t.write(addr, &w)
}

// armRetryLocked schedules the next retransmission for p; pendMu must be
// held by the caller.
func (t *TCPTransport) armRetryLocked(p *pendingSend) {
	backoff := t.rto << uint(p.attempts)
	if max := 16 * t.rto; backoff > max {
		backoff = max
	}
	seq := p.w.Seq
	p.retry = time.AfterFunc(backoff, func() { t.retry(seq) })
}

// retry retransmits one unacked message, or abandons it once the budget is
// spent. A no-op if the ack arrived (or the transport closed) in the
// meantime.
func (t *TCPTransport) retry(seq uint64) {
	t.pendMu.Lock()
	p, ok := t.pending[seq]
	if !ok {
		t.pendMu.Unlock()
		return
	}
	select {
	case <-t.closed:
		t.pendMu.Unlock()
		return // Close sweeps and counts the pending map
	default:
	}
	p.attempts++
	if t.maxRetrans < 0 || p.attempts > t.maxRetrans {
		delete(t.pending, seq)
		t.pendMu.Unlock()
		t.dropsGiveUp.Add(1)
		return
	}
	t.armRetryLocked(p)
	addr, w := p.addr, p.w
	t.pendMu.Unlock()
	t.retransmits.Add(1)
	t.write(addr, &w)
}

// ack resolves one pending message: its retransmission timer is stopped and
// the entry dropped.
func (t *TCPTransport) ack(seq uint64) {
	t.pendMu.Lock()
	defer t.pendMu.Unlock()
	if p, ok := t.pending[seq]; ok {
		p.retry.Stop()
		delete(t.pending, seq)
	}
}

// Recv implements Transport.
func (t *TCPTransport) Recv(u graph.NodeID) <-chan Message { return t.inboxes[u] }

// Close implements Transport: it stops the listener, all connections and
// delivery timers, and counts undelivered or unacked messages as dropped.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.dropsClosed.Add(t.timers.close())
		t.pendMu.Lock()
		for seq, p := range t.pending {
			p.retry.Stop()
			delete(t.pending, seq)
			t.dropsClosed.Add(1)
		}
		t.pendMu.Unlock()
		t.mu.Lock()
		for _, cs := range t.outs {
			cs.c.Close()
		}
		for _, cs := range t.accepts {
			cs.c.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		cs := &connState{c: c, enc: json.NewEncoder(c)}
		t.mu.Lock()
		select {
		case <-t.closed:
			// Accepted in the middle of Close after it swept the conn
			// lists; drop the connection instead of leaking it.
			t.mu.Unlock()
			c.Close()
			continue
		default:
		}
		t.accepts = append(t.accepts, cs)
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(cs)
	}
}

// readLoop decodes JSON frames from one connection: acks resolve pending
// sends, data messages are acked back on the same connection, deduplicated,
// and routed to the local inboxes.
func (t *TCPTransport) readLoop(cs *connState) {
	defer t.wg.Done()
	defer cs.c.Close()
	dec := json.NewDecoder(cs.c)
	for {
		var w wireMessage
		if err := dec.Decode(&w); err != nil {
			return // EOF or closed
		}
		if w.Kind == wireAck {
			t.ack(w.Seq)
			continue
		}
		if w.Seq != 0 {
			// Ack first — even duplicates — so the sender stops retransmitting.
			// Best effort: a lost ack only costs another (deduplicated) retry.
			_ = cs.writeFrame(&wireMessage{Kind: wireAck, Seq: w.Seq})
		}
		inbox, ok := t.inboxes[graph.NodeID(w.To)]
		if !ok {
			t.dropsMisroute.Add(1) // misrouted: not hosted here
			continue
		}
		key := dedupKey{edge: w.EdgeID, from: graph.NodeID(w.From), sentTick: w.SentTick, kind: MsgKind(w.Kind)}
		t.dedupMu.Lock()
		_, dup := t.dedup[key]
		if !dup {
			t.dedup[key] = struct{}{}
		}
		t.dedupMu.Unlock()
		if dup {
			t.dupsSuppressed.Add(1)
			continue
		}
		payload, err := decodePayload(w.PayloadType, w.Payload)
		if err != nil {
			t.dropsDecode.Add(1)
			continue
		}
		msg := Message{
			Kind:     MsgKind(w.Kind),
			From:     graph.NodeID(w.From),
			To:       graph.NodeID(w.To),
			EdgeID:   w.EdgeID,
			Latency:  w.Latency,
			SentTick: w.SentTick,
			Payload:  payload,
		}
		select {
		case inbox <- msg:
		case <-t.closed:
			return
		}
	}
}

// write delivers one frame to addr, dialing if needed. A failure evicts the
// broken connection so the next attempt (the message's retransmission)
// redials; the message itself stays pending, so nothing is silently lost
// here.
func (t *TCPTransport) write(addr string, w *wireMessage) {
	cs, err := t.conn(addr)
	if err != nil {
		return // retransmission will redial
	}
	if err := cs.writeFrame(w); err != nil {
		t.evict(addr, cs)
	}
}

// conn returns the pooled connection to addr, dialing with retries until
// dialTimeout so peers may come up after us.
func (t *TCPTransport) conn(addr string) (*connState, error) {
	t.mu.Lock()
	if cs, ok := t.outs[addr]; ok {
		t.mu.Unlock()
		return cs, nil
	}
	t.mu.Unlock()

	deadline := time.Now().Add(t.dialTimeout)
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("live: dial %s: %w", addr, err)
		}
		select {
		case <-t.closed:
			return nil, ErrTransportClosed
		case <-time.After(50 * time.Millisecond):
		}
	}

	cs := &connState{c: c, enc: json.NewEncoder(c)}
	t.mu.Lock()
	if prior, ok := t.outs[addr]; ok {
		// Lost a dial race; keep the first connection.
		t.mu.Unlock()
		c.Close()
		return prior, nil
	}
	select {
	case <-t.closed:
		t.mu.Unlock()
		c.Close()
		return nil, ErrTransportClosed
	default:
	}
	t.outs[addr] = cs
	// Outbound connections carry the peer's acks back to us. The wg.Add sits
	// inside the lock: Close checks closed, sweeps conns, and only then
	// waits, all behind the same mutex, so it cannot miss this registration.
	t.wg.Add(1)
	t.mu.Unlock()
	go t.readLoop(cs)
	return cs, nil
}

// evict removes a broken pooled connection so the next write redials.
func (t *TCPTransport) evict(addr string, cs *connState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.outs[addr] == cs {
		delete(t.outs, addr)
	}
	cs.c.Close()
}
