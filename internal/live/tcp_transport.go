package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
)

// wireMessage is the JSON line format of the TCP transport. Payloads travel
// as (registered type name, raw bytes) pairs — see codec.go.
type wireMessage struct {
	Kind        uint8           `json:"k"`
	From        int             `json:"f"`
	To          int             `json:"t"`
	EdgeID      int             `json:"e"`
	Latency     int             `json:"l"`
	SentTick    int             `json:"s"`
	PayloadType string          `json:"pt,omitempty"`
	Payload     json.RawMessage `json:"p,omitempty"`
}

// TCPTransport moves messages between processes as JSON lines over TCP.
// Each process hosts a subset of the graph's nodes behind one listener;
// SetPeers maps every remote node to the listen address of the process
// hosting it. Messages between two locally hosted nodes short-circuit the
// socket and are delivered in memory.
//
// Outbound connections are dialed lazily (with retries, so a cluster's
// processes may start in any order) and pooled per destination address.
type TCPTransport struct {
	ln      net.Listener
	inboxes map[graph.NodeID]chan Message

	mu      sync.Mutex
	peers   map[graph.NodeID]string
	outs    map[string]*outConn
	accepts []net.Conn

	dialTimeout time.Duration
	dropped     atomic.Int64
	closed      chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// outConn is one pooled outbound connection; its mutex serializes writers so
// a slow peer only stalls traffic to that peer.
type outConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *json.Encoder
}

// NewTCPTransport listens on listenAddr (e.g. "127.0.0.1:0") and hosts the
// given local nodes. Call Addr to learn the bound address and SetPeers to
// install the node→address map before the first remote Send.
func NewTCPTransport(listenAddr string, local []graph.NodeID, buffer int) (*TCPTransport, error) {
	if buffer <= 0 {
		buffer = DefaultInboxBuffer
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", listenAddr, err)
	}
	t := &TCPTransport{
		ln:          ln,
		inboxes:     make(map[graph.NodeID]chan Message, len(local)),
		peers:       make(map[graph.NodeID]string),
		outs:        make(map[string]*outConn),
		dialTimeout: 10 * time.Second,
		closed:      make(chan struct{}),
	}
	for _, u := range local {
		t.inboxes[u] = make(chan Message, buffer)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() net.Addr { return t.ln.Addr() }

// SetPeers installs (or extends) the node→address map used to route remote
// sends. Locally hosted nodes need no entry.
func (t *TCPTransport) SetPeers(addrs map[graph.NodeID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for u, a := range addrs {
		t.peers[u] = a
	}
}

// SetDialTimeout bounds how long a remote Send retries dialing an
// unreachable peer before dropping the message (default 10s — generous so a
// cluster's processes may start in any order).
func (t *TCPTransport) SetDialTimeout(d time.Duration) { t.dialTimeout = d }

// Dropped returns the number of messages abandoned on dial or write
// failures since the transport started.
func (t *TCPTransport) Dropped() int64 { return t.dropped.Load() }

// Send implements Transport. Local destinations are delivered in memory;
// remote destinations are encoded eagerly (so codec errors surface here)
// and written to the peer after the latency delay.
func (t *TCPTransport) Send(msg Message, delay time.Duration) error {
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	if inbox, ok := t.inboxes[msg.To]; ok {
		deliverAfter(inbox, msg, delay, t.closed)
		return nil
	}
	t.mu.Lock()
	addr, ok := t.peers[msg.To]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("live: no peer address for node %d", msg.To)
	}
	pt, data, err := encodePayload(msg.Payload)
	if err != nil {
		return err
	}
	w := wireMessage{
		Kind:        uint8(msg.Kind),
		From:        int(msg.From),
		To:          int(msg.To),
		EdgeID:      msg.EdgeID,
		Latency:     msg.Latency,
		SentTick:    msg.SentTick,
		PayloadType: pt,
		Payload:     data,
	}
	time.AfterFunc(delay, func() { t.write(addr, w) })
	return nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv(u graph.NodeID) <-chan Message { return t.inboxes[u] }

// Close implements Transport: it stops the listener, all connections, and
// abandons undelivered messages.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.mu.Lock()
		for _, oc := range t.outs {
			oc.c.Close()
		}
		for _, c := range t.accepts {
			c.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.accepts = append(t.accepts, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop decodes JSON lines from one inbound connection and routes them to
// the local inboxes.
func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	dec := json.NewDecoder(bufio.NewReader(c))
	for {
		var w wireMessage
		if err := dec.Decode(&w); err != nil {
			return // EOF or closed
		}
		inbox, ok := t.inboxes[graph.NodeID(w.To)]
		if !ok {
			t.dropped.Add(1) // misrouted: not hosted here
			continue
		}
		payload, err := decodePayload(w.PayloadType, w.Payload)
		if err != nil {
			t.dropped.Add(1)
			continue
		}
		msg := Message{
			Kind:     MsgKind(w.Kind),
			From:     graph.NodeID(w.From),
			To:       graph.NodeID(w.To),
			EdgeID:   w.EdgeID,
			Latency:  w.Latency,
			SentTick: w.SentTick,
			Payload:  payload,
		}
		select {
		case inbox <- msg:
		case <-t.closed:
			return
		}
	}
}

// write delivers one encoded message to addr, dialing if needed. Failures
// drop the message — the live model's answer to a crashed or partitioned
// peer — and evict the broken connection so the next write redials.
func (t *TCPTransport) write(addr string, w wireMessage) {
	oc, err := t.conn(addr)
	if err != nil {
		t.dropped.Add(1)
		return
	}
	oc.mu.Lock()
	err = oc.enc.Encode(&w)
	oc.mu.Unlock()
	if err != nil {
		t.evict(addr, oc)
		t.dropped.Add(1)
	}
}

// conn returns the pooled connection to addr, dialing with retries until
// dialTimeout so peers may come up after us.
func (t *TCPTransport) conn(addr string) (*outConn, error) {
	t.mu.Lock()
	if oc, ok := t.outs[addr]; ok {
		t.mu.Unlock()
		return oc, nil
	}
	t.mu.Unlock()

	deadline := time.Now().Add(t.dialTimeout)
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("live: dial %s: %w", addr, err)
		}
		select {
		case <-t.closed:
			return nil, ErrTransportClosed
		case <-time.After(50 * time.Millisecond):
		}
	}

	oc := &outConn{c: c, enc: json.NewEncoder(c)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if prior, ok := t.outs[addr]; ok {
		// Lost a dial race; keep the first connection.
		c.Close()
		return prior, nil
	}
	select {
	case <-t.closed:
		c.Close()
		return nil, ErrTransportClosed
	default:
	}
	t.outs[addr] = oc
	return oc, nil
}

// evict removes a broken pooled connection so the next write redials.
func (t *TCPTransport) evict(addr string, oc *outConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.outs[addr] == oc {
		delete(t.outs, addr)
	}
	oc.c.Close()
}
