package live

import (
	"fmt"
	"net"

	"gossip/internal/graph"
)

// TCPTransport is the TCP-listening face of the generic stream core. The
// name survives from when TCP was the only fabric; every method — and the
// ability to dial unix:// and ring:// peers, or auto-upgrade co-located
// peers onto an advertised unix socket — lives on StreamTransport, so the
// alias keeps the established API (and its tests) unchanged.
type TCPTransport = StreamTransport

// NewTCPTransport listens on listenAddr (e.g. "127.0.0.1:0") and returns a
// transport hosting the given node IDs. buffer sizes each node's inbox
// channel (<=0 means DefaultInboxBuffer). The transport accepts connections
// immediately; peers are added with SetPeers before the first Send.
func NewTCPTransport(listenAddr string, local []graph.NodeID, buffer int) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", listenAddr, err)
	}
	t := newStreamTransport(local, buffer)
	if err := t.addListener(ln, false); err != nil {
		ln.Close()
		return nil, err
	}
	return t, nil
}

// NewTCPTransportFromListener is NewTCPTransport over an already-bound
// listener, for supervisors that reserve ports by binding and then hand the
// live socket to the daemon (gossipctl passes it as an inherited fd). Taking
// the listener instead of an address closes the reserve/rebind window in
// which another process could steal the port. The transport owns ln and
// closes it on Close.
func NewTCPTransportFromListener(ln net.Listener, local []graph.NodeID, buffer int) (*TCPTransport, error) {
	t := newStreamTransport(local, buffer)
	if err := t.addListener(ln, false); err != nil {
		return nil, err
	}
	return t, nil
}
