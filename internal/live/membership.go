package live

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/member"
	"gossip/internal/sim"
)

// This file glues the SWIM membership layer (internal/member) into the live
// runtime. With Options.Membership set, every hosted node runs a failure
// detector alongside its protocol handler: probes, ping-req relays, and
// anti-entropy syncs travel as MsgMember messages over the run's ordinary
// transport — the same binary wire frames, fault injectors, and latency
// machinery as protocol traffic — with membership deltas piggybacked on every
// packet under the detector's per-frame budget. Nodes bootstrap from a seed
// peer list instead of trusting the static roster, and the runtime's
// completion check counts only members currently believed alive.

// MemberPayloadType is the interned wire name of membership packets: the
// first frame on a connection carrying one pays for the name, every later
// frame references it with a single byte.
const MemberPayloadType = "member.packet"

func init() {
	RegisterPayload(MemberPayloadType,
		func(p sim.Payload) ([]byte, bool) {
			pkt, ok := p.(member.Packet)
			if !ok {
				return nil, false
			}
			return pkt.AppendBinary(nil), true
		},
		func(data []byte) (sim.Payload, error) {
			// DecodePacket builds fresh slices, so nothing aliases the
			// transport's reused frame buffer.
			pkt, err := member.DecodePacket(data)
			if err != nil {
				return nil, err
			}
			return pkt, nil
		})
}

// MembershipConfig enables SWIM-style dynamic membership for a live run.
// The zero value of every field takes the member package's default; Seeds
// defaults to {0} (the single-seed join topology).
type MembershipConfig struct {
	// Seeds is the bootstrap peer list: every node starts believing only
	// itself and these peers exist and full-syncs with them on its first
	// tick. Nil means node 0 is the sole seed.
	Seeds []graph.NodeID
	// ProbeInterval is the number of ticks between a node's probes.
	ProbeInterval int
	// ProbeTimeout is how many ticks a direct ping may go unanswered before
	// ping-req relays fire.
	ProbeTimeout int
	// SuspicionMult scales the suspicion timeout (see member.Config).
	SuspicionMult int
	// IndirectK is the number of ping-req relays per escalation.
	IndirectK int
	// MaxPiggyback bounds the membership deltas piggybacked per packet.
	MaxPiggyback int
	// RetransmitMult scales each delta's rebroadcast budget.
	RetransmitMult int
	// SyncInterval is the anti-entropy period (negative disables).
	SyncInterval int
	// Record keeps per-node membership event logs in the Result.
	Record bool
}

// validate rejects configurations the member package would silently clamp.
func (mc *MembershipConfig) validate(n int) error {
	for _, s := range mc.Seeds {
		if s < 0 || s >= n {
			return fmt.Errorf("live: membership seed node %d out of range [0,%d)", s, n)
		}
	}
	return nil
}

// memberConfig lowers the runtime-facing config to the member package's.
func (mc *MembershipConfig) memberConfig(seed uint64, n int, record bool) member.Config {
	return member.Config{
		Seed:           seed,
		N:              n,
		ProbeInterval:  mc.ProbeInterval,
		ProbeTimeout:   mc.ProbeTimeout,
		SuspicionMult:  mc.SuspicionMult,
		IndirectK:      mc.IndirectK,
		MaxPiggyback:   mc.MaxPiggyback,
		RetransmitMult: mc.RetransmitMult,
		SyncInterval:   mc.SyncInterval,
		Record:         record || mc.Record,
	}.Defaulted()
}

// seedsFor returns the member-package seed list for node u: every configured
// seed but u itself. The seeds themselves bootstrap from the other seeds.
func (mc *MembershipConfig) seedsFor(u graph.NodeID) []int {
	seeds := mc.Seeds
	if seeds == nil {
		seeds = []graph.NodeID{0}
	}
	out := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s != u {
			out = append(out, int(s))
		}
	}
	return out
}

// newMember builds node u's failure detector for this run. When the
// transport reacts to membership verdicts (PeerStatusSink), every state
// transition this detector applies is forwarded: a Dead verdict trips the
// peer's circuit breaker and flushes its in-flight messages, an Alive one
// (refutation, rejoin) re-admits it. First verdict wins — the forward is
// idempotent on the transport side, so many local observers are harmless.
func (rt *Runtime) newMember(u graph.NodeID) *member.Node {
	cfg := rt.memberCfg
	if sink := rt.peerSink; sink != nil {
		self := int(u)
		cfg.OnChange = func(v int, st member.State, inc uint32) {
			if v == self {
				return // our own record is not a peer verdict
			}
			switch st {
			case member.Dead:
				sink.PeerDown(graph.NodeID(v))
			case member.Alive:
				sink.PeerUp(graph.NodeID(v))
			}
		}
	}
	return member.New(int(u), rt.opts.Membership.seedsFor(u), cfg)
}

// believedDead reports whether every running local observer's view of v is
// Dead — the membership layer's verdict that v is no longer a member. With
// no running observers it reports false (no one is left to testify).
func (rt *Runtime) believedDead(v graph.NodeID) bool {
	observers := 0
	for _, o := range rt.local {
		if o.id == v || o.crashed.Load() {
			continue
		}
		m := o.mem.Load()
		if m == nil {
			continue
		}
		observers++
		st, _, known := m.StateOf(int(v))
		if !known || st != member.Dead {
			return false
		}
	}
	return observers > 0
}

// memberTick drives the node's failure detector one wall tick and ships the
// resulting probes/syncs. Runs even while the runtime quiesces — the
// detector must keep answering and probing for as long as the process lives.
func (n *node) memberTick() {
	m := n.mem.Load()
	if m == nil {
		return
	}
	n.sendMember(m.Tick(n.wall))
}

// sendMember ships membership envelopes as MsgMember messages. Each packet
// gets a unique synthetic (negative) edge ID: membership traffic flows
// between arbitrary node pairs, not graph edges, and the unique ID keeps the
// TCP receiver's (edge, from, tick, kind) dedup from collapsing distinct
// packets sent in the same tick.
func (n *node) sendMember(envs []member.Envelope) {
	for _, env := range envs {
		n.memEdge--
		msg := Message{
			Kind:     MsgMember,
			From:     n.id,
			To:       graph.NodeID(env.To),
			EdgeID:   n.memEdge,
			Latency:  1,
			SentTick: n.wall,
			Payload:  env.Pkt,
		}
		n.m.MemberPackets++
		n.m.MemberBytes += env.Pkt.SizeBytes()
		// Best effort, like every gossip packet: a loss surfaces as a missed
		// ack and the detector escalates on its own.
		_ = n.rt.tr.Send(msg, n.rt.opts.Tick)
	}
}

// handleMember delivers one incoming membership packet to the detector and
// ships its replies.
func (n *node) handleMember(msg Message) {
	m := n.mem.Load()
	if m == nil {
		return
	}
	pkt, ok := msg.Payload.(member.Packet)
	if !ok {
		return // misrouted or foreign payload: drop, as with corrupt frames
	}
	n.sendMember(m.Receive(pkt, n.wall))
}
