package live

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// This file is the chaos layer of the live runtime: a FaultTransport
// decorator that injects deterministic, seeded faults — message drops,
// duplication, latency jitter, and scheduled link partitions — over any
// Transport, plus the FaultReport shape through which transports surface
// their fault accounting to Result.
//
// Every fault decision is a pure function of (fault seed, message identity),
// where a message's identity is the tuple (EdgeID, Kind, From, SentTick,
// attempt). Goroutine scheduling therefore cannot change which messages are
// dropped, duplicated, or jittered: two runs whose protocols emit the same
// messages experience byte-identical faults. The decision is also made
// before the message reaches any wire codec, so it is independent of the
// encoding: a run behaves identically under the binary and JSON wire
// formats (and over the in-process channel transport, which never encodes).

// FaultConfig configures deterministic fault injection. The zero value
// injects nothing (a pure pass-through that only counts traffic).
type FaultConfig struct {
	// Seed drives every fault decision. It is independent of the protocol
	// seed, so the same network weather can be replayed over different
	// protocol randomness and vice versa.
	Seed uint64
	// Drop is the per-message loss probability in [0, 1].
	Drop float64
	// Duplicate is the per-message duplication probability in [0, 1]; a
	// duplicated message is delivered twice (the copy with one extra tick of
	// delay), exercising receiver-side idempotence.
	Duplicate float64
	// JitterTicks adds a uniform extra delivery delay of 0..JitterTicks
	// ticks per message (0 = no jitter).
	JitterTicks int
	// Tick is the wall-clock duration of one tick, used to scale jitter
	// (0 = DefaultTick). Set it to the run's Options.Tick.
	Tick time.Duration
	// Partitions schedules link cuts: while a partition is active, every
	// message of an exchange initiated inside its window that crosses a cut
	// edge is silently dropped, then the link heals.
	Partitions []Partition
}

// Partition cuts a set of edges during the tick window [From, Until). A
// message crosses the cut if the exchange that produced it was initiated
// (SentTick) inside the window — both halves of an exchange see the same
// epoch, so a cut is symmetric. Until <= 0 means the partition never heals.
type Partition struct {
	From  int
	Until int
	// Edges lists the severed edge IDs (see CutBetween for deriving them
	// from a node bipartition).
	Edges []int
}

// active reports whether the partition covers an exchange initiated at tick.
func (p Partition) active(tick int) bool {
	return tick >= p.From && (p.Until <= 0 || tick < p.Until)
}

// CutBetween returns the IDs of all edges with one endpoint in a and the
// other in b — the edge set of the (a, b) cut, ready for Partition.Edges.
func CutBetween(g *graph.Graph, a, b []graph.NodeID) []int {
	inA := make(map[graph.NodeID]bool, len(a))
	for _, u := range a {
		inA[u] = true
	}
	inB := make(map[graph.NodeID]bool, len(b))
	for _, u := range b {
		inB[u] = true
	}
	seen := make(map[int]bool)
	var ids []int
	for _, u := range a {
		for _, he := range g.Neighbors(u) {
			if inB[he.To] && !seen[he.ID] {
				seen[he.ID] = true
				ids = append(ids, he.ID)
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// FaultCounts aggregates fault accounting across the transport stack.
type FaultCounts struct {
	// InjectedDrops counts messages eaten by the FaultTransport's loss rate.
	InjectedDrops int64
	// InjectedDups counts extra copies delivered by the duplication rate.
	InjectedDups int64
	// Jittered counts messages delivered with extra injected delay.
	Jittered int64
	// PartitionDrops counts messages cut by an active partition.
	PartitionDrops int64
	// TransportDrops counts messages the underlying transport lost for real
	// reasons: retransmission give-ups, undecodable or misrouted wire
	// messages, and deliveries abandoned at Close.
	TransportDrops int64
	// Retransmits counts reliable-delivery retransmissions (TCP transport).
	Retransmits int64
	// DupsSuppressed counts receiver-side deduplication hits (TCP transport).
	DupsSuppressed int64
}

// Dropped returns the total messages lost to any cause.
func (c FaultCounts) Dropped() int64 {
	return c.InjectedDrops + c.PartitionDrops + c.TransportDrops
}

// add accumulates other into c.
func (c *FaultCounts) add(other FaultCounts) {
	c.InjectedDrops += other.InjectedDrops
	c.InjectedDups += other.InjectedDups
	c.Jittered += other.Jittered
	c.PartitionDrops += other.PartitionDrops
	c.TransportDrops += other.TransportDrops
	c.Retransmits += other.Retransmits
	c.DupsSuppressed += other.DupsSuppressed
}

// FaultReport is the fault ledger of one live run: the counters, the
// partition schedule in force, and the informed-fraction trajectory sampled
// once per watcher tick (filled in by Run).
type FaultReport struct {
	FaultCounts
	// Overload is the transport's overload-protection ledger (zero when the
	// stack has no TCP transport or nothing was shed).
	Overload OverloadCounts
	// Partitions echoes the configured partition epochs (nil when no
	// FaultTransport was in the stack).
	Partitions []Partition
	// InformedOverTime samples the fraction of hosted reachable survivors
	// that reached the local goal, once per tick of the run's watcher.
	InformedOverTime []float64
}

// FaultReporter is implemented by transports that keep fault accounting;
// Run consults it to fill Result.Faults. A decorator (FaultTransport)
// folds its inner transport's counts into its own report.
type FaultReporter interface {
	Faults() FaultReport
}

// FaultTransport decorates an inner Transport with seeded fault injection.
// It is composable: wrap a ChanTransport for a lossy in-process network, or
// a TCPTransport to add injected chaos on top of real network failures.
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig
	cut   map[int][]Partition // edge ID -> partitions covering it

	injectedDrops  atomic.Int64
	injectedDups   atomic.Int64
	jittered       atomic.Int64
	partitionDrops atomic.Int64
}

var _ Transport = (*FaultTransport)(nil)
var _ SinkTransport = (*FaultTransport)(nil)
var _ FaultReporter = (*FaultTransport)(nil)

// NewFaultTransport wraps inner with the given fault plan. The caller keeps
// ownership of inner's lifetime; closing the FaultTransport closes inner.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultTick
	}
	t := &FaultTransport{inner: inner, cfg: cfg, cut: make(map[int][]Partition)}
	for _, p := range cfg.Partitions {
		for _, e := range p.Edges {
			t.cut[e] = append(t.cut[e], p)
		}
	}
	return t
}

// Fault decision tags keep the drop, duplication, and jitter draws of one
// message independent.
const (
	faultTagDrop uint64 = iota + 1
	faultTagDup
	faultTagJitter
)

// ident returns the message identity tuple the fault draws hash over.
func faultIdent(tag uint64, msg Message, attempt uint64) []uint64 {
	return []uint64{tag, uint64(msg.EdgeID), uint64(msg.Kind), uint64(msg.From), uint64(uint32(msg.SentTick)), attempt}
}

func (t *FaultTransport) coin(p float64, tag uint64, msg Message, attempt uint64) bool {
	return rng.Coin(p, t.cfg.Seed, faultIdent(tag, msg, attempt)...)
}

// jitterOf draws the message's extra delay in ticks, uniform in
// [0, JitterTicks].
func (t *FaultTransport) jitterOf(msg Message, attempt uint64) int {
	if t.cfg.JitterTicks <= 0 {
		return 0
	}
	vals := append([]uint64{t.cfg.Seed}, faultIdent(faultTagJitter, msg, attempt)...)
	return int(rng.Hash(vals...) % uint64(t.cfg.JitterTicks+1))
}

// partitioned reports whether msg crosses an active cut.
func (t *FaultTransport) partitioned(msg Message) bool {
	for _, p := range t.cut[msg.EdgeID] {
		if p.active(msg.SentTick) {
			return true
		}
	}
	return false
}

// Send implements Transport: it applies the fault plan, then forwards the
// surviving deliveries (with any extra jitter) to the inner transport.
func (t *FaultTransport) Send(msg Message, delay time.Duration) error {
	if t.partitioned(msg) {
		t.partitionDrops.Add(1)
		return nil // a cut link eats the message silently
	}
	if t.coin(t.cfg.Drop, faultTagDrop, msg, 0) {
		t.injectedDrops.Add(1)
		return nil
	}
	if j := t.jitterOf(msg, 0); j > 0 {
		t.jittered.Add(1)
		delay += time.Duration(j) * t.cfg.Tick
	}
	if err := t.inner.Send(msg, delay); err != nil {
		return err
	}
	if t.coin(t.cfg.Duplicate, faultTagDup, msg, 0) {
		t.injectedDups.Add(1)
		// The copy trails the original by at least one tick so receivers see
		// a genuine duplicate arrival, not a same-instant double delivery.
		dupDelay := delay + time.Duration(1+t.jitterOf(msg, 1))*t.cfg.Tick
		// Best effort: if the inner transport refuses the copy, the original
		// already went out and inner's own accounting covers the loss.
		_ = t.inner.Send(msg, dupDelay)
	}
	return nil
}

// Recv implements Transport.
func (t *FaultTransport) Recv(u graph.NodeID) <-chan Message { return t.inner.Recv(u) }

// Hosts implements SinkTransport by asking the inner transport (falling back
// to a Recv probe for foreign transports).
func (t *FaultTransport) Hosts(u graph.NodeID) bool {
	if st, ok := t.inner.(SinkTransport); ok {
		return st.Hosts(u)
	}
	return t.inner.Recv(u) != nil
}

// SetSink forwards the runtime's sink to the inner transport. The chaos layer
// stays in force: fault decisions happen in Send, before the inner transport
// hands the surviving message to the sink.
func (t *FaultTransport) SetSink(sink DeliverySink) bool {
	if st, ok := t.inner.(SinkTransport); ok {
		return st.SetSink(sink)
	}
	return false
}

// Close implements Transport by closing the inner transport.
func (t *FaultTransport) Close() error { return t.inner.Close() }

// Faults implements FaultReporter: the injector's own counters plus whatever
// the inner transport reports (real TCP losses, retransmissions, dedup).
func (t *FaultTransport) Faults() FaultReport {
	rep := FaultReport{
		FaultCounts: FaultCounts{
			InjectedDrops:  t.injectedDrops.Load(),
			InjectedDups:   t.injectedDups.Load(),
			Jittered:       t.jittered.Load(),
			PartitionDrops: t.partitionDrops.Load(),
		},
		Partitions: t.cfg.Partitions,
	}
	if fr, ok := t.inner.(FaultReporter); ok {
		inner := fr.Faults()
		rep.FaultCounts.add(inner.FaultCounts)
		rep.Overload.add(inner.Overload)
		rep.Partitions = append(rep.Partitions, inner.Partitions...)
	}
	return rep
}

// Drain implements Drainer by forwarding to the inner transport.
func (t *FaultTransport) Drain(ctx context.Context) (DrainReport, error) {
	if d, ok := t.inner.(Drainer); ok {
		return d.Drain(ctx)
	}
	return DrainReport{}, t.inner.Close()
}

// PeerDown / PeerUp forward membership verdicts to the inner transport.
func (t *FaultTransport) PeerDown(u graph.NodeID) {
	if s, ok := t.inner.(PeerStatusSink); ok {
		s.PeerDown(u)
	}
}

func (t *FaultTransport) PeerUp(u graph.NodeID) {
	if s, ok := t.inner.(PeerStatusSink); ok {
		s.PeerUp(u)
	}
}
