package live

import (
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Protocol describes how to run one of the repository's sim.Handler
// protocols on a live runtime: a per-node handler factory plus the
// node-local goal the runtime watches for completion. Implementations live
// next to the protocols themselves (internal/core).
type Protocol interface {
	// Name identifies the protocol (diagnostics and the gossipd CLI).
	Name() string
	// KnownLatencies reports whether handlers may observe adjacent edge
	// latencies (the Section 5 knowledge model).
	KnownLatencies() bool
	// NewHandler builds the state machine for node u — the very same
	// sim.Handler the round simulator would drive.
	NewHandler(u graph.NodeID) sim.Handler
	// LocalDone reports whether node u's handler reached the protocol's
	// local goal (for broadcast: u is informed). It is called from u's own
	// goroutine, interleaved with the handler's callbacks, never
	// concurrently with them.
	LocalDone(u graph.NodeID, h sim.Handler) bool
}
