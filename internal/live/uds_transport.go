package live

import (
	"fmt"
	"net"
	"os"

	"gossip/internal/graph"
)

// NewUnixTransport listens on a unix-domain stream socket at path and
// returns a transport hosting the given node IDs. The wire protocol is
// byte-identical to TCP — same codec, same FrameBatch super-frames, same
// reliable-delivery machinery — only the kernel path shrinks: no checksums,
// no Nagle/cork logic, no loopback queueing. Peers dial it either explicitly
// ("unix://PATH" in SetPeers) or automatically when their transport learns
// the path via SetPeerSockets. buffer is as for NewTCPTransport.
func NewUnixTransport(path string, local []graph.NodeID, buffer int) (*StreamTransport, error) {
	t := newStreamTransport(local, buffer)
	if err := t.ListenUnix(path); err != nil {
		return nil, err
	}
	return t, nil
}

// ListenUnix adds a unix-socket listener at path alongside the transport's
// existing listeners, so one daemon can serve remote peers over TCP and
// co-located peers over the socket at once. A stale socket file left by a
// dead process is removed and the bind retried; a path with a live listener
// (or a non-socket file) is an error. The socket file is unlinked when the
// transport closes.
func (t *StreamTransport) ListenUnix(path string) error {
	ln, err := listenUnixSocket(path)
	if err != nil {
		return err
	}
	if err := t.addListener(ln, true); err != nil {
		ln.Close()
		return err
	}
	return nil
}

// UnixAddr returns the socket path of the transport's first unix listener,
// or "" when it has none. This is the path to advertise to co-located peers
// via their SetPeerSockets.
func (t *StreamTransport) UnixAddr() string {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	for _, sl := range t.listeners {
		if ua, ok := sl.ln.Addr().(*net.UnixAddr); ok {
			return ua.Name
		}
	}
	return ""
}

// listenUnixSocket binds a stream listener at path, reclaiming the path from
// a dead process: the bind fails while the socket file exists, so on failure
// probe it with a dial — if nothing answers and it really is a socket,
// remove it and bind again. Anything else (a live listener, a regular file)
// stays untouched.
func listenUnixSocket(path string) (net.Listener, error) {
	ln, err := net.Listen("unix", path)
	if err == nil {
		return ln, nil
	}
	fi, serr := os.Stat(path)
	if serr != nil || fi.Mode()&os.ModeSocket == 0 {
		return nil, fmt.Errorf("live: listen unix %s: %w", path, err)
	}
	if c, derr := net.Dial("unix", path); derr == nil {
		c.Close()
		return nil, fmt.Errorf("live: listen unix %s: socket in use: %w", path, err)
	}
	if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
		return nil, fmt.Errorf("live: listen unix %s: %w", path, rerr)
	}
	ln, err = net.Listen("unix", path)
	if err != nil {
		return nil, fmt.Errorf("live: listen unix %s: %w", path, err)
	}
	return ln, nil
}
