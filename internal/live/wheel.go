package live

import (
	"math/bits"
	"sync"
	"time"
)

// This file is the hierarchical timing wheel (Varghese & Lauck) that replaces
// every per-message time.Timer/time.AfterFunc and per-node ticker in the live
// runtime. Two layers:
//
//   - wheel[T]: the caller-synchronized core. Time is an abstract int64 tick
//     counter; arm/cancel/advance are O(1) amortized. The sharded event loop
//     owns one per shard (ticks = protocol ticks, no lock), and timerWheel
//     wraps one for transports (ticks = wall-clock granules, mutex).
//   - timerWheel: the concurrent wall-clock wrapper transports use for
//     latency-delay deliveries and retransmit RTOs. A single lazily-started
//     driver goroutine advances the wheel, replacing one goroutine per armed
//     time.Timer with one per transport.
//
// Layout: wheelLevels levels of wheelSlots slots. Level L slot s holds
// entries with (when >> (L*wheelBits)) & wheelMask == s; an entry is placed
// at the lowest level whose span covers its remaining delta, so level 0 holds
// entries due within 64 ticks, level 1 within 64², and so on. Entries beyond
// the top level's span sit on an overflow list rescanned once per top-level
// slot boundary. When the low-order wheels wrap, the matching upper slot
// cascades its entries down; by the time a delta fits level 0 the entry sits
// in slot when&wheelMask and fires exactly at tick `when`, so firing order is
// monotone in `when`.

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelSpan is the horizon covered by the leveled slots; deltas at or
	// beyond it overflow. At the timerWheel's default 100µs granule this is
	// ~28 minutes — an overflow rescan is a once-per-26s event for a
	// pathological timer, not a hot path.
	wheelSpan = 1 << (wheelBits * wheelLevels)
	// wheelRescanShift aligns overflow rescans with top-level cascades.
	wheelRescanShift = wheelBits * (wheelLevels - 1)
)

// wheelEntry is one armed timer. Entries live on intrusive circular
// doubly-linked slot lists (or the overflow list) and are pooled: gen guards
// a recycled entry against stale cancel handles (ABA).
type wheelEntry[T any] struct {
	prev, next *wheelEntry[T]
	when       int64
	gen        uint64
	val        T
	level      int8 // 0..wheelLevels-1, wheelOverflow, or wheelFree
	slot       int8
}

const (
	wheelOverflow int8 = -1
	wheelFree     int8 = -2
)

// wheel is the caller-synchronized core. The zero value is not ready; use
// newWheel. All methods must be externally serialized.
type wheel[T any] struct {
	now      int64
	armed    int
	occ      [wheelLevels]uint64 // per-level nonempty-slot bitmap
	slots    [wheelLevels][wheelSlots]wheelEntry[T]
	overflow wheelEntry[T] // sentinel of the overflow list
	overN    int
	free     *wheelEntry[T] // pool, singly linked through next
}

func newWheel[T any]() *wheel[T] {
	w := &wheel[T]{}
	for l := range w.slots {
		for s := range w.slots[l] {
			sent := &w.slots[l][s]
			sent.prev, sent.next = sent, sent
		}
	}
	w.overflow.prev, w.overflow.next = &w.overflow, &w.overflow
	return w
}

// alloc pops a pooled entry or makes a fresh one.
func (w *wheel[T]) alloc() *wheelEntry[T] {
	if e := w.free; e != nil {
		w.free = e.next
		e.next = nil
		return e
	}
	return &wheelEntry[T]{}
}

// release unlinks bookkeeping and returns the entry to the pool, bumping its
// generation so stale handles can no longer cancel it.
func (w *wheel[T]) release(e *wheelEntry[T]) {
	var zero T
	e.val = zero
	e.gen++
	e.level = wheelFree
	e.prev = nil
	e.next = w.free
	w.free = e
}

// sentinel returns the list head owning (level, slot).
func (w *wheel[T]) sentinel(level, slot int8) *wheelEntry[T] {
	if level == wheelOverflow {
		return &w.overflow
	}
	return &w.slots[level][slot]
}

// unlink removes e from its slot list, maintaining the occupancy bitmap.
func (w *wheel[T]) unlink(e *wheelEntry[T]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	if e.level == wheelOverflow {
		w.overN--
	} else {
		sent := &w.slots[e.level][e.slot]
		if sent.next == sent {
			w.occ[e.level] &^= 1 << uint(e.slot)
		}
	}
}

// place links e into the slot owning its deadline, given the wheel's current
// time. Callers guarantee e.when >= w.now; e.when == w.now only occurs while
// cascading at a boundary, where the level-0 slot fires later the same tick.
func (w *wheel[T]) place(e *wheelEntry[T]) {
	delta := e.when - w.now
	if delta >= wheelSpan {
		e.level, e.slot = wheelOverflow, 0
		w.overN++
	} else {
		level := int8(0)
		for delta >= 1<<((level+1)*wheelBits) {
			level++
		}
		e.level = level
		e.slot = int8((e.when >> uint(level*wheelBits)) & wheelMask)
		w.occ[level] |= 1 << uint(e.slot)
	}
	sent := w.sentinel(e.level, e.slot)
	e.prev = sent.prev
	e.next = sent
	sent.prev.next = e
	sent.prev = e
}

// arm schedules val at absolute tick `when` (clamped to now+1 if not in the
// future) and returns a cancel handle: the entry plus its generation.
func (w *wheel[T]) arm(when int64, val T) (*wheelEntry[T], uint64) {
	if when <= w.now {
		when = w.now + 1
	}
	e := w.alloc()
	e.when = when
	e.val = val
	w.place(e)
	w.armed++
	return e, e.gen
}

// cancel disarms the entry behind a handle. It reports false when the entry
// already fired, was cancelled, or was recycled for a newer timer.
func (w *wheel[T]) cancel(e *wheelEntry[T], gen uint64) bool {
	if e == nil || e.gen != gen || e.level == wheelFree {
		return false
	}
	w.unlink(e)
	w.release(e)
	w.armed--
	return true
}

// len returns the number of armed entries.
func (w *wheel[T]) len() int { return w.armed }

// reset disarms everything and returns how many entries it abandoned; the
// wheel stays usable (Close accounting).
func (w *wheel[T]) reset() int64 {
	n := int64(w.armed)
	for l := int8(0); l < wheelLevels; l++ {
		for s := int8(0); s < wheelSlots; s++ {
			sent := &w.slots[l][s]
			for sent.next != sent {
				e := sent.next
				w.unlink(e)
				w.release(e)
			}
		}
	}
	for w.overflow.next != &w.overflow {
		e := w.overflow.next
		w.unlink(e)
		w.release(e)
	}
	w.armed = 0
	return n
}

// nextDue returns the earliest tick > now at which the wheel has work — a
// level-0 deadline, an upper-level cascade, or an overflow rescan — capped at
// `cap`. Slot occupancy makes this exact: all entries in one upper slot share
// an epoch, so each occupied slot contributes exactly one boundary.
func (w *wheel[T]) nextDue(cap int64) int64 {
	best := cap
	if w.occ[0] != 0 {
		cur := w.now & wheelMask
		for b := w.occ[0]; b != 0; b &= b - 1 {
			d := (int64(bits.TrailingZeros64(b)) - cur) & wheelMask
			if d == 0 {
				d = wheelSlots
			}
			if t := w.now + d; t < best {
				best = t
			}
		}
	}
	for l := 1; l < wheelLevels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		shift := uint(l * wheelBits)
		epoch := w.now >> shift
		for b := w.occ[l]; b != 0; b &= b - 1 {
			d := (int64(bits.TrailingZeros64(b)) - epoch) & wheelMask
			if d == 0 {
				d = wheelSlots
			}
			if t := (epoch + d) << shift; t < best {
				best = t
			}
		}
	}
	if w.overN > 0 {
		if t := (w.now>>wheelRescanShift + 1) << wheelRescanShift; t < best {
			best = t
		}
	}
	return best
}

// advance moves the wheel to `target`, appending every expired entry's value
// to out in firing order (monotone in `when`; FIFO within a tick). Large
// jumps skip straight between due ticks via nextDue, so an idle wheel costs
// nothing per elapsed tick.
func (w *wheel[T]) advance(target int64, out []T) []T {
	for w.now < target {
		w.now = w.nextDue(target) // ≤ target by construction
		out = w.tick(out)
	}
	return out
}

// tick processes the wheel's current time: rescan overflow and cascade upper
// slots at their boundaries (an entry can fall several levels in one tick;
// order across levels is free, since a cascading entry never lands in a slot
// this tick still has to visit), then fire the level-0 slot.
func (w *wheel[T]) tick(out []T) []T {
	if w.overN > 0 && w.now&(1<<wheelRescanShift-1) == 0 {
		w.rescanOverflow()
	}
	for l := 1; l < wheelLevels; l++ {
		shift := uint(l * wheelBits)
		if w.now&(1<<shift-1) != 0 {
			break // not a boundary for this level, nor any higher one
		}
		slot := int8((w.now >> shift) & wheelMask)
		if w.occ[l]&(1<<uint(slot)) != 0 {
			w.cascade(int8(l), slot)
		}
	}
	slot := int8(w.now & wheelMask)
	if w.occ[0]&(1<<uint(slot)) == 0 {
		return out
	}
	// Detach the whole slot, then walk the chain: all entries are due this
	// tick (level-0 slots hold one lap only), and detaching keeps a
	// hypothetical re-place from revisiting the list.
	sent := &w.slots[0][slot]
	head := sent.next
	sent.prev.next = nil
	sent.prev, sent.next = sent, sent
	w.occ[0] &^= 1 << uint(slot)
	for e := head; e != nil; {
		next := e.next
		if e.when > w.now {
			w.place(e) // unreachable while the lap invariant holds
		} else {
			out = append(out, e.val)
			w.release(e)
			w.armed--
		}
		e = next
	}
	return out
}

// cascade detaches one upper slot and re-places its entries a level (or
// more) down; their epoch starts at the current tick, so none move back up.
func (w *wheel[T]) cascade(level, slot int8) {
	sent := &w.slots[level][slot]
	head := sent.next
	sent.prev.next = nil
	sent.prev, sent.next = sent, sent
	w.occ[level] &^= 1 << uint(slot)
	for e := head; e != nil; {
		next := e.next
		w.place(e)
		e = next
	}
}

// rescanOverflow pulls every overflow entry whose delta now fits the leveled
// slots. Runs once per top-level slot boundary while the list is nonempty.
func (w *wheel[T]) rescanOverflow() {
	for e := w.overflow.next; e != &w.overflow; {
		next := e.next
		if e.when-w.now < wheelSpan {
			w.unlink(e)
			w.place(e)
		}
		e = next
	}
}

// defaultWheelGranule is the timerWheel's tick: delivery delays and RTOs are
// quantized up to it. 100µs is well under the runtime's default 1ms protocol
// tick and the 50ms RTO floor.
const defaultWheelGranule = 100 * time.Microsecond

// timerWheel is the concurrent wall-clock face of the wheel, the transports'
// replacement for per-message time.AfterFunc: schedule(delay, fn) arms fn on
// a shared wheel driven by one goroutine. The driver starts lazily on the
// first schedule and exits promptly at close, so an idle or closed transport
// holds no goroutine (the timer-hygiene tests rely on this).
type timerWheel struct {
	granule time.Duration

	mu        sync.Mutex
	w         *wheel[func()]
	start     time.Time
	running   bool
	closed    bool
	inflight  int64         // callbacks handed to a runner goroutine but not yet past the close check
	executing int64         // callbacks past the close check and currently executing
	wake      chan struct{} // cap 1: nudges the driver after an earlier arm
}

// newTimerWheel builds a wheel with the given granule (<= 0 means
// defaultWheelGranule).
func newTimerWheel(granule time.Duration) *timerWheel {
	if granule <= 0 {
		granule = defaultWheelGranule
	}
	return &timerWheel{
		granule: granule,
		w:       newWheel[func()](),
		wake:    make(chan struct{}, 1),
	}
}

// wheelTimer is one scheduled callback's cancel handle. The nil handle (from
// a zero-delay or post-close schedule) is valid and never stoppable.
type wheelTimer struct {
	tw  *timerWheel
	e   *wheelEntry[func()]
	gen uint64
}

// Stop disarms the callback, reporting whether it was still armed. Stopping
// nil, fired, cancelled, or recycled handles is a safe no-op.
func (t *wheelTimer) Stop() bool {
	if t == nil || t.tw == nil {
		return false
	}
	t.tw.mu.Lock()
	ok := t.tw.w.cancel(t.e, t.gen)
	t.tw.mu.Unlock()
	return ok
}

// schedule arms fn to run after delay (rounded up to the granule). It
// returns nil when the wheel is closed — the callback is abandoned, never
// armed. A non-positive delay runs fn on its own goroutine immediately,
// matching time.AfterFunc(0) latency without a granule's quantization; until
// the callback actually starts it counts toward len and a close abandons it
// (the accounting Drain relies on: a not-yet-run delivery is a counted
// loss, not a silent one).
func (tw *timerWheel) schedule(delay time.Duration, fn func()) *wheelTimer {
	if delay <= 0 {
		tw.mu.Lock()
		if tw.closed {
			tw.mu.Unlock()
			return nil
		}
		tw.inflight++
		tw.mu.Unlock()
		go func() {
			tw.mu.Lock()
			if tw.closed {
				// close counted us as abandoned (and zeroed the in-flight
				// count); don't run.
				tw.mu.Unlock()
				return
			}
			tw.inflight--
			tw.executing++
			tw.mu.Unlock()
			fn()
			tw.mu.Lock()
			tw.executing--
			tw.mu.Unlock()
		}()
		return &wheelTimer{}
	}
	ticks := int64((delay + tw.granule - 1) / tw.granule)
	tw.mu.Lock()
	if tw.closed {
		tw.mu.Unlock()
		return nil
	}
	if !tw.running {
		tw.running = true
		tw.start = time.Now()
		go tw.drive()
	}
	now := int64(time.Since(tw.start) / tw.granule)
	if now > tw.w.now {
		// Don't advance here (firing needs the lock dropped); just keep the
		// deadline honest relative to wall time. The driver catches up.
		ticks += now - tw.w.now
	}
	e, gen := tw.w.arm(tw.w.now+ticks, fn)
	tw.mu.Unlock()
	select {
	case tw.wake <- struct{}{}:
	default:
	}
	return &wheelTimer{tw: tw, e: e, gen: gen}
}

// len returns the number of armed callbacks, including expired or zero-delay
// callbacks whose runner goroutine has not finished executing them yet — so a
// drain polling len()==0 never races a delivery that is still in flight.
func (tw *timerWheel) len() int {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.w.len() + int(tw.inflight) + int(tw.executing)
}

// close abandons every armed callback and returns how many — including
// callbacks the driver already collected but has not yet run (their runner
// re-checks closed and skips them, so the count stays exact). Callbacks
// already executing are not abandoned; they run to completion.
func (tw *timerWheel) close() int64 {
	tw.mu.Lock()
	if tw.closed {
		tw.mu.Unlock()
		return 0
	}
	tw.closed = true
	n := tw.w.reset() + tw.inflight
	tw.inflight = 0
	tw.mu.Unlock()
	select {
	case tw.wake <- struct{}{}:
	default:
	}
	return n
}

// drive is the wheel's single timer goroutine: advance to wall time, run
// what expired, sleep until the next deadline or an earlier arm.
func (tw *timerWheel) drive() {
	sleep := time.NewTimer(time.Hour)
	defer sleep.Stop()
	var batch []func()
	for {
		tw.mu.Lock()
		if tw.closed {
			tw.mu.Unlock()
			return
		}
		now := int64(time.Since(tw.start) / tw.granule)
		batch = tw.w.advance(now, batch[:0])
		tw.inflight += int64(len(batch)) // still counted by len() until run
		due := tw.w.nextDue(now + 1<<wheelRescanShift)
		tw.mu.Unlock()

		if len(batch) > 0 {
			// One goroutine per expired batch, never under the lock: a
			// blocking callback (an inbox handover, a retry dial) must not
			// stall the wheel or later batches, and callbacks are free to
			// re-enter schedule/Stop. Each callback leaves the in-flight
			// count only as it runs, and a close abandons the rest — so a
			// drain polling len() never races a collected-but-unrun delivery.
			fns := batch
			batch = nil
			go func() {
				for _, fn := range fns {
					tw.mu.Lock()
					if tw.closed {
						// close counted us (and the rest of the batch) as
						// abandoned and zeroed the in-flight count; stop.
						tw.mu.Unlock()
						return
					}
					tw.inflight--
					tw.executing++
					tw.mu.Unlock()
					fn()
					tw.mu.Lock()
					tw.executing--
					tw.mu.Unlock()
				}
			}()
		}

		wait := time.Duration(due)*tw.granule - time.Since(tw.start)
		if wait < 0 {
			continue
		}
		if !sleep.Stop() {
			select {
			case <-sleep.C:
			default:
			}
		}
		sleep.Reset(wait)
		select {
		case <-tw.wake:
		case <-sleep.C:
		}
	}
}
