package live

import "testing"

// TestShardMailboxCap: a full mailbox sheds gossip posts (reported as handled
// and counted in the overload ledger) but always admits membership traffic.
func TestShardMailboxCap(t *testing.T) {
	s := &shard{rt: &Runtime{mailCap: DefaultMailboxCap}, notify: make(chan struct{}, 1)}
	s.q = make([]post, DefaultMailboxCap)

	if !s.post(Message{Kind: MsgRequest}, 0) {
		t.Fatal("shed gossip post reported false; callers would fall back to the legacy inbox")
	}
	if got := len(s.q); got != DefaultMailboxCap {
		t.Fatalf("gossip post enqueued past the cap: len(q) = %d, want %d", got, DefaultMailboxCap)
	}
	if got := s.rt.mailShed.Load(); got != 1 {
		t.Fatalf("mailShed = %d, want 1", got)
	}

	if !s.post(Message{Kind: MsgMember}, 0) {
		t.Fatal("membership post rejected by a full mailbox")
	}
	if got := len(s.q); got != DefaultMailboxCap+1 {
		t.Fatalf("membership post not admitted past the cap: len(q) = %d, want %d", got, DefaultMailboxCap+1)
	}
	if got := s.rt.mailShed.Load(); got != 1 {
		t.Fatalf("mailShed after membership post = %d, want 1", got)
	}

	// An unbounded mailbox (mailCap <= 0, from Options.MailboxCap < 0)
	// admits gossip past any depth — bulk runs on dedicated hardware trade
	// memory for zero local loss.
	u := &shard{rt: &Runtime{}, notify: make(chan struct{}, 1)}
	u.q = make([]post, DefaultMailboxCap)
	if !u.post(Message{Kind: MsgRequest}, 0) {
		t.Fatal("unbounded mailbox rejected a post")
	}
	if got := len(u.q); got != DefaultMailboxCap+1 {
		t.Fatalf("unbounded mailbox shed: len(q) = %d, want %d", got, DefaultMailboxCap+1)
	}
	if got := u.rt.mailShed.Load(); got != 0 {
		t.Fatalf("unbounded mailbox counted a shed: mailShed = %d", got)
	}
}
