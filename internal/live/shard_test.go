package live

import "testing"

// TestShardMailboxCap: a full mailbox sheds gossip posts (reported as handled
// and counted in the overload ledger) but always admits membership traffic.
func TestShardMailboxCap(t *testing.T) {
	s := &shard{rt: &Runtime{}, notify: make(chan struct{}, 1)}
	s.q = make([]post, shardMailCap)

	if !s.post(Message{Kind: MsgRequest}, 0) {
		t.Fatal("shed gossip post reported false; callers would fall back to the legacy inbox")
	}
	if got := len(s.q); got != shardMailCap {
		t.Fatalf("gossip post enqueued past the cap: len(q) = %d, want %d", got, shardMailCap)
	}
	if got := s.rt.mailShed.Load(); got != 1 {
		t.Fatalf("mailShed = %d, want 1", got)
	}

	if !s.post(Message{Kind: MsgMember}, 0) {
		t.Fatal("membership post rejected by a full mailbox")
	}
	if got := len(s.q); got != shardMailCap+1 {
		t.Fatalf("membership post not admitted past the cap: len(q) = %d, want %d", got, shardMailCap+1)
	}
	if got := s.rt.mailShed.Load(); got != 1 {
		t.Fatalf("mailShed after membership post = %d, want 1", got)
	}
}
