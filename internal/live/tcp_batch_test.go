package live

import (
	"testing"
	"time"

	"gossip/internal/graph"
)

// TestTCPBatchedAggregation is the tentpole's hot-path check: a burst sent
// inside one flush window coalesces into a handful of FrameBatch super-frames
// — WireMsgsOut counts logical messages, WireFramesOut physical frames — and
// every message still arrives exactly once.
func TestTCPBatchedAggregation(t *testing.T) {
	a, b := tcpPair(t)
	if !a.Batching() {
		t.Fatal("batching is not the default")
	}
	a.SetFlushWindow(20 * time.Millisecond)

	const n = 64
	for i := 0; i < n; i++ {
		if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: i, Payload: bitp{}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int]bool, n)
	for got := 0; got < n; got++ {
		m := recvWithin(t, b.Recv(1), 10*time.Second)
		if seen[m.SentTick] {
			t.Fatalf("duplicate delivery for SentTick %d", m.SentTick)
		}
		seen[m.SentTick] = true
	}
	if msgs := a.WireMsgsOut(); msgs != n {
		t.Errorf("WireMsgsOut = %d, want %d", msgs, n)
	}
	if frames := a.WireFramesOut(); frames >= n/4 {
		t.Errorf("%d frames for %d messages — super-frames are not aggregating", frames, n)
	}
	if f, fr := a.WireFlushes(), a.WireFramesOut(); f > fr {
		t.Errorf("WireFlushes = %d > WireFramesOut = %d — a socket write per frame at most", f, fr)
	}
}

// TestTCPFlushAccountingConsistency is the satellite-1 regression test: the
// batching-factor math (msgs/frames, frames/flushes) must be computable from
// the same three counters whether the flush window is zero (write-per-cycle
// coalescing) or positive (windowed batching). Historically the 0-window path
// under-counted WireFlushes, making the windowed factor incomparable.
func TestTCPFlushAccountingConsistency(t *testing.T) {
	const n = 16

	// Zero window, serialized sends: every message is its own cycle, so all
	// three counters must agree — one logical message per frame per flush.
	a, b := tcpPair(t)
	for i := 0; i < n; i++ {
		if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: i, Payload: bitp{}}, 0); err != nil {
			t.Fatal(err)
		}
		recvWithin(t, b.Recv(1), 10*time.Second)
	}
	if msgs, frames := a.WireMsgsOut(), a.WireFramesOut(); msgs != n || frames != n {
		t.Errorf("0-window: msgs = %d, frames = %d, want %d each", msgs, frames, n)
	}
	if f := a.WireFlushes(); f != n {
		t.Errorf("0-window: WireFlushes = %d, want %d (one socket write per serialized message)", f, n)
	}

	// Windowed burst on a fresh pair: frames and flushes both collapse, and
	// the factor msgs/frames is what the PERFORMANCE.md accounting reports.
	c, d := tcpPair(t)
	c.SetFlushWindow(20 * time.Millisecond)
	for i := 0; i < n; i++ {
		if err := c.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: i, Payload: bitp{}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for got := 0; got < n; got++ {
		recvWithin(t, d.Recv(1), 10*time.Second)
	}
	msgs, frames, flushes := c.WireMsgsOut(), c.WireFramesOut(), c.WireFlushes()
	if msgs != n {
		t.Errorf("windowed: WireMsgsOut = %d, want %d", msgs, n)
	}
	if frames == 0 || flushes == 0 {
		t.Fatalf("windowed: frames = %d, flushes = %d — counters not ticking", frames, flushes)
	}
	if factor := msgs / frames; factor < 4 {
		t.Errorf("windowed: batching factor %d (msgs=%d frames=%d), want >= 4", factor, msgs, frames)
	}
	if flushes > frames {
		t.Errorf("windowed: WireFlushes = %d > WireFramesOut = %d", flushes, frames)
	}
}

// TestTCPBatchedDeadPeerFlush is the batched analog of
// TestTCPDeadPeerDropsInFlight: pend entries are per super-frame, but the
// dead-peer flush still counts every LOGICAL message the dead node had in
// flight.
func TestTCPBatchedDeadPeerFlush(t *testing.T) {
	addr, _, closeLn := quietListener(t)
	tr, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		closeLn()
		t.Fatal(err)
	}
	defer func() { tr.Close(); closeLn() }()
	tr.SetPeers(map[graph.NodeID]string{1: addr})
	tr.SetRetransmit(time.Hour, 4) // the quiet listener never acks; entries sit pending

	const sends = 8
	for i := 0; i < sends; i++ {
		if err := tr.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	// All written ⇒ all registered (registration precedes the write).
	if !pollUntil(5*time.Second, func() bool { return tr.WireMsgsOut() == sends }) {
		t.Fatalf("WireMsgsOut = %d, want %d", tr.WireMsgsOut(), sends)
	}
	if n := tr.pendingCount(); n < 1 || n > sends {
		t.Fatalf("pendingCount = %d batch entries, want 1..%d", n, sends)
	}

	tr.PeerDown(1)
	if ov := tr.Overload(); ov.DroppedDeadPeer != sends {
		t.Fatalf("DroppedDeadPeer = %d, want %d logical messages", ov.DroppedDeadPeer, sends)
	}
	if n := tr.pendingCount(); n != 0 {
		t.Fatalf("pendingCount = %d after PeerDown, want 0", n)
	}
	if got := tr.Dropped(); got < sends {
		t.Fatalf("Dropped() = %d, want >= %d", got, sends)
	}
}

// TestTCPBatchedCloseCountsQueued: messages batched-queued but never flushed
// when Close lands must surface in Dropped() — batch bookkeeping cannot make
// losses invisible.
func TestTCPBatchedCloseCountsQueued(t *testing.T) {
	addr, _, closeLn := quietListener(t)
	defer closeLn()
	tr, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetPeers(map[graph.NodeID]string{1: addr})
	tr.SetFlushWindow(time.Hour) // park the writer: sends stay queued, unregistered
	tr.SetRetransmit(time.Hour, 4)

	const sends = 5
	for i := 0; i < sends; i++ {
		if err := tr.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Dropped(); got != sends {
		t.Errorf("Dropped = %d after Close with %d queued, want %d", got, sends, sends)
	}
}

// TestTCPBatchedMixedFormatInterop (satellite: mixed-format clusters): a
// binary transport with batching on talks to a JSON peer. Each connection
// negotiates independently off the first byte — the JSON side reads the
// binary side's super-frames, the binary side reads JSON lines — and traffic
// flows both ways.
func TestTCPBatchedMixedFormatInterop(t *testing.T) {
	a, b := tcpPair(t)
	b.SetWireFormat(WireJSON)
	a.SetFlushWindow(10 * time.Millisecond)

	const n = 32
	for i := 0; i < n; i++ {
		if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: i, Payload: bitp{informed: true}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for got := 0; got < n; got++ {
		m := recvWithin(t, b.Recv(1), 10*time.Second)
		if !m.Payload.(bitp).informed {
			t.Fatal("payload lost its state crossing a batched binary -> JSON hop")
		}
	}
	if frames := a.WireFramesOut(); frames >= n/2 {
		t.Errorf("binary side wrote %d frames for %d messages — batching off toward a JSON-reading peer?", frames, n)
	}
	// Reverse direction: JSON frames into the batched binary transport.
	for i := 0; i < 4; i++ {
		if err := b.Send(Message{Kind: MsgResponse, From: 1, To: 0, EdgeID: 1, SentTick: i, Payload: bitp{}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for got := 0; got < 4; got++ {
		recvWithin(t, a.Recv(0), 10*time.Second)
	}
	if a.Dropped() != 0 || b.Dropped() != 0 {
		t.Errorf("drops on a healthy mixed-format pair: a=%d b=%d", a.Dropped(), b.Dropped())
	}
}

// TestTCPBatchedRetransmitWholeBatch: an unacked super-frame retransmits as a
// unit and one ack resolves all of its sub-messages — the per-batch
// bookkeeping the tentpole promises.
func TestTCPBatchedRetransmitWholeBatch(t *testing.T) {
	a, b := tcpPair(t)
	a.SetFlushWindow(10 * time.Millisecond)
	a.SetRetransmit(200*time.Millisecond, 8)

	const n = 16
	for i := 0; i < n; i++ {
		if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: i, Payload: bitp{}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for got := 0; got < n; got++ {
		recvWithin(t, b.Recv(1), 10*time.Second)
	}
	// The batch ack resolves every sub-message: nothing stays pending, and
	// the happy path never retransmits.
	if !pollUntil(5*time.Second, func() bool { return a.pendingCount() == 0 }) {
		t.Fatalf("pendingCount = %d after delivery + ack, want 0", a.pendingCount())
	}
	time.Sleep(500 * time.Millisecond)
	if r := a.Retransmits(); r != 0 {
		t.Errorf("Retransmits = %d on the happy path, want 0", r)
	}
	if b.DupsSuppressed() != 0 {
		t.Errorf("DupsSuppressed = %d with no retransmissions", b.DupsSuppressed())
	}
}
