package live

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

// batchMsgs builds n wireMessages with consecutive seqs and near-monotonic
// ticks, the shape a real aggregation pass hands appendBatchFrame.
func batchMsgs(n int, firstSeq uint64) []wireMessage {
	msgs := make([]wireMessage, n)
	for i := range msgs {
		msgs[i] = wireMessage{
			Kind: 1, Seq: firstSeq + uint64(i),
			From: i, To: i + 1, EdgeID: i, Latency: 1 + i%3, SentTick: 10 + i/4,
			PayloadType: "live_test.bit", Payload: json.RawMessage(`true`),
		}
	}
	return msgs
}

// TestWireBatchRoundTrip encodes a FrameBatch super-frame with piggybacked
// acks and decodes it back: every sub-message field survives, the acks come
// back sorted, and the decoder flags the frame as a batch.
func TestWireBatchRoundTrip(t *testing.T) {
	msgs := batchMsgs(17, 100)
	// Make a few sub-messages adversarial: out-of-run seq, negative fields.
	msgs[5] = wireMessage{Kind: 0xFE, Seq: 1 << 40, From: -1, To: -9, EdgeID: -2, Latency: -5, SentTick: -1 << 20}
	acks := []uint64{42, 7, 9000}

	var enc wireEnc
	wire := enc.appendBatchFrame(nil, msgs, append([]uint64(nil), acks...))

	br := bufio.NewReader(bytes.NewReader(wire))
	var dec wireDec
	gotAcks, got, batch, err := dec.readFrameMulti(br)
	if err != nil {
		t.Fatal(err)
	}
	if !batch {
		t.Fatal("decoder did not flag a batch frame")
	}
	wantAcks := []uint64{7, 42, 9000}
	if len(gotAcks) != len(wantAcks) {
		t.Fatalf("acks %v, want %v", gotAcks, wantAcks)
	}
	for i := range wantAcks {
		if gotAcks[i] != wantAcks[i] {
			t.Fatalf("acks %v, want %v", gotAcks, wantAcks)
		}
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d sub-messages, want %d", len(got), len(msgs))
	}
	for i, want := range msgs {
		g := got[i]
		if g.Kind != want.Kind || g.Seq != want.Seq || g.From != want.From ||
			g.To != want.To || g.EdgeID != want.EdgeID || g.Latency != want.Latency ||
			g.SentTick != want.SentTick || g.PayloadType != want.PayloadType ||
			!bytes.Equal(g.Payload, want.Payload) {
			t.Errorf("sub-message %d: got %+v want %+v", i, g, want)
		}
	}
	if _, _, _, err := dec.readFrameMulti(br); err == nil {
		t.Error("expected EOF after the batch frame")
	}
}

// TestWireBatchSharesConnectionState interleaves single frames and batch
// frames through one encoder/decoder pair: the intern table and the
// Seq/SentTick delta chains are connection state, shared across both frame
// shapes in stream order.
func TestWireBatchSharesConnectionState(t *testing.T) {
	single := wireMessage{Kind: 1, Seq: 1, From: 0, To: 1, EdgeID: 0, Latency: 1, SentTick: 9,
		PayloadType: "live_test.bit", Payload: json.RawMessage(`true`)}
	batch := batchMsgs(8, 2) // references the type `single` defined
	tail := wireMessage{Kind: 2, Seq: 10, From: 3, To: 4, EdgeID: 5, Latency: 6, SentTick: 12,
		PayloadType: "live_test.bit", Payload: json.RawMessage(`false`)}

	var enc wireEnc
	wire := enc.appendFrame(nil, &single, nil)
	defineCost := len(wire)
	wire = enc.appendBatchFrame(wire, batch, nil)
	wire = enc.appendFrame(wire, &tail, nil)

	// The batch must reference the interned type, never re-define it: 8
	// sub-messages in well under 8 single defining frames' worth of bytes.
	if batchCost := len(wire) - defineCost; batchCost >= 8*defineCost {
		t.Fatalf("batch of 8 cost %dB — interning/deltas not shared (single define frame was %dB)", batchCost, defineCost)
	}

	br := bufio.NewReader(bytes.NewReader(wire))
	var dec wireDec
	for i, wantLen := range []int{1, 8, 1} {
		_, msgs, isBatch, err := dec.readFrameMulti(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(msgs) != wantLen || isBatch != (wantLen > 1) {
			t.Fatalf("frame %d: %d msgs batch=%v, want %d", i, len(msgs), isBatch, wantLen)
		}
		for j, g := range msgs {
			if g.PayloadType != "live_test.bit" {
				t.Fatalf("frame %d sub %d: PayloadType %q", i, j, g.PayloadType)
			}
		}
		if wantLen == 1 && i == 2 && (msgs[0].Seq != tail.Seq || msgs[0].SentTick != tail.SentTick) {
			t.Fatalf("tail frame decoded %+v, want %+v", msgs[0], tail)
		}
	}
}

// TestWireBatchAmortization checks the point of the super-frame: a batch of k
// small messages costs materially less than k single frames carrying the
// identical messages.
func TestWireBatchAmortization(t *testing.T) {
	const k = 64
	msgs := batchMsgs(k, 1)

	var encSingle wireEnc
	var singles []byte
	for i := range msgs {
		singles = encSingle.appendFrame(singles, &msgs[i], nil)
	}
	var encBatch wireEnc
	batched := encBatch.appendBatchFrame(nil, msgs, nil)

	if len(batched) >= len(singles) {
		t.Fatalf("batch of %d = %dB, singles = %dB — no amortization", k, len(batched), len(singles))
	}
	// Each single frame pays header+len (2B) the batch pays once; expect at
	// least k extra bytes saved.
	if len(singles)-len(batched) < k {
		t.Errorf("batch saved only %dB over %d messages", len(singles)-len(batched), k)
	}
}

// TestWireBatchMalformed covers the batch-specific rejection paths: both
// batch and data flags set, a zero count, a count exceeding the body size, a
// truncated sub-message run, and trailing garbage after the last sub-message.
func TestWireBatchMalformed(t *testing.T) {
	var enc wireEnc
	good := enc.appendBatchFrame(nil, batchMsgs(3, 1), nil)

	reflag := func(wire []byte, flags byte) []byte {
		out := append([]byte(nil), wire...)
		out[0] = wireVersion | flags
		return out
	}
	var zeroCount []byte
	zeroCount = append(zeroCount, wireVersion|wireFlagBatch)
	zeroCount = append(zeroCount, 1, 0) // bodyLen=1, count=0
	var hugeCount []byte
	hugeCount = append(hugeCount, wireVersion|wireFlagBatch)
	body := binary.AppendUvarint(nil, 1<<20) // count far beyond the body
	hugeCount = binary.AppendUvarint(hugeCount, uint64(len(body)))
	hugeCount = append(hugeCount, body...)

	cases := map[string][]byte{
		"batch and data flags together": reflag(good, wireFlagBatch|wireFlagData),
		"zero count":                    zeroCount,
		"count exceeds body":            hugeCount,
		"truncated sub-messages":        good[:len(good)-4],
	}
	for name, wire := range cases {
		br := bufio.NewReader(bytes.NewReader(wire))
		var dec wireDec
		if _, _, _, err := dec.readFrameMulti(br); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// The single-frame wrapper must refuse batch frames outright.
	br := bufio.NewReader(bytes.NewReader(good))
	var dec wireDec
	if _, _, err := dec.readFrame(br, &wireMessage{}); !errors.Is(err, errMalformedFrame) {
		t.Errorf("readFrame on batch frame: err = %v, want errMalformedFrame", err)
	}
}

// TestWireBatchDecodeRollback checks the all-or-nothing decode contract: a
// batch whose tail is corrupt must not advance the connection's delta chains
// or intern table, so a fuzzing oracle (or a tolerant caller) sees state
// only from frames that decoded whole.
func TestWireBatchDecodeRollback(t *testing.T) {
	var enc wireEnc
	first := enc.appendFrame(nil, &wireMessage{Kind: 1, Seq: 5, From: 1, To: 2, EdgeID: 3, Latency: 4, SentTick: 7}, nil)
	bad := enc.appendBatchFrame(nil, batchMsgs(4, 6), nil)
	bad = bad[:len(bad)-3] // corrupt the final sub-message

	var dec wireDec
	if _, msgs, _, err := dec.readFrameMulti(bufio.NewReader(bytes.NewReader(first))); err != nil || len(msgs) != 1 {
		t.Fatalf("good frame: msgs=%d err=%v", len(msgs), err)
	}
	seq, tick, names := dec.lastSeq, dec.lastTick, len(dec.names)
	if _, _, _, err := dec.readFrameMulti(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("corrupt batch decoded without error")
	}
	if dec.lastSeq != seq || dec.lastTick != tick || len(dec.names) != names {
		t.Fatalf("decoder state advanced on a failed decode: seq %d→%d tick %d→%d names %d→%d",
			seq, dec.lastSeq, tick, dec.lastTick, names, len(dec.names))
	}
}

// TestWireBatchLarge pushes a batch through the size guards: a batch of
// maxBatchMsgs sub-messages with distinct payload types stays within one
// frame and round-trips.
func TestWireBatchLarge(t *testing.T) {
	msgs := batchMsgs(maxBatchMsgs, 1)
	for i := 0; i < 8; i++ {
		msgs[i].PayloadType = fmt.Sprintf("live_test.t%d", i)
	}
	var enc wireEnc
	wire := enc.appendBatchFrame(nil, msgs, nil)
	if len(wire) > maxWireBody {
		t.Fatalf("max batch encodes to %dB, beyond maxWireBody %d", len(wire), maxWireBody)
	}
	var dec wireDec
	_, got, batch, err := dec.readFrameMulti(bufio.NewReader(bytes.NewReader(wire)))
	if err != nil || !batch || len(got) != maxBatchMsgs {
		t.Fatalf("decode: msgs=%d batch=%v err=%v", len(got), batch, err)
	}
}
