package live

import (
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"gossip/internal/graph"
)

// pollUntil spins until cond holds or the deadline passes; reports success.
func pollUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// quietListener accepts connections and discards everything it reads — a
// peer that takes frames but never acks, so pend entries stay in flight.
// It counts accepted connections for redial assertions.
func quietListener(t testing.TB) (addr string, accepts *atomic.Int64, closeAll func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepts = new(atomic.Int64)
	var conns []net.Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			conns = append(conns, c)
			go io.Copy(io.Discard, c)
		}
	}()
	return ln.Addr().String(), accepts, func() {
		ln.Close()
		<-done
		for _, c := range conns {
			c.Close()
		}
	}
}

// overloadPair builds a transport hosting node 0 whose peer 1 is a quiet
// listener and whose writer is parked behind an hour-long flush window, so
// frames pile up in the writer queue and pend shards deterministically.
func overloadPair(t *testing.T) (*TCPTransport, func()) {
	t.Helper()
	addr, _, closeLn := quietListener(t)
	tr, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		closeLn()
		t.Fatal(err)
	}
	tr.SetPeers(map[graph.NodeID]string{1: addr})
	tr.SetFlushWindow(time.Hour)   // park the writer: nothing reaches the wire
	tr.SetRetransmit(time.Hour, 4) // and nothing retransmits mid-test
	return tr, func() { tr.Close(); closeLn() }
}

func testMsg(to graph.NodeID, kind MsgKind, tick int) Message {
	return Message{Kind: kind, From: 0, To: to, EdgeID: 1, Latency: 1,
		SentTick: tick, Payload: bitp{informed: true}}
}

// TestOverloadQueueShedOldest: past the writer-queue cap, gossip newcomers
// shed the oldest queued gossip frame — a terminal, counted loss.
func TestOverloadQueueShedOldest(t *testing.T) {
	tr, cleanup := overloadPair(t)
	defer cleanup()
	tr.SetOverloadLimits(4, -1)

	const sends = 20
	for i := 0; i < sends; i++ {
		if err := tr.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !pollUntil(5*time.Second, func() bool {
		return tr.Overload().ShedQueue == sends-4 && tr.queueDepth() == 4
	}) {
		t.Fatalf("ShedQueue = %d, queueDepth = %d; want %d shed, 4 queued",
			tr.Overload().ShedQueue, tr.queueDepth(), sends-4)
	}
	if got := tr.Dropped(); got < sends-4 {
		t.Fatalf("Dropped() = %d, want >= %d (sheds are drops)", got, sends-4)
	}
	if ov := tr.Faults().Overload; ov.ShedQueue != sends-4 {
		t.Fatalf("Faults().Overload.ShedQueue = %d, want %d", ov.ShedQueue, sends-4)
	}
}

// TestOverloadMemberBackpressure: membership frames are never shed — they
// preempt gossip from a full queue, and when the queue is all membership
// traffic a membership newcomer blocks (bounded) instead of dropping.
func TestOverloadMemberBackpressure(t *testing.T) {
	tr, cleanup := overloadPair(t)
	defer cleanup()
	tr.SetOverloadLimits(2, -1)

	// Fill the queue with membership frames.
	for i := 0; i < 2; i++ {
		if err := tr.Send(testMsg(1, MsgMember, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !pollUntil(5*time.Second, func() bool { return tr.queueDepth() == 2 }) {
		t.Fatalf("queueDepth = %d, want 2", tr.queueDepth())
	}

	// A gossip newcomer cannot displace membership: it is shed itself.
	if err := tr.Send(testMsg(1, MsgRequest, 100), 0); err != nil {
		t.Fatal(err)
	}
	if !pollUntil(5*time.Second, func() bool { return tr.Overload().ShedQueue == 1 }) {
		t.Fatalf("ShedQueue = %d, want 1 (gossip newcomer shed)", tr.Overload().ShedQueue)
	}

	// A membership newcomer applies backpressure: it blocks rather than drop.
	sent := make(chan error, 1)
	go func() { sent <- tr.Send(testMsg(1, MsgMember, 101), 0) }()
	if !pollUntil(5*time.Second, func() bool { return tr.Overload().MemberBackpressured == 1 }) {
		t.Fatalf("MemberBackpressured = %d, want 1", tr.Overload().MemberBackpressured)
	}
	if tr.Overload().ShedQueue != 1 {
		t.Fatalf("membership frame was shed: ShedQueue = %d", tr.Overload().ShedQueue)
	}
	// Close rescues the blocked enqueuer.
	cleanup()
	if err := <-sent; err != nil && err != ErrTransportClosed {
		t.Fatalf("backpressured send returned %v", err)
	}
}

// TestOverloadPendShed: the pend cap sheds the oldest in-flight gossip entry
// per shard; membership entries are exempt.
func TestOverloadPendShed(t *testing.T) {
	tr, cleanup := overloadPair(t)
	defer cleanup()
	tr.SetOverloadLimits(-1, pendShards) // one pending gossip frame per shard
	tr.SetBatching(false)                // per-message pend path: shed math is per frame

	const sends = 4 * pendShards
	for i := 0; i < sends; i++ {
		if err := tr.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !pollUntil(5*time.Second, func() bool {
		return tr.Overload().ShedPend == sends-pendShards && tr.pendingCount() == pendShards
	}) {
		t.Fatalf("ShedPend = %d, pendingCount = %d; want %d shed, %d pending",
			tr.Overload().ShedPend, tr.pendingCount(), sends-pendShards, pendShards)
	}
}

// TestTCPDeadPeerDropsInFlight: a PeerDown verdict flushes the dead node's
// in-flight messages even with circuit breakers disabled — the dead-peer
// drop is a membership feature, not a breaker feature.
func TestTCPDeadPeerDropsInFlight(t *testing.T) {
	tr, cleanup := overloadPair(t)
	defer cleanup()
	tr.SetBreaker(-1, 0)  // breakers off: the flush must still happen
	tr.SetBatching(false) // per-message pend entries: pendingCount == sends below

	const sends = 8
	for i := 0; i < sends; i++ {
		if err := tr.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !pollUntil(5*time.Second, func() bool { return tr.pendingCount() == sends }) {
		t.Fatalf("pendingCount = %d, want %d", tr.pendingCount(), sends)
	}

	tr.PeerDown(1)
	ov := tr.Overload()
	if ov.DroppedDeadPeer != sends {
		t.Fatalf("DroppedDeadPeer = %d, want %d", ov.DroppedDeadPeer, sends)
	}
	if ov.BreakerOpens != 0 || ov.BreakerDrops != 0 {
		t.Fatalf("breaker engaged while disabled: %+v", ov)
	}
	if n := tr.pendingCount(); n != 0 {
		t.Fatalf("pendingCount = %d after PeerDown, want 0", n)
	}
	if got := tr.Dropped(); got < sends {
		t.Fatalf("Dropped() = %d, want >= %d", got, sends)
	}
}

// TestTCPBreakerTripsOnDialFailures: consecutive unreachable-peer failures
// trip the breaker; once open, sends are refused without spending a dial.
func TestTCPBreakerTripsOnDialFailures(t *testing.T) {
	// A port with nothing listening: grab one, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	tr, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetPeers(map[graph.NodeID]string{1: deadAddr})
	tr.SetDialTimeout(time.Millisecond)
	tr.SetRetransmit(time.Hour, 4) // failures come from dials, not give-ups
	tr.SetBreaker(2, time.Hour)    // trip after 2 failures, stay open
	tr.SetBatching(false)          // pend entries register at send time in this mode

	for i := 0; i < 2; i++ {
		if err := tr.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
		if !pollUntil(5*time.Second, func() bool {
			ov := tr.Overload()
			return ov.BreakerOpens >= 1 || int(ov.BreakerDrops) == 0 && tr.pendingCount() == i+1
		}) {
			t.Fatalf("send %d never registered", i)
		}
	}
	if !pollUntil(5*time.Second, func() bool { return tr.Overload().BreakerOpens >= 1 }) {
		t.Fatalf("breaker never opened: %+v", tr.Overload())
	}
	// Tripping flushed the unreachable peer's pend entries.
	if !pollUntil(5*time.Second, func() bool { return tr.pendingCount() == 0 }) {
		t.Fatalf("pendingCount = %d after trip, want 0", tr.pendingCount())
	}
	// While open, admission is refused outright.
	before := tr.Overload().BreakerDrops
	if err := tr.Send(testMsg(1, MsgRequest, 50), 0); err != nil {
		t.Fatal(err)
	}
	if !pollUntil(5*time.Second, func() bool { return tr.Overload().BreakerDrops > before }) {
		t.Fatalf("open breaker admitted a send: %+v", tr.Overload())
	}
}

// TestTCPPeerDownTripsBreakerPeerUpHeals: a membership Dead verdict for the
// only node at an address opens its breaker; an Alive verdict re-admits it.
func TestTCPPeerDownTripsBreakerPeerUpHeals(t *testing.T) {
	src, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	src.SetRetransmit(time.Hour, 4)
	src.SetPeers(map[graph.NodeID]string{1: dst.Addr().String()})

	if err := src.Send(testMsg(1, MsgRequest, 1), 0); err != nil {
		t.Fatal(err)
	}
	<-dst.Recv(1)

	src.PeerDown(1)
	if ov := src.Overload(); ov.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d after PeerDown, want 1", ov.BreakerOpens)
	}
	before := src.Overload().BreakerDrops
	if err := src.Send(testMsg(1, MsgRequest, 2), 0); err != nil {
		t.Fatal(err)
	}
	if !pollUntil(5*time.Second, func() bool { return src.Overload().BreakerDrops > before }) {
		t.Fatalf("dead peer's breaker admitted a send")
	}

	src.PeerUp(1)
	if err := src.Send(testMsg(1, MsgRequest, 3), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-dst.Recv(1):
		if msg.SentTick != 3 {
			t.Fatalf("delivered tick %d, want 3", msg.SentTick)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PeerUp did not re-admit sends")
	}
}

// TestBreakerStateMachine drives peerState directly through closed → open →
// half-open → closed, and the half-open → open relapse.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	cooldown := time.Second
	ps := &peerState{}

	if !ps.allow(3, now) {
		t.Fatal("closed breaker refused a send")
	}
	if ps.failure(3, cooldown, now) {
		t.Fatal("tripped below threshold")
	}
	if ps.failure(3, cooldown, now) {
		t.Fatal("tripped below threshold")
	}
	if !ps.failure(3, cooldown, now) {
		t.Fatal("did not trip at threshold")
	}
	if ps.state() != breakerOpen {
		t.Fatalf("state = %v, want open", ps.state())
	}
	if ps.allow(3, now.Add(cooldown/2)) {
		t.Fatal("open breaker admitted a send inside cooldown")
	}

	// Cooldown elapsed: exactly one probe passes.
	probeAt := now.Add(2 * cooldown)
	if !ps.allow(3, probeAt) {
		t.Fatal("half-open breaker refused the probe")
	}
	if ps.state() != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", ps.state())
	}
	if ps.allow(3, probeAt) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// The probe's own retransmission is probe traffic, not a new send.
	if !ps.allowRetry(3, probeAt) {
		t.Fatal("half-open breaker refused the probe's retransmission")
	}

	// Probe succeeds: closed, failure count cleared.
	ps.success()
	if ps.state() != breakerClosed {
		t.Fatalf("state = %v after probe success, want closed", ps.state())
	}
	if !ps.allow(3, probeAt) {
		t.Fatal("healed breaker refused a send")
	}

	// Trip again; this time the probe fails → straight back to open.
	for i := 0; i < 3; i++ {
		ps.failure(3, cooldown, probeAt)
	}
	probe2 := probeAt.Add(2 * cooldown)
	if !ps.allow(3, probe2) {
		t.Fatal("second half-open probe refused")
	}
	// The relapse is not a fresh trip (it was counted when the breaker first
	// opened), but it must swing the state back to open.
	if ps.failure(3, cooldown, probe2) {
		t.Fatal("half-open relapse reported a fresh trip")
	}
	if ps.state() != breakerOpen {
		t.Fatalf("state = %v after failed probe, want open", ps.state())
	}
}

// TestAdaptiveRTOEstimator checks the Jacobson/Karn arithmetic and clamps.
func TestAdaptiveRTOEstimator(t *testing.T) {
	ps := &peerState{}
	fallback := time.Second
	if got := ps.rto(fallback, time.Millisecond, time.Minute); got != fallback {
		t.Fatalf("no-sample rto = %v, want fallback %v", got, fallback)
	}

	// First sample: srtt = rtt, rttvar = rtt/2 → RTO = rtt + 4·rttvar = 3·rtt.
	ps.observeRTT(10 * time.Millisecond)
	if got := ps.rto(fallback, time.Millisecond, time.Minute); got != 30*time.Millisecond {
		t.Fatalf("rto after first sample = %v, want 30ms", got)
	}
	// Second identical sample: rttvar decays to 3.75ms → RTO = 25ms.
	ps.observeRTT(10 * time.Millisecond)
	if got := ps.rto(fallback, time.Millisecond, time.Minute); got != 25*time.Millisecond {
		t.Fatalf("rto after second sample = %v, want 25ms", got)
	}

	// Clamps: a microsecond network floors at rtoMin, a dead-slow one at max.
	fast := &peerState{}
	fast.observeRTT(10 * time.Microsecond)
	if got := fast.rto(fallback, 50*time.Millisecond, time.Minute); got != 50*time.Millisecond {
		t.Fatalf("fast-path rto = %v, want floored to 50ms", got)
	}
	slow := &peerState{}
	slow.observeRTT(time.Hour)
	if got := slow.rto(fallback, time.Millisecond, time.Minute); got != time.Minute {
		t.Fatalf("slow-path rto = %v, want capped at 1m", got)
	}
}

// TestTCPAdaptiveRTOFromLiveTraffic: acked exchanges feed the estimator, so
// the effective RTO shrinks from the configured fallback toward wire RTT.
func TestTCPAdaptiveRTOFromLiveTraffic(t *testing.T) {
	src, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	addr := dst.Addr().String()
	src.SetPeers(map[graph.NodeID]string{1: addr})

	for i := 0; i < 4; i++ {
		if err := src.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
		<-dst.Recv(1)
	}
	if !pollUntil(5*time.Second, func() bool { return src.pendingCount() == 0 }) {
		t.Fatalf("acks never resolved: pendingCount = %d", src.pendingCount())
	}
	// A loopback RTT is far below a 10s fallback; the estimator must be live.
	if got := src.peer(addr).rto(10*time.Second, time.Millisecond, time.Hour); got >= time.Second {
		t.Fatalf("estimated rto = %v, want loopback-scale (estimator not fed)", got)
	}
}
