package live

import (
	"context"
	"errors"
	"sync"
	"time"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// MsgKind distinguishes the two halves of an exchange and the membership
// layer's traffic.
type MsgKind uint8

const (
	// MsgRequest is the initiator→responder half of an exchange.
	MsgRequest MsgKind = iota + 1
	// MsgResponse is the responder→initiator half.
	MsgResponse
	// MsgMember carries a SWIM membership packet (probe, ack, ping-req,
	// sync) with piggybacked membership deltas. Member messages flow between
	// arbitrary node pairs and use unique synthetic negative EdgeIDs rather
	// than graph edges.
	MsgMember
)

// Message is one in-flight half of an exchange. It is the live counterpart
// of the round simulator's calendar event: Latency is the edge's latency in
// rounds (ticks) and SentTick the initiator's tick at initiation, so the
// receiver can reconstruct the same sim.Request/sim.Response the lockstep
// engine would have delivered.
type Message struct {
	Kind     MsgKind
	From, To graph.NodeID
	EdgeID   int
	Latency  int
	SentTick int
	Payload  sim.Payload
}

// ErrTransportClosed reports a Send on a closed transport.
var ErrTransportClosed = errors.New("live: transport closed")

// Transport moves messages between nodes. Implementations must be safe for
// concurrent use: every node goroutine sends through the same transport.
//
// Send schedules msg for delivery to msg.To after delay — this is where an
// edge's latency becomes real wall-clock time. Send must not block on slow
// receivers (delivery happens asynchronously); a delivery that cannot
// complete by the time the transport closes is dropped, mirroring a message
// lost to a crashed node. Payloads must be treated as immutable once passed
// to Send, exactly as the round engine requires.
//
// Recv returns the inbox of a node hosted by this transport, or nil for
// nodes hosted elsewhere (multi-process deployments).
//
// Close stops all delivery and releases listeners, connections, and pending
// timers. Close the transport only after every runtime using it returned.
type Transport interface {
	Send(msg Message, delay time.Duration) error
	Recv(u graph.NodeID) <-chan Message
	Close() error
}

// DrainReport summarizes a graceful transport drain: what was flushed, what
// the deadline abandoned, and whether the drain finished clean.
type DrainReport struct {
	// Clean is true when every queue emptied and every reliable send
	// resolved before the deadline.
	Clean bool
	// AbandonedTimers counts armed latency-delay deliveries stopped at the
	// start of the drain (they are also counted as transport drops — a
	// draining process is leaving, so a not-yet-sent message is a loss).
	AbandonedTimers int64
	// QueuedAtClose and PendingAtClose count writer-queue frames and unacked
	// reliable sends still outstanding when the deadline expired (both zero
	// on a clean drain).
	QueuedAtClose  int
	PendingAtClose int
	// Wall is the drain's duration.
	Wall time.Duration
}

// Drainer is implemented by transports that support graceful shutdown:
// Drain stops admitting new sends, flushes what is already queued until ctx
// expires, then closes the transport. Decorators (FaultTransport, Nemesis)
// forward Drain to their inner transport.
type Drainer interface {
	Drain(ctx context.Context) (DrainReport, error)
}

// timerSet tracks a transport's pending delivery timers so Close can stop
// every one of them instead of letting armed timers linger (and fire into a
// dead transport) for up to a full latency delay after shutdown. schedule
// after close is a no-op; close returns how many deliveries it abandoned so
// transports can count them as drops.
type timerSet struct {
	mu      sync.Mutex
	closed  bool
	nextID  int
	pending map[int]*time.Timer
}

// schedule arms fire after delay. It reports false when the set is already
// closed (the delivery is abandoned, never armed).
func (s *timerSet) schedule(delay time.Duration, fire func()) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.pending == nil {
		s.pending = make(map[int]*time.Timer)
	}
	id := s.nextID
	s.nextID++
	// The callback runs on its own timer goroutine; holding mu through
	// registration means even a zero-delay callback observes its entry.
	s.pending[id] = time.AfterFunc(delay, func() {
		s.mu.Lock()
		if _, armed := s.pending[id]; !armed {
			// close stopped us between firing and locking: abandon.
			s.mu.Unlock()
			return
		}
		delete(s.pending, id)
		s.mu.Unlock()
		fire()
	})
	return true
}

// close stops every pending timer and returns the number of deliveries
// abandoned. Timers mid-fire observe their missing entry and abandon too.
func (s *timerSet) close() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	n := int64(len(s.pending))
	for id, t := range s.pending {
		t.Stop()
		delete(s.pending, id)
	}
	return n
}

// len returns the number of armed timers (tests use it to verify hygiene).
func (s *timerSet) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// timerShardCount splits a transport's delivery timers over independent
// locks: every Send arms a timer, so a single timerSet mutex serializes all
// sender goroutines on the transport's hottest path.
const timerShardCount = 8

// timerShards is a sharded timerSet. Callers spread load by passing any
// stable per-message number to shard (destination node, sequence number);
// close and len aggregate over all shards.
type timerShards [timerShardCount]timerSet

// shard returns the timerSet owning key.
func (s *timerShards) shard(key uint64) *timerSet {
	return &s[key&(timerShardCount-1)]
}

// close closes every shard and returns the total deliveries abandoned.
func (s *timerShards) close() int64 {
	var n int64
	for i := range s {
		n += s[i].close()
	}
	return n
}

// len returns the total number of armed timers across all shards.
func (s *timerShards) len() int {
	n := 0
	for i := range s {
		n += s[i].len()
	}
	return n
}

// deliverAfter arms a delivery of msg to inbox after delay via the timer
// set, abandoning the delivery if closed is signalled first (so a full inbox
// of a stopped runtime cannot leak the goroutine forever). It reports false
// when the delivery was abandoned before being armed.
func deliverAfter(ts *timerSet, inbox chan<- Message, msg Message, delay time.Duration, closed <-chan struct{}) bool {
	return ts.schedule(delay, func() {
		select {
		case inbox <- msg:
		case <-closed:
		}
	})
}
