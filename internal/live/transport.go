package live

import (
	"context"
	"errors"
	"time"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// MsgKind distinguishes the two halves of an exchange and the membership
// layer's traffic.
type MsgKind uint8

const (
	// MsgRequest is the initiator→responder half of an exchange.
	MsgRequest MsgKind = iota + 1
	// MsgResponse is the responder→initiator half.
	MsgResponse
	// MsgMember carries a SWIM membership packet (probe, ack, ping-req,
	// sync) with piggybacked membership deltas. Member messages flow between
	// arbitrary node pairs and use unique synthetic negative EdgeIDs rather
	// than graph edges.
	MsgMember
)

// Message is one in-flight half of an exchange. It is the live counterpart
// of the round simulator's calendar event: Latency is the edge's latency in
// rounds (ticks) and SentTick the initiator's tick at initiation, so the
// receiver can reconstruct the same sim.Request/sim.Response the lockstep
// engine would have delivered.
type Message struct {
	Kind     MsgKind
	From, To graph.NodeID
	EdgeID   int
	Latency  int
	SentTick int
	Payload  sim.Payload
}

// ErrTransportClosed reports a Send on a closed transport.
var ErrTransportClosed = errors.New("live: transport closed")

// Transport moves messages between nodes. Implementations must be safe for
// concurrent use: every node goroutine sends through the same transport.
//
// Send schedules msg for delivery to msg.To after delay — this is where an
// edge's latency becomes real wall-clock time. Send must not block on slow
// receivers (delivery happens asynchronously); a delivery that cannot
// complete by the time the transport closes is dropped, mirroring a message
// lost to a crashed node. Payloads must be treated as immutable once passed
// to Send, exactly as the round engine requires.
//
// Recv returns the inbox of a node hosted by this transport, or nil for
// nodes hosted elsewhere (multi-process deployments).
//
// Close stops all delivery and releases listeners, connections, and pending
// timers. Close the transport only after every runtime using it returned.
type Transport interface {
	Send(msg Message, delay time.Duration) error
	Recv(u graph.NodeID) <-chan Message
	Close() error
}

// DrainReport summarizes a graceful transport drain: what was flushed, what
// the deadline abandoned, and whether the drain finished clean.
type DrainReport struct {
	// Clean is true when every queue emptied and every reliable send
	// resolved before the deadline.
	Clean bool
	// AbandonedTimers counts armed latency-delay deliveries stopped at the
	// start of the drain (they are also counted as transport drops — a
	// draining process is leaving, so a not-yet-sent message is a loss).
	AbandonedTimers int64
	// QueuedAtClose and PendingAtClose count writer-queue frames and unacked
	// reliable sends still outstanding when the deadline expired (both zero
	// on a clean drain).
	QueuedAtClose  int
	PendingAtClose int
	// Wall is the drain's duration.
	Wall time.Duration
}

// Drainer is implemented by transports that support graceful shutdown:
// Drain stops admitting new sends, flushes what is already queued until ctx
// expires, then closes the transport. Decorators (FaultTransport, Nemesis)
// forward Drain to their inner transport.
type Drainer interface {
	Drain(ctx context.Context) (DrainReport, error)
}

// DeliverySink is the sharded runtime's fast path into a transport: instead
// of buffering locally destined messages on per-node inbox channels, a
// transport hands them straight to the owning shard, which applies delay on
// its own timer wheel. The sink reports false when it cannot accept the
// message (runtime not running, node not hosted by the sink); the transport
// must then fall back to its legacy inbox delivery so raw-transport users
// (tests, benchmarks, foreign runtimes) keep working.
//
// Sinks must be non-blocking and safe for concurrent use.
type DeliverySink func(msg Message, delay time.Duration) bool

// SinkTransport is implemented by transports that can route locally hosted
// traffic through a DeliverySink and can answer hosting queries without
// materializing an inbox channel. Hosts reports whether this transport is
// responsible for delivering to u (Recv(u) would be non-nil), without the
// allocation. SetSink installs (or, with nil, removes) the runtime's sink and
// reports whether the transport honors it — decorators forward SetSink to
// their inner transport and report false when it doesn't participate, in
// which case the runtime falls back to inbox-forwarding goroutines.
type SinkTransport interface {
	Hosts(u graph.NodeID) bool
	SetSink(sink DeliverySink) bool
}
