package live

import (
	"errors"
	"time"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// MsgKind distinguishes the two halves of an exchange.
type MsgKind uint8

const (
	// MsgRequest is the initiator→responder half of an exchange.
	MsgRequest MsgKind = iota + 1
	// MsgResponse is the responder→initiator half.
	MsgResponse
)

// Message is one in-flight half of an exchange. It is the live counterpart
// of the round simulator's calendar event: Latency is the edge's latency in
// rounds (ticks) and SentTick the initiator's tick at initiation, so the
// receiver can reconstruct the same sim.Request/sim.Response the lockstep
// engine would have delivered.
type Message struct {
	Kind     MsgKind
	From, To graph.NodeID
	EdgeID   int
	Latency  int
	SentTick int
	Payload  sim.Payload
}

// ErrTransportClosed reports a Send on a closed transport.
var ErrTransportClosed = errors.New("live: transport closed")

// Transport moves messages between nodes. Implementations must be safe for
// concurrent use: every node goroutine sends through the same transport.
//
// Send schedules msg for delivery to msg.To after delay — this is where an
// edge's latency becomes real wall-clock time. Send must not block on slow
// receivers (delivery happens asynchronously); a delivery that cannot
// complete by the time the transport closes is dropped, mirroring a message
// lost to a crashed node. Payloads must be treated as immutable once passed
// to Send, exactly as the round engine requires.
//
// Recv returns the inbox of a node hosted by this transport, or nil for
// nodes hosted elsewhere (multi-process deployments).
//
// Close stops all delivery and releases listeners, connections, and pending
// timers. Close the transport only after every runtime using it returned.
type Transport interface {
	Send(msg Message, delay time.Duration) error
	Recv(u graph.NodeID) <-chan Message
	Close() error
}

// deliverAfter delivers msg to inbox after delay on a timer goroutine,
// abandoning the delivery if closed is signalled first (so a full inbox of a
// stopped runtime cannot leak the goroutine forever).
func deliverAfter(inbox chan<- Message, msg Message, delay time.Duration, closed <-chan struct{}) {
	time.AfterFunc(delay, func() {
		select {
		case inbox <- msg:
		case <-closed:
		}
	})
}
