package live

import (
	"fmt"
	"sync"

	"gossip/internal/sim"
)

// The wire codec registry maps protocol payload types to named byte
// encodings so the TCP transport can ship them between processes. Protocol
// packages register their payload types in an init function (see
// internal/core); in-process transports bypass the registry entirely and
// pass payloads by reference.

// PayloadEncoder tries to encode p; ok is false when p is not the
// registered type (the registry then tries the next encoder).
type PayloadEncoder func(p sim.Payload) (data []byte, ok bool)

// PayloadDecoder rebuilds a payload from its wire bytes. The transport's
// read loop reuses its frame buffers between messages, so data is only valid
// for the duration of the call: a decoder must copy any bytes it keeps.
type PayloadDecoder func(data []byte) (sim.Payload, error)

type wireCodec struct {
	name string
	enc  PayloadEncoder
}

var (
	codecMu  sync.RWMutex
	encoders []wireCodec
	decoders = make(map[string]PayloadDecoder)
)

// RegisterPayload registers a payload type under a unique wire name.
// Registration is typically done from init functions; registering the same
// name twice panics.
func RegisterPayload(name string, enc PayloadEncoder, dec PayloadDecoder) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := decoders[name]; dup {
		panic(fmt.Sprintf("live: payload codec %q registered twice", name))
	}
	if len(decoders) >= maxInternedTypes {
		// Receivers cap their per-connection intern tables at
		// maxInternedTypes; registering more types than that would produce
		// frames every conforming receiver rejects.
		panic(fmt.Sprintf("live: payload codec %q exceeds the %d-type intern limit", name, maxInternedTypes))
	}
	encoders = append(encoders, wireCodec{name: name, enc: enc})
	decoders[name] = dec
}

// encodePayload finds the registered encoding of p. A nil payload encodes as
// the empty name.
func encodePayload(p sim.Payload) (name string, data []byte, err error) {
	if p == nil {
		return "", nil, nil
	}
	codecMu.RLock()
	defer codecMu.RUnlock()
	for _, c := range encoders {
		if data, ok := c.enc(p); ok {
			return c.name, data, nil
		}
	}
	return "", nil, fmt.Errorf("live: no wire codec registered for payload type %T", p)
}

// decodePayload rebuilds a payload from its wire form.
func decodePayload(name string, data []byte) (sim.Payload, error) {
	if name == "" {
		return nil, nil
	}
	codecMu.RLock()
	dec, ok := decoders[name]
	codecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("live: unknown wire payload type %q", name)
	}
	return dec(data)
}
