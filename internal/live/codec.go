package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gossip/internal/sim"
)

// The wire codec registry maps protocol payload types to named byte
// encodings so the TCP transport can ship them between processes. Protocol
// packages register their payload types in an init function (see
// internal/core); in-process transports bypass the registry entirely and
// pass payloads by reference.

// PayloadEncoder tries to encode p; ok is false when p is not the
// registered type (the registry then tries the next encoder).
type PayloadEncoder func(p sim.Payload) (data []byte, ok bool)

// PayloadDecoder rebuilds a payload from its wire bytes. The transport's
// read loop reuses its frame buffers between messages, so data is only valid
// for the duration of the call: a decoder must copy any bytes it keeps.
type PayloadDecoder func(data []byte) (sim.Payload, error)

type wireCodec struct {
	name string
	enc  PayloadEncoder
}

// codecTable is an immutable registry snapshot. Encode/decode run on every
// message from every connection goroutine, so readers take no lock at all —
// just one atomic pointer load; registration (init-time, rare) publishes a
// fresh copy instead. A shared RWMutex here bounced its reader-count cache
// line between the send and receive cores and cost ~9% of local-fabric
// throughput.
type codecTable struct {
	encoders []wireCodec
	decoders map[string]PayloadDecoder
}

var (
	codecMu    sync.Mutex // serializes registration only
	codecState atomic.Pointer[codecTable]
)

func init() {
	codecState.Store(&codecTable{decoders: map[string]PayloadDecoder{}})
}

// RegisterPayload registers a payload type under a unique wire name.
// Registration is typically done from init functions; registering the same
// name twice panics.
func RegisterPayload(name string, enc PayloadEncoder, dec PayloadDecoder) {
	codecMu.Lock()
	defer codecMu.Unlock()
	old := codecState.Load()
	if _, dup := old.decoders[name]; dup {
		panic(fmt.Sprintf("live: payload codec %q registered twice", name))
	}
	if len(old.decoders) >= maxInternedTypes {
		// Receivers cap their per-connection intern tables at
		// maxInternedTypes; registering more types than that would produce
		// frames every conforming receiver rejects.
		panic(fmt.Sprintf("live: payload codec %q exceeds the %d-type intern limit", name, maxInternedTypes))
	}
	next := &codecTable{
		encoders: append(append([]wireCodec(nil), old.encoders...), wireCodec{name: name, enc: enc}),
		decoders: make(map[string]PayloadDecoder, len(old.decoders)+1),
	}
	for n, d := range old.decoders {
		next.decoders[n] = d
	}
	next.decoders[name] = dec
	codecState.Store(next)
}

// encodePayload finds the registered encoding of p. A nil payload encodes as
// the empty name.
func encodePayload(p sim.Payload) (name string, data []byte, err error) {
	if p == nil {
		return "", nil, nil
	}
	for _, c := range codecState.Load().encoders {
		if data, ok := c.enc(p); ok {
			return c.name, data, nil
		}
	}
	return "", nil, fmt.Errorf("live: no wire codec registered for payload type %T", p)
}

// DecodeBit parses the shared one-byte boolean payload encoding used by the
// hot single-bit protocol payloads: ASCII '0' / '1', which is also a valid
// JSON number so the same bytes ride the legacy JSON line protocol
// unwrapped. The legacy JSON bools older senders emit are still accepted.
func DecodeBit(data []byte) (bool, error) {
	if len(data) == 1 {
		switch data[0] {
		case '0':
			return false, nil
		case '1':
			return true, nil
		}
	}
	switch string(data) {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("live: malformed bit payload %q", data)
}

// decodePayload rebuilds a payload from its wire form.
func decodePayload(name string, data []byte) (sim.Payload, error) {
	if name == "" {
		return nil, nil
	}
	dec, ok := codecState.Load().decoders[name]
	if !ok {
		return nil, fmt.Errorf("live: unknown wire payload type %q", name)
	}
	return dec(data)
}
