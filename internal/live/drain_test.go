package live

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gossip/internal/graph"
	"gossip/internal/member"
)

// TestChanTransportDrainClean: Drain waits out every armed delivery timer,
// then closes; sends after the drain are refused.
func TestChanTransportDrainClean(t *testing.T) {
	tr := NewChanTransport(2, 0)
	msg := Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, Latency: 1,
		SentTick: 1, Payload: bitp{informed: true}}
	if err := tr.Send(msg, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rep, err := tr.Drain(ctx)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !rep.Clean {
		t.Fatalf("Drain report not clean: %+v", rep)
	}
	select {
	case got := <-tr.Recv(1):
		if got.SentTick != 1 {
			t.Fatalf("delivered tick %d, want 1", got.SentTick)
		}
	default:
		t.Fatal("in-flight message lost during drain")
	}
	if err := tr.Send(msg, 0); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Send after Drain = %v, want ErrTransportClosed", err)
	}
}

// TestTCPDrainClean: with a live peer, every queued frame flushes and every
// pend entry resolves before the transport closes.
func TestTCPDrainClean(t *testing.T) {
	src, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 256)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{1}, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	src.SetPeers(map[graph.NodeID]string{1: dst.Addr().String()})

	const sends = 50
	for i := 0; i < sends; i++ {
		if err := src.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := src.Drain(ctx)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !rep.Clean || rep.QueuedAtClose != 0 || rep.PendingAtClose != 0 {
		t.Fatalf("Drain report not clean: %+v", rep)
	}
	if err := src.Send(testMsg(1, MsgRequest, 99), 0); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Send after Drain = %v, want ErrTransportClosed", err)
	}
	// Drain's contract: messages still sitting on latency timers are counted
	// losses (a leaving process stops initiating), but everything that made
	// it past admission flushed and was acked — so it reached the peer.
	delivered := 0
	inbox := dst.Recv(1)
	for {
		select {
		case <-inbox:
			delivered++
			continue
		case <-time.After(time.Second):
		}
		break
	}
	if want := sends - int(rep.AbandonedTimers); delivered != want {
		t.Fatalf("delivered = %d, want %d (%d sends - %d abandoned)",
			delivered, want, sends, rep.AbandonedTimers)
	}
}

// TestTCPDrainDeadline: a peer that never acks pins the pend set, so the
// drain gives up at the context deadline and reports what it abandoned.
func TestTCPDrainDeadline(t *testing.T) {
	addr, _, closeLn := quietListener(t)
	defer closeLn()
	tr, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetPeers(map[graph.NodeID]string{1: addr})
	tr.SetRetransmit(time.Hour, 4) // never resolves by give-up either
	tr.SetBatching(false)          // per-message pend entries: the counts below are exact

	const sends = 5
	for i := 0; i < sends; i++ {
		if err := tr.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !pollUntil(5*time.Second, func() bool { return tr.pendingCount() == sends }) {
		t.Fatalf("pendingCount = %d, want %d", tr.pendingCount(), sends)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	rep, err := tr.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain error = %v, want DeadlineExceeded", err)
	}
	if rep.Clean {
		t.Fatal("deadline-expired drain reported clean")
	}
	if rep.PendingAtClose != sends {
		t.Fatalf("PendingAtClose = %d, want %d", rep.PendingAtClose, sends)
	}
}

// TestTCPDrainNoRedial (satellite: drain vs redial race): a connection that
// breaks mid-drain must NOT be redialed — the draining flag gates both the
// redial burst and fresh dials. The listener's accept counter proves it.
func TestTCPDrainNoRedial(t *testing.T) {
	// A quiet listener whose established connections can be broken while the
	// listener itself stays up — so a redial, were one attempted, would be
	// accepted and counted.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int64
	var connMu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			connMu.Lock()
			conns = append(conns, c)
			connMu.Unlock()
			go io.Copy(io.Discard, c)
		}
	}()
	breakConns := func() {
		connMu.Lock()
		defer connMu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		conns = nil
	}
	defer breakConns()
	addr := ln.Addr().String()

	tr, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetPeers(map[graph.NodeID]string{1: addr})
	tr.SetRetransmit(time.Hour, 4)
	tr.SetBatching(false) // per-message pend entries: the count below is exact

	// One send first so the connection pool settles (concurrent first sends
	// may race extra dials); the rest then ride the pooled connection.
	const sends = 3
	if err := tr.Send(testMsg(1, MsgRequest, 0), 0); err != nil {
		t.Fatal(err)
	}
	if !pollUntil(5*time.Second, func() bool { return tr.pendingCount() == 1 }) {
		t.Fatalf("first send never transmitted: pending = %d", tr.pendingCount())
	}
	for i := 1; i < sends; i++ {
		if err := tr.Send(testMsg(1, MsgRequest, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !pollUntil(5*time.Second, func() bool { return tr.pendingCount() == sends }) {
		t.Fatalf("pending = %d, want %d", tr.pendingCount(), sends)
	}
	acceptsBefore := accepts.Load()

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		tr.Drain(ctx)
	}()
	// Break the live connection mid-drain: the reader sees EOF, connBroken
	// fires — and must not redial, even though the listener would accept.
	time.Sleep(50 * time.Millisecond)
	breakConns()
	<-drained
	if n := accepts.Load(); n != acceptsBefore {
		t.Fatalf("accepts = %d after mid-drain break, want %d (no redial)", n, acceptsBefore)
	}
}

// TestTCPClusterDrainLeaksNothing (satellite: leak regression): a 32-node
// TCP cluster under injected faults runs to completion, drains, and returns
// the process to its goroutine baseline with every timer shard empty.
func TestTCPClusterDrainLeaksNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster test")
	}
	baseline := runtime.NumGoroutine()

	g := graph.RingOfCliques(4, 8, 4) // 32 nodes across 4 transports
	const per = 8
	trs := make([]*TCPTransport, 4)
	fts := make([]*FaultTransport, 4)
	addrOf := map[graph.NodeID]string{}
	for i := range trs {
		nodes := make([]graph.NodeID, 0, per)
		for v := i * per; v < (i+1)*per; v++ {
			nodes = append(nodes, graph.NodeID(v))
		}
		tr, err := NewTCPTransport("127.0.0.1:0", nodes, 1024)
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		tr.SetRetransmit(5*time.Millisecond, 8)
		for _, v := range nodes {
			addrOf[v] = tr.Addr().String()
		}
		fts[i] = NewFaultTransport(tr, FaultConfig{Seed: 7, Drop: 0.05, Tick: testTick})
	}
	for _, tr := range trs {
		tr.SetPeers(addrOf)
	}

	results := make(chan error, len(fts))
	for i, ft := range fts {
		nodes := make([]graph.NodeID, 0, per)
		for v := i * per; v < (i+1)*per; v++ {
			nodes = append(nodes, graph.NodeID(v))
		}
		go func(ft *FaultTransport, nodes []graph.NodeID) {
			res, err := Run(g, ppProto{source: 0}, ft, Options{
				Seed: 23, Tick: testTick, Nodes: nodes, NHint: g.N(),
				Linger: 2 * time.Second,
			})
			if err == nil && !res.Completed {
				err = errors.New("run did not complete")
			}
			results <- err
		}(ft, nodes)
	}
	for range fts {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}

	for i, ft := range fts {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		rep, err := ft.Drain(ctx)
		cancel()
		if err != nil {
			t.Fatalf("transport %d: Drain: %v", i, err)
		}
		if !rep.Clean {
			t.Fatalf("transport %d: drain not clean: %+v", i, rep)
		}
	}
	for i, tr := range trs {
		if n := tr.delays.len(); n != 0 {
			t.Fatalf("transport %d: %d delivery timers leaked", i, n)
		}
		if n := tr.retries.len(); n != 0 {
			t.Fatalf("transport %d: %d retry timers leaked", i, n)
		}
		if n := tr.pendingCount(); n != 0 {
			t.Fatalf("transport %d: %d pend entries leaked", i, n)
		}
		if n := tr.queueDepth(); n != 0 {
			t.Fatalf("transport %d: %d queued frames leaked", i, n)
		}
	}
	// The runtime needs a beat to retire exiting goroutines.
	if !pollUntil(10*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseline+2
	}) {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
			baseline, runtime.NumGoroutine(), buf[:n])
	}
}

// TestRunLiveInterruptLeaves: an interrupted run flips every hosted node
// into leave mode — self-declared dead, no further initiations — and Run
// returns Interrupted without an error.
func TestRunLiveInterruptLeaves(t *testing.T) {
	g := graph.Clique(6, 1)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()

	interrupt := make(chan struct{})
	type out struct {
		res Result
		err error
	}
	resCh := make(chan out, 1)
	go func() {
		// Crash the source forever so the protocol cannot complete: the run
		// is guaranteed to still be in flight when the signal lands.
		res, err := Run(g, ppProto{source: 0}, tr, Options{
			Seed: 3, Tick: testTick, DrainTicks: 2,
			Interrupt:  interrupt,
			Crashes:    map[graph.NodeID]CrashPlan{0: {At: 1}},
			Membership: &MembershipConfig{},
		})
		resCh <- out{res, err}
	}()
	time.Sleep(30 * time.Millisecond)
	close(interrupt)

	var o out
	select {
	case o = <-resCh:
	case <-time.After(10 * time.Second):
		t.Fatal("interrupted run never returned")
	}
	if o.err != nil {
		t.Fatalf("interrupted run error: %v", o.err)
	}
	if !o.res.Interrupted {
		t.Fatal("Result.Interrupted = false after interrupt")
	}
	if o.res.Completed {
		t.Fatal("crashed-source run claims completion")
	}
	// The leave broadcast fired: every live node marked itself Dead.
	for v, table := range o.res.Members {
		if v == 0 {
			continue // crashed before the interrupt; never left
		}
		for _, up := range table {
			if up.Node == int(v) && up.St != member.Dead {
				t.Fatalf("node %d self-state = %v after leave, want Dead", v, up.St)
			}
		}
	}
}
