package live

import (
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
)

// This file is the overload-protection half of the TCP transport: per-peer
// adaptive retransmission state (a Jacobson-style RTT estimator driving the
// RTO), per-peer circuit breakers that stop retransmission spend on peers the
// cluster has given up on, and the OverloadCounts ledger through which every
// bounded queue reports what it shed. The queue caps themselves live in
// tcp_transport.go, next to the queues they bound.

// Overload-protection defaults. Caps are configurable via SetOverloadLimits
// and SetBreaker; zero keeps these, negative disables the mechanism.
const (
	// DefaultQueueLimit bounds each connection's writer queue, in frames.
	// Past it, gossip frames are shed oldest-first (push-pull and
	// anti-entropy re-converge after a loss) while membership frames apply
	// hard backpressure (block the enqueuer until the writer drains).
	DefaultQueueLimit = 8192
	// DefaultPendingLimit bounds the unacked reliable-delivery (pend) set
	// across the transport. Past it, the oldest gossip entry of the full
	// shard is shed to admit the newcomer; membership entries are exempt
	// (their volume is bounded by the detector's probe rate).
	DefaultPendingLimit = 1 << 15
	// DefaultBreakerThreshold is the number of consecutive delivery failures
	// (retransmit give-ups, dial failures, broken connections) after which a
	// peer's circuit breaker opens.
	DefaultBreakerThreshold = 8
	// DefaultBreakerCooldown is how long an open breaker waits before
	// half-opening to admit a single probe send.
	DefaultBreakerCooldown = time.Second
	// DefaultRTOMin and DefaultRTOMax clamp the adaptive RTO. An explicit
	// SetRetransmit RTO raises the floor to itself, so callers that demand a
	// quiet wire (benchmarks) or a fast one (tests) keep what they asked for.
	DefaultRTOMin = 50 * time.Millisecond
	DefaultRTOMax = 30 * time.Second
)

// OverloadCounts is the named ledger of everything the transport's overload
// protection shed, refused, or trimmed. All counts are cumulative since the
// transport started; a healthy unloaded run reports all zeros.
type OverloadCounts struct {
	// ShedQueue counts gossip frames shed oldest-first from a full
	// connection writer queue.
	ShedQueue int64
	// ShedPend counts gossip entries evicted oldest-first from a full
	// pend (unacked reliable-delivery) shard.
	ShedPend int64
	// MemberBackpressured counts membership frames that blocked on a full
	// writer queue until the writer drained (hard backpressure, not loss).
	MemberBackpressured int64
	// RetryBurstTrimmed counts in-flight seqs a broken connection left to
	// their ordinary RTO timers instead of retrying immediately, because the
	// immediate-retry burst hit its cap.
	RetryBurstTrimmed int64
	// DroppedDeadPeer counts in-flight seqs flushed because the membership
	// layer declared their destination node dead.
	DroppedDeadPeer int64
	// BreakerOpens counts peer circuit-breaker trips.
	BreakerOpens int64
	// BreakerDrops counts sends refused (and pend entries flushed) while a
	// peer's breaker was open.
	BreakerDrops int64
}

// add accumulates other into c.
func (c *OverloadCounts) add(other OverloadCounts) {
	c.ShedQueue += other.ShedQueue
	c.ShedPend += other.ShedPend
	c.MemberBackpressured += other.MemberBackpressured
	c.RetryBurstTrimmed += other.RetryBurstTrimmed
	c.DroppedDeadPeer += other.DroppedDeadPeer
	c.BreakerOpens += other.BreakerOpens
	c.BreakerDrops += other.BreakerDrops
}

// Shed returns the total messages the overload protection terminally lost
// (backpressure and trimmed retries are not losses).
func (c OverloadCounts) Shed() int64 {
	return c.ShedQueue + c.ShedPend + c.DroppedDeadPeer + c.BreakerDrops
}

// PeerStatusSink is implemented by transports that react to membership
// verdicts: the live runtime feeds every local detector's view transitions to
// the transport, so a peer the cluster declared dead stops consuming
// retransmission budget (its breaker trips, its in-flight seqs are flushed)
// and a refuted or recovered peer is re-admitted through a half-open probe.
type PeerStatusSink interface {
	PeerDown(u graph.NodeID)
	PeerUp(u graph.NodeID)
}

// breakerState is a peer circuit breaker's position.
type breakerState uint8

const (
	breakerClosed   breakerState = iota // healthy: all sends pass
	breakerOpen                         // tripped: sends refused until cooldown
	breakerHalfOpen                     // cooldown elapsed: one probe in flight
)

// peerState is the transport's per-peer-address adaptive state: the RTT
// estimator feeding the retransmission timeout and the circuit breaker.
// Peers are keyed by listen address — the unit that fails is the process,
// not the node — while membership death is tracked per node and trips the
// breaker only when every node hosted at the address is believed dead.
type peerState struct {
	mu sync.Mutex

	// rtoC and stA are the lock-free mirrors the per-send hot path reads:
	// rtoC caches srtt+4·rttvar (0 = no sample yet, use the fallback), stA
	// mirrors st. Both are published under mu by the slow paths below, so a
	// steady-state send touches no lock in this struct.
	rtoC atomic.Int64
	stA  atomic.Uint32

	// Jacobson/Karn RTT estimation: srtt and rttvar are the smoothed mean
	// and variance, updated only from unretransmitted exchanges (Karn's
	// rule), rto = srtt + 4·rttvar clamped to the transport's bounds.
	hasRTT bool
	srtt   time.Duration
	rttvar time.Duration

	st       breakerState
	fails    int       // consecutive failures since the last ack
	reopenAt time.Time // when an open breaker half-opens
	probing  bool      // a half-open probe is in flight

	// deadNodes tracks which nodes routed to this address the membership
	// layer currently believes dead (set via PeerDown/PeerUp).
	deadNodes map[graph.NodeID]struct{}
}

// observeRTT folds one round-trip sample into the estimator (RFC 6298
// smoothing constants) and publishes the resulting base RTO to the lock-free
// cache.
func (p *peerState) observeRTT(rtt time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hasRTT {
		p.hasRTT = true
		p.srtt = rtt
		p.rttvar = rtt / 2
	} else {
		dev := p.srtt - rtt
		if dev < 0 {
			dev = -dev
		}
		p.rttvar = (3*p.rttvar + dev) / 4
		p.srtt = (7*p.srtt + rtt) / 8
	}
	rto := p.srtt + 4*p.rttvar
	if rto <= 0 {
		rto = 1 // a zero cache means "no sample"; clamp keeps this sane
	}
	p.rtoC.Store(int64(rto))
}

// rto returns the adaptive base timeout, or fallback while no sample exists,
// clamped to [min, max]. Reads only the published cache — this is on the
// per-send hot path (every retransmission timer arms through it).
func (p *peerState) rto(fallback, min, max time.Duration) time.Duration {
	rto := time.Duration(p.rtoC.Load())
	if rto == 0 {
		rto = fallback
	}
	if rto < min {
		rto = min
	}
	if rto > max {
		rto = max
	}
	return rto
}

// setSt transitions the breaker state and publishes it to the lock-free
// mirror; the caller holds mu.
func (p *peerState) setSt(s breakerState) {
	p.st = s
	p.stA.Store(uint32(s))
}

// fastClosed reports, without locking, whether the breaker is in its closed
// steady state — in which allow/allowRetry would return true with no state
// change, so the send path can skip the mutex and the clock read entirely. A
// send racing a concurrent trip may still pass, which is benign: it was
// already in flight when the breaker opened.
func (p *peerState) fastClosed() bool {
	return breakerState(p.stA.Load()) == breakerClosed
}

// allow reports whether a send to this peer may proceed. threshold <= 0
// disables the breaker entirely. An open breaker whose cooldown elapsed
// half-opens and admits exactly one probe; further sends are refused until
// the probe resolves (success closes the breaker, failure re-opens it).
func (p *peerState) allow(threshold int, now time.Time) bool {
	if threshold <= 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.st {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(p.reopenAt) {
			return false
		}
		p.setSt(breakerHalfOpen)
		p.probing = true
		return true
	default: // breakerHalfOpen
		if p.probing {
			return false
		}
		p.probing = true
		return true
	}
}

// allowRetry is allow for retransmissions of an already-admitted message. It
// differs in the half-open state: a retransmission IS probe traffic (its
// message was admitted before the trip or as the probe itself), so it passes
// — refusing it would cancel the probe's own retry and strand the breaker
// half-open forever.
func (p *peerState) allowRetry(threshold int, now time.Time) bool {
	if threshold <= 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.st {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(p.reopenAt) {
			return false
		}
		p.setSt(breakerHalfOpen)
		p.probing = true
		return true
	default: // breakerHalfOpen
		p.probing = true
		return true
	}
}

// success records an acked exchange: failures reset and a half-open breaker
// closes.
func (p *peerState) success() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails = 0
	p.probing = false
	if p.st == breakerHalfOpen {
		p.setSt(breakerClosed)
	}
}

// failure records one delivery failure and reports whether the breaker
// tripped open on this call (so the caller can count the trip and flush the
// peer's pend entries exactly once per trip).
func (p *peerState) failure(threshold int, cooldown time.Duration, now time.Time) (tripped bool) {
	if threshold <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	p.probing = false
	switch p.st {
	case breakerHalfOpen:
		// The probe failed: back to open for another cooldown.
		p.setSt(breakerOpen)
		p.reopenAt = now.Add(cooldown)
		return false
	case breakerClosed:
		if p.fails >= threshold {
			p.setSt(breakerOpen)
			p.reopenAt = now.Add(cooldown)
			return true
		}
	}
	return false
}

// trip forces the breaker open (the membership-dead path) and reports whether
// it was not already open.
func (p *peerState) trip(cooldown time.Duration, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st == breakerOpen {
		return false
	}
	p.setSt(breakerOpen)
	p.probing = false
	p.reopenAt = now.Add(cooldown)
	return true
}

// reset closes the breaker (the membership-recovery path): the next send
// proceeds immediately.
func (p *peerState) reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.setSt(breakerClosed)
	p.fails = 0
	p.probing = false
}

// markDead/markAlive maintain the per-address dead-node set; markDead
// reports whether all of the address's hosted nodes are now believed dead.
func (p *peerState) markDead(u graph.NodeID, hosted int) (allDead bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.deadNodes == nil {
		p.deadNodes = make(map[graph.NodeID]struct{})
	}
	p.deadNodes[u] = struct{}{}
	return hosted > 0 && len(p.deadNodes) >= hosted
}

func (p *peerState) markAlive(u graph.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.deadNodes, u)
}

// state returns the breaker position (tests).
func (p *peerState) state() breakerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}
