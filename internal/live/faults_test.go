package live

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"gossip/internal/graph"
)

// scriptedFeed builds a deterministic message schedule: every half-edge of g
// carries one request per tick in [0, ticks). Feeding the same schedule into
// two transports must produce identical behaviour, which is what makes
// fault-injection determinism testable independently of goroutine timing.
func scriptedFeed(g *graph.Graph, ticks int) []Message {
	var feed []Message
	for tick := 0; tick < ticks; tick++ {
		for u := 0; u < g.N(); u++ {
			for _, he := range g.Neighbors(u) {
				feed = append(feed, Message{
					Kind:     MsgRequest,
					From:     graph.NodeID(u),
					To:       he.To,
					EdgeID:   he.ID,
					Latency:  he.Latency,
					SentTick: tick,
				})
			}
		}
	}
	return feed
}

// arrivalKey identifies one delivery for multiset comparison across runs.
type arrivalKey struct {
	edge     int
	from     graph.NodeID
	sentTick int
}

// runScripted feeds the schedule through a FaultTransport over a channel
// transport, waits out all delays, and returns the arrival multiset and the
// fault report (taken before Close so shutdown accounting can't leak in).
func runScripted(t *testing.T, g *graph.Graph, feed []Message, cfg FaultConfig) (map[arrivalKey]int, FaultReport) {
	t.Helper()
	inner := NewChanTransport(g.N(), 4096)
	ft := NewFaultTransport(inner, cfg)
	for _, m := range feed {
		if err := ft.Send(m, 0); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// Worst-case extra delay: jitter plus the duplicate's trailing offset.
	time.Sleep(50*time.Millisecond + time.Duration(2*(cfg.JitterTicks+1))*cfg.Tick)
	got := make(map[arrivalKey]int)
	for u := 0; u < g.N(); u++ {
		for {
			select {
			case m := <-ft.Recv(graph.NodeID(u)):
				got[arrivalKey{edge: m.EdgeID, from: m.From, sentTick: m.SentTick}]++
				continue
			default:
			}
			break
		}
	}
	rep := ft.Faults()
	ft.Close()
	return got, rep
}

// TestFaultTransportDeterministicReport is the chaos determinism check: the
// same fault plan over the same message schedule must drop, duplicate and
// jitter exactly the same messages on every run — byte-identical fault
// reports and identical arrival multisets. Fault decisions hash message
// identity, so goroutine scheduling cannot perturb them.
func TestFaultTransportDeterministicReport(t *testing.T) {
	g := graph.RingOfCliques(4, 4, 3)
	var cliqueA, rest []graph.NodeID
	for u := 0; u < g.N(); u++ {
		if u < 4 {
			cliqueA = append(cliqueA, graph.NodeID(u))
		} else {
			rest = append(rest, graph.NodeID(u))
		}
	}
	cfg := FaultConfig{
		Seed:        99,
		Drop:        0.10,
		Duplicate:   0.05,
		JitterTicks: 2,
		Tick:        time.Millisecond,
		Partitions:  []Partition{{From: 3, Until: 6, Edges: CutBetween(g, cliqueA, rest)}},
	}
	feed := scriptedFeed(g, 10)

	got1, rep1 := runScripted(t, g, feed, cfg)
	got2, rep2 := runScripted(t, g, feed, cfg)

	j1, err := json.Marshal(rep1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("fault reports differ across identical runs:\n%s\n%s", j1, j2)
	}
	if len(got1) != len(got2) {
		t.Fatalf("arrival multisets differ in size: %d vs %d", len(got1), len(got2))
	}
	for k, n := range got1 {
		if got2[k] != n {
			t.Errorf("arrival %+v: %d vs %d deliveries", k, n, got2[k])
		}
	}
	if rep1.InjectedDrops == 0 || rep1.InjectedDups == 0 || rep1.Jittered == 0 || rep1.PartitionDrops == 0 {
		t.Errorf("fault plan injected nothing on some axis: %+v", rep1.FaultCounts)
	}
	sent := int64(len(feed))
	delivered := int64(0)
	for _, n := range got1 {
		delivered += int64(n)
	}
	if delivered != sent-rep1.InjectedDrops-rep1.PartitionDrops+rep1.InjectedDups {
		t.Errorf("delivery ledger does not balance: sent=%d delivered=%d counts=%+v",
			sent, delivered, rep1.FaultCounts)
	}
}

// TestFaultTransportZeroRatePassThrough is the zero-fault equivalence check
// at the transport level: an all-zero FaultTransport must behave exactly
// like the bare transport — every message delivered once, nothing counted.
func TestFaultTransportZeroRatePassThrough(t *testing.T) {
	g := graph.Dumbbell(4, 2)
	feed := scriptedFeed(g, 5)

	got, rep := runScripted(t, g, feed, FaultConfig{Seed: 7})
	if rep.Dropped() != 0 || rep.InjectedDups != 0 || rep.Jittered != 0 {
		t.Errorf("zero-rate plan injected faults: %+v", rep.FaultCounts)
	}
	delivered := 0
	for k, n := range got {
		if n != 1 {
			t.Errorf("arrival %+v delivered %d times, want 1", k, n)
		}
		delivered += n
	}
	if delivered != len(feed) {
		t.Errorf("delivered %d of %d messages through zero-fault plan", delivered, len(feed))
	}

	// The bare transport delivers the identical multiset.
	bare := NewChanTransport(g.N(), 4096)
	defer bare.Close()
	for _, m := range feed {
		if err := bare.Send(m, 0); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	bareGot := make(map[arrivalKey]int)
	for u := 0; u < g.N(); u++ {
		for {
			select {
			case m := <-bare.Recv(graph.NodeID(u)):
				bareGot[arrivalKey{edge: m.EdgeID, from: m.From, sentTick: m.SentTick}]++
				continue
			default:
			}
			break
		}
	}
	if len(bareGot) != len(got) {
		t.Fatalf("bare vs zero-fault arrival sets differ: %d vs %d", len(bareGot), len(got))
	}
	for k, n := range bareGot {
		if got[k] != n {
			t.Errorf("arrival %+v: bare %d vs zero-fault %d", k, n, got[k])
		}
	}
}

// TestPartitionWindow pins the partition semantics: messages of exchanges
// initiated inside [From, Until) are cut, everything else passes, and
// Until <= 0 never heals.
func TestPartitionWindow(t *testing.T) {
	g := graph.Path(2, 1) // a single edge
	edgeID := g.Neighbors(0)[0].ID

	cfg := FaultConfig{Seed: 1, Partitions: []Partition{{From: 2, Until: 5, Edges: []int{edgeID}}}}
	got, rep := runScripted(t, g, scriptedFeed(g, 7), cfg)
	for k := range got {
		if k.sentTick >= 2 && k.sentTick < 5 {
			t.Errorf("message from tick %d crossed an active partition", k.sentTick)
		}
	}
	// 2 directions × ticks {2,3,4} cut.
	if rep.PartitionDrops != 6 {
		t.Errorf("PartitionDrops = %d, want 6", rep.PartitionDrops)
	}

	// Never-healing partition: everything from From onward is cut.
	cfg = FaultConfig{Seed: 1, Partitions: []Partition{{From: 3, Until: 0, Edges: []int{edgeID}}}}
	got, rep = runScripted(t, g, scriptedFeed(g, 7), cfg)
	for k := range got {
		if k.sentTick >= 3 {
			t.Errorf("message from tick %d crossed an unhealed partition", k.sentTick)
		}
	}
	if rep.PartitionDrops != 8 {
		t.Errorf("PartitionDrops = %d, want 8", rep.PartitionDrops)
	}
}

// TestPartitionCutBetween checks the cut derivation: on a dumbbell the cut
// between the halves is exactly the bridge, in either argument order.
func TestPartitionCutBetween(t *testing.T) {
	g := graph.Dumbbell(4, 2) // nodes 0..3 | 4..7, one bridge
	var left, right []graph.NodeID
	for u := 0; u < 4; u++ {
		left = append(left, graph.NodeID(u))
	}
	for u := 4; u < 8; u++ {
		right = append(right, graph.NodeID(u))
	}
	ab := CutBetween(g, left, right)
	ba := CutBetween(g, right, left)
	if len(ab) != 1 || len(ba) != 1 || ab[0] != ba[0] {
		t.Fatalf("dumbbell cut: %v / %v, want one shared bridge edge", ab, ba)
	}
	if got := CutBetween(g, left, left[:2]); len(got) == 0 {
		t.Error("intra-clique cut found no edges")
	}
	if got := CutBetween(g, left[:1], right[:1]); len(got) != 0 {
		t.Errorf("cut between non-adjacent nodes: %v", got)
	}
}

// TestFaultTimerHygieneOnClose is the deliverAfter leak check: a delivery
// armed with an hour of delay must be stopped and counted at Close, leaving
// no armed timer and no lingering goroutine behind.
func TestFaultTimerHygieneOnClose(t *testing.T) {
	before := runtime.NumGoroutine()
	tr := NewChanTransport(2, 8)
	if err := tr.Send(Message{Kind: MsgRequest, From: 0, To: 1}, time.Hour); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if n := tr.PendingDeliveries(); n != 1 {
		t.Fatalf("PendingDeliveries = %d before Close, want 1", n)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := tr.PendingDeliveries(); n != 0 {
		t.Errorf("PendingDeliveries = %d after Close, want 0", n)
	}
	if got := tr.Faults().TransportDrops; got != 1 {
		t.Errorf("TransportDrops = %d, want 1 abandoned delivery", got)
	}
	// The timer goroutine must be gone promptly, not after the hour.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after Close: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestChaosCrashRecoveryPushPull checks crash-recovery end to end: a node
// that crashes mid-run and rejoins with cleared state gets re-informed by
// push-pull, and the run completes counting it as a reachable survivor.
func TestChaosCrashRecoveryPushPull(t *testing.T) {
	g := graph.Clique(6, 1)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	res, err := Run(g, ppProto{source: 0}, tr, Options{
		Seed:    5,
		Tick:    testTick,
		Crashes: map[graph.NodeID]CrashPlan{3: {At: 2, RecoverAt: 12}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("run with a recovering node did not complete")
	}
	if !res.Recovered[3] {
		t.Error("node 3 not marked recovered")
	}
	if res.Crashed[3] {
		t.Error("recovered node still marked crashed")
	}
	if !res.Done[3] {
		t.Error("recovered node not re-informed")
	}
	if len(res.Faults.InformedOverTime) == 0 {
		t.Error("informed-over-time series not recorded")
	}

	// An invalid plan (recovery not after crash) must be rejected.
	if _, err := Run(g, ppProto{source: 0}, tr, Options{
		Seed:    5,
		Tick:    testTick,
		Crashes: map[graph.NodeID]CrashPlan{3: {At: 5, RecoverAt: 5}},
	}); err == nil {
		t.Error("want error for RecoverAt <= At")
	}
}

// TestFaultTransportClosePropagates checks the decorator's lifecycle: closing
// the FaultTransport closes the inner transport.
func TestFaultTransportClosePropagates(t *testing.T) {
	inner := NewChanTransport(2, 8)
	ft := NewFaultTransport(inner, FaultConfig{})
	if err := ft.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := inner.Send(Message{To: 1}, 0); err == nil {
		t.Error("inner transport still open after decorator Close")
	}
}
