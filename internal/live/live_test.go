package live

import (
	"errors"
	"testing"
	"time"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// testTick is fast enough to keep tests snappy but coarse enough that timer
// resolution noise doesn't distort round alignment under -race.
const testTick = 500 * time.Microsecond

// bitp is the test payload: one informed bit, like core's bitPayload.
type bitp struct{ informed bool }

func (bitp) SizeBytes() int { return 1 }

// Preallocated one-byte encodings, mirroring core's bit payload codec so the
// benchmarks measure the same wire cost as the real protocols.
var (
	testBitFalse = []byte{'0'}
	testBitTrue  = []byte{'1'}
)

func init() {
	RegisterPayload("live_test.bit",
		func(p sim.Payload) ([]byte, bool) {
			b, ok := p.(bitp)
			if !ok {
				return nil, false
			}
			if b.informed {
				return testBitTrue, true
			}
			return testBitFalse, true
		},
		func(data []byte) (sim.Payload, error) {
			informed, err := DecodeBit(data)
			if err != nil {
				return nil, err
			}
			return bitp{informed: informed}, nil
		})
}

// ppNode is a minimal push-pull handler (mirrors core's, which is not
// importable from here without an import cycle in tests).
type ppNode struct{ informed bool }

func (n *ppNode) Start(ctx *sim.Context) {}
func (n *ppNode) Tick(ctx *sim.Context) {
	if d := ctx.Degree(); d > 0 {
		_, _ = ctx.Initiate(ctx.Rand().Intn(d), bitp{informed: n.informed})
	}
}
func (n *ppNode) OnRequest(ctx *sim.Context, req sim.Request) sim.Payload {
	if p, ok := req.Payload.(bitp); ok && p.informed {
		n.informed = true
	}
	return bitp{informed: n.informed}
}
func (n *ppNode) OnResponse(ctx *sim.Context, resp sim.Response) {
	if p, ok := resp.Payload.(bitp); ok && p.informed {
		n.informed = true
	}
}
func (n *ppNode) Done() bool { return false }

type ppProto struct{ source graph.NodeID }

func (p ppProto) Name() string         { return "pushpull-test" }
func (p ppProto) KnownLatencies() bool { return false }
func (p ppProto) NewHandler(u graph.NodeID) sim.Handler {
	return &ppNode{informed: u == p.source}
}
func (p ppProto) LocalDone(_ graph.NodeID, h sim.Handler) bool {
	return h.(*ppNode).informed
}

func TestInProcPushPullCompletes(t *testing.T) {
	g := graph.RingOfCliques(4, 4, 3)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	res, err := Run(g, ppProto{source: 0}, tr, Options{Seed: 1, Tick: testTick})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("run not completed")
	}
	for u, done := range res.Done {
		if !done {
			t.Errorf("node %d not informed", u)
		}
	}
	if res.Metrics.Ticks <= 0 || res.Metrics.Requests <= 0 || res.Metrics.Responses <= 0 {
		t.Errorf("implausible metrics: %+v", res.Metrics)
	}
	if res.Metrics.Bytes < res.Metrics.Messages() {
		t.Errorf("bytes %d < messages %d despite 1-byte payloads", res.Metrics.Bytes, res.Metrics.Messages())
	}
	if res.Metrics.Wall <= 0 {
		t.Error("wall time not recorded")
	}
}

func TestSeedDeterminesChoices(t *testing.T) {
	// The runtime must hand every node the same seeded stream as the
	// simulator: node u's context stream equals rng.Stream(seed, u+1),
	// which we verify by running the same protocol under both engines on a
	// path (degree <= 2, so any divergence would strand the rumor) and
	// checking both complete.
	g := graph.Path(8, 2)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	res, err := Run(g, ppProto{source: 0}, tr, Options{Seed: 7, Tick: testTick})
	if err != nil || !res.Completed {
		t.Fatalf("live path run: completed=%v err=%v", res.Completed, err)
	}
}

func TestCrashInjection(t *testing.T) {
	// Crash a middle node of a path before the rumor can pass it: the far
	// side must never be informed and the run must exhaust its budget.
	g := graph.Path(5, 1)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	res, err := Run(g, ppProto{source: 0}, tr, Options{
		Seed:     3,
		Tick:     testTick,
		MaxTicks: 60,
		Crashes:  map[graph.NodeID]CrashPlan{2: {At: 1}},
	})
	if !errors.Is(err, ErrMaxTicks) {
		t.Fatalf("want ErrMaxTicks, got %v (completed=%v)", err, res.Completed)
	}
	if !res.Crashed[2] {
		t.Error("node 2 not marked crashed")
	}
	if res.Done[3] || res.Done[4] {
		t.Errorf("rumor crossed a crashed cut: done=%v", res.Done)
	}
	if !res.Done[0] {
		t.Error("source lost its own rumor")
	}
}

func TestAllCrashedCompletesVacuously(t *testing.T) {
	g := graph.Clique(3, 1)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	res, err := Run(g, ppProto{source: 0}, tr, Options{
		Seed:    1,
		Tick:    testTick,
		Crashes: map[graph.NodeID]CrashPlan{0: {At: 1}, 1: {At: 1}, 2: {At: 1}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Error("all-crashed run should complete vacuously, as in the simulator")
	}
}

func TestHostedSubsetValidation(t *testing.T) {
	g := graph.Clique(4, 1)
	tr := NewChanTransport(2, 0) // transport only hosts nodes 0,1
	defer tr.Close()
	_, err := Run(g, ppProto{source: 0}, tr, Options{Seed: 1, Tick: testTick})
	if err == nil {
		t.Fatal("want error for unhosted nodes")
	}
	_, err = Run(g, ppProto{source: 0}, tr, Options{
		Seed: 1, Tick: testTick,
		Nodes: []graph.NodeID{0, 0},
	})
	if err == nil {
		t.Fatal("want error for duplicate hosted node")
	}
}

func TestChanTransportClosed(t *testing.T) {
	tr := NewChanTransport(2, 0)
	tr.Close()
	if err := tr.Send(Message{To: 1}, 0); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("want ErrTransportClosed, got %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	name, data, err := encodePayload(bitp{informed: true})
	if err != nil || name != "live_test.bit" {
		t.Fatalf("encode: name=%q err=%v", name, err)
	}
	p, err := decodePayload(name, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if b, ok := p.(bitp); !ok || !b.informed {
		t.Fatalf("round trip lost the payload: %#v", p)
	}
	// nil payloads travel as the empty name.
	name, data, err = encodePayload(nil)
	if err != nil || name != "" || data != nil {
		t.Fatalf("nil encode: %q %v %v", name, data, err)
	}
	if p, err := decodePayload("", nil); err != nil || p != nil {
		t.Fatalf("nil decode: %v %v", p, err)
	}
	if _, _, err := encodePayload(struct{ x int }{}); err == nil {
		t.Fatal("want error for unregistered payload type")
	}
	if _, err := decodePayload("no-such-codec", nil); err == nil {
		t.Fatal("want error for unknown wire name")
	}
}

func TestMetricsSimShape(t *testing.T) {
	m := Metrics{Ticks: 10, Requests: 4, Responses: 3, Bytes: 7, EdgeActivations: 4}
	sm := m.Sim()
	if sm.Rounds != 10 || sm.Messages() != 7 || sm.Bytes != 7 || sm.EdgeActivations != 4 {
		t.Fatalf("Sim() mismatch: %+v", sm)
	}
}
