package live

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWheelFiresAtExactTick arms one entry per interesting delta — slot
// edges, level boundaries, cascade depths, overflow — and checks each fires
// at exactly its deadline, never early, never late.
func TestWheelFiresAtExactTick(t *testing.T) {
	deltas := []int64{
		1, 2, 63, 64, 65, 127, 128,
		wheelSlots*wheelSlots - 1, wheelSlots * wheelSlots, wheelSlots*wheelSlots + 1,
		1 << wheelRescanShift, 1<<wheelRescanShift + 7,
		wheelSpan - 1, wheelSpan, wheelSpan + 1, 3*wheelSpan + 11,
	}
	for _, start := range []int64{0, 1, 63, 64, 4095, 1<<wheelRescanShift - 1} {
		w := newWheel[int64]()
		var fired []int64
		fired = w.advance(start, fired)
		if len(fired) != 0 {
			t.Fatalf("start=%d: empty wheel fired %v", start, fired)
		}
		want := make(map[int64]bool)
		for _, d := range deltas {
			when := start + d
			w.arm(when, when)
			want[when] = true
		}
		if w.len() != len(deltas) {
			t.Fatalf("start=%d: len = %d, want %d", start, w.len(), len(deltas))
		}
		// Advance one past each deadline and verify the entry fires on the
		// deadline tick itself.
		var whens []int64
		for when := range want {
			whens = append(whens, when)
		}
		sort.Slice(whens, func(i, j int) bool { return whens[i] < whens[j] })
		for _, when := range whens {
			fired = w.advance(when-1, fired[:0])
			for _, got := range fired {
				if got >= when {
					t.Fatalf("start=%d: entry %d fired early at tick %d", start, got, w.now)
				}
			}
			fired = w.advance(when, fired[:0])
			seen := false
			for _, got := range fired {
				if got == when {
					seen = true
				}
			}
			if !seen {
				t.Fatalf("start=%d: entry %d did not fire at its tick (got %v)", start, when, fired)
			}
		}
		if w.len() != 0 {
			t.Fatalf("start=%d: %d entries left after all deadlines", start, w.len())
		}
	}
}

// TestWheelAgainstReference drives the wheel and a naive sorted-list model
// with the same randomized arm/cancel/advance schedule and requires identical
// fire sequences: every deadline exact, firing order monotone in deadline and
// FIFO within a tick, across cascades, overflow rescans, and jumps.
func TestWheelAgainstReference(t *testing.T) {
	type ref struct {
		when int64
		id   int64
	}
	rng := rand.New(rand.NewSource(42))
	w := newWheel[int64]()
	var model []ref
	handles := make(map[int64]*wheelEntry[int64])
	gens := make(map[int64]uint64)
	var nextID int64
	var fired []int64

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // arm
			var delta int64
			switch rng.Intn(4) {
			case 0:
				delta = rng.Int63n(wheelSlots) // level 0 (0 clamps to 1)
			case 1:
				delta = rng.Int63n(wheelSlots * wheelSlots)
			case 2:
				delta = rng.Int63n(wheelSpan)
			default:
				delta = rng.Int63n(4 * wheelSpan) // deep overflow
			}
			when := w.now + delta
			if when <= w.now {
				when = w.now + 1 // the wheel clamps; mirror it
			}
			id := nextID
			nextID++
			e, g := w.arm(w.now+delta, id)
			handles[id] = e
			gens[id] = g
			model = append(model, ref{when: when, id: id})
		case op < 8: // cancel a random armed entry (or a stale handle)
			if len(model) == 0 {
				continue
			}
			i := rng.Intn(len(model))
			id := model[i].id
			if !w.cancel(handles[id], gens[id]) {
				t.Fatalf("step %d: cancel of armed id %d failed", step, id)
			}
			model = append(model[:i], model[i+1:]...)
		default: // advance, mixing single ticks with long jumps
			var jump int64
			switch rng.Intn(3) {
			case 0:
				jump = 1 + rng.Int63n(4)
			case 1:
				jump = 1 + rng.Int63n(wheelSlots*wheelSlots)
			default:
				jump = 1 + rng.Int63n(2*wheelSpan)
			}
			target := w.now + jump
			fired = w.advance(target, fired[:0])
			// The model: everything due, ordered by (when, insertion).
			var due []ref
			var rest []ref
			for _, r := range model {
				if r.when <= target {
					due = append(due, r)
				} else {
					rest = append(rest, r)
				}
			}
			sort.SliceStable(due, func(i, j int) bool { return due[i].when < due[j].when })
			model = rest
			if len(fired) != len(due) {
				t.Fatalf("step %d: advance(%d) fired %d entries, model has %d due",
					step, target, len(fired), len(due))
			}
			for i, id := range fired {
				if id != due[i].id {
					t.Fatalf("step %d: fire #%d = id %d, model wants id %d (when %d)",
						step, i, id, due[i].id, due[i].when)
				}
			}
			for _, r := range due {
				delete(handles, r.id)
				delete(gens, r.id)
			}
		}
		if w.len() != len(model) {
			t.Fatalf("step %d: wheel len %d, model len %d", step, w.len(), len(model))
		}
	}
}

// TestWheelCancelSemantics pins the handle lifecycle: cancelling an armed
// entry succeeds once; cancelling after fire fails; a stale handle whose
// entry was recycled for a newer timer (the pool ABA case) fails and leaves
// the new timer armed.
func TestWheelCancelSemantics(t *testing.T) {
	w := newWheel[int]()
	e, g := w.arm(5, 1)
	if !w.cancel(e, g) {
		t.Fatal("cancel of armed entry failed")
	}
	if w.cancel(e, g) {
		t.Fatal("double cancel succeeded")
	}
	e2, g2 := w.arm(5, 2)
	if e2 != e {
		t.Fatal("pool did not recycle the freed entry (test premise broken)")
	}
	if w.cancel(e, g) {
		t.Fatal("stale handle cancelled a recycled entry (ABA)")
	}
	if w.len() != 1 {
		t.Fatalf("len = %d after stale cancel, want 1", w.len())
	}
	var out []int
	out = w.advance(5, out)
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("advance fired %v, want [2]", out)
	}
	if w.cancel(e2, g2) {
		t.Fatal("cancel after fire succeeded")
	}
}

// TestWheelResetAccounting: reset abandons exactly the armed entries, across
// levels and overflow, and leaves the wheel usable.
func TestWheelResetAccounting(t *testing.T) {
	w := newWheel[int]()
	deltas := []int64{1, 70, 5000, wheelSpan + 3, 2 * wheelSpan}
	for i, d := range deltas {
		w.arm(w.now+d, i)
	}
	e, g := w.arm(w.now+2, 99)
	w.cancel(e, g)
	if got := w.reset(); got != int64(len(deltas)) {
		t.Fatalf("reset abandoned %d, want %d", got, len(deltas))
	}
	if w.len() != 0 {
		t.Fatalf("len = %d after reset", w.len())
	}
	var out []int
	w.arm(w.now+1, 7)
	out = w.advance(w.now+1, out)
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("wheel unusable after reset: fired %v", out)
	}
}

// TestTimerWheelFireAndStop is the wall-clock face: callbacks fire after
// their delay, Stop before the deadline suppresses, Stop after fire reports
// false, zero delay fires, and nil handles are safe.
func TestTimerWheelFireAndStop(t *testing.T) {
	tw := newTimerWheel(0)
	defer tw.close()

	var fired atomic.Int32
	done := make(chan struct{})
	tw.schedule(2*time.Millisecond, func() { fired.Add(1); close(done) })
	stopped := tw.schedule(50*time.Millisecond, func() { fired.Add(100) })
	if !stopped.Stop() {
		t.Fatal("Stop of armed timer reported false")
	}
	if stopped.Stop() {
		t.Fatal("second Stop reported true")
	}
	zero := make(chan struct{})
	tw.schedule(0, func() { close(zero) })

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("2ms callback never fired")
	}
	select {
	case <-zero:
	case <-time.After(5 * time.Second):
		t.Fatal("zero-delay callback never fired")
	}
	time.Sleep(20 * time.Millisecond)
	if got := fired.Load(); got != 1 {
		t.Fatalf("fired = %d, want 1 (stopped callback ran?)", got)
	}
	var nilTimer *wheelTimer
	if nilTimer.Stop() {
		t.Fatal("nil handle Stop reported true")
	}
	if (&wheelTimer{}).Stop() {
		t.Fatal("zero handle Stop reported true")
	}
}

// TestTimerWheelCloseAccounting: close abandons exactly the still-armed
// callbacks (the DrainReport.AbandonedTimers contract) and schedule after
// close returns nil without arming.
func TestTimerWheelCloseAccounting(t *testing.T) {
	tw := newTimerWheel(0)
	var ran atomic.Int32
	for i := 0; i < 5; i++ {
		tw.schedule(time.Hour, func() { ran.Add(1) })
	}
	if got := tw.len(); got != 5 {
		t.Fatalf("len = %d, want 5", got)
	}
	if got := tw.close(); got != 5 {
		t.Fatalf("close abandoned %d, want 5", got)
	}
	if got := tw.len(); got != 0 {
		t.Fatalf("len = %d after close, want 0", got)
	}
	if tw.schedule(time.Millisecond, func() { ran.Add(1) }) != nil {
		t.Fatal("schedule after close returned a handle")
	}
	if tw.schedule(0, func() { ran.Add(1) }) != nil {
		t.Fatal("zero-delay schedule after close returned a handle")
	}
	if got := tw.close(); got != 0 {
		t.Fatalf("second close abandoned %d, want 0", got)
	}
	time.Sleep(10 * time.Millisecond)
	if ran.Load() != 0 {
		t.Fatalf("%d abandoned callbacks ran", ran.Load())
	}
}

// TestTimerWheelRace hammers one wheel from many goroutines — schedule,
// Stop (including double-Stop from two goroutines), reschedule — under the
// race detector, with a close racing the tail. Exactness isn't asserted
// here (close races fire, as with AfterFunc); the invariant is no race, no
// deadlock, and no callback after close+grace.
func TestTimerWheelRace(t *testing.T) {
	tw := newTimerWheel(50 * time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var last *wheelTimer
			for i := 0; i < 400; i++ {
				d := time.Duration(rng.Intn(3)) * 200 * time.Microsecond
				timer := tw.schedule(d, func() {})
				if rng.Intn(2) == 0 {
					// Two goroutines may race to stop the same handle.
					go timer.Stop()
					timer.Stop()
				}
				if last != nil && rng.Intn(4) == 0 {
					last.Stop()
				}
				last = timer
			}
		}(g)
	}
	wg.Wait()
	tw.close()
}
