package live

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzWireFrame cross-checks the two wire codecs: any wireMessage the fuzzer
// constructs must round-trip the binary framing byte-exactly AND agree with
// what the JSON line protocol reconstructs, so the formats stay semantically
// interchangeable (the interop guarantee behind per-connection format
// auto-detection).
//
// Payload bytes are wrapped as a JSON string before use: the JSON wire
// requires payloads to be valid JSON documents (json.RawMessage), and every
// registered payload codec produces one. The binary codec itself is
// payload-agnostic, so the wrapping loses no binary-side coverage of the
// length-prefixed framing.
func FuzzWireFrame(f *testing.F) {
	f.Add(uint8(1), uint64(1), 0, 1, 0, 1, 0, "", []byte(nil), uint64(0), uint64(0))
	f.Add(uint8(2), uint64(1)<<40, 255, -256, 12345, -7, 99, "live_test.bit", []byte("true"), uint64(3), uint64(4))
	f.Add(uint8(0xFF), uint64(0), -1, -1, -1, -1, -1, "core.rumors", []byte{0x00, 0xFF, 0x7B}, uint64(1), uint64(1))
	f.Add(uint8(0), uint64(1<<63), 1<<31, -1<<31, 0, 0, -1<<40, "x", bytes.Repeat([]byte{0x7B}, 64), uint64(9), uint64(90))

	f.Fuzz(func(t *testing.T, kind uint8, seq uint64, from, to, edge, latency, sentTick int,
		ptype string, payload []byte, ack1, ack2 uint64) {
		w := wireMessage{
			Kind: kind, Seq: seq, From: from, To: to, EdgeID: edge,
			Latency: latency, SentTick: sentTick,
		}
		// Registered payload type names are Go string literals, always valid
		// UTF-8; the JSON codec would coerce anything else to U+FFFD while
		// the binary codec is byte-faithful. Mirror the registry invariant.
		if !utf8.ValidString(ptype) {
			ptype = strings.ToValidUTF8(ptype, "_")
		}
		if len(payload) > 0 {
			// A payload without a type never occurs on the real wire (the
			// codec seam always pairs them); mirror that invariant.
			if ptype == "" {
				ptype = "fuzz"
			}
			enc, err := json.Marshal(string(payload))
			if err != nil {
				t.Skip()
			}
			w.Payload = enc
		}
		if len(w.Payload) > 0 {
			w.PayloadType = ptype
		}

		// Binary round trip, with a piggybacked ack pair.
		var enc wireEnc
		wire := enc.appendFrame(nil, &w, []uint64{ack1, ack2})
		var dec wireDec
		var gotB wireMessage
		acks, hasData, err := dec.readFrame(bufio.NewReader(bytes.NewReader(wire)), &gotB)
		if err != nil {
			t.Fatalf("binary decode of own encoding: %v", err)
		}
		if !hasData {
			t.Fatal("binary frame lost its data section")
		}
		lo, hi := ack1, ack2
		if lo > hi {
			lo, hi = hi, lo
		}
		if len(acks) != 2 || acks[0] != lo || acks[1] != hi {
			t.Fatalf("ack batch %v from (%d, %d)", acks, ack1, ack2)
		}

		// JSON round trip of the same message.
		line, err := json.Marshal(&w)
		if err != nil {
			t.Fatalf("json encode: %v", err)
		}
		var gotJ wireMessage
		if err := json.Unmarshal(line, &gotJ); err != nil {
			t.Fatalf("json decode of own encoding: %v", err)
		}

		// Both decodes must equal the original and therefore each other.
		for name, got := range map[string]*wireMessage{"binary": &gotB, "json": &gotJ} {
			if got.Kind != w.Kind || got.Seq != w.Seq || got.From != w.From ||
				got.To != w.To || got.EdgeID != w.EdgeID || got.Latency != w.Latency ||
				got.SentTick != w.SentTick || got.PayloadType != w.PayloadType ||
				!bytes.Equal(got.Payload, w.Payload) {
				t.Errorf("%s round trip mutated the message:\n got %+v\nwant %+v", name, *got, w)
			}
		}
	})
}

// FuzzWireDecode is the adversarial half: where FuzzWireFrame can only
// produce well-formed frames (it drives the encoder), this target feeds raw
// connection streams straight to the decoder — truncated ack blocks, ack
// counts larger than the body, payload-type references into an empty intern
// table, bodies past the frame limit — and checks the decoder's safety
// contract: it never panics, rejects malformed input with an error and no
// partial results, bounds its intern table, keeps ack batches ascending, and
// every frame it does accept re-encodes and re-decodes to the same message
// on a fresh connection pair.
func FuzzWireDecode(f *testing.F) {
	frame := func(w *wireMessage, acks []uint64) []byte {
		var enc wireEnc
		return enc.appendFrame(nil, w, acks)
	}
	msg := &wireMessage{Kind: 1, Seq: 5, From: 0, To: 1, EdgeID: 3,
		Latency: 2, SentTick: 7, PayloadType: "core.rumors", Payload: []byte(`{"x":1}`)}
	f.Add(frame(msg, []uint64{3, 4, 9})) // well-formed data + acks
	f.Add(frame(nil, []uint64{1}))       // ack-only frame
	f.Add([]byte(`{"kind":1}` + "\n"))   // JSON line: unknown header byte

	// A two-frame stream: the first defines the payload type, the second
	// references it through the intern table.
	{
		var enc wireEnc
		s := enc.appendFrame(nil, msg, nil)
		m2 := *msg
		m2.Seq, m2.SentTick = 6, 8
		f.Add(enc.appendFrame(s, &m2, nil))
	}

	hdr := func(flags byte, body []byte) []byte {
		return append(binary.AppendUvarint([]byte{wireVersion | flags}, uint64(len(body))), body...)
	}
	dataPrefix := func(kind byte) []byte {
		body := []byte{kind}
		for i := 0; i < 6; i++ { // seqDelta, from, to, edge, latency, tickDelta
			body = binary.AppendVarint(body, 0)
		}
		return body
	}

	// Truncated ack block: the count says three acks, the body ends after one.
	f.Add([]byte{wireVersion | wireFlagAcks, 2, 3, 5})
	// Oversized ack count: claims ~2^40 acks in a six-byte body.
	f.Add(hdr(wireFlagAcks, binary.AppendUvarint(nil, 1<<40)))
	// Unknown intern-table id: type code 7 references table[5] of an empty table.
	{
		body := binary.AppendUvarint(dataPrefix(1), 7)
		body = binary.AppendUvarint(body, 0) // payload length
		f.Add(hdr(wireFlagData, body))
	}
	// Payload length running past the end of the body.
	{
		body := binary.AppendUvarint(dataPrefix(2), 0) // no payload type
		body = binary.AppendUvarint(body, 1000)
		f.Add(hdr(wireFlagData, body))
	}
	// Type definition whose name length overruns the body.
	{
		body := binary.AppendUvarint(dataPrefix(3), 1) // define
		body = binary.AppendUvarint(body, 200)         // nameLen > remaining
		f.Add(hdr(wireFlagData, body))
	}
	// Body length past the 4 MiB frame limit.
	f.Add(binary.AppendUvarint([]byte{wireVersion | wireFlagData}, maxWireBody+1))
	// Well-formed FrameBatch super-frame (three sub-messages + hoisted acks).
	batchFrame := func() []byte {
		var enc wireEnc
		msgs := []wireMessage{
			{Kind: 1, Seq: 5, From: 0, To: 1, EdgeID: 3, Latency: 2, SentTick: 7,
				PayloadType: "core.rumors", Payload: []byte(`{"x":1}`)},
			{Kind: 1, Seq: 6, From: 1, To: 2, EdgeID: 4, Latency: 1, SentTick: 7,
				PayloadType: "core.rumors", Payload: []byte(`{"x":2}`)},
			{Kind: 3, Seq: 7, From: 2, To: 0, EdgeID: 5, Latency: 3, SentTick: 8},
		}
		return enc.appendBatchFrame(nil, msgs, []uint64{2, 9})
	}
	f.Add(batchFrame())
	// Truncated batch: the count promises three sub-messages, the body ends
	// mid-way through the second.
	{
		b := batchFrame()
		f.Add(b[:len(b)-len(b)/2])
	}
	// Oversized batch count: claims ~2^40 sub-messages in a tiny body.
	f.Add(hdr(wireFlagBatch, binary.AppendUvarint(nil, 1<<40)))
	// Zero-count batch: the encoder never emits one; malformed.
	f.Add(hdr(wireFlagBatch, []byte{0}))
	// Batch and data flags together: contradictory body shape; malformed.
	{
		body := append(binary.AppendUvarint(nil, 1), dataPrefix(1)...)
		body = binary.AppendUvarint(body, 0) // ptype none
		body = binary.AppendUvarint(body, 0) // payload length
		f.Add(hdr(wireFlagBatch|wireFlagData, body))
	}
	// A single frame followed by a batch on the same stream: the batch's
	// sub-messages must resolve the intern table and delta chains the first
	// frame advanced.
	{
		var enc wireEnc
		s := enc.appendFrame(nil, msg, nil)
		m2, m3 := *msg, *msg
		m2.Seq, m2.SentTick = 6, 8
		m3.Seq, m3.SentTick = 7, 8
		f.Add(enc.appendBatchFrame(s, []wireMessage{m2, m3}, []uint64{5}))
	}
	// Intern-table exhaustion: one stream defining maxInternedTypes+1 fresh
	// types; the decoder must reject the frame that would overflow the table.
	{
		var enc wireEnc
		var s []byte
		for i := 0; i <= maxInternedTypes; i++ {
			m := wireMessage{Kind: 1, Seq: uint64(i + 1),
				PayloadType: fmt.Sprintf("t%02d", i), Payload: []byte("0")}
			s = enc.appendFrame(s, &m, nil)
		}
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		var dec wireDec
		for {
			acks, msgs, batch, err := dec.readFrameMulti(br)
			if err != nil {
				// Rejection must be total: no partial results escape.
				if len(msgs) > 0 || acks != nil {
					t.Fatalf("error %v returned partial results (%d msgs, %d acks)", err, len(msgs), len(acks))
				}
				return
			}
			for i := 1; i < len(acks); i++ {
				if acks[i] < acks[i-1] {
					t.Fatalf("decoded ack batch not ascending: %v", acks)
				}
			}
			if len(dec.names) > maxInternedTypes {
				t.Fatalf("intern table grew to %d entries past the cap", len(dec.names))
			}
			if batch && len(msgs) == 0 {
				t.Fatal("decoder accepted an empty batch frame")
			}
			if len(msgs) == 0 && len(acks) == 0 {
				continue // empty frame: a legal no-op
			}

			// Anything the decoder accepts must survive a re-encode /
			// re-decode round trip on a fresh connection pair — single frames
			// through appendFrame, super-frames through appendBatchFrame. Copy
			// out of the decoder-owned buffers first — the next readFrameMulti
			// reuses them.
			ackCopy := append([]uint64(nil), acks...)
			msgCopy := make([]wireMessage, len(msgs))
			for i, m := range msgs {
				msgCopy[i] = m
				msgCopy[i].Payload = append([]byte(nil), m.Payload...)
			}
			var enc2 wireEnc
			var re []byte
			switch {
			case batch:
				re = enc2.appendBatchFrame(nil, msgCopy, ackCopy)
			case len(msgCopy) == 1:
				re = enc2.appendFrame(nil, &msgCopy[0], ackCopy)
			default:
				re = enc2.appendFrame(nil, nil, ackCopy)
			}
			var dec2 wireDec
			acks2, msgs2, batch2, err := dec2.readFrameMulti(bufio.NewReader(bytes.NewReader(re)))
			if err != nil {
				t.Fatalf("re-encode of accepted frame does not decode: %v", err)
			}
			if batch2 != batch || len(msgs2) != len(msgCopy) {
				t.Fatalf("re-encode changed shape: batch %v→%v, msgs %d→%d", batch, batch2, len(msgCopy), len(msgs2))
			}
			if len(acks2) != len(ackCopy) {
				t.Fatalf("re-encode changed ack batch: %v -> %v", ackCopy, acks2)
			}
			for i := range acks2 {
				if acks2[i] != ackCopy[i] {
					t.Fatalf("re-encode changed ack batch: %v -> %v", ackCopy, acks2)
				}
			}
			for i := range msgs2 {
				got, want := msgs2[i], msgCopy[i]
				if got.Kind != want.Kind || got.Seq != want.Seq || got.From != want.From ||
					got.To != want.To || got.EdgeID != want.EdgeID || got.Latency != want.Latency ||
					got.SentTick != want.SentTick || got.PayloadType != want.PayloadType ||
					!bytes.Equal(got.Payload, want.Payload) {
					t.Fatalf("re-encode round trip mutated sub-message %d:\n got %+v\nwant %+v", i, got, want)
				}
			}
		}
	})
}
