package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzWireFrame cross-checks the two wire codecs: any wireMessage the fuzzer
// constructs must round-trip the binary framing byte-exactly AND agree with
// what the JSON line protocol reconstructs, so the formats stay semantically
// interchangeable (the interop guarantee behind per-connection format
// auto-detection).
//
// Payload bytes are wrapped as a JSON string before use: the JSON wire
// requires payloads to be valid JSON documents (json.RawMessage), and every
// registered payload codec produces one. The binary codec itself is
// payload-agnostic, so the wrapping loses no binary-side coverage of the
// length-prefixed framing.
func FuzzWireFrame(f *testing.F) {
	f.Add(uint8(1), uint64(1), 0, 1, 0, 1, 0, "", []byte(nil), uint64(0), uint64(0))
	f.Add(uint8(2), uint64(1)<<40, 255, -256, 12345, -7, 99, "live_test.bit", []byte("true"), uint64(3), uint64(4))
	f.Add(uint8(0xFF), uint64(0), -1, -1, -1, -1, -1, "core.rumors", []byte{0x00, 0xFF, 0x7B}, uint64(1), uint64(1))
	f.Add(uint8(0), uint64(1<<63), 1<<31, -1<<31, 0, 0, -1<<40, "x", bytes.Repeat([]byte{0x7B}, 64), uint64(9), uint64(90))

	f.Fuzz(func(t *testing.T, kind uint8, seq uint64, from, to, edge, latency, sentTick int,
		ptype string, payload []byte, ack1, ack2 uint64) {
		w := wireMessage{
			Kind: kind, Seq: seq, From: from, To: to, EdgeID: edge,
			Latency: latency, SentTick: sentTick,
		}
		// Registered payload type names are Go string literals, always valid
		// UTF-8; the JSON codec would coerce anything else to U+FFFD while
		// the binary codec is byte-faithful. Mirror the registry invariant.
		if !utf8.ValidString(ptype) {
			ptype = strings.ToValidUTF8(ptype, "_")
		}
		if len(payload) > 0 {
			// A payload without a type never occurs on the real wire (the
			// codec seam always pairs them); mirror that invariant.
			if ptype == "" {
				ptype = "fuzz"
			}
			enc, err := json.Marshal(string(payload))
			if err != nil {
				t.Skip()
			}
			w.Payload = enc
		}
		if len(w.Payload) > 0 {
			w.PayloadType = ptype
		}

		// Binary round trip, with a piggybacked ack pair.
		var enc wireEnc
		wire := enc.appendFrame(nil, &w, []uint64{ack1, ack2})
		var dec wireDec
		var gotB wireMessage
		acks, hasData, err := dec.readFrame(bufio.NewReader(bytes.NewReader(wire)), &gotB)
		if err != nil {
			t.Fatalf("binary decode of own encoding: %v", err)
		}
		if !hasData {
			t.Fatal("binary frame lost its data section")
		}
		lo, hi := ack1, ack2
		if lo > hi {
			lo, hi = hi, lo
		}
		if len(acks) != 2 || acks[0] != lo || acks[1] != hi {
			t.Fatalf("ack batch %v from (%d, %d)", acks, ack1, ack2)
		}

		// JSON round trip of the same message.
		line, err := json.Marshal(&w)
		if err != nil {
			t.Fatalf("json encode: %v", err)
		}
		var gotJ wireMessage
		if err := json.Unmarshal(line, &gotJ); err != nil {
			t.Fatalf("json decode of own encoding: %v", err)
		}

		// Both decodes must equal the original and therefore each other.
		for name, got := range map[string]*wireMessage{"binary": &gotB, "json": &gotJ} {
			if got.Kind != w.Kind || got.Seq != w.Seq || got.From != w.From ||
				got.To != w.To || got.EdgeID != w.EdgeID || got.Latency != w.Latency ||
				got.SentTick != w.SentTick || got.PayloadType != w.PayloadType ||
				!bytes.Equal(got.Payload, w.Payload) {
				t.Errorf("%s round trip mutated the message:\n got %+v\nwant %+v", name, *got, w)
			}
		}
	})
}
