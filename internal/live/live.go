// Package live is the wall-clock gossip runtime: it executes the very same
// sim.Handler protocol state machines as the lockstep round simulator, but
// against real time and a pluggable Transport. Hosted nodes are multiplexed
// onto a sharded event loop — N shards (default GOMAXPROCS), each owning a
// contiguous range of nodes as a dense slice, an MPSC mailbox, and a
// hierarchical timer wheel — so a runtime costs O(shards) goroutines and
// zero per-node tickers regardless of how many nodes it hosts (see shard.go;
// 100k+ in-process nodes is the design point).
//
// The mapping from the paper's synchronous model to wall-clock time is:
//
//   - one simulator round = one tick of Options.Tick wall-clock duration;
//     each shard sweeps its nodes once per tick, so rounds are only
//     approximately aligned across nodes — exactly the slack a real
//     deployment has;
//   - an exchange over an edge of latency ℓ is a request delivered ⌈ℓ/2⌉
//     ticks after initiation and a response ⌊ℓ/2⌋ ticks after the answer,
//     armed on the owning shard's timer wheel (or injected by the transport
//     as a real timer delay when a runtime's sink is not installed);
//   - per-node randomness comes from the same seeded streams as the
//     simulator (rng.Stream(seed, node)), so a protocol makes identical
//     random choices in both runtimes, tick for tick.
//
// Two transports ship with the package: ChanTransport (in-process channels,
// used by gossip.RunLive) and TCPTransport (JSON lines over TCP, one process
// per node subset, used by cmd/gossipd). A Runtime may host any subset of
// the graph's nodes; a cluster is several runtimes — in one process or many
// — whose transports route to each other.
package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
	"gossip/internal/member"
	"gossip/internal/par"
	"gossip/internal/sim"
)

// DefaultTick is the wall-clock duration of one protocol round.
const DefaultTick = time.Millisecond

// DefaultMaxTicks bounds runs whose completion goal never fires.
const DefaultMaxTicks = 30_000

// ErrMaxTicks reports that every hosted node stopped — tick budget spent or
// fixed schedule finished — before the local completion goal fired.
var ErrMaxTicks = errors.New("live: all nodes stopped before completion")

// CrashPlan schedules a crash-recovery epoch for one node: fail-stop at
// wall tick At; if RecoverAt > 0, rejoin at that tick with cleared protocol
// state (as a process restarted from scratch would), keeping its seeded
// random stream. RecoverAt == 0 means the crash is permanent.
type CrashPlan struct {
	At        int
	RecoverAt int
}

// Options configures a live run. The zero value hosts every node of the
// graph with default tick duration and budget.
type Options struct {
	// Seed makes per-node randomness reproducible; a live run and a
	// simulator run with equal seeds draw identical per-node streams.
	Seed uint64
	// Tick is the wall-clock duration of one protocol round (default
	// DefaultTick). Latency delays scale with it.
	Tick time.Duration
	// MaxTicks is the per-node round budget (default DefaultMaxTicks).
	MaxTicks int
	// NHint is the network-size upper bound known to nodes (0 = exact n).
	NHint int
	// Nodes lists the nodes hosted by this runtime (nil = all). A cluster
	// is several runtimes with disjoint node sets sharing a transport
	// topology.
	Nodes []graph.NodeID
	// Crashes schedules crash-recovery epochs: Crashes[v] halts node v at
	// its At tick — it stops ticking and drops incoming messages
	// unanswered — and, when RecoverAt is set, rejoins it with cleared
	// state. A node scheduled to recover still counts toward completion; a
	// permanently crashed node does not (Completed is defined among
	// reachable survivors).
	Crashes map[graph.NodeID]CrashPlan
	// Linger keeps the runtime serving incoming requests for this long
	// after local completion, so slower peer runtimes can still pull from
	// us. Multi-runtime deployments should set it; single-runtime runs
	// don't need it (local completion is global completion).
	Linger time.Duration
	// Membership, when non-nil, runs a SWIM failure detector on every
	// hosted node: nodes bootstrap from the configured seed peer list,
	// probe each other over the run's transport, and the completion check
	// counts only members currently believed alive — a crashed node the
	// cluster has declared dead no longer gates completion, and a recovered
	// node gates it again once re-admitted.
	Membership *MembershipConfig
	// Interrupt, when non-nil, requests a graceful stop when it becomes
	// readable (closed or sent to): hosted nodes broadcast a membership
	// leave, stop initiating, keep answering for DrainTicks ticks so the
	// leave propagates, then the run returns with Result.Interrupted set and
	// a nil error. This is the runtime half of a graceful shutdown; the
	// owner then drains the transport (Drainer).
	Interrupt <-chan struct{}
	// DrainTicks is how many ticks an interrupted run keeps serving while
	// its leave broadcast propagates (default DefaultDrainTicks).
	DrainTicks int
	// Shards is the number of event-loop workers hosted nodes are
	// multiplexed onto (0 = par.MaxWorkers(), i.e. GOMAXPROCS; clamped to
	// the hosted node count). More shards buy parallelism, fewer buy cache
	// density; the default is right for almost everything.
	Shards int
	// MailboxCap bounds each shard's mailbox, in posts (0 = the protective
	// DefaultMailboxCap, negative = unbounded). When full, gossip posts are
	// shed into the overload ledger; membership traffic is always admitted.
	// Locally delivered messages have no retransmit layer under them, so a
	// repair-free protocol (flood) never recovers a shed post — bulk
	// experiments on dedicated hardware should raise or lift the cap and
	// let memory absorb the frontier burst instead.
	MailboxCap int
}

// DefaultDrainTicks is the post-interrupt grace period, in ticks.
const DefaultDrainTicks = 8

// Metrics aggregates the cost of a live run across its hosted nodes. It is
// the wall-clock counterpart of sim.Metrics (see Sim).
type Metrics struct {
	// Ticks is the largest round counter any hosted node reached.
	Ticks int
	// Requests and Responses count messages sent by hosted nodes.
	Requests  int
	Responses int
	// Bytes is the accounted payload volume (sim.PayloadSize).
	Bytes int
	// EdgeActivations counts initiated exchanges.
	EdgeActivations int
	// MemberPackets and MemberBytes count membership traffic (probes, acks,
	// ping-reqs, syncs) sent by hosted nodes — kept apart from the protocol
	// counters so membership never skews a protocol's cost accounting.
	MemberPackets int
	MemberBytes   int
	// Wall is the run's wall-clock duration.
	Wall time.Duration
}

// Messages returns the total message count (requests + responses).
func (m Metrics) Messages() int { return m.Requests + m.Responses }

// Sim converts to the simulator's metrics shape, with ticks as rounds, for
// side-by-side comparison with round-engine runs.
func (m Metrics) Sim() sim.Metrics {
	return sim.Metrics{
		Rounds:          m.Ticks,
		Requests:        m.Requests,
		Responses:       m.Responses,
		Bytes:           m.Bytes,
		EdgeActivations: m.EdgeActivations,
	}
}

// Result reports a live run over this runtime's hosted nodes.
type Result struct {
	Metrics Metrics
	// Completed is true when every reachable survivor — every hosted node
	// not fail-stopped without a scheduled recovery — reached the
	// protocol's local goal.
	Completed bool
	// Interrupted is true when the run ended because Options.Interrupt
	// fired: the nodes broadcast a membership leave and stopped early.
	// Completed then reports the goal's state at the interrupt.
	Interrupted bool
	// Done[v] reports node v's local goal at shutdown (hosted nodes only).
	Done []bool
	// Crashed[v] reports whether node v is down at shutdown (hosted nodes
	// only); a node that crashed and recovered reports false here and true
	// in Recovered.
	Crashed []bool
	// Recovered[v] reports whether node v crashed and rejoined with
	// cleared state (hosted nodes only).
	Recovered []bool
	// Faults is the run's fault ledger: injected and real message losses,
	// duplication, retransmissions, partition epochs, and the
	// informed-fraction trajectory. Zero-valued when the transport stack
	// keeps no fault accounting.
	Faults FaultReport
	// Handlers exposes the final protocol state machines of hosted nodes
	// for inspection; they must not be used concurrently with another run.
	Handlers map[graph.NodeID]sim.Handler
	// Members maps each hosted node to its final membership table, sorted
	// by node ID (nil without Options.Membership).
	Members map[graph.NodeID][]member.Update
	// MemberEvents maps each hosted node to its membership event log
	// (populated only under Options.Membership.Record).
	MemberEvents map[graph.NodeID][]member.Event
}

// Runtime drives the hosted nodes of one live run.
type Runtime struct {
	g         *graph.Graph
	proto     Protocol
	tr        Transport
	opts      Options
	nhint     int
	csr       *graph.AdjCSR // dense adjacency-order topology view
	local     []*node       // pointers into the shards' dense node slices
	shards    []*shard
	loc       []nodeLoc     // node ID -> owning shard and slot ({-1,-1} = hosted elsewhere)
	epoch     time.Time     // shard tick zero
	memberCfg member.Config // defaulted, valid only when opts.Membership != nil
	stopCh    chan struct{}
	quiesced  atomic.Bool  // completed and lingering: answer peers, don't initiate
	leaving   atomic.Bool  // interrupted: broadcast leave, answer, don't initiate
	doneN     atomic.Int64 // hosted nodes whose done flag is set (watch fast path)
	stopN     atomic.Int64 // hosted nodes whose exhausted flag is set
	mailShed  atomic.Int64 // gossip posts shed by full shard mailboxes
	mailCap   int          // resolved Options.MailboxCap (<=0 = unbounded)
	peerSink  PeerStatusSink
	wg        sync.WaitGroup
}

// Run executes proto over the transport until every hosted node reaches the
// protocol's local goal (Completed), every hosted node exhausts its tick
// budget (ErrMaxTicks), or every hosted node has crashed (completed
// vacuously, as in the simulator). The caller keeps ownership of the
// transport and must Close it after Run returns.
func Run(g *graph.Graph, proto Protocol, tr Transport, opts Options) (Result, error) {
	if opts.Tick <= 0 {
		opts.Tick = DefaultTick
	}
	if opts.MaxTicks <= 0 {
		opts.MaxTicks = DefaultMaxTicks
	}
	if opts.MailboxCap == 0 {
		opts.MailboxCap = DefaultMailboxCap
	}
	rt := &Runtime{
		g:      g,
		proto:  proto,
		tr:     tr,
		opts:   opts,
		nhint:  opts.NHint,
		csr:    graph.BuildAdjCSR(g),
		stopCh: make(chan struct{}),
	}
	if opts.MailboxCap > 0 {
		rt.mailCap = opts.MailboxCap
	}
	if rt.nhint <= 0 {
		rt.nhint = g.N()
	}
	// Validate the full crash schedule up front — including entries for
	// nodes hosted by other runtimes — so a bad plan fails loudly instead of
	// silently never firing (satellite of the membership PR).
	for v, plan := range opts.Crashes {
		if v < 0 || v >= g.N() {
			return Result{}, fmt.Errorf("live: crash plan for node %d out of range [0,%d)", v, g.N())
		}
		if plan.At < 0 || plan.RecoverAt < 0 {
			return Result{}, fmt.Errorf("live: node %d crash plan has negative tick (at=%d recover=%d)", v, plan.At, plan.RecoverAt)
		}
		if plan.RecoverAt > 0 && plan.RecoverAt <= plan.At {
			return Result{}, fmt.Errorf("live: node %d recovery tick %d not after crash tick %d", v, plan.RecoverAt, plan.At)
		}
	}
	if opts.Membership != nil {
		if err := opts.Membership.validate(g.N()); err != nil {
			return Result{}, err
		}
		rt.memberCfg = opts.Membership.memberConfig(opts.Seed, g.N(), false)
		// Feed membership verdicts to the transport's overload protection:
		// a peer the detector declares dead stops earning retransmissions
		// (its breaker trips), a refuted or recovered one is re-admitted.
		rt.peerSink, _ = tr.(PeerStatusSink)
	}
	if opts.DrainTicks <= 0 {
		opts.DrainTicks = DefaultDrainTicks
		rt.opts.DrainTicks = DefaultDrainTicks
	}

	hosted := opts.Nodes
	if hosted == nil {
		hosted = make([]graph.NodeID, g.N())
		for u := range hosted {
			hosted[u] = graph.NodeID(u)
		}
	}
	st, _ := tr.(SinkTransport)
	seen := make(map[graph.NodeID]bool, len(hosted))
	for _, u := range hosted {
		if u < 0 || u >= g.N() {
			return Result{}, fmt.Errorf("live: hosted node %d out of range [0,%d)", u, g.N())
		}
		if seen[u] {
			return Result{}, fmt.Errorf("live: node %d hosted twice", u)
		}
		seen[u] = true
		// Hosting check without materializing an inbox channel: at 100k
		// nodes, eager per-node buffers are the memory bottleneck.
		if st != nil {
			if !st.Hosts(u) {
				return Result{}, fmt.Errorf("live: transport does not host node %d", u)
			}
		} else if tr.Recv(u) == nil {
			return Result{}, fmt.Errorf("live: transport does not host node %d", u)
		}
	}
	if len(hosted) == 0 {
		return Result{}, errors.New("live: no nodes to host")
	}

	// Partition the hosted nodes into contiguous dense shard slices. The
	// slices are sized exactly and never grow, so the *node pointers in
	// rt.local (used by the watcher and membership layer) stay stable.
	nShards := opts.Shards
	if nShards <= 0 {
		nShards = par.MaxWorkers()
	}
	if nShards > len(hosted) {
		nShards = len(hosted)
	}
	rt.loc = make([]nodeLoc, g.N())
	for i := range rt.loc {
		rt.loc[i] = nodeLoc{shard: -1, idx: -1}
	}
	per := (len(hosted) + nShards - 1) / nShards
	for lo := 0; lo < len(hosted); lo += per {
		hi := lo + per
		if hi > len(hosted) {
			hi = len(hosted)
		}
		sh := &shard{
			rt:     rt,
			id:     len(rt.shards),
			nodes:  make([]node, hi-lo),
			wheel:  newWheel[Message](),
			notify: make(chan struct{}, 1),
		}
		for j, u := range hosted[lo:hi] {
			plan := opts.Crashes[u]
			n := &sh.nodes[j]
			n.rt = rt
			n.id = u
			n.h = proto.NewHandler(u)
			n.crashAt = plan.At
			n.recoverAt = plan.RecoverAt
			n.ctx = sim.NewContext(n)
			if opts.Membership != nil {
				n.mem.Store(rt.newMember(u))
			}
			rt.loc[u] = nodeLoc{shard: int32(sh.id), idx: int32(j)}
			rt.local = append(rt.local, n)
		}
		rt.shards = append(rt.shards, sh)
	}

	// Fast path: the transport hands locally destined messages straight to
	// the owning shard. Fallback: one forwarder goroutine per node pumps the
	// transport's inbox channel into the shard mailboxes.
	sinkMode := st != nil && st.SetSink(rt.sink)

	start := time.Now()
	rt.epoch = start
	for _, sh := range rt.shards {
		rt.wg.Add(1)
		go sh.run()
	}
	if !sinkMode {
		for _, u := range hosted {
			rt.wg.Add(1)
			go rt.forward(u, tr.Recv(u))
		}
	}

	completed, interrupted, informedOverTime := rt.watch()
	wall := time.Since(start)
	if interrupted {
		// Graceful stop: the nodes have been told to broadcast their leave
		// (see onTick); keep serving for the grace window so it propagates.
		time.Sleep(time.Duration(opts.DrainTicks) * opts.Tick)
	} else if completed && opts.Linger > 0 {
		// Keep answering peers' pulls; our own nodes are done but a slower
		// runtime may still need the rumor from us. Quiescing stops the
		// nodes from initiating (and inflating metrics) while they linger.
		rt.quiesced.Store(true)
		time.Sleep(opts.Linger)
	}
	close(rt.stopCh)
	rt.wg.Wait()
	if sinkMode {
		st.SetSink(nil)
	}

	res := rt.collect(wall)
	res.Completed = completed
	res.Interrupted = interrupted
	if fr, ok := tr.(FaultReporter); ok {
		res.Faults = fr.Faults()
	}
	res.Faults.Overload.ShedQueue += rt.mailShed.Load()
	res.Faults.InformedOverTime = informedOverTime
	if !completed && !interrupted {
		return res, fmt.Errorf("%w (%d ticks, %d nodes done)", ErrMaxTicks, res.Metrics.Ticks, countTrue(res.Done))
	}
	return res, nil
}

// watch polls the nodes' outward flags once per tick until every reachable
// survivor is done (completed), every one of them has stopped — tick budget
// spent or schedule finished — or Options.Interrupt fires (interrupted; the
// leaving flag is set so nodes broadcast their leave on the next tick).
// Permanently crashed nodes are excluded; a node with a scheduled recovery
// still counts, so completion waits for it to rejoin and catch up. The
// per-tick informed fraction among the counted nodes is returned alongside.
func (rt *Runtime) watch() (completed, interrupted bool, series []float64) {
	// With no crash schedule and no membership, every hosted node counts
	// toward completion forever, so the per-tick O(hosted) flag scan reduces
	// to two counter reads — the difference between a watcher that idles and
	// one that burns a core at 100k nodes.
	fast := rt.opts.Membership == nil && len(rt.opts.Crashes) == 0
	ticker := time.NewTicker(rt.opts.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-rt.opts.Interrupt:
			rt.leaving.Store(true)
			return false, true, series
		case <-ticker.C:
		}
		doneCount, total := 0, 0
		allDone, allStopped := true, true
		if fast {
			total = len(rt.local)
			doneCount = int(rt.doneN.Load())
			allDone = doneCount >= total
			allStopped = int(rt.stopN.Load()) >= total
		} else {
			for _, n := range rt.local {
				if n.crashed.Load() && n.recoverAt == 0 {
					continue // permanently crashed: not a reachable survivor
				}
				if rt.opts.Membership != nil && n.crashed.Load() && rt.believedDead(n.id) {
					// The membership layer has declared this node dead: it is
					// no longer a member, so it no longer gates completion.
					// Once it rejoins and refutes, it counts again.
					continue
				}
				total++
				if n.done.Load() {
					doneCount++
				} else {
					allDone = false
				}
				if !n.exhausted.Load() {
					allStopped = false
				}
			}
		}
		if total == 0 {
			series = append(series, 1)
		} else {
			series = append(series, float64(doneCount)/float64(total))
		}
		if allDone {
			return true, false, series
		}
		if allStopped {
			return false, false, series
		}
	}
}

// collect aggregates per-node state after every node goroutine has joined.
func (rt *Runtime) collect(wall time.Duration) Result {
	res := Result{
		Done:      make([]bool, rt.g.N()),
		Crashed:   make([]bool, rt.g.N()),
		Recovered: make([]bool, rt.g.N()),
		Handlers:  make(map[graph.NodeID]sim.Handler, len(rt.local)),
	}
	if rt.opts.Membership != nil {
		res.Members = make(map[graph.NodeID][]member.Update, len(rt.local))
		if rt.memberCfg.Record {
			res.MemberEvents = make(map[graph.NodeID][]member.Event, len(rt.local))
		}
	}
	for _, n := range rt.local {
		res.Metrics.Requests += n.m.Requests
		res.Metrics.Responses += n.m.Responses
		res.Metrics.Bytes += n.m.Bytes
		res.Metrics.EdgeActivations += n.m.EdgeActivations
		res.Metrics.MemberPackets += n.m.MemberPackets
		res.Metrics.MemberBytes += n.m.MemberBytes
		if m := n.mem.Load(); m != nil && res.Members != nil {
			res.Members[n.id] = m.Snapshot()
			if res.MemberEvents != nil {
				res.MemberEvents[n.id] = m.Events()
			}
		}
		if n.tick > res.Metrics.Ticks {
			res.Metrics.Ticks = n.tick
		}
		res.Done[n.id] = n.done.Load()
		res.Crashed[n.id] = n.crashed.Load()
		res.Recovered[n.id] = n.recovered.Load()
		res.Handlers[n.id] = n.h
	}
	res.Metrics.Wall = wall
	return res
}

func countTrue(bs []bool) int {
	c := 0
	for _, b := range bs {
		if b {
			c++
		}
	}
	return c
}
