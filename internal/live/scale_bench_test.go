package live

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gossip/internal/graph"
	"gossip/internal/par"
)

// BenchmarkLiveScale measures the sharded event loop's capacity: how many
// locally hosted nodes one process can drive, and what each costs. Every
// timed iteration is a complete push-pull run over a ring of cliques (degree
// ~8, so per-tick work scales linearly with n) capped at scaleTicks protocol
// ticks; the protocol cannot finish that fast at these sizes, so every run
// exercises the full tick budget.
//
// Reported metrics:
//
//	nodeticks/sec/core — node-tick sweeps per wall second per CPU core, the
//	                     engine's throughput (tick-paced at small n, compute-
//	                     bound at 100k)
//	B/node             — mid-run heap bytes per hosted node
//	goroutines         — mid-run goroutine count above the test baseline;
//	                     must be O(shards), not O(nodes)
//	goroutines/shard   — the same count normalized by the shard count, so a
//	                     committed baseline transfers across machines with
//	                     different core counts (the CI gate uses this one)
//	shards             — the event-loop worker count for this run
//
// The goroutine metric is also asserted: a runtime whose goroutine count
// scales with nodes again (the pre-shard design: 1 node = 1 goroutine + 1
// ticker) fails the benchmark rather than just reporting a large number.
func BenchmarkLiveScale(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		name := fmt.Sprintf("%dk", n/1000)
		b.Run(name, func(b *testing.B) {
			benchLiveScale(b, n)
		})
	}
}

// scaleTicks bounds each measured run. Small enough to keep a 100k-node
// iteration under ~1s, large enough that steady-state cost dominates setup.
const scaleTicks = 16

// scaleTick is the nominal tick pace. At 1k nodes the loop genuinely paces
// itself at this rate; at 100k the shards run catch-up ticks back to back
// and the benchmark measures compute, not sleep.
const scaleTick = 200 * time.Microsecond

func benchLiveScale(b *testing.B, n int) {
	g := graph.RingOfCliques(n/8, 8, 1)
	opts := Options{Seed: 1, Tick: scaleTick, MaxTicks: scaleTicks}
	shards := par.MaxWorkers()
	if shards > n {
		shards = n
	}

	run := func() Result {
		tr := NewChanTransport(g.N(), 0)
		defer tr.Close()
		res, err := Run(g, ppProto{source: 0}, tr, opts)
		if err != nil && !errors.Is(err, ErrMaxTicks) {
			b.Fatal(err)
		}
		return res
	}

	b.ReportAllocs()
	b.ResetTimer()
	var ticks int64
	for i := 0; i < b.N; i++ {
		res := run()
		ticks += int64(res.Metrics.Ticks)
	}
	b.StopTimer()
	cores := float64(runtime.GOMAXPROCS(0))
	b.ReportMetric(float64(int64(n)*ticks)/b.Elapsed().Seconds()/cores, "nodeticks/sec/core")

	// One instrumented run outside the timed region: sample goroutines and
	// heap halfway through the nominal run window, while every shard is live.
	// Catch-up only stretches a run past the nominal window, never under it,
	// so the mid-window sample always lands inside the run.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	baseGrt := runtime.NumGoroutine()

	tr := NewChanTransport(g.N(), 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(g, ppProto{source: 0}, tr, opts)
		if err != nil && !errors.Is(err, ErrMaxTicks) {
			b.Error(err)
		}
	}()
	time.Sleep(scaleTicks * scaleTick / 2)
	grt := runtime.NumGoroutine() - baseGrt
	var mid runtime.MemStats
	runtime.ReadMemStats(&mid)
	<-done
	tr.Close()

	perNode := float64(mid.HeapInuse-before.HeapInuse) / float64(n)
	b.ReportMetric(perNode, "B/node")
	b.ReportMetric(float64(grt), "goroutines")
	b.ReportMetric(float64(grt)/float64(shards), "goroutines/shard")
	b.ReportMetric(float64(shards), "shards")

	// O(shards), not O(nodes): shard loops + wheel driver + watcher + a
	// handful of runtime helpers. The slack absorbs GC workers and test
	// scaffolding; a goroutine-per-node regression overshoots it by orders
	// of magnitude at every size.
	if limit := 8*shards + 64; grt > limit {
		b.Errorf("mid-run goroutine count %d exceeds O(shards) bound %d (shards=%d, nodes=%d)",
			grt, limit, shards, n)
	}
}
