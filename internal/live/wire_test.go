package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"gossip/internal/graph"
)

// encodeFrames is a test helper running appendFrame through one encoder.
func encodeFrames(e *wireEnc, frames []wireMessage, acks [][]uint64) []byte {
	var out []byte
	for i := range frames {
		var a []uint64
		if acks != nil {
			a = acks[i]
		}
		out = e.appendFrame(out, &frames[i], a)
	}
	return out
}

// TestWireFrameRoundTrip encodes a table of messages and decodes them back,
// checking every field survives — including negative ints (zigzag varints)
// and empty payloads.
func TestWireFrameRoundTrip(t *testing.T) {
	msgs := []wireMessage{
		{Kind: 1, Seq: 1, From: 0, To: 1, EdgeID: 0, Latency: 1, SentTick: 0},
		{Kind: 2, Seq: 1 << 40, From: 255, To: 256, EdgeID: 12345, Latency: 7, SentTick: 99,
			PayloadType: "live_test.bit", Payload: json.RawMessage(`true`)},
		{Kind: 0xFF, Seq: 0, From: -1, To: -7, EdgeID: -3, Latency: -100, SentTick: -1 << 30},
		{Kind: 1, Seq: 2, From: 3, To: 4, EdgeID: 5, Latency: 6, SentTick: 7,
			PayloadType: "live_test.bit", Payload: json.RawMessage(`false`)},
	}
	var enc wireEnc
	wire := encodeFrames(&enc, msgs, nil)

	br := bufio.NewReader(bytes.NewReader(wire))
	var dec wireDec
	for i, want := range msgs {
		var got wireMessage
		acks, hasData, err := dec.readFrame(br, &got)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !hasData || len(acks) != 0 {
			t.Fatalf("frame %d: hasData=%v acks=%v", i, hasData, acks)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.From != want.From ||
			got.To != want.To || got.EdgeID != want.EdgeID || got.Latency != want.Latency ||
			got.SentTick != want.SentTick || got.PayloadType != want.PayloadType ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, _, err := dec.readFrame(br, &wireMessage{}); err == nil {
		t.Error("expected EOF after last frame")
	}
}

// TestWirePayloadTypeInterning checks the per-connection intern table: the
// first frame carrying a type pays for its name, later frames reference it,
// so repeat frames are strictly smaller.
func TestWirePayloadTypeInterning(t *testing.T) {
	m := wireMessage{Kind: 1, Seq: 9, From: 1, To: 2, EdgeID: 3, Latency: 4, SentTick: 5,
		PayloadType: "core.rumors", Payload: json.RawMessage(`{"n":4,"s":"0a"}`)}
	var enc wireEnc
	first := enc.appendFrame(nil, &m, nil)
	second := enc.appendFrame(nil, &m, nil)
	if len(second) >= len(first) {
		t.Errorf("interned frame is %dB, first was %dB — expected smaller", len(second), len(first))
	}
	if want := len(first) - len(m.PayloadType) - 1; len(second) != want {
		// Reference costs 1 byte where the define cost 1 + nameLen(1) + name.
		t.Errorf("interned frame is %dB, want %dB", len(second), want)
	}
	br := bufio.NewReader(bytes.NewReader(append(append([]byte(nil), first...), second...)))
	var dec wireDec
	for i := 0; i < 2; i++ {
		var got wireMessage
		if _, _, err := dec.readFrame(br, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.PayloadType != m.PayloadType {
			t.Errorf("frame %d: PayloadType %q", i, got.PayloadType)
		}
	}
}

// TestWireAckBatch checks piggybacked ack batches: unsorted input seqs come
// back sorted (they are delta-encoded ascending), both standalone and folded
// into a data frame.
func TestWireAckBatch(t *testing.T) {
	acks := []uint64{90, 7, 8, 1000000, 9}
	var enc wireEnc
	ackOnly := enc.appendFrame(nil, nil, append([]uint64(nil), acks...))
	m := wireMessage{Kind: 2, Seq: 4, From: 1, To: 0, EdgeID: 2, Latency: 3, SentTick: 6}
	withData := enc.appendFrame(nil, &m, append([]uint64(nil), acks...))

	want := []uint64{7, 8, 9, 90, 1000000}
	for name, wire := range map[string][]byte{"ack-only": ackOnly, "piggybacked": withData} {
		br := bufio.NewReader(bytes.NewReader(wire))
		var dec wireDec
		var got wireMessage
		gotAcks, hasData, err := dec.readFrame(br, &got)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hasData != (name == "piggybacked") {
			t.Errorf("%s: hasData = %v", name, hasData)
		}
		if len(gotAcks) != len(want) {
			t.Fatalf("%s: acks %v, want %v", name, gotAcks, want)
		}
		for i := range want {
			if gotAcks[i] != want[i] {
				t.Fatalf("%s: acks %v, want %v", name, gotAcks, want)
			}
		}
		if hasData && got.Seq != m.Seq {
			t.Errorf("%s: data seq %d", name, got.Seq)
		}
	}
}

// TestWireMalformedFrames checks the decoder rejects corrupt input with
// errMalformedFrame (or a version error) instead of misreading it.
func TestWireMalformedFrames(t *testing.T) {
	var enc wireEnc
	m := wireMessage{Kind: 1, Seq: 3, From: 1, To: 2, EdgeID: 3, Latency: 4, SentTick: 5,
		PayloadType: "live_test.bit", Payload: json.RawMessage(`true`)}
	good := enc.appendFrame(nil, &m, []uint64{1, 2})

	cases := map[string][]byte{
		"json leading byte":  []byte(`{"k":1}` + "\n"),
		"bad version nibble": append([]byte{0x20}, good[1:]...),
		"truncated body":     good[:len(good)-3],
		"body length lies":   append([]byte{good[0], byte(len(good))}, good[2:]...),
		"type ref oob": (&wireEnc{names: map[string]uint64{m.PayloadType: 5}}).
			appendFrame(nil, &m, nil), // encoder emits a table ref the decoder never saw defined
	}
	for name, wire := range cases {
		br := bufio.NewReader(bytes.NewReader(wire))
		var dec wireDec
		_, _, err := dec.readFrame(br, &wireMessage{})
		if err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Specifically: corrupt structure inside a well-framed body must be
	// errMalformedFrame so the transport counts it as a decode drop.
	br := bufio.NewReader(bytes.NewReader([]byte{wireVersion | wireFlagData, 1, 0x01}))
	var dec wireDec
	if _, _, err := dec.readFrame(br, &wireMessage{}); !errors.Is(err, errMalformedFrame) {
		t.Errorf("truncated data section: err = %v, want errMalformedFrame", err)
	}
}

// TestWireInternTableBounded checks the decoder caps its per-connection
// payload-type intern table: a peer defining more than maxInternedTypes
// distinct names gets its frame rejected as malformed instead of growing
// decoder state without limit.
func TestWireInternTableBounded(t *testing.T) {
	var enc wireEnc
	var wire []byte
	seq := uint64(0)
	frame := func(ptype string) {
		seq++
		m := wireMessage{Kind: 1, Seq: seq, From: 1, To: 2, EdgeID: 3, Latency: 4,
			SentTick: int(seq), PayloadType: ptype, Payload: json.RawMessage(`true`)}
		wire = enc.appendFrame(wire, &m, nil)
	}
	for i := 0; i < maxInternedTypes; i++ {
		frame(fmt.Sprintf("live_test.flood%03d", i))
	}
	frame("live_test.one-too-many")

	br := bufio.NewReader(bytes.NewReader(wire))
	var dec wireDec
	for i := 0; i < maxInternedTypes; i++ {
		if _, _, err := dec.readFrame(br, &wireMessage{}); err != nil {
			t.Fatalf("frame %d (within cap): %v", i, err)
		}
	}
	if _, _, err := dec.readFrame(br, &wireMessage{}); !errors.Is(err, errMalformedFrame) {
		t.Fatalf("define past cap: err = %v, want errMalformedFrame", err)
	}
	if len(dec.names) != maxInternedTypes {
		t.Fatalf("intern table grew to %d entries, cap is %d", len(dec.names), maxInternedTypes)
	}

	// References to already-interned types must keep working at the cap.
	var enc2 wireEnc
	var wire2 []byte
	enc2.names = enc.names // pretend the same defines happened
	enc2.lastSeq, enc2.lastTick = enc.lastSeq, enc.lastTick
	seq++
	m := wireMessage{Kind: 1, Seq: seq, From: 1, To: 2, EdgeID: 3, Latency: 4,
		SentTick: int(seq), PayloadType: "live_test.flood000", Payload: json.RawMessage(`true`)}
	wire2 = enc2.appendFrame(wire2, &m, nil)
	br2 := bufio.NewReader(bytes.NewReader(wire2))
	var got wireMessage
	if _, _, err := dec.readFrame(br2, &got); err != nil {
		t.Fatalf("reference at cap: %v", err)
	}
	if got.PayloadType != "live_test.flood000" {
		t.Fatalf("reference at cap resolved to %q", got.PayloadType)
	}
}

// TestWireFormatParse covers the -wire flag vocabulary.
func TestWireFormatParse(t *testing.T) {
	for s, want := range map[string]WireFormat{"binary": WireBinary, "bin": WireBinary, "JSON": WireJSON} {
		got, err := ParseWireFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseWireFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseWireFormat("protobuf"); err == nil {
		t.Error("ParseWireFormat accepted an unknown format")
	}
	if WireBinary.String() != "binary" || WireJSON.String() != "json" {
		t.Error("WireFormat.String mismatch")
	}
}

// wirePair is tcpPair with explicit per-side wire formats.
func wirePair(t *testing.T, fa, fb WireFormat) (a, b *TCPTransport) {
	t.Helper()
	a, b = tcpPair(t)
	a.SetWireFormat(fa)
	b.SetWireFormat(fb)
	return a, b
}

// TestTCPWireInterop runs one exchange in each direction for every format
// pairing: receivers auto-detect the sender's format per connection, so
// mixed-format clusters interoperate.
func TestTCPWireInterop(t *testing.T) {
	for _, tc := range []struct{ fa, fb WireFormat }{
		{WireBinary, WireBinary},
		{WireJSON, WireJSON},
		{WireBinary, WireJSON},
		{WireJSON, WireBinary},
	} {
		t.Run(tc.fa.String()+"-to-"+tc.fb.String(), func(t *testing.T) {
			a, b := wirePair(t, tc.fa, tc.fb)
			if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 8, Latency: 2, SentTick: 3,
				Payload: bitp{informed: true}}, 0); err != nil {
				t.Fatal(err)
			}
			got := recvWithin(t, b.Recv(1), 5*time.Second)
			if p, ok := got.Payload.(bitp); !ok || !p.informed || got.EdgeID != 8 {
				t.Fatalf("a→b arrived mangled: %+v", got)
			}
			if err := b.Send(Message{Kind: MsgResponse, From: 1, To: 0, EdgeID: 8, Latency: 2, SentTick: 3,
				Payload: bitp{}}, 0); err != nil {
				t.Fatal(err)
			}
			got = recvWithin(t, a.Recv(0), 5*time.Second)
			if got.Kind != MsgResponse {
				t.Fatalf("b→a arrived mangled: %+v", got)
			}
			// Both directions acked: pendings must drain without retransmits.
			deadline := time.Now().Add(3 * time.Second)
			for a.pendingCount()+b.pendingCount() > 0 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if n := a.pendingCount() + b.pendingCount(); n != 0 {
				t.Errorf("%d sends still pending after acks", n)
			}
		})
	}
}

// TestDedupShardEviction drives the tick-windowed rotation directly: entries
// a window or more behind the newest tick are reclaimed, recent entries
// still deduplicate.
func TestDedupShardEviction(t *testing.T) {
	var s dedupShard
	const window = 64
	key := func(tick int) dedupKey { return dedupKey{edge: 1, from: 2, sentTick: tick, kind: MsgRequest} }
	for tick := 0; tick < 100*window; tick++ {
		if s.seen(key(tick), window) {
			t.Fatalf("fresh tick %d reported duplicate", tick)
		}
		if max := 2 * window; s.size() > max {
			t.Fatalf("shard holds %d entries at tick %d, want <= %d", s.size(), tick, max)
		}
	}
	last := 100*window - 1
	if !s.seen(key(last), window) {
		t.Error("entry within the window was evicted")
	}
	if s.seen(key(0), window) {
		t.Error("entry 100 windows old still deduplicated — never evicted")
	}
}

// TestTCPDedupWindowEviction is the transport-level half of the satellite:
// a long run of distinct ticks must not grow the dedup set without bound.
func TestTCPDedupWindowEviction(t *testing.T) {
	a, b := tcpPair(t)
	const window = 32
	b.SetDedupWindow(window)
	// Establish the pooled connection first so the burst below is delivered
	// in tick order (the pre-pool dial window delivers concurrently-queued
	// sends in arbitrary order, which legitimately delays rotation).
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: 0, Payload: bitp{}}, 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(1), 10*time.Second)

	const n = 2048
	for tick := 1; tick <= n; tick++ {
		if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: tick, Payload: bitp{}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for got := 0; got < n; got++ {
		recvWithin(t, b.Recv(1), 10*time.Second)
	}
	// Each of the 16 shards retains two generations of roughly a window of
	// its ticks each, so the live set stays far below the n distinct keys
	// it observed.
	if size := b.dedupSize(); size >= n/4 {
		t.Errorf("dedup holds %d entries after %d distinct ticks — eviction not reclaiming", size, n)
	}
	// An entry a hundred windows old must be gone: re-sending it is
	// delivered again rather than suppressed (it is far outside any
	// retransmission lifetime, so this cannot double-deliver live traffic).
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: 1, Payload: bitp{}}, 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(1), 10*time.Second)
	if got := b.DupsSuppressed(); got != 0 {
		t.Errorf("DupsSuppressed = %d — evicted entry still deduplicating", got)
	}
}

// TestTCPFlushCoalescing checks batched writes: with a flush window, a burst
// of sends shares a handful of flushes instead of paying one per message.
func TestTCPFlushCoalescing(t *testing.T) {
	a, b := tcpPair(t)
	a.SetFlushWindow(20 * time.Millisecond)
	const n = 64
	for i := 0; i < n; i++ {
		if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: i, Payload: bitp{}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for got := 0; got < n; got++ {
		recvWithin(t, b.Recv(1), 10*time.Second)
	}
	if f := a.WireFlushes(); f >= n/4 {
		t.Errorf("%d flushes for %d messages — writes are not batching", f, n)
	}
	if a.WireBytesOut() == 0 {
		t.Error("WireBytesOut = 0 after a delivered burst")
	}
}

// TestTCPBrokenConnImmediateRedial is the satellite-2 check: when a write
// hits a dead connection, the affected messages re-enter the retransmit path
// immediately instead of waiting out the RTO. With a 5s RTO, delivery well
// under that proves the immediate redial.
func TestTCPBrokenConnImmediateRedial(t *testing.T) {
	a, b := tcpPair(t)
	a.SetRetransmit(5*time.Second, 8)

	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: 1, Payload: bitp{}}, 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(1), 5*time.Second) // connection now pooled

	a.connMu.Lock()
	cs := a.outs[b.Addr().String()]
	a.connMu.Unlock()
	if cs == nil {
		t.Fatal("no pooled connection after first delivery")
	}
	cs.c.Close()

	start := time.Now()
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: 2, Payload: bitp{}}, 0); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, b.Recv(1), 4*time.Second)
	if got.SentTick != 2 {
		t.Fatalf("unexpected arrival %+v", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("redelivery took %v with a 5s RTO — broken-conn path did not retry immediately", elapsed)
	}
	if a.Dropped() != 0 {
		t.Errorf("Dropped = %d after successful recovery", a.Dropped())
	}
}

// TestTCPClusterBothFormats re-runs a small two-transport push-pull cluster
// under each wire format, checking the protocol outcome is identical: the
// encoding must be invisible to the algorithm.
func TestTCPClusterBothFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster is not -short friendly")
	}
	g := graph.Clique(16, 2)
	for _, f := range []WireFormat{WireBinary, WireJSON} {
		t.Run(f.String(), func(t *testing.T) {
			left := make([]graph.NodeID, 0, 8)
			right := make([]graph.NodeID, 0, 8)
			for u := 0; u < g.N(); u++ {
				if u < g.N()/2 {
					left = append(left, graph.NodeID(u))
				} else {
					right = append(right, graph.NodeID(u))
				}
			}
			ta, err := NewTCPTransport("127.0.0.1:0", left, 1024)
			if err != nil {
				t.Fatal(err)
			}
			defer ta.Close()
			tb, err := NewTCPTransport("127.0.0.1:0", right, 1024)
			if err != nil {
				t.Fatal(err)
			}
			defer tb.Close()
			ta.SetWireFormat(f)
			tb.SetWireFormat(f)
			addrs := make(map[graph.NodeID]string)
			for _, u := range left {
				addrs[u] = ta.Addr().String()
			}
			for _, u := range right {
				addrs[u] = tb.Addr().String()
			}
			ta.SetPeers(addrs)
			tb.SetPeers(addrs)

			var ra, rb Result
			var ea, eb error
			done := make(chan struct{}, 2)
			go func() {
				ra, ea = Run(g, ppProto{source: 0}, ta, Options{Seed: 5, Tick: time.Millisecond, Nodes: left, Linger: 2 * time.Second})
				done <- struct{}{}
			}()
			go func() {
				rb, eb = Run(g, ppProto{source: 0}, tb, Options{Seed: 5, Tick: time.Millisecond, Nodes: right, Linger: 2 * time.Second})
				done <- struct{}{}
			}()
			<-done
			<-done
			if ea != nil || eb != nil {
				t.Fatalf("run errors: %v / %v", ea, eb)
			}
			if !ra.Completed || !rb.Completed {
				t.Fatalf("cluster incomplete under %s wire", f)
			}
			informed := 0
			for _, u := range left {
				if ra.Done[u] {
					informed++
				}
			}
			for _, u := range right {
				if rb.Done[u] {
					informed++
				}
			}
			if informed != g.N() {
				t.Errorf("informed %d/%d under %s wire", informed, g.N(), f)
			}
		})
	}
}
