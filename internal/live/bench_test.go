package live

import (
	"bufio"
	"encoding/json"
	"io"
	"testing"
	"time"

	"gossip/internal/graph"
)

// benchTick makes SentTick globally unique across benchmark iterations so
// receiver dedup never suppresses a benchmark message.
var benchTick int

// benchLiveStream measures pipelined one-way delivery between two transports
// on the given fabric: b.N push-pull-sized messages are sent with zero
// latency delay while a drain goroutine consumes them, so the measured cost
// is the wire path — encode, batched write, read, ack, decode — not the
// protocol round trip. Reported metrics: msgs/sec and total wire bytes per
// delivered message (data frames from the sender plus ack traffic from the
// receiver).
func benchLiveStream(b *testing.B, fabric string, format WireFormat, window time.Duration, batched bool) {
	src, _ := newFabricTransport(b, fabric, []graph.NodeID{0}, 4096)
	defer src.Close()
	dst, dstAddr := newFabricTransport(b, fabric, []graph.NodeID{1}, 4096)
	defer dst.Close()
	src.SetWireFormat(format)
	dst.SetWireFormat(format)
	src.SetFlushWindow(window)
	dst.SetFlushWindow(window)
	src.SetBatching(batched)
	dst.SetBatching(batched)
	// A generous RTO keeps retransmissions out of a loopback measurement,
	// and unbounded queues keep the overload protection from shedding a
	// deliberately unthrottled firehose (the shed path has its own
	// benchmark: BenchmarkLiveTCPOverloadShed).
	src.SetRetransmit(10*time.Second, 4)
	src.SetOverloadLimits(-1, -1)
	src.SetPeers(map[graph.NodeID]string{1: dstAddr})

	msg := Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, Latency: 1, Payload: bitp{informed: true}}

	// Establish the pooled connection outside the timed region.
	msg.SentTick = benchTick
	benchTick++
	if err := src.Send(msg, 0); err != nil {
		b.Fatal(err)
	}
	<-dst.Recv(1)
	startBytes := src.WireBytesOut() + dst.WireBytesOut()

	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		inbox := dst.Recv(1)
		for i := 0; i < b.N; i++ {
			<-inbox
		}
	}()
	for i := 0; i < b.N; i++ {
		msg.SentTick = benchTick
		benchTick++
		if err := src.Send(msg, 0); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	b.StopTimer()

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	// Let the tail of the ack traffic land before reading the counters.
	deadline := time.Now().Add(5 * time.Second)
	for src.pendingCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	wire := src.WireBytesOut() + dst.WireBytesOut() - startBytes
	b.ReportMetric(float64(wire)/float64(b.N), "wireB/msg")
	if d := src.Dropped() + dst.Dropped(); d > 0 {
		b.Fatalf("%d messages dropped during benchmark", d)
	}
}

// BenchmarkLiveTCPBinary is the historical per-message configuration: binary
// frames, flush-on-drain write coalescing, one frame and one pend entry per
// message (batching off so the series stays comparable across PRs).
func BenchmarkLiveTCPBinary(b *testing.B) { benchLiveStream(b, "tcp", WireBinary, 0, false) }

// BenchmarkLiveTCPBatched is the default configuration since cross-daemon
// super-frames landed: everything bound for the same daemon that accumulates
// during the previous socket write coalesces into one FrameBatch frame with
// one pend entry, one retransmission timer and one ack for the whole batch.
func BenchmarkLiveTCPBatched(b *testing.B) { benchLiveStream(b, "tcp", WireBinary, 0, true) }

// BenchmarkLiveTCPBatchedWindowed widens the aggregation window to 200µs:
// bigger super-frames still, at the cost of added delivery latency.
func BenchmarkLiveTCPBatchedWindowed(b *testing.B) {
	benchLiveStream(b, "tcp", WireBinary, 200*time.Microsecond, true)
}

// BenchmarkLiveTCPJSON is the legacy JSON line protocol on the same batched
// writer — the baseline the ≥3× throughput / ≥5× frame-size targets are
// measured against.
func BenchmarkLiveTCPJSON(b *testing.B) { benchLiveStream(b, "tcp", WireJSON, 0, false) }

// BenchmarkLiveTCPBinaryWindowed adds a small flush window, trading up to
// 200µs of latency for wider batches (fewer, larger syscalls).
func BenchmarkLiveTCPBinaryWindowed(b *testing.B) {
	benchLiveStream(b, "tcp", WireBinary, 200*time.Microsecond, false)
}

// BenchmarkLiveUDS is BenchmarkLiveTCPBatched with the loopback TCP link
// replaced by a unix-domain socket: the identical wire bytes skip the TCP
// stack (checksums, Nagle/cork logic, loopback queueing), which is the
// entire difference in the numbers.
func BenchmarkLiveUDS(b *testing.B) { benchLiveStream(b, "unix", WireBinary, 0, true) }

// BenchmarkLiveShmRing is the same workload over the in-process shared-ring
// fabric: frames move producer-to-consumer through lock-free SPSC byte
// rings, with no syscall on the hot path.
func BenchmarkLiveShmRing(b *testing.B) { benchLiveStream(b, "ring", WireBinary, 0, true) }

// BenchmarkLiveTCPOverloadShed measures the bounded-queue path under
// deliberate overload: a tiny writer-queue cap against an unthrottled
// firehose, so a large fraction of sends resolve by oldest-first shedding
// instead of reaching the wire. The interesting metrics are msgs/sec (the
// cost of admission control, not delivery) and sheds/op.
func BenchmarkLiveTCPOverloadShed(b *testing.B) {
	src, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	dst, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{1}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	// A tight queue cap, a generous pend cap: the shed decision happens at
	// enqueue time. Retransmission is off so shed entries are terminal.
	src.SetRetransmit(10*time.Second, -1)
	src.SetOverloadLimits(64, -1)
	src.SetPeers(map[graph.NodeID]string{1: dst.Addr().String()})

	msg := Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, Latency: 1, Payload: bitp{informed: true}}
	msg.SentTick = benchTick
	benchTick++
	if err := src.Send(msg, 0); err != nil {
		b.Fatal(err)
	}
	<-dst.Recv(1)

	// Drain whatever survives shedding; the consumer stops when the sender
	// is done and the inbox goes quiet.
	stop := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		inbox := dst.Recv(1)
		for {
			select {
			case <-inbox:
			case <-stop:
				for {
					select {
					case <-inbox:
					case <-time.After(50 * time.Millisecond):
						return
					}
				}
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.SentTick = benchTick
		benchTick++
		if err := src.Send(msg, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-drained
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	b.ReportMetric(float64(src.Overload().ShedQueue)/float64(b.N), "sheds/op")
}

// BenchmarkLiveTCPCodec isolates the two codecs with no sockets: one
// encode+decode round trip of a push-pull frame per iteration.
func BenchmarkLiveTCPCodec(b *testing.B) {
	w := wireMessage{Kind: 1, Seq: 1, From: 0, To: 1, EdgeID: 1, Latency: 1, SentTick: 1,
		PayloadType: "live_test.bit", Payload: []byte(`true`)}
	b.Run("binary", func(b *testing.B) {
		var enc wireEnc
		var dec wireDec
		r := &loopReader{}
		br := bufio.NewReader(r)
		var got wireMessage
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Seq++
			w.SentTick++
			r.buf = enc.appendFrame(r.buf[:0], &w, nil)
			r.off = 0
			br.Reset(r)
			if _, _, err := dec.readFrame(br, &got); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		var got wireMessage
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Seq++
			w.SentTick++
			line, err := json.Marshal(&w)
			if err != nil {
				b.Fatal(err)
			}
			if err := json.Unmarshal(line, &got); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// loopReader replays one in-memory frame per reset.
type loopReader struct {
	buf []byte
	off int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}
