package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gossip/internal/graph"
)

// TestTCPClusterPushPull splits a 64-node ring of cliques across four
// runtimes, each behind its own TCP transport on loopback, and checks the
// cluster jointly completes push-pull: every runtime ends with all of its
// hosted nodes informed.
func TestTCPClusterPushPull(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-runtime TCP cluster is not -short friendly")
	}
	g := graph.RingOfCliques(8, 8, 4) // 64 nodes
	const parts = 4
	per := g.N() / parts

	// Phase 1: listen (port 0), so every transport learns its address.
	transports := make([]*TCPTransport, parts)
	hosted := make([][]graph.NodeID, parts)
	addrOf := make(map[graph.NodeID]string, g.N())
	for i := 0; i < parts; i++ {
		for u := i * per; u < (i+1)*per; u++ {
			hosted[i] = append(hosted[i], graph.NodeID(u))
		}
		tr, err := NewTCPTransport("127.0.0.1:0", hosted[i], 4096)
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		defer tr.Close()
		transports[i] = tr
		for _, u := range hosted[i] {
			addrOf[u] = tr.Addr().String()
		}
	}
	// Phase 2: exchange the address book.
	for _, tr := range transports {
		tr.SetPeers(addrOf)
	}

	// Phase 3: run the four runtimes concurrently. Linger keeps each
	// completed runtime answering pulls so slower partitions can finish.
	var wg sync.WaitGroup
	results := make([]Result, parts)
	errs := make([]error, parts)
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(g, ppProto{source: 0}, transports[i], Options{
				Seed:   11,
				Tick:   time.Millisecond,
				Nodes:  hosted[i],
				Linger: 2 * time.Second,
			})
		}(i)
	}
	wg.Wait()

	informed := 0
	for i := 0; i < parts; i++ {
		if errs[i] != nil {
			t.Fatalf("runtime %d: %v", i, errs[i])
		}
		if !results[i].Completed {
			t.Errorf("runtime %d did not complete", i)
		}
		for _, u := range hosted[i] {
			if results[i].Done[u] {
				informed++
			}
		}
	}
	if informed != g.N() {
		t.Errorf("informed %d/%d nodes across the cluster", informed, g.N())
	}
}

// TestTCPWireRoundTrip sends one request through a real socket pair and
// checks the decoded message matches, payload included.
func TestTCPWireRoundTrip(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeers(map[graph.NodeID]string{1: b.Addr().String()})

	want := Message{
		Kind: MsgRequest, From: 0, To: 1, EdgeID: 5, Latency: 3, SentTick: 9,
		Payload: bitp{informed: true},
	}
	if err := a.Send(want, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case got := <-b.Recv(1):
		if got.Kind != want.Kind || got.From != want.From || got.To != want.To ||
			got.EdgeID != want.EdgeID || got.Latency != want.Latency || got.SentTick != want.SentTick {
			t.Errorf("header mismatch: got %+v want %+v", got, want)
		}
		if p, ok := got.Payload.(bitp); !ok || !p.informed {
			t.Errorf("payload mismatch: %#v", got.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
	if n := a.Dropped() + b.Dropped(); n != 0 {
		t.Errorf("%d messages dropped", n)
	}
}

// TestTCPSendUnknownPeer checks the error paths: unmapped destination and
// unregistered payload type.
func TestTCPSendUnknownPeer(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(Message{To: 9, Payload: bitp{}}, 0); err == nil {
		t.Error("want error for unmapped peer")
	}
	a.SetPeers(map[graph.NodeID]string{9: "127.0.0.1:1"})
	if err := a.Send(Message{To: 9, Payload: struct{ z int }{}}, 0); err == nil {
		t.Error("want error for unregistered payload")
	}
}

// TestTCPLatencyDelay checks that the transport actually injects the delay:
// a message sent with 40ms delay must not arrive markedly earlier.
func TestTCPLatencyDelay(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeers(map[graph.NodeID]string{1: b.Addr().String()})

	const delay = 40 * time.Millisecond
	start := time.Now()
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, Payload: bitp{}}, delay); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv(1):
		if elapsed := time.Since(start); elapsed < delay-5*time.Millisecond {
			t.Errorf("message arrived after %v, want >= %v", elapsed, delay)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
}

// TestTCPDialRetry checks a cluster can start in any order: the sender's
// first write happens before the receiver exists.
func TestTCPDialRetry(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Reserve an address, then release it so the peer can claim it later.
	probe, err := NewTCPTransport("127.0.0.1:0", nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	a.SetPeers(map[graph.NodeID]string{1: addr})
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, Payload: bitp{}}, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // sender is already retrying the dial
	b, err := NewTCPTransport(addr, []graph.NodeID{1}, 8)
	if err != nil {
		t.Fatalf("late receiver on %s: %v", addr, err)
	}
	defer b.Close()
	select {
	case got := <-b.Recv(1):
		if got.From != 0 {
			t.Errorf("unexpected sender %d", got.From)
		}
	case <-time.After(10 * time.Second):
		t.Fatal(fmt.Sprintf("message never arrived after retry (dropped=%d)", a.Dropped()))
	}
}
