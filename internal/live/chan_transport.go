package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
)

// DefaultInboxBuffer is the per-node inbox capacity used when a transport is
// built with buffer <= 0. It only bounds memory: a full inbox delays the
// sender's timer goroutine, it never drops a message while the transport is
// open.
const DefaultInboxBuffer = 1024

// ChanTransport is the in-process transport: one buffered channel per node,
// with each edge's latency injected as a real timer delay. It is the live
// counterpart of the simulator's round calendar and the transport used by
// gossip.RunLive.
type ChanTransport struct {
	inboxes     []chan Message
	timers      timerShards  // sharded by destination so senders don't serialize
	dropsClosed atomic.Int64 // deliveries abandoned at Close
	closed      chan struct{}
	closeOnce   sync.Once
}

var _ Transport = (*ChanTransport)(nil)
var _ FaultReporter = (*ChanTransport)(nil)

// NewChanTransport builds an in-process transport hosting nodes 0..n-1 with
// the given per-node inbox capacity (<= 0 means DefaultInboxBuffer).
func NewChanTransport(n, buffer int) *ChanTransport {
	if buffer <= 0 {
		buffer = DefaultInboxBuffer
	}
	t := &ChanTransport{
		inboxes: make([]chan Message, n),
		closed:  make(chan struct{}),
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan Message, buffer)
	}
	return t
}

// Send implements Transport by scheduling an in-memory delivery after delay.
func (t *ChanTransport) Send(msg Message, delay time.Duration) error {
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	if msg.To < 0 || int(msg.To) >= len(t.inboxes) {
		return fmt.Errorf("live: destination %d out of range [0,%d)", msg.To, len(t.inboxes))
	}
	if !deliverAfter(t.timers.shard(uint64(msg.To)), t.inboxes[msg.To], msg, delay, t.closed) {
		t.dropsClosed.Add(1)
		return ErrTransportClosed
	}
	return nil
}

// Recv implements Transport.
func (t *ChanTransport) Recv(u graph.NodeID) <-chan Message {
	if u < 0 || int(u) >= len(t.inboxes) {
		return nil
	}
	return t.inboxes[u]
}

// Close implements Transport; pending deliveries are stopped, counted, and
// abandoned.
func (t *ChanTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.dropsClosed.Add(t.timers.close())
	})
	return nil
}

// PendingDeliveries returns the number of armed delivery timers — zero after
// Close (the timer-hygiene guarantee tests rely on).
func (t *ChanTransport) PendingDeliveries() int { return t.timers.len() }

// Drain implements Drainer: in-process delivery has no write queues to
// flush, so draining means letting the armed latency timers fire until ctx
// expires, then closing (which abandons and counts whatever remains).
func (t *ChanTransport) Drain(ctx context.Context) (DrainReport, error) {
	start := time.Now()
	rep := DrainReport{}
	for t.timers.len() > 0 {
		select {
		case <-ctx.Done():
			rep.QueuedAtClose = t.timers.len()
			t.Close()
			rep.Wall = time.Since(start)
			return rep, ctx.Err()
		case <-t.closed:
			rep.Wall = time.Since(start)
			return rep, ErrTransportClosed
		case <-time.After(time.Millisecond):
		}
	}
	rep.Clean = true
	t.Close()
	rep.Wall = time.Since(start)
	return rep, nil
}

// Faults implements FaultReporter: the channel transport's only loss path is
// deliveries abandoned at Close.
func (t *ChanTransport) Faults() FaultReport {
	return FaultReport{FaultCounts: FaultCounts{TransportDrops: t.dropsClosed.Load()}}
}
