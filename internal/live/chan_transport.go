package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
)

// DefaultInboxBuffer is the per-node inbox capacity used when a transport is
// built with buffer <= 0. It only bounds memory: a full inbox delays the
// sender's delivery callback, it never drops a message while the transport is
// open.
const DefaultInboxBuffer = 1024

// ChanTransport is the in-process transport, with each edge's latency
// injected as a real timer delay on a shared hierarchical timer wheel. It is
// the live counterpart of the simulator's round calendar and the transport
// used by gossip.RunLive.
//
// When the sharded runtime installs a DeliverySink, locally destined traffic
// bypasses inbox channels entirely — the sink hands each message to the
// owning shard, which applies the delay on its own wheel. Inbox channels are
// materialized lazily, only for nodes a caller actually Recvs on (raw
// transport tests, foreign runtimes), so hosting 100k nodes does not allocate
// 100k buffered channels up front.
type ChanTransport struct {
	n           int
	buffer      int
	mu          sync.Mutex     // guards inboxes
	inboxes     []chan Message // lazily created; nil until first use
	sink        atomic.Pointer[DeliverySink]
	delays      *timerWheel  // armed latency delays for legacy inbox deliveries
	dropsClosed atomic.Int64 // deliveries abandoned at Close
	closed      chan struct{}
	closeOnce   sync.Once
}

var _ Transport = (*ChanTransport)(nil)
var _ SinkTransport = (*ChanTransport)(nil)
var _ FaultReporter = (*ChanTransport)(nil)

// NewChanTransport builds an in-process transport hosting nodes 0..n-1 with
// the given per-node inbox capacity (<= 0 means DefaultInboxBuffer).
func NewChanTransport(n, buffer int) *ChanTransport {
	if buffer <= 0 {
		buffer = DefaultInboxBuffer
	}
	return &ChanTransport{
		n:       n,
		buffer:  buffer,
		inboxes: make([]chan Message, n),
		delays:  newTimerWheel(0),
		closed:  make(chan struct{}),
	}
}

// inbox returns u's inbox channel, creating it on first use.
func (t *ChanTransport) inbox(u graph.NodeID) chan Message {
	t.mu.Lock()
	ch := t.inboxes[u]
	if ch == nil {
		ch = make(chan Message, t.buffer)
		t.inboxes[u] = ch
	}
	t.mu.Unlock()
	return ch
}

// Send implements Transport by scheduling an in-memory delivery after delay.
func (t *ChanTransport) Send(msg Message, delay time.Duration) error {
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	if msg.To < 0 || int(msg.To) >= t.n {
		return fmt.Errorf("live: destination %d out of range [0,%d)", msg.To, t.n)
	}
	if s := t.sink.Load(); s != nil && (*s)(msg, delay) {
		return nil
	}
	tm := t.delays.schedule(delay, func() {
		select {
		case t.inbox(msg.To) <- msg:
		case <-t.closed:
		}
	})
	if tm == nil {
		t.dropsClosed.Add(1)
		return ErrTransportClosed
	}
	return nil
}

// Recv implements Transport.
func (t *ChanTransport) Recv(u graph.NodeID) <-chan Message {
	if u < 0 || int(u) >= t.n {
		return nil
	}
	return t.inbox(u)
}

// Hosts implements SinkTransport without materializing an inbox.
func (t *ChanTransport) Hosts(u graph.NodeID) bool {
	return u >= 0 && int(u) < t.n
}

// SetSink implements SinkTransport.
func (t *ChanTransport) SetSink(sink DeliverySink) bool {
	if sink == nil {
		t.sink.Store(nil)
	} else {
		t.sink.Store(&sink)
	}
	return true
}

// Close implements Transport; pending deliveries are stopped, counted, and
// abandoned.
func (t *ChanTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.dropsClosed.Add(t.delays.close())
	})
	return nil
}

// PendingDeliveries returns the number of armed delivery timers — zero after
// Close (the timer-hygiene guarantee tests rely on).
func (t *ChanTransport) PendingDeliveries() int { return t.delays.len() }

// Drain implements Drainer: in-process delivery has no write queues to
// flush, so draining means letting the armed latency delays fire until ctx
// expires, then closing (which abandons and counts whatever remains).
func (t *ChanTransport) Drain(ctx context.Context) (DrainReport, error) {
	start := time.Now()
	rep := DrainReport{}
	poll := time.NewTimer(time.Millisecond)
	defer poll.Stop()
	for t.delays.len() > 0 {
		select {
		case <-ctx.Done():
			rep.QueuedAtClose = t.delays.len()
			t.Close()
			rep.Wall = time.Since(start)
			return rep, ctx.Err()
		case <-t.closed:
			rep.Wall = time.Since(start)
			return rep, ErrTransportClosed
		case <-poll.C:
			poll.Reset(time.Millisecond)
		}
	}
	rep.Clean = true
	t.Close()
	rep.Wall = time.Since(start)
	return rep, nil
}

// Faults implements FaultReporter: the channel transport's only loss path is
// deliveries abandoned at Close.
func (t *ChanTransport) Faults() FaultReport {
	return FaultReport{FaultCounts: FaultCounts{TransportDrops: t.dropsClosed.Load()}}
}
