package live

import (
	"testing"
	"time"

	"gossip/internal/graph"
)

// tcpPair builds two connected single-node transports for reliability tests.
func tcpPair(t *testing.T) (a, b *TCPTransport) {
	t.Helper()
	a, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err = NewTCPTransport("127.0.0.1:0", []graph.NodeID{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	a.SetPeers(map[graph.NodeID]string{1: b.Addr().String()})
	b.SetPeers(map[graph.NodeID]string{0: a.Addr().String()})
	return a, b
}

func recvWithin(t *testing.T, ch <-chan Message, d time.Duration) Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(d):
		t.Fatal("message never arrived")
		return Message{}
	}
}

// TestFaultTCPRetransmitRecoversConnLoss kills the pooled outbound
// connection under the sender's feet: the next write fails, the broken
// connection is evicted, and the retransmission redials and delivers. The
// message survives a real network fault with no drop recorded.
func TestFaultTCPRetransmitRecoversConnLoss(t *testing.T) {
	a, b := tcpPair(t)
	a.SetRetransmit(30*time.Millisecond, 8)

	first := Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: 1, Payload: bitp{}}
	if err := a.Send(first, 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(1), 5*time.Second) // connection now pooled

	// Sever the pooled connection out from under the transport.
	a.connMu.Lock()
	cs := a.outs[b.Addr().String()]
	a.connMu.Unlock()
	if cs == nil {
		t.Fatal("no pooled connection after first delivery")
	}
	cs.c.Close()

	second := Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 1, SentTick: 2, Payload: bitp{}}
	if err := a.Send(second, 0); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, b.Recv(1), 5*time.Second)
	if got.SentTick != 2 {
		t.Errorf("unexpected arrival %+v", got)
	}
	if a.Dropped() != 0 {
		t.Errorf("Dropped = %d after successful recovery", a.Dropped())
	}
	// Depending on when the OS surfaces the broken pipe, the first write may
	// appear to succeed locally; the retransmission path is what guarantees
	// delivery either way. Give the counter a moment to settle.
	deadline := time.Now().Add(2 * time.Second)
	for a.Retransmits() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if a.Retransmits() == 0 {
		t.Log("delivery recovered without a counted retransmit (first write won the race)")
	}
}

// TestFaultTCPDedupSuppressesDuplicates sends the same exchange half twice:
// the receiver must deliver it once and count the duplicate.
func TestFaultTCPDedupSuppressesDuplicates(t *testing.T) {
	a, b := tcpPair(t)
	msg := Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 4, SentTick: 7, Payload: bitp{informed: true}}
	if err := a.Send(msg, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(msg, 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(1), 5*time.Second)

	deadline := time.Now().Add(3 * time.Second)
	for b.DupsSuppressed() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := b.DupsSuppressed(); got != 1 {
		t.Fatalf("DupsSuppressed = %d, want 1", got)
	}
	select {
	case m := <-b.Recv(1):
		t.Fatalf("duplicate delivered: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
	// A different exchange half on the same edge and tick (the peer's own
	// initiation) is NOT a duplicate: From disambiguates.
	if err := b.Send(Message{Kind: MsgRequest, From: 1, To: 0, EdgeID: 4, SentTick: 7, Payload: bitp{}}, 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, a.Recv(0), 5*time.Second)
}

// TestFaultTCPGiveUpCountsDrop exhausts the retransmission budget against a
// peer that never exists: the message must be abandoned and surface in
// Dropped() — every drop path is a visible counter, never a silent loss.
func TestFaultTCPGiveUpCountsDrop(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Reserve-and-release a port so nothing listens there.
	probe, err := NewTCPTransport("127.0.0.1:0", nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	dead := probe.Addr().String()
	probe.Close()

	a.SetPeers(map[graph.NodeID]string{1: dead})
	a.SetDialTimeout(50 * time.Millisecond)
	a.SetRetransmit(20*time.Millisecond, 2)
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, Payload: bitp{}}, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := a.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d after give-up, want 1", got)
	}
	if rep := a.Faults(); rep.TransportDrops != 1 {
		t.Errorf("FaultReport.TransportDrops = %d, want 1", rep.TransportDrops)
	}
}

// TestFaultTCPAckClearsPending checks the happy path of reliable delivery:
// once the ack returns, the pending map is empty and no retransmission fires.
func TestFaultTCPAckClearsPending(t *testing.T) {
	a, b := tcpPair(t)
	a.SetRetransmit(50*time.Millisecond, 4)
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 2, SentTick: 3, Payload: bitp{}}, 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(1), 5*time.Second)

	deadline := time.Now().Add(3 * time.Second)
	for a.pendingCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := a.pendingCount(); n != 0 {
		t.Fatalf("%d sends still pending after ack", n)
	}
	// Long enough for several RTOs: an unacked entry would retransmit.
	time.Sleep(150 * time.Millisecond)
	if got := a.Retransmits(); got != 0 {
		t.Errorf("Retransmits = %d after clean ack, want 0", got)
	}
	if a.Dropped() != 0 {
		t.Errorf("Dropped = %d on the happy path", a.Dropped())
	}
}

// runScriptedTCPFaults feeds a deterministic schedule through per-side
// FaultTransports over a two-transport TCP cluster speaking wire format wf,
// waits for the reliable-delivery layer to drain, and returns the arrival
// multiset plus the summed injected-fault counters. It is the TCP face of
// the fabric-generic runScriptedFaults (fabric_test.go).
func runScriptedTCPFaults(t *testing.T, g *graph.Graph, feed []Message, cfg FaultConfig, wf WireFormat, batched bool) (map[arrivalKey]int, FaultCounts) {
	t.Helper()
	return runScriptedFaults(t, "tcp", g, feed, cfg, wf, batched)
}

// TestFaultTCPDeterministicAcrossWireFormats is the chaos determinism check
// across encodings: the same fault plan over the same message schedule must
// drop, duplicate and jitter exactly the same messages whether the frames on
// the wire are binary or JSON. Fault decisions are a PRF of message identity
// taken before any codec runs, so the wire format cannot perturb them.
func TestFaultTCPDeterministicAcrossWireFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster run is not -short friendly")
	}
	g := graph.Dumbbell(4, 2)
	var left, right []graph.NodeID
	for u := 0; u < g.N(); u++ {
		if u < g.N()/2 {
			left = append(left, graph.NodeID(u))
		} else {
			right = append(right, graph.NodeID(u))
		}
	}
	cfg := FaultConfig{
		Seed:        77,
		Drop:        0.10,
		Duplicate:   0.05,
		JitterTicks: 2,
		Tick:        time.Millisecond,
		Partitions:  []Partition{{From: 2, Until: 4, Edges: CutBetween(g, left, right)}},
	}
	feed := scriptedFeed(g, 6)

	gotBin, repBin := runScriptedTCPFaults(t, g, feed, cfg, WireBinary, true)
	gotJSON, repJSON := runScriptedTCPFaults(t, g, feed, cfg, WireJSON, true)

	if repBin != repJSON {
		t.Errorf("injected fault counters differ across wire formats:\nbinary: %+v\njson:   %+v", repBin, repJSON)
	}
	if repBin.InjectedDrops == 0 || repBin.Jittered == 0 || repBin.PartitionDrops == 0 {
		t.Errorf("fault plan injected nothing on some axis: %+v", repBin)
	}
	if len(gotBin) != len(gotJSON) {
		t.Fatalf("arrival multisets differ in size: binary=%d json=%d", len(gotBin), len(gotJSON))
	}
	for k, n := range gotBin {
		if gotJSON[k] != n {
			t.Errorf("arrival %+v: binary=%d json=%d deliveries", k, n, gotJSON[k])
		}
	}
}

// TestFaultTCPDeterministicAcrossBatching is the chaos-parity check for the
// super-frame path: FaultTransport decisions are made per LOGICAL message in
// Send, before the transport ever aggregates, so running the identical fault
// plan with batching on and off must yield the identical FaultReport and the
// identical arrival multiset. If a fault decision ever moved to super-frame
// granularity, one dropped frame would take out a whole batch and this
// diverges immediately.
func TestFaultTCPDeterministicAcrossBatching(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster run is not -short friendly")
	}
	g := graph.Dumbbell(4, 2)
	var left, right []graph.NodeID
	for u := 0; u < g.N(); u++ {
		if u < g.N()/2 {
			left = append(left, graph.NodeID(u))
		} else {
			right = append(right, graph.NodeID(u))
		}
	}
	cfg := FaultConfig{
		Seed:        913,
		Drop:        0.10,
		Duplicate:   0.05,
		JitterTicks: 2,
		Tick:        time.Millisecond,
		Partitions:  []Partition{{From: 2, Until: 4, Edges: CutBetween(g, left, right)}},
	}
	feed := scriptedFeed(g, 6)

	gotBatched, repBatched := runScriptedTCPFaults(t, g, feed, cfg, WireBinary, true)
	gotSingle, repSingle := runScriptedTCPFaults(t, g, feed, cfg, WireBinary, false)

	if repBatched != repSingle {
		t.Errorf("injected fault counters differ across batching modes:\nbatched:   %+v\nunbatched: %+v", repBatched, repSingle)
	}
	if repBatched.InjectedDrops == 0 || repBatched.Jittered == 0 || repBatched.PartitionDrops == 0 {
		t.Errorf("fault plan injected nothing on some axis: %+v", repBatched)
	}
	if len(gotBatched) != len(gotSingle) {
		t.Fatalf("arrival multisets differ in size: batched=%d unbatched=%d", len(gotBatched), len(gotSingle))
	}
	for k, n := range gotBatched {
		if gotSingle[k] != n {
			t.Errorf("arrival %+v: batched=%d unbatched=%d deliveries", k, n, gotSingle[k])
		}
	}
}

// TestFaultTCPCloseCountsPendingTimers checks Close-time accounting: armed
// latency timers and unacked pending sends both land in Dropped().
func TestFaultTCPCloseCountsPendingTimers(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers(map[graph.NodeID]string{1: "127.0.0.1:1"})
	// An hour out: still an armed timer at Close.
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, Payload: bitp{}}, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := a.Dropped(); got != 1 {
		t.Errorf("Dropped = %d after Close with one armed delivery, want 1", got)
	}
	if err := a.Send(Message{Kind: MsgRequest, From: 0, To: 1, Payload: bitp{}}, 0); err == nil {
		t.Error("Send after Close succeeded")
	}
}
