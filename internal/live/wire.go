package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the binary wire codec of the TCP transport: a length-prefixed
// frame format that replaces the JSON line protocol on the hot path. The JSON
// format is retained behind WireJSON for debugging (gossipd -wire json);
// receivers auto-detect the format per connection from the first byte, so a
// binary daemon and a JSON daemon interoperate.
//
// Frame layout (all integers varint-encoded unless noted):
//
//	frame   := header(1B) bodyLen(uvarint) body
//	header  := version nibble (0001) | flag nibble
//	flags   := 0x1 frame carries a data message
//	           0x2 frame carries piggybacked acks
//	           0x4 frame is a FrameBatch super-frame (excludes 0x1)
//	body    := [acks] [data]                       // single-message frame
//	         | [acks] count(uvarint) data ...      // FrameBatch: count >= 1
//	acks    := count(uvarint) seq0(uvarint) delta1(uvarint) ...   // ascending
//	data    := kind(1B) seqDelta(varint) from(varint) to(varint) edge(varint)
//	           latency(varint) tickDelta(varint) ptype payload
//	ptype   := 0                                  // no payload type
//	         | 1 nameLen(uvarint) name            // define: appended to table
//	         | n>=2                               // reference to table[n-2]
//	payload := len(uvarint) bytes
//
// The header's version nibble (0x10 for v1) doubles as the format detector:
// no JSON frame starts with 0x10..0x1F, and no binary frame starts with '{'.
// Signed fields use zigzag varints (binary.AppendVarint) so any int
// round-trips; acks are sorted and delta-encoded, so a batch of k
// consecutive acks costs ~k+3 bytes instead of k frames. Payload type names
// are interned per connection: the first frame carrying a type pays for the
// name, every later frame references it with one byte.
//
// A FrameBatch super-frame (flag 0x4) carries N data sub-messages under one
// header: every sub-message uses the identical field encoding as a single
// data frame and the whole batch shares the connection's intern table and
// Seq/SentTick delta chains, so a run of near-consecutive messages costs a
// handful of bytes each. Acks hoist to the batch header exactly as on single
// frames. The receiver acknowledges a batch once, with the Seq of its last
// sub-message — the sender bookkeeps reliable delivery per batch, not per
// message.
//
// Seq and SentTick are delta-encoded against per-connection running state
// (seqDelta is relative to lastSeq+1, tickDelta to lastTick, both with
// two's-complement wraparound so every value round-trips): a connection's
// sequence numbers and ticks are near-monotonic, so both usually cost one
// byte instead of growing with the run length. Both codec halves carry
// connection state (these deltas, the intern table), so a decoder must see a
// connection's frames in order from the start — exactly what a TCP stream
// provides.

// WireFormat selects the TCP transport's frame encoding.
type WireFormat uint8

const (
	// WireBinary is the length-prefixed binary format above (the default).
	WireBinary WireFormat = iota
	// WireJSON is the legacy JSON line format, kept for debugging and
	// wire-level inspection (gossipd -wire json).
	WireJSON
)

// String returns the gossipd -wire spelling of the format.
func (f WireFormat) String() string {
	switch f {
	case WireBinary:
		return "binary"
	case WireJSON:
		return "json"
	}
	return fmt.Sprintf("WireFormat(%d)", uint8(f))
}

// ParseWireFormat parses a -wire flag value.
func ParseWireFormat(s string) (WireFormat, error) {
	switch strings.ToLower(s) {
	case "binary", "bin":
		return WireBinary, nil
	case "json":
		return WireJSON, nil
	}
	return WireBinary, fmt.Errorf("live: unknown wire format %q (want binary or json)", s)
}

const (
	wireVersion     = 0x10 // version 1 in the high nibble
	wireVersionMask = 0xF0
	wireFlagData    = 0x01
	wireFlagAcks    = 0x02
	wireFlagBatch   = 0x04

	// maxWireBody bounds one frame body so a corrupt length prefix cannot
	// trigger an arbitrarily large allocation.
	maxWireBody = 1 << 22

	// maxBatchMsgs bounds the sub-messages one FrameBatch super-frame
	// carries. The aggregating writer splits a larger drain into multiple
	// super-frames, so one frame stays well under maxWireBody even with
	// worst-case payloads.
	maxBatchMsgs = 1024

	// maxInternedTypes bounds the per-connection payload-type intern table:
	// a frame that would define a type past the cap is rejected as malformed,
	// so a misbehaving peer cannot grow decoder state without limit.
	// RegisterPayload refuses registrations past the same cap, so a
	// conforming encoder can never hit it.
	maxInternedTypes = 64
)

var errMalformedFrame = fmt.Errorf("live: malformed binary frame")

// wireEnc is the encoder half of one connection: the payload-type intern
// table plus a reusable body scratch buffer. It is owned by the connection's
// writer goroutine and needs no locking.
type wireEnc struct {
	names    map[string]uint64
	scratch  []byte
	lastSeq  uint64
	lastTick int64
}

// appendAcks appends the sorted, delta-encoded ack block to body. acks is
// sorted in place.
func appendAcks(body []byte, acks []uint64) []byte {
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	body = binary.AppendUvarint(body, uint64(len(acks)))
	prev := uint64(0)
	for i, s := range acks {
		if i == 0 {
			body = binary.AppendUvarint(body, s)
		} else {
			body = binary.AppendUvarint(body, s-prev)
		}
		prev = s
	}
	return body
}

// appendSub appends one data sub-message to body, advancing the connection's
// delta chains and intern table. Shared by single data frames and FrameBatch
// super-frames — both carry the identical field encoding.
func (e *wireEnc) appendSub(body []byte, w *wireMessage) []byte {
	body = append(body, w.Kind)
	body = binary.AppendVarint(body, int64(w.Seq-(e.lastSeq+1)))
	e.lastSeq = w.Seq
	body = binary.AppendVarint(body, int64(w.From))
	body = binary.AppendVarint(body, int64(w.To))
	body = binary.AppendVarint(body, int64(w.EdgeID))
	body = binary.AppendVarint(body, int64(w.Latency))
	body = binary.AppendVarint(body, int64(w.SentTick)-e.lastTick)
	e.lastTick = int64(w.SentTick)
	switch {
	case w.PayloadType == "":
		body = binary.AppendUvarint(body, 0)
	default:
		id, known := e.names[w.PayloadType]
		if known {
			body = binary.AppendUvarint(body, id+2)
		} else {
			if e.names == nil {
				e.names = make(map[string]uint64)
			}
			e.names[w.PayloadType] = uint64(len(e.names))
			body = binary.AppendUvarint(body, 1)
			body = binary.AppendUvarint(body, uint64(len(w.PayloadType)))
			body = append(body, w.PayloadType...)
		}
	}
	body = binary.AppendUvarint(body, uint64(len(w.Payload)))
	return append(body, w.Payload...)
}

// appendFrame appends one encoded frame to dst: the data message (nil for an
// ack-only frame) plus any piggybacked acks. acks is sorted in place.
func (e *wireEnc) appendFrame(dst []byte, w *wireMessage, acks []uint64) []byte {
	body := e.scratch[:0]
	var flags byte
	if len(acks) > 0 {
		flags |= wireFlagAcks
		body = appendAcks(body, acks)
	}
	if w != nil {
		flags |= wireFlagData
		body = e.appendSub(body, w)
	}
	e.scratch = body
	dst = append(dst, wireVersion|flags)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// appendBatchFrame appends one FrameBatch super-frame to dst: len(msgs) >= 1
// data sub-messages sharing this connection's intern table and delta chains
// under a single header, plus any piggybacked acks hoisted to the batch
// header. acks is sorted in place.
func (e *wireEnc) appendBatchFrame(dst []byte, msgs []wireMessage, acks []uint64) []byte {
	body := e.scratch[:0]
	flags := byte(wireFlagBatch)
	if len(acks) > 0 {
		flags |= wireFlagAcks
		body = appendAcks(body, acks)
	}
	body = binary.AppendUvarint(body, uint64(len(msgs)))
	for i := range msgs {
		body = e.appendSub(body, &msgs[i])
	}
	e.scratch = body
	dst = append(dst, wireVersion|flags)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// wireDec is the decoder half of one connection: the mirrored intern table
// plus reusable body, ack, and sub-message buffers. Owned by the
// connection's read loop.
type wireDec struct {
	names    []string
	body     []byte
	acks     []uint64
	msgs     []wireMessage
	lastSeq  uint64
	lastTick int64
}

// decodeSub decodes one data sub-message at off, filling *w and returning
// the new offset. w.Payload and w.PayloadType alias decoder-owned buffers.
func (d *wireDec) decodeSub(body []byte, off int, w *wireMessage) (int, error) {
	if off >= len(body) {
		return off, errMalformedFrame
	}
	*w = wireMessage{Kind: body[off]}
	off++
	seqDelta, off, err := varintAt(body, off)
	if err != nil {
		return off, err
	}
	w.Seq = d.lastSeq + 1 + uint64(seqDelta)
	d.lastSeq = w.Seq
	ints := [4]*int{&w.From, &w.To, &w.EdgeID, &w.Latency}
	for _, p := range ints {
		v, o, err := varintAt(body, off)
		if err != nil {
			return off, err
		}
		*p, off = int(v), o
	}
	tickDelta, off, err := varintAt(body, off)
	if err != nil {
		return off, err
	}
	d.lastTick += tickDelta
	w.SentTick = int(d.lastTick)
	code, off, err := uvarintAt(body, off)
	if err != nil {
		return off, err
	}
	switch {
	case code == 0:
		// no payload type
	case code == 1:
		if len(d.names) >= maxInternedTypes {
			return off, fmt.Errorf("%w: payload type table full (%d entries)", errMalformedFrame, maxInternedTypes)
		}
		nameLen, o, err := uvarintAt(body, off)
		if err != nil {
			return off, err
		}
		off = o
		if nameLen > uint64(len(body)-off) {
			return off, errMalformedFrame
		}
		name := string(body[off : off+int(nameLen)])
		off += int(nameLen)
		d.names = append(d.names, name)
		w.PayloadType = name
	default:
		idx := code - 2
		if idx >= uint64(len(d.names)) {
			return off, fmt.Errorf("%w: payload type ref %d beyond table of %d", errMalformedFrame, idx, len(d.names))
		}
		w.PayloadType = d.names[idx]
	}
	payLen, off, err := uvarintAt(body, off)
	if err != nil {
		return off, err
	}
	if payLen > uint64(len(body)-off) {
		return off, errMalformedFrame
	}
	if payLen > 0 {
		w.Payload = body[off : off+int(payLen)]
		off += int(payLen)
	}
	return off, nil
}

// readFrameMulti reads one frame and decodes every data message it carries:
// zero (an ack-only frame), one (a single data frame), or N (a FrameBatch
// super-frame — batch reports which, so the receiver can acknowledge the
// whole batch once with the last sub-message's Seq). The returned slices and
// every msg's Payload alias decoder-owned buffers that are reused by the
// next call, so all must be consumed before then. On error nothing is
// returned: a frame decodes whole or not at all.
func (d *wireDec) readFrameMulti(br *bufio.Reader) (acks []uint64, msgs []wireMessage, batch bool, err error) {
	b0, err := br.ReadByte()
	if err != nil {
		return nil, nil, false, err
	}
	if b0&wireVersionMask != wireVersion {
		return nil, nil, false, fmt.Errorf("%w: unknown header 0x%02x", errMalformedFrame, b0)
	}
	flags := b0 &^ byte(wireVersionMask)
	if flags&wireFlagBatch != 0 && flags&wireFlagData != 0 {
		return nil, nil, false, fmt.Errorf("%w: batch and data flags together", errMalformedFrame)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, false, err
	}
	if n > maxWireBody {
		return nil, nil, false, fmt.Errorf("%w: body of %d bytes exceeds limit", errMalformedFrame, n)
	}
	if uint64(cap(d.body)) < n {
		d.body = make([]byte, n)
	}
	body := d.body[:n]
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, nil, false, err
	}

	// Delta chains and the intern table advance as we decode; snapshot them so
	// a malformed tail can roll the connection state back to the frame
	// boundary (the caller tears the connection down on errMalformedFrame, but
	// the all-or-nothing contract keeps fuzzing oracles honest).
	savedSeq, savedTick, savedNames := d.lastSeq, d.lastTick, len(d.names)
	defer func() {
		if err != nil {
			d.lastSeq, d.lastTick, d.names = savedSeq, savedTick, d.names[:savedNames]
		}
	}()

	off := 0
	if flags&wireFlagAcks != 0 {
		count, o, err := uvarintAt(body, off)
		if err != nil {
			return nil, nil, false, err
		}
		off = o
		if count > uint64(len(body)) { // each ack costs at least one byte
			return nil, nil, false, errMalformedFrame
		}
		d.acks = d.acks[:0]
		seq := uint64(0)
		for i := uint64(0); i < count; i++ {
			delta, o, err := uvarintAt(body, off)
			if err != nil {
				return nil, nil, false, err
			}
			off = o
			seq += delta
			d.acks = append(d.acks, seq)
		}
		acks = d.acks
	}

	count := uint64(0)
	switch {
	case flags&wireFlagBatch != 0:
		c, o, err := uvarintAt(body, off)
		if err != nil {
			return nil, nil, false, err
		}
		off = o
		if c == 0 || c > uint64(len(body)) { // each sub-message costs >= 1 byte
			return nil, nil, false, fmt.Errorf("%w: batch of %d sub-messages in %d-byte body", errMalformedFrame, c, len(body))
		}
		count, batch = c, true
	case flags&wireFlagData != 0:
		count = 1
	default:
		if off != len(body) {
			return nil, nil, false, errMalformedFrame
		}
		return acks, nil, false, nil
	}

	d.msgs = d.msgs[:0]
	for i := uint64(0); i < count; i++ {
		var w wireMessage
		o, err := d.decodeSub(body, off, &w)
		if err != nil {
			return nil, nil, false, err
		}
		off = o
		d.msgs = append(d.msgs, w)
	}
	if off != len(body) {
		return nil, nil, false, errMalformedFrame
	}
	return acks, d.msgs, batch, nil
}

// readFrame reads and decodes one frame carrying at most one data message —
// the pre-batching call shape, kept for tests and the codec benchmark. On
// hasData it fills *w; the returned ack slice and w.Payload alias
// decoder-owned buffers that are reused by the next call, so both must be
// consumed before then. A FrameBatch super-frame is rejected here; stream
// consumers use readFrameMulti.
func (d *wireDec) readFrame(br *bufio.Reader, w *wireMessage) (acks []uint64, hasData bool, err error) {
	acks, msgs, batch, err := d.readFrameMulti(br)
	if err != nil {
		return nil, false, err
	}
	if batch {
		return nil, false, fmt.Errorf("%w: unexpected batch frame", errMalformedFrame)
	}
	if len(msgs) == 0 {
		return acks, false, nil
	}
	*w = msgs[0]
	return acks, true, nil
}

// uvarintAt decodes a uvarint at off, returning the value and the new offset.
func uvarintAt(b []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, off, errMalformedFrame
	}
	return v, off + n, nil
}

// varintAt decodes a zigzag varint at off.
func varintAt(b []byte, off int) (int64, int, error) {
	v, n := binary.Varint(b[off:])
	if n <= 0 {
		return 0, off, errMalformedFrame
	}
	return v, off + n, nil
}
