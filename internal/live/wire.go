package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the binary wire codec of the TCP transport: a length-prefixed
// frame format that replaces the JSON line protocol on the hot path. The JSON
// format is retained behind WireJSON for debugging (gossipd -wire json);
// receivers auto-detect the format per connection from the first byte, so a
// binary daemon and a JSON daemon interoperate.
//
// Frame layout (all integers varint-encoded unless noted):
//
//	frame   := header(1B) bodyLen(uvarint) body
//	header  := version nibble (0001) | flag nibble
//	flags   := 0x1 frame carries a data message
//	           0x2 frame carries piggybacked acks
//	body    := [acks] [data]
//	acks    := count(uvarint) seq0(uvarint) delta1(uvarint) ...   // ascending
//	data    := kind(1B) seqDelta(varint) from(varint) to(varint) edge(varint)
//	           latency(varint) tickDelta(varint) ptype payload
//	ptype   := 0                                  // no payload type
//	         | 1 nameLen(uvarint) name            // define: appended to table
//	         | n>=2                               // reference to table[n-2]
//	payload := len(uvarint) bytes
//
// The header's version nibble (0x10 for v1) doubles as the format detector:
// no JSON frame starts with 0x10..0x1F, and no binary frame starts with '{'.
// Signed fields use zigzag varints (binary.AppendVarint) so any int
// round-trips; acks are sorted and delta-encoded, so a batch of k
// consecutive acks costs ~k+3 bytes instead of k frames. Payload type names
// are interned per connection: the first frame carrying a type pays for the
// name, every later frame references it with one byte.
//
// Seq and SentTick are delta-encoded against per-connection running state
// (seqDelta is relative to lastSeq+1, tickDelta to lastTick, both with
// two's-complement wraparound so every value round-trips): a connection's
// sequence numbers and ticks are near-monotonic, so both usually cost one
// byte instead of growing with the run length. Both codec halves carry
// connection state (these deltas, the intern table), so a decoder must see a
// connection's frames in order from the start — exactly what a TCP stream
// provides.

// WireFormat selects the TCP transport's frame encoding.
type WireFormat uint8

const (
	// WireBinary is the length-prefixed binary format above (the default).
	WireBinary WireFormat = iota
	// WireJSON is the legacy JSON line format, kept for debugging and
	// wire-level inspection (gossipd -wire json).
	WireJSON
)

// String returns the gossipd -wire spelling of the format.
func (f WireFormat) String() string {
	switch f {
	case WireBinary:
		return "binary"
	case WireJSON:
		return "json"
	}
	return fmt.Sprintf("WireFormat(%d)", uint8(f))
}

// ParseWireFormat parses a -wire flag value.
func ParseWireFormat(s string) (WireFormat, error) {
	switch strings.ToLower(s) {
	case "binary", "bin":
		return WireBinary, nil
	case "json":
		return WireJSON, nil
	}
	return WireBinary, fmt.Errorf("live: unknown wire format %q (want binary or json)", s)
}

const (
	wireVersion     = 0x10 // version 1 in the high nibble
	wireVersionMask = 0xF0
	wireFlagData    = 0x01
	wireFlagAcks    = 0x02

	// maxWireBody bounds one frame body so a corrupt length prefix cannot
	// trigger an arbitrarily large allocation.
	maxWireBody = 1 << 22

	// maxInternedTypes bounds the per-connection payload-type intern table:
	// a frame that would define a type past the cap is rejected as malformed,
	// so a misbehaving peer cannot grow decoder state without limit.
	// RegisterPayload refuses registrations past the same cap, so a
	// conforming encoder can never hit it.
	maxInternedTypes = 64
)

var errMalformedFrame = fmt.Errorf("live: malformed binary frame")

// wireEnc is the encoder half of one connection: the payload-type intern
// table plus a reusable body scratch buffer. It is owned by the connection's
// writer goroutine and needs no locking.
type wireEnc struct {
	names    map[string]uint64
	scratch  []byte
	lastSeq  uint64
	lastTick int64
}

// appendFrame appends one encoded frame to dst: the data message (nil for an
// ack-only frame) plus any piggybacked acks. acks is sorted in place.
func (e *wireEnc) appendFrame(dst []byte, w *wireMessage, acks []uint64) []byte {
	body := e.scratch[:0]
	var flags byte
	if len(acks) > 0 {
		flags |= wireFlagAcks
		sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
		body = binary.AppendUvarint(body, uint64(len(acks)))
		prev := uint64(0)
		for i, s := range acks {
			if i == 0 {
				body = binary.AppendUvarint(body, s)
			} else {
				body = binary.AppendUvarint(body, s-prev)
			}
			prev = s
		}
	}
	if w != nil {
		flags |= wireFlagData
		body = append(body, w.Kind)
		body = binary.AppendVarint(body, int64(w.Seq-(e.lastSeq+1)))
		e.lastSeq = w.Seq
		body = binary.AppendVarint(body, int64(w.From))
		body = binary.AppendVarint(body, int64(w.To))
		body = binary.AppendVarint(body, int64(w.EdgeID))
		body = binary.AppendVarint(body, int64(w.Latency))
		body = binary.AppendVarint(body, int64(w.SentTick)-e.lastTick)
		e.lastTick = int64(w.SentTick)
		switch {
		case w.PayloadType == "":
			body = binary.AppendUvarint(body, 0)
		default:
			id, known := e.names[w.PayloadType]
			if known {
				body = binary.AppendUvarint(body, id+2)
			} else {
				if e.names == nil {
					e.names = make(map[string]uint64)
				}
				e.names[w.PayloadType] = uint64(len(e.names))
				body = binary.AppendUvarint(body, 1)
				body = binary.AppendUvarint(body, uint64(len(w.PayloadType)))
				body = append(body, w.PayloadType...)
			}
		}
		body = binary.AppendUvarint(body, uint64(len(w.Payload)))
		body = append(body, w.Payload...)
	}
	e.scratch = body
	dst = append(dst, wireVersion|flags)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// wireDec is the decoder half of one connection: the mirrored intern table
// plus reusable body and ack buffers. Owned by the connection's read loop.
type wireDec struct {
	names    []string
	body     []byte
	acks     []uint64
	lastSeq  uint64
	lastTick int64
}

// readFrame reads and decodes one frame. On hasData it fills *w; the
// returned ack slice and w.Payload alias decoder-owned buffers that are
// reused by the next call, so both must be consumed before then.
func (d *wireDec) readFrame(br *bufio.Reader, w *wireMessage) (acks []uint64, hasData bool, err error) {
	b0, err := br.ReadByte()
	if err != nil {
		return nil, false, err
	}
	if b0&wireVersionMask != wireVersion {
		return nil, false, fmt.Errorf("%w: unknown header 0x%02x", errMalformedFrame, b0)
	}
	flags := b0 &^ byte(wireVersionMask)
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, false, err
	}
	if n > maxWireBody {
		return nil, false, fmt.Errorf("%w: body of %d bytes exceeds limit", errMalformedFrame, n)
	}
	if uint64(cap(d.body)) < n {
		d.body = make([]byte, n)
	}
	body := d.body[:n]
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, false, err
	}

	off := 0
	if flags&wireFlagAcks != 0 {
		count, o, err := uvarintAt(body, off)
		if err != nil {
			return nil, false, err
		}
		off = o
		if count > uint64(len(body)) { // each ack costs at least one byte
			return nil, false, errMalformedFrame
		}
		d.acks = d.acks[:0]
		seq := uint64(0)
		for i := uint64(0); i < count; i++ {
			delta, o, err := uvarintAt(body, off)
			if err != nil {
				return nil, false, err
			}
			off = o
			seq += delta
			d.acks = append(d.acks, seq)
		}
		acks = d.acks
	}
	if flags&wireFlagData == 0 {
		if off != len(body) {
			return nil, false, errMalformedFrame
		}
		return acks, false, nil
	}

	if off >= len(body) {
		return nil, false, errMalformedFrame
	}
	*w = wireMessage{Kind: body[off]}
	off++
	seqDelta, off, err := varintAt(body, off)
	if err != nil {
		return nil, false, err
	}
	w.Seq = d.lastSeq + 1 + uint64(seqDelta)
	d.lastSeq = w.Seq
	ints := [4]*int{&w.From, &w.To, &w.EdgeID, &w.Latency}
	for _, p := range ints {
		v, o, err := varintAt(body, off)
		if err != nil {
			return nil, false, err
		}
		*p, off = int(v), o
	}
	tickDelta, off, err := varintAt(body, off)
	if err != nil {
		return nil, false, err
	}
	d.lastTick += tickDelta
	w.SentTick = int(d.lastTick)
	code, off, err := uvarintAt(body, off)
	if err != nil {
		return nil, false, err
	}
	switch {
	case code == 0:
		// no payload type
	case code == 1:
		if len(d.names) >= maxInternedTypes {
			return nil, false, fmt.Errorf("%w: payload type table full (%d entries)", errMalformedFrame, maxInternedTypes)
		}
		nameLen, o, err := uvarintAt(body, off)
		if err != nil {
			return nil, false, err
		}
		off = o
		if nameLen > uint64(len(body)-off) {
			return nil, false, errMalformedFrame
		}
		name := string(body[off : off+int(nameLen)])
		off += int(nameLen)
		d.names = append(d.names, name)
		w.PayloadType = name
	default:
		idx := code - 2
		if idx >= uint64(len(d.names)) {
			return nil, false, fmt.Errorf("%w: payload type ref %d beyond table of %d", errMalformedFrame, idx, len(d.names))
		}
		w.PayloadType = d.names[idx]
	}
	payLen, off, err := uvarintAt(body, off)
	if err != nil {
		return nil, false, err
	}
	if payLen > uint64(len(body)-off) {
		return nil, false, errMalformedFrame
	}
	if payLen > 0 {
		w.Payload = body[off : off+int(payLen)]
		off += int(payLen)
	}
	if off != len(body) {
		return nil, false, errMalformedFrame
	}
	return acks, true, nil
}

// uvarintAt decodes a uvarint at off, returning the value and the new offset.
func uvarintAt(b []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, off, errMalformedFrame
	}
	return v, off + n, nil
}

// varintAt decodes a zigzag varint at off.
func varintAt(b []byte, off int) (int64, int, error) {
	v, n := binary.Varint(b[off:])
	if n <= 0 {
		return 0, off, errMalformedFrame
	}
	return v, off + n, nil
}
