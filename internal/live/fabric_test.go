package live

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"gossip/internal/graph"
)

// fabrics are the connection families under test. Every fabric speaks the
// identical wire protocol through the same stream core, so every test here
// is a parity check: behavior proven for TCP must hold verbatim.
var fabrics = []string{"tcp", "unix", "ring"}

var ringNameSeq atomic.Int64

// newFabricTransport builds one transport of the given fabric hosting the
// given nodes, returning it and the address peers should dial.
func newFabricTransport(t testing.TB, fabric string, hosted []graph.NodeID, buffer int) (*StreamTransport, string) {
	t.Helper()
	switch fabric {
	case "tcp":
		tr, err := NewTCPTransport("127.0.0.1:0", hosted, buffer)
		if err != nil {
			t.Fatal(err)
		}
		return tr, tr.Addr().String()
	case "unix":
		// Short MkdirTemp dir, not t.TempDir(): sun_path caps at ~108 bytes
		// and long test names would overflow it.
		dir, err := os.MkdirTemp("", "gsp")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		path := filepath.Join(dir, "d.sock")
		tr, err := NewUnixTransport(path, hosted, buffer)
		if err != nil {
			t.Fatal(err)
		}
		return tr, unixScheme + path
	case "ring":
		name := fmt.Sprintf("t%d", ringNameSeq.Add(1))
		tr, err := NewRingTransport(name, hosted, buffer)
		if err != nil {
			t.Fatal(err)
		}
		return tr, ringScheme + name
	default:
		t.Fatalf("unknown fabric %q", fabric)
		return nil, ""
	}
}

// TestByteRingSplice unit-tests the SPSC ring under the stream core:
// byte-exact transfer across many wraparounds with concurrent producer and
// consumer, then drain-to-EOF close semantics.
func TestByteRingSplice(t *testing.T) {
	r := newByteRing()
	rng := rand.New(rand.NewSource(42))
	// 8 MiB through a 1 MiB ring: every offset wraps several times.
	data := make([]byte, 8<<20)
	rng.Read(data)

	go func() {
		for off := 0; off < len(data); {
			n := 1 + rng.Intn(64<<10)
			if off+n > len(data) {
				n = len(data) - off
			}
			if _, err := r.write(data[off : off+n]); err != nil {
				t.Error(err)
				return
			}
			off += n
		}
		r.closeWrite()
	}()

	got, err := io.ReadAll(ringReader{r})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("ring corrupted the stream: %d bytes read, want %d", len(got), len(data))
	}
	// Reads after EOF stay EOF; writes after consumer abandonment fail.
	if _, err := r.read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after drain = %v, want io.EOF", err)
	}
	r.closeRead()
	if _, err := r.write([]byte("x")); err == nil {
		t.Fatal("write after closeRead succeeded")
	}
}

// ringReader adapts byteRing.read to io.Reader for io.ReadAll.
type ringReader struct{ r *byteRing }

func (rr ringReader) Read(p []byte) (int, error) { return rr.r.read(p) }

// TestAddrIsLocalHost pins the auto-upgrade predicate: loopback and
// localhost qualify, remote IPs and unparseable hosts do not.
func TestAddrIsLocalHost(t *testing.T) {
	cases := map[string]bool{
		"127.0.0.1:9000":    true,
		"localhost:9000":    true,
		"[::1]:9000":        true,
		"192.0.2.17:9000":   false, // TEST-NET, never assigned locally
		"example.com:9000":  false, // non-localhost hostnames are not resolved
		"not-an-address":    false,
		"unix:///tmp/x.sck": false,
	}
	for addr, want := range cases {
		if got := addrIsLocalHost(addr); got != want {
			t.Errorf("addrIsLocalHost(%q) = %v, want %v", addr, got, want)
		}
	}
}

// TestFabricRoundTripCountsLocal sends over each fabric and checks delivery,
// a clean drain with exact zero close-time accounting, and that the
// WireLocal* counters attribute traffic to local fabrics only.
func TestFabricRoundTripCountsLocal(t *testing.T) {
	for _, fabric := range fabrics {
		t.Run(fabric, func(t *testing.T) {
			a, _ := newFabricTransport(t, fabric, []graph.NodeID{0}, 64)
			b, baddr := newFabricTransport(t, fabric, []graph.NodeID{1}, 64)
			defer b.Close()
			a.SetPeers(map[graph.NodeID]string{1: baddr})

			const sends = 32
			for i := 0; i < sends; i++ {
				if err := a.Send(testMsg(1, MsgRequest, i), 0); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < sends; i++ {
				recvWithin(t, b.Recv(1), 5*time.Second)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			rep, err := a.Drain(ctx)
			if err != nil {
				t.Fatalf("Drain: %v", err)
			}
			if !rep.Clean || rep.QueuedAtClose != 0 || rep.PendingAtClose != 0 || rep.AbandonedTimers != 0 {
				t.Fatalf("drain not exactly clean on %s: %+v", fabric, rep)
			}
			local := fabric != "tcp"
			if gotFrames, gotBytes := a.WireLocalFrames(), a.WireLocalBytes(); local {
				if gotFrames == 0 || gotBytes == 0 {
					t.Errorf("local fabric %s counted no local traffic: frames=%d bytes=%d", fabric, gotFrames, gotBytes)
				}
				if gotFrames > a.WireFramesOut() || gotBytes > a.WireBytesOut() {
					t.Errorf("local counters exceed totals: frames %d/%d bytes %d/%d",
						gotFrames, a.WireFramesOut(), gotBytes, a.WireBytesOut())
				}
			} else if gotFrames != 0 || gotBytes != 0 {
				t.Errorf("tcp counted local traffic: frames=%d bytes=%d", gotFrames, gotBytes)
			}
		})
	}
}

// TestFabricAutoUpgradeToUnix is the co-location fast path: both transports
// listen on TCP, the peer advertises a unix socket for its TCP address via
// SetPeerSockets, and the dialer must route every frame over the socket —
// proven by the local counters — without any peer-map change.
func TestFabricAutoUpgradeToUnix(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport("127.0.0.1:0", []graph.NodeID{1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	dir, err := os.MkdirTemp("", "gsp")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "b.sock")
	if err := b.ListenUnix(sock); err != nil {
		t.Fatal(err)
	}
	if got := b.UnixAddr(); got != sock {
		t.Fatalf("UnixAddr = %q, want %q", got, sock)
	}

	a.SetPeers(map[graph.NodeID]string{1: b.Addr().String()})
	a.SetPeerSockets(map[string]string{b.Addr().String(): sock})

	if err := a.Send(testMsg(1, MsgRequest, 1), 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(1), 5*time.Second)
	if a.WireLocalFrames() == 0 {
		t.Fatal("advertised socket for a local peer was not dialed")
	}
	if a.WireLocalFrames() != a.WireFramesOut() {
		t.Errorf("some frames leaked onto TCP: local=%d total=%d", a.WireLocalFrames(), a.WireFramesOut())
	}
}

// TestFabricMixedInterop runs one cluster across all three fabrics at once:
// a TCP-listening transport, a unix-listening transport, and a ring
// transport exchange a full mesh of messages. The wire format is
// fabric-invariant, so everything interoperates through one peer map.
func TestFabricMixedInterop(t *testing.T) {
	trs := make([]*StreamTransport, len(fabrics))
	addrs := make(map[graph.NodeID]string, len(fabrics))
	for i, fabric := range fabrics {
		tr, addr := newFabricTransport(t, fabric, []graph.NodeID{graph.NodeID(i)}, 64)
		defer tr.Close()
		trs[i] = tr
		addrs[graph.NodeID(i)] = addr
	}
	for _, tr := range trs {
		tr.SetPeers(addrs)
	}

	const perPair = 8
	for from := range trs {
		for to := range trs {
			if from == to {
				continue
			}
			for i := 0; i < perPair; i++ {
				m := Message{Kind: MsgRequest, From: graph.NodeID(from), To: graph.NodeID(to),
					EdgeID: from*len(trs) + to, Latency: 1, SentTick: i, Payload: bitp{informed: true}}
				if err := trs[from].Send(m, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for to := range trs {
		for i := 0; i < perPair*(len(trs)-1); i++ {
			recvWithin(t, trs[to].Recv(graph.NodeID(to)), 5*time.Second)
		}
	}
	for i, tr := range trs {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		rep, err := tr.Drain(ctx)
		cancel()
		if err != nil || !rep.Clean {
			t.Fatalf("transport %d (%s): drain = %+v, %v", i, fabrics[i], rep, err)
		}
	}
}

// TestFabricUnixRedialAfterSocketRemoval: the unix analogue of TCP
// connection-loss recovery. The server's socket is torn down and re-created
// at the same path (a daemon restart), the pooled connection is severed, and
// the retransmission path must redial the fresh socket and deliver.
func TestFabricUnixRedialAfterSocketRemoval(t *testing.T) {
	dir, err := os.MkdirTemp("", "gsp")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")

	a, err := NewUnixTransport(filepath.Join(dir, "a.sock"), []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUnixTransport(sock, []graph.NodeID{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers(map[graph.NodeID]string{1: unixScheme + sock})
	a.SetRetransmit(30*time.Millisecond, 8)

	if err := a.Send(testMsg(1, MsgRequest, 1), 0); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(1), 5*time.Second)

	// Daemon restart: old listener (and its socket file) gone, new one at
	// the same path, pooled connection severed under the sender.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewUnixTransport(sock, []graph.NodeID{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	if err := a.Send(testMsg(1, MsgRequest, 2), 0); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, b2.Recv(1), 5*time.Second)
	if got.SentTick != 2 {
		t.Fatalf("unexpected arrival %+v", got)
	}
	if a.Dropped() != 0 {
		t.Errorf("Dropped = %d after successful redial", a.Dropped())
	}
}

// TestFabricStaleSocketReclaim: a socket file orphaned by a dead process
// (simulated by closing the raw listener with unlink suppressed) must be
// reclaimed by the next ListenUnix, while a live listener's path must not.
func TestFabricStaleSocketReclaim(t *testing.T) {
	dir, err := os.MkdirTemp("", "gsp")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")

	// Live listener: the path is taken, binding again must fail.
	live, err := NewUnixTransport(sock, []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUnixTransport(sock, []graph.NodeID{1}, 8); err == nil {
		t.Fatal("second listener on a live socket succeeded")
	}
	live.Close()

	// Orphaned file: nothing answers, the bind must reclaim it.
	if ln, err := listenUnixSocket(sock); err == nil {
		// Close suppressing unlink so the file survives like a crashed
		// process would leave it.
		ln.(interface{ SetUnlinkOnClose(bool) }).SetUnlinkOnClose(false)
		ln.Close()
	} else {
		t.Fatal(err)
	}
	if _, err := os.Stat(sock); err != nil {
		t.Fatalf("stale socket file missing before reclaim test: %v", err)
	}
	tr, err := NewUnixTransport(sock, []graph.NodeID{0}, 8)
	if err != nil {
		t.Fatalf("stale socket not reclaimed: %v", err)
	}
	tr.Close()
}

// TestFabricDrainPendingParity stages the same un-drainable state on every
// fabric — one armed delivery timer plus three unacked sends against a peer
// that accepts but never acks — and requires the DrainReport close-time
// accounting to be exactly equal across them.
func TestFabricDrainPendingParity(t *testing.T) {
	for _, fabric := range fabrics {
		t.Run(fabric, func(t *testing.T) {
			tr, _ := newFabricTransport(t, fabric, []graph.NodeID{0}, 64)
			addr, stop := quietFabricPeer(t, fabric)
			defer stop()
			tr.SetPeers(map[graph.NodeID]string{1: addr})
			tr.SetRetransmit(time.Hour, 4)
			tr.SetBatching(false) // per-message pend entries: exact counts

			const pendingSends = 3
			if err := tr.Send(testMsg(1, MsgRequest, 0), time.Hour); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < pendingSends; i++ {
				if err := tr.Send(testMsg(1, MsgRequest, i+1), 0); err != nil {
					t.Fatal(err)
				}
			}
			if !pollUntil(5*time.Second, func() bool { return tr.pendingCount() == pendingSends }) {
				t.Fatalf("pendingCount = %d, want %d", tr.pendingCount(), pendingSends)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
			defer cancel()
			rep, err := tr.Drain(ctx)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Drain error = %v, want DeadlineExceeded", err)
			}
			if rep.Clean {
				t.Fatal("deadline-expired drain reported clean")
			}
			if rep.PendingAtClose != pendingSends {
				t.Errorf("PendingAtClose = %d, want %d", rep.PendingAtClose, pendingSends)
			}
			if rep.AbandonedTimers != 1 {
				t.Errorf("AbandonedTimers = %d, want 1", rep.AbandonedTimers)
			}
		})
	}
}

// quietFabricPeer returns an address on the given fabric that accepts
// connections and discards all input — so frames transmit but are never
// acked, pinning the sender's pend set.
func quietFabricPeer(t testing.TB, fabric string) (addr string, stop func()) {
	t.Helper()
	switch fabric {
	case "tcp":
		a, _, closeAll := quietListener(t)
		return a, closeAll
	case "unix":
		dir, err := os.MkdirTemp("", "gsp")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "q.sock")
		l, err := listenUnixSocket(path)
		if err != nil {
			t.Fatal(err)
		}
		go discardAccepts(l)
		return unixScheme + path, func() { l.Close(); os.RemoveAll(dir) }
	case "ring":
		name := fmt.Sprintf("quiet%d", ringNameSeq.Add(1))
		l, err := registerRing(name)
		if err != nil {
			t.Fatal(err)
		}
		go discardAccepts(l)
		return ringScheme + name, func() { l.Close() }
	default:
		t.Fatalf("unknown fabric %q", fabric)
		return "", nil
	}
}

// discardAccepts drains a listener: every accepted connection's input is
// read and thrown away, so the dialer's frames transmit but nothing answers.
func discardAccepts(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go io.Copy(io.Discard, c)
	}
}

// TestFaultDeterministicAcrossFabrics is the chaos-parity check for the new
// fabrics: the identical fault plan over the identical message schedule must
// produce the identical injected-fault counters and the identical arrival
// multiset whether the cluster's links are TCP, unix sockets, or in-process
// rings. Fault decisions are a PRF of message identity taken above the
// transport, and the stream core is fabric-blind, so any divergence means a
// fabric leaked into delivery semantics.
func TestFaultDeterministicAcrossFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-transport cluster run is not -short friendly")
	}
	g := graph.Dumbbell(4, 2)
	var left, right []graph.NodeID
	for u := 0; u < g.N(); u++ {
		if u < g.N()/2 {
			left = append(left, graph.NodeID(u))
		} else {
			right = append(right, graph.NodeID(u))
		}
	}
	cfg := FaultConfig{
		Seed:        5519,
		Drop:        0.10,
		Duplicate:   0.05,
		JitterTicks: 2,
		Tick:        time.Millisecond,
		Partitions:  []Partition{{From: 2, Until: 4, Edges: CutBetween(g, left, right)}},
	}
	feed := scriptedFeed(g, 6)

	type outcome struct {
		got map[arrivalKey]int
		rep FaultCounts
	}
	outcomes := make(map[string]outcome, len(fabrics))
	for _, fabric := range fabrics {
		got, rep := runScriptedFaults(t, fabric, g, feed, cfg, WireBinary, true)
		outcomes[fabric] = outcome{got, rep}
	}

	ref := outcomes["tcp"]
	if ref.rep.InjectedDrops == 0 || ref.rep.Jittered == 0 || ref.rep.PartitionDrops == 0 {
		t.Errorf("fault plan injected nothing on some axis: %+v", ref.rep)
	}
	for _, fabric := range fabrics[1:] {
		o := outcomes[fabric]
		if o.rep != ref.rep {
			t.Errorf("injected fault counters diverge on %s:\ntcp: %+v\n%s: %+v", fabric, ref.rep, fabric, o.rep)
		}
		if len(o.got) != len(ref.got) {
			t.Fatalf("arrival multisets differ in size: tcp=%d %s=%d", len(ref.got), fabric, len(o.got))
		}
		for k, n := range ref.got {
			if o.got[k] != n {
				t.Errorf("arrival %+v: tcp=%d %s=%d deliveries", k, n, fabric, o.got[k])
			}
		}
	}
}

// runScriptedFaults feeds a deterministic schedule through per-side
// FaultTransports over a two-transport cluster on the given fabric, waits
// for the reliable-delivery layer to drain, and returns the arrival multiset
// plus the summed injected-fault counters. (The TCP-only tests wrap this via
// runScriptedTCPFaults.)
func runScriptedFaults(t *testing.T, fabric string, g *graph.Graph, feed []Message, cfg FaultConfig, wf WireFormat, batched bool) (map[arrivalKey]int, FaultCounts) {
	t.Helper()
	half := g.N() / 2
	side := func(u graph.NodeID) int {
		if int(u) < half {
			return 0
		}
		return 1
	}
	var hosted [2][]graph.NodeID
	for u := 0; u < g.N(); u++ {
		hosted[side(graph.NodeID(u))] = append(hosted[side(graph.NodeID(u))], graph.NodeID(u))
	}
	var trs [2]*StreamTransport
	var fts [2]*FaultTransport
	addrs := make(map[graph.NodeID]string, g.N())
	for i := range trs {
		tr, addr := newFabricTransport(t, fabric, hosted[i], 4096)
		tr.SetWireFormat(wf)
		tr.SetBatching(batched)
		tr.SetRetransmit(time.Second, 8)
		trs[i] = tr
		for _, u := range hosted[i] {
			addrs[u] = addr
		}
	}
	for i := range trs {
		trs[i].SetPeers(addrs)
		fts[i] = NewFaultTransport(trs[i], cfg)
		defer fts[i].Close()
	}
	for _, m := range feed {
		if err := fts[side(m.From)].Send(m, 0); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// Wait for jittered deliveries to be scheduled and the reliable layer to
	// drain every surviving send.
	time.Sleep(50*time.Millisecond + time.Duration(2*(cfg.JitterTicks+1))*cfg.Tick)
	deadline := time.Now().Add(10 * time.Second)
	for (trs[0].pendingCount() != 0 || trs[1].pendingCount() != 0) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	got := make(map[arrivalKey]int)
	for u := 0; u < g.N(); u++ {
		ch := fts[side(graph.NodeID(u))].Recv(graph.NodeID(u))
		for {
			select {
			case m := <-ch:
				got[arrivalKey{edge: m.EdgeID, from: m.From, sentTick: m.SentTick}]++
				continue
			default:
			}
			break
		}
	}
	var sum FaultCounts
	for i := range fts {
		rep := fts[i].Faults()
		sum.InjectedDrops += rep.InjectedDrops
		sum.InjectedDups += rep.InjectedDups
		sum.Jittered += rep.Jittered
		sum.PartitionDrops += rep.PartitionDrops
	}
	return got, sum
}
