package live

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// wireMessage is the frame shape shared by both wire formats: the JSON line
// protocol marshals it directly, the binary codec (wire.go) encodes the same
// fields as varints. Payloads travel as (registered type name, raw bytes)
// pairs — see codec.go. Seq is the sender-assigned reliable-delivery
// sequence number; an ack echoes it back.
type wireMessage struct {
	Kind        uint8           `json:"k"`
	Seq         uint64          `json:"q,omitempty"`
	From        int             `json:"f"`
	To          int             `json:"t"`
	EdgeID      int             `json:"e"`
	Latency     int             `json:"l"`
	SentTick    int             `json:"s"`
	PayloadType string          `json:"pt,omitempty"`
	Payload     json.RawMessage `json:"p,omitempty"`
}

// wireAck is the Kind of a standalone JSON acknowledgement frame (only Kind
// and Seq are meaningful); it never collides with MsgRequest/MsgResponse.
// The binary format carries acks in each frame's ack section instead.
const wireAck uint8 = 0xFF

// Reliable-delivery defaults: until a peer has yielded an RTT sample the
// first retransmission fires after DefaultRetransmitRTO; once acks flow, the
// RTO adapts per peer (Jacobson-style srtt + 4·rttvar, clamped to
// [DefaultRTOMin, DefaultRTOMax] — see overload.go). Each retransmission
// doubles the wait, and after DefaultMaxRetransmits unacknowledged
// retransmissions the message is abandoned and counted as dropped.
const (
	DefaultRetransmitRTO  = 250 * time.Millisecond
	DefaultMaxRetransmits = 4
)

// DefaultDedupWindowTicks is the receiver dedup retention window: an entry
// is evicted once the newest SentTick seen by its shard has advanced past it
// by one to two windows. At the default 1ms tick this retains entries for
// ~8–16s, comfortably beyond the longest retransmission lifetime
// (250ms·(1+2+4+8) ≈ 3.8s), so bounded memory never re-admits a live
// retransmission.
const DefaultDedupWindowTicks = 8192

// pendShards and dedupShards split the reliable-delivery and dedup state so
// concurrent connections and node goroutines don't serialize on one lock.
const (
	pendShards  = 16
	dedupShards = 16
)

// StreamTransport is the transport-family-generic stream core: framed
// messages — length-prefixed binary frames by default, JSON lines behind
// SetWireFormat(WireJSON) — over any ordered byte stream. Three connection
// families (fabrics) plug in beneath it:
//
//   - TCP (NewTCPTransport): the cross-machine fabric.
//   - Unix domain sockets (NewUnixTransport, ListenUnix): co-located daemons
//     skip the TCP stack — no checksums, no Nagle/cork logic, no loopback
//     queueing. Dialed explicitly via "unix://PATH" peer addresses, or
//     automatically when SetPeerSockets advertises a socket for a peer whose
//     TCP address resolves to this host.
//   - In-process shared rings (NewRingTransport): one pair of lock-free SPSC
//     byte rings per connection, frames spliced between co-hosted runtimes
//     without crossing the kernel. Dialed via "ring://NAME" peer addresses.
//
// All fabrics share the wire codec, the super-frame batching, the reliable
// delivery machinery, and every counter below, so a mixed-fabric cluster is
// just a peers map with mixed address forms. Frames and bytes that traveled
// a local fabric (unix or ring) are additionally counted in WireLocalFrames
// / WireLocalBytes, so harnesses can verify the fast path was actually taken.
//
// Each process hosts a subset of the graph's nodes behind one or more
// listeners; SetPeers maps every remote node to the listen address of the
// process hosting it. Messages between two locally hosted nodes
// short-circuit the socket and are delivered in memory. Receivers auto-detect
// the peer's format per connection, so mixed-format clusters interoperate.
//
// Writes are batched: every connection has a writer goroutine draining a
// frame queue through a buffered writer, so the many messages gossip
// generates in one tick coalesce into one syscall, and acks ride the ack
// section of outgoing binary frames instead of paying a frame each.
// SetFlushWindow adds an optional delay that widens the batches further.
//
// In batched mode (SetBatching, default on, binary format only) the writer
// goes further: everything bound for the same destination daemon within one
// drain coalesces into FrameBatch super-frames — one frame header, one pend
// entry, one retransmission timer, and one returning ack per batch instead
// of per message — and the receiver decodes a super-frame once and scatters
// each sub-message straight to the owning shard's mailbox through the
// DeliverySink seam.
//
// Remote delivery is reliable up to a retransmission budget: every remote
// message carries a sequence number, the receiver acks it on the same
// connection, and unacked messages are retransmitted with exponential
// backoff. A write failure evicts the broken connection and immediately
// re-queues the affected messages through the retransmit path, so the first
// retry redials at once instead of waiting out the RTO. A message still
// unacked after the budget is abandoned and counted as dropped. Receivers
// deduplicate on (EdgeID, From, SentTick, Kind) within a sliding tick window
// (SetDedupWindow), so retransmissions and network duplicates are idempotent
// and the dedup set stays bounded over arbitrarily long runs.
//
// Outbound connections are dialed lazily (with retries, so a cluster's
// processes may start in any order) and pooled per destination address.
type StreamTransport struct {
	hosted map[graph.NodeID]bool // read-only after construction

	// listeners are the transport's accept sockets (TCP, unix, ring — a
	// daemon typically has one TCP listener plus an optional unix socket).
	// Guarded by connMu; the first listener's address is Addr().
	listeners []streamListener

	buffer    int
	inboxMu   sync.Mutex
	inboxes   map[graph.NodeID]chan Message // lazily created on first Recv/legacy delivery
	inboxSnap atomic.Pointer[map[graph.NodeID]chan Message]
	sink      atomic.Pointer[DeliverySink]

	// Atomic because connection goroutines read them while the owner may
	// still be configuring (an eager peer can dial in before SetWireFormat).
	wireFormat  atomic.Int32 // WireFormat
	flushWindow atomic.Int64 // time.Duration
	dedupWindow atomic.Int64 // ticks
	batching    atomic.Bool  // FrameBatch super-frame aggregation (binary only)

	peerMu  sync.RWMutex
	peers   map[graph.NodeID]string
	sockets map[string]string // peer TCP addr -> advertised unix socket path

	connMu   sync.Mutex
	outs     map[string]*connState
	outsSnap atomic.Pointer[map[string]*connState] // republished under connMu on every change
	accepts  []*connState

	dialTimeout time.Duration
	rto         time.Duration
	maxRetrans  int
	rtoMin      time.Duration // adaptive-RTO floor (raised by SetRetransmit)
	rtoMax      time.Duration // adaptive-RTO and backoff ceiling

	// Overload-protection knobs (SetOverloadLimits / SetBreaker); <= 0
	// disables the corresponding mechanism.
	queueLimit  int // frames per connection writer queue
	pendLimit   int // unacked reliable sends across the transport
	breakerN    int // consecutive failures before a peer's breaker opens
	breakerWait time.Duration

	peerSt sync.Map // addr string -> *peerState, per peer listen address

	seq   atomic.Uint64
	pend  [pendShards]pendShard
	dedup [dedupShards]dedupShard

	delays         *timerWheel  // armed latency delays for not-yet-sent messages
	retries        *timerWheel  // armed retransmission timeouts (RTOs)
	bytesOut       atomic.Int64 // frame bytes written to sockets
	flushes        atomic.Int64 // socket write batches (syscalls; see countingWriter)
	framesOut      atomic.Int64 // physical frames written (a super-frame counts once)
	msgsOut        atomic.Int64 // logical data messages those frames carried
	localBytes     atomic.Int64 // subset of bytesOut that traveled a local fabric
	localFrames    atomic.Int64 // subset of framesOut that traveled a local fabric
	dropsGiveUp    atomic.Int64 // retransmission budget exhausted
	dropsClosed    atomic.Int64 // unacked or undelivered at Close
	dropsDecode    atomic.Int64 // undecodable wire payloads or corrupt frames
	dropsMisroute  atomic.Int64 // wire messages for nodes not hosted here
	retransmits    atomic.Int64
	dupsSuppressed atomic.Int64

	// Overload ledger (see OverloadCounts for the meaning of each).
	ovShedQueue   atomic.Int64
	ovShedPend    atomic.Int64
	ovMemberWait  atomic.Int64
	ovRetryTrim   atomic.Int64
	ovDeadPeer    atomic.Int64
	ovBreakerOpen atomic.Int64
	ovBreakerDrop atomic.Int64

	draining  atomic.Bool // Drain started: no new sends, dials, or redial bursts
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ Transport = (*StreamTransport)(nil)
var _ SinkTransport = (*StreamTransport)(nil)
var _ FaultReporter = (*StreamTransport)(nil)
var _ Drainer = (*StreamTransport)(nil)
var _ PeerStatusSink = (*StreamTransport)(nil)

// streamListener is one accept socket plus its fabric locality: connections
// accepted from a unix or ring listener count toward the WireLocal* ledger.
type streamListener struct {
	ln    net.Listener
	local bool
}

// pendShard is one slice of the unacked-message map, guarded by its own lock.
type pendShard struct {
	mu sync.Mutex
	m  map[uint64]*pendingSend
}

// pendingSend is one unacknowledged reliable send awaiting ack — a single
// remote message, or (batched mode) one whole FrameBatch super-frame whose
// sub-messages live in batch and whose pend key is the last sub-message's
// Seq (mirrored in w). retry is the armed retransmission timer (stopped on
// ack or Close). sentAt and retransmitted feed the RTT estimator under
// Karn's rule: only an entry acked on its first attempt yields a sample.
type pendingSend struct {
	addr          string
	ps            *peerState // the peer's adaptive state, resolved once at admission
	w             wireMessage
	batch         []wireMessage // super-frame sub-messages; nil for a per-message entry
	member        bool          // batch carries membership traffic: exempt from shedding
	attempts      int
	retry         *wheelTimer
	sentAt        time.Time
	retransmitted bool
}

// msgCount returns the logical data messages this entry carries — the unit
// the drop and shed ledgers count in.
func (p *pendingSend) msgCount() int64 {
	if p.batch != nil {
		return int64(len(p.batch))
	}
	return 1
}

// destinedTo reports whether every logical message of this entry targets
// node u — the per-node flush test for PeerDown. A batch mixing destinations
// is spared; the address-level breaker flush covers daemon-wide death.
func (p *pendingSend) destinedTo(u int) bool {
	if p.batch == nil {
		return p.w.To == u
	}
	for i := range p.batch {
		if p.batch[i].To != u {
			return false
		}
	}
	return true
}

// dedupKey identifies a message for receiver-side deduplication: the node
// pair and tick of the exchange half. From disambiguates the two endpoints
// initiating on the same edge in the same tick.
type dedupKey struct {
	edge     int
	from     graph.NodeID
	sentTick int
	kind     MsgKind
}

// shard spreads keys over the dedup shards with a cheap integer mix.
func (k dedupKey) shard() uint64 {
	h := uint64(k.edge)*0x9E3779B97F4A7C15 + uint64(k.from)*0xBF58476D1CE4E5B9 +
		uint64(uint32(k.sentTick))*0x94D049BB133111EB + uint64(k.kind)
	return (h >> 32) & (dedupShards - 1)
}

// dedupShard holds a generation pair of dedup sets. New entries land in cur;
// when the newest SentTick observed advances past the shard's horizon, prev
// is discarded and cur rotates into its place, reclaiming entries one to two
// windows old. Lookups consult both generations.
type dedupShard struct {
	mu      sync.Mutex
	cur     map[dedupKey]struct{}
	prev    map[dedupKey]struct{}
	maxTick int
	horizon int
}

// seen records k and reports whether it was already present (a duplicate).
// The hot path — a fresh key — costs a single map operation: inserting and
// checking whether the length grew detects cur-presence without a separate
// lookup, and only a fresh key pays the prev probe. A prev-duplicate leaves
// its insert in cur behind, which just extends its suppression by a window.
func (s *dedupShard) seen(k dedupKey, window int) bool {
	s.mu.Lock()
	if s.cur == nil {
		s.cur = make(map[dedupKey]struct{})
		s.horizon = k.sentTick + window
	}
	before := len(s.cur)
	s.cur[k] = struct{}{}
	if len(s.cur) == before {
		s.mu.Unlock()
		return true
	}
	if _, dup := s.prev[k]; dup {
		s.mu.Unlock()
		return true
	}
	if k.sentTick > s.maxTick {
		s.maxTick = k.sentTick
		if s.maxTick >= s.horizon {
			// Rotate by recycling the discarded generation: clear keeps the
			// map's buckets, so steady-state rotation never regrows a table
			// (rehash storms dominated this path when each window started
			// from a fresh map).
			old := s.prev
			s.prev = s.cur
			if old == nil {
				old = make(map[dedupKey]struct{})
			} else {
				clear(old)
			}
			s.cur = old
			s.horizon = s.maxTick + window
		}
	}
	s.mu.Unlock()
	return false
}

// size reports the shard's live entry count (tests verify eviction with it).
func (s *dedupShard) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cur) + len(s.prev)
}

// newStreamTransport builds the stream core with no listeners attached; the
// family constructors (NewTCPTransport, NewUnixTransport, NewRingTransport)
// attach theirs with addListener before the transport is handed out.
func newStreamTransport(local []graph.NodeID, buffer int) *StreamTransport {
	if buffer <= 0 {
		buffer = DefaultInboxBuffer
	}
	t := &StreamTransport{
		hosted:      make(map[graph.NodeID]bool, len(local)),
		buffer:      buffer,
		inboxes:     make(map[graph.NodeID]chan Message),
		peers:       make(map[graph.NodeID]string),
		delays:      newTimerWheel(0),
		retries:     newTimerWheel(0),
		outs:        make(map[string]*connState),
		dialTimeout: 10 * time.Second,
		rto:         DefaultRetransmitRTO,
		maxRetrans:  DefaultMaxRetransmits,
		rtoMin:      DefaultRTOMin,
		rtoMax:      DefaultRTOMax,
		queueLimit:  DefaultQueueLimit,
		pendLimit:   DefaultPendingLimit,
		breakerN:    DefaultBreakerThreshold,
		breakerWait: DefaultBreakerCooldown,
		closed:      make(chan struct{}),
	}
	t.dedupWindow.Store(DefaultDedupWindowTicks)
	t.batching.Store(true)
	for _, u := range local {
		t.hosted[u] = true
	}
	return t
}

// addListener attaches one accept socket to the transport and starts its
// accept loop. Returns ErrTransportClosed after Close (the caller still owns
// ln then and must close it).
func (t *StreamTransport) addListener(ln net.Listener, local bool) error {
	sl := streamListener{ln: ln, local: local}
	t.connMu.Lock()
	select {
	case <-t.closed:
		t.connMu.Unlock()
		return ErrTransportClosed
	default:
	}
	t.listeners = append(t.listeners, sl)
	t.wg.Add(1)
	t.connMu.Unlock()
	go t.acceptLoop(sl)
	return nil
}

// Addr returns the transport's primary bound listen address (the first
// listener attached — the TCP address for NewTCPTransport, the socket path
// for NewUnixTransport, the ring name for NewRingTransport).
func (t *StreamTransport) Addr() net.Addr {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	return t.listeners[0].ln.Addr()
}

// SetPeers installs (or extends) the node→address map used to route remote
// sends. Locally hosted nodes need no entry. Addresses select the fabric by
// form: "host:port" dials TCP (upgraded to a unix socket when SetPeerSockets
// advertises one and the host is local), "unix://PATH" dials a unix socket
// directly, and "ring://NAME" splices to an in-process ring listener.
func (t *StreamTransport) SetPeers(addrs map[graph.NodeID]string) {
	t.peerMu.Lock()
	defer t.peerMu.Unlock()
	for u, a := range addrs {
		t.peers[u] = a
	}
}

// SetPeerSockets advertises unix socket paths for peers addressed by TCP:
// when a peer's "host:port" address resolves to this host and sockets maps
// that address to a path, outbound connections dial the socket instead of
// TCP — the wire protocol is identical, only the kernel path shrinks. A peer
// whose socket cannot be dialed falls back to TCP after a short grace period
// (see dialPeer), so a stale advertisement degrades, it does not strand.
// Call alongside SetPeers, before the first Send.
func (t *StreamTransport) SetPeerSockets(sockets map[string]string) {
	t.peerMu.Lock()
	defer t.peerMu.Unlock()
	if t.sockets == nil {
		t.sockets = make(map[string]string, len(sockets))
	}
	for addr, path := range sockets {
		t.sockets[addr] = path
	}
}

// socketFor returns the advertised unix socket for a TCP peer address, or ""
// when none applies (no advertisement, or the address is not on this host).
func (t *StreamTransport) socketFor(addr string) string {
	t.peerMu.RLock()
	sock := t.sockets[addr]
	t.peerMu.RUnlock()
	if sock == "" || !addrIsLocalHost(addr) {
		return ""
	}
	return sock
}

// Peer-address schemes. A plain "host:port" address dials TCP (possibly
// upgraded to an advertised unix socket); these prefixes select a local
// fabric explicitly.
const (
	unixScheme = "unix://"
	ringScheme = "ring://"
)

// unixPreferGrace is how long conn keeps retrying an advertised unix socket
// before degrading to TCP. Co-located daemons may accept TCP before their
// unix listener exists (gossipctl hands gossipd a pre-bound TCP listener fd,
// while the unix socket is only bound during startup); without the grace
// window the first dial would pool a TCP connection forever and the local
// fast path would never engage. A genuinely stale advertisement still falls
// back once the window passes.
const unixPreferGrace = 2 * time.Second

// unixSockBuf sizes each unix connection's kernel buffers. The distro
// default (~208 KiB) was tuned for remote links, not for a firehose between
// co-located daemons: a full super-frame burst fills it, the writer blocks,
// batches shrink, and the socket loses to loopback TCP. Wide buffers keep
// the aggregation pipeline full.
const unixSockBuf = 4 << 20

// tuneUnixConn widens a freshly established unix connection's kernel
// buffers. Best effort: a kernel that clamps the size just caps the win.
func tuneUnixConn(c net.Conn) net.Conn {
	if uc, ok := c.(*net.UnixConn); ok {
		uc.SetReadBuffer(unixSockBuf)
		uc.SetWriteBuffer(unixSockBuf)
	}
	return c
}

// dialPeer opens one stream to addr, choosing the connection family from the
// address: "unix://PATH" and "ring://NAME" dial that fabric directly, plain
// "host:port" dials TCP — upgraded to a unix socket when SetPeerSockets
// advertised one for a peer on this host. elapsed is how long conn has been
// retrying this address, for the unix-preference grace window. The returned
// flag reports whether the stream is a local fabric (unix or ring), which
// routes its traffic into the WireLocal* counters.
func (t *StreamTransport) dialPeer(addr string, elapsed time.Duration) (net.Conn, bool, error) {
	switch {
	case strings.HasPrefix(addr, unixScheme):
		c, err := net.DialTimeout("unix", strings.TrimPrefix(addr, unixScheme), 2*time.Second)
		if err != nil {
			return nil, true, err
		}
		return tuneUnixConn(c), true, nil
	case strings.HasPrefix(addr, ringScheme):
		c, err := dialRing(strings.TrimPrefix(addr, ringScheme))
		return c, true, err
	}
	if sock := t.socketFor(addr); sock != "" {
		c, err := net.DialTimeout("unix", sock, 2*time.Second)
		if err == nil {
			return tuneUnixConn(c), true, nil
		}
		if elapsed < unixPreferGrace {
			return nil, false, fmt.Errorf("dial unix %s for %s: %w", sock, addr, err)
		}
		// Advertisement looks stale; degrade to TCP below.
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	return c, false, err
}

// localHostIPs caches this machine's interface addresses for
// addrIsLocalHost. Interfaces are assumed stable for the process lifetime;
// a daemon that gains addresses after start simply won't auto-upgrade peers
// on those new addresses, which is a performance miss, not an error.
var localHostIPs struct {
	once sync.Once
	set  map[string]bool
}

// addrIsLocalHost reports whether the host part of a "host:port" address
// names this machine: "localhost", any loopback IP, or an IP assigned to a
// local interface. Hostnames other than "localhost" are not resolved — DNS
// in a dial decision would add latency and nondeterminism, and cluster
// tooling passes literal IPs.
func addrIsLocalHost(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return false
	}
	if ip.IsLoopback() {
		return true
	}
	localHostIPs.once.Do(func() {
		localHostIPs.set = make(map[string]bool)
		ifAddrs, err := net.InterfaceAddrs()
		if err != nil {
			return
		}
		for _, a := range ifAddrs {
			if ipn, ok := a.(*net.IPNet); ok {
				localHostIPs.set[ipn.IP.String()] = true
			}
		}
	})
	return localHostIPs.set[ip.String()]
}

// SetWireFormat selects the outgoing frame encoding (default WireBinary).
// Call it before the first Send; inbound frames are auto-detected per
// connection regardless, so peers may differ.
func (t *StreamTransport) SetWireFormat(f WireFormat) { t.wireFormat.Store(int32(f)) }

// WireFormat returns the transport's outgoing frame encoding.
func (t *StreamTransport) WireFormat() WireFormat { return WireFormat(t.wireFormat.Load()) }

// SetFlushWindow makes every connection's writer wait this long after the
// first queued frame before flushing, widening write batches at the cost of
// up to that much added delivery latency (0, the default, flushes as soon as
// the queue drains — pure coalescing with no added latency). Call before the
// first Send.
func (t *StreamTransport) SetFlushWindow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.flushWindow.Store(int64(d))
}

// SetBatching toggles cross-daemon super-frame aggregation (default on,
// binary format only; JSON always sends per-message frames). When enabled,
// every message bound for the same destination daemon within one writer
// drain coalesces into FrameBatch super-frames sharing one frame header, one
// pend entry, one retransmission timer, and one returning ack — the
// per-message reliable-delivery bookkeeping collapses to per-batch. Call
// before the first Send.
func (t *StreamTransport) SetBatching(on bool) { t.batching.Store(on) }

// Batching reports whether super-frame aggregation is enabled.
func (t *StreamTransport) Batching() bool { return t.batching.Load() }

// batched reports whether outgoing frames actually aggregate: batching is
// enabled and the outgoing format is binary.
func (t *StreamTransport) batched() bool {
	return t.batching.Load() && t.WireFormat() == WireBinary
}

// SetDedupWindow bounds receiver-side dedup retention to the given number of
// ticks (default DefaultDedupWindowTicks): entries are reclaimed once the
// newest SentTick their shard has seen passes them by one to two windows.
// The window must comfortably exceed the retransmission lifetime
// (RTO·2^maxRetransmits) in ticks, or a late retransmission could be
// delivered twice. Call before the first Send.
func (t *StreamTransport) SetDedupWindow(ticks int) {
	if ticks > 0 {
		t.dedupWindow.Store(int64(ticks))
	}
}

// SetDialTimeout bounds how long a remote write retries dialing an
// unreachable peer before failing the attempt (default 10s — generous so a
// cluster's processes may start in any order).
func (t *StreamTransport) SetDialTimeout(d time.Duration) { t.dialTimeout = d }

// SetRetransmit tunes reliable delivery: rto is the wait before the first
// retransmission (doubling per attempt), maxRetransmits the budget before a
// message is abandoned and counted as dropped. Zero values keep defaults;
// maxRetransmits < 0 disables retransmission entirely.
//
// An explicit rto also becomes the adaptive RTO's floor: the per-peer RTT
// estimator may only raise the timeout above it, never undercut it, so a
// caller that asked for a quiet wire (a long rto) or a deterministic test
// cadence (a short one) keeps what it asked for.
func (t *StreamTransport) SetRetransmit(rto time.Duration, maxRetransmits int) {
	if rto > 0 {
		t.rto = rto
		t.rtoMin = rto
		if t.rtoMax < 16*rto {
			t.rtoMax = 16 * rto
		}
	}
	if maxRetransmits != 0 {
		t.maxRetrans = maxRetransmits
	}
}

// SetOverloadLimits tunes the transport's bounded queues: queueFrames caps
// each connection's writer queue, pending caps the transport-wide unacked
// reliable-send set. Zero keeps the current value, negative disables the cap.
// Call before the first Send.
func (t *StreamTransport) SetOverloadLimits(queueFrames, pending int) {
	if queueFrames != 0 {
		t.queueLimit = queueFrames
	}
	if pending != 0 {
		t.pendLimit = pending
	}
}

// SetBreaker tunes the per-peer circuit breakers: threshold is the number of
// consecutive delivery failures that opens a peer's breaker, cooldown how
// long an open breaker waits before half-opening for a single probe. Zero
// keeps the current value, threshold < 0 disables breakers (including the
// membership-driven trip). Call before the first Send.
func (t *StreamTransport) SetBreaker(threshold int, cooldown time.Duration) {
	if threshold != 0 {
		t.breakerN = threshold
	}
	if cooldown > 0 {
		t.breakerWait = cooldown
	}
}

// Overload returns the transport's overload-protection ledger: what the
// bounded queues shed, what membership backpressure delayed, and what the
// peer breakers refused.
func (t *StreamTransport) Overload() OverloadCounts {
	return OverloadCounts{
		ShedQueue:           t.ovShedQueue.Load(),
		ShedPend:            t.ovShedPend.Load(),
		MemberBackpressured: t.ovMemberWait.Load(),
		RetryBurstTrimmed:   t.ovRetryTrim.Load(),
		DroppedDeadPeer:     t.ovDeadPeer.Load(),
		BreakerOpens:        t.ovBreakerOpen.Load(),
		BreakerDrops:        t.ovBreakerDrop.Load(),
	}
}

// peer returns (creating on first use) the adaptive state for a peer address.
func (t *StreamTransport) peer(addr string) *peerState {
	if v, ok := t.peerSt.Load(addr); ok {
		return v.(*peerState)
	}
	v, _ := t.peerSt.LoadOrStore(addr, &peerState{})
	return v.(*peerState)
}

// allowSend consults ps's circuit breaker; true when breakers are disabled.
// The closed steady state is decided lock-free (see peerState.fastClosed).
func (t *StreamTransport) allowSend(ps *peerState) bool {
	if t.breakerN <= 0 || ps.fastClosed() {
		return true
	}
	return ps.allow(t.breakerN, time.Now())
}

// peerFailure records one delivery failure against addr; if that trips the
// breaker, the peer's pend entries are flushed so retransmission spend stops
// immediately.
func (t *StreamTransport) peerFailure(addr string) {
	if t.breakerN <= 0 {
		return
	}
	if t.peer(addr).failure(t.breakerN, t.breakerWait, time.Now()) {
		t.ovBreakerOpen.Add(1)
		t.ovBreakerDrop.Add(t.flushPend(func(p *pendingSend) bool { return p.addr == addr }))
	}
}

// flushPend removes every pend entry matching keep==true, stopping its
// retransmission timer, and returns how many logical messages it removed
// (a super-frame entry counts its sub-messages). Callers must not hold any
// pend shard lock.
func (t *StreamTransport) flushPend(match func(*pendingSend) bool) int64 {
	var n int64
	for i := range t.pend {
		sh := &t.pend[i]
		sh.mu.Lock()
		for seq, p := range sh.m {
			if match(p) {
				p.retry.Stop()
				delete(sh.m, seq)
				n += p.msgCount()
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// PeerDown implements PeerStatusSink: the membership layer declared node u
// dead. In-flight seqs destined to u are flushed and counted (whether or not
// breakers are enabled — a dead destination earns no retransmission budget),
// and when every node hosted at u's address is believed dead the address's
// breaker trips, halting new sends until a cooldown probe or PeerUp.
func (t *StreamTransport) PeerDown(u graph.NodeID) {
	t.ovDeadPeer.Add(t.flushPend(func(p *pendingSend) bool { return p.destinedTo(int(u)) }))
	t.peerMu.RLock()
	addr, ok := t.peers[u]
	hosted := 0
	if ok {
		for _, a := range t.peers {
			if a == addr {
				hosted++
			}
		}
	}
	t.peerMu.RUnlock()
	if !ok {
		return
	}
	ps := t.peer(addr)
	if ps.markDead(u, hosted) && t.breakerN > 0 {
		if ps.trip(t.breakerWait, time.Now()) {
			t.ovBreakerOpen.Add(1)
			t.ovBreakerDrop.Add(t.flushPend(func(p *pendingSend) bool { return p.addr == addr }))
		}
	}
}

// PeerUp implements PeerStatusSink: node u refuted its suspicion or rejoined.
// Its address's breaker closes so traffic resumes immediately.
func (t *StreamTransport) PeerUp(u graph.NodeID) {
	t.peerMu.RLock()
	addr, ok := t.peers[u]
	t.peerMu.RUnlock()
	if !ok {
		return
	}
	ps := t.peer(addr)
	ps.markAlive(u)
	ps.reset()
}

// Dropped returns the number of messages lost for any terminal reason since
// the transport started: retransmission give-ups, messages unacked or
// undelivered at Close, undecodable payloads, misroutes, and everything the
// overload protection shed or refused. Suppressed duplicates are not drops
// (their content arrived).
func (t *StreamTransport) Dropped() int64 {
	return t.dropsGiveUp.Load() + t.dropsClosed.Load() + t.dropsDecode.Load() +
		t.dropsMisroute.Load() + t.Overload().Shed()
}

// Retransmits returns the number of reliable-delivery retransmissions.
func (t *StreamTransport) Retransmits() int64 { return t.retransmits.Load() }

// DupsSuppressed returns the number of duplicate arrivals the receiver-side
// dedup swallowed.
func (t *StreamTransport) DupsSuppressed() int64 { return t.dupsSuppressed.Load() }

// WireBytesOut returns the total frame bytes this transport wrote to its
// sockets (data frames and acks, both formats). Benchmarks divide it by the
// message count to report bytes per delivered message.
func (t *StreamTransport) WireBytesOut() int64 { return t.bytesOut.Load() }

// WireFlushes returns the number of socket write batches (one syscall each):
// every end-of-drain flush of a connection's buffered writer, plus the
// internal spills a batch larger than the write buffer forces. The count is
// consistent across flush windows — the 0-window pure-coalescing path and a
// widened window are measured identically — so WireFramesOut/WireFlushes is
// an honest frames-per-syscall factor either way.
func (t *StreamTransport) WireFlushes() int64 { return t.flushes.Load() }

// WireFramesOut returns the physical frames written (a FrameBatch
// super-frame counts once; JSON counts encoder calls).
func (t *StreamTransport) WireFramesOut() int64 { return t.framesOut.Load() }

// WireMsgsOut returns the logical data messages carried by the frames
// written: WireMsgsOut/WireFramesOut is the realized aggregation factor
// (1.0 with batching off), and WireFramesOut/WireFlushes the realized write
// coalescing.
func (t *StreamTransport) WireMsgsOut() int64 { return t.msgsOut.Load() }

// WireLocalFrames returns the subset of WireFramesOut that traveled a local
// fabric — a unix socket or an in-process ring — instead of TCP. A cluster
// harness expecting the zero-TCP fast path between co-located daemons
// asserts this is positive on every daemon.
func (t *StreamTransport) WireLocalFrames() int64 { return t.localFrames.Load() }

// WireLocalBytes returns the subset of WireBytesOut written to local fabrics.
func (t *StreamTransport) WireLocalBytes() int64 { return t.localBytes.Load() }

// pendingCount returns the number of unacked reliable sends (tests).
func (t *StreamTransport) pendingCount() int {
	n := 0
	for i := range t.pend {
		t.pend[i].mu.Lock()
		n += len(t.pend[i].m)
		t.pend[i].mu.Unlock()
	}
	return n
}

// dedupSize returns the number of live dedup entries (tests verify the
// tick-windowed eviction with it).
func (t *StreamTransport) dedupSize() int {
	n := 0
	for i := range t.dedup {
		n += t.dedup[i].size()
	}
	return n
}

// Faults implements FaultReporter with the transport's real-network ledger.
func (t *StreamTransport) Faults() FaultReport {
	return FaultReport{
		FaultCounts: FaultCounts{
			TransportDrops: t.Dropped(),
			Retransmits:    t.retransmits.Load(),
			DupsSuppressed: t.dupsSuppressed.Load(),
		},
		Overload: t.Overload(),
	}
}

// Send implements Transport. Local destinations are delivered in memory;
// remote destinations are encoded eagerly (so codec errors surface here)
// and handed to reliable delivery after the latency delay.
func (t *StreamTransport) Send(msg Message, delay time.Duration) error {
	select {
	case <-t.closed:
		return ErrTransportClosed
	default:
	}
	if t.draining.Load() {
		return ErrTransportClosed
	}
	if t.hosted[msg.To] {
		if s := t.sink.Load(); s != nil && (*s)(msg, delay) {
			return nil
		}
		if t.delays.schedule(delay, func() { t.deliverLocal(msg) }) == nil {
			t.dropsClosed.Add(1)
			return ErrTransportClosed
		}
		return nil
	}
	t.peerMu.RLock()
	addr, ok := t.peers[msg.To]
	t.peerMu.RUnlock()
	if !ok {
		return fmt.Errorf("live: no peer address for node %d", msg.To)
	}
	pt, data, err := encodePayload(msg.Payload)
	if err != nil {
		return err
	}
	w := wireMessage{
		Kind:        uint8(msg.Kind),
		Seq:         t.seq.Add(1),
		From:        int(msg.From),
		To:          int(msg.To),
		EdgeID:      msg.EdgeID,
		Latency:     msg.Latency,
		SentTick:    msg.SentTick,
		PayloadType: pt,
		Payload:     data,
	}
	if delay <= 0 {
		// Zero-latency fast path: when the connection is already pooled,
		// enqueueing is non-blocking, so the timer goroutine (the dominant
		// per-message cost at high rates) is skipped entirely. The first
		// message to a peer — or a redial after a break — still takes the
		// timer path so the dial never blocks the caller.
		if cs, ok := t.pooled(addr); ok {
			t.transmitOn(cs, addr, w)
			return nil
		}
	}
	if t.delays.schedule(delay, func() { t.transmit(addr, w) }) == nil {
		t.dropsClosed.Add(1)
		return ErrTransportClosed
	}
	return nil
}

// deliverLocal pushes msg onto its destination's inbox channel — the legacy
// delivery path for raw-transport users; the sharded runtime's sink bypasses
// it entirely.
func (t *StreamTransport) deliverLocal(msg Message) {
	ch := t.inbox(msg.To)
	select {
	case ch <- msg:
		return
	default:
	}
	select {
	case ch <- msg:
	case <-t.closed:
	}
}

// pendShard returns the shard owning seq.
func (t *StreamTransport) pendShard(seq uint64) *pendShard {
	return &t.pend[seq&(pendShards-1)]
}

// transmit performs the first wire attempt of w and registers it for
// retransmission until acked (or the budget runs out). This is where the
// breaker and the pend cap gate admission: a refused send is a terminal,
// counted loss (same contract as an injected drop — gossip re-converges).
// In batched mode the message only joins the destination daemon's
// aggregation queue here; reliable-delivery registration happens per
// super-frame at flush time (registerBatch).
func (t *StreamTransport) transmit(addr string, w wireMessage) { t.transmitOn(nil, addr, w) }

// transmitOn is transmit with an optional already-resolved connection hint
// (the send fast path just looked it up; re-resolving costs a map lookup per
// message). A nil or stale hint falls back to the ordinary dial path.
func (t *StreamTransport) transmitOn(cs *connState, addr string, w wireMessage) {
	ps := t.peer(addr)
	if !t.allowSend(ps) {
		t.ovBreakerDrop.Add(1)
		return
	}
	if t.batched() {
		t.writeQueuedOn(cs, addr, &w)
		return
	}
	p := &pendingSend{addr: addr, ps: ps, w: w, sentAt: time.Now()}
	sh := t.pendShard(w.Seq)
	sh.mu.Lock()
	select {
	case <-t.closed:
		sh.mu.Unlock()
		t.dropsClosed.Add(1)
		return
	default:
	}
	if sh.m == nil {
		sh.m = make(map[uint64]*pendingSend)
	}
	if t.pendLimit > 0 && MsgKind(w.Kind) != MsgMember {
		perShard := t.pendLimit / pendShards
		if perShard < 1 {
			perShard = 1
		}
		if len(sh.m) >= perShard && !t.shedOldestLocked(sh) {
			// The shard is full of membership entries (exempt from
			// shedding): shed the gossip newcomer instead.
			sh.mu.Unlock()
			t.ovShedPend.Add(1)
			return
		}
	}
	sh.m[w.Seq] = p
	t.armRetryLocked(p)
	sh.mu.Unlock()
	t.write(addr, &w)
}

// writeQueued queues w on addr's aggregation queue, dialing if needed. In
// batched mode a message becomes reliable only once its super-frame is
// flushed; one that never reaches a writer queue — the peer is undialable,
// or the connection died twice in a row — is a terminal, counted loss,
// exactly like a retransmission give-up.
func (t *StreamTransport) writeQueued(addr string, w *wireMessage) {
	t.writeQueuedOn(nil, addr, w)
}

// writeQueuedOn is writeQueued with an optional pre-resolved connection: when
// the caller already holds the pooled connState for addr the first attempt
// skips the conn() lookup entirely. A failed enqueue clears the hint so the
// next attempt re-dials through the ordinary path.
func (t *StreamTransport) writeQueuedOn(cs *connState, addr string, w *wireMessage) {
	for attempt := 0; attempt < 2; attempt++ {
		if cs == nil {
			var err error
			cs, err = t.conn(addr)
			if err != nil {
				if errors.Is(err, ErrTransportClosed) {
					t.dropsClosed.Add(1)
				} else {
					t.peerFailure(addr)
					t.dropsGiveUp.Add(1)
				}
				return
			}
		}
		if cs.enqueue(w) {
			return
		}
		cs = nil
	}
	t.dropsGiveUp.Add(1)
}

// batchPool recycles super-frame batch slices between registerBatch and the
// first-attempt ack path. In the steady state every super-frame is acked on
// its first attempt, so without recycling each one allocates (and the GC
// zeroes, copies, and scans) up to maxBatchMsgs of wireMessage — the single
// largest allocation source on the local-fabric hot path. Entries hold
// *[]wireMessage to keep Get/Put free of slice-header boxing allocations.
var batchPool sync.Pool

// registerBatch admits one about-to-be-written super-frame to reliable
// delivery: one pend entry and one retransmission timer for the whole batch,
// keyed by its last sub-message's Seq — the receiver decodes the batch once
// and acks exactly that Seq. The sub-messages are copied out of the drained
// queue slice (which the writer recycles). ok=false means the batch was
// refused admission — transport closed, or the pend cap with no gossip left
// to shed — a terminal, counted loss; the caller must not write the frame.
func (t *StreamTransport) registerBatch(addr string, ps *peerState, msgs []wireMessage) (key uint64, ok bool) {
	var batch []wireMessage
	if v, _ := batchPool.Get().(*[]wireMessage); v != nil {
		batch = append((*v)[:0], msgs...)
	} else {
		batch = append([]wireMessage(nil), msgs...)
	}
	member := false
	for i := range batch {
		if MsgKind(batch[i].Kind) == MsgMember {
			member = true
			break
		}
	}
	key = batch[len(batch)-1].Seq
	p := &pendingSend{addr: addr, ps: ps, w: batch[len(batch)-1], batch: batch, member: member, sentAt: time.Now()}
	sh := t.pendShard(key)
	sh.mu.Lock()
	select {
	case <-t.closed:
		sh.mu.Unlock()
		t.dropsClosed.Add(int64(len(batch)))
		return 0, false
	default:
	}
	if sh.m == nil {
		sh.m = make(map[uint64]*pendingSend)
	}
	if t.pendLimit > 0 && !member {
		perShard := t.pendLimit / pendShards
		if perShard < 1 {
			perShard = 1
		}
		if len(sh.m) >= perShard && !t.shedOldestLocked(sh) {
			sh.mu.Unlock()
			t.ovShedPend.Add(int64(len(batch)))
			return 0, false
		}
	}
	sh.m[key] = p
	t.armRetryLocked(p)
	sh.mu.Unlock()
	return key, true
}

// shedOldestLocked evicts the lowest-seq gossip entry of a full pend shard
// (oldest-first shedding: the oldest in-flight payload is the most likely to
// have been superseded by a later exchange). False when the shard holds only
// membership entries. The caller holds sh.mu.
func (t *StreamTransport) shedOldestLocked(sh *pendShard) bool {
	var oldest *pendingSend
	for _, q := range sh.m {
		if q.member || MsgKind(q.w.Kind) == MsgMember {
			continue
		}
		if oldest == nil || q.w.Seq < oldest.w.Seq {
			oldest = q
		}
	}
	if oldest == nil {
		return false
	}
	oldest.retry.Stop()
	delete(sh.m, oldest.w.Seq)
	t.ovShedPend.Add(oldest.msgCount())
	return true
}

// armRetryLocked schedules the next retransmission for p; p's pend shard
// must be locked by the caller. The base timeout adapts to the peer's
// measured round trip (see peerState.rto) and doubles per attempt up to
// rtoMax.
func (t *StreamTransport) armRetryLocked(p *pendingSend) {
	backoff := p.ps.rto(t.rto, t.rtoMin, t.rtoMax)
	for i := 0; i < p.attempts && backoff < t.rtoMax; i++ {
		backoff <<= 1
	}
	if backoff > t.rtoMax {
		backoff = t.rtoMax
	}
	seq := p.w.Seq
	p.retry = t.retries.schedule(backoff, func() { t.retry(seq) })
}

// retry retransmits one unacked message, or abandons it once the budget is
// spent. A no-op if the ack arrived (or the transport closed) in the
// meantime.
func (t *StreamTransport) retry(seq uint64) {
	sh := t.pendShard(seq)
	sh.mu.Lock()
	p, ok := sh.m[seq]
	if !ok {
		sh.mu.Unlock()
		return
	}
	select {
	case <-t.closed:
		sh.mu.Unlock()
		return // Close sweeps and counts the pending map
	default:
	}
	p.attempts++
	if t.maxRetrans < 0 || p.attempts > t.maxRetrans {
		addr := p.addr
		delete(sh.m, seq)
		sh.mu.Unlock()
		t.dropsGiveUp.Add(p.msgCount())
		t.peerFailure(addr)
		return
	}
	if t.breakerN > 0 && !p.ps.fastClosed() && !p.ps.allowRetry(t.breakerN, time.Now()) {
		// The peer's breaker opened since this message was sent: stop
		// spending retransmission budget on it.
		delete(sh.m, seq)
		sh.mu.Unlock()
		t.ovBreakerDrop.Add(p.msgCount())
		return
	}
	p.retransmitted = true
	t.armRetryLocked(p)
	addr, w := p.addr, p.w
	isBatch := p.batch != nil
	sh.mu.Unlock()
	t.retransmits.Add(p.msgCount())
	if isBatch {
		t.writeRetry(addr, p)
		return
	}
	t.write(addr, &w)
}

// writeRetry re-queues a registered super-frame for retransmission on addr's
// writer (qRetry, drained ahead of fresh data — the batch is older than
// anything queued since). The batch stays pending either way: a failed dial
// or dead connection leaves delivery to the next RTO firing.
func (t *StreamTransport) writeRetry(addr string, p *pendingSend) {
	for attempt := 0; attempt < 2; attempt++ {
		cs, err := t.conn(addr)
		if err != nil {
			if !errors.Is(err, ErrTransportClosed) {
				t.peerFailure(addr)
			}
			return
		}
		if cs.enqueueRetry(p) {
			return
		}
	}
}

// retryNow fires seq's retransmission immediately — the broken-connection
// path: a failed write evicts the connection and calls this, so the first
// retry redials at once instead of waiting out the RTO backoff.
func (t *StreamTransport) retryNow(seq uint64) {
	sh := t.pendShard(seq)
	sh.mu.Lock()
	p, ok := sh.m[seq]
	if ok && p.retry != nil {
		p.retry.Stop()
	}
	sh.mu.Unlock()
	if ok {
		t.retry(seq)
	}
}

// ack resolves one pending message: its retransmission timer is stopped, the
// entry dropped, and the peer's adaptive state credited — an RTT sample when
// the message was never retransmitted (Karn's rule), a breaker success
// either way.
func (t *StreamTransport) ack(seq uint64) {
	sh := t.pendShard(seq)
	sh.mu.Lock()
	p, ok := sh.m[seq]
	if ok {
		p.retry.Stop()
		delete(sh.m, seq)
	}
	sh.mu.Unlock()
	if !ok {
		return
	}
	if !p.retransmitted {
		p.ps.observeRTT(time.Since(p.sentAt))
		if p.batch != nil {
			// Acked on the first attempt: retry() marks retransmitted under
			// the shard lock before any requeue, and the writer consumed the
			// original bytes before they could be acked, so this batch slice
			// is provably unaliased — recycle it.
			b := p.batch[:0]
			p.batch = nil
			batchPool.Put(&b)
		}
	}
	p.ps.success()
}

// Recv implements Transport. Inbox channels exist only for nodes actually
// received on — the sharded runtime never calls Recv, so hosting 100k nodes
// costs a set entry each, not a buffered channel.
func (t *StreamTransport) Recv(u graph.NodeID) <-chan Message {
	if !t.hosted[u] {
		return nil
	}
	return t.inbox(u)
}

// inbox returns u's inbox channel, creating it on first use. Callers must
// have checked t.hosted[u]. The steady state is one atomic load and a map
// read of an immutable snapshot — the delivery path calls this per message,
// and a shared mutex here serializes otherwise-independent read loops.
func (t *StreamTransport) inbox(u graph.NodeID) chan Message {
	if m := t.inboxSnap.Load(); m != nil {
		if ch, ok := (*m)[u]; ok {
			return ch
		}
	}
	t.inboxMu.Lock()
	ch := t.inboxes[u]
	if ch == nil {
		ch = make(chan Message, t.buffer)
		t.inboxes[u] = ch
		next := make(map[graph.NodeID]chan Message, len(t.inboxes))
		for k, v := range t.inboxes {
			next[k] = v
		}
		t.inboxSnap.Store(&next)
	}
	t.inboxMu.Unlock()
	return ch
}

// Hosts implements SinkTransport without materializing an inbox.
func (t *StreamTransport) Hosts(u graph.NodeID) bool { return t.hosted[u] }

// SetSink implements SinkTransport: locally destined sends and wire arrivals
// for hosted nodes are handed to sink instead of inbox channels.
func (t *StreamTransport) SetSink(sink DeliverySink) bool {
	if sink == nil {
		t.sink.Store(nil)
	} else {
		t.sink.Store(&sink)
	}
	return true
}

// Close implements Transport: it stops the listener, all connections and
// delivery timers, and counts undelivered or unacked messages as dropped.
func (t *StreamTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.connMu.Lock()
		lns := append([]streamListener(nil), t.listeners...)
		t.connMu.Unlock()
		for _, sl := range lns {
			sl.ln.Close()
		}
		t.dropsClosed.Add(t.delays.close())
		t.retries.close() // RTOs aren't deliveries; the pend sweep below counts them
		for i := range t.pend {
			sh := &t.pend[i]
			sh.mu.Lock()
			for seq, p := range sh.m {
				p.retry.Stop()
				delete(sh.m, seq)
				t.dropsClosed.Add(p.msgCount())
			}
			sh.mu.Unlock()
		}
		batched := t.batched()
		t.connMu.Lock()
		for _, cs := range t.outs {
			// Rescue backpressured enqueuers before the socket dies. In
			// batched mode the queued frames were never pend-registered (the
			// sweep above missed them), so count them here; queued
			// retransmissions were swept as pend entries already.
			data, _ := cs.markDead()
			if batched {
				t.dropsClosed.Add(int64(len(data)))
			}
			cs.c.Close()
		}
		for _, cs := range t.accepts {
			cs.markDead()
			cs.c.Close()
		}
		t.connMu.Unlock()
	})
	t.wg.Wait()
	return nil
}

// queueDepth returns the total data frames sitting in writer queues.
func (t *StreamTransport) queueDepth() int {
	t.connMu.Lock()
	conns := make([]*connState, 0, len(t.outs)+len(t.accepts))
	for _, cs := range t.outs {
		conns = append(conns, cs)
	}
	conns = append(conns, t.accepts...)
	t.connMu.Unlock()
	n := 0
	for _, cs := range conns {
		cs.qmu.Lock()
		n += cs.qLen + len(cs.qRetry)
		cs.qmu.Unlock()
	}
	return n
}

// Drain implements Drainer: stop admitting sends and stop the latency timers
// (a draining process is leaving — a not-yet-sent message is a counted loss),
// then wait for the writer queues to flush and every reliable send to resolve
// (ack, give-up, or breaker flush) before closing. On deadline expiry the
// transport closes anyway and the report says what was abandoned.
func (t *StreamTransport) Drain(ctx context.Context) (DrainReport, error) {
	start := time.Now()
	select {
	case <-t.closed:
		return DrainReport{}, ErrTransportClosed
	default:
	}
	t.draining.Store(true)
	rep := DrainReport{AbandonedTimers: t.delays.close()}
	t.dropsClosed.Add(rep.AbandonedTimers)
	poll := time.NewTimer(2 * time.Millisecond)
	defer poll.Stop()
	for {
		if t.queueDepth() == 0 && t.pendingCount() == 0 {
			rep.Clean = true
			err := t.Close()
			rep.Wall = time.Since(start)
			return rep, err
		}
		select {
		case <-ctx.Done():
			rep.QueuedAtClose = t.queueDepth()
			rep.PendingAtClose = t.pendingCount()
			t.Close()
			rep.Wall = time.Since(start)
			return rep, ctx.Err()
		case <-t.closed:
			rep.Wall = time.Since(start)
			return rep, ErrTransportClosed
		case <-poll.C:
			poll.Reset(2 * time.Millisecond)
		}
	}
}

func (t *StreamTransport) acceptLoop(sl streamListener) {
	defer t.wg.Done()
	for {
		c, err := sl.ln.Accept()
		if err != nil {
			return // listener closed
		}
		tuneUnixConn(c)
		cs := t.newConnState(c, "", sl.local)
		t.connMu.Lock()
		select {
		case <-t.closed:
			// Accepted in the middle of Close after it swept the conn
			// lists; drop the connection instead of leaking it.
			t.connMu.Unlock()
			c.Close()
			continue
		default:
		}
		t.accepts = append(t.accepts, cs)
		t.wg.Add(2)
		t.connMu.Unlock()
		go t.readLoop(cs)
		go t.writeLoop(cs)
	}
}

// connState is one connection (pooled outbound or accepted inbound). Frames
// are not written by senders directly: they are queued under qmu and drained
// by the connection's writer goroutine (writeLoop), which batches everything
// available — data frames and pending acks — through one buffered writer, so
// a burst of same-tick messages costs one syscall instead of one each.
type connState struct {
	t     *StreamTransport
	c     net.Conn
	addr  string // peer listen address for pooled outbound conns; "" for accepted
	local bool   // connection rides a local fabric (unix socket or ring)

	qmu        sync.Mutex
	qHead      *msgChunk // chunked data-frame queue; see msgChunk
	qTail      *msgChunk
	qLen       int
	qAcks      []uint64
	qRetry     []*pendingSend // registered super-frames awaiting retransmission
	spillAcks  []uint64       // retired queue slices, reused to avoid reallocating
	spillRetry []*pendingSend
	dead       bool

	notify  chan struct{} // wake the writer (capacity 1)
	deadCh  chan struct{} // closed by markDead
	spaceCh chan struct{} // writer signals queue space to backpressured enqueuers

	// Writer-goroutine-owned state: the buffered writer, the binary
	// encoder's intern table and scratch, and the frame build buffer.
	bw   *bufio.Writer
	enc  wireEnc
	jenc *json.Encoder
	buf  []byte

	// Read-loop-owned one-entry payload-decoder memo. The PayloadType
	// strings a connection delivers come from its decoder's intern table, so
	// consecutive messages of the same type share the exact string value and
	// the equality test hits its pointer fast path — the codec registry's
	// atomic load and map lookup are paid once per type switch, not per
	// message.
	decName string
	decFn   PayloadDecoder
}

// chunkFrames is the per-chunk capacity of the writer queue, deliberately
// equal to maxBatchMsgs so one full chunk encodes as exactly one full-size
// super-frame and the framing an unthrottled sender produces is byte-for-byte
// what a contiguous queue produced.
const chunkFrames = maxBatchMsgs

// msgChunk is one fixed-size segment of a connection's writer queue. A
// contiguous []wireMessage queue doubles in place as a backlog builds, and
// against an unthrottled sender that means repeatedly allocating, zeroing and
// copying a multi-megabyte array while the GC rescans all of it — the
// dominant cost on the local-fabric hot path. Chunks never move once linked:
// enqueue fills the tail, the writer consumes whole chunks head-first, and
// retired chunks recycle through chunkPool. Entries are not cleared on
// recycle; the next fill overwrites them, and anything stale past n is at
// worst a short-lived payload reference.
type msgChunk struct {
	next *msgChunk
	n    int
	msgs [chunkFrames]wireMessage
}

var chunkPool = sync.Pool{New: func() any { return new(msgChunk) }}

func getChunk() *msgChunk {
	c := chunkPool.Get().(*msgChunk)
	c.next, c.n = nil, 0
	return c
}

// flattenChunks copies a chunk chain into one slice (cold paths only:
// connection teardown and drain accounting), recycling the chunks.
func flattenChunks(head *msgChunk) []wireMessage {
	n := 0
	for c := head; c != nil; c = c.next {
		n += c.n
	}
	if n == 0 {
		return nil
	}
	out := make([]wireMessage, 0, n)
	for c := head; c != nil; {
		out = append(out, c.msgs[:c.n]...)
		next := c.next
		chunkPool.Put(c)
		c = next
	}
	return out
}

// decodePayload is the registry's decodePayload through the connection's
// memo. Only the connection's read loop may call it.
func (cs *connState) decodePayload(name string, data []byte) (sim.Payload, error) {
	if name == "" {
		return nil, nil
	}
	if name == cs.decName {
		return cs.decFn(data)
	}
	dec, ok := codecState.Load().decoders[name]
	if !ok {
		return nil, fmt.Errorf("live: unknown wire payload type %q", name)
	}
	cs.decName, cs.decFn = name, dec
	return dec(data)
}

// countingWriter counts bytes and socket write batches for WireBytesOut and
// WireFlushes. Every Write here is one syscall batch: the end-of-drain
// flushes and the internal spills an oversized batch forces both land on
// this seam, so the flush count stays consistent between the 0-window
// coalescing path and widened flush windows.
type countingWriter struct {
	c       net.Conn
	n       *atomic.Int64
	flushes *atomic.Int64
	localN  *atomic.Int64 // non-nil on local-fabric connections
}

func (w countingWriter) Write(p []byte) (int, error) {
	n, err := w.c.Write(p)
	w.n.Add(int64(n))
	if w.localN != nil {
		w.localN.Add(int64(n))
	}
	w.flushes.Add(1)
	return n, err
}

func (t *StreamTransport) newConnState(c net.Conn, addr string, local bool) *connState {
	cw := countingWriter{c: c, n: &t.bytesOut, flushes: &t.flushes}
	if local {
		cw.localN = &t.localBytes
	}
	cs := &connState{
		t:       t,
		c:       c,
		addr:    addr,
		local:   local,
		notify:  make(chan struct{}, 1),
		deadCh:  make(chan struct{}),
		spaceCh: make(chan struct{}, 1),
		bw:      bufio.NewWriterSize(cw, 32<<10),
	}
	if t.WireFormat() == WireJSON {
		cs.jenc = json.NewEncoder(cs.bw)
	}
	return cs
}

// countFrames credits n physical frames to the transport's ledger, and to the
// local-fabric ledger when this connection rides one.
func (cs *connState) countFrames(n int64) {
	cs.t.framesOut.Add(n)
	if cs.local {
		cs.t.localFrames.Add(n)
	}
}

// memberWaitMax bounds how long a backpressured membership enqueue blocks
// before leaving delivery to its RTO timer — the escape hatch that keeps a
// stalled connection from wedging a node goroutine (and with it the whole
// runtime's shutdown) forever.
const memberWaitMax = 2 * time.Second

// enqueue queues one data frame for the writer, enforcing the transport's
// writer-queue cap. Past the cap, gossip frames shed the oldest queued gossip
// frame (its pend entry is cancelled — a terminal, counted loss; push-pull
// re-converges) and membership frames apply hard backpressure: they shed
// gossip to make room for themselves, and block when the queue is entirely
// membership traffic. Returns false only when the connection is dead (the
// caller redials); a shed newcomer returns true — it was handled, terminally.
func (cs *connState) enqueue(w *wireMessage) bool {
	t := cs.t
	limit := t.queueLimit
	isMember := MsgKind(w.Kind) == MsgMember
	var shed []uint64
	counted := false // MemberBackpressured once per blocking episode
	deadline := time.Time{}
	cs.qmu.Lock()
	for !cs.dead && limit > 0 && cs.qLen >= limit {
		// Shed the oldest queued gossip frame; membership frames are never
		// shed from the queue.
		if seq, ok := cs.shedOldestGossipLocked(); ok {
			shed = append(shed, seq)
			continue
		}
		// Queue entirely membership frames. A gossip newcomer is shed; a
		// membership newcomer waits for the writer. The wait is bounded so a
		// wedged connection cannot stall the caller forever: past the
		// deadline the frame is queued anyway (the cap overshoots by at most
		// the number of waiters).
		if !isMember {
			cs.qmu.Unlock()
			t.dropQueued(append(shed, w.Seq))
			return true
		}
		if !counted {
			counted = true
			deadline = time.Now().Add(memberWaitMax)
			t.ovMemberWait.Add(1)
		} else if time.Now().After(deadline) {
			break
		}
		cs.qmu.Unlock()
		select {
		case <-cs.spaceCh:
		case <-cs.deadCh:
		case <-t.closed:
		case <-time.After(10 * time.Millisecond):
		}
		cs.qmu.Lock()
	}
	if cs.dead {
		cs.qmu.Unlock()
		t.dropQueued(shed)
		return false
	}
	if cs.qTail == nil || cs.qTail.n == chunkFrames {
		c := getChunk()
		if cs.qTail == nil {
			cs.qHead = c
		} else {
			cs.qTail.next = c
		}
		cs.qTail = c
	}
	cs.qTail.msgs[cs.qTail.n] = *w
	cs.qTail.n++
	cs.qLen++
	cs.qmu.Unlock()
	t.dropQueued(shed)
	cs.wake()
	return true
}

// shedOldestGossipLocked removes the oldest queued gossip frame and returns
// its seq; ok=false means the queue holds only membership frames. Caller
// holds qmu.
func (cs *connState) shedOldestGossipLocked() (seq uint64, ok bool) {
	var prev *msgChunk
	for c := cs.qHead; c != nil; prev, c = c, c.next {
		for i := 0; i < c.n; i++ {
			if MsgKind(c.msgs[i].Kind) == MsgMember {
				continue
			}
			seq = c.msgs[i].Seq
			copy(c.msgs[i:], c.msgs[i+1:c.n])
			c.n--
			cs.qLen--
			if c.n == 0 {
				if prev == nil {
					cs.qHead = c.next
				} else {
					prev.next = c.next
				}
				if cs.qTail == c {
					cs.qTail = prev
				}
				chunkPool.Put(c)
			}
			return seq, true
		}
	}
	return 0, false
}

// cancelPend removes seq's pend entry if still present, stopping its timer
// and counting the terminal loss against counter.
func (t *StreamTransport) cancelPend(seq uint64, counter *atomic.Int64) {
	sh := t.pendShard(seq)
	sh.mu.Lock()
	p, ok := sh.m[seq]
	if ok {
		p.retry.Stop()
		delete(sh.m, seq)
	}
	sh.mu.Unlock()
	if ok {
		counter.Add(1)
	}
}

// dropQueued counts writer-queue sheds. In batched mode the shed frames had
// no pend entries yet (registration happens per super-frame at flush), so
// the loss is counted directly; in per-message mode each seq's pend entry is
// cancelled and counted if still present.
func (t *StreamTransport) dropQueued(seqs []uint64) {
	if len(seqs) == 0 {
		return
	}
	if t.batched() {
		t.ovShedQueue.Add(int64(len(seqs)))
		return
	}
	for _, seq := range seqs {
		t.cancelPend(seq, &t.ovShedQueue)
	}
}

// enqueueRetry queues one already-registered super-frame for retransmission.
// No cap applies: the population is bounded by the pend cap, and shedding
// here would break the retransmission contract. False when the connection is
// dead (the caller redials once; the entry stays pending either way).
func (cs *connState) enqueueRetry(p *pendingSend) bool {
	cs.qmu.Lock()
	if cs.dead {
		cs.qmu.Unlock()
		return false
	}
	cs.qRetry = append(cs.qRetry, p)
	cs.qmu.Unlock()
	cs.wake()
	return true
}

// enqueueAck queues one ack seq; best effort (a lost ack only costs the peer
// a deduplicated retransmission).
func (cs *connState) enqueueAck(seq uint64) {
	cs.qmu.Lock()
	if cs.dead {
		cs.qmu.Unlock()
		return
	}
	cs.qAcks = append(cs.qAcks, seq)
	cs.qmu.Unlock()
	cs.wake()
}

func (cs *connState) wake() {
	select {
	case cs.notify <- struct{}{}:
	default:
	}
}

// take swaps the queues out: the data-frame chunk chain whole (the writer
// consumes it chunk by chunk and recycles each through chunkPool), the ack
// and retry slices against recycled spill backing so steady-state batching
// performs no allocations. Only the writer goroutine calls it, so the
// retired slices are always consumed before the next swap.
func (cs *connState) take() (data *msgChunk, acks []uint64, rets []*pendingSend) {
	cs.qmu.Lock()
	data, cs.qHead, cs.qTail, cs.qLen = cs.qHead, nil, nil, 0
	acks, cs.qAcks = cs.qAcks, cs.spillAcks[:0]
	rets, cs.qRetry = cs.qRetry, cs.spillRetry[:0]
	cs.spillAcks, cs.spillRetry = acks, rets
	cs.qmu.Unlock()
	if data != nil {
		// The queue emptied: wake one backpressured membership enqueuer.
		select {
		case cs.spaceCh <- struct{}{}:
		default:
		}
	}
	return data, acks, rets
}

// markDead stops further enqueues and returns whatever was still queued —
// data frames (for re-queue or loss accounting) and registered
// retransmissions (their pend entries redial via retryNow). Idempotent; the
// second caller gets nil.
func (cs *connState) markDead() ([]wireMessage, []*pendingSend) {
	cs.qmu.Lock()
	if cs.dead {
		cs.qmu.Unlock()
		return nil, nil
	}
	cs.dead = true
	head, rets := cs.qHead, cs.qRetry
	cs.qHead, cs.qTail, cs.qLen = nil, nil, 0
	cs.qAcks, cs.qRetry = nil, nil
	cs.qmu.Unlock()
	close(cs.deadCh)
	return flattenChunks(head), rets
}

// batchMsgBytes estimates one sub-message's encoded footprint for splitting
// an aggregation drain into super-frames: the payload plus a generous field
// allowance, so a full chunk of maxBatchMsgs stays well under maxWireBody.
func batchMsgBytes(w *wireMessage) int {
	return 32 + len(w.Payload) + len(w.PayloadType)
}

// maxBatchBytes bounds the estimated bytes one super-frame aggregates.
const maxBatchBytes = 1 << 20

// writeBatch encodes one drained batch into the buffered writer and returns
// the pend keys of the super-frames it wrote (for the broken-connection
// path).
//
// In batched binary mode (the default) retransmitted super-frames go first —
// they are older than anything drained this pass — then the queued data
// coalesces into FrameBatch super-frames, each registered as ONE reliable
// send (registerBatch) before its bytes are written; pending acks hoist to
// the first frame's header. In per-message binary mode every data frame is
// its own frame with its own pend entry (registered at transmit time); in
// JSON mode acks are standalone frames, as the legacy protocol requires.
func (t *StreamTransport) writeBatch(cs *connState, data []wireMessage, acks []uint64, rets []*pendingSend) ([]uint64, error) {
	if cs.jenc != nil {
		for _, seq := range acks {
			if err := cs.jenc.Encode(&wireMessage{Kind: wireAck, Seq: seq}); err != nil {
				return nil, err
			}
			cs.countFrames(1)
		}
		// Registered super-frames can only reach a JSON writer if the format
		// was toggled mid-run; keep the retransmission contract by sending
		// their sub-messages individually.
		for _, p := range rets {
			for i := range p.batch {
				if err := cs.jenc.Encode(&p.batch[i]); err != nil {
					return nil, err
				}
				cs.countFrames(1)
				t.msgsOut.Add(1)
			}
		}
		for i := range data {
			if err := cs.jenc.Encode(&data[i]); err != nil {
				return nil, err
			}
			cs.countFrames(1)
			t.msgsOut.Add(1)
		}
		return nil, nil
	}
	if !t.batched() && len(rets) == 0 {
		buf := cs.buf[:0]
		if len(data) == 0 {
			buf = cs.enc.appendFrame(buf, nil, acks)
			cs.countFrames(1)
		} else {
			buf = cs.enc.appendFrame(buf, &data[0], acks)
			for i := 1; i < len(data); i++ {
				buf = cs.enc.appendFrame(buf, &data[i], nil)
			}
			cs.countFrames(int64(len(data)))
			t.msgsOut.Add(int64(len(data)))
		}
		cs.buf = buf
		_, err := cs.bw.Write(buf)
		return nil, err
	}

	var keys []uint64
	buf := cs.buf[:0]
	for ri, p := range rets {
		buf = cs.enc.appendBatchFrame(buf, p.batch, acks)
		acks = nil
		cs.countFrames(1)
		t.msgsOut.Add(int64(len(p.batch)))
		keys = append(keys, p.w.Seq)
		rets[ri] = nil // the slice is recycled; don't pin acked batches
	}
	ps := (*peerState)(nil)
	if len(data) > 0 {
		ps = t.peer(cs.addr)
	}
	for start := 0; start < len(data); {
		end := start + 1
		size := batchMsgBytes(&data[start])
		for end < len(data) && end-start < maxBatchMsgs && size < maxBatchBytes {
			size += batchMsgBytes(&data[end])
			end++
		}
		chunk := data[start:end]
		start = end
		key, ok := t.registerBatch(cs.addr, ps, chunk)
		if !ok {
			continue // refused admission: a counted terminal loss, not written
		}
		buf = cs.enc.appendBatchFrame(buf, chunk, acks)
		acks = nil
		cs.countFrames(1)
		t.msgsOut.Add(int64(len(chunk)))
		keys = append(keys, key)
	}
	if len(acks) > 0 {
		buf = cs.enc.appendFrame(buf, nil, acks)
		cs.countFrames(1)
	}
	cs.buf = buf
	if len(buf) == 0 {
		return keys, nil
	}
	_, err := cs.bw.Write(buf)
	return keys, err
}

// writeLoop drains the connection's frame queue: wait for work, optionally
// let a flush window accumulate a wider batch, write everything queued, then
// flush once. On a write error the connection is evicted and every possibly
// unsent data frame is pushed straight back through the retransmit path.
func (t *StreamTransport) writeLoop(cs *connState) {
	defer t.wg.Done()
	for {
		select {
		case <-t.closed:
			return
		case <-cs.deadCh:
			return
		case <-cs.notify:
		}
		if fw := time.Duration(t.flushWindow.Load()); fw > 0 {
			select {
			case <-t.closed:
				return
			case <-cs.deadCh:
				return
			case <-time.After(fw):
			}
		}
		var cycleKeys []uint64
		for {
			chain, acks, rets := cs.take()
			if chain == nil && len(acks) == 0 && len(rets) == 0 {
				break
			}
			// Consume the chain one chunk per writeBatch call — acks and
			// retransmissions ride the first — recycling each chunk as soon as
			// its frames are encoded (registerBatch copies sub-messages out).
			c := chain
			for first := true; first || c != nil; first = false {
				var data []wireMessage
				if c != nil {
					data = c.msgs[:c.n]
				}
				keys, err := t.writeBatch(cs, data, acks, rets)
				if err != nil {
					// Super-frames registered this cycle retry via their keys.
					// In batched mode the current chunk is fully registered (or
					// counted) by the time a write can fail, so only the
					// untouched remainder of the chain re-queues; in per-message
					// mode the chunk's frames carry their own pend entries and
					// are handed over for the seq scan.
					var rest []wireMessage
					if c != nil {
						if t.batched() {
							rest = flattenChunks(c.next)
							chunkPool.Put(c)
						} else {
							rest = flattenChunks(c)
						}
					}
					t.connBroken(cs, rest, append(cycleKeys, keys...))
					return
				}
				cycleKeys = append(cycleKeys, keys...)
				acks, rets = nil, nil
				if c != nil {
					next := c.next
					chunkPool.Put(c)
					c = next
				}
			}
		}
		// Super-frames written into the buffered writer are not on the wire
		// until this flush; on error their keys retry immediately rather than
		// waiting out the RTO (over-retrying is safe — the receiver dedups).
		if err := cs.bw.Flush(); err != nil {
			t.connBroken(cs, nil, cycleKeys)
			return
		}
	}
}

// connBroken handles a dead connection, from either loop: stop enqueues,
// evict it from the pool, and make sure nothing vanishes silently. Reliable
// in-flight work — per-message pend entries (unbatched mode), or registered
// super-frames (inFlightKeys plus anything on the retransmission queue) —
// goes through retryNow, which redials immediately; retransmission keeps it
// pending, so over-retrying is safe (the receiver dedups). In batched mode
// the data frames still queued were never registered: they re-queue toward a
// fresh connection, or count as lost when the transport is draining or
// closed. Acks are dropped (the peer retransmits and is deduplicated).
func (t *StreamTransport) connBroken(cs *connState, inFlight []wireMessage, inFlightKeys []uint64) {
	leftover, leftRets := cs.markDead()
	t.evict(cs)
	if cs.addr != "" {
		t.peerFailure(cs.addr)
	}
	var seqs []uint64
	var requeue []wireMessage
	seqs = append(seqs, inFlightKeys...)
	for _, p := range leftRets {
		seqs = append(seqs, p.w.Seq)
	}
	if t.batched() {
		// inFlight here is the unregistered remainder of the writer's taken
		// chain (older than anything still queued at death).
		requeue = append(inFlight, leftover...)
	} else {
		for _, batch := range [2][]wireMessage{inFlight, leftover} {
			for i := range batch {
				if batch[i].Seq != 0 && batch[i].Kind != wireAck {
					seqs = append(seqs, batch[i].Seq)
				}
			}
		}
	}
	if len(seqs) == 0 && len(requeue) == 0 {
		return
	}
	stopping := t.draining.Load()
	select {
	case <-t.closed:
		stopping = true
	default:
	}
	if stopping {
		// Registered work stays pending — RTO timers or Close's sweep govern
		// it — but unregistered batched frames would vanish silently: count
		// them as closed-at-drop.
		t.dropsClosed.Add(int64(len(requeue)))
		return
	}
	// Cap the immediate-retry burst: a connection that died with a deep queue
	// would otherwise re-inject every frame at once into a freshly dialed
	// (cold, possibly struggling) peer. Frames past the cap stay pending and
	// keep their ordinary RTO timers — trimmed, not lost.
	if t.queueLimit > 0 && len(seqs) > t.queueLimit {
		t.ovRetryTrim.Add(int64(len(seqs) - t.queueLimit))
		seqs = seqs[:t.queueLimit]
	}
	// The redial may block in the dialer; do it off the conn's loops. The
	// caller still holds a wg slot, so adding one here cannot race Close.
	addr := cs.addr
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for _, seq := range seqs {
			t.retryNow(seq)
		}
		for i := range requeue {
			t.writeQueued(addr, &requeue[i])
		}
	}()
}

// readLoop sniffs the peer's wire format from the first byte — '{' opens a
// JSON line stream, a version byte opens binary frames — then decodes
// frames: acks resolve pending sends, data messages are acked back on the
// same connection, deduplicated, and routed to the local inboxes.
func (t *StreamTransport) readLoop(cs *connState) {
	defer t.wg.Done()
	defer t.connBroken(cs, nil, nil)
	defer cs.c.Close()
	br := bufio.NewReaderSize(cs.c, 32<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == '{' {
		t.readJSON(cs, br)
		return
	}
	t.readBinary(cs, br)
}

func (t *StreamTransport) readJSON(cs *connState, br *bufio.Reader) {
	dec := json.NewDecoder(br)
	for {
		var w wireMessage
		if err := dec.Decode(&w); err != nil {
			return // EOF or closed
		}
		if !t.deliverWire(cs, &w, nil) {
			return
		}
	}
}

func (t *StreamTransport) readBinary(cs *connState, br *bufio.Reader) {
	var dec wireDec
	for {
		acks, msgs, batch, err := dec.readFrameMulti(br)
		if err != nil {
			if errors.Is(err, errMalformedFrame) {
				t.dropsDecode.Add(1) // corrupt frame; io errors are teardown
			}
			return
		}
		for _, seq := range acks {
			t.ack(seq)
		}
		if batch {
			// One ack resolves the whole super-frame: the sender keyed its
			// pend entry by the last sub-message's Seq. Ack first — even for
			// a duplicate batch — so retransmission stops; then scatter each
			// sub-message to its owning shard through deliverData.
			cs.enqueueAck(msgs[len(msgs)-1].Seq)
			for i := range msgs {
				if !t.deliverData(cs, &msgs[i]) {
					return
				}
			}
			continue
		}
		if len(msgs) == 1 && !t.deliverSingle(cs, &msgs[0]) {
			return
		}
	}
}

// deliverWire processes one decoded frame: resolve acks, ack data back,
// deduplicate, decode the payload, and route to the local inbox. It reports
// false when the transport closed mid-delivery.
func (t *StreamTransport) deliverWire(cs *connState, w *wireMessage, acks []uint64) bool {
	for _, seq := range acks {
		t.ack(seq)
	}
	if w == nil {
		return true
	}
	return t.deliverSingle(cs, w)
}

// deliverSingle acks one per-message data frame back to the sender, then
// routes it — the single-frame tail shared by the JSON and unbatched binary
// paths.
func (t *StreamTransport) deliverSingle(cs *connState, w *wireMessage) bool {
	if w.Kind != wireAck && w.Seq != 0 {
		// Ack first — even duplicates — so the sender stops retransmitting.
		// Best effort: a lost ack only costs another (deduplicated) retry.
		cs.enqueueAck(w.Seq)
	}
	return t.deliverData(cs, w)
}

// deliverData deduplicates, decodes, and routes one logical data message —
// the shared tail of the single-frame and batch-scatter paths. The caller
// has already queued the ack (per message, or once per super-frame); cs is
// the connection it arrived on, whose read loop owns the decoder memo. It
// reports false when the transport closed mid-delivery.
func (t *StreamTransport) deliverData(cs *connState, w *wireMessage) bool {
	if w.Kind == wireAck {
		t.ack(w.Seq)
		return true
	}
	if !t.hosted[graph.NodeID(w.To)] {
		t.dropsMisroute.Add(1) // misrouted: not hosted here
		return true
	}
	key := dedupKey{edge: w.EdgeID, from: graph.NodeID(w.From), sentTick: w.SentTick, kind: MsgKind(w.Kind)}
	if t.dedup[key.shard()].seen(key, int(t.dedupWindow.Load())) {
		t.dupsSuppressed.Add(1)
		return true
	}
	payload, err := cs.decodePayload(w.PayloadType, w.Payload)
	if err != nil {
		t.dropsDecode.Add(1)
		return true
	}
	msg := Message{
		Kind:     MsgKind(w.Kind),
		From:     graph.NodeID(w.From),
		To:       graph.NodeID(w.To),
		EdgeID:   w.EdgeID,
		Latency:  w.Latency,
		SentTick: w.SentTick,
		Payload:  payload,
	}
	// The wire already spent the edge's latency on the sender side, so the
	// sink delivery is immediate.
	if s := t.sink.Load(); s != nil && (*s)(msg, 0) {
		return true
	}
	// Non-blocking send first: a two-way select costs a full selectgo pass
	// per message, which local fabrics feel; the slow path only runs when the
	// inbox is full.
	ch := t.inbox(msg.To)
	select {
	case ch <- msg:
		return true
	default:
	}
	select {
	case ch <- msg:
		return true
	case <-t.closed:
		return false
	}
}

// write queues one frame toward addr, dialing if needed. If the pooled
// connection died between lookup and enqueue, one fresh dial is attempted
// before giving up to the retransmission timers; nothing is silently lost
// here — the message stays pending either way.
func (t *StreamTransport) write(addr string, w *wireMessage) {
	for attempt := 0; attempt < 2; attempt++ {
		cs, err := t.conn(addr)
		if err != nil {
			if !errors.Is(err, ErrTransportClosed) {
				t.peerFailure(addr) // unreachable: one failure toward the breaker
			}
			return // retransmission will redial
		}
		if cs.enqueue(w) {
			return
		}
	}
}

// publishOuts republishes the lock-free snapshot of the outbound pool.
// Callers hold connMu. A reader may observe a connection a beat after it was
// evicted; enqueue's dead check already covers that window (it exists even
// with a locked lookup — a connection can die between lookup and enqueue).
func (t *StreamTransport) publishOuts() {
	next := make(map[string]*connState, len(t.outs))
	for k, v := range t.outs {
		next[k] = v
	}
	t.outsSnap.Store(&next)
}

// pooled is the lock-free pooled-connection lookup: one atomic load and a
// read of an immutable snapshot. The send path pays this per message.
func (t *StreamTransport) pooled(addr string) (*connState, bool) {
	if m := t.outsSnap.Load(); m != nil {
		cs, ok := (*m)[addr]
		return cs, ok
	}
	return nil, false
}

// conn returns the pooled connection to addr, dialing with retries until
// dialTimeout so peers may come up after us.
func (t *StreamTransport) conn(addr string) (*connState, error) {
	if cs, ok := t.pooled(addr); ok {
		return cs, nil
	}
	t.connMu.Lock()
	if cs, ok := t.outs[addr]; ok {
		t.connMu.Unlock()
		return cs, nil
	}
	t.connMu.Unlock()

	if t.draining.Load() {
		// A draining transport flushes what it has; it does not open new
		// connections (a broken conn's frames are already counted pending —
		// they are abandoned with the rest when the deadline expires).
		return nil, ErrTransportClosed
	}
	start := time.Now()
	deadline := start.Add(t.dialTimeout)
	var c net.Conn
	var local bool
	var err error
	for {
		c, local, err = t.dialPeer(addr, time.Since(start))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("live: dial %s: %w", addr, err)
		}
		select {
		case <-t.closed:
			return nil, ErrTransportClosed
		case <-time.After(50 * time.Millisecond):
		}
	}

	cs := t.newConnState(c, addr, local)
	t.connMu.Lock()
	if prior, ok := t.outs[addr]; ok {
		// Lost a dial race; keep the first connection.
		t.connMu.Unlock()
		c.Close()
		return prior, nil
	}
	select {
	case <-t.closed:
		t.connMu.Unlock()
		c.Close()
		return nil, ErrTransportClosed
	default:
	}
	t.outs[addr] = cs
	t.publishOuts()
	// Outbound connections carry the peer's acks back to us. The wg.Add sits
	// inside the lock: Close checks closed, sweeps conns, and only then
	// waits, all behind the same mutex, so it cannot miss this registration.
	t.wg.Add(2)
	t.connMu.Unlock()
	go t.readLoop(cs)
	go t.writeLoop(cs)
	return cs, nil
}

// evict removes a broken connection from the pool (or the accepted list) so
// the next write redials.
func (t *StreamTransport) evict(cs *connState) {
	t.connMu.Lock()
	if cs.addr != "" {
		if t.outs[cs.addr] == cs {
			delete(t.outs, cs.addr)
			t.publishOuts()
		}
	} else {
		for i, other := range t.accepts {
			if other == cs {
				t.accepts = append(t.accepts[:i], t.accepts[i+1:]...)
				break
			}
		}
	}
	t.connMu.Unlock()
	cs.c.Close()
}
