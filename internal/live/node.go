package live

import (
	"fmt"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
	"gossip/internal/member"
	"gossip/internal/sim"
)

// node is one locally hosted protocol instance: a sim.Handler driven through
// the same deliver-then-tick cycle as the round simulator, but against
// wall-clock ticks and a real transport. It implements sim.Env, so the
// handler runs unchanged. Nodes live in their owning shard's dense slice
// (see shard.go) — there is no per-node goroutine, ticker, or timer; the
// shard's event loop delivers arrivals and sweeps onTick.
//
// All non-atomic fields are owned by the owning shard's goroutine. The
// atomic flags are the node's only outward-facing state, polled by the
// runtime watcher.
type node struct {
	rt  *Runtime
	id  graph.NodeID
	h   sim.Handler
	ctx *sim.Context

	tick      int  // protocol round counter (frozen while halted)
	wall      int  // wall-clock tick counter (advances even while halted)
	initiated bool // initiated an exchange this tick
	nextExch  uint64
	crashAt   int // fail-stop at this wall tick (0 = never)
	recoverAt int // rejoin with cleared state at this wall tick (0 = never)
	halted    bool
	left      bool // broadcast its membership leave (graceful stop)

	done      atomic.Bool // local protocol goal reached
	crashed   atomic.Bool
	recovered atomic.Bool
	exhausted atomic.Bool // tick budget spent or handler locally terminated

	// mem is the node's SWIM failure detector (nil without
	// Options.Membership). It is an atomic pointer because rejoin swaps in a
	// fresh detector while the runtime watcher reads the old one.
	mem     atomic.Pointer[member.Node]
	memEdge int // synthetic edge ID counter for member packets (negative)

	m Metrics // node-local counters, aggregated after the goroutine joins
}

var _ sim.Env = (*node)(nil)

func (n *node) NodeID() graph.NodeID { return n.id }
func (n *node) Graph() *graph.Graph  { return n.rt.g }
func (n *node) Round() int           { return n.tick }
func (n *node) NHint() int           { return n.rt.nhint }
func (n *node) Seed() uint64         { return n.rt.opts.Seed }
func (n *node) KnownLatencies() bool { return n.rt.proto.KnownLatencies() }

// Initiate implements sim.Env: the request is handed to the transport with
// the paper's split delivery delay (⌈ℓ/2⌉ ticks out, ⌊ℓ/2⌋ back), scaled by
// the tick duration.
func (n *node) Initiate(idx int, payload sim.Payload) (uint64, error) {
	if n.initiated {
		return 0, fmt.Errorf("live: node %d already initiated in tick %d", n.id, n.tick)
	}
	deg := n.rt.csr.Degree(n.id)
	if idx < 0 || idx >= deg {
		return 0, fmt.Errorf("live: node %d edge index %d out of range [0,%d)", n.id, idx, deg)
	}
	he := n.rt.csr.Half(n.id, idx)
	msg := Message{
		Kind:     MsgRequest,
		From:     n.id,
		To:       he.To,
		EdgeID:   he.ID,
		Latency:  he.Latency,
		SentTick: n.tick,
		Payload:  payload,
	}
	delay := time.Duration((he.Latency+1)/2) * n.rt.opts.Tick
	if err := n.rt.tr.Send(msg, delay); err != nil {
		return 0, err
	}
	n.initiated = true
	n.nextExch++
	n.m.Requests++
	n.m.EdgeActivations++
	n.m.Bytes += sim.PayloadSize(payload)
	return n.nextExch, nil
}

// onTick advances the node's round counter and runs the handler's Tick, the
// live analogue of the simulator's phase B. The wall counter keeps advancing
// while the node is down so a scheduled recovery knows when to fire.
func (n *node) onTick() {
	n.wall++
	if n.halted {
		if n.recoverAt > 0 && n.wall >= n.recoverAt {
			n.rejoin()
		}
		return
	}
	if n.crashAt > 0 && n.wall >= n.crashAt {
		n.halt()
		return
	}
	if n.rt.leaving.Load() && !n.left {
		// Graceful stop: announce our departure once — peers mark us dead at
		// our current incarnation instead of burning a suspicion timeout —
		// then keep answering through the grace window without initiating.
		n.left = true
		if m := n.mem.Load(); m != nil {
			n.sendMember(m.Leave(n.wall))
		}
	}
	// The failure detector ticks for as long as the process is up — through
	// quiescence and past protocol termination — because peers rely on our
	// acks and deltas to keep their views truthful.
	n.memberTick()
	if n.left || n.rt.quiesced.Load() {
		// The runtime completed and is lingering for slower peers: stop
		// initiating new exchanges but keep answering requests.
		return
	}
	if n.tick >= n.rt.opts.MaxTicks {
		n.setExhausted(true)
		return
	}
	if n.h.Done() {
		// Locally terminated handlers are no longer ticked (as in the round
		// engine); they still answer requests, but can make no further
		// progress of their own, so the watcher counts them as stopped —
		// a fixed-schedule protocol that missed its window fails closed
		// instead of hanging until the tick budget runs dry.
		n.setExhausted(true)
		return
	}
	n.tick++
	n.initiated = false
	n.h.Tick(n.ctx)
	n.updateDone()
}

// halt fail-stops the node: it stops ticking, drops incoming messages, and
// loses its local state (the outward done flag clears — a crashed node has
// no goal to report).
func (n *node) halt() {
	n.halted = true
	n.crashed.Store(true)
	n.setDone(false)
	n.stopHandler()
}

// rejoin brings a crashed node back at its scheduled recovery tick with a
// fresh handler — cleared protocol state, as a process restarted from disk
// would have — while keeping its seeded random stream and round budget.
func (n *node) rejoin() {
	n.halted = false
	n.crashed.Store(false)
	n.recovered.Store(true)
	n.setExhausted(false)
	// The plan is consumed: without this the crash condition would re-fire
	// on the very next tick (wall is already past crashAt). recoverAt is
	// left untouched — the watcher goroutine reads it, and with crashAt
	// cleared the recovery branch is unreachable anyway.
	n.crashAt = 0
	n.h = n.rt.proto.NewHandler(n.id)
	n.initiated = false
	if n.mem.Load() != nil {
		// A recovered process restarts its detector from scratch too:
		// incarnation zero, only the seed peers known. The refutation rule
		// re-admits it against the cluster's dead records.
		n.mem.Store(n.rt.newMember(n.id))
	}
	n.h.Start(n.ctx)
	n.updateDone()
}

// stopHandler unwinds coroutine handlers (sim.Proc) so a crashed or
// shut-down node never leaks a parked proc goroutine. Plain state-machine
// handlers have nothing to stop.
func (n *node) stopHandler() {
	if s, ok := n.h.(interface{ Stop() }); ok {
		s.Stop()
	}
}

// handle delivers one arrival to the handler — the live analogue of the
// simulator's phase A. Requests are answered immediately and the response
// travels back with the remaining ⌊ℓ/2⌋ delay.
func (n *node) handle(msg Message) {
	if msg.Kind == MsgMember {
		// Membership traffic bypasses the protocol handler entirely; its
		// synthetic edge IDs are not graph edges.
		n.handleMember(msg)
		return
	}
	idx := n.rt.csr.EdgeIndex(n.id, msg.EdgeID)
	if idx < 0 {
		return // not an edge of ours: misrouted or corrupt
	}
	switch msg.Kind {
	case MsgRequest:
		resp := n.h.OnRequest(n.ctx, sim.Request{
			From:      msg.From,
			EdgeIndex: idx,
			Payload:   msg.Payload,
		})
		n.m.Responses++
		n.m.Bytes += sim.PayloadSize(resp)
		out := Message{
			Kind:     MsgResponse,
			From:     n.id,
			To:       msg.From,
			EdgeID:   msg.EdgeID,
			Latency:  msg.Latency,
			SentTick: msg.SentTick,
			Payload:  resp,
		}
		delay := time.Duration(msg.Latency-(msg.Latency+1)/2) * n.rt.opts.Tick
		// Best effort: a closing transport drops the response, just as a
		// crashing responder would.
		_ = n.rt.tr.Send(out, delay)
	case MsgResponse:
		n.h.OnResponse(n.ctx, sim.Response{
			From:        msg.From,
			EdgeIndex:   idx,
			Payload:     msg.Payload,
			Latency:     msg.Latency,
			InitiatedAt: msg.SentTick,
		})
	}
	n.updateDone()
}

func (n *node) updateDone() {
	// Only the protocol's goal counts: a handler's Done() merely says its
	// schedule ended (it stops ticking — see onTick), which for a
	// fixed-schedule protocol can happen without the goal being reached.
	n.setDone(n.rt.proto.LocalDone(n.id, n.h))
}

// setDone and setExhausted keep the runtime's aggregate counters exact while
// the flag flips, so the watcher's fast path replaces an O(hosted) scan per
// tick with two loads. Swap makes the delta race-free even though several
// shards update concurrently.
func (n *node) setDone(v bool) {
	if n.done.Swap(v) != v {
		if v {
			n.rt.doneN.Add(1)
		} else {
			n.rt.doneN.Add(-1)
		}
	}
}

func (n *node) setExhausted(v bool) {
	if n.exhausted.Swap(v) != v {
		if v {
			n.rt.stopN.Add(1)
		} else {
			n.rt.stopN.Add(-1)
		}
	}
}
