package live

import (
	"fmt"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// node is one locally hosted protocol instance: a goroutine driving a
// sim.Handler through the same deliver-then-tick cycle as the round
// simulator, but against wall-clock ticks and a real transport. It
// implements sim.Env, so the handler runs unchanged.
//
// All non-atomic fields are owned by the node's goroutine. The atomic flags
// are the node's only outward-facing state, polled by the runtime watcher.
type node struct {
	rt    *Runtime
	id    graph.NodeID
	h     sim.Handler
	ctx   *sim.Context
	inbox <-chan Message

	tick      int
	initiated bool // initiated an exchange this tick
	nextExch  uint64
	crashAt   int // fail-stop at this tick (0 = never)
	halted    bool

	done      atomic.Bool // local protocol goal reached
	crashed   atomic.Bool
	exhausted atomic.Bool // tick budget spent

	m Metrics // node-local counters, aggregated after the goroutine joins
}

var _ sim.Env = (*node)(nil)

func (n *node) NodeID() graph.NodeID { return n.id }
func (n *node) Graph() *graph.Graph  { return n.rt.g }
func (n *node) Round() int           { return n.tick }
func (n *node) NHint() int           { return n.rt.nhint }
func (n *node) Seed() uint64         { return n.rt.opts.Seed }
func (n *node) KnownLatencies() bool { return n.rt.proto.KnownLatencies() }

// Initiate implements sim.Env: the request is handed to the transport with
// the paper's split delivery delay (⌈ℓ/2⌉ ticks out, ⌊ℓ/2⌋ back), scaled by
// the tick duration.
func (n *node) Initiate(idx int, payload sim.Payload) (uint64, error) {
	if n.initiated {
		return 0, fmt.Errorf("live: node %d already initiated in tick %d", n.id, n.tick)
	}
	hes := n.rt.g.Neighbors(n.id)
	if idx < 0 || idx >= len(hes) {
		return 0, fmt.Errorf("live: node %d edge index %d out of range [0,%d)", n.id, idx, len(hes))
	}
	he := hes[idx]
	msg := Message{
		Kind:     MsgRequest,
		From:     n.id,
		To:       he.To,
		EdgeID:   he.ID,
		Latency:  he.Latency,
		SentTick: n.tick,
		Payload:  payload,
	}
	delay := time.Duration((he.Latency+1)/2) * n.rt.opts.Tick
	if err := n.rt.tr.Send(msg, delay); err != nil {
		return 0, err
	}
	n.initiated = true
	n.nextExch++
	n.m.Requests++
	n.m.EdgeActivations++
	n.m.Bytes += sim.PayloadSize(payload)
	return n.nextExch, nil
}

// run is the node goroutine: start the handler, then serve arrivals and
// wall-clock ticks until the runtime stops. A crashed node keeps draining
// its inbox (dropping everything, like the simulator's fail-stop) so
// transports never wedge on it; an exhausted node stops ticking but keeps
// answering so remote peers can still pull from it.
func (n *node) run() {
	defer n.rt.wg.Done()
	n.h.Start(n.ctx)
	n.updateDone()
	ticker := time.NewTicker(n.rt.opts.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-n.rt.stopCh:
			return
		default:
		}
		select {
		case <-n.rt.stopCh:
			return
		case msg := <-n.inbox:
			if n.halted {
				continue // fail-stop: drop without answering
			}
			n.handle(msg)
		case <-ticker.C:
			n.onTick()
		}
	}
}

// onTick advances the node's round counter and runs the handler's Tick, the
// live analogue of the simulator's phase B.
func (n *node) onTick() {
	if n.halted {
		return
	}
	if n.crashAt > 0 && n.tick+1 >= n.crashAt {
		n.halted = true
		n.crashed.Store(true)
		return
	}
	if n.rt.quiesced.Load() {
		// The runtime completed and is lingering for slower peers: stop
		// initiating new exchanges but keep answering requests.
		return
	}
	if n.tick >= n.rt.opts.MaxTicks {
		n.exhausted.Store(true)
		return
	}
	if n.h.Done() {
		// Locally terminated handlers are no longer ticked (as in the round
		// engine); they still answer requests.
		return
	}
	n.tick++
	n.initiated = false
	n.h.Tick(n.ctx)
	n.updateDone()
}

// handle delivers one arrival to the handler — the live analogue of the
// simulator's phase A. Requests are answered immediately and the response
// travels back with the remaining ⌊ℓ/2⌋ delay.
func (n *node) handle(msg Message) {
	idx, ok := n.rt.edgeIdx[int64(n.id)<<32|int64(msg.EdgeID)]
	if !ok {
		return // not an edge of ours: misrouted or corrupt
	}
	switch msg.Kind {
	case MsgRequest:
		resp := n.h.OnRequest(n.ctx, sim.Request{
			From:      msg.From,
			EdgeIndex: idx,
			Payload:   msg.Payload,
		})
		n.m.Responses++
		n.m.Bytes += sim.PayloadSize(resp)
		out := Message{
			Kind:     MsgResponse,
			From:     n.id,
			To:       msg.From,
			EdgeID:   msg.EdgeID,
			Latency:  msg.Latency,
			SentTick: msg.SentTick,
			Payload:  resp,
		}
		delay := time.Duration(msg.Latency-(msg.Latency+1)/2) * n.rt.opts.Tick
		// Best effort: a closing transport drops the response, just as a
		// crashing responder would.
		_ = n.rt.tr.Send(out, delay)
	case MsgResponse:
		n.h.OnResponse(n.ctx, sim.Response{
			From:        msg.From,
			EdgeIndex:   idx,
			Payload:     msg.Payload,
			Latency:     msg.Latency,
			InitiatedAt: msg.SentTick,
		})
	}
	n.updateDone()
}

func (n *node) updateDone() {
	n.done.Store(n.h.Done() || n.rt.proto.LocalDone(n.id, n.h))
}
