package live

import (
	"context"
	"runtime"
	"testing"
	"time"

	"gossip/internal/graph"
)

// nemesisNodes returns [0, n) as NodeIDs.
func nemesisNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// TestNemesisStagedChaosHeals is the acceptance scenario: an 8-node clique
// survives a flapping asymmetric partition, a loss burst with a latency
// ramp, and a crash+recover — and after the schedule heals, every survivor
// is informed, membership converges with zero false dead declarations, the
// queues drain to zero, and the goroutine count returns to baseline.
func TestNemesisStagedChaosHeals(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const n = 8
	g := graph.Clique(n, 1)
	left := nemesisNodes(n)[:4]  // 0-3
	right := nemesisNodes(n)[4:] // 4-7
	cut := CutBetween(g, left, right)

	// The partition flaps: one-way 0-3 → 4-7 cuts pulse 10 ticks on, 10 off,
	// interleaved with symmetric flapping of the cut edges (protocol traffic
	// rides graph edges; membership uses synthetic edge IDs, so the edge flap
	// stresses the protocol while the asym pulses stress the detector). The
	// pulses stay shorter than the 36-tick suspicion timeout, so verdicts
	// refute between pulses instead of fusing into an unhealable mutual-dead
	// split — the whole point of flapping over a solid cut.
	phases := []NemesisPhase{
		{Name: "flap", From: 0, Until: 160, FlapEdges: cut, FlapPeriod: 20, FlapUp: 10},
	}
	for k := 0; k < 8; k++ {
		phases = append(phases, NemesisPhase{
			Name: "asym-pulse", From: 20 * k, Until: 20*k + 10,
			AsymFrom: left, AsymTo: right,
		})
	}
	phases = append(phases, NemesisPhase{
		// After the partition heals: a loss burst while node 3 sinks into a
		// latency ramp.
		Name: "loss+slow", From: 160, Until: 320,
		Loss:      0.10,
		SlowNodes: []graph.NodeID{3}, SlowMaxTicks: 4,
	})
	lossPhase := len(phases) - 1

	inner := NewChanTransport(n, 0)
	nem := NewNemesis(inner, 99, testTick, phases)

	res, err := Run(g, ppProto{source: 0}, nem, Options{
		Seed: 17, Tick: testTick, MaxTicks: 60000,
		Linger: 500 * time.Millisecond,
		// Recovery lands while the partition still gates completion, so the
		// run cannot finish without re-informing the recovered node.
		Crashes:    map[graph.NodeID]CrashPlan{5: {At: 60, RecoverAt: 120}},
		Membership: &MembershipConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The recovery invariants: completion, informed survivors, no surviving
	// false dead verdicts. Node 5 recovered, so all 8 are survivors.
	if verr := VerifyRecovery(res, nemesisNodes(n)); verr != nil {
		t.Fatal(verr)
	}
	if !res.Recovered[5] || !res.Done[5] {
		t.Fatalf("crashed node never recovered+informed: recovered=%v done=%v",
			res.Recovered[5], res.Done[5])
	}

	// Every staged fault class actually fired.
	rep := nem.Report()
	if rep[0].FlapDrops == 0 {
		t.Fatalf("flapping links ate nothing: %+v", rep[0])
	}
	var asym, partition int64
	for _, pr := range rep {
		asym += pr.AsymDrops
		partition += pr.AsymDrops + pr.FlapDrops
	}
	if asym == 0 {
		t.Fatalf("asymmetric pulses ate nothing: %+v", rep)
	}
	if rep[lossPhase].LossDrops == 0 {
		t.Fatalf("loss burst ate nothing: %+v", rep[lossPhase])
	}
	if rep[lossPhase].Delayed == 0 {
		t.Fatalf("latency ramp slowed nothing: %+v", rep[lossPhase])
	}
	// And the ledger surfaces through the standard fault report.
	faults := nem.Faults()
	if faults.PartitionDrops != partition {
		t.Fatalf("Faults().PartitionDrops = %d, want %d", faults.PartitionDrops, partition)
	}
	if faults.InjectedDrops < rep[lossPhase].LossDrops {
		t.Fatalf("Faults().InjectedDrops = %d < loss drops %d", faults.InjectedDrops, rep[lossPhase].LossDrops)
	}

	// Queues drain to zero and the process returns to its goroutine baseline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drep, derr := nem.Drain(ctx)
	if derr != nil {
		t.Fatalf("Drain: %v", derr)
	}
	if !drep.Clean {
		t.Fatalf("post-chaos drain not clean: %+v", drep)
	}
	if pd := inner.PendingDeliveries(); pd != 0 {
		t.Fatalf("%d delivery timers leaked after drain", pd)
	}
	if !pollUntil(10*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseline+2
	}) {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
	}
}

// TestNemesisDeterministicLoss: the loss draw is a pure function of (seed,
// phase, message identity) — the same message meets the same fate across
// transports and runs, and a different seed redraws it.
func TestNemesisDeterministicLoss(t *testing.T) {
	phase := []NemesisPhase{{Name: "loss", From: 0, Until: 0, Loss: 0.5}}
	msg := func(tick int) Message {
		return Message{Kind: MsgRequest, From: 0, To: 1, EdgeID: 7, Latency: 1,
			SentTick: tick, Payload: bitp{informed: true}}
	}
	outcomes := func(seed uint64) []bool {
		inner := NewChanTransport(2, 0)
		defer inner.Close()
		nem := NewNemesis(inner, seed, testTick, phase)
		var got []bool
		for tick := 0; tick < 64; tick++ {
			if err := nem.Send(msg(tick), 0); err != nil {
				t.Fatal(err)
			}
			select {
			case <-nem.Recv(1):
				got = append(got, true)
			case <-time.After(50 * time.Millisecond):
				got = append(got, false)
			}
		}
		return got
	}

	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
	}
	c := outcomes(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical loss patterns")
	}
	delivered := 0
	for _, ok := range a {
		if ok {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(a) {
		t.Fatalf("50%% loss delivered %d/%d — draw not engaged", delivered, len(a))
	}
}

// TestNemesisPhaseWindows: phases only touch exchanges initiated inside
// their tick window; the asymmetric cut is one-way.
func TestNemesisPhaseWindows(t *testing.T) {
	inner := NewChanTransport(2, 0)
	defer inner.Close()
	nem := NewNemesis(inner, 1, testTick, []NemesisPhase{{
		Name: "asym", From: 10, Until: 20,
		AsymFrom: []graph.NodeID{0}, AsymTo: []graph.NodeID{1},
	}})
	send := func(from, to graph.NodeID, tick int) bool {
		msg := Message{Kind: MsgRequest, From: from, To: to, EdgeID: 3,
			Latency: 1, SentTick: tick, Payload: bitp{informed: true}}
		if err := nem.Send(msg, 0); err != nil {
			t.Fatal(err)
		}
		select {
		case <-nem.Recv(to):
			return true
		case <-time.After(100 * time.Millisecond):
			return false
		}
	}
	if !send(0, 1, 5) {
		t.Fatal("message before the window was eaten")
	}
	if send(0, 1, 15) {
		t.Fatal("message inside the window got through the cut")
	}
	if !send(1, 0, 15) {
		t.Fatal("reverse direction was cut — partition not asymmetric")
	}
	if !send(0, 1, 25) {
		t.Fatal("message after the window was eaten")
	}
	rep := nem.Report()
	if rep[0].AsymDrops != 1 {
		t.Fatalf("AsymDrops = %d, want 1", rep[0].AsymDrops)
	}
}

// TestNemesisFlapSquareWave: a flapping link is up for FlapUp ticks of every
// FlapPeriod and down for the rest.
func TestNemesisFlapSquareWave(t *testing.T) {
	p := NemesisPhase{From: 100, Until: 0, FlapEdges: []int{1}, FlapPeriod: 10, FlapUp: 4}
	for tick := 100; tick < 130; tick++ {
		wantDown := (tick-100)%10 >= 4
		if got := p.flapDown(tick); got != wantDown {
			t.Fatalf("flapDown(%d) = %v, want %v", tick, got, wantDown)
		}
	}
	// Default duty cycle: up for ⌈period/2⌉.
	def := NemesisPhase{From: 0, FlapEdges: []int{1}, FlapPeriod: 4}
	if def.flapDown(0) || def.flapDown(1) || !def.flapDown(2) || !def.flapDown(3) {
		t.Fatal("default duty cycle is not half-up")
	}
}

// TestNemesisSlowRamp: the extra delay ramps linearly across the window and
// clamps at SlowMaxTicks.
func TestNemesisSlowRamp(t *testing.T) {
	p := NemesisPhase{From: 0, Until: 100, SlowNodes: []graph.NodeID{1}, SlowMaxTicks: 10}
	if got := p.slowExtra(0); got != 0 {
		t.Fatalf("slowExtra(0) = %d, want 0", got)
	}
	if got := p.slowExtra(49); got != 5 {
		t.Fatalf("slowExtra(49) = %d, want 5", got)
	}
	if got := p.slowExtra(99); got != 10 {
		t.Fatalf("slowExtra(99) = %d, want 10", got)
	}
	// Unbounded phase: flat maximum.
	flat := NemesisPhase{From: 0, Until: 0, SlowNodes: []graph.NodeID{1}, SlowMaxTicks: 7}
	if got := flat.slowExtra(1000); got != 7 {
		t.Fatalf("unbounded slowExtra = %d, want 7", got)
	}
}
