package live

import (
	"strings"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/member"
	"gossip/internal/sim"
)

// memberTestConfig keeps live membership tests snappy: short probe interval,
// events recorded.
func memberTestConfig() *MembershipConfig {
	return &MembershipConfig{ProbeInterval: 4, Record: true}
}

// TestCrashPlanValidation is the satellite check: malformed crash schedules
// fail loudly up front instead of silently never firing.
func TestCrashPlanValidation(t *testing.T) {
	g := graph.Clique(4, 1)
	cases := map[string]map[graph.NodeID]CrashPlan{
		"recover-before-crash": {1: {At: 10, RecoverAt: 5}},
		"recover-equals-crash": {1: {At: 10, RecoverAt: 10}},
		"node-out-of-range":    {7: {At: 10}},
		"negative-node":        {-1: {At: 10}},
		"negative-at":          {1: {At: -3}},
		"negative-recover":     {1: {At: 3, RecoverAt: -1}},
	}
	for name, crashes := range cases {
		t.Run(name, func(t *testing.T) {
			tr := NewChanTransport(g.N(), 0)
			defer tr.Close()
			_, err := Run(g, ppProto{source: 0}, tr, Options{
				Seed: 1, Tick: testTick, Crashes: crashes,
			})
			if err == nil {
				t.Fatalf("crash plan %v accepted, want error", crashes)
			}
			if !strings.Contains(err.Error(), "live:") {
				t.Fatalf("unexpected error shape: %v", err)
			}
		})
	}
	// Control: a valid plan (including an entry for a non-hosted node in a
	// subset runtime) still passes validation.
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	res, err := Run(g, ppProto{source: 0}, tr, Options{
		Seed: 1, Tick: testTick,
		Crashes: map[graph.NodeID]CrashPlan{3: {At: 5, RecoverAt: 25}},
	})
	if err != nil {
		t.Fatalf("valid crash plan rejected: %v (completed=%v)", err, res.Completed)
	}
}

// TestMemberLiveSeedValidation rejects bootstrap seed peers outside the
// graph.
func TestMemberLiveSeedValidation(t *testing.T) {
	g := graph.Clique(4, 1)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	mc := memberTestConfig()
	mc.Seeds = []graph.NodeID{0, 9}
	if _, err := Run(g, ppProto{source: 0}, tr, Options{
		Seed: 1, Tick: testTick, Membership: mc,
	}); err == nil {
		t.Fatal("out-of-range membership seed accepted")
	}
}

// TestMemberLiveConvergence runs a protocol with membership enabled on the
// in-process transport: the run completes, membership traffic flows and is
// accounted separately, and every node's final table holds the full cluster.
func TestMemberLiveConvergence(t *testing.T) {
	g := graph.Clique(8, 1)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	res, err := Run(g, ppProto{source: 0}, tr, Options{
		Seed: 1, Tick: testTick, Membership: memberTestConfig(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("run not completed")
	}
	if res.Metrics.MemberPackets == 0 || res.Metrics.MemberBytes == 0 {
		t.Fatalf("no membership traffic accounted: %+v", res.Metrics)
	}
	if len(res.Members) != g.N() {
		t.Fatalf("Members has %d tables, want %d", len(res.Members), g.N())
	}
	if res.MemberEvents == nil {
		t.Fatal("MemberEvents nil despite Record")
	}
	// The protocol can finish before the single-seed join fully spreads, so
	// only the seed's own view is guaranteed complete here; the driver-based
	// tests in internal/member assert full convergence deterministically.
	for v, ups := range res.Members {
		for _, up := range ups {
			if up.St == member.Dead {
				t.Errorf("node %d holds a dead record %+v with no crash injected", v, up)
			}
		}
	}
}

// TestMemberLiveCompletionSkipsDetectedDead is the completion-semantics
// change: a crashed node with a recovery scheduled far in the future used to
// gate completion until it rejoined; with membership enabled, the run
// completes as soon as the cluster has declared it dead.
func TestMemberLiveCompletionSkipsDetectedDead(t *testing.T) {
	g := graph.Clique(6, 1)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	const recoverAt = 3000
	res, err := Run(g, ppProto{source: 0}, tr, Options{
		Seed:       1,
		Tick:       testTick,
		MaxTicks:   3500,
		Crashes:    map[graph.NodeID]CrashPlan{3: {At: 2, RecoverAt: recoverAt}},
		Membership: memberTestConfig(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("run not completed")
	}
	if res.Metrics.Ticks >= recoverAt {
		t.Fatalf("completion waited for the scheduled recovery (%d ticks); membership should have released it around the detection bound", res.Metrics.Ticks)
	}
	// Every survivor's final table must hold the dead declaration.
	for v, ups := range res.Members {
		if v == 3 {
			continue
		}
		found := false
		for _, up := range ups {
			if up.Node == 3 && up.St == member.Dead {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d completed without believing 3 dead: %+v", v, ups)
		}
	}
}

// TestMemberLiveRecoveryReadmission crashes a node and brings it back while
// the run is still going: the fresh detector bootstraps from the seeds again
// and the run completes with the node recovered.
func TestMemberLiveRecoveryReadmission(t *testing.T) {
	g := graph.Clique(6, 1)
	tr := NewChanTransport(g.N(), 0)
	defer tr.Close()
	// slowProto keeps the run alive long past the crash-recovery epoch so
	// completion genuinely waits for the recovered node to catch up.
	res, err := Run(g, slowProto{source: 0, minTick: 400}, tr, Options{
		Seed:       1,
		Tick:       testTick,
		MaxTicks:   4000,
		Crashes:    map[graph.NodeID]CrashPlan{4: {At: 2, RecoverAt: 250}},
		Membership: memberTestConfig(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("run not completed")
	}
	if !res.Recovered[4] {
		t.Fatal("node 4 not marked recovered")
	}
	// The recovered node's own detector restarted from the seed list and
	// must have rebuilt a view of the cluster.
	self := res.Members[4]
	if len(self) < 2 {
		t.Fatalf("recovered node's table is %+v; it never rejoined the gossip", self)
	}
	for _, up := range self {
		if up.Node == 4 && up.St != member.Alive {
			t.Fatalf("recovered node believes itself %v", up.St)
		}
	}
}

// slowProto wraps the push-pull test protocol with a minimum round count, so
// runs last long enough to cover crash-recovery epochs.
type slowProto struct {
	source  graph.NodeID
	minTick int
}

func (p slowProto) Name() string         { return "pushpull-slow-test" }
func (p slowProto) KnownLatencies() bool { return false }
func (p slowProto) NewHandler(u graph.NodeID) sim.Handler {
	return &slowNode{ppNode: ppNode{informed: u == p.source}}
}
func (p slowProto) LocalDone(_ graph.NodeID, h sim.Handler) bool {
	s := h.(*slowNode)
	return s.informed && s.ticks >= p.minTick
}

type slowNode struct {
	ppNode
	ticks int
}

func (n *slowNode) Tick(ctx *sim.Context) {
	n.ticks++
	n.ppNode.Tick(ctx)
}
