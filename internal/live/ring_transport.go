package live

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
)

// The in-process shared-ring fabric: a "connection" between two co-hosted
// runtimes is a pair of lock-free SPSC byte rings, one per direction. Frames
// are spliced producer-to-consumer with two atomic loads, two stores, and a
// memcpy — no syscalls, no kernel socket buffers — while the stream core on
// top runs the exact same codec, batching, and reliability machinery as TCP.
// Listeners register under "ring://NAME" addresses in a process-wide
// registry, so the fabric composes with SetPeers like any other.

// ringBufBytes is each direction's ring capacity, matched to unixSockBuf so
// the two local fabrics give the aggregation pipeline the same headroom: a
// ring that fits only one super-frame burst stalls the producer and shrinks
// batches. Must be a power of two.
const ringBufBytes = 4 << 20

// byteRing is a single-producer single-consumer byte queue. head and tail
// are free-running (never wrapped) byte counts: head is advanced only by the
// consumer, tail only by the producer, so each side owns one index and reads
// the other with an atomic load.
//
// Blocking is flag-gated and token-based: a side about to block publishes
// its intent (rWait/wWait), re-checks the indexes, and then parks on its
// capacity-1 token channel; the other side sends a token only when the flag
// is up (or on close). The flag publication and the index re-check are both
// sequentially-consistent atomics, so the classic sleeping-barber race —
// producer writes between the consumer's empty check and its park — always
// leaves either the flag visible to the producer (token sent) or the new
// tail visible to the consumer (no park). In steady streaming neither side
// blocks and the hot path performs no channel operations at all.
type byteRing struct {
	buf  []byte
	mask uint64
	head atomic.Uint64 // consumer-owned: next byte to read
	tail atomic.Uint64 // producer-owned: next byte to write

	rWait atomic.Bool   // consumer is parked (or about to park) on rdy
	wWait atomic.Bool   // producer is parked (or about to park) on spc
	rdy   chan struct{} // producer -> consumer: bytes (or EOF) available
	spc   chan struct{} // consumer -> producer: space (or abandonment) available

	wEOF  atomic.Bool // producer closed: reads drain the residue, then io.EOF
	rGone atomic.Bool // consumer closed: writes fail immediately
}

func newByteRing() *byteRing {
	return &byteRing{
		buf:  make([]byte, ringBufBytes),
		mask: ringBufBytes - 1,
		rdy:  make(chan struct{}, 1),
		spc:  make(chan struct{}, 1),
	}
}

// signal drops a wakeup token into ch if one isn't already there.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// write appends all of p, blocking while the ring is full. Partial copies
// happen internally as space frees, but the contract is all-or-error like
// net.Conn: n < len(p) only alongside a non-nil error.
func (r *byteRing) write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		if r.rGone.Load() {
			return written, net.ErrClosed
		}
		tail := r.tail.Load()
		free := uint64(len(r.buf)) - (tail - r.head.Load())
		if free == 0 {
			r.wWait.Store(true)
			// Re-check after publishing intent: a consumer that freed space
			// before seeing the flag is caught here; one that frees it after
			// will see the flag and send the token.
			if uint64(len(r.buf))-(tail-r.head.Load()) == 0 && !r.rGone.Load() {
				<-r.spc
			}
			r.wWait.Store(false)
			continue
		}
		n := uint64(len(p) - written)
		if n > free {
			n = free
		}
		// At most two copies: up to the end of the buffer, then the wrap.
		off := tail & r.mask
		c := copy(r.buf[off:], p[written:written+int(n)])
		if uint64(c) < n {
			copy(r.buf, p[written+c:written+int(n)])
		}
		r.tail.Store(tail + n)
		written += int(n)
		if r.rWait.Load() {
			signal(r.rdy)
		}
	}
	return written, nil
}

// read copies up to len(p) buffered bytes, blocking while the ring is empty.
// After the producer closes, the residue drains normally and then reads
// return io.EOF.
func (r *byteRing) read(p []byte) (int, error) {
	for {
		head := r.head.Load()
		avail := r.tail.Load() - head
		if avail == 0 {
			if r.wEOF.Load() && r.tail.Load() == head {
				return 0, io.EOF
			}
			if r.rGone.Load() {
				return 0, net.ErrClosed
			}
			r.rWait.Store(true)
			// Re-check after publishing intent (see write).
			if r.tail.Load() == head && !r.wEOF.Load() && !r.rGone.Load() {
				<-r.rdy
			}
			r.rWait.Store(false)
			continue
		}
		n := uint64(len(p))
		if n > avail {
			n = avail
		}
		off := head & r.mask
		c := copy(p, r.buf[off:min(uint64(len(r.buf)), off+n)])
		if uint64(c) < n {
			copy(p[c:], r.buf[:n-uint64(c)])
		}
		r.head.Store(head + n)
		if r.wWait.Load() {
			signal(r.spc)
		}
		return int(n), nil
	}
}

// closeWrite is the producer's half-close: buffered bytes stay readable,
// after which the consumer sees io.EOF.
func (r *byteRing) closeWrite() {
	r.wEOF.Store(true)
	signal(r.rdy)
}

// closeRead is the consumer's abandonment: the producer's next write fails
// instead of blocking on a reader that will never come.
func (r *byteRing) closeRead() {
	r.rGone.Store(true)
	signal(r.spc)
	signal(r.rdy)
}

// ringAddr is the net.Addr of a ring endpoint.
type ringAddr string

func (a ringAddr) Network() string { return "ring" }
func (a ringAddr) String() string  { return ringScheme + string(a) }

// ringConn is one end of a ring pair: it produces into wr and consumes from
// rd (the peer holds the same rings with the roles swapped). It implements
// net.Conn minus deadlines, which the stream core never sets.
type ringConn struct {
	local, remote ringAddr
	rd, wr        *byteRing
	closeOnce     sync.Once
}

func (c *ringConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *ringConn) Write(p []byte) (int, error) { return c.wr.write(p) }
func (c *ringConn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.closeWrite()
		c.rd.closeRead()
	})
	return nil
}
func (c *ringConn) LocalAddr() net.Addr              { return c.local }
func (c *ringConn) RemoteAddr() net.Addr             { return c.remote }
func (c *ringConn) SetDeadline(time.Time) error      { return nil }
func (c *ringConn) SetReadDeadline(time.Time) error  { return nil }
func (c *ringConn) SetWriteDeadline(time.Time) error { return nil }

// ringListener accepts ring connections dialed at its registered name.
type ringListener struct {
	name    ringAddr
	conns   chan net.Conn
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool
}

func (l *ringListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *ringListener) Close() error {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done)
		unregisterRing(string(l.name), l)
	}
	return nil
}

func (l *ringListener) Addr() net.Addr { return l.name }

// ringRegistry maps ring names to live listeners, process-wide, so that
// dialRing("NAME") finds the runtime listening as "ring://NAME" the same way
// the kernel resolves a socket path.
var ringRegistry struct {
	mu sync.Mutex
	m  map[string]*ringListener
}

func registerRing(name string) (*ringListener, error) {
	ringRegistry.mu.Lock()
	defer ringRegistry.mu.Unlock()
	if ringRegistry.m == nil {
		ringRegistry.m = make(map[string]*ringListener)
	}
	if _, ok := ringRegistry.m[name]; ok {
		return nil, fmt.Errorf("live: ring %q already registered", name)
	}
	l := &ringListener{
		name:  ringAddr(name),
		conns: make(chan net.Conn, 16),
		done:  make(chan struct{}),
	}
	ringRegistry.m[name] = l
	return l, nil
}

func unregisterRing(name string, l *ringListener) {
	ringRegistry.mu.Lock()
	defer ringRegistry.mu.Unlock()
	if ringRegistry.m[name] == l {
		delete(ringRegistry.m, name)
	}
}

// dialRing connects to the listener registered under name, returning the
// dialer's end of a fresh ring pair. An unregistered name is an error the
// caller's retry loop treats like connection-refused.
func dialRing(name string) (net.Conn, error) {
	ringRegistry.mu.Lock()
	l := ringRegistry.m[name]
	ringRegistry.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("live: ring %q: no listener", name)
	}
	a2b, b2a := newByteRing(), newByteRing()
	dialer := &ringConn{local: "dial->" + l.name, remote: l.name, rd: b2a, wr: a2b}
	acceptor := &ringConn{local: l.name, remote: "dial->" + l.name, rd: a2b, wr: b2a}
	select {
	case l.conns <- acceptor:
		return dialer, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// NewRingTransport registers a ring listener as "ring://NAME" and returns a
// transport hosting the given node IDs. Peers in the same process reach it
// with that address in SetPeers; the name is freed when the transport
// closes. buffer is as for NewTCPTransport.
func NewRingTransport(name string, local []graph.NodeID, buffer int) (*StreamTransport, error) {
	l, err := registerRing(name)
	if err != nil {
		return nil, err
	}
	t := newStreamTransport(local, buffer)
	if err := t.addListener(l, true); err != nil {
		l.Close()
		return nil, err
	}
	return t, nil
}
