package core

import (
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestPushPullAllToAll(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique16", g: graph.Clique(16, 1)},
		{name: "ringcliques", g: graph.RingOfCliques(4, 6, 3)},
		{name: "grid", g: graph.Grid(4, 4, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := PushPullAllToAll(tt.g, sim.Config{Seed: 5})
			if err != nil {
				t.Fatalf("PushPullAllToAll: %v", err)
			}
			if !res.Completed {
				t.Fatal("anti-entropy did not converge")
			}
		})
	}
}

func TestPushPullAllToAllSurvivesCrashes(t *testing.T) {
	const k, s = 4, 6
	g := graph.RingOfCliques(k, s, 3)
	crashes := interiorCrashes(k, s, 4, 5)
	res, err := PushPullAllToAll(g, sim.Config{Seed: 7, Crashes: crashes})
	if err != nil {
		t.Fatalf("PushPullAllToAll under crashes: %v", err)
	}
	if !res.Completed {
		t.Fatal("anti-entropy must converge among survivors")
	}
}

func TestPushPullAllToAllMessageSizes(t *testing.T) {
	// All-to-all payloads are n-bit sets: bytes per message ≈ ⌈n/64⌉·8.
	g := graph.Clique(100, 1)
	res, err := PushPullAllToAll(g, sim.Config{Seed: 3})
	if err != nil {
		t.Fatalf("PushPullAllToAll: %v", err)
	}
	perMsg := float64(res.Metrics.Bytes) / float64(res.Metrics.Messages())
	if perMsg != 16 { // 100 bits -> 2 words -> 16 bytes
		t.Errorf("bytes/message = %g, want 16", perMsg)
	}
}
