package core

import (
	"fmt"
	"math"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// latFunc reports the latency a node attributes to its idx-th incident edge:
// the true latency in the known-latency setting, or a discovered/estimated
// value otherwise. unknownLatency marks edges whose latency is not known.
type latFunc func(edgeIdx int) int

// unknownLatency is attributed to edges whose latency has not been learned;
// it exceeds every real latency so those edges are never selected by
// ℓ-filters.
const unknownLatency = math.MaxInt32

// knownLatencies is the latFunc for the known-latency model of Section 5.
func knownLatencies(p *sim.Proc) latFunc {
	return func(idx int) int {
		l := p.Neighbor(idx).Latency
		if l <= 0 {
			return unknownLatency
		}
		return l
	}
}

// dtgBudgetFactor scales the deterministic round budget of a budgeted ℓ-DTG
// phase: budget(ℓ, n̂) = dtgBudgetFactor · ℓ · (⌈log₂ n̂⌉ + 2)². Haeupler's
// bound is O(ℓ log² n); the constant is chosen so budgeted phases complete
// on the experiment families (tests verify). A too-small budget is detected
// by the termination check, which retries with a doubled estimate, so the
// constant trades wall-clock time, not correctness, in the unknown-D
// algorithms.
const dtgBudgetFactor = 3

// dtgBudget returns the fixed round budget of a budgeted ℓ-DTG phase. Every
// node computes the same value, keeping multi-phase protocols aligned.
func dtgBudget(ell, nHat int) int {
	lg := int(math.Ceil(math.Log2(float64(nHat)))) + 2
	return dtgBudgetFactor * ell * lg * lg
}

// runDTG executes one ℓ-DTG local broadcast invocation of Appendix C over
// the inner knowledge container: the node repeatedly links to a new
// ℓ-neighbor it has not yet *heard from this invocation* and performs the
// PUSH/PULL/PULL/PUSH exchange sequence over all linked neighbors, until it
// has heard from every ℓ-neighbor (directly or relayed). Each invocation
// starts a fresh heard set (the R := {v} of Algorithm 5), so repeated
// invocations re-broadcast current knowledge — which is what T(k) and the
// neighborhood-gathering loops rely on.
//
// With budget > 0 the phase occupies *exactly* budget rounds — finishing
// early pads with waiting, running long truncates — so concurrently running
// nodes stay round-aligned. It reports whether local broadcast completed
// (every ℓ-neighbor heard from).
//
// The node's request handler must be knowledgeResponder(st.containers): the
// session installed here consumes the invocation payloads.
func runDTG(p *sim.Proc, st *eidState, inner knowledge, lat latFunc, ell, budget int) bool {
	start := p.Round()
	session := newDTGSession(start, p.ID(), p.NHint(), inner)
	st.session = session
	within := func() bool { return budget <= 0 || p.Round()-start < budget }
	defer func() {
		if budget > 0 {
			if rem := budget - (p.Round() - start); rem > 0 {
				p.WaitRounds(rem)
			}
		}
		st.session = nil
	}()

	var linked []int // edge indices of u_1 .. u_i
	linkedSet := make(map[int]bool)
	xch := func(edgeIdx int) {
		resp := p.Exchange(edgeIdx, session.Snapshot())
		session.Merge(resp.Payload)
		session.NoteDirect(resp.From)
	}
	for within() {
		// Link to any new neighbor: an ℓ-neighbor not yet heard from.
		next := -1
		for _, e := range p.Neighbors() {
			if lat(e.Index) <= ell && !session.Has(e.To) && !linkedSet[e.Index] {
				next = e.Index
				break
			}
		}
		if next == -1 {
			break
		}
		linked = append(linked, next)
		linkedSet[next] = true
		i := len(linked)
		// PUSH: j = i down to 1.
		for j := i - 1; j >= 0 && within(); j-- {
			xch(linked[j])
		}
		// PULL: j = 1 to i.
		for j := 0; j < i && within(); j++ {
			xch(linked[j])
		}
		// Symmetric second pass: PULL then PUSH.
		for j := 0; j < i && within(); j++ {
			xch(linked[j])
		}
		for j := i - 1; j >= 0 && within(); j-- {
			xch(linked[j])
		}
	}
	for _, e := range p.Neighbors() {
		if lat(e.Index) <= ell && !session.Has(e.To) {
			return false
		}
	}
	return true
}

// runRandLB is the randomized alternative to ℓ-DTG (in the spirit of the
// Superstep local broadcast of Censor-Hillel et al., which the paper cites
// alongside DTG): each round the node exchanges with a uniformly random
// ℓ-neighbor it has not yet heard from this invocation, until it has heard
// from all of them. Same session semantics and budget/padding behavior as
// runDTG; the ablation experiment compares the two.
func runRandLB(p *sim.Proc, st *eidState, inner knowledge, lat latFunc, ell, budget int) bool {
	start := p.Round()
	session := newDTGSession(start, p.ID(), p.NHint(), inner)
	st.session = session
	within := func() bool { return budget <= 0 || p.Round()-start < budget }
	defer func() {
		if budget > 0 {
			if rem := budget - (p.Round() - start); rem > 0 {
				p.WaitRounds(rem)
			}
		}
		st.session = nil
	}()
	for within() {
		var candidates []int
		for _, e := range p.Neighbors() {
			if lat(e.Index) <= ell && !session.Has(e.To) {
				candidates = append(candidates, e.Index)
			}
		}
		if len(candidates) == 0 {
			break
		}
		idx := candidates[p.Rand().Intn(len(candidates))]
		resp := p.Exchange(idx, session.Snapshot())
		session.Merge(resp.Payload)
		session.NoteDirect(resp.From)
	}
	for _, e := range p.Neighbors() {
		if lat(e.Index) <= ell && !session.Has(e.To) {
			return false
		}
	}
	return true
}

// LocalBroadcastRandom runs the randomized local broadcast on every node —
// the ablation counterpart of LocalBroadcastDTG.
func LocalBroadcastRandom(g *graph.Graph, ell int, cfg sim.Config) (LocalBroadcastResult, error) {
	cfg.KnownLatencies = true
	nw := sim.NewNetwork(g, cfg)
	states := attachEIDProcs(nw, g, func(p *sim.Proc, st *eidState, lat latFunc) {
		runRandLB(p, st, st.rumors, lat, ell, 0)
	})
	res, err := nw.Run(nil)
	out := LocalBroadcastResult{Metrics: res.Metrics, Completed: err == nil}
	out.Know = make([]map[graph.NodeID]bool, g.N())
	for u, st := range states {
		m := make(map[graph.NodeID]bool, st.rumors.know.Count())
		st.rumors.know.ForEach(func(i int) bool {
			m[i] = true
			return true
		})
		out.Know[u] = m
	}
	if err != nil {
		return out, fmt.Errorf("randomized local broadcast (ℓ=%d) on %v: %w", ell, g, err)
	}
	return out, nil
}

// knowledgeResponder builds the request handler for protocols whose state is
// a set of knowledge containers: an incoming payload is merged into the
// container that recognizes its type, and that container's snapshot is
// returned — so a request is a full bidirectional exchange.
func knowledgeResponder(containers func() []knowledge) func(p *sim.Proc, req sim.Request) sim.Payload {
	return func(p *sim.Proc, req sim.Request) sim.Payload {
		if k := dispatchMerge(containers(), req.Payload); k != nil {
			k.NoteDirect(req.From)
			return k.Snapshot()
		}
		return nil
	}
}

// knowledgeResponses builds the matching non-blocking response handler.
func knowledgeResponses(containers func() []knowledge) func(p *sim.Proc, resp sim.Response) {
	return func(p *sim.Proc, resp sim.Response) {
		if k := dispatchMerge(containers(), resp.Payload); k != nil {
			k.NoteDirect(resp.From)
		}
	}
}

// dispatchMerge folds the payload into the first container that recognizes
// it, unwrapping stale session envelopes as a fallback, and returns the
// container that consumed it (nil if none).
func dispatchMerge(ks []knowledge, payload sim.Payload) knowledge {
	if payload == nil {
		return nil
	}
	for _, k := range ks {
		if k == nil {
			continue
		}
		if k.Merge(payload) {
			return k
		}
	}
	if inner := unwrapSession(payload); inner != nil && inner != payload {
		for _, k := range ks {
			if k == nil {
				continue
			}
			if k.Merge(inner) {
				return k
			}
		}
	}
	return nil
}

// LocalBroadcastResult reports an ℓ-DTG run.
type LocalBroadcastResult struct {
	Metrics   sim.Metrics
	Completed bool
	// Know[v] is the set of node IDs whose rumor v holds.
	Know []map[graph.NodeID]bool
}

// LocalBroadcastDTG runs ℓ-DTG on every node of g until all nodes know the
// rumors of their ℓ-neighbors (Appendix C; O(ℓ log² n) rounds). Latencies
// are treated as known (cfg.KnownLatencies is forced on).
func LocalBroadcastDTG(g *graph.Graph, ell int, cfg sim.Config) (LocalBroadcastResult, error) {
	cfg.KnownLatencies = true
	nw := sim.NewNetwork(g, cfg)
	states := attachEIDProcs(nw, g, func(p *sim.Proc, st *eidState, lat latFunc) {
		runDTG(p, st, st.rumors, lat, ell, 0)
	})
	res, err := nw.Run(nil)
	out := LocalBroadcastResult{Metrics: res.Metrics, Completed: err == nil}
	out.Know = make([]map[graph.NodeID]bool, g.N())
	for u, st := range states {
		m := make(map[graph.NodeID]bool, st.rumors.know.Count())
		st.rumors.know.ForEach(func(i int) bool {
			m[i] = true
			return true
		})
		out.Know[u] = m
	}
	if err != nil {
		return out, fmt.Errorf("ℓ-DTG (ℓ=%d) on %v: %w", ell, g, err)
	}
	return out, nil
}
