package core

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// UnifiedResult reports the unified algorithm of Theorem 20: push-pull and
// the spanner-based algorithm running in parallel, each on alternate rounds.
type UnifiedResult struct {
	// Rounds is the completion time of the interleaved execution:
	// 2 × the faster component's solo time (each component gets every other
	// round, and completion is whichever finishes first).
	Rounds   int
	Winner   string // "push-pull" or "spanner"
	PushPull BroadcastResult
	Spanner  AllToAllResult
}

// Unified runs the combined algorithm of Theorem 20 for single-source
// broadcast from source: classical push-pull interleaved with the
// spanner-based algorithm (General EID when latencies are known, the
// discovery variant otherwise). Deterministic 1:1 interleaving gives each
// component every other round and leaves its message schedule otherwise
// untouched, so the interleaved completion time is exactly twice the faster
// component's solo time; the implementation therefore runs both components
// solo and reports 2·min, which keeps the components' internal round
// accounting exact.
//
// Time: O(min((D+Δ)·log³ n, (ℓ*/φ*)·log n)) for unknown latencies and
// O(min(D·log³ n, (ℓ*/φ*)·log n)) for known latencies.
func Unified(g *graph.Graph, source graph.NodeID, known bool, cfg sim.Config) (UnifiedResult, error) {
	pp, ppErr := PushPull(g, source, ModePushPull, cfg)
	var (
		sp    AllToAllResult
		spErr error
	)
	if known {
		sp, spErr = GeneralEID(g, cfg)
	} else {
		sp, spErr = DiscoverEID(g, cfg)
	}
	out := UnifiedResult{PushPull: pp, Spanner: sp}
	switch {
	case ppErr == nil && (spErr != nil || pp.Metrics.Rounds <= sp.Metrics.Rounds):
		out.Winner = "push-pull"
		out.Rounds = 2 * pp.Metrics.Rounds
	case spErr == nil:
		out.Winner = "spanner"
		out.Rounds = 2 * sp.Metrics.Rounds
	default:
		return out, fmt.Errorf("unified: both components failed: push-pull: %v; spanner: %w", ppErr, spErr)
	}
	return out, nil
}
