package core

import (
	"strings"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestUnifiedKnownLatencies(t *testing.T) {
	g := graph.RingOfCliques(3, 5, 2)
	res, err := Unified(g, 0, true, sim.Config{Seed: 9})
	if err != nil {
		t.Fatalf("Unified: %v", err)
	}
	// Interleaving arithmetic: unified = 2 × the winner's solo rounds.
	var winnerRounds int
	switch res.Winner {
	case "push-pull":
		winnerRounds = res.PushPull.Metrics.Rounds
	case "spanner":
		winnerRounds = res.Spanner.Metrics.Rounds
	default:
		t.Fatalf("unexpected winner %q", res.Winner)
	}
	if res.Rounds != 2*winnerRounds {
		t.Errorf("unified rounds = %d, want 2×%d", res.Rounds, winnerRounds)
	}
	// The winner must actually be the faster component.
	if res.Winner == "push-pull" && res.PushPull.Metrics.Rounds > res.Spanner.Metrics.Rounds {
		t.Error("push-pull declared winner but was slower")
	}
	if res.Winner == "spanner" && res.Spanner.Metrics.Rounds > res.PushPull.Metrics.Rounds {
		t.Error("spanner declared winner but was slower")
	}
}

func TestUnifiedUnknownLatencies(t *testing.T) {
	g := graph.Clique(10, 1)
	res, err := Unified(g, 0, false, sim.Config{Seed: 9})
	if err != nil {
		t.Fatalf("Unified (unknown latencies): %v", err)
	}
	if !res.Spanner.Completed {
		t.Error("discovery component did not complete")
	}
	if res.Rounds == 0 {
		t.Error("no rounds reported")
	}
}

func TestUnifiedBothComponentsFail(t *testing.T) {
	// Under a round budget neither component can meet, Unified must report
	// an error naming both components rather than a bogus winner.
	g := graph.Dumbbell(6, 40)
	_, err := Unified(g, 0, true, sim.Config{Seed: 9, MaxRounds: 10})
	if err == nil {
		t.Fatal("expected both components to fail under a 10-round budget")
	}
	msg := err.Error()
	for _, want := range []string{"push-pull", "spanner"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %s", msg, want)
		}
	}
}
