package core

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// runT executes the recursive schedule of Appendix E:
//
//	T(1) = 1-DTG
//	T(k) = T(k/2) · k-DTG · T(k/2)
//
// Every ℓ-DTG element runs for its fixed budget, so all nodes follow the
// schedule in lockstep. k must be a power of two. After T(k), any two nodes
// within weighted distance k have exchanged rumors (Lemma 24); executing
// T(D) solves all-to-all dissemination in O(D log² n log D) rounds
// (Lemma 25).
func runT(p *sim.Proc, st *eidState, lat latFunc, k, nHat int) {
	if k <= 1 {
		runDTG(p, st, st.rumors, lat, 1, dtgBudget(1, nHat))
		return
	}
	runT(p, st, lat, k/2, nHat)
	runDTG(p, st, st.rumors, lat, k, dtgBudget(k, nHat))
	runT(p, st, lat, k/2, nHat)
}

// tRounds returns the total round budget of T(k): the recurrence
// T(k) = 2·T(k/2) + budget(k).
func tRounds(k, nHat int) int {
	if k <= 1 {
		return dtgBudget(1, nHat)
	}
	return 2*tRounds(k/2, nHat) + dtgBudget(k, nHat)
}

// runTerminationCheckT is the Path Discovery variant of Algorithm 1: the
// status broadcast uses the T(k) schedule instead of RR Broadcast, so no
// spanner (and no bound on n beyond the hint used for budgets) is needed.
func runTerminationCheckT(p *sim.Proc, st *eidState, lat latFunc, k, nHat, phase int) bool {
	complete := runDTG(p, st, st.rumors, lat, k, dtgBudget(k, nHat))
	flag := !complete
	for _, e := range p.Neighbors() {
		if !st.rumors.Has(e.To) {
			flag = true
			break
		}
	}
	digest := st.rumors.digest()

	st.status = newStatusKnowledge(2*phase, p.ID(), nodeStatus{Digest: digest, Flag: flag})
	runTStatus(p, st, lat, k, nHat)
	failed := st.statusConflicts(digest)

	st.status = newStatusKnowledge(2*phase+1, p.ID(), nodeStatus{Digest: digest, Failed: failed})
	runTStatus(p, st, lat, k, nHat)
	failed = failed || st.statusConflicts(digest)
	st.status = nil
	return !failed
}

// runTStatus runs the T(k) schedule spreading the node's status table
// (instead of rumor sets): the same DTG mechanics on a different container.
func runTStatus(p *sim.Proc, st *eidState, lat latFunc, k, nHat int) {
	if k <= 1 {
		runDTG(p, st, st.status, lat, 1, dtgBudget(1, nHat))
		return
	}
	runTStatus(p, st, lat, k/2, nHat)
	runDTG(p, st, st.status, lat, k, dtgBudget(k, nHat))
	runTStatus(p, st, lat, k/2, nHat)
}

// TSequence solves all-to-all dissemination with known latencies and known
// diameter by executing T(k) for the smallest power of two k >= D
// (Lemmas 24–25).
func TSequence(g *graph.Graph, d int, cfg sim.Config) (AllToAllResult, error) {
	if d < 1 {
		return AllToAllResult{}, fmt.Errorf("core: T(k) needs D >= 1, got %d", d)
	}
	k := 1
	for k < d {
		k *= 2
	}
	cfg.KnownLatencies = true
	nw := sim.NewNetwork(g, cfg)
	states := attachEIDProcs(nw, g, func(p *sim.Proc, st *eidState, lat latFunc) {
		runT(p, st, lat, k, nwHint(nw, g))
	})
	res, err := nw.Run(nil)
	out := collectAllToAll(res.Metrics, states)
	out.FinalEstimate = k
	if err != nil {
		return out, fmt.Errorf("T(%d) on %v: %w", k, g, err)
	}
	return out, nil
}

// PathDiscovery solves all-to-all dissemination with known latencies and
// unknown diameter (Algorithm 6): guess-and-double over T(k) with the T-based
// termination check. It needs no global knowledge beyond the size hint used
// for DTG budgets, and runs in O(D log² n log D) rounds (Lemma 26).
func PathDiscovery(g *graph.Graph, cfg sim.Config) (AllToAllResult, error) {
	cfg.KnownLatencies = true
	nw := sim.NewNetwork(g, cfg)
	states := attachEIDProcs(nw, g, func(p *sim.Proc, st *eidState, lat latFunc) {
		nHat := nwHint(nw, g)
		k := 1
		for phase := 0; ; phase++ {
			runT(p, st, lat, k, nHat)
			if runTerminationCheckT(p, st, lat, k, nHat, phase) {
				st.terminatedAt = p.Round()
				st.finalEstimate = k
				return
			}
			k *= 2
			if phase >= maxDoubling {
				st.gaveUp = true
				return
			}
		}
	})
	res, err := nw.Run(nil)
	out := collectAllToAll(res.Metrics, states)
	for _, st := range states {
		if st.finalEstimate > out.FinalEstimate {
			out.FinalEstimate = st.finalEstimate
		}
		if st.gaveUp {
			out.Completed = false
			err = fmt.Errorf("path discovery on %v: doubling safety valve tripped", g)
		}
	}
	if err != nil {
		return out, fmt.Errorf("path discovery: %w", err)
	}
	return out, nil
}
