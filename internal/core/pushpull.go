package core

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// PushPullMode selects the exchange direction of the random phone call
// protocol.
type PushPullMode int

const (
	// ModePushPull is the full protocol of Section 4.1: the request carries
	// the caller's knowledge and the response carries the callee's.
	ModePushPull PushPullMode = iota + 1
	// ModePushOnly disables the pull direction (the response carries
	// nothing). The paper's footnote 2 observes that without pull,
	// dissemination needs Ω(nD) time on a star; the ablation demonstrates it.
	ModePushOnly
	// ModeLatencyBiased selects the neighbor with probability proportional
	// to 1/latency instead of uniformly — the natural "use fast edges more"
	// heuristic available when latencies are known. The ablation shows it is
	// a double-edged sword: it speeds up dense fast neighborhoods but
	// *starves* the slow cut edges the rumor must eventually cross.
	ModeLatencyBiased
)

// pushPullNode is the state-machine handler for single-source broadcast via
// the random phone call protocol: every round, call a uniformly random
// neighbor and exchange knowledge of the rumor.
type pushPullNode struct {
	informed bool
	informer graph.NodeID // who delivered the rumor (-1 = source/uninformed)
	mode     PushPullMode
	weights  []float64 // cumulative 1/latency weights (ModeLatencyBiased)
}

var _ sim.Handler = (*pushPullNode)(nil)

func (n *pushPullNode) Start(ctx *sim.Context) {
	if n.mode != ModeLatencyBiased {
		return
	}
	// Precompute the cumulative 1/latency distribution (latencies known).
	n.weights = make([]float64, ctx.Degree())
	total := 0.0
	for i := range n.weights {
		lat := ctx.Neighbor(i).Latency
		if lat < 1 {
			lat = 1
		}
		total += 1 / float64(lat)
		n.weights[i] = total
	}
}

func (n *pushPullNode) Tick(ctx *sim.Context) {
	deg := ctx.Degree()
	if deg == 0 {
		return
	}
	idx := ctx.Rand().Intn(deg)
	if n.mode == ModeLatencyBiased {
		x := ctx.Rand().Float64() * n.weights[deg-1]
		for i, w := range n.weights {
			if x <= w {
				idx = i
				break
			}
		}
	}
	// One initiation per round; errors are impossible here because Tick runs
	// once per round, but keep the engine honest.
	if _, err := ctx.Initiate(idx, bitPayload{informed: n.informed}); err != nil {
		panic(fmt.Sprintf("core: push-pull initiate: %v", err))
	}
}

func (n *pushPullNode) OnRequest(ctx *sim.Context, req sim.Request) sim.Payload {
	p, ok := req.Payload.(bitPayload)
	if ok && p.informed && !n.informed {
		n.informed = true
		n.informer = req.From
	}
	if n.mode == ModePushOnly {
		return bitPayload{}
	}
	return bitPayload{informed: n.informed}
}

func (n *pushPullNode) OnResponse(ctx *sim.Context, resp sim.Response) {
	if p, ok := resp.Payload.(bitPayload); ok && p.informed && !n.informed {
		n.informed = true
		n.informer = resp.From
	}
}

func (n *pushPullNode) Done() bool { return false }

// BroadcastResult reports a single-source broadcast run.
type BroadcastResult struct {
	Metrics   sim.Metrics
	Completed bool
	// InformedAt[v] is the first round at which v knew the rumor (0 for the
	// source, -1 if never informed).
	InformedAt []int
	// Informer[v] is the node that first delivered the rumor to v (-1 for
	// the source and for never-informed nodes). The informer edges form the
	// infection tree of the run; nil for protocols that do not track it.
	Informer []graph.NodeID
	// Loads reports per-node traffic (initiated/answered exchanges).
	Loads []sim.NodeLoad
}

// PushPull runs the random phone call protocol from the given source until
// every node is informed, and returns the round count and message metrics
// (Theorem 12: O((ℓ*/φ*)·log n) whp).
func PushPull(g *graph.Graph, source graph.NodeID, mode PushPullMode, cfg sim.Config) (BroadcastResult, error) {
	if source < 0 || source >= g.N() {
		return BroadcastResult{}, fmt.Errorf("core: source %d out of range [0,%d)", source, g.N())
	}
	if mode == ModeLatencyBiased {
		cfg.KnownLatencies = true // the bias needs the latencies
	}
	nw := sim.NewNetwork(g, cfg)
	nodes := make([]*pushPullNode, g.N())
	for u := 0; u < g.N(); u++ {
		nodes[u] = &pushPullNode{informed: u == source, informer: -1, mode: mode}
		nw.SetHandler(u, nodes[u])
	}
	informedAt := make([]int, g.N())
	for u := range informedAt {
		informedAt[u] = -1
	}
	informedAt[source] = 0
	res, err := nw.Run(allInformed(nodesInformed(nodes), informedAt))
	out := BroadcastResult{Metrics: res.Metrics, Completed: res.Completed, InformedAt: informedAt, Loads: nw.Loads()}
	out.Informer = make([]graph.NodeID, g.N())
	for u, nd := range nodes {
		out.Informer[u] = nd.informer
	}
	if err != nil {
		return out, fmt.Errorf("push-pull on %v: %w", g, err)
	}
	return out, nil
}

func nodesInformed(nodes []*pushPullNode) func(u int) bool {
	return func(u int) bool { return nodes[u].informed }
}

// allInformed builds the completion predicate for broadcast runs: every
// non-crashed node is informed. Crashed nodes are excluded, so broadcast
// under fault injection completes when the survivors converge.
func allInformed(informed func(u int) bool, informedAt []int) sim.Predicate {
	return func(nw *sim.Network) bool {
		all := true
		for u := range informedAt {
			if informed(u) {
				if informedAt[u] < 0 {
					informedAt[u] = nw.Round()
				}
			} else if !nw.Crashed(u) {
				all = false
			}
		}
		return all
	}
}
