package core

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// RRBroadcastResult reports a standalone RR Broadcast run over an oriented
// spanner (Lemma 15 / Corollary 16).
type RRBroadcastResult struct {
	Metrics      sim.Metrics
	Completed    bool // every node holds every rumor
	SpannerSize  int
	MaxOutDegree int
	Stretch      float64
	// RoundsToComplete is the first round at which dissemination was
	// complete (<= Metrics.Rounds, which includes the fixed schedule tail).
	RoundsToComplete int
}

// RRBroadcast builds a (2k_s−1)-spanner of G_k (edges with latency <= k)
// with the shared seed, orients it, and runs the RR Broadcast protocol of
// Algorithm 2 for the Lemma 15 schedule: kRR·Δ_out + kRR rounds with
// kRR = (2k_s−1)·k. With k >= D this solves all-to-all dissemination in
// O(D log² n) rounds (Corollary 16).
//
// spannerParam overrides the Baswana–Sen parameter k_s (0 = the EID default
// ⌈log₂ n⌉); it is the knob of the spanner-k ablation.
func RRBroadcast(g *graph.Graph, k, spannerParam int, cfg sim.Config) (RRBroadcastResult, error) {
	if k < 1 {
		return RRBroadcastResult{}, fmt.Errorf("core: RR broadcast needs k >= 1, got %d", k)
	}
	cfg.KnownLatencies = true
	nHat := g.N()
	if cfg.NHint > nHat {
		nHat = cfg.NHint
	}
	ks := spannerParam
	if ks <= 0 {
		ks = spannerK(nHat)
	}
	sub := g.Subgraph(k)
	sp, err := spanner.Build(sub, ks, nHat, cfg.Seed)
	if err != nil {
		return RRBroadcastResult{}, fmt.Errorf("RR broadcast spanner: %w", err)
	}
	kRR := (2*ks - 1) * k
	rounds := kRR*sp.MaxOutDegree() + kRR

	nw := sim.NewNetwork(g, cfg)
	states := make([]*eidState, g.N())
	for u := 0; u < g.N(); u++ {
		st := &eidState{rumors: newRumorKnowledge(g.N(), u), terminatedAt: -1}
		states[u] = st
		// Map spanner out-edges to this node's neighbor indices.
		out := make([]int, 0, len(sp.Out[u]))
		for _, oe := range sp.Out[u] {
			for idx, he := range g.Neighbors(u) {
				if he.To == oe.To {
					out = append(out, idx)
					break
				}
			}
		}
		containers := st.containers
		proc := sim.NewProc(func(p *sim.Proc) {
			runRR(p, st.rumors, out, knownLatencies(p), k, rounds)
		})
		proc.HandleRequests(knowledgeResponder(containers))
		proc.HandleResponses(knowledgeResponses(containers))
		nw.SetHandler(u, proc)
	}
	completeAt := -1
	res, err := nw.Run(func(nw *sim.Network) bool {
		if completeAt < 0 {
			all := true
			for _, st := range states {
				if !st.rumors.know.Full() {
					all = false
					break
				}
			}
			if all {
				completeAt = nw.Round()
			}
		}
		return false // run the full fixed schedule
	})
	out := RRBroadcastResult{
		Metrics:          res.Metrics,
		SpannerSize:      sp.Size(),
		MaxOutDegree:     sp.MaxOutDegree(),
		Stretch:          spanner.Stretch(sub, sp),
		RoundsToComplete: completeAt,
	}
	out.Completed = completeAt >= 0
	if err != nil && completeAt < 0 {
		return out, fmt.Errorf("RR broadcast on %v: %w", g, err)
	}
	return out, nil
}
