package core

import (
	"encoding/json"
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/live"
	"gossip/internal/sim"
)

// This file adapts the protocol state machines to the live wall-clock
// runtime: live.Protocol descriptors (handler factory + local completion
// goal) and the wire codecs the TCP transport needs to ship their payloads
// between processes. The handlers themselves are untouched — the same state
// machines run under both engines.

func init() {
	// bitPayload crosses the wire as a bare JSON bool.
	live.RegisterPayload("core.bit",
		func(p sim.Payload) ([]byte, bool) {
			b, ok := p.(bitPayload)
			if !ok {
				return nil, false
			}
			data, err := json.Marshal(b.informed)
			if err != nil {
				return nil, false
			}
			return data, true
		},
		func(data []byte) (sim.Payload, error) {
			var informed bool
			if err := json.Unmarshal(data, &informed); err != nil {
				return nil, fmt.Errorf("core: bit payload: %w", err)
			}
			return bitPayload{informed: informed}, nil
		})
}

// broadcastProto is the live.Protocol shape shared by the single-source
// broadcast protocols: completion is "this node is informed".
type broadcastProto struct {
	name       string
	known      bool
	newHandler func(u graph.NodeID) sim.Handler
	informed   func(h sim.Handler) bool
}

var _ live.Protocol = (*broadcastProto)(nil)

func (p *broadcastProto) Name() string                          { return p.name }
func (p *broadcastProto) KnownLatencies() bool                  { return p.known }
func (p *broadcastProto) NewHandler(u graph.NodeID) sim.Handler { return p.newHandler(u) }
func (p *broadcastProto) LocalDone(_ graph.NodeID, h sim.Handler) bool {
	return p.informed(h)
}

// PushPullLive returns the live-runtime descriptor for the random phone call
// broadcast from source (Theorem 12) — the same pushPullNode state machine
// PushPull drives in the simulator.
func PushPullLive(source graph.NodeID, mode PushPullMode) live.Protocol {
	return &broadcastProto{
		name:  "pushpull",
		known: mode == ModeLatencyBiased,
		newHandler: func(u graph.NodeID) sim.Handler {
			return &pushPullNode{informed: u == source, informer: -1, mode: mode}
		},
		informed: func(h sim.Handler) bool { return h.(*pushPullNode).informed },
	}
}

// FloodLive returns the live-runtime descriptor for deterministic flooding
// from source.
func FloodLive(source graph.NodeID) live.Protocol {
	return &broadcastProto{
		name: "flood",
		newHandler: func(u graph.NodeID) sim.Handler {
			return &floodNode{informed: u == source}
		},
		informed: func(h sim.Handler) bool { return h.(*floodNode).informed },
	}
}
