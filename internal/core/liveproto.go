package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/live"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// This file adapts the protocol state machines to the live wall-clock
// runtime: live.Protocol descriptors (handler factory + local completion
// goal) and the wire codecs the TCP transport needs to ship their payloads
// between processes. The handlers themselves are untouched — the same state
// machines run under both engines.

// Preallocated one-byte bit-payload encodings: encoders return them by
// reference, so the hot path allocates nothing. The transport treats
// payload bytes as read-only. ASCII digits keep the bytes valid JSON for
// the legacy line protocol (see live.DecodeBit).
var (
	bitFalse = []byte{'0'}
	bitTrue  = []byte{'1'}
)

func init() {
	// bitPayload crosses the wire as a single byte. It is by far the
	// hottest payload (every push-pull exchange carries two), so it skips
	// the JSON machinery entirely; the decoder still accepts the JSON bools
	// older senders emit.
	live.RegisterPayload("core.bit",
		func(p sim.Payload) ([]byte, bool) {
			b, ok := p.(bitPayload)
			if !ok {
				return nil, false
			}
			if b.informed {
				return bitTrue, true
			}
			return bitFalse, true
		},
		func(data []byte) (sim.Payload, error) {
			informed, err := live.DecodeBit(data)
			if err != nil {
				return nil, fmt.Errorf("core: bit payload: %w", err)
			}
			return bitPayload{informed: informed}, nil
		})

	// rumorPayload (the knowledge snapshot RR Broadcast and EID ship)
	// crosses the wire as capacity + member list.
	type wireRumors struct {
		N   int   `json:"n"`
		Set []int `json:"s"`
	}
	live.RegisterPayload("core.rumors",
		func(p sim.Payload) ([]byte, bool) {
			rp, ok := p.(rumorPayload)
			if !ok || rp.set == nil {
				return nil, false
			}
			data, err := json.Marshal(wireRumors{N: rp.set.Cap(), Set: rp.set.Slice()})
			if err != nil {
				return nil, false
			}
			return data, true
		},
		func(data []byte) (sim.Payload, error) {
			var w wireRumors
			if err := json.Unmarshal(data, &w); err != nil {
				return nil, fmt.Errorf("core: rumor payload: %w", err)
			}
			set := bitset.New(w.N)
			for _, i := range w.Set {
				if i < 0 || i >= w.N {
					return nil, fmt.Errorf("core: rumor payload member %d out of range [0,%d)", i, w.N)
				}
				set.Add(i)
			}
			return rumorPayload{set: set}, nil
		})
}

// broadcastProto is the live.Protocol shape shared by the single-source
// broadcast protocols: completion is "this node is informed".
type broadcastProto struct {
	name       string
	known      bool
	newHandler func(u graph.NodeID) sim.Handler
	informed   func(h sim.Handler) bool
}

var _ live.Protocol = (*broadcastProto)(nil)

func (p *broadcastProto) Name() string                          { return p.name }
func (p *broadcastProto) KnownLatencies() bool                  { return p.known }
func (p *broadcastProto) NewHandler(u graph.NodeID) sim.Handler { return p.newHandler(u) }
func (p *broadcastProto) LocalDone(_ graph.NodeID, h sim.Handler) bool {
	return p.informed(h)
}

// PushPullLive returns the live-runtime descriptor for the random phone call
// broadcast from source (Theorem 12) — the same pushPullNode state machine
// PushPull drives in the simulator.
func PushPullLive(source graph.NodeID, mode PushPullMode) live.Protocol {
	return &broadcastProto{
		name:  "pushpull",
		known: mode == ModeLatencyBiased,
		newHandler: func(u graph.NodeID) sim.Handler {
			return &pushPullNode{informed: u == source, informer: -1, mode: mode}
		},
		informed: func(h sim.Handler) bool { return h.(*pushPullNode).informed },
	}
}

// FloodLive returns the live-runtime descriptor for deterministic flooding
// from source.
func FloodLive(source graph.NodeID) live.Protocol {
	return &broadcastProto{
		name: "flood",
		newHandler: func(u graph.NodeID) sim.Handler {
			return &floodNode{informed: u == source}
		},
		informed: func(h sim.Handler) bool { return h.(*floodNode).informed },
	}
}

// rrLiveProto is the live descriptor for RR Broadcast: the spanner and its
// fixed schedule are built once up front (they are global knowledge, as in
// the round engine), then every node runs the same runRR coroutine the
// simulator drives. Local completion is the all-to-all goal — the node holds
// every rumor. The states map is written by NewHandler (run setup and
// crash-recovery rejoins) and read by LocalDone from node goroutines, hence
// the lock; a descriptor serves one run at a time.
type rrLiveProto struct {
	out    [][]int // per-node spanner out-edges as neighbor indices
	k      int
	rounds int
	n      int

	mu     sync.Mutex
	states map[graph.NodeID]*eidState
}

var _ live.Protocol = (*rrLiveProto)(nil)

func (p *rrLiveProto) Name() string         { return "rrbroadcast" }
func (p *rrLiveProto) KnownLatencies() bool { return true }

func (p *rrLiveProto) NewHandler(u graph.NodeID) sim.Handler {
	st := &eidState{rumors: newRumorKnowledge(p.n, u), terminatedAt: -1}
	p.mu.Lock()
	p.states[u] = st
	p.mu.Unlock()
	containers := st.containers
	out := p.out[u]
	k, rounds := p.k, p.rounds
	proc := sim.NewProc(func(pr *sim.Proc) {
		runRR(pr, st.rumors, out, knownLatencies(pr), k, rounds)
	})
	proc.HandleRequests(knowledgeResponder(containers))
	proc.HandleResponses(knowledgeResponses(containers))
	return proc
}

func (p *rrLiveProto) LocalDone(u graph.NodeID, _ sim.Handler) bool {
	p.mu.Lock()
	st := p.states[u]
	p.mu.Unlock()
	return st != nil && st.rumors.know.Full()
}

// RRBroadcastLive returns the live-runtime descriptor for RR Broadcast
// (Algorithm 2) over an oriented Baswana–Sen spanner of G_k — the same
// fixed-schedule state machine RRBroadcast drives in the simulator. Because
// the schedule routes through specific oriented edges for a fixed number of
// rounds, it is the protocol that fails closed under partitions and crashes,
// the contrast the paper's conclusion draws against push-pull. spannerParam
// overrides the Baswana–Sen parameter (0 = ⌈log₂ n̂⌉); seed must match the
// run's seed so every process builds the identical spanner.
func RRBroadcastLive(g *graph.Graph, k, spannerParam, nHint int, seed uint64) (live.Protocol, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: RR broadcast needs k >= 1, got %d", k)
	}
	nHat := g.N()
	if nHint > nHat {
		nHat = nHint
	}
	ks := spannerParam
	if ks <= 0 {
		ks = spannerK(nHat)
	}
	sub := g.Subgraph(k)
	sp, err := spanner.Build(sub, ks, nHat, seed)
	if err != nil {
		return nil, fmt.Errorf("RR broadcast spanner: %w", err)
	}
	kRR := (2*ks - 1) * k
	out := make([][]int, g.N())
	for u := 0; u < g.N(); u++ {
		for _, oe := range sp.Out[u] {
			for idx, he := range g.Neighbors(u) {
				if he.To == oe.To {
					out[u] = append(out[u], idx)
					break
				}
			}
		}
	}
	return &rrLiveProto{
		out:    out,
		k:      k,
		rounds: kRR*sp.MaxOutDegree() + kRR,
		n:      g.N(),
		states: make(map[graph.NodeID]*eidState, g.N()),
	}, nil
}
