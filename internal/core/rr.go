package core

import (
	"gossip/internal/sim"
)

// runRR executes the RR Broadcast loop of Algorithm 2 for exactly the given
// number of rounds: each round the node propagates its knowledge snapshot
// along its next out-edge (edges with latency <= ell only), cycling
// round-robin; nodes without usable out-edges idle but keep responding via
// their request handler. By Lemma 15, k·Δ_out + k rounds suffice for any two
// nodes within distance k of each other (in the graph the out-edges span) to
// exchange knowledge.
//
// Every node runs for the same fixed number of rounds, keeping multi-phase
// protocols aligned; a trailing wait of ell rounds lets in-flight exchanges
// land.
func runRR(p *sim.Proc, k knowledge, out []int, lat latFunc, ell, rounds int) {
	usable := make([]int, 0, len(out))
	for _, idx := range out {
		if lat(idx) <= ell {
			usable = append(usable, idx)
		}
	}
	if len(usable) == 0 {
		p.WaitRounds(rounds + ell)
		return
	}
	start := p.Round()
	for i := 0; p.Round()-start < rounds; i++ {
		p.Send(usable[i%len(usable)], k.Snapshot())
		// Send paces itself to one initiation per round, but guarantee
		// progress even if a future refactor makes it reentrant.
		if p.Round()-start >= rounds {
			break
		}
		p.Yield()
	}
	if rem := rounds + ell - (p.Round() - start); rem > 0 {
		p.WaitRounds(rem)
	}
}
