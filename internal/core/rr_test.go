package core

import (
	"math"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestRRBroadcastCorollary16(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique24", g: graph.Clique(24, 1)},
		{name: "ringcliques", g: graph.RingOfCliques(4, 6, 3)},
		{name: "grid5x5", g: graph.Grid(5, 5, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tt.g.WeightedDiameter()
			res, err := RRBroadcast(tt.g, d, 0, sim.Config{Seed: 17})
			if err != nil {
				t.Fatalf("RRBroadcast: %v", err)
			}
			if !res.Completed {
				t.Fatal("RR broadcast with k=D must complete all-to-all dissemination")
			}
			// Lemma 15: completion within kRR·Δout + kRR rounds.
			ks := spannerK(tt.g.N())
			kRR := (2*ks - 1) * d
			bound := kRR*res.MaxOutDegree + kRR
			if res.RoundsToComplete > bound+d {
				t.Errorf("completed at round %d, Lemma 15 bound %d", res.RoundsToComplete, bound)
			}
			// Theorem 14 orientation: out-degree O(log n).
			if lim := 6 * int(math.Ceil(math.Log2(float64(tt.g.N())))); res.MaxOutDegree > lim {
				t.Errorf("max out-degree %d, want O(log n) <= %d", res.MaxOutDegree, lim)
			}
		})
	}
}

func TestRRBroadcastValidation(t *testing.T) {
	if _, err := RRBroadcast(graph.Clique(4, 1), 0, 0, sim.Config{}); err == nil {
		t.Error("k=0 should fail")
	}
}
