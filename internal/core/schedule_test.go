package core

import (
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestSpannerKValues(t *testing.T) {
	tests := []struct {
		nHat, want int
	}{
		{nHat: 2, want: 2}, // floor at 2
		{nHat: 4, want: 2},
		{nHat: 5, want: 3},
		{nHat: 64, want: 6},
		{nHat: 100, want: 7},
	}
	for _, tt := range tests {
		if got := spannerK(tt.nHat); got != tt.want {
			t.Errorf("spannerK(%d) = %d, want %d", tt.nHat, got, tt.want)
		}
	}
}

func TestDTGBudgetMonotone(t *testing.T) {
	// Budget grows linearly in ℓ and polylog in n̂; all nodes must agree, so
	// it is a pure function.
	if dtgBudget(2, 16) != 2*dtgBudget(1, 16) {
		t.Errorf("budget not linear in ℓ: %d vs %d", dtgBudget(2, 16), dtgBudget(1, 16))
	}
	if dtgBudget(1, 1024) <= dtgBudget(1, 16) {
		t.Error("budget must grow with n̂")
	}
	if dtgBudget(1, 16) != dtgBudget(1, 16) {
		t.Error("budget must be deterministic")
	}
}

func TestRRScheduleShape(t *testing.T) {
	kRR, rounds := rrSchedule(4, 64)
	ks := spannerK(64)
	if kRR != (2*ks-1)*4 {
		t.Errorf("kRR = %d, want (2k−1)·d = %d", kRR, (2*ks-1)*4)
	}
	if rounds != kRR*outDegreeBound(64)+kRR {
		t.Errorf("rounds = %d, want kRR·Δout+kRR", rounds)
	}
	// Doubling d doubles the schedule.
	_, r2 := rrSchedule(8, 64)
	if r2 != 2*rounds {
		t.Errorf("schedule not linear in d: %d vs %d", r2, rounds)
	}
}

func TestTRoundsRecurrence(t *testing.T) {
	nHat := 32
	if got, want := tRounds(1, nHat), dtgBudget(1, nHat); got != want {
		t.Errorf("T(1) = %d, want %d", got, want)
	}
	for k := 2; k <= 32; k *= 2 {
		want := 2*tRounds(k/2, nHat) + dtgBudget(k, nHat)
		if got := tRounds(k, nHat); got != want {
			t.Errorf("T(%d) = %d, want recurrence %d", k, got, want)
		}
	}
}

// TestRunRRFixedDuration verifies that the RR phase occupies exactly its
// scheduled rounds at every node regardless of out-edge counts — the
// alignment property multi-phase protocols rely on.
func TestRunRRFixedDuration(t *testing.T) {
	g := graph.Star(6, 2)
	nw := sim.NewNetwork(g, sim.Config{Seed: 1, KnownLatencies: true, MaxRounds: 500})
	const rounds = 24
	const ell = 2
	elapsed := make([]int, g.N())
	for u := 0; u < g.N(); u++ {
		u := u
		st := &eidState{rumors: newRumorKnowledge(g.N(), u)}
		var out []int
		if u == 0 {
			out = []int{0, 1, 2} // center owns some oriented edges
		} else if u == 1 {
			out = []int{0}
		} // other leaves own none
		containers := st.containers
		proc := sim.NewProc(func(p *sim.Proc) {
			start := p.Round()
			runRR(p, st.rumors, out, knownLatencies(p), ell, rounds)
			elapsed[u] = p.Round() - start
		})
		proc.HandleRequests(knowledgeResponder(containers))
		proc.HandleResponses(knowledgeResponses(containers))
		nw.SetHandler(u, proc)
	}
	if _, err := nw.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	for u, e := range elapsed {
		if e != rounds+ell {
			t.Errorf("node %d RR phase took %d rounds, want %d (alignment)", u, e, rounds+ell)
		}
	}
}

// TestRunProbeWindow verifies the discovery window: edges with latency <= b
// probed in a 2b window are learned; slower edges are not.
func TestRunProbeWindow(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 2) // fast: learnable at b=2
	g.MustAddEdge(0, 2, 9) // slow: not learnable at b=2
	nw := sim.NewNetwork(g, sim.Config{Seed: 1, MaxRounds: 100})
	dst := newDiscState()
	var window int
	p0 := sim.NewProc(func(p *sim.Proc) {
		start := p.Round()
		runProbe(p, dst, 2)
		window = p.Round() - start
	})
	p0.HandleResponses(func(p *sim.Proc, resp sim.Response) {
		dst.lat[resp.EdgeIndex] = resp.Latency
	})
	nw.SetHandler(0, p0)
	nw.SetHandler(1, sim.NewProc(func(p *sim.Proc) {}))
	nw.SetHandler(2, sim.NewProc(func(p *sim.Proc) {}))
	if _, err := nw.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if window != 4 {
		t.Errorf("probe window took %d rounds, want exactly 2b = 4", window)
	}
	if l, ok := dst.lat[0]; !ok || l != 2 {
		t.Errorf("fast edge latency = %d (known=%v), want 2", l, ok)
	}
	lat := dst.latFunc()
	if lat(0) != 2 {
		t.Errorf("latFunc(0) = %d", lat(0))
	}
	if lat(1) != unknownLatency {
		t.Errorf("latFunc(1) = %d, want unknown", lat(1))
	}
}
