package core

import (
	"fmt"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestEIDKnownDiameterSmall(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique16", g: graph.Clique(16, 1)},
		{name: "path12-lat2", g: graph.Path(12, 2)},
		{name: "ringcliques", g: graph.RingOfCliques(3, 5, 3)},
		{name: "grid4x4", g: graph.Grid(4, 4, 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tt.g.WeightedDiameter()
			res, err := EID(tt.g, d, sim.Config{Seed: 11})
			if err != nil {
				t.Fatalf("EID: %v", err)
			}
			if !res.Completed {
				t.Fatal("EID did not achieve all-to-all dissemination")
			}
		})
	}
}

func TestGeneralEIDUnknownDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique12", g: graph.Clique(12, 1)},
		{name: "path10-lat3", g: graph.Path(10, 3)},
		{name: "dumbbell", g: graph.Dumbbell(6, 4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := GeneralEID(tt.g, sim.Config{Seed: 13})
			if err != nil {
				t.Fatalf("GeneralEID: %v", err)
			}
			if !res.Completed {
				t.Fatal("General EID did not achieve all-to-all dissemination")
			}
			// Lemma 18: all nodes terminate in the same round.
			first := res.TerminatedAt[0]
			if first < 0 {
				t.Fatal("node 0 did not record termination")
			}
			for v, r := range res.TerminatedAt {
				if r != first {
					t.Errorf("node %d terminated at %d, node 0 at %d (Lemma 18 violated)", v, r, first)
				}
			}
			// The final estimate must be within a doubling of the diameter.
			d := tt.g.WeightedDiameter()
			if res.FinalEstimate < d && res.Completed {
				t.Logf("final estimate %d < D=%d but run completed (estimate covered the graph earlier)", res.FinalEstimate, d)
			}
			if res.FinalEstimate >= 4*d && d > 0 {
				t.Errorf("final estimate %d >= 4·D=%d; doubling overshot", res.FinalEstimate, 4*d)
			}
		})
	}
}

// TestEIDWithPolynomialHint exercises Section 5.1's assumption: nodes know
// only a polynomial upper bound n̂ on n. The spanner parameter, sampling
// probability and all budgets derive from n̂; the algorithms must still
// complete (Lemma 13 covers n <= n̂ <= n^c).
func TestEIDWithPolynomialHint(t *testing.T) {
	g := graph.RingOfCliques(3, 5, 2)
	n := g.N()
	d := g.WeightedDiameter()
	for _, hint := range []int{n, 2 * n, n * n} {
		t.Run(fmt.Sprintf("nhat=%d", hint), func(t *testing.T) {
			res, err := EID(g, d, sim.Config{Seed: 3, NHint: hint})
			if err != nil {
				t.Fatalf("EID: %v", err)
			}
			if !res.Completed {
				t.Fatal("EID incomplete with polynomial hint")
			}
			gen, err := GeneralEID(g, sim.Config{Seed: 3, NHint: hint})
			if err != nil {
				t.Fatalf("GeneralEID: %v", err)
			}
			if !gen.Completed {
				t.Fatal("General EID incomplete with polynomial hint")
			}
			for _, r := range gen.TerminatedAt {
				if r != gen.TerminatedAt[0] {
					t.Fatal("same-round termination violated with polynomial hint")
				}
			}
		})
	}
}
