package core

import (
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// antiEntropyNode is the all-to-all random phone call protocol (anti-entropy
// in systems terms): every round each node exchanges its full rumor set with
// a uniformly random neighbor. It solves the same task as EID — all-to-all
// information dissemination — with O(n)-bit messages but no reliance on
// latency knowledge, spanners, or schedules, which is why it survives
// crashes (the FAULT experiment's all-to-all column).
type antiEntropyNode struct {
	know *bitset.Set
}

var _ sim.Handler = (*antiEntropyNode)(nil)

func (n *antiEntropyNode) Start(ctx *sim.Context) {}

func (n *antiEntropyNode) Tick(ctx *sim.Context) {
	deg := ctx.Degree()
	if deg == 0 {
		return
	}
	// The payload is a snapshot: the engine requires immutability.
	if _, err := ctx.Initiate(ctx.Rand().Intn(deg), snapshotRumors(n.know)); err != nil {
		panic(err) // impossible: single initiation per Tick
	}
}

func (n *antiEntropyNode) OnRequest(ctx *sim.Context, req sim.Request) sim.Payload {
	if rp, ok := req.Payload.(rumorPayload); ok && rp.set != nil {
		n.know.UnionWith(rp.set)
	}
	return snapshotRumors(n.know)
}

func (n *antiEntropyNode) OnResponse(ctx *sim.Context, resp sim.Response) {
	if rp, ok := resp.Payload.(rumorPayload); ok && rp.set != nil {
		n.know.UnionWith(rp.set)
	}
}

func (n *antiEntropyNode) Done() bool { return false }

// PushPullAllToAll runs anti-entropy until every surviving node holds the
// rumor of every surviving node (crashed nodes' rumors may be lost if they
// die before any exchange). Time O((ℓ*/φ*)·log n) like single-rumor
// push-pull — payloads are sets, the schedule is identical.
func PushPullAllToAll(g *graph.Graph, cfg sim.Config) (AllToAllResult, error) {
	nw := sim.NewNetwork(g, cfg)
	nodes := make([]*antiEntropyNode, g.N())
	for u := 0; u < g.N(); u++ {
		st := &antiEntropyNode{know: bitset.New(g.N())}
		st.know.Add(u)
		nodes[u] = st
		nw.SetHandler(u, st)
	}
	res, err := nw.Run(func(nw *sim.Network) bool {
		for u, nd := range nodes {
			if nw.Crashed(u) {
				continue
			}
			for v := range nodes {
				if v != u && !nw.Crashed(v) && !nd.know.Contains(v) {
					return false
				}
			}
		}
		return true
	})
	out := AllToAllResult{Metrics: res.Metrics, Completed: res.Completed}
	out.TerminatedAt = make([]int, g.N())
	for i := range out.TerminatedAt {
		out.TerminatedAt[i] = -1 // anti-entropy has no local termination
	}
	if err != nil {
		return out, err
	}
	return out, nil
}
