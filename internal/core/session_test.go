package core

import (
	"testing"
)

func TestSessionHeardTracking(t *testing.T) {
	inner := newRumorKnowledge(8, 0)
	s := newDTGSession(5, 0, 8, inner)
	if !s.Has(0) || s.Has(1) {
		t.Fatal("initial heard set wrong")
	}
	s.NoteDirect(1)
	if !s.Has(1) {
		t.Error("direct exchange must mark heard")
	}
	if !inner.Direct(1) {
		t.Error("NoteDirect must propagate to inner knowledge")
	}
}

func TestSessionMergeSameEpoch(t *testing.T) {
	a := newDTGSession(5, 0, 8, newRumorKnowledge(8, 0))
	b := newDTGSession(5, 1, 8, newRumorKnowledge(8, 1))
	b.NoteDirect(3)
	if !a.Merge(b.Snapshot()) {
		t.Fatal("session payload not recognized")
	}
	// Heard set transfers: a now heard 1 (b's self) and 3.
	if !a.Has(1) || !a.Has(3) {
		t.Error("same-epoch heard set not merged")
	}
	// Inner rumors transfer too.
	if !a.inner.Has(1) {
		t.Error("inner payload not merged")
	}
}

func TestSessionMergeDifferentEpochKeepsInner(t *testing.T) {
	a := newDTGSession(5, 0, 8, newRumorKnowledge(8, 0))
	b := newDTGSession(9, 1, 8, newRumorKnowledge(8, 1))
	b.NoteDirect(3)
	if !a.Merge(b.Snapshot()) {
		t.Fatal("cross-epoch session payload must still be consumed")
	}
	if a.Has(1) || a.Has(3) {
		t.Error("cross-epoch heard set leaked")
	}
	if !a.inner.Has(1) {
		t.Error("inner payload from another epoch must still merge")
	}
}

func TestSessionMergeBareInnerPayload(t *testing.T) {
	a := newDTGSession(5, 0, 8, newRumorKnowledge(8, 0))
	other := newRumorKnowledge(8, 4)
	if !a.Merge(other.Snapshot()) {
		t.Fatal("bare rumor payload should delegate to inner")
	}
	if !a.inner.Has(4) {
		t.Error("bare payload not folded into inner knowledge")
	}
	if a.Has(4) {
		t.Error("bare payload must not mark heard")
	}
}

func TestSessionMergeForeignInnerRejected(t *testing.T) {
	// A session wrapping a *status* container must reject rumor payloads so
	// the dispatcher can route them to the rumor container instead.
	st := newStatusKnowledge(1, 0, nodeStatus{})
	s := newDTGSession(5, 0, 8, st)
	rumor := newRumorKnowledge(8, 2)
	if s.Merge(rumor.Snapshot()) {
		t.Error("session over status container consumed a rumor payload")
	}
	wrapped := sessionPayload{epoch: 5, heard: nil, inner: rumor.Snapshot()}
	if s.Merge(wrapped) {
		t.Error("session consumed a wrapped payload whose inner type mismatches")
	}
}

func TestDispatchMergeUnwrapsStaleSessions(t *testing.T) {
	st := &eidState{rumors: newRumorKnowledge(8, 0)}
	// No active session: a session-wrapped rumor payload must still reach
	// the rumor container via the unwrap fallback.
	sender := newDTGSession(9, 3, 8, newRumorKnowledge(8, 3))
	k := dispatchMerge(st.containers(), sender.Snapshot())
	if k == nil {
		t.Fatal("session payload dropped with no active session")
	}
	if !st.rumors.Has(3) {
		t.Error("unwrapped inner payload not merged into rumor container")
	}
}

func TestDispatchMergeNil(t *testing.T) {
	st := &eidState{rumors: newRumorKnowledge(4, 0)}
	if k := dispatchMerge(st.containers(), nil); k != nil {
		t.Error("nil payload must not match any container")
	}
}

func TestSessionPayloadSize(t *testing.T) {
	inner := newRumorKnowledge(64, 0)
	s := newDTGSession(1, 0, 64, inner)
	sp, ok := s.Snapshot().(sessionPayload)
	if !ok {
		t.Fatal("snapshot type")
	}
	// 8 (epoch) + 8 (64-bit heard set) + 8 (64-bit rumor set).
	if sp.SizeBytes() != 24 {
		t.Errorf("session payload size = %d, want 24", sp.SizeBytes())
	}
}
