package core

import (
	"fmt"

	"gossip/internal/sim"

	"gossip/internal/graph"
)

// probePayload is the empty request used to measure an edge's latency: the
// initiator learns the latency when the response returns (Section 4.2).
type probePayload struct{}

var _ sim.Sizer = probePayload{}

// SizeBytes implements sim.Sizer.
func (probePayload) SizeBytes() int { return 1 }

// discState records latencies learned from completed exchanges.
type discState struct {
	lat map[int]int // edge index -> learned latency
}

func newDiscState() *discState { return &discState{lat: make(map[int]int, 8)} }

// latFunc exposes the discovered latencies; unprobed (or too-slow) edges
// report unknownLatency and are never selected by ℓ-filters.
func (d *discState) latFunc() latFunc {
	return func(idx int) int {
		if l, ok := d.lat[idx]; ok {
			return l
		}
		return unknownLatency
	}
}

// runProbe performs one discovery window with budget b: the node probes up
// to b not-yet-known neighbors, one per round, then waits so the whole
// window occupies exactly 2b rounds. An edge of latency <= b probed in this
// window completes within it, so its latency lands in the state via the
// response handler. This is the latency-discovery step of Section 4.2,
// guess-and-doubled by the caller.
func runProbe(p *sim.Proc, d *discState, b int) {
	start := p.Round()
	sent := 0
	for _, e := range p.Neighbors() {
		if sent >= b || p.Round()-start >= b {
			break
		}
		if _, known := d.lat[e.Index]; known {
			continue
		}
		p.Send(e.Index, probePayload{})
		sent++
		p.Yield()
	}
	if rem := 2*b - (p.Round() - start); rem > 0 {
		p.WaitRounds(rem)
	}
}

// DiscoverEID solves all-to-all information dissemination when nodes do NOT
// know the latencies of their adjacent edges (Section 4.2): guess-and-double
// a budget b, discover latencies <= b by probing, run EID(b) over the
// discovered subgraph, and use the termination check to detect success.
// Completes in O((D + Δ)·log³ n) rounds.
func DiscoverEID(g *graph.Graph, cfg sim.Config) (AllToAllResult, error) {
	cfg.KnownLatencies = false
	nw := sim.NewNetwork(g, cfg)
	states := make([]*eidState, g.N())
	for u := 0; u < g.N(); u++ {
		st := &eidState{
			rumors:       newRumorKnowledge(g.N(), u),
			terminatedAt: -1,
		}
		states[u] = st
		dst := newDiscState()
		containers := st.containers
		proc := sim.NewProc(func(p *sim.Proc) {
			nHat := nw.NHint()
			lat := dst.latFunc()
			b := 1
			for phase := 0; ; phase++ {
				runProbe(p, dst, b)
				out := runEID(p, st, lat, b, nHat, cfg.Seed)
				if runTerminationCheck(p, st, lat, b, nHat, out, phase) {
					st.terminatedAt = p.Round()
					st.finalEstimate = b
					return
				}
				b *= 2
				if phase >= maxDoubling {
					st.gaveUp = true
					return
				}
			}
		})
		proc.HandleRequests(knowledgeResponder(containers))
		respond := knowledgeResponses(containers)
		proc.HandleResponses(func(p *sim.Proc, resp sim.Response) {
			// Every completed exchange reveals its edge's latency.
			dst.lat[resp.EdgeIndex] = resp.Latency
			respond(p, resp)
		})
		nw.SetHandler(u, proc)
	}
	res, err := nw.Run(nil)
	out := collectAllToAll(res.Metrics, states)
	for _, st := range states {
		if st.finalEstimate > out.FinalEstimate {
			out.FinalEstimate = st.finalEstimate
		}
		if st.gaveUp {
			out.Completed = false
			err = fmt.Errorf("discover-EID on %v: doubling safety valve tripped", g)
		}
	}
	if err != nil {
		return out, fmt.Errorf("discover-EID: %w", err)
	}
	return out, nil
}
