package core

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// TreeBroadcastResult reports a shortest-path-tree broadcast run.
type TreeBroadcastResult struct {
	Metrics          sim.Metrics
	Completed        bool
	Depth            int // weighted depth of the tree
	MaxOutDegree     int // maximum child count
	RoundsToComplete int
	// Loads reports per-node traffic (initiated/answered exchanges).
	Loads []sim.NodeLoad
}

// TreeBroadcast is the natural alternative to the spanner machinery: build
// the shortest-path tree rooted at root (centralized, as a best-case
// baseline — a real system would need O(D) distributed BFS), orient edges
// parent→child plus child→parent, and run the RR Broadcast loop over the
// tree. All-to-all dissemination completes, but the out-degree is the tree
// fan-out — unbounded in general (a star's root has n−1 children), which is
// exactly why EID pays for a spanner with O(log n) *oriented out-degree*
// instead. The ablation experiment quantifies the difference.
func TreeBroadcast(g *graph.Graph, root graph.NodeID, cfg sim.Config) (TreeBroadcastResult, error) {
	if root < 0 || root >= g.N() {
		return TreeBroadcastResult{}, fmt.Errorf("core: tree root %d out of range [0,%d)", root, g.N())
	}
	cfg.KnownLatencies = true
	parentEdge, depth, err := shortestPathTree(g, root)
	if err != nil {
		return TreeBroadcastResult{}, err
	}
	// Orient every tree edge out of the child: each node round-robins over
	// its single parent edge (the root has none), so Δ_out = 1 and upward
	// traffic carries rumor sets; responses carry them back down.
	// Additionally parents must push to children to cut the downward
	// latency, so each node also owns its child edges.
	out := make([][]int, g.N())
	maxOut := 0
	for v := 0; v < g.N(); v++ {
		if v != root && parentEdge[v] >= 0 {
			out[v] = append(out[v], parentEdge[v])
		}
	}
	for v := 0; v < g.N(); v++ {
		for idx, he := range g.Neighbors(v) {
			if he.To != root && parentEdge[he.To] >= 0 {
				// v is he.To's parent iff he.To's parent edge leads to v.
				pe := g.Neighbors(he.To)[parentEdge[he.To]]
				if pe.To == v {
					out[v] = append(out[v], idx)
				}
			}
		}
		if len(out[v]) > maxOut {
			maxOut = len(out[v])
		}
	}

	kRR := 2 * depth
	if kRR < 1 {
		kRR = 1
	}
	rounds := kRR*maxOut + kRR

	nw := sim.NewNetwork(g, cfg)
	states := make([]*eidState, g.N())
	for u := 0; u < g.N(); u++ {
		st := &eidState{rumors: newRumorKnowledge(g.N(), u), terminatedAt: -1}
		states[u] = st
		edges := out[u]
		containers := st.containers
		proc := sim.NewProc(func(p *sim.Proc) {
			runRR(p, st.rumors, edges, knownLatencies(p), depth, rounds)
		})
		proc.HandleRequests(knowledgeResponder(containers))
		proc.HandleResponses(knowledgeResponses(containers))
		nw.SetHandler(u, proc)
	}
	completeAt := -1
	res, err := nw.Run(func(nw *sim.Network) bool {
		if completeAt < 0 {
			all := true
			for _, st := range states {
				if !st.rumors.know.Full() {
					all = false
					break
				}
			}
			if all {
				completeAt = nw.Round()
			}
		}
		return false
	})
	outRes := TreeBroadcastResult{
		Metrics:          res.Metrics,
		Depth:            depth,
		MaxOutDegree:     maxOut,
		RoundsToComplete: completeAt,
		Completed:        completeAt >= 0,
		Loads:            nw.Loads(),
	}
	if err != nil && completeAt < 0 {
		return outRes, fmt.Errorf("tree broadcast on %v: %w", g, err)
	}
	return outRes, nil
}

// shortestPathTree returns, for every node, the index (in its neighbor
// list) of the edge toward its parent on a shortest path to root (-1 for
// the root), plus the weighted depth of the tree.
func shortestPathTree(g *graph.Graph, root graph.NodeID) ([]int, int, error) {
	dist := g.Distances(root)
	parentEdge := make([]int, g.N())
	depth := 0
	for v := 0; v < g.N(); v++ {
		parentEdge[v] = -1
		if v == root {
			continue
		}
		if dist[v] >= graph.Inf {
			return nil, 0, fmt.Errorf("core: node %d unreachable from root %d", v, root)
		}
		if dist[v] > depth {
			depth = dist[v]
		}
		for idx, he := range g.Neighbors(v) {
			if dist[he.To]+he.Latency == dist[v] {
				parentEdge[v] = idx
				break
			}
		}
		if parentEdge[v] < 0 {
			return nil, 0, fmt.Errorf("core: no tree parent for node %d", v)
		}
	}
	return parentEdge, depth, nil
}
