package core

import (
	"math"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestPushPullClique(t *testing.T) {
	g := graph.Clique(64, 1)
	res, err := PushPull(g, 0, ModePushPull, sim.Config{Seed: 1})
	if err != nil {
		t.Fatalf("PushPull: %v", err)
	}
	if !res.Completed {
		t.Fatal("broadcast did not complete")
	}
	// O(log n) on a clique: generous constant.
	if max := 8 * int(math.Log2(64)); res.Metrics.Rounds > max {
		t.Errorf("clique rounds = %d, want <= %d", res.Metrics.Rounds, max)
	}
	for v, r := range res.InformedAt {
		if r < 0 {
			t.Errorf("node %d never informed", v)
		}
	}
}

func TestPushPullPathRespectssLatency(t *testing.T) {
	// A 2-node graph with a single latency-10 edge: the exchange takes
	// exactly 10 rounds, so the rumor arrives at round ⌈10/2⌉ = 5 at the
	// earliest (one-way) and the run completes by round 10.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 10)
	res, err := PushPull(g, 0, ModePushPull, sim.Config{Seed: 1})
	if err != nil {
		t.Fatalf("PushPull: %v", err)
	}
	if res.Metrics.Rounds < 5 {
		t.Errorf("rounds = %d; information traveled faster than latency/2", res.Metrics.Rounds)
	}
}

func TestPushPullSeedsDeterministic(t *testing.T) {
	g := graph.RingOfCliques(8, 8, 4)
	a, err := PushPull(g, 0, ModePushPull, sim.Config{Seed: 42})
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := PushPull(g, 0, ModePushPull, sim.Config{Seed: 42})
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("same seed gave different metrics: %+v vs %+v", a.Metrics, b.Metrics)
	}
	c, err := PushPull(g, 0, ModePushPull, sim.Config{Seed: 43})
	if err != nil {
		t.Fatalf("run c: %v", err)
	}
	if a.Metrics.Rounds == c.Metrics.Rounds && a.Metrics.Requests == c.Metrics.Requests {
		t.Log("different seeds coincided (possible but unlikely); not failing")
	}
}

func TestPushOnlyStarIsSlow(t *testing.T) {
	// Footnote 2: without pull, a star broadcast from a leaf needs the
	// center to push to each leaf individually — Θ(n) time — whereas
	// push-pull finishes in O(log n) because leaves pull from the center.
	const n = 128
	g := graph.Star(n, 1)
	pp, err := PushPull(g, 1, ModePushPull, sim.Config{Seed: 7})
	if err != nil {
		t.Fatalf("push-pull: %v", err)
	}
	po, err := PushPull(g, 1, ModePushOnly, sim.Config{Seed: 7, MaxRounds: 100 * n})
	if err != nil {
		t.Fatalf("push-only: %v", err)
	}
	if po.Metrics.Rounds < 4*pp.Metrics.Rounds {
		t.Errorf("push-only (%d rounds) should be much slower than push-pull (%d rounds)",
			po.Metrics.Rounds, pp.Metrics.Rounds)
	}
	if pp.Metrics.Rounds > 40 {
		t.Errorf("push-pull on star took %d rounds, want O(log n)", pp.Metrics.Rounds)
	}
}

func TestFloodPath(t *testing.T) {
	g := graph.Path(32, 3)
	res, err := Flood(g, 0, sim.Config{Seed: 1})
	if err != nil {
		t.Fatalf("Flood: %v", err)
	}
	// The rumor must traverse 31 edges of latency 3; one-way delivery takes
	// ⌈3/2⌉ = 2 rounds per hop.
	if res.Metrics.Rounds < 31*2 {
		t.Errorf("flood rounds = %d, want >= %d (latency floor)", res.Metrics.Rounds, 31*2)
	}
	if res.Metrics.Rounds > 31*3+40 {
		t.Errorf("flood rounds = %d, want <= %d", res.Metrics.Rounds, 31*3+40)
	}
}

func TestFloodInformsEveryoneOnGadget(t *testing.T) {
	gd, err := graph.NewGadget(8, graph.SingletonTarget(8, 3), false, 50)
	if err != nil {
		t.Fatalf("gadget: %v", err)
	}
	res, err := Flood(gd.G, 0, sim.Config{Seed: 5})
	if err != nil {
		t.Fatalf("Flood: %v", err)
	}
	for v, r := range res.InformedAt {
		if r < 0 {
			t.Errorf("node %d never informed", v)
		}
	}
}

// TestInfectionTree verifies the informer relation forms a tree rooted at
// the source: every informed non-source node has an informer that is a
// graph neighbor informed no later than itself, and following informers
// reaches the source without cycles.
func TestInfectionTree(t *testing.T) {
	g := graph.RingOfCliques(4, 6, 3)
	res, err := PushPull(g, 0, ModePushPull, sim.Config{Seed: 17})
	if err != nil || !res.Completed {
		t.Fatalf("PushPull: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		if v == 0 {
			if res.Informer[v] != -1 {
				t.Errorf("source informer = %d, want -1", res.Informer[v])
			}
			continue
		}
		p := res.Informer[v]
		if p < 0 {
			t.Fatalf("node %d informed but has no informer", v)
		}
		if !g.HasEdge(v, p) {
			t.Errorf("informer %d of %d is not a neighbor", p, v)
		}
		if res.InformedAt[p] > res.InformedAt[v] {
			t.Errorf("informer %d (round %d) informed later than %d (round %d)",
				p, res.InformedAt[p], v, res.InformedAt[v])
		}
		// Walk to the root; bounded steps guard against cycles.
		cur := v
		for steps := 0; cur != 0; steps++ {
			if steps > g.N() {
				t.Fatalf("informer chain from %d does not reach the source", v)
			}
			cur = res.Informer[cur]
			if cur < 0 {
				t.Fatalf("informer chain from %d hit an uninformed node", v)
			}
		}
	}
}
