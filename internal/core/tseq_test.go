package core

import (
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestTSequenceKnownDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique12", g: graph.Clique(12, 1)},
		{name: "path8-lat2", g: graph.Path(8, 2)},
		{name: "ringcliques", g: graph.RingOfCliques(3, 4, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tt.g.WeightedDiameter()
			res, err := TSequence(tt.g, d, sim.Config{Seed: 21})
			if err != nil {
				t.Fatalf("TSequence: %v", err)
			}
			if !res.Completed {
				t.Fatal("T(D) did not achieve all-to-all dissemination")
			}
			// Lemma 25: O(D log² n log D) rounds, realized as the recursive
			// budget sum.
			k := 1
			for k < d {
				k *= 2
			}
			if res.Metrics.Rounds > tRounds(k, tt.g.N())+2 {
				t.Errorf("T(%d) took %d rounds, exceeds schedule %d", k, res.Metrics.Rounds, tRounds(k, tt.g.N()))
			}
		})
	}
}

// TestLemma24PairwiseExchange verifies the induction statement of Lemma 24
// directly: after executing T(k), any two nodes within weighted distance k
// hold each other's rumors — for every k in the schedule, on graphs with
// mixed latencies.
func TestLemma24PairwiseExchange(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "mixed-gnp", g: graph.RandomLatencies(graph.GNP(14, 0.3, 1, true, 3), 1, 6, 3)},
		{name: "path-L3", g: graph.Path(9, 3)},
		{name: "ringcliques", g: graph.RingOfCliques(3, 4, 4)},
	}
	for _, tt := range graphs {
		t.Run(tt.name, func(t *testing.T) {
			for _, k := range []int{1, 2, 4, 8} {
				cfg := sim.Config{Seed: 9, KnownLatencies: true}
				nw := sim.NewNetwork(tt.g, cfg)
				states := attachEIDProcs(nw, tt.g, func(p *sim.Proc, st *eidState, lat latFunc) {
					runT(p, st, lat, k, nw.NHint())
				})
				if _, err := nw.Run(nil); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				for u := 0; u < tt.g.N(); u++ {
					dist := tt.g.Distances(u)
					for v := 0; v < tt.g.N(); v++ {
						if u == v || dist[v] > k {
							continue
						}
						if !states[u].rumors.Has(v) {
							t.Errorf("k=%d: node %d (dist %d) missing rumor of %d", k, u, dist[v], v)
						}
						if !states[v].rumors.Has(u) {
							t.Errorf("k=%d: node %d missing rumor of %d (symmetry)", k, v, u)
						}
					}
				}
			}
		})
	}
}

func TestPathDiscovery(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique10", g: graph.Clique(10, 1)},
		{name: "dumbbell", g: graph.Dumbbell(5, 3)},
		{name: "grid3x4", g: graph.Grid(3, 4, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := PathDiscovery(tt.g, sim.Config{Seed: 23})
			if err != nil {
				t.Fatalf("PathDiscovery: %v", err)
			}
			if !res.Completed {
				t.Fatal("Path Discovery did not achieve all-to-all dissemination")
			}
			first := res.TerminatedAt[0]
			for v, r := range res.TerminatedAt {
				if r != first {
					t.Errorf("node %d terminated at %d, node 0 at %d", v, r, first)
				}
			}
		})
	}
}

func TestDiscoverEIDUnknownLatencies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique10", g: graph.Clique(10, 1)},
		{name: "path8-lat2", g: graph.Path(8, 2)},
		{name: "mixed-latencies", g: graph.RandomLatencies(graph.Grid(3, 3, 1), 1, 4, 9)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := DiscoverEID(tt.g, sim.Config{Seed: 29})
			if err != nil {
				t.Fatalf("DiscoverEID: %v", err)
			}
			if !res.Completed {
				t.Fatal("discover-EID did not achieve all-to-all dissemination")
			}
			first := res.TerminatedAt[0]
			for v, r := range res.TerminatedAt {
				if r != first {
					t.Errorf("node %d terminated at %d, node 0 at %d", v, r, first)
				}
			}
		})
	}
}

func TestUnifiedPicksWinner(t *testing.T) {
	// Well-connected graph: push-pull should win.
	cl := graph.Clique(16, 1)
	res, err := Unified(cl, 0, true, sim.Config{Seed: 31})
	if err != nil {
		t.Fatalf("Unified: %v", err)
	}
	if res.Winner != "push-pull" {
		t.Errorf("on a clique, winner = %q, want push-pull (pp=%d, sp=%d)",
			res.Winner, res.PushPull.Metrics.Rounds, res.Spanner.Metrics.Rounds)
	}
	if res.Rounds != 2*res.PushPull.Metrics.Rounds {
		t.Errorf("interleaved rounds = %d, want %d", res.Rounds, 2*res.PushPull.Metrics.Rounds)
	}
}
