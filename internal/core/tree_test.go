package core

import (
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestTreeBroadcastCompletes(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique16", g: graph.Clique(16, 1)},
		{name: "path10-L3", g: graph.Path(10, 3)},
		{name: "ringcliques", g: graph.RingOfCliques(3, 5, 2)},
		{name: "star24", g: graph.Star(24, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := TreeBroadcast(tt.g, 0, sim.Config{Seed: 7})
			if err != nil {
				t.Fatalf("TreeBroadcast: %v", err)
			}
			if !res.Completed {
				t.Fatal("tree broadcast did not achieve all-to-all dissemination")
			}
			if res.Depth <= 0 && tt.g.N() > 1 {
				t.Errorf("depth = %d", res.Depth)
			}
		})
	}
}

func TestTreeBroadcastStarFanOut(t *testing.T) {
	// On a star rooted at the center, the tree fan-out is n-1 — the failure
	// mode the spanner's O(log n) orientation avoids.
	g := graph.Star(32, 1)
	res, err := TreeBroadcast(g, 0, sim.Config{Seed: 3})
	if err != nil {
		t.Fatalf("TreeBroadcast: %v", err)
	}
	if res.MaxOutDegree != 31 {
		t.Errorf("star root fan-out = %d, want 31", res.MaxOutDegree)
	}
}

func TestTreeBroadcastValidation(t *testing.T) {
	if _, err := TreeBroadcast(graph.Clique(4, 1), 9, sim.Config{}); err == nil {
		t.Error("out-of-range root should fail")
	}
	disconnected := graph.New(3)
	disconnected.MustAddEdge(0, 1, 1)
	if _, err := TreeBroadcast(disconnected, 0, sim.Config{}); err == nil {
		t.Error("disconnected graph should fail")
	}
}

func TestShortestPathTreeProperties(t *testing.T) {
	g := graph.RandomLatencies(graph.GNP(20, 0.3, 1, true, 5), 1, 6, 5)
	parentEdge, depth, err := shortestPathTree(g, 0)
	if err != nil {
		t.Fatalf("shortestPathTree: %v", err)
	}
	dist := g.Distances(0)
	for v := 1; v < g.N(); v++ {
		pe := g.Neighbors(v)[parentEdge[v]]
		// Parent relation realizes the shortest-path recurrence.
		if dist[pe.To]+pe.Latency != dist[v] {
			t.Errorf("node %d parent edge not on a shortest path", v)
		}
	}
	for v := 0; v < g.N(); v++ {
		if dist[v] > depth {
			t.Errorf("depth %d below distance of node %d (%d)", depth, v, dist[v])
		}
	}
}
