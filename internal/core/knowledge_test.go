package core

import (
	"testing"
	"testing/quick"

	"gossip/internal/graph"
)

func TestRumorKnowledgeBasics(t *testing.T) {
	k := newRumorKnowledge(8, 3)
	if !k.Has(3) {
		t.Fatal("own rumor must be present")
	}
	if k.Has(0) {
		t.Fatal("unknown rumor reported present")
	}
	other := newRumorKnowledge(8, 5)
	if !k.Merge(other.Snapshot()) {
		t.Fatal("rumor payload not recognized")
	}
	if !k.Has(5) {
		t.Error("merge did not import rumor 5")
	}
	if k.Merge(nbPayload{}) {
		t.Error("rumor container must reject neighborhood payloads")
	}
	k.NoteDirect(5)
	if !k.Direct(5) || k.Direct(3) {
		t.Error("direct bookkeeping wrong")
	}
}

func TestRumorDigestDistinguishesSets(t *testing.T) {
	a := newRumorKnowledge(16, 0)
	b := newRumorKnowledge(16, 0)
	if a.digest() != b.digest() {
		t.Fatal("equal sets must share a digest")
	}
	b.know.Add(7)
	if a.digest() == b.digest() {
		t.Error("different sets share a digest")
	}
}

func TestQuickDigestInjectiveish(t *testing.T) {
	// Digests of distinct small sets collide with negligible probability.
	f := func(x, y uint8) bool {
		a := newRumorKnowledge(256, int(x))
		b := newRumorKnowledge(256, int(y))
		if x == y {
			return a.digest() == b.digest()
		}
		return a.digest() != b.digest()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNbKnowledgeFirstCopyWins(t *testing.T) {
	own := []graph.HalfEdge{{To: 1, Latency: 2}}
	k := newNbKnowledge(0, own)
	if !k.Has(0) || k.Has(1) {
		t.Fatal("initial adjacency wrong")
	}
	p1 := nbPayload{entries: []adjEntry{{Node: 1, Edges: []graph.HalfEdge{{To: 0, Latency: 2}}}}}
	if !k.Merge(p1) {
		t.Fatal("nb payload not recognized")
	}
	// A conflicting later copy must not overwrite (adjacency is a fact).
	p2 := nbPayload{entries: []adjEntry{{Node: 1, Edges: []graph.HalfEdge{{To: 9, Latency: 9}}}}}
	k.Merge(p2)
	if len(k.adj[1]) != 1 || k.adj[1][0].To != 0 {
		t.Errorf("adjacency of node 1 overwritten: %v", k.adj[1])
	}
}

func TestNbBuildGraphFiltersLatency(t *testing.T) {
	k := newNbKnowledge(0, []graph.HalfEdge{{To: 1, Latency: 2}, {To: 2, Latency: 9}})
	k.Merge(nbPayload{entries: []adjEntry{
		{Node: 1, Edges: []graph.HalfEdge{{To: 0, Latency: 2}, {To: 2, Latency: 3}}},
	}})
	g := k.buildGraph(3, 5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("expected edges missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("latency-9 edge should be filtered at maxLatency=5")
	}
	full := k.buildGraph(3, 0)
	if !full.HasEdge(0, 2) {
		t.Error("maxLatency=0 must keep all edges")
	}
}

func TestNbBuildGraphIgnoresOutOfRange(t *testing.T) {
	k := newNbKnowledge(0, []graph.HalfEdge{{To: 7, Latency: 1}})
	g := k.buildGraph(2, 0)
	if g.M() != 0 {
		t.Errorf("out-of-range endpoint produced %d edges", g.M())
	}
}

func TestStatusKnowledgePhaseIsolation(t *testing.T) {
	k := newStatusKnowledge(4, 0, nodeStatus{Digest: 11})
	// Same phase merges.
	same := statusPayload{phase: 4, entries: map[graph.NodeID]nodeStatus{1: {Digest: 22}}}
	if !k.Merge(same) {
		t.Fatal("status payload not recognized")
	}
	if !k.Has(1) {
		t.Error("same-phase entry not merged")
	}
	// Different phase consumed but ignored.
	stale := statusPayload{phase: 3, entries: map[graph.NodeID]nodeStatus{2: {Digest: 33}}}
	if !k.Merge(stale) {
		t.Error("stale status payload should still be consumed")
	}
	if k.Has(2) {
		t.Error("stale-phase entry leaked into the table")
	}
}

func TestStatusFlagsSticky(t *testing.T) {
	k := newStatusKnowledge(1, 0, nodeStatus{})
	k.Merge(statusPayload{phase: 1, entries: map[graph.NodeID]nodeStatus{5: {Flag: true}}})
	k.Merge(statusPayload{phase: 1, entries: map[graph.NodeID]nodeStatus{5: {Flag: false, Failed: true}}})
	got := k.entries[5]
	if !got.Flag || !got.Failed {
		t.Errorf("sticky bits lost: %+v", got)
	}
}

func TestStatusSnapshotIsCopy(t *testing.T) {
	k := newStatusKnowledge(1, 0, nodeStatus{Digest: 1})
	snap, ok := k.Snapshot().(statusPayload)
	if !ok {
		t.Fatal("snapshot type")
	}
	snap.entries[9] = nodeStatus{}
	if k.Has(9) {
		t.Error("mutating a snapshot leaked into the container")
	}
}

func TestPayloadSizes(t *testing.T) {
	if s := (bitPayload{}).SizeBytes(); s != 1 {
		t.Errorf("bitPayload size = %d", s)
	}
	if s := (probePayload{}).SizeBytes(); s != 1 {
		t.Errorf("probePayload size = %d", s)
	}
	rp := snapshotRumors(newRumorKnowledge(128, 0).know)
	if rp.SizeBytes() != 16 {
		t.Errorf("128-bit rumor payload = %d bytes, want 16", rp.SizeBytes())
	}
	np := nbPayload{entries: []adjEntry{{Node: 0, Edges: make([]graph.HalfEdge, 3)}}}
	if np.SizeBytes() != 8+24 {
		t.Errorf("nb payload size = %d", np.SizeBytes())
	}
	sp := statusPayload{entries: map[graph.NodeID]nodeStatus{0: {}, 1: {}}}
	if sp.SizeBytes() != 4+32 {
		t.Errorf("status payload size = %d", sp.SizeBytes())
	}
}
