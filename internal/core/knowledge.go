package core

import (
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/rng"
	"gossip/internal/sim"
)

// knowledge abstracts the monotone state that gossip phases spread: rumor
// sets (all-to-all dissemination), adjacency maps (neighborhood gathering for
// the spanner), and status tables (termination detection). The DTG, RR and
// T(k) phases all operate on this interface.
type knowledge interface {
	// Has reports whether id's item is already known.
	Has(id graph.NodeID) bool
	// Snapshot returns an immutable payload of the current state.
	Snapshot() sim.Payload
	// Merge folds a payload of the matching type into the state; it reports
	// whether the payload was of the matching type.
	Merge(p sim.Payload) bool
	// NoteDirect records a completed direct exchange with id.
	NoteDirect(id graph.NodeID)
	// Direct reports whether a direct exchange with id has completed.
	Direct(id graph.NodeID) bool
}

// ---- rumor sets ----

// rumorKnowledge tracks which nodes' rumors this node holds.
type rumorKnowledge struct {
	know   *bitset.Set
	direct *bitset.Set
}

var _ knowledge = (*rumorKnowledge)(nil)

func newRumorKnowledge(n int, self graph.NodeID) *rumorKnowledge {
	k := &rumorKnowledge{know: bitset.New(n), direct: bitset.New(n)}
	k.know.Add(self)
	return k
}

func (k *rumorKnowledge) Has(id graph.NodeID) bool { return k.know.Contains(id) }
func (k *rumorKnowledge) Snapshot() sim.Payload    { return snapshotRumors(k.know) }

func (k *rumorKnowledge) Merge(p sim.Payload) bool {
	rp, ok := p.(rumorPayload)
	if !ok || rp.set == nil {
		return ok
	}
	k.know.UnionWith(rp.set)
	return true
}

func (k *rumorKnowledge) NoteDirect(id graph.NodeID)  { k.direct.Add(id) }
func (k *rumorKnowledge) Direct(id graph.NodeID) bool { return k.direct.Contains(id) }

// digest returns a content hash of the rumor set, used by the termination
// check to compare rumor sets without shipping them around twice.
func (k *rumorKnowledge) digest() uint64 {
	vals := make([]uint64, 0, 16)
	k.know.ForEach(func(i int) bool {
		vals = append(vals, uint64(i)+1)
		return true
	})
	return rng.Hash(vals...)
}

// ---- neighborhood (adjacency) knowledge ----

// adjEntry is one node's adjacency list as shared during gathering.
type adjEntry struct {
	Node  graph.NodeID
	Edges []graph.HalfEdge // To and Latency are meaningful; ID is local
}

// nbPayload carries a snapshot of known adjacency lists.
type nbPayload struct {
	entries []adjEntry
}

var _ sim.Sizer = nbPayload{}

// SizeBytes implements sim.Sizer: 8 bytes per known (node, edge) item.
func (p nbPayload) SizeBytes() int {
	sz := 0
	for _, e := range p.entries {
		sz += 8 + 8*len(e.Edges)
	}
	return sz
}

// nbKnowledge accumulates the adjacency lists of other nodes — the
// "neighborhood discovery" state of Theorem 14's proof.
type nbKnowledge struct {
	adj    map[graph.NodeID][]graph.HalfEdge
	direct map[graph.NodeID]bool
}

var _ knowledge = (*nbKnowledge)(nil)

func newNbKnowledge(self graph.NodeID, own []graph.HalfEdge) *nbKnowledge {
	k := &nbKnowledge{
		adj:    make(map[graph.NodeID][]graph.HalfEdge, 8),
		direct: make(map[graph.NodeID]bool, 8),
	}
	k.adj[self] = own
	return k
}

func (k *nbKnowledge) Has(id graph.NodeID) bool { _, ok := k.adj[id]; return ok }

func (k *nbKnowledge) Snapshot() sim.Payload {
	entries := make([]adjEntry, 0, len(k.adj))
	for id, edges := range k.adj {
		entries = append(entries, adjEntry{Node: id, Edges: edges})
	}
	return nbPayload{entries: entries}
}

func (k *nbKnowledge) Merge(p sim.Payload) bool {
	np, ok := p.(nbPayload)
	if !ok {
		return false
	}
	for _, e := range np.entries {
		if _, seen := k.adj[e.Node]; !seen {
			// Adjacency lists are immutable facts; first copy wins.
			k.adj[e.Node] = e.Edges
		}
	}
	return true
}

func (k *nbKnowledge) NoteDirect(id graph.NodeID)  { k.direct[id] = true }
func (k *nbKnowledge) Direct(id graph.NodeID) bool { return k.direct[id] }

// buildGraph assembles the gathered adjacency knowledge into a graph on n
// nodes containing every known edge with latency <= maxLatency (0 = all).
func (k *nbKnowledge) buildGraph(n, maxLatency int) *graph.Graph {
	g := graph.New(n)
	for u, edges := range k.adj {
		for _, he := range edges {
			if maxLatency > 0 && he.Latency > maxLatency {
				continue
			}
			if he.To < 0 || he.To >= n || g.HasEdge(u, he.To) {
				continue
			}
			g.MustAddEdge(u, he.To, he.Latency)
		}
	}
	return g
}

// ---- termination-check status tables ----

// nodeStatus is one node's contribution to a termination check.
type nodeStatus struct {
	Digest uint64 // hash of the node's rumor set at check time
	Flag   bool   // the flag bit of Algorithm 1
	Failed bool   // set during the second broadcast phase
}

// statusPayload carries a phase-tagged status table.
type statusPayload struct {
	phase   int
	entries map[graph.NodeID]nodeStatus
}

var _ sim.Sizer = statusPayload{}

// SizeBytes implements sim.Sizer.
func (p statusPayload) SizeBytes() int { return 4 + 16*len(p.entries) }

// statusKnowledge collects the status entries of a single check phase;
// entries from other phases are ignored on merge.
type statusKnowledge struct {
	phase   int
	entries map[graph.NodeID]nodeStatus
	direct  map[graph.NodeID]bool
}

var _ knowledge = (*statusKnowledge)(nil)

func newStatusKnowledge(phase int, self graph.NodeID, st nodeStatus) *statusKnowledge {
	return &statusKnowledge{
		phase:   phase,
		entries: map[graph.NodeID]nodeStatus{self: st},
		direct:  make(map[graph.NodeID]bool, 8),
	}
}

func (k *statusKnowledge) Has(id graph.NodeID) bool { _, ok := k.entries[id]; return ok }

func (k *statusKnowledge) Snapshot() sim.Payload {
	entries := make(map[graph.NodeID]nodeStatus, len(k.entries))
	for id, st := range k.entries {
		entries[id] = st
	}
	return statusPayload{phase: k.phase, entries: entries}
}

func (k *statusKnowledge) Merge(p sim.Payload) bool {
	sp, ok := p.(statusPayload)
	if !ok {
		return false
	}
	if sp.phase != k.phase {
		return true // stale phase; consume silently
	}
	for id, st := range sp.entries {
		cur, seen := k.entries[id]
		if !seen {
			k.entries[id] = st
			continue
		}
		// Failed and Flag bits are sticky.
		cur.Failed = cur.Failed || st.Failed
		cur.Flag = cur.Flag || st.Flag
		k.entries[id] = cur
	}
	return true
}

func (k *statusKnowledge) NoteDirect(id graph.NodeID)  { k.direct[id] = true }
func (k *statusKnowledge) Direct(id graph.NodeID) bool { return k.direct[id] }
