// Package core implements every dissemination algorithm of the paper on top
// of the internal/sim engine:
//
//   - the classical push-pull random phone call protocol (Section 4.1) and a
//     flooding / push-only baseline;
//   - ℓ-DTG deterministic local broadcast (Appendix C);
//   - RR Broadcast over an oriented spanner (Algorithm 2);
//   - the distributed spanner construction and EID (Algorithms 3–4,
//     Section 5) with termination detection (Algorithm 1, Lemma 18);
//   - the T(k) schedule and Path Discovery (Appendix E, Algorithm 6);
//   - latency discovery for unknown latencies (Section 4.2);
//   - the unified algorithm of Theorem 20.
package core

import (
	"gossip/internal/bitset"
	"gossip/internal/sim"
)

// rumorPayload carries a rumor set. The set is cloned at initiation time, so
// a payload is an immutable snapshot, as the engine requires.
type rumorPayload struct {
	set *bitset.Set
}

var _ sim.Sizer = rumorPayload{}

func snapshotRumors(s *bitset.Set) rumorPayload {
	return rumorPayload{set: s.Clone()}
}

// SizeBytes implements sim.Sizer for message accounting.
func (p rumorPayload) SizeBytes() int {
	if p.set == nil {
		return 1
	}
	return p.set.SizeBytes()
}

// bitPayload carries a single rumor's presence — the message of a
// single-source broadcast. One byte on the wire.
type bitPayload struct {
	informed bool
}

var _ sim.Sizer = bitPayload{}

// SizeBytes implements sim.Sizer.
func (p bitPayload) SizeBytes() int { return 1 }
