package core

import (
	"errors"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// interiorCrashes crashes count interior (non-bridge-endpoint) nodes of a
// RingOfCliques(k, s, ·) graph at the given round, so the survivor subgraph
// stays connected.
func interiorCrashes(k, s, count, round int) map[graph.NodeID]int {
	crashes := make(map[graph.NodeID]int, count)
	for c := 0; c < k && len(crashes) < count; c++ {
		// Node c*s is a bridge target, c*s+s-1 a bridge source; pick c*s+1.
		if s >= 3 {
			crashes[c*s+1] = round
		}
	}
	return crashes
}

func TestPushPullSurvivesCrashes(t *testing.T) {
	const k, s = 4, 6
	g := graph.RingOfCliques(k, s, 3)
	crashes := interiorCrashes(k, s, 4, 3)
	res, err := PushPull(g, 0, ModePushPull, sim.Config{Seed: 5, Crashes: crashes})
	if err != nil {
		t.Fatalf("PushPull under crashes: %v", err)
	}
	if !res.Completed {
		t.Fatal("push-pull must inform all survivors despite crashes")
	}
	// Crashed nodes may legitimately remain uninformed.
	for u := range crashes {
		if res.InformedAt[u] >= 0 && res.InformedAt[u] >= 3 {
			t.Logf("node %d informed at %d before crash (ok)", u, res.InformedAt[u])
		}
	}
}

func TestFloodSurvivesCrashes(t *testing.T) {
	const k, s = 3, 5
	g := graph.RingOfCliques(k, s, 2)
	crashes := interiorCrashes(k, s, 3, 2)
	res, err := Flood(g, 0, sim.Config{Seed: 7, Crashes: crashes})
	if err != nil {
		t.Fatalf("Flood under crashes: %v", err)
	}
	if !res.Completed {
		t.Fatal("flood must inform all survivors despite crashes")
	}
}

func TestCrashedSourceStallsBroadcast(t *testing.T) {
	// If the source itself crashes at round 1 before exchanging anything,
	// the rumor can never spread: the run must not report completion.
	g := graph.Clique(8, 4) // latency 4: no exchange completes before round 4
	res, err := PushPull(g, 0, ModePushPull,
		sim.Config{Seed: 9, Crashes: map[graph.NodeID]int{0: 1}, MaxRounds: 2000})
	if err == nil && res.Completed {
		t.Fatal("broadcast cannot complete when the only informed node crashed immediately")
	}
	if err != nil && !errors.Is(err, sim.ErrMaxRounds) && !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestSpannerAlgorithmsNotCrashTolerant demonstrates the conclusion's
// observation: the spanner-based machinery has no failure handling — under
// a crash RR Broadcast's fixed schedule ends without full dissemination.
func TestSpannerAlgorithmsNotCrashTolerant(t *testing.T) {
	const k, s = 4, 6
	g := graph.RingOfCliques(k, s, 3)
	d := g.WeightedDiameter()
	// Crash a bridge endpoint: the spanner routes through it.
	res, err := RRBroadcast(g, d, 0, sim.Config{Seed: 11, Crashes: map[graph.NodeID]int{s - 1: 2}})
	if err != nil {
		t.Fatalf("RRBroadcast under crash: %v", err)
	}
	if res.Completed {
		// Possible if the crashed node was not load-bearing for this seed's
		// spanner; note it rather than fail, but verify the common case with
		// more crashes below.
		t.Log("single crash survived (redundant spanner edge); escalating")
	}
	many := make(map[graph.NodeID]int)
	for c := 0; c < k; c++ {
		many[c*s+s-1] = 2 // all ring bridge sources
	}
	res2, err := RRBroadcast(g, d, 0, sim.Config{Seed: 11, Crashes: many})
	if err != nil {
		t.Fatalf("RRBroadcast under crashes: %v", err)
	}
	if res2.Completed {
		t.Error("RR broadcast completed despite all bridge sources crashing — fault model broken")
	}
}

func TestCrashedNodeStopsResponding(t *testing.T) {
	g := graph.Path(2, 6)
	nw := sim.NewNetwork(g, sim.Config{Seed: 1, MaxRounds: 50, Crashes: map[graph.NodeID]int{1: 2}})
	got := 0
	p0 := sim.NewProc(func(p *sim.Proc) {
		// Initiated at round 1; request arrives at node 1 at round 1+3=4,
		// after its crash at round 2: no response must ever return.
		p.Send(0, bitPayload{informed: true})
		p.WaitRounds(30)
	})
	p0.HandleResponses(func(p *sim.Proc, resp sim.Response) { got++ })
	nw.SetHandler(0, p0)
	nw.SetHandler(1, sim.NewProc(func(p *sim.Proc) { p.WaitRounds(40) }))
	if _, err := nw.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 0 {
		t.Errorf("received %d responses from a crashed node", got)
	}
	if !nw.Crashed(1) {
		t.Error("node 1 should be marked crashed")
	}
}
