package core

import (
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// sessionPayload wraps an inner knowledge payload with the per-invocation
// "heard" set of a DTG local broadcast: the nodes whose start-of-invocation
// knowledge is provably contained in the carried inner payload. This is
// Haeupler's per-invocation rumor token — it is what lets a node detect
// that it received a neighbor's contribution *indirectly* and skip the
// direct contact, which is where the O(log² n) bound comes from.
type sessionPayload struct {
	epoch int // invocation start round; all aligned nodes share it
	heard *bitset.Set
	inner sim.Payload
}

var _ sim.Sizer = sessionPayload{}

// SizeBytes implements sim.Sizer.
func (p sessionPayload) SizeBytes() int {
	sz := 8
	if p.heard != nil {
		sz += p.heard.SizeBytes()
	}
	if s, ok := p.inner.(sim.Sizer); ok {
		sz += s.SizeBytes()
	} else if p.inner != nil {
		sz++
	}
	return sz
}

// dtgSession is the per-invocation view of a DTG local broadcast over an
// inner knowledge container. Has/Snapshot/Merge operate on the invocation's
// heard set while the inner knowledge accumulates across invocations.
type dtgSession struct {
	epoch int
	heard *bitset.Set
	inner knowledge
}

var _ knowledge = (*dtgSession)(nil)

func newDTGSession(epoch int, self graph.NodeID, capacity int, inner knowledge) *dtgSession {
	s := &dtgSession{epoch: epoch, heard: bitset.New(capacity), inner: inner}
	s.heard.Add(self)
	return s
}

func (s *dtgSession) Has(id graph.NodeID) bool { return s.heard.Contains(id) }

func (s *dtgSession) Snapshot() sim.Payload {
	return sessionPayload{epoch: s.epoch, heard: s.heard.Clone(), inner: s.inner.Snapshot()}
}

func (s *dtgSession) Merge(p sim.Payload) bool {
	if sp, ok := p.(sessionPayload); ok {
		if sp.inner != nil {
			if !s.inner.Merge(sp.inner) {
				// The wrapped payload belongs to another container; let the
				// dispatcher keep looking.
				return false
			}
		}
		if sp.epoch == s.epoch && sp.heard != nil && sp.heard.Cap() == s.heard.Cap() {
			s.heard.UnionWith(sp.heard)
		}
		return true
	}
	// Bare inner payloads (from nodes outside a DTG invocation) still feed
	// the inner knowledge.
	return s.inner.Merge(p)
}

func (s *dtgSession) NoteDirect(id graph.NodeID) {
	if id < s.heard.Cap() {
		s.heard.Add(id)
	}
	s.inner.NoteDirect(id)
}

func (s *dtgSession) Direct(id graph.NodeID) bool { return s.inner.Direct(id) }

// unwrapSession extracts the inner payload of a sessionPayload, or returns
// the payload unchanged.
func unwrapSession(p sim.Payload) sim.Payload {
	if sp, ok := p.(sessionPayload); ok {
		return sp.inner
	}
	return p
}
