package core

import (
	"fmt"
	"math"

	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// eidState bundles the knowledge containers of an EID node. The request
// handler dispatches incoming payloads by type, so phases of different nodes
// may overlap without confusion.
type eidState struct {
	rumors  *rumorKnowledge
	nb      *nbKnowledge
	status  *statusKnowledge
	session *dtgSession // active DTG invocation, if any

	terminatedAt  int  // round at which General EID terminated (-1 while running)
	finalEstimate int  // last diameter estimate used by General EID
	gaveUp        bool // safety valve tripped (never expected)
}

func (st *eidState) containers() []knowledge {
	ks := make([]knowledge, 0, 4)
	if st.session != nil {
		ks = append(ks, st.session)
	}
	ks = append(ks, st.rumors)
	if st.nb != nil {
		ks = append(ks, st.nb)
	}
	if st.status != nil {
		ks = append(ks, st.status)
	}
	return ks
}

// spannerK returns the Baswana–Sen parameter k = ⌈log₂ n̂⌉ used by EID.
func spannerK(nHat int) int {
	k := int(math.Ceil(math.Log2(float64(nHat))))
	if k < 2 {
		k = 2
	}
	return k
}

// outDegreeBound is the whp bound on the spanner out-degree that nodes use
// to size the RR Broadcast schedule (Lemma 13: O(log n) for k = log n). If
// the realized out-degree ever exceeded it, the RR schedule would fall short
// and the termination check would force a retry, so the constant is safe to
// keep tight.
func outDegreeBound(nHat int) int { return 2 * (spannerK(nHat) + 1) }

// rrSchedule returns (kRR, rounds) for RR Broadcast after building a
// (2k_s−1)-spanner with distance estimate d: any two nodes within weighted
// distance d of each other are within kRR in the spanner, and by Lemma 15
// kRR·Δ_out + kRR rounds complete the exchange.
func rrSchedule(d, nHat int) (kRR, rounds int) {
	ks := spannerK(nHat)
	kRR = (2*ks - 1) * d
	rounds = kRR*outDegreeBound(nHat) + kRR
	return kRR, rounds
}

// runEID executes one EID(d) attempt (Algorithm 3) on the subgraph of edges
// with latency <= d:
//
//  1. gather the O(log n)-hop neighborhood by repeating budgeted d-DTG;
//  2. locally run the shared-randomness Baswana–Sen construction on the
//     gathered ball and keep this node's out-edges;
//  3. RR Broadcast rumor sets over the oriented spanner.
//
// It returns the node's spanner out-edge indices (used again by the
// termination check). Every step takes the same fixed number of rounds at
// every node, so nodes stay aligned.
func runEID(p *sim.Proc, st *eidState, lat latFunc, d, nHat int, seed uint64) []int {
	_, out := gatherAndBuildSpanner(p, st, lat, d, nHat, seed)
	_, rounds := rrSchedule(d, nHat)
	runRR(p, st.rumors, out, lat, d, rounds)
	return out
}

// gatherAndBuildSpanner performs EID's first two steps: gather the
// O(log n)-hop neighborhood by repeated budgeted d-DTG, then locally run the
// shared-randomness spanner construction on the gathered ball. It returns
// the locally computed spanner and this node's out-edge indices.
func gatherAndBuildSpanner(p *sim.Proc, st *eidState, lat latFunc, d, nHat int, seed uint64) (*spanner.Spanner, []int) {
	ks := spannerK(nHat)
	// Fresh gathering each attempt: latency knowledge may have improved and
	// stale partial adjacency entries must not survive.
	own := make([]graph.HalfEdge, 0, p.Degree())
	for _, e := range p.Neighbors() {
		if l := lat(e.Index); l != unknownLatency {
			own = append(own, graph.HalfEdge{To: e.To, Latency: l, ID: e.EdgeID})
		}
	}
	st.nb = newNbKnowledge(p.ID(), own)
	reps := ks + 2
	for i := 0; i < reps; i++ {
		runDTG(p, st, st.nb, lat, d, dtgBudget(d, nHat))
	}
	// Local computation (zero rounds): build the ball restricted to edges of
	// latency <= d and run the spanner construction with the shared seed.
	ball := st.nb.buildGraph(nHat, d)
	sp, err := spanner.Build(ball, ks, nHat, seed)
	if err != nil {
		// Only possible through a programming error in parameters.
		panic(fmt.Sprintf("core: spanner build: %v", err))
	}
	toIdx := make(map[graph.NodeID]int, p.Degree())
	for _, e := range p.Neighbors() {
		toIdx[e.To] = e.Index
	}
	var out []int
	for _, oe := range sp.Out[p.ID()] {
		if idx, ok := toIdx[oe.To]; ok {
			out = append(out, idx)
		}
	}
	return sp, out
}

// runTerminationCheck implements Algorithm 1 for estimate d: an extra d-DTG
// (which guarantees the node exchanged rumors with every d-neighbor), flag
// computation, a gather broadcast of (digest, flag) statuses over the
// spanner, the local failure decision, and a second broadcast propagating
// "failed". It reports whether the node may terminate.
func runTerminationCheck(p *sim.Proc, st *eidState, lat latFunc, d, nHat int, out []int, phase int) bool {
	complete := runDTG(p, st, st.rumors, lat, d, dtgBudget(d, nHat))
	flag := !complete
	for _, e := range p.Neighbors() {
		if !st.rumors.Has(e.To) {
			flag = true
			break
		}
	}
	digest := st.rumors.digest()
	_, rounds := rrSchedule(d, nHat)

	st.status = newStatusKnowledge(2*phase, p.ID(), nodeStatus{Digest: digest, Flag: flag})
	runRR(p, st.status, out, lat, d, rounds)
	failed := st.statusConflicts(digest)

	st.status = newStatusKnowledge(2*phase+1, p.ID(), nodeStatus{Digest: digest, Failed: failed})
	runRR(p, st.status, out, lat, d, rounds)
	failed = failed || st.statusConflicts(digest)
	st.status = nil
	return !failed
}

// statusConflicts applies the termination test of Algorithm 1 to the
// gathered status table: the node must continue if any gathered entry has a
// raised flag, a failed bit, or a rumor set differing from its own — or if
// it is *missing* the status of some node whose rumor it holds. The missing
// case is the fail-safe realizing Lemma 18's requirement that a node hears
// back from everyone it exchanged rumors with before terminating: without
// it, a node in a well-disseminated pocket could terminate before a distant
// straggler's complaint arrives.
func (st *eidState) statusConflicts(digest uint64) bool {
	conflict := false
	for _, s := range st.status.entries {
		if s.Flag || s.Failed || s.Digest != digest {
			conflict = true
			break
		}
	}
	if !conflict {
		st.rumors.know.ForEach(func(id int) bool {
			if _, ok := st.status.entries[id]; !ok {
				conflict = true
				return false
			}
			return true
		})
	}
	return conflict
}

// maxDoubling caps the guess-and-double loop as a safety valve; the loop
// normally terminates as soon as the estimate reaches the weighted diameter.
const maxDoubling = 30

// AllToAllResult reports an all-to-all information dissemination run.
type AllToAllResult struct {
	Metrics   sim.Metrics
	Completed bool // every node holds every rumor
	// TerminatedAt[v] is the round at which v's protocol terminated
	// (General EID only; -1 when the protocol has no local termination).
	TerminatedAt []int
	// FinalEstimate is the last diameter estimate used (General EID only).
	FinalEstimate int
}

// EID solves all-to-all information dissemination with known latencies and
// known weighted diameter D (Lemma 17: O(D log³ n) rounds).
func EID(g *graph.Graph, d int, cfg sim.Config) (AllToAllResult, error) {
	if d < 1 {
		return AllToAllResult{}, fmt.Errorf("core: EID needs D >= 1, got %d", d)
	}
	cfg.KnownLatencies = true
	nw := sim.NewNetwork(g, cfg)
	states := attachEIDProcs(nw, g, func(p *sim.Proc, st *eidState, lat latFunc) {
		runEID(p, st, lat, d, nwHint(nw, g), cfg.Seed)
	})
	res, err := nw.Run(nil)
	out := collectAllToAll(res.Metrics, states)
	out.FinalEstimate = d
	if err != nil {
		return out, fmt.Errorf("EID(D=%d) on %v: %w", d, g, err)
	}
	return out, nil
}

// GeneralEID solves all-to-all dissemination with known latencies but
// unknown diameter via guess-and-double with termination detection
// (Algorithm 4, Theorem 19: O(D log³ n) rounds).
func GeneralEID(g *graph.Graph, cfg sim.Config) (AllToAllResult, error) {
	cfg.KnownLatencies = true
	nw := sim.NewNetwork(g, cfg)
	states := attachEIDProcs(nw, g, func(p *sim.Proc, st *eidState, lat latFunc) {
		nHat := nwHint(nw, g)
		d := 1
		for phase := 0; ; phase++ {
			out := runEID(p, st, lat, d, nHat, cfg.Seed)
			if runTerminationCheck(p, st, lat, d, nHat, out, phase) {
				st.terminatedAt = p.Round()
				st.finalEstimate = d
				return
			}
			d *= 2
			if phase >= maxDoubling {
				st.gaveUp = true
				return
			}
		}
	})
	res, err := nw.Run(nil)
	out := collectAllToAll(res.Metrics, states)
	for _, st := range states {
		if st.finalEstimate > out.FinalEstimate {
			out.FinalEstimate = st.finalEstimate
		}
		if st.gaveUp {
			out.Completed = false
			err = fmt.Errorf("general EID on %v: doubling safety valve tripped", g)
		}
	}
	if err != nil {
		return out, fmt.Errorf("general EID: %w", err)
	}
	return out, nil
}

func nwHint(nw *sim.Network, g *graph.Graph) int {
	// Nodes know a polynomial upper bound on n (Section 5.1); the engine
	// exposes it as NHint via contexts, but the proc factory needs it before
	// procs start. NHint defaults to n.
	return nw.NHint()
}

// attachEIDProcs wires one EID proc with dispatching handlers per node and
// returns their states.
func attachEIDProcs(nw *sim.Network, g *graph.Graph, body func(p *sim.Proc, st *eidState, lat latFunc)) []*eidState {
	states := make([]*eidState, g.N())
	for u := 0; u < g.N(); u++ {
		st := &eidState{
			rumors:       newRumorKnowledge(g.N(), u),
			terminatedAt: -1,
		}
		states[u] = st
		containers := st.containers
		proc := sim.NewProc(func(p *sim.Proc) {
			body(p, st, knownLatencies(p))
		})
		proc.HandleRequests(knowledgeResponder(containers))
		proc.HandleResponses(knowledgeResponses(containers))
		nw.SetHandler(u, proc)
	}
	return states
}

func collectAllToAll(m sim.Metrics, states []*eidState) AllToAllResult {
	out := AllToAllResult{Metrics: m, Completed: true}
	out.TerminatedAt = make([]int, len(states))
	for u, st := range states {
		out.TerminatedAt[u] = st.terminatedAt
		if !st.rumors.know.Full() {
			out.Completed = false
		}
	}
	return out
}
