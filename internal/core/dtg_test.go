package core

import (
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// requireLocalBroadcast asserts every node knows the rumor of each of its
// ℓ-neighbors — the definition of solving ℓ-local broadcast.
func requireLocalBroadcast(t *testing.T, g *graph.Graph, ell int, res LocalBroadcastResult) {
	t.Helper()
	if !res.Completed {
		t.Fatal("local broadcast did not complete")
	}
	for u := 0; u < g.N(); u++ {
		for _, he := range g.Neighbors(u) {
			if he.Latency > ell {
				continue
			}
			if !res.Know[u][he.To] {
				t.Errorf("node %d missing rumor of ℓ-neighbor %d", u, he.To)
			}
			if !res.Know[he.To][u] {
				t.Errorf("ℓ-neighbor %d missing rumor of node %d (symmetry)", he.To, u)
			}
		}
	}
}

func TestDTGClique(t *testing.T) {
	g := graph.Clique(32, 1)
	res, err := LocalBroadcastDTG(g, 1, sim.Config{Seed: 1})
	if err != nil {
		t.Fatalf("DTG: %v", err)
	}
	requireLocalBroadcast(t, g, 1, res)
	if res.Metrics.Rounds > dtgBudget(1, 32) {
		t.Errorf("DTG on K32 took %d rounds, budget is %d", res.Metrics.Rounds, dtgBudget(1, 32))
	}
}

func TestDTGStar(t *testing.T) {
	g := graph.Star(64, 1)
	res, err := LocalBroadcastDTG(g, 1, sim.Config{Seed: 2})
	if err != nil {
		t.Fatalf("DTG: %v", err)
	}
	requireLocalBroadcast(t, g, 1, res)
}

func TestDTGLatencyFilter(t *testing.T) {
	// Path with alternating latencies 1 and 9; 1-DTG must cover only the
	// latency-1 edges.
	g := graph.New(8)
	for v := 1; v < 8; v++ {
		lat := 1
		if v%2 == 0 {
			lat = 9
		}
		g.MustAddEdge(v-1, v, lat)
	}
	res, err := LocalBroadcastDTG(g, 1, sim.Config{Seed: 3})
	if err != nil {
		t.Fatalf("DTG: %v", err)
	}
	requireLocalBroadcast(t, g, 1, res)
	// Latency-9 neighbors must NOT have been required; ensure the run was
	// fast (no waiting on slow edges).
	if res.Metrics.Rounds > 60 {
		t.Errorf("1-DTG took %d rounds; slow edges should be ignored", res.Metrics.Rounds)
	}
}

func TestDTGWeightedBudget(t *testing.T) {
	// ℓ-DTG on a ring of cliques with bridges of latency 4, ℓ = 4: every
	// node must learn bridge neighbors too, in O(ℓ log² n).
	g := graph.RingOfCliques(4, 8, 4)
	ell := 4
	res, err := LocalBroadcastDTG(g, ell, sim.Config{Seed: 4})
	if err != nil {
		t.Fatalf("DTG: %v", err)
	}
	requireLocalBroadcast(t, g, ell, res)
	if b := dtgBudget(ell, g.N()); res.Metrics.Rounds > b {
		t.Errorf("ℓ-DTG took %d rounds, exceeds budget %d", res.Metrics.Rounds, b)
	}
}

func TestDTGGrid(t *testing.T) {
	g := graph.Grid(6, 6, 2)
	res, err := LocalBroadcastDTG(g, 2, sim.Config{Seed: 5})
	if err != nil {
		t.Fatalf("DTG: %v", err)
	}
	requireLocalBroadcast(t, g, 2, res)
}

func TestRandomLocalBroadcast(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		ell  int
	}{
		{name: "clique", g: graph.Clique(24, 1), ell: 1},
		{name: "star", g: graph.Star(32, 2), ell: 2},
		{name: "ringcliques", g: graph.RingOfCliques(3, 6, 3), ell: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := LocalBroadcastRandom(tt.g, tt.ell, sim.Config{Seed: 7})
			if err != nil {
				t.Fatalf("LocalBroadcastRandom: %v", err)
			}
			requireLocalBroadcast(t, tt.g, tt.ell, res)
		})
	}
}
