package core

import (
	"testing"

	"gossip/internal/graph"
	"gossip/internal/rng"
	"gossip/internal/sim"
)

// referencePushPull is an independent, array-based re-implementation of
// single-source push-pull under the engine's delivery semantics (request at
// t+⌈ℓ/2⌉, response at t+ℓ): a differential oracle for the event engine.
// It must reproduce the engine's informed rounds *exactly* because both
// draw node randomness from rng.Stream(seed, id+1) in the same order.
func referencePushPull(g *graph.Graph, source graph.NodeID, seed uint64, maxRounds int) []int {
	n := g.N()
	informedAt := make([]int, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[source] = 0
	rands := make([]*randWrap, n)
	for v := 0; v < n; v++ {
		rands[v] = &randWrap{r: rng.Stream(seed, uint64(v)+1)}
	}
	informed := make([]bool, n)
	informed[source] = true

	type delivery struct {
		at       int
		to       graph.NodeID
		informs  bool
		isReq    bool
		from     graph.NodeID
		edgeIdx  int // index in responder's adjacency (for requests)
		latency  int
		initFrom bool // request carried initiator's informed bit
	}
	var pending []delivery
	countInformed := func() int {
		c := 0
		for _, b := range informed {
			if b {
				c++
			}
		}
		return c
	}
	for round := 1; round <= maxRounds; round++ {
		// Phase A: deliveries scheduled for this round, in scheduling order.
		// Process iteratively because zero-delay responses (ℓ=1) are
		// appended during the scan.
		for i := 0; i < len(pending); i++ {
			d := pending[i]
			if d.at != round {
				continue
			}
			pending[i].at = -1 // consumed
			if d.isReq {
				// Responder merges the push bit, then answers with its
				// current bit; the response lands at initiation+ℓ, i.e.
				// after the remaining ⌊ℓ/2⌋ rounds.
				if d.informs && !informed[d.to] {
					informed[d.to] = true
					if informedAt[d.to] < 0 {
						informedAt[d.to] = round
					}
				}
				pending = append(pending, delivery{
					at:      round + d.latency - (d.latency+1)/2,
					to:      d.from,
					informs: informed[d.to],
				})
			} else if d.informs && !informed[d.to] {
				informed[d.to] = true
				if informedAt[d.to] < 0 {
					informedAt[d.to] = round
				}
			}
		}
		if countInformed() == n {
			return informedAt
		}
		// Phase B: every node initiates to a uniform random neighbor.
		for v := 0; v < n; v++ {
			adj := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			he := adj[rands[v].Intn(len(adj))]
			pending = append(pending, delivery{
				at:      round + (he.Latency+1)/2,
				to:      he.To,
				informs: informed[v],
				isReq:   true,
				from:    v,
				latency: he.Latency,
			})
		}
	}
	return informedAt
}

type randWrap struct{ r interface{ Intn(int) int } }

func (w *randWrap) Intn(n int) int { return w.r.Intn(n) }

// TestEngineMatchesReference differentially tests the event engine: the
// independent reference must produce identical informed rounds for every
// node across graphs and seeds.
func TestEngineMatchesReference(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique-9", g: graph.Clique(9, 1)},
		{name: "path-7-L5", g: graph.Path(7, 5)},
		{name: "ring-3x4-L3", g: graph.RingOfCliques(3, 4, 3)},
		{name: "mixed", g: graph.RandomLatencies(graph.GNP(10, 0.4, 1, true, 2), 1, 6, 2)},
	}
	for _, tt := range graphs {
		for seed := uint64(1); seed <= 5; seed++ {
			res, err := PushPull(tt.g, 0, ModePushPull, sim.Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: engine: %v", tt.name, seed, err)
			}
			ref := referencePushPull(tt.g, 0, seed, 10*res.Metrics.Rounds+100)
			for v := range ref {
				if ref[v] != res.InformedAt[v] {
					t.Errorf("%s seed %d node %d: engine informed at %d, reference at %d",
						tt.name, seed, v, res.InformedAt[v], ref[v])
				}
			}
		}
	}
}
