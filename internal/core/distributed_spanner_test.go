package core

import (
	"fmt"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// TestDistributedSpannerMatchesCentralized is the protocol-level consistency
// property of Theorem 14: every node, after gathering its neighborhood via
// d-DTG and computing the spanner locally with the shared seed, must arrive
// at exactly the out-edges the centralized construction assigns it. This is
// what makes the oriented spanner a *global* structure no node ever sees in
// full.
func TestDistributedSpannerMatchesCentralized(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique-14", g: graph.Clique(14, 1)},
		{name: "ring-3x5-L2", g: graph.RingOfCliques(3, 5, 2)},
		{name: "grid-4x4-L2", g: graph.Grid(4, 4, 2)},
		{name: "mixed", g: graph.RandomLatencies(graph.GNP(14, 0.4, 1, true, 6), 1, 3, 6)},
	}
	for _, tt := range graphs {
		t.Run(tt.name, func(t *testing.T) {
			g := tt.g
			d := g.WeightedDiameter()
			seed := uint64(23)
			cfg := sim.Config{Seed: seed, KnownLatencies: true}
			nw := sim.NewNetwork(g, cfg)
			outSets := make([]map[graph.NodeID]bool, g.N())
			states := attachEIDProcs(nw, g, func(p *sim.Proc, st *eidState, lat latFunc) {
				sp, _ := gatherAndBuildSpanner(p, st, lat, d, nw.NHint(), seed)
				set := make(map[graph.NodeID]bool, len(sp.Out[p.ID()]))
				for _, oe := range sp.Out[p.ID()] {
					set[oe.To] = true
				}
				outSets[p.ID()] = set
			})
			_ = states
			if _, err := nw.Run(nil); err != nil {
				t.Fatalf("run: %v", err)
			}
			central, err := spanner.Build(g.Subgraph(d), spannerK(g.N()), g.N(), seed)
			if err != nil {
				t.Fatalf("central build: %v", err)
			}
			for v := 0; v < g.N(); v++ {
				want := make(map[graph.NodeID]bool, len(central.Out[v]))
				for _, oe := range central.Out[v] {
					want[oe.To] = true
				}
				if fmt.Sprint(sortedKeys(want)) != fmt.Sprint(sortedKeys(outSets[v])) {
					t.Errorf("node %d: distributed out-edges %v != centralized %v",
						v, sortedKeys(outSets[v]), sortedKeys(want))
				}
			}
		})
	}
}

func sortedKeys(m map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
