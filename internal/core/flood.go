package core

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// floodNode implements simple flooding under the one-initiation-per-round
// constraint: once informed, a node contacts each of its neighbors once, one
// per round, in neighbor-list order. Since exchanges are bidirectional, the
// responder also learns the rumor, so flooding completes in
// O(D + Δ·ℓ_max)-ish time and serves as the deterministic baseline.
type floodNode struct {
	informed bool
	next     int // next neighbor index to contact
}

var _ sim.Handler = (*floodNode)(nil)

func (n *floodNode) Start(ctx *sim.Context) {}

func (n *floodNode) Tick(ctx *sim.Context) {
	if !n.informed || n.next >= ctx.Degree() {
		return
	}
	if _, err := ctx.Initiate(n.next, bitPayload{informed: true}); err != nil {
		panic(fmt.Sprintf("core: flood initiate: %v", err))
	}
	n.next++
}

func (n *floodNode) OnRequest(ctx *sim.Context, req sim.Request) sim.Payload {
	if p, ok := req.Payload.(bitPayload); ok && p.informed {
		n.informed = true
	}
	return bitPayload{informed: n.informed}
}

func (n *floodNode) OnResponse(ctx *sim.Context, resp sim.Response) {
	if p, ok := resp.Payload.(bitPayload); ok && p.informed {
		n.informed = true
	}
}

func (n *floodNode) Done() bool { return false }

// Flood broadcasts from source by flooding and returns when every node is
// informed.
func Flood(g *graph.Graph, source graph.NodeID, cfg sim.Config) (BroadcastResult, error) {
	if source < 0 || source >= g.N() {
		return BroadcastResult{}, fmt.Errorf("core: source %d out of range [0,%d)", source, g.N())
	}
	nw := sim.NewNetwork(g, cfg)
	nodes := make([]*floodNode, g.N())
	for u := 0; u < g.N(); u++ {
		nodes[u] = &floodNode{informed: u == source}
		nw.SetHandler(u, nodes[u])
	}
	informedAt := make([]int, g.N())
	for u := range informedAt {
		informedAt[u] = -1
	}
	informedAt[source] = 0
	res, err := nw.Run(allInformed(func(u int) bool { return nodes[u].informed }, informedAt))
	out := BroadcastResult{Metrics: res.Metrics, Completed: res.Completed, InformedAt: informedAt}
	if err != nil {
		return out, fmt.Errorf("flood on %v: %w", g, err)
	}
	return out, nil
}
