package cut

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/par"
)

// This file drives the φ_ℓ ladder of Definition 2 incrementally: distinct
// latencies are walked in ascending order, the level cursor of the CSR view
// only ever advances (O(2m) total across the whole ladder), connectivity is
// resolved by one union-find pass over the latency-sorted edge list, and
// each level's spectral embedding warm-starts from the previous level's
// converged vector — monotone edge growth makes the previous eigenvector a
// near-fixpoint, so the power iteration exits after a few steps instead of
// the full budget. The expensive per-level work (sweeps over all candidate
// orderings plus greedy refinement) is independent across levels and fans
// out over the shared worker pool (internal/par), merged in index order so
// the ladder is byte-identical at any worker count, including 1.

// WeightedConductance computes φ* and ℓ* (Definition 2) by evaluating φ_ℓ at
// every distinct edge latency and maximizing φ_ℓ/ℓ. Exact enumeration is
// used when n <= MaxExactN, otherwise the heuristic. Levels are evaluated
// concurrently up to par.MaxWorkers(); the result does not depend on the
// worker count.
func WeightedConductance(g *graph.Graph, seed uint64) (Result, error) {
	lats := g.Latencies()
	if len(lats) == 0 {
		return Result{}, fmt.Errorf("cut: graph has no edges")
	}
	res := Result{Exact: g.N() <= MaxExactN}
	var (
		ladder []Ladder
		err    error
	)
	if res.Exact {
		ladder, err = par.Map(len(lats), func(k int) (Ladder, error) {
			phi, err := PhiExact(g, lats[k])
			if err != nil {
				return Ladder{}, fmt.Errorf("exact φ_%d: %w", lats[k], err)
			}
			return Ladder{Ell: lats[k], Phi: phi, Ratio: phi / float64(lats[k])}, nil
		})
	} else {
		var certs []Certificate
		certs, err = heuristicCerts(g, seed, lats)
		if err == nil {
			ladder = make([]Ladder, len(certs))
			for k, c := range certs {
				ladder[k] = Ladder{Ell: c.Ell, Phi: c.Phi, Ratio: c.Phi / float64(c.Ell)}
			}
		}
	}
	if err != nil {
		return Result{}, err
	}
	res.Ladder = ladder
	bestIdx := 0
	for i, l := range res.Ladder {
		if l.Ratio > res.Ladder[bestIdx].Ratio {
			bestIdx = i
		}
	}
	res.PhiStar = res.Ladder[bestIdx].Phi
	res.EllStar = res.Ladder[bestIdx].Ell
	return res, nil
}

// heuristicCerts evaluates φ_ℓ at every level of lats (ascending) with the
// CSR engine and returns the refined certificate of each level. The
// sequential prologue — CSR build, shared orderings, connectivity walk,
// warm-started spectral chain — is cheap; the per-level sweep+refine work
// dominates and runs in parallel.
func heuristicCerts(g *graph.Graph, seed uint64, lats []int) ([]Certificate, error) {
	v := newView(g, seed)
	n := v.csr.N()
	v.sharedOrders() // materialize before the parallel phase

	// One union-find pass resolves connectivity for every level — φ_ℓ = 0
	// exactly while G_ℓ is disconnected, and connectivity is monotone — and
	// yields the smallest-component witness of each disconnected level.
	conn, smallest := v.csr.LadderComponents(true)

	// Spectral chain: walk levels in ascending order, advancing the level
	// cursor incrementally and warm-starting each level's power iteration
	// from the previous converged vector. Cursor snapshots feed the
	// parallel phase below.
	endsAt := make([][]int32, len(lats))
	spectrals := make([][]graph.NodeID, len(lats))
	sc := getScratch(n)
	ends := v.csr.NewEnds()
	var x []float64
	for k, ell := range lats {
		v.csr.AdvanceEnds(ends, ell)
		endsAt[k] = append([]int32(nil), ends...)
		if !conn[k] {
			continue
		}
		iters := warmIterBudget(n)
		if x == nil {
			x = make([]float64, n)
			coldStart(x, seed)
			iters = spectralIterBudget(n) // first connected level runs cold
		}
		spectrals[k] = spectralAt(v.csr, endsAt[k], x, sc, iters)
	}
	putScratch(sc)

	// Parallel phase: levels are independent given their cursor snapshot
	// and spectral ordering; par.Map merges in index order.
	return par.Map(len(lats), func(k int) (Certificate, error) {
		ell := lats[k]
		if !conn[k] {
			return Certificate{Set: smallest[k], Ell: ell, Phi: 0}, nil
		}
		wsc := getScratch(n)
		defer putScratch(wsc)
		return v.levelCert(ell, endsAt[k], spectrals[k], refinePasses, wsc), nil
	})
}

// LadderCertificates returns the cut witnessing φ_ℓ at every distinct
// latency level: for n <= MaxExactN the exact minimizing cuts, otherwise the
// certificates behind WeightedConductance's heuristic ladder — the Phi of
// certificate k equals Ladder[k].Phi of WeightedConductance(g, seed) exactly,
// because both come from the same warm-started chain.
func LadderCertificates(g *graph.Graph, seed uint64) ([]Certificate, error) {
	lats := g.Latencies()
	if len(lats) == 0 {
		return nil, fmt.Errorf("cut: graph has no edges")
	}
	if g.N() <= MaxExactN {
		return par.Map(len(lats), func(k int) (Certificate, error) {
			cert, err := PhiExactCut(g, lats[k])
			if err != nil {
				return Certificate{}, fmt.Errorf("exact φ_%d: %w", lats[k], err)
			}
			return cert, nil
		})
	}
	return heuristicCerts(g, seed, lats)
}
