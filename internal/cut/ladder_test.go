package cut

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/par"
)

// equivCase is one graph instance of the ladder-equivalence suite. All
// instances are above MaxExactN so the heuristic engine (not exhaustive
// enumeration) is exercised.
type equivCase struct {
	name string
	g    *graph.Graph
}

// equivCases spans the graph families of the experiments: the paper's
// ring-of-cliques and dumbbell constructions, regular lattices, and the
// irregular random families (G(n,p), Chung-Lu power law).
func equivCases() []equivCase {
	var cases []equivCase
	for seed := uint64(1); seed <= 3; seed++ {
		cases = append(cases,
			equivCase{fmt.Sprintf("ringcliques/%d", seed), graph.RandomLatencies(graph.RingOfCliques(8, 8, 6), 1, 6, seed)},
			equivCase{fmt.Sprintf("gnp/%d", seed), graph.RandomLatencies(graph.GNP(80, 0.1, 1, true, seed), 1, 5, seed)},
			equivCase{fmt.Sprintf("chunglu/%d", seed), graph.RandomLatencies(graph.ChungLu(120, 2.5, 8, 1, seed), 1, 4, seed)},
			equivCase{fmt.Sprintf("grid/%d", seed), graph.RandomLatencies(graph.Grid(10, 10, 1), 1, 3, seed)},
			equivCase{fmt.Sprintf("torus/%d", seed), graph.RandomLatencies(graph.Torus(8, 8, 1), 1, 4, seed)},
			equivCase{fmt.Sprintf("caterpillar/%d", seed), graph.RandomLatencies(graph.Caterpillar(20, 3, 1), 1, 4, seed)},
		)
	}
	cases = append(cases, equivCase{"dumbbell", graph.Dumbbell(30, 9)})
	return cases
}

// TestLadderWorkerCountInvariance asserts the core determinism contract of
// the parallel ladder: WeightedConductance and LadderCertificates are
// byte-identical at any worker count, because par.Map merges results in
// index order and each level's inputs (cursor snapshot, spectral ordering,
// shared candidate orders) are fixed before the fan-out.
func TestLadderWorkerCountInvariance(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 7} {
				prev := par.SetMaxWorkers(4)
				resPar, errPar := WeightedConductance(tc.g, seed)
				certsPar, cerrPar := LadderCertificates(tc.g, seed)
				par.SetMaxWorkers(1)
				resSeq, errSeq := WeightedConductance(tc.g, seed)
				certsSeq, cerrSeq := LadderCertificates(tc.g, seed)
				par.SetMaxWorkers(prev)
				if errPar != nil || errSeq != nil || cerrPar != nil || cerrSeq != nil {
					t.Fatalf("seed %d: errors %v %v %v %v", seed, errPar, errSeq, cerrPar, cerrSeq)
				}
				if !reflect.DeepEqual(resPar, resSeq) {
					t.Errorf("seed %d: parallel ladder differs from sequential:\n  par: %+v\n  seq: %+v", seed, resPar, resSeq)
				}
				if !reflect.DeepEqual(certsPar, certsSeq) {
					t.Errorf("seed %d: parallel certificates differ from sequential", seed)
				}
			}
		})
	}
}

// TestLadderMatchesReferenceOnStructuredFamilies pins the engine to the
// frozen per-level pipeline (reference.go) where the sweep heuristic is
// stable: on structured families the minimum cut is found by every candidate
// ordering regardless of the spectral start vector, so the warm-started
// engine must reproduce the pre-CSR ladder byte for byte — Phi, Ratio, φ*,
// and ℓ* all exactly equal. (On irregular families the warm start may land
// on a different, equally valid sweep cut; those are covered by the parity
// test below.)
func TestLadderMatchesReferenceOnStructuredFamilies(t *testing.T) {
	var cases []equivCase
	for seed := uint64(1); seed <= 3; seed++ {
		cases = append(cases,
			equivCase{fmt.Sprintf("chunglu/%d", seed), graph.RandomLatencies(graph.ChungLu(120, 2.5, 8, 1, seed), 1, 4, seed)},
			equivCase{fmt.Sprintf("grid/%d", seed), graph.RandomLatencies(graph.Grid(10, 10, 1), 1, 3, seed)},
		)
	}
	cases = append(cases, equivCase{"dumbbell", graph.Dumbbell(30, 9)})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 7} {
				ref, err := WeightedConductanceRef(tc.g, seed)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				got, err := WeightedConductance(tc.g, seed)
				if err != nil {
					t.Fatalf("engine: %v", err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("seed %d: engine ladder differs from frozen reference:\n  ref: %+v\n  new: %+v", seed, ref, got)
				}
			}
		})
	}
}

// TestLadderReferenceParity bounds the heuristic drift on the irregular
// families where warm-starting legitimately changes which sweep cut wins:
// level structure (Ell sequence and the disconnected φ_ℓ = 0 prefix) must
// match the reference exactly, and every nonzero φ_ℓ must stay within a
// constant factor of the reference value — both are upper bounds on the same
// minimum, so a large gap in either direction would mean a quality
// regression.
func TestLadderReferenceParity(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 7} {
				ref, err := WeightedConductanceRef(tc.g, seed)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				got, err := WeightedConductance(tc.g, seed)
				if err != nil {
					t.Fatalf("engine: %v", err)
				}
				if len(ref.Ladder) != len(got.Ladder) {
					t.Fatalf("seed %d: ladder lengths %d vs %d", seed, len(ref.Ladder), len(got.Ladder))
				}
				for k := range ref.Ladder {
					r, g := ref.Ladder[k], got.Ladder[k]
					if r.Ell != g.Ell {
						t.Fatalf("seed %d level %d: Ell %d vs %d", seed, k, r.Ell, g.Ell)
					}
					if (r.Phi == 0) != (g.Phi == 0) {
						t.Errorf("seed %d level %d: connectivity mismatch (ref φ=%g, new φ=%g)", seed, k, r.Phi, g.Phi)
					}
					if r.Phi > 0 && (g.Phi > r.Phi*1.5 || g.Phi < r.Phi/1.5) {
						t.Errorf("seed %d level %d: φ drift beyond 1.5×: ref %g, new %g", seed, k, r.Phi, g.Phi)
					}
				}
			}
		})
	}
}

// TestLadderCertificatesWitnessLadder asserts that LadderCertificates
// returns true witnesses of the WeightedConductance ladder: same levels,
// exactly equal φ values (both come from the same warm-started chain), and
// each certificate's Set realizes its Phi under PhiCut.
func TestLadderCertificatesWitnessLadder(t *testing.T) {
	cases := append(equivCases(),
		equivCase{"exact/dumbbell", graph.Dumbbell(4, 5)},
		equivCase{"exact/ringcliques", graph.RingOfCliques(3, 4, 2)},
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := WeightedConductance(tc.g, 1)
			if err != nil {
				t.Fatalf("WeightedConductance: %v", err)
			}
			certs, err := LadderCertificates(tc.g, 1)
			if err != nil {
				t.Fatalf("LadderCertificates: %v", err)
			}
			if len(certs) != len(res.Ladder) {
				t.Fatalf("%d certificates for %d ladder levels", len(certs), len(res.Ladder))
			}
			for k, cert := range certs {
				if cert.Ell != res.Ladder[k].Ell {
					t.Fatalf("level %d: Ell %d vs ladder %d", k, cert.Ell, res.Ladder[k].Ell)
				}
				if cert.Phi != res.Ladder[k].Phi {
					t.Errorf("level %d: certificate φ=%g differs from ladder φ=%g", k, cert.Phi, res.Ladder[k].Phi)
				}
				phi, err := PhiCut(tc.g, cert.Set, cert.Ell)
				if err != nil {
					t.Fatalf("level %d: PhiCut: %v", k, err)
				}
				if math.Abs(phi-cert.Phi) > 1e-12 {
					t.Errorf("level %d: certificate Set realizes φ=%g, claimed %g", k, phi, cert.Phi)
				}
			}
		})
	}
}

// TestLadderExactPathMatchesReference pins the n <= MaxExactN path: both
// implementations delegate to PhiExact, so results are identical including
// the Exact flag.
func TestLadderExactPathMatchesReference(t *testing.T) {
	for _, tc := range []equivCase{
		{"dumbbell", graph.Dumbbell(4, 5)},
		{"ringcliques", graph.RingOfCliques(3, 4, 2)},
		{"gnp", graph.RandomLatencies(graph.GNP(12, 0.4, 1, true, 7), 1, 4, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := WeightedConductanceRef(tc.g, 1)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := WeightedConductance(tc.g, 1)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			if !got.Exact || !reflect.DeepEqual(ref, got) {
				t.Errorf("exact path mismatch:\n  ref: %+v\n  new: %+v", ref, got)
			}
		})
	}
}

// sameCut reports whether two certificates agree on Ell, Phi (exactly), and
// Set as a set of nodes: the engine canonicalizes disconnected-component
// witnesses to sorted order, while the frozen reference emits BFS order.
func sameCut(a, b Certificate) bool {
	if a.Ell != b.Ell || a.Phi != b.Phi || len(a.Set) != len(b.Set) {
		return false
	}
	as := append([]graph.NodeID(nil), a.Set...)
	bs := append([]graph.NodeID(nil), b.Set...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return reflect.DeepEqual(as, bs)
}

// TestSingleLevelEntryPointsMatchReference pins PhiHeuristicCut and
// PhiRefined to their pre-CSR counterparts: a single-level evaluation uses a
// cold spectral start and the full candidate set, so the CSR engine must
// reproduce the frozen pipeline exactly — same Phi and same Set (as a set).
func TestSingleLevelEntryPointsMatchReference(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			lats := tc.g.Latencies()
			ell := lats[len(lats)/2]
			for _, seed := range []uint64{1, 7} {
				refCut, err := refPhiHeuristicCut(tc.g, ell, seed)
				if err != nil {
					t.Fatalf("refPhiHeuristicCut: %v", err)
				}
				gotCut, err := PhiHeuristicCut(tc.g, ell, seed)
				if err != nil {
					t.Fatalf("PhiHeuristicCut: %v", err)
				}
				if !sameCut(refCut, gotCut) {
					t.Errorf("seed %d ℓ=%d: heuristic cut differs:\n  ref: φ=%g |set|=%d\n  new: φ=%g |set|=%d",
						seed, ell, refCut.Phi, len(refCut.Set), gotCut.Phi, len(gotCut.Set))
				}
				refRef, err := refPhiRefined(tc.g, ell, seed)
				if err != nil {
					t.Fatalf("refPhiRefined: %v", err)
				}
				gotRef, err := PhiRefined(tc.g, ell, seed)
				if err != nil {
					t.Fatalf("PhiRefined: %v", err)
				}
				if !sameCut(refRef, gotRef) {
					t.Errorf("seed %d ℓ=%d: refined cut differs:\n  ref: φ=%g |set|=%d\n  new: φ=%g |set|=%d",
						seed, ell, refRef.Phi, len(refRef.Set), gotRef.Phi, len(gotRef.Set))
				}
			}
		})
	}
}
