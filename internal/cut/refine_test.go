package cut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gossip/internal/graph"
)

func TestRefineNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(10)
		g := graph.RandomLatencies(graph.GNP(n, 0.4, 1, true, uint64(seed)), 1, 4, uint64(seed))
		ell := 1 + r.Intn(4)
		cert, err := PhiHeuristicCut(g, ell, uint64(seed))
		if err != nil {
			return false
		}
		ref := Refine(g, cert, 10)
		if ref.Phi > cert.Phi+1e-12 {
			return false
		}
		// The refined certificate must realize its claimed value.
		if len(ref.Set) == 0 || len(ref.Set) >= n {
			return false
		}
		phi, err := PhiCut(g, ref.Set, ell)
		return err == nil && math.Abs(phi-ref.Phi) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRefineImprovesPerturbedStart(t *testing.T) {
	// Start from the bridge cut of a dumbbell perturbed by one misplaced
	// node; single-move refinement must walk it back to the exact minimum.
	g := graph.Dumbbell(6, 4)
	start := Certificate{Set: []graph.NodeID{0, 1, 2, 3, 4, 5, 6}, Ell: 4}
	var err error
	start.Phi, err = PhiCut(g, start.Set, 4)
	if err != nil {
		t.Fatalf("PhiCut: %v", err)
	}
	ref := Refine(g, start, 20)
	if ref.Phi >= start.Phi {
		t.Errorf("refinement did not improve: %g -> %g", start.Phi, ref.Phi)
	}
	exact, err := PhiExact(g, 4)
	if err != nil {
		t.Fatalf("PhiExact: %v", err)
	}
	if math.Abs(ref.Phi-exact) > 1e-12 {
		t.Errorf("refined φ=%g, want exact %g", ref.Phi, exact)
	}
	if len(ref.Set) != 6 {
		t.Errorf("refined side size %d, want 6 (the bridge cut)", len(ref.Set))
	}
}

func TestPhiRefinedAtLeastAsGoodAsHeuristic(t *testing.T) {
	g := graph.RandomLatencies(graph.GNP(18, 0.35, 1, true, 11), 1, 5, 11)
	for _, ell := range []int{1, 3, 5} {
		heur := PhiHeuristic(g, ell, 11)
		ref, err := PhiRefined(g, ell, 11)
		if err != nil {
			t.Fatalf("PhiRefined: %v", err)
		}
		if ref.Phi > heur+1e-12 {
			t.Errorf("ℓ=%d: refined %g worse than heuristic %g", ell, ref.Phi, heur)
		}
		exact, err := PhiExact(g, ell)
		if err != nil {
			t.Fatalf("PhiExact: %v", err)
		}
		if ref.Phi < exact-1e-12 {
			t.Errorf("ℓ=%d: refined %g below exact %g (impossible)", ell, ref.Phi, exact)
		}
	}
}

func TestRefineDegenerateInputs(t *testing.T) {
	g := graph.Clique(4, 1)
	empty := Refine(g, Certificate{Ell: 1}, 5)
	if len(empty.Set) != 0 {
		t.Error("empty certificate should pass through")
	}
	full := Refine(g, Certificate{Set: []graph.NodeID{0, 1, 2, 3}, Ell: 1}, 5)
	if len(full.Set) != 4 {
		t.Error("full certificate should pass through")
	}
}
