// Package cut computes the paper's connectivity measures: weight-ℓ
// conductance φ_ℓ (Definition 1), weighted conductance φ* and critical
// latency ℓ* (Definition 2).
//
// Exact conductance enumerates all cuts and is exponential; it is provided
// for small graphs (n <= MaxExactN) and used to validate the heuristic,
// which combines spectral sweep cuts with sampled and structured cuts and
// returns an upper bound on φ_ℓ that is empirically tight on the families
// used in the experiments.
//
// The heuristic pipeline runs on a latency-sorted CSR view of the graph
// (graph.BuildCSR): the edges of G_ℓ are slice prefixes of contiguous
// neighbor rows instead of filtered scans, candidate orderings that do not
// depend on ℓ are computed once and shared across the whole φ_ℓ ladder, the
// spectral embedding of each level warm-starts from the previous level's
// converged vector, and independent ladder levels are fanned across the
// shared worker pool (internal/par) with an index-ordered merge, so results
// are byte-identical at any worker count. See engine.go and ladder.go; the
// pre-CSR pipeline is frozen in reference.go for the equivalence suite.
package cut

import (
	"errors"
	"fmt"
	"math"

	"gossip/internal/graph"
)

// ErrTooLarge is returned by exact computations on graphs beyond the
// exhaustive-enumeration limit.
var ErrTooLarge = errors.New("cut: graph too large for exact conductance")

// MaxExactN is the largest node count accepted by exact enumeration.
const MaxExactN = 24

// The exact enumerators index a 64-bit cut mask by node (1<<u), so
// MaxExactN may never exceed 63: this conversion fails to compile if the
// limit is raised past the mask width, and the n > MaxExactN checks below
// turn larger inputs into ErrTooLarge instead of a silent overflow.
const _ = uint64(63 - MaxExactN)

// PhiCut returns the weight-ℓ conductance of the cut (set, V∖set):
// |E_ℓ(U, V∖U)| / min(Vol(U), Vol(V∖U)). Volumes are taken in the full
// graph, per Definition 1. It returns an error when either side is empty or
// has zero volume.
func PhiCut(g *graph.Graph, set []graph.NodeID, ell int) (float64, error) {
	n := g.N()
	if len(set) == 0 || len(set) >= n {
		return 0, fmt.Errorf("cut: side sizes %d/%d invalid", len(set), n-len(set))
	}
	in := make([]bool, n)
	for _, u := range set {
		if u < 0 || u >= n {
			return 0, fmt.Errorf("cut: node %d out of range", u)
		}
		in[u] = true
	}
	cutEdges := 0
	for _, e := range g.Edges() {
		if e.Latency <= ell && in[e.U] != in[e.V] {
			cutEdges++
		}
	}
	volU := g.Volume(set)
	volAll := 2 * g.M()
	volOther := volAll - volU
	den := volU
	if volOther < den {
		den = volOther
	}
	if den == 0 {
		return 0, fmt.Errorf("cut: zero volume side")
	}
	return float64(cutEdges) / float64(den), nil
}

// PhiExact returns φ_ℓ(G) = min over all cuts of the weight-ℓ conductance,
// by exhaustive enumeration. It returns ErrTooLarge for g.N() > MaxExactN
// rather than overflowing the cut mask.
func PhiExact(g *graph.Graph, ell int) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("cut: need n >= 2, got %d", n)
	}
	if n > MaxExactN {
		return 0, fmt.Errorf("%w: n=%d > %d", ErrTooLarge, n, MaxExactN)
	}
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
	}
	edges := g.Edges()
	volAll := 2 * g.M()
	best := math.Inf(1)
	// Fix node 0 on the left to halve the enumeration; mask enumerates the
	// membership of nodes 1..n-1 (mask 0 = the singleton cut {0}), skipping
	// only the full set.
	for mask := uint64(0); mask < 1<<uint(n-1)-1; mask++ {
		full := uint64(1) | mask<<1
		volU := 0
		for u := 0; u < n; u++ {
			if full&(1<<uint(u)) != 0 {
				volU += deg[u]
			}
		}
		den := volU
		if volAll-volU < den {
			den = volAll - volU
		}
		if den == 0 {
			continue
		}
		cutEdges := 0
		for _, e := range edges {
			if e.Latency <= ell && (full>>uint(e.U))&1 != (full>>uint(e.V))&1 {
				cutEdges++
			}
		}
		if phi := float64(cutEdges) / float64(den); phi < best {
			best = phi
		}
	}
	return best, nil
}

// PhiHeuristic returns an upper bound on φ_ℓ(G) by taking the best
// (smallest) conductance over a family of candidate cuts:
//
//   - the connectivity shortcut: if the latency-ℓ subgraph is disconnected,
//     φ_ℓ = 0 exactly;
//   - sweep cuts of a spectral embedding obtained by power iteration of the
//     lazy random walk on G_ℓ;
//   - sweep cuts of BFS distance orderings from sampled sources;
//   - random balanced cuts.
//
// On the constructed families of the paper (rings of cliques, layered rings,
// bipartite gadgets) the true minimum cut belongs to one of these families,
// so the bound is tight there; tests validate it against PhiExact.
func PhiHeuristic(g *graph.Graph, ell int, seed uint64) float64 {
	if g.N() < 2 {
		return 0
	}
	return newView(g, seed).heuristicCert(ell, 0).Phi
}

func identityOrder(n int) []graph.NodeID {
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// Ladder is the evaluation of φ_ℓ at one latency level.
type Ladder struct {
	Ell   int
	Phi   float64
	Ratio float64 // Phi / Ell — the quantity maximized by Definition 2
}

// Result reports the weighted conductance of a graph.
type Result struct {
	PhiStar float64  // φ*(G)
	EllStar int      // ℓ*, the critical latency
	Ladder  []Ladder // φ_ℓ for each distinct latency ℓ
	Exact   bool     // whether φ_ℓ values are exact
}
