// Package cut computes the paper's connectivity measures: weight-ℓ
// conductance φ_ℓ (Definition 1), weighted conductance φ* and critical
// latency ℓ* (Definition 2).
//
// Exact conductance enumerates all cuts and is exponential; it is provided
// for small graphs (n <= 24) and used to validate the heuristic, which
// combines spectral sweep cuts with sampled and structured cuts and returns
// an upper bound on φ_ℓ that is empirically tight on the families used in
// the experiments.
package cut

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// ErrTooLarge is returned by exact computations on graphs beyond the
// exhaustive-enumeration limit.
var ErrTooLarge = errors.New("cut: graph too large for exact conductance")

// MaxExactN is the largest node count accepted by exact enumeration.
const MaxExactN = 24

// PhiCut returns the weight-ℓ conductance of the cut (set, V∖set):
// |E_ℓ(U, V∖U)| / min(Vol(U), Vol(V∖U)). Volumes are taken in the full
// graph, per Definition 1. It returns an error when either side is empty or
// has zero volume.
func PhiCut(g *graph.Graph, set []graph.NodeID, ell int) (float64, error) {
	n := g.N()
	if len(set) == 0 || len(set) >= n {
		return 0, fmt.Errorf("cut: side sizes %d/%d invalid", len(set), n-len(set))
	}
	in := make([]bool, n)
	for _, u := range set {
		if u < 0 || u >= n {
			return 0, fmt.Errorf("cut: node %d out of range", u)
		}
		in[u] = true
	}
	cutEdges := 0
	for _, e := range g.Edges() {
		if e.Latency <= ell && in[e.U] != in[e.V] {
			cutEdges++
		}
	}
	volU := g.Volume(set)
	volAll := 2 * g.M()
	volOther := volAll - volU
	den := volU
	if volOther < den {
		den = volOther
	}
	if den == 0 {
		return 0, fmt.Errorf("cut: zero volume side")
	}
	return float64(cutEdges) / float64(den), nil
}

// PhiExact returns φ_ℓ(G) = min over all cuts of the weight-ℓ conductance,
// by exhaustive enumeration. Only feasible for g.N() <= MaxExactN.
func PhiExact(g *graph.Graph, ell int) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("cut: need n >= 2, got %d", n)
	}
	if n > MaxExactN {
		return 0, fmt.Errorf("%w: n=%d > %d", ErrTooLarge, n, MaxExactN)
	}
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
	}
	edges := g.Edges()
	volAll := 2 * g.M()
	best := math.Inf(1)
	// Fix node 0 on the left to halve the enumeration; mask enumerates the
	// membership of nodes 1..n-1 (mask 0 = the singleton cut {0}), skipping
	// only the full set.
	for mask := uint32(0); mask < 1<<(n-1)-1; mask++ {
		full := uint32(1) | mask<<1
		volU := 0
		for u := 0; u < n; u++ {
			if full&(1<<uint(u)) != 0 {
				volU += deg[u]
			}
		}
		den := volU
		if volAll-volU < den {
			den = volAll - volU
		}
		if den == 0 {
			continue
		}
		cutEdges := 0
		for _, e := range edges {
			if e.Latency <= ell && (full>>uint(e.U))&1 != (full>>uint(e.V))&1 {
				cutEdges++
			}
		}
		if phi := float64(cutEdges) / float64(den); phi < best {
			best = phi
		}
	}
	return best, nil
}

// PhiHeuristic returns an upper bound on φ_ℓ(G) by taking the best
// (smallest) conductance over a family of candidate cuts:
//
//   - the connectivity shortcut: if the latency-ℓ subgraph is disconnected,
//     φ_ℓ = 0 exactly;
//   - sweep cuts of a spectral embedding obtained by power iteration of the
//     lazy random walk on G_ℓ;
//   - sweep cuts of BFS distance orderings from sampled sources;
//   - random balanced cuts.
//
// On the constructed families of the paper (rings of cliques, layered rings,
// bipartite gadgets) the true minimum cut belongs to one of these families,
// so the bound is tight there; tests validate it against PhiExact.
func PhiHeuristic(g *graph.Graph, ell int, seed uint64) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	if !g.Subgraph(ell).Connected() {
		return 0
	}
	best := math.Inf(1)
	consider := func(order []graph.NodeID) {
		if phi := bestSweep(g, order, ell); phi < best {
			best = phi
		}
	}
	consider(spectralOrder(g, ell, seed))
	r := rng.Stream(seed, 0x6873) // "hs"
	sources := []graph.NodeID{0}
	for i := 0; i < 3 && n > 1; i++ {
		sources = append(sources, r.Intn(n))
	}
	for _, s := range sources {
		dist := g.Distances(s)
		order := identityOrder(n)
		sort.SliceStable(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
		consider(order)
	}
	// Random orderings catch degenerate embeddings.
	for i := 0; i < 2; i++ {
		order := identityOrder(n)
		r.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		consider(order)
	}
	return best
}

func identityOrder(n int) []graph.NodeID {
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// bestSweep evaluates all prefix cuts of the given node ordering and returns
// the smallest weight-ℓ conductance found.
func bestSweep(g *graph.Graph, order []graph.NodeID, ell int) float64 {
	n := g.N()
	pos := make([]int, n)
	for i, u := range order {
		pos[u] = i
	}
	volAll := 2 * g.M()
	volU := 0
	cutEdges := 0
	best := math.Inf(1)
	for i := 0; i < n-1; i++ {
		u := order[i]
		volU += g.Degree(u)
		for _, he := range g.Neighbors(u) {
			if he.Latency > ell {
				continue
			}
			if pos[he.To] > i {
				cutEdges++
			} else {
				cutEdges--
			}
		}
		den := volU
		if volAll-volU < den {
			den = volAll - volU
		}
		if den == 0 {
			continue
		}
		if phi := float64(cutEdges) / float64(den); phi < best {
			best = phi
		}
	}
	return best
}

// spectralOrder orders nodes by an approximate second eigenvector of the
// lazy random walk on G_ℓ, computed by power iteration with deflation of the
// stationary component.
func spectralOrder(g *graph.Graph, ell int, seed uint64) []graph.NodeID {
	n := g.N()
	deg := make([]float64, n)
	total := 0.0
	for u := 0; u < n; u++ {
		for _, he := range g.Neighbors(u) {
			if he.Latency <= ell {
				deg[u]++
			}
		}
		if deg[u] == 0 {
			deg[u] = 1 // isolated in G_ℓ: self-loop only
		}
		total += deg[u]
	}
	r := rng.Stream(seed, 0x7370) // "sp"
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	iters := 20 + 4*int(math.Log2(float64(n)+1))
	for it := 0; it < iters; it++ {
		// Deflate the stationary distribution π(u) ∝ deg(u): remove the
		// degree-weighted mean.
		mean := 0.0
		for u := 0; u < n; u++ {
			mean += deg[u] * x[u]
		}
		mean /= total
		for u := 0; u < n; u++ {
			x[u] -= mean
		}
		// One lazy-walk step: y = (x + P x)/2 with P = D⁻¹A on G_ℓ.
		for u := 0; u < n; u++ {
			sum := 0.0
			cnt := 0.0
			for _, he := range g.Neighbors(u) {
				if he.Latency <= ell {
					sum += x[he.To]
					cnt++
				}
			}
			if cnt == 0 {
				y[u] = x[u]
			} else {
				y[u] = 0.5*x[u] + 0.5*sum/cnt
			}
		}
		// Normalize to avoid underflow.
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			break
		}
		for u := 0; u < n; u++ {
			x[u] = y[u] / norm
		}
	}
	order := identityOrder(n)
	sort.SliceStable(order, func(i, j int) bool { return x[order[i]] < x[order[j]] })
	return order
}

// Ladder is the evaluation of φ_ℓ at one latency level.
type Ladder struct {
	Ell   int
	Phi   float64
	Ratio float64 // Phi / Ell — the quantity maximized by Definition 2
}

// Result reports the weighted conductance of a graph.
type Result struct {
	PhiStar float64  // φ*(G)
	EllStar int      // ℓ*, the critical latency
	Ladder  []Ladder // φ_ℓ for each distinct latency ℓ
	Exact   bool     // whether φ_ℓ values are exact
}

// WeightedConductance computes φ* and ℓ* (Definition 2) by evaluating φ_ℓ at
// every distinct edge latency and maximizing φ_ℓ/ℓ. Exact enumeration is
// used when n <= MaxExactN, otherwise the heuristic.
func WeightedConductance(g *graph.Graph, seed uint64) (Result, error) {
	lats := g.Latencies()
	if len(lats) == 0 {
		return Result{}, fmt.Errorf("cut: graph has no edges")
	}
	res := Result{Exact: g.N() <= MaxExactN}
	for _, ell := range lats {
		var (
			phi float64
			err error
		)
		if res.Exact {
			phi, err = PhiExact(g, ell)
			if err != nil {
				return Result{}, fmt.Errorf("exact φ_%d: %w", ell, err)
			}
		} else {
			cert, err := PhiRefined(g, ell, seed)
			if err != nil {
				return Result{}, fmt.Errorf("heuristic φ_%d: %w", ell, err)
			}
			phi = cert.Phi
		}
		res.Ladder = append(res.Ladder, Ladder{Ell: ell, Phi: phi, Ratio: phi / float64(ell)})
	}
	bestIdx := 0
	for i, l := range res.Ladder {
		if l.Ratio > res.Ladder[bestIdx].Ratio {
			bestIdx = i
		}
	}
	res.PhiStar = res.Ladder[bestIdx].Phi
	res.EllStar = res.Ladder[bestIdx].Ell
	return res, nil
}
