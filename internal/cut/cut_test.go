package cut

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gossip/internal/graph"
)

func TestPhiCutDumbbell(t *testing.T) {
	// Dumbbell of two K4 joined by one latency-5 bridge: the natural cut has
	// 1 edge (at ℓ>=5) over volume min = 2·6+1 = 13.
	g := graph.Dumbbell(4, 5)
	left := []graph.NodeID{0, 1, 2, 3}
	phi5, err := PhiCut(g, left, 5)
	if err != nil {
		t.Fatalf("PhiCut: %v", err)
	}
	if want := 1.0 / 13.0; math.Abs(phi5-want) > 1e-12 {
		t.Errorf("φ_5(cut) = %g, want %g", phi5, want)
	}
	// Below the bridge latency the cut has no usable edge.
	phi1, err := PhiCut(g, left, 1)
	if err != nil {
		t.Fatalf("PhiCut: %v", err)
	}
	if phi1 != 0 {
		t.Errorf("φ_1(cut) = %g, want 0", phi1)
	}
}

func TestPhiCutValidation(t *testing.T) {
	g := graph.Clique(4, 1)
	if _, err := PhiCut(g, nil, 1); err == nil {
		t.Error("empty side should fail")
	}
	if _, err := PhiCut(g, []graph.NodeID{0, 1, 2, 3}, 1); err == nil {
		t.Error("full side should fail")
	}
	if _, err := PhiCut(g, []graph.NodeID{9}, 1); err == nil {
		t.Error("out-of-range node should fail")
	}
}

func TestPhiExactClique(t *testing.T) {
	// K4 unit latency: conductance of K_n is minimized by the balanced cut:
	// 4 cut edges over volume 6 = 2/3... enumerate by hand: single node cut
	// = 3/3 = 1; pair cut = 4/6 = 2/3.
	g := graph.Clique(4, 1)
	phi, err := PhiExact(g, 1)
	if err != nil {
		t.Fatalf("PhiExact: %v", err)
	}
	if want := 2.0 / 3.0; math.Abs(phi-want) > 1e-12 {
		t.Errorf("φ(K4) = %g, want %g", phi, want)
	}
}

func TestPhiExactRejectsLarge(t *testing.T) {
	g := graph.Clique(MaxExactN+1, 1)
	if _, err := PhiExact(g, 1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestPhiHeuristicMatchesExactSmall(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		ell  int
	}{
		{name: "dumbbell", g: graph.Dumbbell(5, 3), ell: 3},
		{name: "ring-of-cliques", g: graph.RingOfCliques(3, 4, 2), ell: 2},
		{name: "path", g: graph.Path(10, 1), ell: 1},
		{name: "grid", g: graph.Grid(3, 4, 1), ell: 1},
		{name: "random", g: graph.GNP(12, 0.4, 1, true, 7), ell: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			exact, err := PhiExact(tt.g, tt.ell)
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			heur := PhiHeuristic(tt.g, tt.ell, 1)
			if heur < exact-1e-12 {
				t.Fatalf("heuristic %g below exact %g (impossible: heuristic is an upper bound)", heur, exact)
			}
			if heur > exact*1.5+1e-12 {
				t.Errorf("heuristic %g too loose vs exact %g", heur, exact)
			}
		})
	}
}

func TestPhiHeuristicDisconnectedSubgraph(t *testing.T) {
	// Dumbbell with bridge latency 9: at ℓ=1 the ≤ℓ subgraph is
	// disconnected, so φ_1 = 0 exactly.
	g := graph.Dumbbell(4, 9)
	if phi := PhiHeuristic(g, 1, 1); phi != 0 {
		t.Errorf("φ_1 = %g, want 0", phi)
	}
}

func TestWeightedConductanceDumbbell(t *testing.T) {
	// Bridge latency 5: φ_1 = 0, φ_5 = 1/13 → φ* = φ_5, ℓ* = 5.
	g := graph.Dumbbell(4, 5)
	res, err := WeightedConductance(g, 1)
	if err != nil {
		t.Fatalf("WeightedConductance: %v", err)
	}
	if !res.Exact {
		t.Error("small graph should use exact enumeration")
	}
	if res.EllStar != 5 {
		t.Errorf("ℓ* = %d, want 5", res.EllStar)
	}
	if want := 1.0 / 13.0; math.Abs(res.PhiStar-want) > 1e-12 {
		t.Errorf("φ* = %g, want %g", res.PhiStar, want)
	}
	if len(res.Ladder) != 2 {
		t.Errorf("ladder length = %d, want 2", len(res.Ladder))
	}
}

func TestWeightedConductanceUnitGraphIsClassical(t *testing.T) {
	// With unit latencies, φ* equals the classical conductance (Section 2).
	g := graph.Clique(6, 1)
	res, err := WeightedConductance(g, 1)
	if err != nil {
		t.Fatalf("WeightedConductance: %v", err)
	}
	classical, err := PhiExact(g, 1)
	if err != nil {
		t.Fatalf("PhiExact: %v", err)
	}
	if res.EllStar != 1 || math.Abs(res.PhiStar-classical) > 1e-12 {
		t.Errorf("φ*=%g ℓ*=%d, want classical φ=%g at ℓ=1", res.PhiStar, res.EllStar, classical)
	}
}

func TestWeightedConductanceNoEdges(t *testing.T) {
	if _, err := WeightedConductance(graph.New(3), 1); err == nil {
		t.Error("edgeless graph should fail")
	}
}

// TestLemma9HalfCut verifies φ_ℓ(C) = α on the Theorem 8 ring construction.
func TestLemma9HalfCut(t *testing.T) {
	for _, alpha := range []float64{0.125, 0.25} {
		rn, err := graph.NewRingNetwork(128, alpha, 8, 3)
		if err != nil {
			t.Fatalf("ring: %v", err)
		}
		phi, err := PhiCut(rn.G, rn.HalfCut(), rn.Ell)
		if err != nil {
			t.Fatalf("PhiCut: %v", err)
		}
		// Lemma 9: φ_ℓ(C) = 2(cnα)²/(n(3cnα−1)) = exactly α modulo the
		// integer rounding of s and k; allow 25% slack for rounding.
		if phi < alpha*0.75 || phi > alpha*1.35 {
			t.Errorf("α=%g: φ_ℓ(C) = %g, want ≈ α (Lemma 9)", alpha, phi)
		}
	}
}

// TestLemma10RingConductance verifies φ_ℓ = Θ(α) via the heuristic.
func TestLemma10RingConductance(t *testing.T) {
	alpha := 0.25
	rn, err := graph.NewRingNetwork(64, alpha, 6, 5)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	phi := PhiHeuristic(rn.G, rn.Ell, 1)
	if phi > alpha*1.35 {
		t.Errorf("φ_ℓ = %g exceeds α=%g beyond rounding slack", phi, alpha)
	}
	if phi < alpha/8 {
		t.Errorf("φ_ℓ = %g far below Θ(α)=Θ(%g) (Lemma 10)", phi, alpha)
	}
}

// TestLemma11CriticalLatency verifies φ* = φ_ℓ (critical latency = ℓ) for
// ℓ within the allowed range.
func TestLemma11CriticalLatency(t *testing.T) {
	rn, err := graph.NewRingNetwork(64, 0.25, 6, 5)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	res, err := WeightedConductance(rn.G, 1)
	if err != nil {
		t.Fatalf("WeightedConductance: %v", err)
	}
	if res.EllStar != rn.Ell {
		t.Errorf("ℓ* = %d, want %d (Lemma 11)", res.EllStar, rn.Ell)
	}
}

func TestQuickHeuristicUpperBoundsExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(8)
		g := graph.RandomLatencies(graph.GNP(n, 0.5, 1, true, uint64(seed)), 1, 4, uint64(seed))
		ell := 1 + r.Intn(4)
		exact, err := PhiExact(g, ell)
		if err != nil {
			return false
		}
		heur := PhiHeuristic(g, ell, uint64(seed))
		return heur >= exact-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickPhiMonotoneInEll(t *testing.T) {
	// φ_ℓ is non-decreasing in ℓ: more edges qualify, volumes unchanged.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(7)
		g := graph.RandomLatencies(graph.GNP(n, 0.6, 1, true, uint64(seed)), 1, 5, uint64(seed))
		prev := -1.0
		for ell := 1; ell <= 5; ell++ {
			phi, err := PhiExact(g, ell)
			if err != nil {
				return false
			}
			if phi < prev-1e-12 {
				return false
			}
			prev = phi
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
