package cut

import (
	"fmt"
	"math"
	"sort"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// This file is the frozen pre-CSR conductance pipeline, kept verbatim as the
// oracle for the ladder-equivalence suite and as the baseline side of
// BenchmarkWeightedConductance*Ref. It evaluates every level of the φ_ℓ
// ladder independently: one spectral power iteration at the full budget, one
// set of BFS/random orderings, and one Subgraph build per distinct latency.
// Nothing in the live engine may call into it; changes here invalidate the
// recorded baselines in BENCH_pr5.json.

// WeightedConductanceRef computes φ* and ℓ* with the pre-CSR per-level
// pipeline. It is exported for benchmarks and equivalence tests only; use
// WeightedConductance.
func WeightedConductanceRef(g *graph.Graph, seed uint64) (Result, error) {
	lats := g.Latencies()
	if len(lats) == 0 {
		return Result{}, fmt.Errorf("cut: graph has no edges")
	}
	res := Result{Exact: g.N() <= MaxExactN}
	for _, ell := range lats {
		var (
			phi float64
			err error
		)
		if res.Exact {
			phi, err = PhiExact(g, ell)
			if err != nil {
				return Result{}, fmt.Errorf("exact φ_%d: %w", ell, err)
			}
		} else {
			cert, err := refPhiRefined(g, ell, seed)
			if err != nil {
				return Result{}, fmt.Errorf("heuristic φ_%d: %w", ell, err)
			}
			phi = cert.Phi
		}
		res.Ladder = append(res.Ladder, Ladder{Ell: ell, Phi: phi, Ratio: phi / float64(ell)})
	}
	bestIdx := 0
	for i, l := range res.Ladder {
		if l.Ratio > res.Ladder[bestIdx].Ratio {
			bestIdx = i
		}
	}
	res.PhiStar = res.Ladder[bestIdx].Phi
	res.EllStar = res.Ladder[bestIdx].Ell
	return res, nil
}

// refPhiRefined is the pre-CSR PhiRefined: sweep heuristic plus local
// refinement at one level.
func refPhiRefined(g *graph.Graph, ell int, seed uint64) (Certificate, error) {
	cert, err := refPhiHeuristicCut(g, ell, seed)
	if err != nil {
		return Certificate{}, err
	}
	if cert.Phi == 0 {
		return cert, nil
	}
	return refRefine(g, cert, 20), nil
}

// refPhiHeuristicCut is the pre-CSR PhiHeuristicCut: candidate orderings are
// recomputed from scratch at every level.
func refPhiHeuristicCut(g *graph.Graph, ell int, seed uint64) (Certificate, error) {
	n := g.N()
	if n < 2 {
		return Certificate{}, fmt.Errorf("cut: need n >= 2, got %d", n)
	}
	if comps := g.Subgraph(ell).Components(); len(comps) > 1 {
		small := comps[0]
		for _, c := range comps[1:] {
			if len(c) < len(small) {
				small = c
			}
		}
		if len(small) == n {
			small = small[:n-1]
		}
		return Certificate{Set: append([]graph.NodeID(nil), small...), Ell: ell, Phi: 0}, nil
	}
	best := Certificate{Ell: ell, Phi: math.Inf(1)}
	consider := func(order []graph.NodeID) {
		set, phi := refBestSweepCut(g, order, ell)
		if phi < best.Phi {
			best.Phi = phi
			best.Set = set
		}
	}
	consider(refSpectralOrder(g, ell, seed))
	r := rng.Stream(seed, 0x6873)
	sources := []graph.NodeID{0}
	for i := 0; i < 3 && n > 1; i++ {
		sources = append(sources, r.Intn(n))
	}
	for _, s := range sources {
		dist := g.Distances(s)
		order := identityOrder(n)
		sort.SliceStable(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
		consider(order)
	}
	for i := 0; i < 2; i++ {
		order := identityOrder(n)
		r.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		consider(order)
	}
	return best, nil
}

// refBestSweepCut is the pre-CSR sweep: every incident edge is re-filtered
// by latency on each visit.
func refBestSweepCut(g *graph.Graph, order []graph.NodeID, ell int) ([]graph.NodeID, float64) {
	n := g.N()
	pos := make([]int, n)
	for i, u := range order {
		pos[u] = i
	}
	volAll := 2 * g.M()
	volU := 0
	cutEdges := 0
	best := math.Inf(1)
	bestPrefix := 1
	for i := 0; i < n-1; i++ {
		u := order[i]
		volU += g.Degree(u)
		for _, he := range g.Neighbors(u) {
			if he.Latency > ell {
				continue
			}
			if pos[he.To] > i {
				cutEdges++
			} else {
				cutEdges--
			}
		}
		den := volU
		if volAll-volU < den {
			den = volAll - volU
		}
		if den == 0 {
			continue
		}
		if phi := float64(cutEdges) / float64(den); phi < best {
			best = phi
			bestPrefix = i + 1
		}
	}
	return append([]graph.NodeID(nil), order[:bestPrefix]...), best
}

// refSpectralOrder is the pre-CSR spectral embedding: power iteration of the
// lazy random walk on G_ℓ, always running the fixed iteration budget.
func refSpectralOrder(g *graph.Graph, ell int, seed uint64) []graph.NodeID {
	n := g.N()
	deg := make([]float64, n)
	total := 0.0
	for u := 0; u < n; u++ {
		for _, he := range g.Neighbors(u) {
			if he.Latency <= ell {
				deg[u]++
			}
		}
		if deg[u] == 0 {
			deg[u] = 1 // isolated in G_ℓ: self-loop only
		}
		total += deg[u]
	}
	r := rng.Stream(seed, 0x7370) // "sp"
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	iters := 20 + 4*int(math.Log2(float64(n)+1))
	for it := 0; it < iters; it++ {
		// Deflate the stationary distribution π(u) ∝ deg(u): remove the
		// degree-weighted mean.
		mean := 0.0
		for u := 0; u < n; u++ {
			mean += deg[u] * x[u]
		}
		mean /= total
		for u := 0; u < n; u++ {
			x[u] -= mean
		}
		// One lazy-walk step: y = (x + P x)/2 with P = D⁻¹A on G_ℓ.
		for u := 0; u < n; u++ {
			sum := 0.0
			cnt := 0.0
			for _, he := range g.Neighbors(u) {
				if he.Latency <= ell {
					sum += x[he.To]
					cnt++
				}
			}
			if cnt == 0 {
				y[u] = x[u]
			} else {
				y[u] = 0.5*x[u] + 0.5*sum/cnt
			}
		}
		// Normalize to avoid underflow.
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			break
		}
		for u := 0; u < n; u++ {
			x[u] = y[u] / norm
		}
	}
	order := identityOrder(n)
	sort.SliceStable(order, func(i, j int) bool { return x[order[i]] < x[order[j]] })
	return order
}

// refRefine is the pre-CSR greedy single-node refinement.
func refRefine(g *graph.Graph, cert Certificate, maxPasses int) Certificate {
	n := g.N()
	if len(cert.Set) == 0 || len(cert.Set) >= n {
		return cert
	}
	in := make([]bool, n)
	for _, u := range cert.Set {
		in[u] = true
	}
	size := len(cert.Set)
	volAll := 2 * g.M()
	volU := g.Volume(cert.Set)
	cutEdges := 0
	for _, e := range g.Edges() {
		if e.Latency <= cert.Ell && in[e.U] != in[e.V] {
			cutEdges++
		}
	}
	phiOf := func(cutE, vol int) float64 {
		den := vol
		if volAll-vol < den {
			den = volAll - vol
		}
		if den <= 0 {
			return 2 // worse than any real conductance
		}
		return float64(cutE) / float64(den)
	}
	best := phiOf(cutEdges, volU)

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := 0; v < n; v++ {
			if size == 1 && in[v] || size == n-1 && !in[v] {
				continue // never empty a side
			}
			dCut := 0
			for _, he := range g.Neighbors(v) {
				if he.Latency > cert.Ell {
					continue
				}
				if in[he.To] == in[v] {
					dCut++ // same side now; crossing after the move
				} else {
					dCut--
				}
			}
			dVol := g.Degree(v)
			if in[v] {
				dVol = -dVol
			}
			if phi := phiOf(cutEdges+dCut, volU+dVol); phi < best-1e-15 {
				best = phi
				cutEdges += dCut
				volU += dVol
				if in[v] {
					size--
				} else {
					size++
				}
				in[v] = !in[v]
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	out := Certificate{Ell: cert.Ell, Phi: best}
	for v := 0; v < n; v++ {
		if in[v] {
			out.Set = append(out.Set, v)
		}
	}
	return out
}
