package cut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gossip/internal/graph"
)

func TestPhiExactCutCertifies(t *testing.T) {
	g := graph.Dumbbell(5, 4)
	cert, err := PhiExactCut(g, 4)
	if err != nil {
		t.Fatalf("PhiExactCut: %v", err)
	}
	phi, err := PhiCut(g, cert.Set, 4)
	if err != nil {
		t.Fatalf("PhiCut on certificate: %v", err)
	}
	if math.Abs(phi-cert.Phi) > 1e-12 {
		t.Errorf("certificate claims %g but realizes %g", cert.Phi, phi)
	}
	exact, err := PhiExact(g, 4)
	if err != nil {
		t.Fatalf("PhiExact: %v", err)
	}
	if math.Abs(exact-cert.Phi) > 1e-12 {
		t.Errorf("certificate φ=%g != exact φ=%g", cert.Phi, exact)
	}
	// The natural minimizer of a dumbbell separates the two cliques.
	if len(cert.Set) != 5 {
		t.Errorf("certificate side size %d, want 5", len(cert.Set))
	}
}

func TestPhiHeuristicCutCertifies(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
		ell  int
	}{
		{name: "ring", g: graph.RingOfCliques(4, 6, 3), ell: 3},
		{name: "grid", g: graph.Grid(5, 5, 1), ell: 1},
		{name: "dumbbell", g: graph.Dumbbell(8, 5), ell: 5},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cert, err := PhiHeuristicCut(tt.g, tt.ell, 1)
			if err != nil {
				t.Fatalf("PhiHeuristicCut: %v", err)
			}
			phi, err := PhiCut(tt.g, cert.Set, tt.ell)
			if err != nil {
				t.Fatalf("PhiCut on certificate: %v", err)
			}
			if math.Abs(phi-cert.Phi) > 1e-12 {
				t.Errorf("certificate claims %g but realizes %g", cert.Phi, phi)
			}
			if heur := PhiHeuristic(tt.g, tt.ell, 1); math.Abs(heur-cert.Phi) > 1e-12 {
				t.Errorf("certificate φ=%g != heuristic φ=%g", cert.Phi, heur)
			}
		})
	}
}

func TestPhiHeuristicCutDisconnected(t *testing.T) {
	g := graph.Dumbbell(4, 9)
	cert, err := PhiHeuristicCut(g, 1, 1)
	if err != nil {
		t.Fatalf("PhiHeuristicCut: %v", err)
	}
	if cert.Phi != 0 {
		t.Errorf("φ = %g, want 0 for disconnected G_ℓ", cert.Phi)
	}
	phi, err := PhiCut(g, cert.Set, 1)
	if err != nil {
		t.Fatalf("PhiCut: %v", err)
	}
	if phi != 0 {
		t.Errorf("certificate cut realizes %g, want 0", phi)
	}
}

func TestQuickCertificateAlwaysRealized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(8)
		g := graph.RandomLatencies(graph.GNP(n, 0.5, 1, true, uint64(seed)), 1, 4, uint64(seed))
		ell := 1 + r.Intn(4)
		cert, err := PhiExactCut(g, ell)
		if err != nil {
			return false
		}
		phi, err := PhiCut(g, cert.Set, ell)
		if err != nil {
			return false
		}
		return math.Abs(phi-cert.Phi) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
