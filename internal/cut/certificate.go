package cut

import (
	"fmt"
	"math"

	"gossip/internal/graph"
)

// Certificate is a cut witnessing a conductance value: PhiCut(G, Set, Ell)
// equals Phi.
type Certificate struct {
	Set []graph.NodeID
	Ell int
	Phi float64
}

// PhiExactCut returns φ_ℓ(G) together with a minimizing cut, by exhaustive
// enumeration. It returns ErrTooLarge for g.N() > MaxExactN rather than
// overflowing the cut mask (see the MaxExactN <= 63 guard in cut.go).
func PhiExactCut(g *graph.Graph, ell int) (Certificate, error) {
	n := g.N()
	if n < 2 {
		return Certificate{}, fmt.Errorf("cut: need n >= 2, got %d", n)
	}
	if n > MaxExactN {
		return Certificate{}, fmt.Errorf("%w: n=%d > %d", ErrTooLarge, n, MaxExactN)
	}
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
	}
	edges := g.Edges()
	volAll := 2 * g.M()
	best := math.Inf(1)
	var bestMask uint64
	for mask := uint64(0); mask < 1<<uint(n-1)-1; mask++ {
		full := uint64(1) | mask<<1
		volU := 0
		for u := 0; u < n; u++ {
			if full&(1<<uint(u)) != 0 {
				volU += deg[u]
			}
		}
		den := volU
		if volAll-volU < den {
			den = volAll - volU
		}
		if den == 0 {
			continue
		}
		cutEdges := 0
		for _, e := range edges {
			if e.Latency <= ell && (full>>uint(e.U))&1 != (full>>uint(e.V))&1 {
				cutEdges++
			}
		}
		if phi := float64(cutEdges) / float64(den); phi < best {
			best = phi
			bestMask = full
		}
	}
	cert := Certificate{Ell: ell, Phi: best}
	for u := 0; u < n; u++ {
		if bestMask&(1<<uint(u)) != 0 {
			cert.Set = append(cert.Set, u)
		}
	}
	return cert, nil
}

// PhiHeuristicCut returns the best cut the heuristic finds, as a
// certificate: its Phi is an upper bound on φ_ℓ(G) and is realized by Set.
// When the latency-ℓ subgraph is disconnected, the certificate is one of
// its components (φ_ℓ = 0).
func PhiHeuristicCut(g *graph.Graph, ell int, seed uint64) (Certificate, error) {
	if g.N() < 2 {
		return Certificate{}, fmt.Errorf("cut: need n >= 2, got %d", g.N())
	}
	return newView(g, seed).heuristicCert(ell, 0), nil
}
