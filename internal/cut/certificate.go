package cut

import (
	"fmt"
	"math"
	"sort"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// Certificate is a cut witnessing a conductance value: PhiCut(G, Set, Ell)
// equals Phi.
type Certificate struct {
	Set []graph.NodeID
	Ell int
	Phi float64
}

// PhiExactCut returns φ_ℓ(G) together with a minimizing cut, by exhaustive
// enumeration (n <= MaxExactN).
func PhiExactCut(g *graph.Graph, ell int) (Certificate, error) {
	n := g.N()
	if n < 2 {
		return Certificate{}, fmt.Errorf("cut: need n >= 2, got %d", n)
	}
	if n > MaxExactN {
		return Certificate{}, fmt.Errorf("%w: n=%d > %d", ErrTooLarge, n, MaxExactN)
	}
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
	}
	edges := g.Edges()
	volAll := 2 * g.M()
	best := math.Inf(1)
	var bestMask uint32
	for mask := uint32(0); mask < 1<<(n-1)-1; mask++ {
		full := uint32(1) | mask<<1
		volU := 0
		for u := 0; u < n; u++ {
			if full&(1<<uint(u)) != 0 {
				volU += deg[u]
			}
		}
		den := volU
		if volAll-volU < den {
			den = volAll - volU
		}
		if den == 0 {
			continue
		}
		cutEdges := 0
		for _, e := range edges {
			if e.Latency <= ell && (full>>uint(e.U))&1 != (full>>uint(e.V))&1 {
				cutEdges++
			}
		}
		if phi := float64(cutEdges) / float64(den); phi < best {
			best = phi
			bestMask = full
		}
	}
	cert := Certificate{Ell: ell, Phi: best}
	for u := 0; u < n; u++ {
		if bestMask&(1<<uint(u)) != 0 {
			cert.Set = append(cert.Set, u)
		}
	}
	return cert, nil
}

// PhiHeuristicCut returns the best cut the heuristic finds, as a
// certificate: its Phi is an upper bound on φ_ℓ(G) and is realized by Set.
// When the latency-ℓ subgraph is disconnected, the certificate is one of
// its components (φ_ℓ = 0).
func PhiHeuristicCut(g *graph.Graph, ell int, seed uint64) (Certificate, error) {
	n := g.N()
	if n < 2 {
		return Certificate{}, fmt.Errorf("cut: need n >= 2, got %d", n)
	}
	if comps := g.Subgraph(ell).Components(); len(comps) > 1 {
		small := comps[0]
		for _, c := range comps[1:] {
			if len(c) < len(small) {
				small = c
			}
		}
		if len(small) == n {
			small = small[:n-1]
		}
		return Certificate{Set: append([]graph.NodeID(nil), small...), Ell: ell, Phi: 0}, nil
	}
	best := Certificate{Ell: ell, Phi: math.Inf(1)}
	consider := func(order []graph.NodeID) {
		set, phi := bestSweepCut(g, order, ell)
		if phi < best.Phi {
			best.Phi = phi
			best.Set = set
		}
	}
	consider(spectralOrder(g, ell, seed))
	r := rng.Stream(seed, 0x6873)
	sources := []graph.NodeID{0}
	for i := 0; i < 3 && n > 1; i++ {
		sources = append(sources, r.Intn(n))
	}
	for _, s := range sources {
		dist := g.Distances(s)
		order := identityOrder(n)
		sort.SliceStable(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
		consider(order)
	}
	for i := 0; i < 2; i++ {
		order := identityOrder(n)
		r.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		consider(order)
	}
	return best, nil
}

// bestSweepCut is bestSweep returning the minimizing prefix too.
func bestSweepCut(g *graph.Graph, order []graph.NodeID, ell int) ([]graph.NodeID, float64) {
	n := g.N()
	pos := make([]int, n)
	for i, u := range order {
		pos[u] = i
	}
	volAll := 2 * g.M()
	volU := 0
	cutEdges := 0
	best := math.Inf(1)
	bestPrefix := 1
	for i := 0; i < n-1; i++ {
		u := order[i]
		volU += g.Degree(u)
		for _, he := range g.Neighbors(u) {
			if he.Latency > ell {
				continue
			}
			if pos[he.To] > i {
				cutEdges++
			} else {
				cutEdges--
			}
		}
		den := volU
		if volAll-volU < den {
			den = volAll - volU
		}
		if den == 0 {
			continue
		}
		if phi := float64(cutEdges) / float64(den); phi < best {
			best = phi
			bestPrefix = i + 1
		}
	}
	return append([]graph.NodeID(nil), order[:bestPrefix]...), best
}
