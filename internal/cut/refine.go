package cut

import (
	"fmt"

	"gossip/internal/graph"
)

// refinePasses is the refinement budget of PhiRefined and the ladder,
// unchanged from the pre-CSR pipeline.
const refinePasses = 20

// Refine improves a cut by greedy single-node moves: repeatedly move the
// node whose transfer across the cut most decreases the weight-ℓ
// conductance, until no move improves it (or maxPasses sweeps elapse). It
// returns the refined certificate; the result is never worse than the
// input. This is the local-search step layered on top of the sweep-cut
// heuristic — on the paper's constructed families the sweep cut is already
// optimal, but on irregular graphs refinement closes most of the remaining
// gap to the exact minimum (see tests). The move loop runs on the
// latency-sorted CSR prefix of G_ℓ (see engine.go).
func Refine(g *graph.Graph, cert Certificate, maxPasses int) Certificate {
	csr := graph.BuildCSR(g)
	sc := getScratch(csr.N())
	defer putScratch(sc)
	ends := sc.ends
	csr.ResetEnds(ends)
	csr.AdvanceEnds(ends, cert.Ell)
	return refineAt(csr, cert, ends, maxPasses, sc)
}

// PhiRefined combines the sweep heuristic with local refinement and returns
// the improved upper bound on φ_ℓ with its certificate.
func PhiRefined(g *graph.Graph, ell int, seed uint64) (Certificate, error) {
	if g.N() < 2 {
		return Certificate{}, fmt.Errorf("cut: need n >= 2, got %d", g.N())
	}
	return newView(g, seed).heuristicCert(ell, refinePasses), nil
}
