package cut

import (
	"gossip/internal/graph"
)

// Refine improves a cut by greedy single-node moves: repeatedly move the
// node whose transfer across the cut most decreases the weight-ℓ
// conductance, until no move improves it (or maxPasses sweeps elapse). It
// returns the refined certificate; the result is never worse than the
// input. This is the local-search step layered on top of the sweep-cut
// heuristic — on the paper's constructed families the sweep cut is already
// optimal, but on irregular graphs refinement closes most of the remaining
// gap to the exact minimum (see tests).
func Refine(g *graph.Graph, cert Certificate, maxPasses int) Certificate {
	n := g.N()
	if len(cert.Set) == 0 || len(cert.Set) >= n {
		return cert
	}
	in := make([]bool, n)
	for _, u := range cert.Set {
		in[u] = true
	}
	size := len(cert.Set)
	volAll := 2 * g.M()
	volU := g.Volume(cert.Set)
	cutEdges := 0
	for _, e := range g.Edges() {
		if e.Latency <= cert.Ell && in[e.U] != in[e.V] {
			cutEdges++
		}
	}
	phiOf := func(cutE, vol int) float64 {
		den := vol
		if volAll-vol < den {
			den = volAll - vol
		}
		if den <= 0 {
			return 2 // worse than any real conductance
		}
		return float64(cutE) / float64(den)
	}
	best := phiOf(cutEdges, volU)

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := 0; v < n; v++ {
			// Moving v across the cut flips the cut-membership of its
			// latency-ℓ incident edges and shifts its degree between sides.
			if size == 1 && in[v] || size == n-1 && !in[v] {
				continue // never empty a side
			}
			dCut := 0
			for _, he := range g.Neighbors(v) {
				if he.Latency > cert.Ell {
					continue
				}
				if in[he.To] == in[v] {
					dCut++ // same side now; crossing after the move
				} else {
					dCut--
				}
			}
			dVol := g.Degree(v)
			if in[v] {
				dVol = -dVol
			}
			if phi := phiOf(cutEdges+dCut, volU+dVol); phi < best-1e-15 {
				best = phi
				cutEdges += dCut
				volU += dVol
				if in[v] {
					size--
				} else {
					size++
				}
				in[v] = !in[v]
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	out := Certificate{Ell: cert.Ell, Phi: best}
	for v := 0; v < n; v++ {
		if in[v] {
			out.Set = append(out.Set, v)
		}
	}
	return out
}

// PhiRefined combines the sweep heuristic with local refinement and returns
// the improved upper bound on φ_ℓ with its certificate.
func PhiRefined(g *graph.Graph, ell int, seed uint64) (Certificate, error) {
	cert, err := PhiHeuristicCut(g, ell, seed)
	if err != nil {
		return Certificate{}, err
	}
	if cert.Phi == 0 {
		return cert, nil
	}
	return Refine(g, cert, 20), nil
}
