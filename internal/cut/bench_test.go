package cut

import (
	"sync"
	"testing"

	"gossip/internal/graph"
)

func BenchmarkPhiExact16(b *testing.B) {
	g := graph.RandomLatencies(graph.GNP(16, 0.4, 1, true, 5), 1, 4, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PhiExact(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhiHeuristic256(b *testing.B) {
	g := graph.RingOfCliques(16, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PhiHeuristic(g, 8, uint64(i)+1)
	}
}

func BenchmarkPhiRefined256(b *testing.B) {
	g := graph.RingOfCliques(16, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PhiRefined(g, 8, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// withBackbone lowers the latency of a BFS spanning tree's edges to 1, so
// every G_ℓ is connected and the full φ_ℓ ladder is live — the workload the
// ladder engine exists for (a level with disconnected G_ℓ short-circuits to
// φ_ℓ = 0 in both implementations). This models overlay networks with a fast
// core and heterogeneous long links.
func withBackbone(g *graph.Graph) *graph.Graph {
	seen := make([]bool, g.N())
	seen[0] = true
	queue := []graph.NodeID{0}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, he := range g.Neighbors(u) {
			if !seen[he.To] {
				seen[he.To] = true
				if err := g.SetLatency(he.ID, 1); err != nil {
					panic(err)
				}
				queue = append(queue, he.To)
			}
		}
	}
	return g
}

// Ladder benchmark instances are built once and shared: generation (the
// Chung-Lu sampler is quadratic in n) must not pollute the timings.
var (
	benchOnce    sync.Once
	benchChungLu *graph.Graph // n = 20k power-law graph, 8 latency classes
	benchRing    *graph.Graph // ~1k ring of cliques, 6 latency classes
)

func benchGraphs() (*graph.Graph, *graph.Graph) {
	benchOnce.Do(func() {
		benchChungLu = withBackbone(graph.RandomLatencies(graph.ChungLu(20000, 2.5, 8, 1, 1), 1, 8, 1))
		benchRing = withBackbone(graph.RandomLatencies(graph.RingOfCliques(16, 64, 6), 1, 6, 1))
	})
	return benchChungLu, benchRing
}

// BenchmarkWeightedConductanceChungLu20k is the headline ladder benchmark:
// the CSR engine on a 20k-node Chung-Lu graph. Compare against the *Ref
// variant below for the engine-vs-frozen-pipeline speedup recorded in
// BENCH_pr5.json.
func BenchmarkWeightedConductanceChungLu20k(b *testing.B) {
	g, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WeightedConductance(g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedConductanceChungLu20kRef runs the frozen pre-CSR per-level
// pipeline on the same instance.
func BenchmarkWeightedConductanceChungLu20kRef(b *testing.B) {
	g, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WeightedConductanceRef(g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedConductanceRing1k is the quick-signal ladder pair for CI:
// same comparison on a ~1k-node ring of cliques.
func BenchmarkWeightedConductanceRing1k(b *testing.B) {
	_, g := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WeightedConductance(g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightedConductanceRing1kRef(b *testing.B) {
	_, g := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WeightedConductanceRef(g, 1); err != nil {
			b.Fatal(err)
		}
	}
}
