package cut

import (
	"testing"

	"gossip/internal/graph"
)

func BenchmarkPhiExact16(b *testing.B) {
	g := graph.RandomLatencies(graph.GNP(16, 0.4, 1, true, 5), 1, 4, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PhiExact(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhiHeuristic256(b *testing.B) {
	g := graph.RingOfCliques(16, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PhiHeuristic(g, 8, uint64(i)+1)
	}
}

func BenchmarkPhiRefined256(b *testing.B) {
	g := graph.RingOfCliques(16, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PhiRefined(g, 8, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
