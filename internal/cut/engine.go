package cut

import (
	"math"
	"slices"
	"sort"
	"sync"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// This file is the CSR-backed conductance engine shared by the single-level
// entry points (PhiHeuristic, PhiHeuristicCut, PhiRefined, Refine) and the
// ladder driver in ladder.go. Three ideas carry the speedup over the frozen
// pipeline in reference.go:
//
//   - Prefix views. All inner loops — sweeps, refinement moves, spectral
//     walk steps — iterate csr.Prefix(u, ends), a contiguous slice of the
//     latency-sorted neighbor row, instead of re-filtering every adjacency
//     list by `Latency <= ℓ`.
//   - Shared candidates. The BFS-distance and random orderings depend only
//     on (g, seed), never on ℓ; the per-level pipeline recomputed them (four
//     Dijkstra sweeps, two shuffles, and their sorts) at every ladder level.
//     Here they are computed once per view and reused.
//   - Pooled scratch. Position maps, membership flags, and spectral vectors
//     come from a sync.Pool, so a ladder evaluation allocates O(levels)
//     certificates instead of O(levels · n) scratch.

// view bundles the CSR snapshot of a graph with the ℓ-independent candidate
// orderings. A view is safe for concurrent use once built; ladder workers
// share it read-only.
type view struct {
	g    *graph.Graph
	csr  *graph.CSR
	seed uint64

	sharedOnce sync.Once
	shared     [][]graph.NodeID
}

func newView(g *graph.Graph, seed uint64) *view {
	return &view{g: g, csr: graph.BuildCSR(g), seed: seed}
}

// sharedOrders returns the candidate orderings that do not depend on ℓ:
// BFS distance orders from node 0 and three sampled sources, then two
// random shuffles — the exact sequence the per-level pipeline draws from
// rng.Stream(seed, 0x6873) at every level (the stream is re-seeded per
// level, so each level saw identical orderings; computing them once is a
// pure deduplication, not a behavior change).
func (v *view) sharedOrders() [][]graph.NodeID {
	v.sharedOnce.Do(func() {
		n := v.csr.N()
		r := rng.Stream(v.seed, 0x6873) // "hs"
		sources := []graph.NodeID{0}
		for i := 0; i < 3 && n > 1; i++ {
			sources = append(sources, r.Intn(n))
		}
		dist := make([]int32, n)
		keys := make([]uint64, n)
		var heapBuf []int64
		for _, s := range sources {
			heapBuf = v.csr.DistancesFrom(s, dist, heapBuf)
			// Sorting (dist, node) packed into one machine word equals a
			// stable sort by distance from the identity order, minus the
			// comparator calls. Distances are nonnegative and < 2^31.
			for u := 0; u < n; u++ {
				keys[u] = uint64(uint32(dist[u]))<<32 | uint64(uint32(u))
			}
			slices.Sort(keys)
			order := make([]graph.NodeID, n)
			for i, k := range keys {
				order[i] = graph.NodeID(uint32(k))
			}
			v.shared = append(v.shared, order)
		}
		for i := 0; i < 2; i++ {
			order := identityOrder(n)
			r.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
			v.shared = append(v.shared, order)
		}
	})
	return v.shared
}

// scratch holds the per-evaluation buffers of one worker. Every field is
// fully overwritten before use, so pool reuse can never leak state between
// levels (or between graphs of equal size).
type scratch struct {
	pos  []int32   // node -> position in the ordering under sweep
	in   []bool    // cut membership during refinement
	deg  []float64 // level degrees for the spectral walk
	x, y []float64 // spectral iteration vectors
	ends []int32   // level cursor for single-level entry points
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if cap(sc.pos) < n {
		sc.pos = make([]int32, n)
		sc.in = make([]bool, n)
		sc.deg = make([]float64, n)
		sc.x = make([]float64, n)
		sc.y = make([]float64, n)
		sc.ends = make([]int32, n)
	}
	sc.pos = sc.pos[:n]
	sc.in = sc.in[:n]
	sc.deg = sc.deg[:n]
	sc.x = sc.x[:n]
	sc.y = sc.y[:n]
	sc.ends = sc.ends[:n]
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// heuristicCert is the single-level entry: it positions the cursor at ℓ,
// takes the disconnected shortcut (φ_ℓ = 0 with the smallest component as
// witness), cold-starts the spectral embedding, and evaluates the sweep
// candidates with the given refinement budget.
func (v *view) heuristicCert(ell, refinePasses int) Certificate {
	n := v.csr.N()
	sc := getScratch(n)
	defer putScratch(sc)
	ends := sc.ends
	v.csr.ResetEnds(ends)
	v.csr.AdvanceEnds(ends, ell)
	if comps := v.csr.ComponentsAt(ends); len(comps) > 1 {
		return Certificate{Set: smallestComponentSet(comps), Ell: ell, Phi: 0}
	}
	coldStart(sc.x, v.seed)
	spectral := spectralAt(v.csr, ends, sc.x, sc, spectralIterBudget(n))
	return v.levelCert(ell, ends, spectral, refinePasses, sc)
}

// levelCert evaluates one connected level: best sweep cut over the spectral
// ordering followed by the shared orderings (strict minimum, so earlier
// candidates win ties — the same tie-break as the per-level pipeline), then
// greedy refinement.
func (v *view) levelCert(ell int, ends []int32, spectral []graph.NodeID, refinePasses int, sc *scratch) Certificate {
	best := Certificate{Ell: ell, Phi: math.Inf(1)}
	consider := func(order []graph.NodeID) {
		prefix, phi := bestSweepAt(v.csr, order, ends, sc)
		if phi < best.Phi {
			best.Phi = phi
			best.Set = append(best.Set[:0], order[:prefix]...)
		}
	}
	consider(spectral)
	for _, o := range v.sharedOrders() {
		consider(o)
	}
	if refinePasses > 0 && best.Phi > 0 {
		best = refineAt(v.csr, best, ends, refinePasses, sc)
	}
	return best
}

// bestSweepAt evaluates all prefix cuts of the ordering against the G_ℓ
// prefix view and returns the minimizing prefix length and its weight-ℓ
// conductance.
func bestSweepAt(csr *graph.CSR, order []graph.NodeID, ends []int32, sc *scratch) (int, float64) {
	n := csr.N()
	pos := sc.pos
	for i, u := range order {
		pos[u] = int32(i)
	}
	volAll := csr.VolAll()
	volU, cutEdges := 0, 0
	best := math.Inf(1)
	bestPrefix := 1
	for i := 0; i < n-1; i++ {
		u := order[i]
		volU += csr.Degree(u)
		for _, to := range csr.Prefix(u, ends) {
			if pos[to] > int32(i) {
				cutEdges++
			} else {
				cutEdges--
			}
		}
		den := volU
		if volAll-volU < den {
			den = volAll - volU
		}
		if den == 0 {
			continue
		}
		if phi := float64(cutEdges) / float64(den); phi < best {
			best = phi
			bestPrefix = i + 1
		}
	}
	return bestPrefix, best
}

// refineAt improves a cut by greedy single-node moves over the prefix view,
// with arithmetic identical to the pre-CSR Refine: same visit order, same
// move condition, same tie epsilon.
func refineAt(csr *graph.CSR, cert Certificate, ends []int32, maxPasses int, sc *scratch) Certificate {
	n := csr.N()
	if len(cert.Set) == 0 || len(cert.Set) >= n {
		return cert
	}
	in := sc.in
	for i := range in {
		in[i] = false
	}
	volU := 0
	for _, u := range cert.Set {
		in[u] = true
		volU += csr.Degree(u)
	}
	size := len(cert.Set)
	volAll := csr.VolAll()
	cutEdges := 0
	for u := 0; u < n; u++ {
		if !in[u] {
			continue
		}
		for _, to := range csr.Prefix(u, ends) {
			if !in[to] {
				cutEdges++
			}
		}
	}
	phiOf := func(cutE, vol int) float64 {
		den := vol
		if volAll-vol < den {
			den = volAll - vol
		}
		if den <= 0 {
			return 2 // worse than any real conductance
		}
		return float64(cutE) / float64(den)
	}
	best := phiOf(cutEdges, volU)

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for u := 0; u < n; u++ {
			// Moving u across the cut flips the cut-membership of its
			// latency-ℓ incident edges and shifts its degree between sides.
			if size == 1 && in[u] || size == n-1 && !in[u] {
				continue // never empty a side
			}
			dCut := 0
			for _, to := range csr.Prefix(u, ends) {
				if in[to] == in[u] {
					dCut++ // same side now; crossing after the move
				} else {
					dCut--
				}
			}
			dVol := csr.Degree(u)
			if in[u] {
				dVol = -dVol
			}
			if phi := phiOf(cutEdges+dCut, volU+dVol); phi < best-1e-15 {
				best = phi
				cutEdges += dCut
				volU += dVol
				if in[u] {
					size--
				} else {
					size++
				}
				in[u] = !in[u]
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	out := Certificate{Ell: cert.Ell, Phi: best}
	for u := 0; u < n; u++ {
		if in[u] {
			out.Set = append(out.Set, u)
		}
	}
	return out
}

// smallestComponentSet returns the smallest component (breaking size ties
// toward the one with the smallest minimum member, comps order) as a sorted
// node list — the canonical φ_ℓ = 0 witness of a disconnected level.
func smallestComponentSet(comps [][]graph.NodeID) []graph.NodeID {
	small := comps[0]
	for _, c := range comps[1:] {
		if len(c) < len(small) {
			small = c
		}
	}
	out := append([]graph.NodeID(nil), small...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// coldStart fills x with the standard random start of the spectral
// iteration: rng.Stream(seed, 0x7370), one uniform draw per coordinate —
// the same vector the per-level pipeline draws at every level.
func coldStart(x []float64, seed uint64) {
	r := rng.Stream(seed, 0x7370) // "sp"
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
}

// spectralIterBudget is the fixed iteration cap of a cold-started power
// iteration, unchanged from the pre-CSR pipeline; early exit can only
// shorten it.
func spectralIterBudget(n int) int {
	return 20 + 4*int(math.Log2(float64(n)+1))
}

// warmIterBudget is the continuation cap for a warm-started level of the
// ladder chain: the start vector is the previous level's converged iterate
// and G_ℓ grew by one latency class, so a quarter of the cold budget —
// bounded below so tiny graphs still move — recovers the embedding. The
// ladder chain as a whole therefore costs one cold run plus L short
// continuations instead of L full budgets.
func warmIterBudget(n int) int {
	if b := spectralIterBudget(n) / 4; b > 8 {
		return b
	}
	return 8
}

// spectralAt orders nodes by an approximate second eigenvector of the lazy
// random walk on G_ℓ (the prefix view described by ends), computed by power
// iteration with deflation of the stationary component. x seeds the
// iteration and holds the converged vector on return: pass coldStart output
// for a fresh embedding, or the previous ladder level's vector as a warm
// start — G_ℓ grows monotonically in ℓ, so the previous eigenvector is a
// near-fixpoint and the iteration converges in a handful of steps.
//
// The iteration stops as soon as the Rayleigh quotient of the deflated walk
// operator is stable for two consecutive steps (relative change <= 1e-12):
// past that point further iterations only rescale the dominant component
// and cannot meaningfully reorder the embedding. iters is the hard cap:
// spectralIterBudget(n) for a cold start, warmIterBudget(n) for a ladder
// continuation.
func spectralAt(csr *graph.CSR, ends []int32, x []float64, sc *scratch, iters int) []graph.NodeID {
	n := csr.N()
	deg := sc.deg
	total := 0.0
	for u := 0; u < n; u++ {
		d := float64(csr.LevelDegree(u, ends))
		if d == 0 {
			d = 1 // isolated in G_ℓ: self-loop only
		}
		deg[u] = d
		total += d
	}
	y := sc.y
	prevQ := math.Inf(1)
	stable := 0
	for it := 0; it < iters; it++ {
		// Deflate the stationary distribution π(u) ∝ deg(u): remove the
		// degree-weighted mean.
		mean := 0.0
		for u := 0; u < n; u++ {
			mean += deg[u] * x[u]
		}
		mean /= total
		for u := 0; u < n; u++ {
			x[u] -= mean
		}
		// One lazy-walk step: y = (x + P x)/2 with P = D⁻¹A on G_ℓ, plus
		// the inner products for the Rayleigh quotient q = ⟨x,Wx⟩/⟨x,x⟩.
		xx, xy := 0.0, 0.0
		for u := 0; u < n; u++ {
			row := csr.Prefix(u, ends)
			if len(row) == 0 {
				y[u] = x[u]
			} else {
				sum := 0.0
				for _, to := range row {
					sum += x[to]
				}
				y[u] = 0.5*x[u] + 0.5*sum/float64(len(row))
			}
			xx += x[u] * x[u]
			xy += x[u] * y[u]
		}
		// Normalize to avoid underflow.
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			break
		}
		for u := 0; u < n; u++ {
			x[u] = y[u] / norm
		}
		if xx > 0 {
			q := xy / xx
			if math.Abs(q-prevQ) <= 1e-12*math.Max(1, math.Abs(q)) {
				if stable++; stable >= 2 {
					break
				}
			} else {
				stable = 0
			}
			prevQ = q
		}
	}
	order := identityOrder(n)
	// Index tiebreak == stable sort from the identity order, but on the
	// faster generic sorter (no reflection-based swaps).
	slices.SortFunc(order, func(a, b graph.NodeID) int {
		switch {
		case x[a] < x[b]:
			return -1
		case x[a] > x[b]:
			return 1
		default:
			return a - b
		}
	})
	return order
}
