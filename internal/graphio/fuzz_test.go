package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that anything it
// accepts round-trips losslessly.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 2\n0 1 1\n1 2 4\n")
	f.Add("# comment\n2 1\n0 1 9\n")
	f.Add("")
	f.Add("1 0\n")
	f.Add("2 1\n0 1 -3\n")
	f.Add("999999999999999999999 1\n0 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return // rejected input: fine, just must not panic
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write accepted graph: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if !sameGraph(g, back) {
			t.Fatal("round trip of accepted input altered the graph")
		}
	})
}

// FuzzDecodeJSON checks the JSON path likewise.
func FuzzDecodeJSON(f *testing.F) {
	f.Add(`{"n":3,"edges":[{"u":0,"v":1,"latency":2}]}`)
	f.Add(`{"n":0,"edges":[]}`)
	f.Add(`{`)
	f.Add(`{"n":-5}`)
	f.Add(`{"n":2,"edges":[{"u":0,"v":0,"latency":1}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		g, err := DecodeJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, g); err != nil {
			t.Fatalf("encode accepted graph: %v", err)
		}
		back, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("re-decode own output: %v", err)
		}
		if !sameGraph(g, back) {
			t.Fatal("round trip of accepted input altered the graph")
		}
	})
}
