// Package graphio serializes latency-weighted graphs: a JSON format used by
// the tools and a plain edge-list text format convenient for hand-authored
// topologies and interchange with other systems.
package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"gossip/internal/graph"
)

// MaxNodes bounds the node count accepted from untrusted input, so a
// malformed header cannot trigger an enormous allocation (found by fuzzing).
const MaxNodes = 1 << 22

// JSONGraph is the on-disk JSON shape.
type JSONGraph struct {
	N     int        `json:"n"`
	Edges []JSONEdge `json:"edges"`
}

// JSONEdge is one undirected edge.
type JSONEdge struct {
	U       int `json:"u"`
	V       int `json:"v"`
	Latency int `json:"latency"`
}

// EncodeJSON writes g as indented JSON.
func EncodeJSON(w io.Writer, g *graph.Graph) error {
	jg := JSONGraph{N: g.N(), Edges: make([]JSONEdge, 0, g.M())}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, JSONEdge{U: e.U, V: e.V, Latency: e.Latency})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jg); err != nil {
		return fmt.Errorf("graphio: encode: %w", err)
	}
	return nil
}

// DecodeJSON reads a graph from JSON, validating structure (no self loops,
// duplicates, or out-of-range endpoints).
func DecodeJSON(r io.Reader) (*graph.Graph, error) {
	var jg JSONGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("graphio: decode: %w", err)
	}
	return build(jg.N, jg.Edges)
}

func build(n int, edges []JSONEdge) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graphio: negative node count %d", n)
	}
	if n > MaxNodes {
		return nil, fmt.Errorf("graphio: node count %d exceeds limit %d", n, MaxNodes)
	}
	g := graph.New(n)
	for i, e := range edges {
		if _, err := g.AddEdge(e.U, e.V, e.Latency); err != nil {
			return nil, fmt.Errorf("graphio: edge %d: %w", i, err)
		}
	}
	return g, nil
}

// WriteEdgeList writes the text format:
//
//	<n> <m>
//	<u> <v> <latency>   (m lines)
//
// Lines beginning with '#' are comments on read.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.Latency)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graphio: write edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses the text format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	var (
		g      *graph.Graph
		wantM  int
		gotM   int
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if g == nil {
			var n int
			if _, err := fmt.Sscanf(line, "%d %d", &n, &wantM); err != nil {
				return nil, fmt.Errorf("graphio: line %d: header %q: %w", lineNo, line, err)
			}
			if n < 0 || wantM < 0 {
				return nil, fmt.Errorf("graphio: line %d: negative header values", lineNo)
			}
			if n > MaxNodes {
				return nil, fmt.Errorf("graphio: line %d: node count %d exceeds limit %d", lineNo, n, MaxNodes)
			}
			g = graph.New(n)
			continue
		}
		var u, v, lat int
		if _, err := fmt.Sscanf(line, "%d %d %d", &u, &v, &lat); err != nil {
			return nil, fmt.Errorf("graphio: line %d: edge %q: %w", lineNo, line, err)
		}
		if _, err := g.AddEdge(u, v, lat); err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", lineNo, err)
		}
		gotM++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graphio: empty input")
	}
	if gotM != wantM {
		return nil, fmt.Errorf("graphio: header declares %d edges, found %d", wantM, gotM)
	}
	return g, nil
}

// WriteDOT renders the graph in Graphviz DOT with latency labels.
func WriteDOT(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d [label=%d];\n", e.U, e.V, e.Latency)
	}
	fmt.Fprintln(bw, "}")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graphio: write DOT: %w", err)
	}
	return nil
}
