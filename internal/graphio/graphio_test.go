package graphio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gossip/internal/graph"
)

func sameGraph(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for _, e := range a.Edges() {
		if l, ok := b.EdgeLatency(e.U, e.V); !ok || l != e.Latency {
			return false
		}
	}
	return true
}

func TestJSONRoundTrip(t *testing.T) {
	g := graph.RandomLatencies(graph.RingOfCliques(3, 4, 2), 1, 7, 5)
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, g); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !sameGraph(g, back) {
		t.Error("JSON round trip altered the graph")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := graph.Grid(3, 4, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !sameGraph(g, back) {
		t.Error("edge list round trip altered the graph")
	}
}

func TestEdgeListCommentsAndBlanks(t *testing.T) {
	in := `# hand-authored triangle
3 3

0 1 2
# middle comment
1 2 3
0 2 4
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
	if l, _ := g.EdgeLatency(1, 2); l != 3 {
		t.Errorf("latency(1,2) = %d", l)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "empty", in: ""},
		{name: "bad header", in: "x y\n"},
		{name: "negative header", in: "-1 0\n"},
		{name: "bad edge line", in: "2 1\n0 x 1\n"},
		{name: "self loop", in: "2 1\n0 0 1\n"},
		{name: "duplicate", in: "2 2\n0 1 1\n1 0 2\n"},
		{name: "count mismatch", in: "3 2\n0 1 1\n"},
		{name: "out of range", in: "2 1\n0 5 1\n"},
		{name: "zero latency", in: "2 1\n0 1 0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tt.in)); err == nil {
				t.Errorf("input %q should fail", tt.in)
			}
		})
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "garbage", in: "{"},
		{name: "negative n", in: `{"n": -1, "edges": []}`},
		{name: "bad edge", in: `{"n": 2, "edges": [{"u":0,"v":0,"latency":1}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeJSON(strings.NewReader(tt.in)); err == nil {
				t.Errorf("input %q should fail", tt.in)
			}
		})
	}
}

func TestWriteDOT(t *testing.T) {
	g := graph.Path(3, 2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "0 -- 1 [label=2];") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("DOT output malformed:\n%s", out)
	}
}

func TestQuickRoundTripsPreserveGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		n := 3 + int(seed%12)
		g := graph.RandomLatencies(graph.GNP(n, 0.4, 1, true, seed), 1, 9, seed)
		var jb, eb bytes.Buffer
		if err := EncodeJSON(&jb, g); err != nil {
			return false
		}
		jg, err := DecodeJSON(&jb)
		if err != nil || !sameGraph(g, jg) {
			return false
		}
		if err := WriteEdgeList(&eb, g); err != nil {
			return false
		}
		eg, err := ReadEdgeList(&eb)
		return err == nil && sameGraph(g, eg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHugeNodeCountRejected(t *testing.T) {
	// Regression for a fuzzing find: a huge header node count must be
	// rejected before allocation, not OOM.
	if _, err := ReadEdgeList(strings.NewReader("9999999999999 1\n")); err == nil {
		t.Error("huge edge-list node count accepted")
	}
	if _, err := DecodeJSON(strings.NewReader(`{"n": 9999999999, "edges": []}`)); err == nil {
		t.Error("huge JSON node count accepted")
	}
}
