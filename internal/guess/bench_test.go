package guess

import (
	"testing"

	"gossip/internal/graph"
)

func BenchmarkAdaptiveSingleton(b *testing.B) {
	const m = 128
	for i := 0; i < b.N; i++ {
		target := graph.SingletonTarget(m, uint64(i)+1)
		res, err := Play(m, target, NewAdaptiveStrategy(uint64(i)), 100*m)
		if err != nil || !res.Solved {
			b.Fatalf("err=%v solved=%v", err, res.Solved)
		}
	}
}

func BenchmarkRandomP(b *testing.B) {
	const m = 128
	for i := 0; i < b.N; i++ {
		target := graph.RandomTarget(m, 0.1, uint64(i)+1)
		res, err := Play(m, target, NewRandomStrategy(uint64(i)), 1000*m)
		if err != nil || !res.Solved {
			b.Fatalf("err=%v solved=%v", err, res.Solved)
		}
	}
}
