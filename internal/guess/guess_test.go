package guess

import (
	"testing"
	"testing/quick"

	"gossip/internal/graph"
)

func TestPlayEmptyTarget(t *testing.T) {
	res, err := Play(4, nil, NewRandomStrategy(1), 100)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if !res.Solved || res.Rounds != 0 {
		t.Errorf("empty target should solve instantly: %+v", res)
	}
}

func TestPlayValidation(t *testing.T) {
	if _, err := Play(0, nil, NewRandomStrategy(1), 10); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := Play(4, []graph.Pair{{A: 4, B: 0}}, NewRandomStrategy(1), 10); err == nil {
		t.Error("out-of-range target should fail")
	}
}

func TestPlayGuessLimitEnforced(t *testing.T) {
	greedy := strategyFunc(func(m int, fb Feedback) []graph.Pair {
		out := make([]graph.Pair, 2*m+1)
		return out
	})
	if _, err := Play(4, []graph.Pair{{A: 0, B: 0}}, greedy, 10); err == nil {
		t.Error("strategies exceeding 2m guesses must be rejected")
	}
}

type strategyFunc func(m int, fb Feedback) []graph.Pair

func (f strategyFunc) Guess(m int, fb Feedback) []graph.Pair { return f(m, fb) }

func TestAdaptiveSolvesSingleton(t *testing.T) {
	const m = 32
	target := graph.SingletonTarget(m, 5)
	res, err := Play(m, target, NewAdaptiveStrategy(7), 10*m)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if !res.Solved {
		t.Fatal("adaptive strategy failed to solve singleton game")
	}
	// Lemma 4: Ω(m) — and the adaptive strategy needs at most ~m/2 rounds
	// since it makes 2m fresh guesses per round over m² candidates.
	if res.Rounds > m {
		t.Errorf("rounds = %d, want <= m = %d", res.Rounds, m)
	}
}

// TestLemma4LinearScaling verifies that singleton games cost Θ(m) rounds for
// the adaptive (near-optimal) player: doubling m roughly doubles the
// average round count.
func TestLemma4LinearScaling(t *testing.T) {
	avg := func(m int) float64 {
		const trials = 30
		total := 0
		for i := 0; i < trials; i++ {
			target := graph.SingletonTarget(m, uint64(100+i))
			res, err := Play(m, target, NewAdaptiveStrategy(uint64(i)), 10*m)
			if err != nil {
				t.Fatalf("Play(m=%d): %v", m, err)
			}
			if !res.Solved {
				t.Fatalf("m=%d trial %d unsolved", m, i)
			}
			total += res.Rounds
		}
		return float64(total) / trials
	}
	small, large := avg(32), avg(128)
	ratio := large / small
	if ratio < 2 || ratio > 8 {
		t.Errorf("rounds(128)/rounds(32) = %.2f, want ≈ 4 (linear in m)", ratio)
	}
}

// TestLemma5RandomVsAdaptive verifies the Lemma 5 separation on Random_p:
// the adaptive player needs Θ(1/p) rounds while the oblivious random player
// (push-pull analogue) needs Θ(log m / p).
func TestLemma5RandomVsAdaptive(t *testing.T) {
	const m = 128
	p := 0.05
	avgRounds := func(mk func(i int) Strategy) float64 {
		const trials = 10
		total := 0
		for i := 0; i < trials; i++ {
			target := graph.RandomTarget(m, p, uint64(i))
			res, err := Play(m, target, mk(i), 200*m)
			if err != nil {
				t.Fatalf("Play: %v", err)
			}
			if !res.Solved {
				t.Fatalf("trial %d unsolved", i)
			}
			total += res.Rounds
		}
		return float64(total) / trials
	}
	adaptive := avgRounds(func(i int) Strategy { return NewAdaptiveStrategy(uint64(i)) })
	random := avgRounds(func(i int) Strategy { return NewRandomStrategy(uint64(i)) })
	if random < 1.5*adaptive {
		t.Errorf("random strategy (%.1f rounds) should pay a log m factor over adaptive (%.1f rounds)",
			random, adaptive)
	}
}

func TestRandomStrategySolves(t *testing.T) {
	const m = 64
	target := graph.RandomTarget(m, 0.1, 3)
	res, err := Play(m, target, NewRandomStrategy(9), 100*m)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if !res.Solved {
		t.Error("random strategy did not solve Random_p game within budget")
	}
}

func TestEquationTwoColumnElimination(t *testing.T) {
	// Hitting one pair in column b removes every pair in that column
	// (Equation 2).
	target := []graph.Pair{{A: 0, B: 1}, {A: 2, B: 1}, {A: 3, B: 1}}
	oneShot := strategyFunc(func(m int, fb Feedback) []graph.Pair {
		return []graph.Pair{{A: 2, B: 1}}
	})
	res, err := Play(4, target, oneShot, 5)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if !res.Solved || res.Rounds != 1 {
		t.Errorf("column elimination failed: %+v", res)
	}
}

func TestQuickAdaptiveAlwaysSolvesWithinBudget(t *testing.T) {
	f := func(seed uint64) bool {
		m := 8 + int(seed%24)
		target := graph.RandomTarget(m, 0.2, seed)
		res, err := Play(m, target, NewAdaptiveStrategy(seed), 4*m)
		return err == nil && res.Solved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundsCoverGuesses(t *testing.T) {
	// Total guesses never exceed 2m per round.
	f := func(seed uint64) bool {
		m := 8 + int(seed%16)
		target := graph.SingletonTarget(m, seed)
		res, err := Play(m, target, NewAdaptiveStrategy(seed), 10*m)
		return err == nil && res.Guesses <= 2*m*res.Rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
