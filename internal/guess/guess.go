// Package guess implements the combinatorial guessing game of Section 3.1,
// Guessing(2m, P): Alice submits up to 2m guesses from A×B per round; the
// oracle reveals the correct ones and removes from the target set every pair
// whose B-component was hit (Equation 2). The game ends when the target set
// is empty.
//
// The game underlies the paper's lower bounds: Lemma 4 (singleton targets
// need Ω(m) rounds), Lemma 5 (Random_p targets need Ω(1/p) rounds in general
// and Θ(log m / p) rounds for the uniform random strategy that models
// push-pull).
package guess

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// Feedback is what Alice learns after a round: which of her guesses were in
// the target set, and which B-components are now fully eliminated.
type Feedback struct {
	Round int
	Hits  []graph.Pair
	// DoneB[b] is true once b's column has been eliminated from the target.
	DoneB []bool
}

// Strategy produces Alice's guesses for one round: at most 2m pairs.
// The first call has a zero-value Feedback (Round 0, no hits).
type Strategy interface {
	Guess(m int, fb Feedback) []graph.Pair
}

// Result summarizes a play of the game.
type Result struct {
	Rounds  int
	Guesses int
	Solved  bool
}

// Play runs the game on target until it is solved or maxRounds elapse.
func Play(m int, target []graph.Pair, s Strategy, maxRounds int) (Result, error) {
	if m < 1 {
		return Result{}, fmt.Errorf("guess: m must be >= 1, got %d", m)
	}
	// aliveByB[b] holds the not-yet-removed target pairs in column b.
	aliveByB := make(map[int]map[int]bool, len(target))
	for _, p := range target {
		if p.A < 0 || p.A >= m || p.B < 0 || p.B >= m {
			return Result{}, fmt.Errorf("guess: target pair %v out of range [0,%d)", p, m)
		}
		col := aliveByB[p.B]
		if col == nil {
			col = make(map[int]bool)
			aliveByB[p.B] = col
		}
		col[p.A] = true
	}
	res := Result{}
	fb := Feedback{DoneB: make([]bool, m)}
	if len(aliveByB) == 0 {
		res.Solved = true
		return res, nil
	}
	for round := 1; round <= maxRounds; round++ {
		guesses := s.Guess(m, fb)
		if len(guesses) > 2*m {
			return Result{}, fmt.Errorf("guess: strategy returned %d > 2m=%d guesses", len(guesses), 2*m)
		}
		res.Rounds = round
		res.Guesses += len(guesses)
		var hits []graph.Pair
		for _, g := range guesses {
			if col, ok := aliveByB[g.B]; ok && col[g.A] {
				hits = append(hits, g)
			}
		}
		// Equation 2: remove every target pair whose B-component was hit.
		for _, h := range hits {
			delete(aliveByB, h.B)
			fb.DoneB[h.B] = true
		}
		fb.Round = round
		fb.Hits = hits
		if len(aliveByB) == 0 {
			res.Solved = true
			return res, nil
		}
	}
	return res, nil
}

// scriptedStrategy replays a fixed per-round guess schedule.
type scriptedStrategy struct {
	rounds [][]graph.Pair
	next   int
}

func (s *scriptedStrategy) Guess(m int, _ Feedback) []graph.Pair {
	if s.next >= len(s.rounds) {
		return nil
	}
	out := s.rounds[s.next]
	s.next++
	return out
}

// PlayScripted replays a fixed schedule of per-round guesses against the
// oracle — the mechanism of Lemma 3, where Alice derives her guesses from a
// simulated gossip execution: every activation of a cross edge in round r of
// the gossip algorithm becomes a round-r guess. The game budget is the
// script length.
func PlayScripted(m int, target []graph.Pair, rounds [][]graph.Pair) (Result, error) {
	return Play(m, target, &scriptedStrategy{rounds: rounds}, max(1, len(rounds)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RandomStrategy models push-pull gossip on the gadget (Lemma 5's second
// part): each round it guesses, for each a ∈ A, a uniformly random b ∈ B,
// and for each b ∈ B, a uniformly random a ∈ A — obliviously of feedback.
type RandomStrategy struct {
	r *randSource
}

// NewRandomStrategy returns a deterministic random strategy for the seed.
func NewRandomStrategy(seed uint64) *RandomStrategy {
	return &RandomStrategy{r: newRandSource(seed)}
}

// Guess implements Strategy.
func (s *RandomStrategy) Guess(m int, _ Feedback) []graph.Pair {
	out := make([]graph.Pair, 0, 2*m)
	for a := 0; a < m; a++ {
		out = append(out, graph.Pair{A: a, B: s.r.intn(m)})
	}
	for b := 0; b < m; b++ {
		out = append(out, graph.Pair{A: s.r.intn(m), B: b})
	}
	return out
}

// AdaptiveStrategy is the natural best-effort adaptive player: it never
// repeats a guess, skips eliminated columns, and spreads its 2m guesses
// round-robin over the columns that may still contain targets. Against a
// singleton target it is within a factor two of optimal, so its round count
// exhibits the Ω(m) law of Lemma 4; against Random_p it realizes the Θ(1/p)
// general bound of Lemma 5.
type AdaptiveStrategy struct {
	tried [][]int // tried[b] = next untried a cursor, per column, as permutation index
	perm  [][]int
	r     *randSource
}

// NewAdaptiveStrategy returns a deterministic adaptive player.
func NewAdaptiveStrategy(seed uint64) *AdaptiveStrategy {
	return &AdaptiveStrategy{r: newRandSource(seed)}
}

// Guess implements Strategy.
func (s *AdaptiveStrategy) Guess(m int, fb Feedback) []graph.Pair {
	if s.perm == nil {
		s.perm = make([][]int, m)
		s.tried = make([][]int, m)
		for b := 0; b < m; b++ {
			p := make([]int, m)
			for i := range p {
				p[i] = i
			}
			s.r.shuffle(p)
			s.perm[b] = p
			s.tried[b] = []int{0}
		}
	}
	out := make([]graph.Pair, 0, 2*m)
	for len(out) < 2*m {
		progressed := false
		for b := 0; b < m && len(out) < 2*m; b++ {
			if fb.DoneB != nil && fb.DoneB[b] {
				continue
			}
			cur := &s.tried[b][0]
			if *cur >= m {
				continue
			}
			out = append(out, graph.Pair{A: s.perm[b][*cur], B: b})
			*cur++
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return out
}

// randSource is a tiny deterministic RNG wrapper to keep strategies
// reproducible without importing math/rand at every call site.
type randSource struct{ state uint64 }

func newRandSource(seed uint64) *randSource {
	return &randSource{state: rng.Hash(seed, 0x6777)} // "gw"
}

func (r *randSource) next() uint64 {
	r.state = rng.Hash(r.state)
	return r.state
}

func (r *randSource) intn(n int) int {
	return int(r.next() % uint64(n))
}

func (r *randSource) shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
