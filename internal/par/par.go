// Package par is the repository's shared deterministic fan-out harness: a
// bounded worker pool that evaluates independent cells and merges results in
// index order. It was extracted from the experiment harness (internal/exp)
// so that analysis code — the conductance φ_ℓ ladder in internal/cut — can
// fan independent work across the same pool without an import cycle.
//
// The discipline is the one established by the PR 3 experiment harness:
// every cell owns its inputs (seed, level, scratch), cells never share
// mutable state, and results are merged in index order, so a parallel run is
// byte-identical to a sequential one. Determinism is per-cell, not
// per-schedule.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the number of concurrent cells per Map call.
// 1 disables parallelism entirely.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers sets the per-call worker cap (n <= 1 forces sequential
// execution) and returns the previous value. The cap is global: experiment
// sweeps and conductance ladders share it.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers returns the current per-call worker cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// Map evaluates fn for every index in [0, n) — concurrently when the worker
// cap allows — and returns the results in index order. On failure it returns
// the error of the lowest failing index, matching what a sequential loop
// would surface. Nested calls are safe: each call bounds only its own
// goroutines, so an outer sweep blocked in Map never starves its inner
// loops.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	w := MaxWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = fn(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
