package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSetMaxWorkersClamps(t *testing.T) {
	orig := MaxWorkers()
	defer SetMaxWorkers(orig)
	if prev := SetMaxWorkers(5); prev != orig {
		t.Errorf("SetMaxWorkers returned %d, want previous value %d", prev, orig)
	}
	if got := MaxWorkers(); got != 5 {
		t.Errorf("MaxWorkers() = %d, want 5", got)
	}
	SetMaxWorkers(-3)
	if got := MaxWorkers(); got != 1 {
		t.Errorf("MaxWorkers() after SetMaxWorkers(-3) = %d, want 1", got)
	}
}

func TestMapIndexOrder(t *testing.T) {
	orig := SetMaxWorkers(4)
	defer SetMaxWorkers(orig)
	var calls atomic.Int64
	out, err := Map(200, func(i int) (int, error) {
		calls.Add(1)
		return 3 * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 200 {
		t.Errorf("fn called %d times, want 200", calls.Load())
	}
	for i, v := range out {
		if v != 3*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 3*i)
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	orig := SetMaxWorkers(8)
	defer SetMaxWorkers(orig)
	_, err := Map(64, func(i int) (int, error) {
		if i%9 == 4 { // fails at 4, 13, 22, ...
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "cell 4 failed" {
		t.Fatalf("err = %v, want the lowest failing index (cell 4)", err)
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	orig := SetMaxWorkers(1)
	defer SetMaxWorkers(orig)
	var calls atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(10, func(i int) (int, error) {
		calls.Add(1)
		if i == 5 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls.Load() != 6 {
		t.Errorf("sequential mode ran %d cells after the failure, want exactly 6", calls.Load())
	}
}

func TestMapNested(t *testing.T) {
	orig := SetMaxWorkers(2)
	defer SetMaxWorkers(orig)
	out, err := Map(6, func(i int) ([]int, error) {
		return Map(6, func(j int) (int, error) { return i*6 + j, nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, inner := range out {
		for j, v := range inner {
			if v != i*6+j {
				t.Fatalf("out[%d][%d] = %d, want %d", i, j, v, i*6+j)
			}
		}
	}
}
