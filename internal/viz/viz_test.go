package viz

import (
	"strings"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestTimelineBasic(t *testing.T) {
	events := []sim.TraceEvent{
		{Kind: sim.TraceInitiate, Round: 1, From: 0, To: 1, EdgeID: 0, Latency: 4},
		{Kind: sim.TraceRequest, Round: 3, From: 0, To: 1, EdgeID: 0, Latency: 4},
		{Kind: sim.TraceResponse, Round: 5, From: 1, To: 0, EdgeID: 0, Latency: 4},
		{Kind: sim.TraceCrash, Round: 6, From: 1, To: -1},
	}
	var sb strings.Builder
	if err := Timeline(&sb, 2, events, TimelineOptions{Title: "demo"}); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "demo", "rounds 1-5", "ℓ=4", "✕", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineOpenEndedExchange(t *testing.T) {
	// An initiation whose response never arrives (crashed responder)
	// renders as an open-ended grey bar.
	events := []sim.TraceEvent{
		{Kind: sim.TraceInitiate, Round: 2, From: 0, To: 1, EdgeID: 0, Latency: 9},
	}
	var sb strings.Builder
	if err := Timeline(&sb, 2, events, TimelineOptions{}); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	if !strings.Contains(sb.String(), "#cccccc") {
		t.Error("open-ended exchange not rendered grey")
	}
}

func TestTimelineValidation(t *testing.T) {
	var sb strings.Builder
	if err := Timeline(&sb, 0, nil, TimelineOptions{}); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestTimelineFromLiveRun(t *testing.T) {
	g := graph.Dumbbell(4, 6)
	var rec sim.Recorder
	nw := sim.NewNetwork(g, sim.Config{Seed: 1, MaxRounds: 100, Trace: rec.Tracer()})
	for u := 0; u < g.N(); u++ {
		nw.SetHandler(u, sim.NewProc(func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				p.Exchange(p.Rand().Intn(p.Degree()), nil)
			}
		}))
	}
	if _, err := nw.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sb strings.Builder
	if err := Timeline(&sb, g.N(), rec.Events, TimelineOptions{Title: "dumbbell"}); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	out := sb.String()
	if strings.Count(out, "<rect") < 5 {
		t.Errorf("expected many exchange bars, got %d", strings.Count(out, "<rect"))
	}
	// Latency-6 bridge exchanges must appear with their color class.
	if !strings.Contains(out, "ℓ=6") && !strings.Contains(out, "ℓ=1") {
		t.Error("no latency annotations found")
	}
}

func TestTimelineClipping(t *testing.T) {
	events := []sim.TraceEvent{
		{Kind: sim.TraceInitiate, Round: 1, From: 0, To: 1, EdgeID: 0, Latency: 2},
		{Kind: sim.TraceResponse, Round: 3, From: 1, To: 0, EdgeID: 0, Latency: 2},
		{Kind: sim.TraceInitiate, Round: 50, From: 0, To: 1, EdgeID: 0, Latency: 2},
		{Kind: sim.TraceResponse, Round: 52, From: 1, To: 0, EdgeID: 0, Latency: 2},
	}
	var sb strings.Builder
	if err := Timeline(&sb, 2, events, TimelineOptions{MaxRounds: 10}); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	if strings.Contains(sb.String(), "rounds 50-52") {
		t.Error("bar beyond MaxRounds not clipped")
	}
}
