// Package viz renders a run's event trace as an SVG timeline: one lane per
// node, one bar per exchange spanning initiation to response delivery,
// colored by edge latency. Useful for explaining why a protocol spends its
// rounds where it does (e.g. the long bridge bars of a dumbbell broadcast).
package viz

import (
	"fmt"
	"io"
	"sort"

	"gossip/internal/sim"
)

// TimelineOptions controls the rendering.
type TimelineOptions struct {
	// MaxRounds clips the horizontal axis (0 = full trace).
	MaxRounds int
	// LaneHeight is the pixel height per node lane (default 14).
	LaneHeight int
	// RoundWidth is the pixel width per round (default 8).
	RoundWidth int
	// Title is drawn above the timeline.
	Title string
}

type bar struct {
	from, to sim.TraceKind
	node     int
	start    int
	end      int
	latency  int
	peer     int
}

// Timeline writes an SVG visualization of the trace for a run over n nodes.
func Timeline(w io.Writer, n int, events []sim.TraceEvent, opts TimelineOptions) error {
	if n <= 0 {
		return fmt.Errorf("viz: need n > 0, got %d", n)
	}
	if opts.LaneHeight <= 0 {
		opts.LaneHeight = 14
	}
	if opts.RoundWidth <= 0 {
		opts.RoundWidth = 8
	}

	// Pair initiations with their responses per (from, to, edge) FIFO.
	type key struct{ from, to, edge int }
	open := make(map[key][]int)
	var bars []bar
	var crashes []sim.TraceEvent
	maxRound := 1
	for _, ev := range events {
		if ev.Round > maxRound {
			maxRound = ev.Round
		}
		switch ev.Kind {
		case sim.TraceInitiate:
			k := key{from: ev.From, to: ev.To, edge: ev.EdgeID}
			open[k] = append(open[k], ev.Round)
		case sim.TraceResponse:
			// Response is delivered to the initiator ev.To from ev.From.
			k := key{from: ev.To, to: ev.From, edge: ev.EdgeID}
			q := open[k]
			if len(q) == 0 {
				continue // lost initiation (crash); skip
			}
			open[k] = q[1:]
			bars = append(bars, bar{
				node:    ev.To,
				start:   q[0],
				end:     ev.Round,
				latency: ev.Latency,
				peer:    ev.From,
			})
		case sim.TraceCrash:
			crashes = append(crashes, ev)
		}
	}
	// Unanswered initiations (in flight at the end, or dropped by crashes)
	// render as open-ended bars.
	for k, starts := range open {
		for _, s := range starts {
			bars = append(bars, bar{node: k.from, start: s, end: -1, peer: k.to})
		}
	}
	sort.Slice(bars, func(i, j int) bool {
		if bars[i].node != bars[j].node {
			return bars[i].node < bars[j].node
		}
		return bars[i].start < bars[j].start
	})

	if opts.MaxRounds > 0 && maxRound > opts.MaxRounds {
		maxRound = opts.MaxRounds
	}
	const leftMargin, topMargin = 40, 24
	width := leftMargin + (maxRound+1)*opts.RoundWidth + 10
	height := topMargin + n*opts.LaneHeight + 10

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height)
	fmt.Fprintf(w, `<text x="4" y="14" font-size="12" font-family="monospace">%s</text>`+"\n", opts.Title)
	// Lanes.
	for v := 0; v < n; v++ {
		y := topMargin + v*opts.LaneHeight
		fmt.Fprintf(w, `<text x="2" y="%d" font-size="9" font-family="monospace">%d</text>`+"\n",
			y+opts.LaneHeight-4, v)
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n",
			leftMargin, y+opts.LaneHeight/2, width-10, y+opts.LaneHeight/2)
	}
	// Exchange bars.
	for _, b := range bars {
		if b.start > maxRound {
			continue
		}
		end := b.end
		openEnded := end < 0
		if openEnded || end > maxRound {
			end = maxRound
		}
		x := leftMargin + b.start*opts.RoundWidth
		wpx := (end - b.start + 1) * opts.RoundWidth
		y := topMargin + b.node*opts.LaneHeight + 2
		fill := latencyColor(b.latency)
		if openEnded {
			fill = "#cccccc"
		}
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" opacity="0.8">`+
			`<title>node %d ↔ %d: rounds %d-%d (ℓ=%d)</title></rect>`+"\n",
			x, y, wpx, opts.LaneHeight-4, fill, b.node, b.peer, b.start, b.end, b.latency)
	}
	// Crash markers.
	for _, c := range crashes {
		if c.Round > maxRound {
			continue
		}
		x := leftMargin + c.Round*opts.RoundWidth
		y := topMargin + c.From*opts.LaneHeight
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="11" fill="red">✕</text>`+"\n",
			x, y+opts.LaneHeight-3)
	}
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}

// latencyColor maps an edge latency to a stable color: fast = green,
// medium = amber, slow = red-ish, on a small fixed ladder.
func latencyColor(lat int) string {
	switch {
	case lat <= 1:
		return "#4caf50"
	case lat <= 3:
		return "#8bc34a"
	case lat <= 8:
		return "#ffc107"
	case lat <= 20:
		return "#ff9800"
	default:
		return "#f44336"
	}
}
