package graph

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTorus(t *testing.T) {
	g := Torus(4, 5, 2)
	if g.N() != 20 {
		t.Fatalf("n = %d", g.N())
	}
	// Torus is 4-regular with m = 2·rows·cols.
	if g.M() != 40 {
		t.Errorf("m = %d, want 40", g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("node %d degree %d, want 4", u, g.Degree(u))
		}
	}
	if !g.Connected() {
		t.Error("torus disconnected")
	}
	// Wraparound halves the diameter vs the grid.
	if gd, td := Grid(4, 5, 2).WeightedDiameter(), g.WeightedDiameter(); td >= gd {
		t.Errorf("torus diameter %d should beat grid diameter %d", td, gd)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4, 1)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("n=%d m=%d, want 16/32", g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("node %d degree %d, want 4", u, g.Degree(u))
		}
	}
	if d := g.HopDiameter(); d != 4 {
		t.Errorf("hop diameter = %d, want 4", d)
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(15, 3)
	if g.M() != 14 {
		t.Fatalf("m = %d, want n-1", g.M())
	}
	if !g.Connected() {
		t.Fatal("tree disconnected")
	}
	if g.Degree(0) != 2 {
		t.Errorf("root degree %d, want 2", g.Degree(0))
	}
	// Depth 3 tree: diameter 2·3·latency.
	if d := g.WeightedDiameter(); d != 18 {
		t.Errorf("weighted diameter = %d, want 18", d)
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(40, 6, 1, 3)
	if !g.Connected() {
		t.Fatal("random regular graph disconnected")
	}
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d < 3 || d > 8 {
			t.Errorf("node %d degree %d far from target 6", u, d)
		}
	}
	g2 := RandomRegular(40, 6, 1, 3)
	if g.M() != g2.M() {
		t.Error("not deterministic for fixed seed")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3, 2)
	if g.N() != 20 {
		t.Fatalf("n = %d, want 20", g.N())
	}
	if !g.Connected() {
		t.Fatal("caterpillar disconnected")
	}
	// Interior spine nodes: 2 spine edges + 3 legs = 5.
	if g.Degree(1) != 5 {
		t.Errorf("spine degree = %d, want 5", g.Degree(1))
	}
	if g.Degree(spineLeaf(5, 3)) != 1 {
		t.Errorf("leaf degree = %d, want 1", g.Degree(spineLeaf(5, 3)))
	}
}

func spineLeaf(spine, legs int) NodeID { return spine } // first leaf of spine node 0

func TestComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Errorf("component sizes %d/%d/%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5, 1)
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Errorf("histogram = %v", h)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Clique(5, 2)
	sub, orig := g.InducedSubgraph([]NodeID{1, 3, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced n=%d m=%d, want 3/3", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[2] != 4 {
		t.Errorf("orig mapping = %v", orig)
	}
	if l, ok := sub.EdgeLatency(0, 1); !ok || l != 2 {
		t.Errorf("induced edge latency = %d,%v", l, ok)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed uint64) bool {
		n := 4 + int(seed%12)
		g := GNP(n, 0.2, 1, false, seed)
		comps := g.Components()
		seen := make(map[NodeID]bool)
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, u := range c {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramSumsToN(t *testing.T) {
	f := func(seed uint64) bool {
		n := 3 + int(seed%20)
		g := GNP(n, 0.3, 1, true, seed)
		total := 0
		for _, c := range g.DegreeHistogram() {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChungLuPowerLaw(t *testing.T) {
	g := ChungLu(300, 2.5, 8, 1, 7)
	if !g.Connected() {
		t.Fatal("ChungLu graph disconnected")
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 3 || avg > 16 {
		t.Errorf("average degree %g far from target 8", avg)
	}
	// Power law: early (heavy) nodes have much higher degree than the tail.
	headDeg, tailDeg := 0, 0
	for v := 0; v < 10; v++ {
		headDeg += g.Degree(v)
	}
	for v := g.N() - 10; v < g.N(); v++ {
		tailDeg += g.Degree(v)
	}
	if headDeg < 4*tailDeg {
		t.Errorf("head degree %d not dominating tail %d (no skew)", headDeg, tailDeg)
	}
	// Deterministic.
	if g2 := ChungLu(300, 2.5, 8, 1, 7); g2.M() != g.M() {
		t.Error("not deterministic for fixed seed")
	}
}

func TestChungLuValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { ChungLu(1, 2.5, 4, 1, 1) },
		func() { ChungLu(10, 2.0, 4, 1, 1) },
		func() { ChungLu(10, 2.5, 0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid parameters")
				}
			}()
			fn()
		}()
	}
}

func TestRingChords(t *testing.T) {
	const n, chords, latMax = 2000, 4, 50
	g := RingChords(n, chords, latMax, 11)
	if g.N() != n {
		t.Fatalf("N = %d, want %d", g.N(), n)
	}
	// Ring backbone: connected by construction, M >= n, and the chord count
	// lands near the n·chords/2 target (a few collisions are skipped).
	if comps := g.Components(); len(comps) != 1 {
		t.Fatalf("%d components, want 1 (ring backbone)", len(comps))
	}
	chordsGot := g.M() - n
	want := n * chords / 2
	if chordsGot < want*8/10 || chordsGot > want {
		t.Errorf("chords = %d, want within [%d, %d]", chordsGot, want*8/10, want)
	}
	// Heterogeneous latencies: ring edges are 1, chords spread over [1, latMax].
	maxLat := 0
	for _, e := range g.Edges() {
		if e.Latency < 1 || e.Latency > latMax {
			t.Fatalf("edge latency %d outside [1, %d]", e.Latency, latMax)
		}
		if e.Latency > maxLat {
			maxLat = e.Latency
		}
	}
	if maxLat < latMax/2 {
		t.Errorf("max latency %d — chord latencies not spreading toward %d", maxLat, latMax)
	}
	if g2 := RingChords(n, chords, latMax, 11); g2.M() != g.M() {
		t.Error("not deterministic for fixed seed")
	}
}

func TestRingChordsLinearScale(t *testing.T) {
	if testing.Short() {
		t.Skip("250k-node generation is not -short friendly")
	}
	// The point of the family: n in the hundreds of thousands is cheap. A
	// quarter-million nodes must build in well under a minute even on one
	// core (O(n·chords), no n² pair scan).
	start := time.Now()
	g := RingChords(250_000, 4, 100, 3)
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("250k-node RingChords took %v", elapsed)
	}
	if got, wantMin := g.M(), 250_000; got < wantMin {
		t.Fatalf("M = %d, want >= %d ring edges", got, wantMin)
	}
}

func TestRingChordsValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { RingChords(2, 4, 10, 1) },
		func() { RingChords(10, -1, 10, 1) },
		func() { RingChords(10, 4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid parameters")
				}
			}()
			fn()
		}()
	}
}
