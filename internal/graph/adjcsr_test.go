package graph

import "testing"

// TestAdjCSRMirrorsAdjacency: on a spread of families, every row reproduces
// Graph.Neighbors order exactly and EdgeIndex inverts HalfEdge.ID for both
// endpoints of every edge.
func TestAdjCSRMirrorsAdjacency(t *testing.T) {
	graphs := map[string]*Graph{
		"clique":   Clique(9, 3),
		"path":     Path(12, 2),
		"dumbbell": Dumbbell(5, 4),
		"ring":     RingOfCliques(4, 5, 2),
	}
	for name, g := range graphs {
		c := BuildAdjCSR(g)
		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("%s: N/M = %d/%d, want %d/%d", name, c.N(), c.M(), g.N(), g.M())
		}
		for u := 0; u < g.N(); u++ {
			hes := g.Neighbors(u)
			if c.Degree(u) != len(hes) {
				t.Fatalf("%s: Degree(%d) = %d, want %d", name, u, c.Degree(u), len(hes))
			}
			for i, he := range hes {
				if got := c.Half(u, i); got != he {
					t.Fatalf("%s: Half(%d,%d) = %+v, want %+v", name, u, i, got, he)
				}
				if got := c.EdgeIndex(u, he.ID); got != i {
					t.Fatalf("%s: EdgeIndex(%d,%d) = %d, want %d", name, u, he.ID, got, i)
				}
			}
		}
	}
}

// TestAdjCSREdgeIndexRejects: non-incident edges, out-of-range ids, and the
// runtime's synthetic negative membership edge ids all resolve to -1.
func TestAdjCSREdgeIndexRejects(t *testing.T) {
	g := Path(4, 1) // edges 0: (0,1), 1: (1,2), 2: (2,3)
	c := BuildAdjCSR(g)
	if got := c.EdgeIndex(0, 2); got != -1 {
		t.Errorf("EdgeIndex(0, non-incident) = %d, want -1", got)
	}
	if got := c.EdgeIndex(3, 0); got != -1 {
		t.Errorf("EdgeIndex(3, non-incident) = %d, want -1", got)
	}
	if got := c.EdgeIndex(1, -7); got != -1 {
		t.Errorf("EdgeIndex(1, negative) = %d, want -1", got)
	}
	if got := c.EdgeIndex(1, g.M()); got != -1 {
		t.Errorf("EdgeIndex(1, out of range) = %d, want -1", got)
	}
}
