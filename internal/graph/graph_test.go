package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    NodeID
		lat     int
		wantErr bool
	}{
		{name: "ok", u: 0, v: 1, lat: 1},
		{name: "self loop", u: 2, v: 2, lat: 1, wantErr: true},
		{name: "duplicate", u: 0, v: 1, lat: 2, wantErr: true},
		{name: "duplicate reversed", u: 1, v: 0, lat: 2, wantErr: true},
		{name: "out of range", u: 0, v: 3, lat: 1, wantErr: true},
		{name: "negative node", u: -1, v: 1, lat: 1, wantErr: true},
		{name: "zero latency", u: 1, v: 2, lat: 0, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := g.AddEdge(tt.u, tt.v, tt.lat)
			if (err != nil) != tt.wantErr {
				t.Errorf("AddEdge(%d,%d,%d) err = %v, wantErr = %v", tt.u, tt.v, tt.lat, err, tt.wantErr)
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	g := New(4)
	id := g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 7)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if l, ok := g.EdgeLatency(1, 0); !ok || l != 5 {
		t.Errorf("EdgeLatency(1,0) = %d,%v", l, ok)
	}
	if _, ok := g.EdgeLatency(0, 3); ok {
		t.Error("EdgeLatency found nonexistent edge")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.MaxDegree() != 2 {
		t.Errorf("Degree(1)=%d MaxDegree=%d", g.Degree(1), g.MaxDegree())
	}
	if g.MaxLatency() != 7 {
		t.Errorf("MaxLatency = %d", g.MaxLatency())
	}
	if got := g.Latencies(); len(got) != 3 || got[0] != 3 || got[2] != 7 {
		t.Errorf("Latencies = %v", got)
	}
	if vol := g.Volume([]NodeID{0, 1}); vol != 3 {
		t.Errorf("Volume({0,1}) = %d, want 3", vol)
	}
	if err := g.SetLatency(id, 9); err != nil {
		t.Fatalf("SetLatency: %v", err)
	}
	if l, _ := g.EdgeLatency(0, 1); l != 9 {
		t.Errorf("latency after SetLatency = %d", l)
	}
	if err := g.SetLatency(99, 1); err == nil {
		t.Error("SetLatency out-of-range id should fail")
	}
	if err := g.SetLatency(id, 0); err == nil {
		t.Error("SetLatency zero latency should fail")
	}
}

func TestDistancesAndDiameter(t *testing.T) {
	// Triangle with a shortcut: 0-1 (lat 10), 0-2 (lat 1), 2-1 (lat 2):
	// dist(0,1) should be 3 via node 2.
	g := New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 1, 2)
	d := g.Distances(0)
	if d[1] != 3 || d[2] != 1 {
		t.Errorf("Distances(0) = %v", d)
	}
	if got := g.WeightedDiameter(); got != 3 {
		t.Errorf("WeightedDiameter = %d, want 3", got)
	}
	if got := g.HopDiameter(); got != 1 {
		t.Errorf("HopDiameter = %d, want 1", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if d := g.Distances(0); d[2] != Inf {
		t.Errorf("dist to other component = %d, want Inf", d[2])
	}
}

func TestSubgraph(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 5)
	sub := g.Subgraph(2)
	if sub.M() != 1 || !sub.HasEdge(0, 1) || sub.HasEdge(1, 2) {
		t.Errorf("Subgraph(2) wrong: m=%d", sub.M())
	}
	if sub.N() != 3 {
		t.Errorf("Subgraph node count = %d", sub.N())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(4, 2)
	cp := g.Clone()
	cp.MustAddEdge(0, 3, 1)
	if g.HasEdge(0, 3) {
		t.Error("clone mutation leaked into original")
	}
}

func TestDistancesWithin(t *testing.T) {
	g := Path(10, 2)
	d := g.DistancesWithin(0, 5)
	// Nodes 0,1,2 at distances 0,2,4 are within 5; node 3 at 6 is not.
	if len(d) != 3 {
		t.Errorf("DistancesWithin found %d nodes: %v", len(d), d)
	}
	if d[2] != 4 {
		t.Errorf("d[2] = %d", d[2])
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name    string
		g       *Graph
		n, m    int
		maxDeg  int
		connect bool
	}{
		{name: "clique", g: Clique(5, 1), n: 5, m: 10, maxDeg: 4, connect: true},
		{name: "star", g: Star(6, 2), n: 6, m: 5, maxDeg: 5, connect: true},
		{name: "path", g: Path(7, 1), n: 7, m: 6, maxDeg: 2, connect: true},
		{name: "cycle", g: Cycle(5, 3), n: 5, m: 5, maxDeg: 2, connect: true},
		{name: "grid", g: Grid(3, 4, 1), n: 12, m: 17, maxDeg: 4, connect: true},
		{name: "dumbbell", g: Dumbbell(4, 9), n: 8, m: 13, maxDeg: 4, connect: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n || tt.g.M() != tt.m {
				t.Errorf("n=%d m=%d, want n=%d m=%d", tt.g.N(), tt.g.M(), tt.n, tt.m)
			}
			if tt.g.MaxDegree() != tt.maxDeg {
				t.Errorf("Δ=%d, want %d", tt.g.MaxDegree(), tt.maxDeg)
			}
			if tt.g.Connected() != tt.connect {
				t.Errorf("connected=%v", tt.g.Connected())
			}
		})
	}
}

func TestRingOfCliques(t *testing.T) {
	g := RingOfCliques(4, 5, 7)
	if g.N() != 20 {
		t.Fatalf("n = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("ring of cliques disconnected")
	}
	// 4 cliques of C(5,2)=10 edges plus 4 bridges.
	if g.M() != 44 {
		t.Errorf("m = %d, want 44", g.M())
	}
	bridges := 0
	for _, e := range g.Edges() {
		if e.Latency == 7 {
			bridges++
		}
	}
	if bridges != 4 {
		t.Errorf("bridges = %d, want 4", bridges)
	}
}

func TestGNPConnected(t *testing.T) {
	g := GNP(50, 0.05, 1, true, 1)
	if !g.Connected() {
		t.Error("GNP with backbone must be connected")
	}
	g2 := GNP(50, 0.05, 1, true, 1)
	if g.M() != g2.M() {
		t.Error("GNP not deterministic for fixed seed")
	}
}

func TestRandomLatenciesRange(t *testing.T) {
	g := RandomLatencies(Clique(10, 1), 2, 6, 5)
	for _, e := range g.Edges() {
		if e.Latency < 2 || e.Latency > 6 {
			t.Fatalf("latency %d outside [2,6]", e.Latency)
		}
	}
}

func TestQuickDijkstraTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		g := RandomLatencies(GNP(n, 0.4, 1, true, uint64(seed)), 1, 9, uint64(seed))
		u := r.Intn(n)
		du := g.Distances(u)
		// For every edge (a,b): |du[a]-du[b]| <= latency(a,b).
		for _, e := range g.Edges() {
			diff := du[e.U] - du[e.V]
			if diff < 0 {
				diff = -diff
			}
			if diff > e.Latency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickBFSLowerBoundsDijkstra(t *testing.T) {
	// Hop distance <= weighted distance (all latencies >= 1).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		g := RandomLatencies(GNP(n, 0.4, 1, true, uint64(seed)), 1, 5, uint64(seed))
		u := r.Intn(n)
		hop := g.HopDistances(u)
		wtd := g.Distances(u)
		for v := 0; v < n; v++ {
			if hop[v] > wtd[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWeightedDiameterApprox(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(10)
		g := RandomLatencies(GNP(n, 0.5, 1, true, uint64(seed)), 1, 7, uint64(seed))
		d := g.WeightedDiameter()
		a := g.WeightedDiameterApprox()
		_ = r
		return a <= d && d <= 2*a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
