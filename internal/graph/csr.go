package graph

import (
	"math"
	"sort"
)

// CSR is an immutable compressed-sparse-row view of a Graph, built once and
// shared by analyses that repeatedly scan "the edges of G_ℓ" for many
// thresholds ℓ: neighbor lists are stored contiguously and sorted by
// latency, so the incident edges of u with latency <= ℓ are the slice prefix
// to[rowStart[u]:ends[u]] for a cursor array ends — no per-edge filtering.
// Cursors only move forward as ℓ grows, so a full ladder walk over all
// distinct latencies advances each cursor O(deg) times total.
//
// The view also caches the quantities every conductance sweep needs: the
// full-graph degree of each node (volumes in Definition 1 are taken in G,
// not G_ℓ), the total volume 2m, the sorted distinct latencies, and a
// globally latency-sorted edge list for incremental connectivity walks.
//
// A CSR snapshots the graph at construction time: SetLatency on the
// underlying Graph is not reflected. Build a fresh view after mutating.
type CSR struct {
	n        int
	volAll   int     // 2m
	rowStart []int32 // len n+1; row u is to[rowStart[u]:rowStart[u+1]]
	to       []int32 // len 2m; neighbor ids, latency-sorted within each row
	lat      []int32 // len 2m; latencies aligned with to, nondecreasing per row
	deg      []int32 // len n; full-graph degree (cached volume terms)
	lats     []int   // sorted distinct latencies ("levels" of the ladder)

	// Edges sorted by latency (ties by original edge id), for incremental
	// union-find style walks up the ladder.
	edgeU, edgeV, edgeLat []int32
}

// BuildCSR constructs the latency-sorted CSR view of g.
func BuildCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{n: n, volAll: 2 * g.M(), lats: g.Latencies()}
	c.rowStart = make([]int32, n+1)
	c.deg = make([]int32, n)
	for u := 0; u < n; u++ {
		c.deg[u] = int32(g.Degree(u))
		c.rowStart[u+1] = c.rowStart[u] + c.deg[u]
	}
	m2 := int(c.rowStart[n])
	c.to = make([]int32, m2)
	c.lat = make([]int32, m2)
	for u := 0; u < n; u++ {
		i := c.rowStart[u]
		for _, he := range g.Neighbors(u) {
			c.to[i] = int32(he.To)
			c.lat[i] = int32(he.Latency)
			i++
		}
		// Rows have no parallel edges, so (lat, to) keys are distinct and any
		// correct sort yields the same layout; insertion sort beats the
		// interface sorter on the short rows that dominate, with a fallback
		// for heavy-tailed degrees.
		row := rowSlice{to: c.to[c.rowStart[u]:i], lat: c.lat[c.rowStart[u]:i]}
		if row.Len() <= 32 {
			insertionSortRow(row)
		} else {
			sort.Sort(row)
		}
	}
	// Counting sort of the edge list by latency class: stable, so ties keep
	// original edge-id order, matching a stable comparison sort.
	edges := g.Edges()
	latIdx := make([]int32, len(edges))
	count := make([]int32, len(c.lats)+1)
	for i, e := range edges {
		k := int32(sort.SearchInts(c.lats, e.Latency))
		latIdx[i] = k
		count[k+1]++
	}
	for k := 1; k < len(count); k++ {
		count[k] += count[k-1]
	}
	c.edgeU = make([]int32, len(edges))
	c.edgeV = make([]int32, len(edges))
	c.edgeLat = make([]int32, len(edges))
	for i, e := range edges {
		p := count[latIdx[i]]
		count[latIdx[i]]++
		c.edgeU[p] = int32(e.U)
		c.edgeV[p] = int32(e.V)
		c.edgeLat[p] = int32(e.Latency)
	}
	return c
}

func insertionSortRow(r rowSlice) {
	for i := 1; i < r.Len(); i++ {
		for j := i; j > 0 && r.Less(j, j-1); j-- {
			r.Swap(j, j-1)
		}
	}
}

// rowSlice sorts one adjacency row by (latency, neighbor id), keeping the
// two parallel arrays aligned. The secondary key makes the layout canonical.
type rowSlice struct{ to, lat []int32 }

func (r rowSlice) Len() int { return len(r.to) }
func (r rowSlice) Less(i, j int) bool {
	if r.lat[i] != r.lat[j] {
		return r.lat[i] < r.lat[j]
	}
	return r.to[i] < r.to[j]
}
func (r rowSlice) Swap(i, j int) {
	r.to[i], r.to[j] = r.to[j], r.to[i]
	r.lat[i], r.lat[j] = r.lat[j], r.lat[i]
}

// N reports the number of nodes.
func (c *CSR) N() int { return c.n }

// VolAll returns Vol(V) = 2m, the denominator bound of every conductance.
func (c *CSR) VolAll() int { return c.volAll }

// Degree returns u's full-graph degree (its volume contribution).
func (c *CSR) Degree(u NodeID) int { return int(c.deg[u]) }

// Levels returns the sorted distinct edge latencies. Callers must not
// modify the returned slice.
func (c *CSR) Levels() []int { return c.lats }

// NewEnds returns a fresh cursor array positioned at level "below every
// latency": ends[u] = rowStart[u], i.e. every prefix empty.
func (c *CSR) NewEnds() []int32 {
	return append([]int32(nil), c.rowStart[:c.n]...)
}

// ResetEnds repositions an existing cursor array (len n) back to the empty
// prefix, for reuse across independent level walks.
func (c *CSR) ResetEnds(ends []int32) { copy(ends, c.rowStart[:c.n]) }

// AdvanceEnds moves the cursor array forward to level ℓ: afterwards ends[u]
// is one past the last neighbor of u with latency <= ℓ. Cursors only move
// forward, so walking the ladder ℓ_1 < ℓ_2 < ... costs O(2m) in total.
func (c *CSR) AdvanceEnds(ends []int32, ell int) {
	l := int32(ell)
	for u := 0; u < c.n; u++ {
		e, hi := ends[u], c.rowStart[u+1]
		for e < hi && c.lat[e] <= l {
			e++
		}
		ends[u] = e
	}
}

// Prefix returns u's neighbors in G_ℓ as a slice prefix for the given
// cursor array. Callers must not modify the returned slice.
func (c *CSR) Prefix(u NodeID, ends []int32) []int32 {
	return c.to[c.rowStart[u]:ends[u]]
}

// LevelDegree returns deg_ℓ(u), the number of incident edges with
// latency <= ℓ, for the given cursor array.
func (c *CSR) LevelDegree(u NodeID, ends []int32) int {
	return int(ends[u] - c.rowStart[u])
}

// SortedEdges returns the edge endpoints and latencies sorted by latency
// (ties in original insertion order). Callers must not modify the slices.
func (c *CSR) SortedEdges() (u, v, lat []int32) { return c.edgeU, c.edgeV, c.edgeLat }

// ComponentsAt returns the connected components of G_ℓ (the prefix view
// described by ends) in increasing order of their smallest member, matching
// Graph.Components on Graph.Subgraph(ℓ) as sets.
func (c *CSR) ComponentsAt(ends []int32) [][]NodeID {
	seen := make([]bool, c.n)
	var comps [][]NodeID
	queue := make([]NodeID, 0, c.n)
	for start := 0; start < c.n; start++ {
		if seen[start] {
			continue
		}
		queue = append(queue[:0], start)
		seen[start] = true
		comp := []NodeID{}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			comp = append(comp, u)
			for _, v := range c.Prefix(u, ends) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, int(v))
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// UnreachableDist marks an unreachable node in DistancesFrom (the int32
// analogue of Inf).
const UnreachableDist = math.MaxInt32 / 4

// DistancesFrom computes latency-weighted Dijkstra distances from src into
// dist (len n), reusing heapBuf as the priority queue; the possibly grown
// buffer is returned for the next call. Distances equal Graph.Distances
// entry-for-entry (with UnreachableDist in place of Inf): shortest-path
// values are unique, so the heap layout cannot affect the result. The
// flat (dist<<32 | node) binary heap avoids the container/heap interface
// overhead that dominates the adjacency-list implementation on large graphs.
func (c *CSR) DistancesFrom(src NodeID, dist []int32, heapBuf []int64) []int64 {
	for i := range dist {
		dist[i] = UnreachableDist
	}
	dist[src] = 0
	h := append(heapBuf[:0], int64(src))
	for len(h) > 0 {
		it := h[0]
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		// Sift down.
		for i := 0; ; {
			l := 2*i + 1
			if l >= n {
				break
			}
			if r := l + 1; r < n && h[r] < h[l] {
				l = r
			}
			if h[i] <= h[l] {
				break
			}
			h[i], h[l] = h[l], h[i]
			i = l
		}
		u := NodeID(it & 0xffffffff)
		d := int32(it >> 32)
		if d > dist[u] {
			continue
		}
		row := c.to[c.rowStart[u]:c.rowStart[u+1]]
		lat := c.lat[c.rowStart[u]:c.rowStart[u+1]]
		for k, to := range row {
			nd := d + lat[k]
			if nd < dist[to] {
				dist[to] = nd
				// Sift up.
				h = append(h, int64(nd)<<32|int64(to))
				for i := len(h) - 1; i > 0; {
					p := (i - 1) / 2
					if h[p] <= h[i] {
						break
					}
					h[i], h[p] = h[p], h[i]
					i = p
				}
			}
		}
	}
	return h
}

// ConnectivityLevels reports, for each level in Levels() order, whether G_ℓ
// is connected. Connectivity is monotone in ℓ, so the result is false^k then
// true^(L-k); it is computed in one union-find pass over the latency-sorted
// edge list.
func (c *CSR) ConnectivityLevels() []bool {
	conn, _ := c.LadderComponents(false)
	return conn
}

// LadderComponents walks the ladder with one union-find pass (path halving)
// over the latency-sorted edge list and reports, for each level in Levels()
// order, whether G_ℓ is connected. With witnesses enabled it additionally
// returns, for every disconnected level, the smallest component as a sorted
// node list (size ties broken toward the component with the smallest member
// — the same choice as scanning ComponentsAt output for the strictly
// smallest entry). Witness extraction is O(n) per disconnected level; the
// union-find walk itself is O(2m α) for the whole ladder.
func (c *CSR) LadderComponents(witnesses bool) (conn []bool, smallest [][]NodeID) {
	conn = make([]bool, len(c.lats))
	if witnesses {
		smallest = make([][]NodeID, len(c.lats))
	}
	if c.n == 0 {
		return conn, smallest
	}
	parent := make([]int32, c.n)
	size := make([]int32, c.n)
	minm := make([]int32, c.n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
		minm[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	comps := c.n
	e := 0
	for k, ell := range c.lats {
		for e < len(c.edgeLat) && int(c.edgeLat[e]) <= ell {
			ru, rv := find(c.edgeU[e]), find(c.edgeV[e])
			if ru != rv {
				parent[ru] = rv
				size[rv] += size[ru]
				if minm[ru] < minm[rv] {
					minm[rv] = minm[ru]
				}
				comps--
			}
			e++
		}
		conn[k] = comps == 1
		if conn[k] || !witnesses {
			continue
		}
		var best int32 = -1
		for u := int32(0); u < int32(c.n); u++ {
			if parent[u] != u {
				continue
			}
			if best < 0 || size[u] < size[best] || (size[u] == size[best] && minm[u] < minm[best]) {
				best = u
			}
		}
		set := make([]NodeID, 0, size[best])
		for u := int32(0); u < int32(c.n); u++ {
			if find(u) == best {
				set = append(set, NodeID(u))
			}
		}
		smallest[k] = set
	}
	return conn, smallest
}
