package graph

// AdjCSR is the live runtime's dense topology view: a compressed-sparse-row
// snapshot of a Graph in *adjacency order* plus an edge-id cross index, so
// the two per-message operations the runtime performs —
//
//   - resolve (node, edge id) to the node's neighbor-list index, and
//   - fetch neighbor i of node u,
//
// are O(1) array lookups on int32 rows instead of a 2m-entry map probe and a
// [][]HalfEdge pointer chase. Unlike CSR (the analysis view), rows are NOT
// latency-sorted: the runtime's EdgeIndex contract is an index into
// Graph.Neighbors(u), and the simulator/live equivalence suite holds the two
// engines to identical indices, so the flat rows must mirror the adjacency
// order exactly.
//
// Like CSR, an AdjCSR snapshots the graph at construction; build a fresh view
// after mutating latencies.
type AdjCSR struct {
	n        int
	rowStart []int32 // len n+1; row u is to[rowStart[u]:rowStart[u+1]]
	to       []int32 // len 2m; neighbor ids, adjacency order
	lat      []int32 // len 2m; latencies aligned with to
	eid      []int32 // len 2m; edge ids aligned with to

	// Edge-id cross index: edge e's two flat positions. posU is the position
	// in row endU[e] (the endpoint whose row was filled first); posV the
	// other. EdgeIndex picks by comparing the queried node against endU.
	posU, posV []int32
	endU       []int32
}

// BuildAdjCSR constructs the adjacency-order CSR view of g. Edge IDs are
// assumed dense in [0, M) — the contract of HalfEdge.ID.
func BuildAdjCSR(g *Graph) *AdjCSR {
	n := g.N()
	m := g.M()
	c := &AdjCSR{n: n}
	c.rowStart = make([]int32, n+1)
	for u := 0; u < n; u++ {
		c.rowStart[u+1] = c.rowStart[u] + int32(g.Degree(u))
	}
	m2 := int(c.rowStart[n])
	c.to = make([]int32, m2)
	c.lat = make([]int32, m2)
	c.eid = make([]int32, m2)
	c.posU = make([]int32, m)
	c.posV = make([]int32, m)
	c.endU = make([]int32, m)
	for i := range c.posU {
		c.posU[i] = -1
	}
	for u := 0; u < n; u++ {
		i := c.rowStart[u]
		for _, he := range g.Neighbors(u) {
			c.to[i] = int32(he.To)
			c.lat[i] = int32(he.Latency)
			c.eid[i] = int32(he.ID)
			if c.posU[he.ID] < 0 {
				c.posU[he.ID] = i
				c.endU[he.ID] = int32(u)
			} else {
				c.posV[he.ID] = i
			}
			i++
		}
	}
	return c
}

// N reports the number of nodes.
func (c *AdjCSR) N() int { return c.n }

// M reports the number of (undirected) edges.
func (c *AdjCSR) M() int { return len(c.posU) }

// Degree returns u's degree.
func (c *AdjCSR) Degree(u NodeID) int {
	return int(c.rowStart[u+1] - c.rowStart[u])
}

// Half returns neighbor i of u, equal to Graph.Neighbors(u)[i].
func (c *AdjCSR) Half(u NodeID, i int) HalfEdge {
	p := c.rowStart[u] + int32(i)
	return HalfEdge{To: NodeID(c.to[p]), Latency: int(c.lat[p]), ID: int(c.eid[p])}
}

// EdgeIndex resolves edge id to its index in u's neighbor list — the value
// idx with Graph.Neighbors(u)[idx].ID == id — or -1 when the edge is not
// incident to u (misrouted traffic, synthetic membership edge IDs).
func (c *AdjCSR) EdgeIndex(u NodeID, id int) int {
	if id < 0 || id >= len(c.posU) {
		return -1
	}
	p := c.posV[id]
	if c.endU[id] == int32(u) {
		p = c.posU[id]
	}
	if p < c.rowStart[u] || p >= c.rowStart[u+1] || c.eid[p] != int32(id) {
		return -1
	}
	return int(p - c.rowStart[u])
}
