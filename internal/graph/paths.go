package graph

import (
	"container/heap"
	"math"
)

// Inf marks an unreachable distance.
const Inf = math.MaxInt64 / 4

// HopDistances returns BFS hop distances from src (Inf if unreachable).
func (g *Graph) HopDistances(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, he := range g.adj[u] {
			if dist[he.To] == Inf {
				dist[he.To] = dist[u] + 1
				queue = append(queue, he.To)
			}
		}
	}
	return dist
}

// distItem is a priority-queue entry for Dijkstra.
type distItem struct {
	node NodeID
	dist int
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Distances returns Dijkstra latency-weighted distances from src
// (Inf if unreachable).
func (g *Graph) Distances(src NodeID) []int {
	dist := make([]int, g.n)
	var h distHeap
	g.distancesInto(src, dist, &h)
	return dist
}

// distancesInto runs Dijkstra from src into the caller's dist slice (length
// n) and scratch heap, so all-pairs sweeps reuse one allocation per buffer.
// The heap is reset; dist is fully overwritten.
func (g *Graph) distancesInto(src NodeID, dist []int, h *distHeap) {
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	*h = append((*h)[:0], distItem{node: src, dist: 0})
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, he := range g.adj[it.node] {
			nd := it.dist + he.Latency
			if nd < dist[he.To] {
				dist[he.To] = nd
				heap.Push(h, distItem{node: he.To, dist: nd})
			}
		}
	}
}

// DistancesWithin returns latency-weighted distances from src, exploring only
// nodes at distance <= limit; others are Inf. Used for k-hop/ball gathering.
func (g *Graph) DistancesWithin(src NodeID, limit int) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	h := &distHeap{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if d, ok := dist[it.node]; ok && it.dist > d {
			continue
		}
		for _, he := range g.adj[it.node] {
			nd := it.dist + he.Latency
			if nd > limit {
				continue
			}
			if d, ok := dist[he.To]; !ok || nd < d {
				dist[he.To] = nd
				heap.Push(h, distItem{node: he.To, dist: nd})
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.HopDistances(0)
	for _, d := range dist {
		if d == Inf {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum latency-weighted distance from src, or Inf
// if some node is unreachable.
func (g *Graph) Eccentricity(src NodeID) int {
	ecc := 0
	for _, d := range g.Distances(src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// WeightedDiameter returns D, the maximum latency-weighted distance between
// any pair of nodes (Inf if disconnected). O(n · m log n). The dist and heap
// buffers are shared across the n Dijkstra sweeps.
func (g *Graph) WeightedDiameter() int {
	d := 0
	dist := make([]int, g.n)
	var h distHeap
	for u := 0; u < g.n; u++ {
		g.distancesInto(u, dist, &h)
		for _, e := range dist {
			if e > d {
				d = e
			}
		}
	}
	return d
}

// HopDiameter returns the maximum BFS hop distance between any pair of nodes.
func (g *Graph) HopDiameter() int {
	d := 0
	for u := 0; u < g.n; u++ {
		for _, h := range g.HopDistances(u) {
			if h > d {
				d = h
			}
		}
	}
	return d
}

// WeightedDiameterApprox returns a 2-approximation of the weighted diameter
// using a constant number of Dijkstra sweeps (double sweep from node 0),
// cheap enough for large graphs. The true diameter is in
// [result, 2*result].
func (g *Graph) WeightedDiameterApprox() int {
	if g.n == 0 {
		return 0
	}
	d0 := g.Distances(0)
	far, fd := 0, 0
	for u, d := range d0 {
		if d != Inf && d > fd {
			far, fd = u, d
		}
	}
	best := fd
	for _, d := range g.Distances(far) {
		if d != Inf && d > best {
			best = d
		}
	}
	return best
}
