package graph

import (
	"fmt"
	"math"

	"gossip/internal/rng"
)

// Pair is an element of A×B in the guessing game, expressed as indices into
// the left and right vertex sets of a gadget.
type Pair struct {
	A, B int
}

// Gadget is the guessing-game network of Section 3.2 (Figure 1): a complete
// bipartite graph on L = {0..m-1} and R = {m..2m-1} plus a latency-1 clique
// on L (and on R when symmetric, i.e. G_sym(P)). Cross edges in the target
// set are "fast" (latency 1); all other cross edges are "slow".
type Gadget struct {
	G      *Graph
	M      int    // |L| = |R|
	Target []Pair // the oracle's hidden fast pairs
	Sym    bool
	Slow   int // latency assigned to non-target cross edges
}

// Left returns the node ID of the i-th left vertex.
func (gd *Gadget) Left(i int) NodeID { return i }

// Right returns the node ID of the j-th right vertex.
func (gd *Gadget) Right(j int) NodeID { return gd.M + j }

// NewGadget builds G(P) (sym=false) or G_sym(P) (sym=true) on 2m nodes with
// the given target set; non-target cross edges get latency slow.
func NewGadget(m int, target []Pair, sym bool, slow int) (*Gadget, error) {
	if m < 2 {
		return nil, fmt.Errorf("graph: gadget needs m >= 2, got %d", m)
	}
	if slow < 1 {
		return nil, fmt.Errorf("graph: gadget slow latency %d < 1", slow)
	}
	fast := make(map[Pair]bool, len(target))
	for _, p := range target {
		if p.A < 0 || p.A >= m || p.B < 0 || p.B >= m {
			return nil, fmt.Errorf("graph: target pair %v out of range [0,%d)", p, m)
		}
		fast[p] = true
	}
	g := New(2 * m)
	// Clique on L (latency 1).
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	if sym {
		for u := 0; u < m; u++ {
			for v := u + 1; v < m; v++ {
				g.MustAddEdge(m+u, m+v, 1)
			}
		}
	}
	// Complete bipartite cross edges.
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			lat := slow
			if fast[Pair{A: a, B: b}] {
				lat = 1
			}
			g.MustAddEdge(a, m+b, lat)
		}
	}
	return &Gadget{G: g, M: m, Target: append([]Pair(nil), target...), Sym: sym, Slow: slow}, nil
}

// SingletonTarget returns a single uniformly random pair from A×B — the
// predicate of Lemma 4 and Theorem 6.
func SingletonTarget(m int, seed uint64) []Pair {
	r := rng.Stream(seed, 0x7431) // "t1"
	return []Pair{{A: r.Intn(m), B: r.Intn(m)}}
}

// RandomTarget returns the Random_p predicate of Lemma 5: each pair of A×B
// joins the target independently with probability p.
func RandomTarget(m int, p float64, seed uint64) []Pair {
	r := rng.Stream(seed, 0x7470) // "tp"
	var t []Pair
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if r.Float64() < p {
				t = append(t, Pair{A: a, B: b})
			}
		}
	}
	return t
}

// TheoremSixNetwork is the n-node network H of Theorem 6: the gadget
// G(2Δ, singleton) combined with a latency-1 clique on the remaining n-2Δ
// vertices, one of which attaches to a single gadget vertex. Local broadcast
// on H requires Ω(Δ) rounds.
type TheoremSixNetwork struct {
	Gadget *Gadget
	G      *Graph
	Delta  int
}

// NewTheoremSixNetwork builds H with max degree Θ(Δ) on n >= 2Δ nodes.
// Slow cross edges get latency n as in the paper. The symmetric gadget
// G_sym is used so the weighted diameter is O(1): the single fast cross
// edge is reachable from every right vertex through the latency-1 R-clique.
func NewTheoremSixNetwork(n, delta int, seed uint64) (*TheoremSixNetwork, error) {
	if delta < 2 || 2*delta > n {
		return nil, fmt.Errorf("graph: theorem 6 needs 2 <= Δ and 2Δ <= n (got Δ=%d, n=%d)", delta, n)
	}
	gd, err := NewGadget(delta, SingletonTarget(delta, seed), true, n)
	if err != nil {
		return nil, err
	}
	g := New(n)
	for _, e := range gd.G.Edges() {
		g.MustAddEdge(e.U, e.V, e.Latency)
	}
	// Clique on the remaining n-2Δ vertices.
	for u := 2 * delta; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	// Attach the clique (if any) to a single gadget vertex.
	if n > 2*delta {
		g.MustAddEdge(2*delta, 0, 1)
	}
	return &TheoremSixNetwork{Gadget: &Gadget{G: g, M: gd.M, Target: gd.Target, Sym: true, Slow: n}, G: g, Delta: delta}, nil
}

// TheoremSevenNetwork is the 2n-node network of Theorem 7: the gadget
// G(Random_φ) where each cross edge is fast (latency ℓ) independently with
// probability φ and slow (latency 2n) otherwise. Whp it has weighted
// diameter O(ℓ) and weighted conductance Θ(φ), yet local broadcast needs
// Ω(1/φ + ℓ) rounds (Ω(log n/φ + ℓ) for push-pull).
type TheoremSevenNetwork struct {
	Gadget *Gadget
	G      *Graph
	Phi    float64
	Ell    int
}

// NewTheoremSevenNetwork builds the Theorem 7 network on 2n nodes.
func NewTheoremSevenNetwork(n int, phi float64, ell int, seed uint64) (*TheoremSevenNetwork, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: theorem 7 needs n >= 2, got %d", n)
	}
	if phi <= 0 || phi > 0.5 {
		return nil, fmt.Errorf("graph: theorem 7 needs 0 < φ <= 1/2, got %g", phi)
	}
	if ell < 1 {
		return nil, fmt.Errorf("graph: theorem 7 needs ℓ >= 1, got %d", ell)
	}
	target := RandomTarget(n, phi, seed)
	slow := 2 * n
	gd, err := NewGadget(n, target, false, slow)
	if err != nil {
		return nil, err
	}
	// Fast cross edges carry latency ℓ (not 1) in this construction.
	if ell != 1 {
		for _, p := range target {
			u, v := gd.Left(p.A), gd.Right(p.B)
			lat, ok := gd.G.EdgeLatency(u, v)
			if !ok || lat != 1 {
				return nil, fmt.Errorf("graph: internal: target edge (%d,%d) missing", u, v)
			}
			id := edgeID(gd.G, u, v)
			if err := gd.G.SetLatency(id, ell); err != nil {
				return nil, err
			}
		}
	}
	return &TheoremSevenNetwork{Gadget: gd, G: gd.G, Phi: phi, Ell: ell}, nil
}

func edgeID(g *Graph, u, v NodeID) int {
	for _, he := range g.Neighbors(u) {
		if he.To == v {
			return he.ID
		}
	}
	return -1
}

// RingNetwork is the Theorem 8 construction (Figure 2): k node layers of
// size s wired in a ring; each layer is a latency-1 clique; consecutive
// layers form a complete bipartite graph whose cross edges all have latency
// ℓ except one uniformly random fast edge of latency 1 per layer pair.
type RingNetwork struct {
	G      *Graph
	Layers [][]NodeID // Layers[i] lists the node IDs of layer i
	K, S   int
	Alpha  float64
	Ell    int
	Fast   []Edge // the k hidden fast cross edges, one per layer pair
	C      float64
}

// NewRingNetwork builds the Theorem 8 network targeting 2n nodes with
// parameter α ∈ (0, 1] and cross-edge latency ℓ. The paper sets
// c = 3/4 + (1/4)·sqrt(9 − 8/(nα)), layer size s = cnα, layer count
// k = 2/(cα); we round s and k to integers, so the realized node count is
// k·s ≈ 2n.
func NewRingNetwork(n int, alpha float64, ell int, seed uint64) (*RingNetwork, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("graph: ring network needs α ∈ (0,1], got %g", alpha)
	}
	if ell < 1 {
		return nil, fmt.Errorf("graph: ring network needs ℓ >= 1, got %d", ell)
	}
	na := float64(n) * alpha
	if na < 1 {
		return nil, fmt.Errorf("graph: ring network needs nα >= 1 (n=%d, α=%g)", n, alpha)
	}
	disc := 9 - 8/na
	if disc < 0 {
		disc = 0
	}
	c := 0.75 + 0.25*math.Sqrt(disc)
	s := int(math.Round(c * na))
	if s < 2 {
		s = 2
	}
	k := int(math.Round(2 * float64(n) / float64(s)))
	if k < 3 {
		k = 3
	}
	g := New(k * s)
	layers := make([][]NodeID, k)
	for i := 0; i < k; i++ {
		layers[i] = make([]NodeID, s)
		for j := 0; j < s; j++ {
			layers[i][j] = i*s + j
		}
		// Latency-1 clique inside the layer.
		for a := 0; a < s; a++ {
			for b := a + 1; b < s; b++ {
				g.MustAddEdge(layers[i][a], layers[i][b], 1)
			}
		}
	}
	r := rng.Stream(seed, 0x7269) // "ri"
	fast := make([]Edge, 0, k)
	for i := 0; i < k; i++ {
		next := (i + 1) % k
		fa, fb := r.Intn(s), r.Intn(s)
		for a := 0; a < s; a++ {
			for b := 0; b < s; b++ {
				lat := ell
				if a == fa && b == fb {
					lat = 1
				}
				g.MustAddEdge(layers[i][a], layers[next][b], lat)
			}
		}
		fast = append(fast, Edge{U: layers[i][fa], V: layers[next][fb], Latency: 1})
	}
	return &RingNetwork{G: g, Layers: layers, K: k, S: s, Alpha: alpha, Ell: ell, Fast: fast, C: c}, nil
}

// HalfCut returns the cut C of Lemma 9: the ring split into two contiguous
// halves of ⌊k/2⌋ and ⌈k/2⌉ layers so no intra-layer clique edge is cut.
// It returns the node set of the first half.
func (rn *RingNetwork) HalfCut() []NodeID {
	half := rn.K / 2
	var set []NodeID
	for i := 0; i < half; i++ {
		set = append(set, rn.Layers[i]...)
	}
	return set
}
