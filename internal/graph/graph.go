// Package graph implements the weighted undirected graphs of the paper:
// connected networks whose edges carry integer latencies. It provides the
// core data structure, shortest-path and diameter computations, standard
// generators, and the exact lower-bound gadget constructions of Sections 3.2
// and 3.4 (Figures 1 and 2).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are always 0..N-1.
type NodeID = int

// Edge is an undirected edge with an integer latency >= 1.
type Edge struct {
	U, V    NodeID
	Latency int
}

// HalfEdge is one endpoint's view of an incident edge.
type HalfEdge struct {
	To      NodeID
	Latency int
	ID      int // index into Graph.Edges()
}

// Graph is an undirected graph with integer edge latencies. The zero value
// is not usable; construct with New.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]HalfEdge
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]HalfEdge, n)}
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.n }

// M reports the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge inserts an undirected edge {u,v} with the given latency and returns
// its edge ID. It returns an error for self loops, duplicate edges,
// out-of-range endpoints, or latencies < 1.
func (g *Graph) AddEdge(u, v NodeID, latency int) (int, error) {
	switch {
	case u < 0 || u >= g.n || v < 0 || v >= g.n:
		return 0, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	case u == v:
		return 0, fmt.Errorf("graph: self loop at %d", u)
	case latency < 1:
		return 0, fmt.Errorf("graph: latency %d < 1 on edge (%d,%d)", latency, u, v)
	}
	for _, he := range g.adj[u] {
		if he.To == v {
			return 0, fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
		}
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Latency: latency})
	g.adj[u] = append(g.adj[u], HalfEdge{To: v, Latency: latency, ID: id})
	g.adj[v] = append(g.adj[v], HalfEdge{To: u, Latency: latency, ID: id})
	return id, nil
}

// MustAddEdge is AddEdge for generators building well-formed graphs; it
// panics on error (a construction bug, not a runtime condition).
func (g *Graph) MustAddEdge(u, v NodeID, latency int) int {
	id, err := g.AddEdge(u, v, latency)
	if err != nil {
		panic(err)
	}
	return id
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	for _, he := range g.adj[u] {
		if he.To == v {
			return true
		}
	}
	return false
}

// EdgeLatency returns the latency of edge {u,v} and whether it exists.
func (g *Graph) EdgeLatency(u, v NodeID) (int, bool) {
	for _, he := range g.adj[u] {
		if he.To == v {
			return he.Latency, true
		}
	}
	return 0, false
}

// SetLatency updates the latency of an existing edge by edge ID.
func (g *Graph) SetLatency(id, latency int) error {
	if id < 0 || id >= len(g.edges) {
		return fmt.Errorf("graph: edge id %d out of range", id)
	}
	if latency < 1 {
		return fmt.Errorf("graph: latency %d < 1", latency)
	}
	e := &g.edges[id]
	e.Latency = latency
	for i := range g.adj[e.U] {
		if g.adj[e.U][i].ID == id {
			g.adj[e.U][i].Latency = latency
		}
	}
	for i := range g.adj[e.V] {
		if g.adj[e.V][i].ID == id {
			g.adj[e.V][i].Latency = latency
		}
	}
	return nil
}

// Neighbors returns u's incident half-edges in insertion order. The caller
// must not modify the returned slice.
func (g *Graph) Neighbors(u NodeID) []HalfEdge { return g.adj[u] }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// MaxDegree returns Δ, the maximum node degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// Volume returns Vol(U) = number of edge endpoints at nodes of U, i.e. the
// sum of degrees over U (paper, Section 2).
func (g *Graph) Volume(set []NodeID) int {
	v := 0
	for _, u := range set {
		v += len(g.adj[u])
	}
	return v
}

// MaxLatency returns ℓ_max, the largest edge latency (0 for edgeless graphs).
func (g *Graph) MaxLatency() int {
	m := 0
	for _, e := range g.edges {
		if e.Latency > m {
			m = e.Latency
		}
	}
	return m
}

// Latencies returns the sorted distinct edge latencies.
func (g *Graph) Latencies() []int {
	seen := make(map[int]bool, 8)
	for _, e := range g.edges {
		seen[e.Latency] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	cp := New(g.n)
	cp.edges = append([]Edge(nil), g.edges...)
	for u := range g.adj {
		cp.adj[u] = append([]HalfEdge(nil), g.adj[u]...)
	}
	return cp
}

// Subgraph returns the subgraph of g containing only edges with
// latency <= maxLatency (the graph G_ℓ of Section 5.1). Node set unchanged.
func (g *Graph) Subgraph(maxLatency int) *Graph {
	sub := New(g.n)
	for _, e := range g.edges {
		if e.Latency <= maxLatency {
			sub.MustAddEdge(e.U, e.V, e.Latency)
		}
	}
	return sub
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d ℓmax=%d}", g.n, len(g.edges), g.MaxDegree(), g.MaxLatency())
}
