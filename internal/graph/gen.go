package graph

import (
	"fmt"

	"gossip/internal/rng"
)

// Clique returns the complete graph K_n with uniform edge latency.
func Clique(n, latency int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, latency)
		}
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves, uniform latency.
func Star(n, latency int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, latency)
	}
	return g
}

// Path returns the path 0-1-...-(n-1) with uniform latency.
func Path(n, latency int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, latency)
	}
	return g
}

// Cycle returns the n-cycle with uniform latency (n >= 3).
func Cycle(n, latency int) *Graph {
	g := Path(n, latency)
	if n >= 3 {
		g.MustAddEdge(n-1, 0, latency)
	}
	return g
}

// Grid returns the rows×cols grid graph with uniform latency. Node (r,c) has
// ID r*cols+c.
func Grid(rows, cols, latency int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols {
				g.MustAddEdge(id, id+1, latency)
			}
			if r+1 < rows {
				g.MustAddEdge(id, id+cols, latency)
			}
		}
	}
	return g
}

// GNP returns an Erdős–Rényi random graph G(n,p) with uniform latency,
// with a Hamiltonian-path backbone added when connect is true so the result
// is always connected (the extra edges only raise conductance marginally).
func GNP(n int, p float64, latency int, connect bool, seed uint64) *Graph {
	g := New(n)
	r := rng.Stream(seed, 0x6e70) // "np"
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.MustAddEdge(u, v, latency)
			}
		}
	}
	if connect {
		for v := 1; v < n; v++ {
			if !g.HasEdge(v-1, v) {
				g.MustAddEdge(v-1, v, latency)
			}
		}
	}
	return g
}

// RingOfCliques returns k cliques of size s (latency 1 inside each clique)
// joined in a ring by single bridge edges of latency bridgeLatency. This
// family has conductance Θ(1/(k·s)) at latency bridgeLatency and is the
// workhorse for the push-pull scaling experiments: its weighted conductance
// and critical latency are known by construction.
func RingOfCliques(k, s, bridgeLatency int) *Graph {
	if k < 2 || s < 2 {
		panic(fmt.Sprintf("graph: RingOfCliques needs k>=2, s>=2 (got %d,%d)", k, s))
	}
	g := New(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				g.MustAddEdge(base+u, base+v, 1)
			}
		}
	}
	for c := 0; c < k; c++ {
		next := (c + 1) % k
		// Bridge from the last node of clique c to the first node of the next.
		g.MustAddEdge(c*s+s-1, next*s, bridgeLatency)
	}
	return g
}

// Dumbbell returns two cliques of size s joined by a single edge of the given
// latency — the classic low-conductance topology.
func Dumbbell(s, bridgeLatency int) *Graph {
	g := New(2 * s)
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			g.MustAddEdge(u, v, 1)
			g.MustAddEdge(s+u, s+v, 1)
		}
	}
	g.MustAddEdge(s-1, s, bridgeLatency)
	return g
}

// RandomLatencies returns a copy of g whose edge latencies are drawn
// uniformly from [lo, hi].
func RandomLatencies(g *Graph, lo, hi int, seed uint64) *Graph {
	if lo < 1 || hi < lo {
		panic(fmt.Sprintf("graph: bad latency range [%d,%d]", lo, hi))
	}
	cp := g.Clone()
	r := rng.Stream(seed, 0x6c61) // "la"
	for id := range cp.edges {
		if err := cp.SetLatency(id, lo+r.Intn(hi-lo+1)); err != nil {
			panic(err)
		}
	}
	return cp
}
