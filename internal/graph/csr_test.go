package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// csrTestGraphs spans the generator families at small sizes where brute
// per-level comparison against the adjacency-list Graph API is cheap.
func csrTestGraphs() map[string]*Graph {
	return map[string]*Graph{
		"dumbbell":    Dumbbell(5, 4),
		"ringcliques": RandomLatencies(RingOfCliques(4, 5, 3), 1, 5, 3),
		"gnp":         RandomLatencies(GNP(30, 0.15, 1, true, 9), 1, 6, 9),
		"grid":        RandomLatencies(Grid(5, 6, 1), 1, 4, 2),
		"torus":       RandomLatencies(Torus(5, 5, 1), 1, 3, 4),
		"sparse":      GNP(20, 0.05, 1, false, 11), // possibly disconnected even in G
	}
}

func TestCSRBasics(t *testing.T) {
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		if c.N() != g.N() {
			t.Errorf("%s: N = %d, want %d", name, c.N(), g.N())
		}
		if c.VolAll() != 2*g.M() {
			t.Errorf("%s: VolAll = %d, want %d", name, c.VolAll(), 2*g.M())
		}
		for u := 0; u < g.N(); u++ {
			if c.Degree(u) != g.Degree(u) {
				t.Errorf("%s: Degree(%d) = %d, want %d", name, u, c.Degree(u), g.Degree(u))
			}
		}
		if !reflect.DeepEqual(c.Levels(), g.Latencies()) {
			t.Errorf("%s: Levels = %v, want %v", name, c.Levels(), g.Latencies())
		}
	}
}

// TestCSRPrefixMatchesFilteredNeighbors checks the core prefix invariant: at
// every level ℓ, Prefix(u, ends) holds exactly the neighbors of u reachable
// over edges with latency <= ℓ, and LevelDegree counts them.
func TestCSRPrefixMatchesFilteredNeighbors(t *testing.T) {
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		ends := c.NewEnds()
		for _, ell := range c.Levels() {
			c.AdvanceEnds(ends, ell)
			for u := 0; u < g.N(); u++ {
				var want []int32
				for _, he := range g.Neighbors(u) {
					if he.Latency <= ell {
						want = append(want, int32(he.To))
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				got := append([]int32(nil), c.Prefix(u, ends)...)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s ℓ=%d: Prefix(%d) = %v, want %v", name, ell, u, got, want)
				}
				if c.LevelDegree(u, ends) != len(want) {
					t.Fatalf("%s ℓ=%d: LevelDegree(%d) = %d, want %d", name, ell, u, c.LevelDegree(u, ends), len(want))
				}
			}
		}
	}
}

// TestCSRRowsLatencySorted checks the layout invariant the ladder engine
// relies on: each row is nondecreasing in latency, with ties broken by
// neighbor id, so every G_ℓ is a contiguous prefix.
func TestCSRRowsLatencySorted(t *testing.T) {
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		full := c.NewEnds()
		lats := c.Levels()
		if len(lats) > 0 {
			c.AdvanceEnds(full, lats[len(lats)-1])
		}
		for u := 0; u < c.N(); u++ {
			row := c.Prefix(u, full)
			if len(row) != c.Degree(u) {
				t.Fatalf("%s: row %d has %d entries at max level, want degree %d", name, u, len(row), c.Degree(u))
			}
		}
	}
}

func TestCSRAdvanceEndsMonotone(t *testing.T) {
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		ends := c.NewEnds()
		prev := append([]int32(nil), ends...)
		for _, ell := range c.Levels() {
			c.AdvanceEnds(ends, ell)
			for u := range ends {
				if ends[u] < prev[u] {
					t.Fatalf("%s ℓ=%d: cursor of %d moved backward", name, ell, u)
				}
			}
			copy(prev, ends)
		}
		c.ResetEnds(ends)
		if !reflect.DeepEqual(ends, c.NewEnds()) {
			t.Errorf("%s: ResetEnds != NewEnds", name)
		}
	}
}

// TestCSRComponentsMatchSubgraph compares the prefix-view components to the
// Subgraph-based ones as set partitions (the BFS visit order inside one
// component legitimately differs: CSR rows are latency-sorted).
func TestCSRComponentsMatchSubgraph(t *testing.T) {
	normalize := func(comps [][]NodeID) [][]NodeID {
		out := make([][]NodeID, len(comps))
		for i, cmp := range comps {
			out[i] = append([]NodeID(nil), cmp...)
			sort.Slice(out[i], func(a, b int) bool { return out[i][a] < out[i][b] })
		}
		sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
		return out
	}
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		ends := c.NewEnds()
		for _, ell := range c.Levels() {
			c.AdvanceEnds(ends, ell)
			got := normalize(c.ComponentsAt(ends))
			want := normalize(g.Subgraph(ell).Components())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s ℓ=%d: components %v, want %v", name, ell, got, want)
			}
		}
	}
}

// TestCSRConnectivityLevels cross-checks the union-find walk against the
// per-level BFS answer and asserts monotonicity (false* then true*).
func TestCSRConnectivityLevels(t *testing.T) {
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		conn := c.ConnectivityLevels()
		if len(conn) != len(c.Levels()) {
			t.Fatalf("%s: %d connectivity entries for %d levels", name, len(conn), len(c.Levels()))
		}
		ends := c.NewEnds()
		wasConnected := false
		for k, ell := range c.Levels() {
			c.AdvanceEnds(ends, ell)
			want := len(c.ComponentsAt(ends)) == 1
			if conn[k] != want {
				t.Errorf("%s ℓ=%d: connected = %v, want %v", name, ell, conn[k], want)
			}
			if wasConnected && !conn[k] {
				t.Errorf("%s ℓ=%d: connectivity regressed (not monotone)", name, ell)
			}
			wasConnected = conn[k]
		}
	}
}

// TestCSRSortedEdges checks the latency-sorted global edge list is a
// permutation of g.Edges() with nondecreasing latency.
func TestCSRSortedEdges(t *testing.T) {
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		eu, ev, el := c.SortedEdges()
		if len(eu) != g.M() || len(ev) != g.M() || len(el) != g.M() {
			t.Fatalf("%s: sorted edge list length %d/%d/%d, want %d", name, len(eu), len(ev), len(el), g.M())
		}
		type edge struct{ u, v, lat int32 }
		canon := func(u, v, lat int32) edge {
			if u > v {
				u, v = v, u
			}
			return edge{u, v, lat}
		}
		want := map[edge]int{}
		for _, e := range g.Edges() {
			want[canon(int32(e.U), int32(e.V), int32(e.Latency))]++
		}
		for i := range eu {
			if i > 0 && el[i] < el[i-1] {
				t.Fatalf("%s: edge latencies not sorted at %d", name, i)
			}
			k := canon(eu[i], ev[i], el[i])
			if want[k] == 0 {
				t.Fatalf("%s: unexpected edge %v", name, k)
			}
			want[k]--
		}
	}
}

// TestCSRLadderComponentWitnesses checks the union-find witness of every
// disconnected level against brute force over ComponentsAt: the smallest
// component, ties broken toward the smallest member, in sorted node order.
func TestCSRLadderComponentWitnesses(t *testing.T) {
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		conn, smallest := c.LadderComponents(true)
		ends := c.NewEnds()
		for k, ell := range c.Levels() {
			c.AdvanceEnds(ends, ell)
			comps := c.ComponentsAt(ends)
			if conn[k] != (len(comps) == 1) {
				t.Fatalf("%s ℓ=%d: connected = %v but %d components", name, ell, conn[k], len(comps))
			}
			if conn[k] {
				if smallest[k] != nil {
					t.Errorf("%s ℓ=%d: witness on a connected level", name, ell)
				}
				continue
			}
			want := comps[0]
			for _, cmp := range comps[1:] {
				if len(cmp) < len(want) {
					want = cmp
				}
			}
			want = append([]NodeID(nil), want...)
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if !reflect.DeepEqual(smallest[k], want) {
				t.Errorf("%s ℓ=%d: witness %v, want %v", name, ell, smallest[k], want)
			}
		}
	}
}

// TestCSRDistancesMatchGraph pins the flat-heap Dijkstra to the
// adjacency-list implementation: shortest-path distances are unique, so the
// two must agree entry-for-entry (modulo the unreachable sentinels).
func TestCSRDistancesMatchGraph(t *testing.T) {
	for name, g := range csrTestGraphs() {
		c := BuildCSR(g)
		dist := make([]int32, g.N())
		var heapBuf []int64
		for _, src := range []NodeID{0, g.N() / 2, g.N() - 1} {
			heapBuf = c.DistancesFrom(src, dist, heapBuf)
			want := g.Distances(src)
			for u := 0; u < g.N(); u++ {
				if want[u] == Inf {
					if dist[u] != UnreachableDist {
						t.Fatalf("%s src=%d: node %d reachable in CSR but not Graph", name, src, u)
					}
					continue
				}
				if int(dist[u]) != want[u] {
					t.Fatalf("%s src=%d: dist[%d] = %d, want %d", name, src, u, dist[u], want[u])
				}
			}
		}
	}
}

// TestQuickCSRLevelDegreeSums checks Σ_u deg_ℓ(u) = 2·|E_ℓ| on random
// graphs at every level.
func TestQuickCSRLevelDegreeSums(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 5 + r.Intn(20)
		g := RandomLatencies(GNP(n, 0.3, 1, false, seed), 1, 5, seed)
		c := BuildCSR(g)
		ends := c.NewEnds()
		for _, ell := range c.Levels() {
			c.AdvanceEnds(ends, ell)
			sum := 0
			for u := 0; u < n; u++ {
				sum += c.LevelDegree(u, ends)
			}
			edges := 0
			for _, e := range g.Edges() {
				if e.Latency <= ell {
					edges++
				}
			}
			if sum != 2*edges {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
