package graph

import (
	"math"
	"testing"
)

// TestGadgetStructure verifies the Figure 1 constructions G(P) and G_sym(P).
func TestGadgetStructure(t *testing.T) {
	target := []Pair{{A: 1, B: 2}, {A: 0, B: 0}}
	for _, sym := range []bool{false, true} {
		gd, err := NewGadget(4, target, sym, 99)
		if err != nil {
			t.Fatalf("NewGadget(sym=%v): %v", sym, err)
		}
		g := gd.G
		if g.N() != 8 {
			t.Fatalf("n = %d, want 8", g.N())
		}
		// Clique on L with latency 1.
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				if l, ok := g.EdgeLatency(u, v); !ok || l != 1 {
					t.Errorf("L clique edge (%d,%d) latency=%d ok=%v", u, v, l, ok)
				}
			}
		}
		// Clique on R only in the symmetric variant.
		_, rClique := g.EdgeLatency(gd.Right(0), gd.Right(1))
		if rClique != sym {
			t.Errorf("sym=%v but R clique present=%v", sym, rClique)
		}
		// All m² cross edges present; fast iff in target.
		fast := map[Pair]bool{}
		for _, p := range target {
			fast[p] = true
		}
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				l, ok := g.EdgeLatency(gd.Left(a), gd.Right(b))
				if !ok {
					t.Fatalf("missing cross edge (%d,%d)", a, b)
				}
				want := 99
				if fast[Pair{A: a, B: b}] {
					want = 1
				}
				if l != want {
					t.Errorf("cross edge (%d,%d) latency %d, want %d", a, b, l, want)
				}
			}
		}
	}
}

func TestGadgetValidation(t *testing.T) {
	if _, err := NewGadget(1, nil, false, 5); err == nil {
		t.Error("m=1 should fail")
	}
	if _, err := NewGadget(3, []Pair{{A: 3, B: 0}}, false, 5); err == nil {
		t.Error("out-of-range target should fail")
	}
	if _, err := NewGadget(3, nil, false, 0); err == nil {
		t.Error("slow latency 0 should fail")
	}
}

func TestSingletonAndRandomTargets(t *testing.T) {
	p := SingletonTarget(16, 7)
	if len(p) != 1 || p[0].A < 0 || p[0].A >= 16 || p[0].B < 0 || p[0].B >= 16 {
		t.Errorf("SingletonTarget = %v", p)
	}
	tr := RandomTarget(64, 0.25, 7)
	got := float64(len(tr)) / (64.0 * 64.0)
	if math.Abs(got-0.25) > 0.05 {
		t.Errorf("RandomTarget density %g, want ~0.25", got)
	}
	// Deterministic for a fixed seed.
	tr2 := RandomTarget(64, 0.25, 7)
	if len(tr) != len(tr2) {
		t.Error("RandomTarget not deterministic")
	}
}

func TestTheoremSixNetwork(t *testing.T) {
	h, err := NewTheoremSixNetwork(64, 16, 3)
	if err != nil {
		t.Fatalf("NewTheoremSixNetwork: %v", err)
	}
	g := h.G
	if g.N() != 64 {
		t.Fatalf("n = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("H must be connected")
	}
	// Max degree Θ(Δ): gadget left nodes have Δ-1 clique + Δ cross (+1 attach).
	if d := g.MaxDegree(); d < 16 || d > 64 {
		t.Errorf("Δ = %d, want Θ(16) and < n", d)
	}
	// Weighted diameter O(1)-ish: everything reachable through latency-1
	// clique edges and the single fast cross edge... the fast edge keeps the
	// right side close to the left: D <= slow latency.
	if d := g.WeightedDiameter(); d > 64 {
		t.Errorf("weighted diameter = %d, too large", d)
	}
	if _, err := NewTheoremSixNetwork(10, 6, 1); err == nil {
		t.Error("2Δ > n should fail")
	}
}

func TestTheoremSevenNetwork(t *testing.T) {
	n, phi, ell := 64, 0.2, 4
	tn, err := NewTheoremSevenNetwork(n, phi, ell, 11)
	if err != nil {
		t.Fatalf("NewTheoremSevenNetwork: %v", err)
	}
	g := tn.G
	if g.N() != 2*n {
		t.Fatalf("n = %d, want %d", g.N(), 2*n)
	}
	// Fast cross edges have latency ℓ, slow ones 2n, cliques 1.
	fast, slow := 0, 0
	for _, e := range g.Edges() {
		switch e.Latency {
		case ell:
			fast++
		case 2 * n:
			slow++
		case 1:
		default:
			t.Fatalf("unexpected latency %d", e.Latency)
		}
	}
	if fast+slow != n*n {
		t.Errorf("cross edges = %d, want %d", fast+slow, n*n)
	}
	density := float64(fast) / float64(n*n)
	if math.Abs(density-phi) > 0.08 {
		t.Errorf("fast density %g, want ~%g", density, phi)
	}
	// Theorem 7: weighted diameter O(ℓ) whp.
	if d := g.WeightedDiameter(); d > 4*ell {
		t.Errorf("weighted diameter %d, want O(ℓ)=O(%d)", d, ell)
	}
	if _, err := NewTheoremSevenNetwork(8, 0.9, 1, 1); err == nil {
		t.Error("φ > 1/2 should fail")
	}
}

// TestRingNetworkStructure verifies Figure 2 and Observation 23.
func TestRingNetworkStructure(t *testing.T) {
	n, alpha, ell := 128, 0.125, 8
	rn, err := NewRingNetwork(n, alpha, ell, 5)
	if err != nil {
		t.Fatalf("NewRingNetwork: %v", err)
	}
	g := rn.G
	if g.N() != rn.K*rn.S {
		t.Fatalf("n = %d, want k·s = %d", g.N(), rn.K*rn.S)
	}
	// Observation 23: G is (3s-1)-regular.
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 3*rn.S-1 {
			t.Fatalf("node %d degree %d, want %d (Observation 23)", u, g.Degree(u), 3*rn.S-1)
		}
	}
	// One fast cross edge per layer pair.
	if len(rn.Fast) != rn.K {
		t.Errorf("fast edges = %d, want k=%d", len(rn.Fast), rn.K)
	}
	for _, fe := range rn.Fast {
		if l, ok := g.EdgeLatency(fe.U, fe.V); !ok || l != 1 {
			t.Errorf("fast edge (%d,%d) latency %d", fe.U, fe.V, l)
		}
	}
	// Weighted diameter Θ(k/2): each layer pair bridged by a latency-1 edge,
	// cliques internal latency 1 → D ≈ k (within constant factors).
	d := g.WeightedDiameter()
	if d < rn.K/2-1 || d > 3*rn.K {
		t.Errorf("weighted diameter %d, want Θ(k/2) with k=%d", d, rn.K)
	}
	// D = Θ(1/α): paper shows 2/(3α) < D <= 1/α up to rounding.
	if float64(d) > 3.0/alpha || float64(d) < 0.3/alpha {
		t.Errorf("D=%d outside Θ(1/α)=Θ(%g)", d, 1/alpha)
	}
}

func TestRingNetworkHalfCut(t *testing.T) {
	rn, err := NewRingNetwork(64, 0.25, 4, 9)
	if err != nil {
		t.Fatalf("NewRingNetwork: %v", err)
	}
	c := rn.HalfCut()
	if len(c) != (rn.K/2)*rn.S {
		t.Errorf("|C| = %d, want %d", len(c), (rn.K/2)*rn.S)
	}
	// No intra-layer clique edge crosses the cut.
	in := make(map[NodeID]bool, len(c))
	for _, u := range c {
		in[u] = true
	}
	for _, e := range rn.G.Edges() {
		if e.Latency == 1 && in[e.U] != in[e.V] {
			// Only fast cross edges (between layers) may cross; clique edges
			// must not. Identify layer of endpoints.
			lu, lv := e.U/rn.S, e.V/rn.S
			if lu == lv {
				t.Fatalf("clique edge (%d,%d) crosses the half cut", e.U, e.V)
			}
		}
	}
}

func TestRingNetworkValidation(t *testing.T) {
	if _, err := NewRingNetwork(64, 0, 1, 1); err == nil {
		t.Error("α=0 should fail")
	}
	if _, err := NewRingNetwork(64, 2, 1, 1); err == nil {
		t.Error("α>1 should fail")
	}
	if _, err := NewRingNetwork(64, 0.25, 0, 1); err == nil {
		t.Error("ℓ=0 should fail")
	}
	if _, err := NewRingNetwork(2, 0.1, 1, 1); err == nil {
		t.Error("nα<1 should fail")
	}
}
