package graph

import (
	"fmt"
	"math"

	"gossip/internal/rng"
)

// Torus returns the rows×cols torus (grid with wraparound), uniform latency.
// Node (r,c) has ID r*cols+c. Requires rows, cols >= 3 so wrap edges do not
// duplicate grid edges.
func Torus(rows, cols, latency int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: Torus needs rows, cols >= 3 (got %d,%d)", rows, cols))
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(id(r, c), id(r, c+1), latency)
			g.MustAddEdge(id(r, c), id(r+1, c), latency)
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes, uniform
// latency. Node IDs are the binary labels; neighbors differ in one bit.
func Hypercube(dim, latency int) *Graph {
	if dim < 1 || dim > 20 {
		panic(fmt.Sprintf("graph: Hypercube dimension %d out of [1,20]", dim))
	}
	n := 1 << uint(dim)
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.MustAddEdge(u, v, latency)
			}
		}
	}
	return g
}

// CompleteBinaryTree returns the complete binary tree on n nodes (heap
// layout: children of i are 2i+1 and 2i+2), uniform latency.
func CompleteBinaryTree(n, latency int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge((v-1)/2, v, latency)
	}
	return g
}

// RandomRegular returns a connected random d-regular-ish multigraph-free
// graph via the pairing heuristic with retries: every node ends with degree
// in [d-1, d+1] and the graph is connected (a path backbone is added if the
// pairing leaves it disconnected). n·d must be even for an exact pairing.
func RandomRegular(n, d int, latency int, seed uint64) *Graph {
	if d < 2 || d >= n {
		panic(fmt.Sprintf("graph: RandomRegular needs 2 <= d < n (got d=%d, n=%d)", d, n))
	}
	r := rng.Stream(seed, 0x7272) // "rr"
	g := New(n)
	// Pairing model: n·d half-edge stubs shuffled and paired; invalid pairs
	// (loops, duplicates) are skipped — degrees may fall one short.
	stubs := make([]NodeID, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) || g.Degree(u) > d || g.Degree(v) > d {
			continue
		}
		g.MustAddEdge(u, v, latency)
	}
	// Guarantee connectivity.
	for v := 1; v < n; v++ {
		if g.HopDistances(0)[v] == Inf && !g.HasEdge(v-1, v) {
			g.MustAddEdge(v-1, v, latency)
		}
	}
	return g
}

// Caterpillar returns a path of length spine where every spine node carries
// legs pendant leaves — a high-degree, high-diameter family useful for
// exercising the D + Δ regime.
func Caterpillar(spine, legs, latency int) *Graph {
	if spine < 1 || legs < 0 {
		panic(fmt.Sprintf("graph: Caterpillar needs spine >= 1, legs >= 0 (got %d,%d)", spine, legs))
	}
	g := New(spine * (1 + legs))
	for v := 1; v < spine; v++ {
		g.MustAddEdge(v-1, v, latency)
	}
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(s, spine+s*legs+l, latency)
		}
	}
	return g
}

// ChungLu returns a power-law random graph: node v gets expected degree
// w_v ∝ (v+1)^{-1/(β-1)} scaled to the target average degree, and each edge
// {u,v} appears independently with probability min(1, w_u·w_v/Σw). β in
// (2, 3] matches the social-network regime of Doerr, Fouz and Friedrich
// (related work: rumors spread in Θ(log n) there). A path backbone keeps
// the graph connected.
func ChungLu(n int, beta, avgDeg float64, latency int, seed uint64) *Graph {
	if n < 2 || beta <= 2 || avgDeg <= 0 {
		panic(fmt.Sprintf("graph: ChungLu needs n>=2, β>2, avgDeg>0 (got %d, %g, %g)", n, beta, avgDeg))
	}
	w := make([]float64, n)
	sum := 0.0
	exp := -1 / (beta - 1)
	for v := 0; v < n; v++ {
		w[v] = math.Pow(float64(v+1), exp)
		sum += w[v]
	}
	// Scale weights so the expected average degree is avgDeg.
	scale := avgDeg * float64(n) / sum
	total := 0.0
	for v := range w {
		w[v] *= scale
		total += w[v]
	}
	r := rng.Stream(seed, 0x636c) // "cl"
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := w[u] * w[v] / total
			if p > 1 {
				p = 1
			}
			if r.Float64() < p {
				g.MustAddEdge(u, v, latency)
			}
		}
	}
	for v := 1; v < n; v++ {
		if !g.HasEdge(v-1, v) && g.Degree(v) == 0 {
			g.MustAddEdge(v-1, v, latency)
		}
	}
	// Final connectivity stitch across remaining components.
	comps := g.Components()
	for i := 1; i < len(comps); i++ {
		g.MustAddEdge(comps[0][0], comps[i][0], latency)
	}
	return g
}

// RingChords returns a cycle on n nodes augmented with roughly chords·n/2
// random chord edges (so expected chord-degree ≈ chords per node). Ring edges
// have latency 1; chords draw latencies uniformly from [1, latMax] — the
// paper's heterogeneous-latency regime: a fast local ring overlaid with slow
// long-range links. Construction is O(n·chords) time and memory, never
// touching the n² pair space, which makes it the generator of choice for the
// million-node cluster harness where GNP and ChungLu are unaffordable.
func RingChords(n, chords, latMax int, seed uint64) *Graph {
	if n < 3 || chords < 0 || latMax < 1 {
		panic(fmt.Sprintf("graph: RingChords needs n>=3, chords>=0, latMax>=1 (got %d, %d, %d)", n, chords, latMax))
	}
	r := rng.Stream(seed, 0x7263) // "rc"
	g := New(n)
	g.edges = make([]Edge, 0, n+n*chords/2)
	for v := 0; v < n; v++ {
		g.adj[v] = make([]HalfEdge, 0, 2+chords)
	}
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, 1)
	}
	// Sample chord endpoints independently; collisions with existing edges
	// are skipped, not retried — on sparse graphs the loss is negligible and
	// the bound on attempts keeps the construction strictly linear.
	for i := 0; i < n*chords/2; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 1+r.Intn(latMax))
	}
	return g
}

// Components returns the connected components as slices of node IDs, in
// increasing order of their smallest member.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.n)
	var comps [][]NodeID
	for start := 0; start < g.n; start++ {
		if seen[start] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{start}
		seen[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, he := range g.adj[u] {
				if !seen[he.To] {
					seen[he.To] = true
					queue = append(queue, he.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int, 8)
	for u := 0; u < g.n; u++ {
		h[len(g.adj[u])]++
	}
	return h
}

// InducedSubgraph returns the subgraph induced by the given node set,
// along with the mapping from new IDs (0..len(set)-1) to original IDs.
func (g *Graph) InducedSubgraph(set []NodeID) (*Graph, []NodeID) {
	idx := make(map[NodeID]int, len(set))
	orig := make([]NodeID, len(set))
	for i, u := range set {
		idx[u] = i
		orig[i] = u
	}
	sub := New(len(set))
	for _, e := range g.edges {
		iu, okU := idx[e.U]
		iv, okV := idx[e.V]
		if okU && okV {
			sub.MustAddEdge(iu, iv, e.Latency)
		}
	}
	return sub, orig
}
