package graph

import "testing"

func BenchmarkDijkstra(b *testing.B) {
	g := RandomLatencies(GNP(512, 0.02, 1, true, 3), 1, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Distances(i % g.N())
	}
}

func BenchmarkBFS(b *testing.B) {
	g := GNP(512, 0.02, 1, true, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HopDistances(i % g.N())
	}
}

func BenchmarkRingNetworkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewRingNetwork(64, 0.25, 8, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGadgetBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		target := RandomTarget(64, 0.1, uint64(i)+1)
		if _, err := NewGadget(64, target, true, 128); err != nil {
			b.Fatal(err)
		}
	}
}
