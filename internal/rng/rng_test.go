package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	if Hash(1, 2, 3) != Hash(1, 2, 3) {
		t.Error("Hash not deterministic")
	}
	if Hash(1, 2, 3) == Hash(1, 2, 4) {
		t.Error("Hash collision on trivially different inputs")
	}
	if Hash(1, 2) == Hash(2, 1) {
		t.Error("Hash should be order sensitive")
	}
}

func TestCoinEdgeCases(t *testing.T) {
	if Coin(0, 1, 2) {
		t.Error("p=0 must never be true")
	}
	if Coin(-0.5, 1, 2) {
		t.Error("negative p must never be true")
	}
	if !Coin(1, 1, 2) {
		t.Error("p=1 must always be true")
	}
	if !Coin(1.5, 1, 2) {
		t.Error("p>1 must always be true")
	}
}

func TestCoinSharedRandomness(t *testing.T) {
	// Two independent evaluations with the same tuple agree — the property
	// that lets distributed nodes share sampling decisions.
	for i := uint64(0); i < 1000; i++ {
		if Coin(0.3, 42, i) != Coin(0.3, 42, i) {
			t.Fatalf("coin %d not reproducible", i)
		}
	}
}

func TestCoinBias(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			if Coin(p, 7, uint64(i)) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.02 {
			t.Errorf("Coin(%g) empirical rate %g", p, got)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := Stream(1, 1)
	b := Stream(1, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("streams for different ids coincide on %d/100 draws", same)
	}
	c := Stream(1, 1)
	d := Stream(1, 1)
	for i := 0; i < 100; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same (seed,id) stream not reproducible")
		}
	}
}

func TestQuickHashUniformHighBit(t *testing.T) {
	// The top bit of Hash should be unbiased over random inputs.
	ones := 0
	total := 0
	f := func(x, y uint64) bool {
		total++
		if Hash(x, y)>>63 == 1 {
			ones++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
	ratio := float64(ones) / float64(total)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("high-bit ratio %g, want ~0.5", ratio)
	}
}
