// Package rng provides deterministic pseudo-randomness for the whole
// repository. Two facilities are exposed:
//
//   - PRF: a stateless SplitMix64-based pseudo-random function over tuples of
//     integers, used wherever the paper assumes *public shared randomness*
//     (Alice's public random bits in the guessing game, and the shared
//     cluster-sampling coins of the distributed Baswana–Sen spanner). Every
//     node evaluating the PRF with the same seed sees the same coin.
//
//   - Stream: a per-entity random stream (math/rand compatible Source) derived
//     from a master seed and an entity ID, so simulations are reproducible
//     regardless of goroutine scheduling or iteration order.
package rng

import (
	"math/rand"
	"sync"
)

// splitmix64 advances the SplitMix64 state and returns the next output.
// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash mixes an arbitrary tuple of integers into a single 64-bit value.
func Hash(vals ...uint64) uint64 {
	h := uint64(0x51ab_de37_91c0_ffee)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return splitmix64(h)
}

// Coin returns a deterministic biased coin: true with probability p, computed
// from the tuple (seed, vals...). All parties that evaluate Coin with the
// same arguments observe the same outcome — this is the repository's
// implementation of public shared randomness.
func Coin(p float64, seed uint64, vals ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := Hash(append([]uint64{seed}, vals...)...)
	// Use the top 53 bits for a uniform float in [0,1).
	u := float64(h>>11) / float64(1<<53)
	return u < p
}

// source is a SplitMix64-backed rand.Source64. Seeding is O(1) — against the
// ~600-word table initialization of math/rand's default source — which
// matters because the simulator derives one stream per node per run, and at
// benchmark scale source seeding otherwise dominates the profile.
type source struct{ state uint64 }

func (s *source) Seed(seed int64) { s.state = uint64(seed) }

func (s *source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Stream returns a deterministic *rand.Rand derived from (seed, id). Distinct
// ids yield independent-looking streams.
func Stream(seed uint64, id uint64) *rand.Rand {
	return rand.New(&source{state: Hash(seed, id)})
}

// New returns a deterministic *rand.Rand for a bare seed.
func New(seed uint64) *rand.Rand {
	return Stream(seed, 0)
}

// streamPool recycles *rand.Rand values so short-lived networks (benchmark
// iterations, experiment trials) do not allocate one Rand + source per node
// per run.
var streamPool = sync.Pool{
	New: func() interface{} {
		return rand.New(&source{})
	},
}

// Acquire returns a pooled *rand.Rand reseeded to the (seed, id) stream —
// the sequence is identical to Stream(seed, id)'s. Release it when the run
// finishes; the caller must not use it after Release.
func Acquire(seed uint64, id uint64) *rand.Rand {
	r := streamPool.Get().(*rand.Rand)
	r.Seed(int64(Hash(seed, id))) //nolint:gosec // deterministic simulation, not crypto
	return r
}

// Release returns an Acquired stream to the pool.
func Release(r *rand.Rand) {
	streamPool.Put(r)
}
