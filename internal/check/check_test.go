package check

import (
	"strings"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

func TestCausalityAccepts(t *testing.T) {
	g := graph.Path(3, 4) // distances from 0: 0, 4, 8
	if err := Causality(g, 0, []int{0, 2, 4}); err != nil {
		t.Errorf("valid timeline rejected: %v", err)
	}
	// Never-informed entries are skipped.
	if err := Causality(g, 0, []int{0, -1, 4}); err != nil {
		t.Errorf("timeline with uninformed node rejected: %v", err)
	}
}

func TestCausalityRejectsFasterThanLight(t *testing.T) {
	g := graph.Path(3, 4)
	err := Causality(g, 0, []int{0, 1, 4}) // node 1 at round 1 < ⌈4/2⌉
	if err == nil || !strings.Contains(err.Error(), "causal bound") {
		t.Errorf("superluminal rumor accepted: %v", err)
	}
	if err := Causality(g, 0, []int{3, 2, 4}); err == nil {
		t.Error("nonzero source time accepted")
	}
	if err := Causality(g, 0, []int{0, 2}); err == nil {
		t.Error("wrong-length timeline accepted")
	}
}

func TestCoverage(t *testing.T) {
	if err := Coverage([]int{0, 3, 5}, nil); err != nil {
		t.Errorf("full coverage rejected: %v", err)
	}
	if err := Coverage([]int{0, -1, 5}, nil); err == nil {
		t.Error("missing node accepted")
	}
	// Nodes excluded by the filter may be uninformed.
	if err := Coverage([]int{0, -1, 5}, func(v graph.NodeID) bool { return v != 1 }); err != nil {
		t.Errorf("filtered coverage rejected: %v", err)
	}
}

func TestMetrics(t *testing.T) {
	ok := sim.Metrics{Rounds: 5, Requests: 10, Responses: 10, EdgeActivations: 10}
	if err := Metrics(ok); err != nil {
		t.Errorf("valid metrics rejected: %v", err)
	}
	bad := ok
	bad.Responses = 11
	if err := Metrics(bad); err == nil {
		t.Error("responses > requests accepted")
	}
	bad = ok
	bad.EdgeActivations = 9
	if err := Metrics(bad); err == nil {
		t.Error("activations != requests accepted")
	}
}

func TestTraceConsistency(t *testing.T) {
	good := []sim.TraceEvent{
		{Kind: sim.TraceInitiate, Round: 1, From: 0, To: 1, EdgeID: 0, Latency: 5},
		{Kind: sim.TraceRequest, Round: 4, From: 0, To: 1, EdgeID: 0, Latency: 5},
	}
	if err := TraceConsistency(good, false); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	early := []sim.TraceEvent{
		{Kind: sim.TraceInitiate, Round: 1, From: 0, To: 1, EdgeID: 0, Latency: 5},
		{Kind: sim.TraceRequest, Round: 2, From: 0, To: 1, EdgeID: 0, Latency: 5},
	}
	if err := TraceConsistency(early, false); err == nil {
		t.Error("early delivery accepted")
	}
	orphan := []sim.TraceEvent{
		{Kind: sim.TraceRequest, Round: 2, From: 0, To: 1, EdgeID: 0, Latency: 5},
	}
	if err := TraceConsistency(orphan, false); err == nil {
		t.Error("request without initiation accepted")
	}
	// Full-RTT: delivery at initiation + ℓ.
	full := []sim.TraceEvent{
		{Kind: sim.TraceInitiate, Round: 1, From: 0, To: 1, EdgeID: 0, Latency: 5},
		{Kind: sim.TraceRequest, Round: 6, From: 0, To: 1, EdgeID: 0, Latency: 5},
	}
	if err := TraceConsistency(full, true); err != nil {
		t.Errorf("full-RTT trace rejected: %v", err)
	}
}

// TestLiveTraceFromEngine validates a real engine trace end to end.
func TestLiveTraceFromEngine(t *testing.T) {
	g := graph.RingOfCliques(3, 4, 3)
	var rec sim.Recorder
	nw := sim.NewNetwork(g, sim.Config{Seed: 1, MaxRounds: 200, Trace: rec.Tracer()})
	for u := 0; u < g.N(); u++ {
		u := u
		nw.SetHandler(u, sim.NewProc(func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				p.Send(p.Rand().Intn(p.Degree()), nil)
			}
			p.WaitRounds(10)
		}))
	}
	if _, err := nw.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := TraceConsistency(rec.Events, false); err != nil {
		t.Errorf("live trace violates the delivery model: %v", err)
	}
}
