// Package check provides executable model invariants used by tests: no
// protocol run may violate them regardless of algorithm or topology. They
// encode the physics of the gossip model — information cannot outrun edge
// latencies — and basic sanity of the reported metrics.
package check

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Causality verifies the speed-of-light bound of the model: with split
// delivery a rumor traverses an edge of latency ℓ in no less than ⌈ℓ/2⌉
// rounds (the one-way request leg), so a node at weighted distance d from
// the source cannot be informed before round ⌈d/2⌉. informedAt[v] < 0 means
// "never informed" and is skipped.
func Causality(g *graph.Graph, source graph.NodeID, informedAt []int) error {
	if len(informedAt) != g.N() {
		return fmt.Errorf("check: informedAt has %d entries for %d nodes", len(informedAt), g.N())
	}
	dist := g.Distances(source)
	for v, r := range informedAt {
		if r < 0 || v == source {
			continue
		}
		if lo := (dist[v] + 1) / 2; r < lo {
			return fmt.Errorf("check: node %d informed at round %d, below the causal bound ⌈d/2⌉=%d (d=%d)",
				v, r, lo, dist[v])
		}
	}
	if informedAt[source] != 0 {
		return fmt.Errorf("check: source informed at %d, want 0", informedAt[source])
	}
	return nil
}

// Coverage verifies that every node in required is informed
// (informedAt >= 0).
func Coverage(informedAt []int, required func(v graph.NodeID) bool) error {
	for v, r := range informedAt {
		if required != nil && !required(v) {
			continue
		}
		if r < 0 {
			return fmt.Errorf("check: node %d never informed", v)
		}
	}
	return nil
}

// Metrics verifies internal consistency of run metrics: responses never
// exceed requests (every response answers a request), activations equal
// requests, and rounds/bytes are non-negative.
func Metrics(m sim.Metrics) error {
	switch {
	case m.Rounds < 0 || m.Bytes < 0:
		return fmt.Errorf("check: negative metrics %+v", m)
	case m.Responses > m.Requests:
		return fmt.Errorf("check: %d responses exceed %d requests", m.Responses, m.Requests)
	case m.EdgeActivations != m.Requests:
		return fmt.Errorf("check: %d activations != %d requests", m.EdgeActivations, m.Requests)
	}
	return nil
}

// TraceConsistency verifies an event trace against the delivery model:
// every request delivery happens exactly ⌈ℓ/2⌉ rounds after its initiation
// and every response exactly ℓ rounds after, per edge, in order. It assumes
// at most one in-flight exchange per (edge, initiation round), which holds
// because a node initiates at most once per round.
func TraceConsistency(events []sim.TraceEvent, fullRTT bool) error {
	type key struct {
		edge     int
		from, to graph.NodeID
	}
	initiations := make(map[key][]int)
	for _, ev := range events {
		switch ev.Kind {
		case sim.TraceInitiate:
			k := key{edge: ev.EdgeID, from: ev.From, to: ev.To}
			initiations[k] = append(initiations[k], ev.Round)
		case sim.TraceRequest:
			k := key{edge: ev.EdgeID, from: ev.From, to: ev.To}
			q := initiations[k]
			if len(q) == 0 {
				return fmt.Errorf("check: request %v without initiation", ev)
			}
			initiations[k] = q[1:]
			want := q[0] + (ev.Latency+1)/2
			if fullRTT {
				want = q[0] + ev.Latency
			}
			// Congestion (bounded in-degree) may delay delivery beyond the
			// nominal time but never before it.
			if ev.Round < want {
				return fmt.Errorf("check: request %v delivered at %d, before nominal %d", ev, ev.Round, want)
			}
		}
	}
	return nil
}
