// Package spanner implements the Baswana–Sen randomized (2k−1)-spanner
// construction used by the paper's EID algorithm (Section 5.2, Appendix D),
// including the edge *orientation*: every spanner edge is directed out of
// the vertex whose rule added it, which bounds each node's out-degree by
// O(n^{1/k} log n) whp (Lemma 13) — O(log n) for k = log n.
//
// Cluster sampling uses a shared pseudo-random function of
// (seed, center, iteration), so every node of a distributed execution makes
// identical sampling decisions from the public seed; this is what lets the
// gossip-model EID compute the spanner locally after gathering its
// k-hop neighborhood (Theorem 14). Edge weights are the latencies with ties
// broken canonically by endpoint IDs, making the construction independent of
// edge enumeration order — a ball-restricted run at any node agrees with the
// centralized run.
package spanner

import (
	"fmt"
	"math"
	"sort"

	"gossip/internal/graph"
	"gossip/internal/rng"
)

// OrientedEdge is a spanner edge directed out of the vertex that added it.
type OrientedEdge struct {
	From, To graph.NodeID
	Latency  int
}

// Spanner is the result of a construction over a graph on n nodes.
type Spanner struct {
	K     int
	N     int
	Out   [][]OrientedEdge // Out[v] lists edges oriented out of v
	edges map[[2]graph.NodeID]bool
}

// Size returns the number of (undirected) spanner edges.
func (s *Spanner) Size() int { return len(s.edges) }

// MaxOutDegree returns the largest out-degree over all nodes.
func (s *Spanner) MaxOutDegree() int {
	d := 0
	for _, out := range s.Out {
		if len(out) > d {
			d = len(out)
		}
	}
	return d
}

// Has reports whether the undirected edge {u,v} is in the spanner.
func (s *Spanner) Has(u, v graph.NodeID) bool {
	return s.edges[edgeKey(u, v)]
}

// UndirectedGraph returns the spanner as a latency-weighted graph on the
// same node set, with edges in canonical order.
func (s *Spanner) UndirectedGraph() *graph.Graph {
	g := graph.New(s.N)
	keys := make([][2]graph.NodeID, 0, len(s.edges))
	for key := range s.edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		// Latency recovered from either orientation entry.
		lat := 0
		for _, oe := range s.Out[key[0]] {
			if oe.To == key[1] {
				lat = oe.Latency
			}
		}
		if lat == 0 {
			for _, oe := range s.Out[key[1]] {
				if oe.To == key[0] {
					lat = oe.Latency
				}
			}
		}
		g.MustAddEdge(key[0], key[1], lat)
	}
	return g
}

func edgeKey(u, v graph.NodeID) [2]graph.NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.NodeID{u, v}
}

// weightLess compares edges by (latency, canonical endpoints); the paper
// assumes distinct weights and suggests breaking ties with node IDs.
func weightLess(aLat int, aU, aV graph.NodeID, bLat int, bU, bV graph.NodeID) bool {
	if aLat != bLat {
		return aLat < bLat
	}
	ak, bk := edgeKey(aU, aV), edgeKey(bU, bV)
	if ak[0] != bk[0] {
		return ak[0] < bk[0]
	}
	return ak[1] < bk[1]
}

// Detail records the clustering trace of a construction for analysis and
// validation: Centers[i][v] is v's cluster center after iteration i
// (Centers[0][v] = v; -1 marks vertices that have left V′).
type Detail struct {
	Centers [][]graph.NodeID
}

// DistinctCenters returns the number of live clusters after iteration i.
func (d *Detail) DistinctCenters(i int) int {
	seen := make(map[graph.NodeID]bool)
	for _, c := range d.Centers[i] {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}

// SampleCoin reports the shared sampling decision for a cluster center at
// an iteration — the public coin every node evaluates identically.
func SampleCoin(nHat, k int, seed uint64, center graph.NodeID, iter int) bool {
	prob := math.Pow(float64(nHat), -1.0/float64(k))
	return rng.Coin(prob, seed, uint64(center)+1, uint64(iter))
}

// Build runs the Baswana–Sen construction with parameter k on g, using nHat
// (an upper bound on n, see Lemma 13) for the sampling probability
// nHat^{-1/k} and the shared seed for cluster sampling. The result is a
// (2k−1)-spanner of g whp.
func Build(g *graph.Graph, k, nHat int, seed uint64) (*Spanner, error) {
	sp, _, err := BuildDetailed(g, k, nHat, seed)
	return sp, err
}

// BuildDetailed is Build returning the clustering trace too.
func BuildDetailed(g *graph.Graph, k, nHat int, seed uint64) (*Spanner, *Detail, error) {
	n := g.N()
	if k < 1 {
		return nil, nil, fmt.Errorf("spanner: k must be >= 1, got %d", k)
	}
	if nHat < n {
		return nil, nil, fmt.Errorf("spanner: nHat=%d < n=%d", nHat, n)
	}
	sp := &Spanner{
		K:     k,
		N:     n,
		Out:   make([][]OrientedEdge, n),
		edges: make(map[[2]graph.NodeID]bool),
	}
	detail := &Detail{}
	if k == 1 {
		// A 1-spanner is the graph itself; orient out of the smaller ID.
		for _, e := range g.Edges() {
			sp.addEdge(e.U, e.V, e.Latency)
		}
		return sp, detail, nil
	}

	prob := math.Pow(float64(nHat), -1.0/float64(k))
	// center[v] is v's cluster center in the current clustering R_{i-1};
	// -1 marks vertices that have left V' (unclustered forever).
	center := make([]graph.NodeID, n)
	for v := range center {
		center[v] = v
	}
	alive := make([]bool, g.M())
	for i := range alive {
		alive[i] = true
	}
	detail.Centers = append(detail.Centers, append([]graph.NodeID(nil), center...))

	for iter := 1; iter <= k-1; iter++ {
		// Sample clusters of R_{i-1} with shared coins keyed by
		// (seed, center, iter): a cluster survives all iterations 1..i iff
		// every coin so far came up heads — equivalently we flip one coin
		// per iteration per surviving center.
		sampled := func(c graph.NodeID) bool {
			return rng.Coin(prob, seed, uint64(c)+1, uint64(iter))
		}
		newCenter := make([]graph.NodeID, n)
		copy(newCenter, center)
		var kills []int // edge IDs to discard at the end of the iteration

		for v := 0; v < n; v++ {
			if center[v] < 0 {
				continue // v left V' in an earlier iteration
			}
			if sampled(center[v]) {
				continue // v's cluster survived; v stays put
			}
			// v's cluster was not sampled: inspect adjacent clusters over
			// alive edges to clustered neighbors.
			type best struct {
				lat    int
				u      graph.NodeID
				edgeID int
			}
			bests := make(map[graph.NodeID]best) // cluster center -> least edge
			for _, he := range g.Neighbors(v) {
				if !alive[he.ID] || center[he.To] < 0 {
					continue
				}
				c := center[he.To]
				b, ok := bests[c]
				if !ok || weightLess(he.Latency, v, he.To, b.lat, v, b.u) {
					bests[c] = best{lat: he.Latency, u: he.To, edgeID: he.ID}
				}
			}
			// Least edge among adjacent *sampled* clusters, if any.
			var (
				starC   graph.NodeID = -1
				starB   best
				hasStar bool
			)
			for c, b := range bests {
				if !sampled(c) {
					continue
				}
				if !hasStar || weightLess(b.lat, v, b.u, starB.lat, v, starB.u) {
					starC, starB, hasStar = c, b, true
				}
			}
			if !hasStar {
				// Rule 1: no sampled neighbor cluster. Add the least edge to
				// every adjacent cluster, discard all other edges to those
				// clusters, and leave V'.
				for _, b := range bests {
					sp.addEdge(v, b.u, b.lat)
				}
				for _, he := range g.Neighbors(v) {
					if alive[he.ID] && center[he.To] >= 0 {
						kills = append(kills, he.ID)
					}
				}
				newCenter[v] = -1
				continue
			}
			// Rule 2: join the sampled cluster with the overall least edge
			// e_v; also add the least edge to every adjacent cluster whose
			// least edge is lighter than e_v, discarding edges to those
			// clusters and to the joined cluster.
			sp.addEdge(v, starB.u, starB.lat)
			newCenter[v] = starC
			discard := map[graph.NodeID]bool{starC: true}
			for c, b := range bests {
				if c == starC {
					continue
				}
				if weightLess(b.lat, v, b.u, starB.lat, v, starB.u) {
					sp.addEdge(v, b.u, b.lat)
					discard[c] = true
				}
			}
			for _, he := range g.Neighbors(v) {
				if alive[he.ID] && center[he.To] >= 0 && discard[center[he.To]] {
					kills = append(kills, he.ID)
				}
			}
		}
		for _, id := range kills {
			alive[id] = false
		}
		center = newCenter
		detail.Centers = append(detail.Centers, append([]graph.NodeID(nil), center...))
		// Remove intra-cluster edges of the new clustering.
		for id, e := range g.Edges() {
			if alive[id] && center[e.U] >= 0 && center[e.U] == center[e.V] {
				alive[id] = false
			}
		}
	}

	// Phase 2 (iteration k): every vertex adds the least alive edge to each
	// adjacent cluster of R_{k-1}.
	for v := 0; v < n; v++ {
		type best struct {
			lat int
			u   graph.NodeID
		}
		bests := make(map[graph.NodeID]best)
		for _, he := range g.Neighbors(v) {
			if !alive[he.ID] || center[he.To] < 0 || center[he.To] == centerOf(center, v) {
				continue
			}
			c := center[he.To]
			b, ok := bests[c]
			if !ok || weightLess(he.Latency, v, he.To, b.lat, v, b.u) {
				bests[c] = best{lat: he.Latency, u: he.To}
			}
		}
		for _, b := range bests {
			sp.addEdge(v, b.u, b.lat)
		}
	}
	sp.canonicalize()
	return sp, detail, nil
}

// canonicalize sorts each node's out-edges so the construction is fully
// deterministic: the edge *set* never depends on map iteration order, but
// downstream protocols (RR Broadcast) consume Out slices in order.
func (s *Spanner) canonicalize() {
	for v := range s.Out {
		sort.Slice(s.Out[v], func(i, j int) bool {
			return s.Out[v][i].To < s.Out[v][j].To
		})
	}
}

// centerOf returns v's center or -2 when v is unclustered, so it never
// compares equal to a real center.
func centerOf(center []graph.NodeID, v graph.NodeID) graph.NodeID {
	if center[v] < 0 {
		return -2
	}
	return center[v]
}

// addEdge records an edge oriented out of from; if the undirected edge is
// already present (added earlier, possibly by the other endpoint), the call
// is a no-op so out-degrees are not double counted.
func (s *Spanner) addEdge(from, to graph.NodeID, lat int) {
	key := edgeKey(from, to)
	if s.edges[key] {
		return
	}
	s.edges[key] = true
	s.Out[from] = append(s.Out[from], OrientedEdge{From: from, To: to, Latency: lat})
}

// Stretch returns the worst multiplicative stretch of the spanner over all
// connected pairs: max_{u,v} dist_S(u,v) / dist_G(u,v). Quadratic in n — use
// on moderate graphs (tests and experiments).
func Stretch(g *graph.Graph, sp *Spanner) float64 {
	sg := sp.UndirectedGraph()
	worst := 1.0
	for u := 0; u < g.N(); u++ {
		dg := g.Distances(u)
		ds := sg.Distances(u)
		for v := 0; v < g.N(); v++ {
			if u == v || dg[v] == graph.Inf {
				continue
			}
			if ds[v] == graph.Inf {
				return math.Inf(1)
			}
			if r := float64(ds[v]) / float64(dg[v]); r > worst {
				worst = r
			}
		}
	}
	return worst
}
