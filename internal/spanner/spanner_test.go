package spanner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gossip/internal/graph"
)

func TestBuildValidation(t *testing.T) {
	g := graph.Clique(4, 1)
	if _, err := Build(g, 0, 4, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Build(g, 2, 3, 1); err == nil {
		t.Error("nHat < n should fail")
	}
}

func TestK1IsIdentity(t *testing.T) {
	g := graph.Clique(5, 2)
	sp, err := Build(g, 1, 5, 1)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sp.Size() != g.M() {
		t.Errorf("1-spanner size %d, want %d", sp.Size(), g.M())
	}
	if s := Stretch(g, sp); s != 1 {
		t.Errorf("stretch = %g, want 1", s)
	}
}

func TestSpannerConnectivity(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{name: "clique-k2", g: graph.Clique(24, 1), k: 2},
		{name: "clique-k3", g: graph.Clique(24, 1), k: 3},
		{name: "gnp-k2", g: graph.GNP(40, 0.3, 1, true, 3), k: 2},
		{name: "weighted-gnp-k3", g: graph.RandomLatencies(graph.GNP(32, 0.3, 1, true, 5), 1, 8, 5), k: 3},
		{name: "ringcliques-k3", g: graph.RingOfCliques(4, 8, 5), k: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sp, err := Build(tt.g, tt.k, tt.g.N(), 7)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if !sp.UndirectedGraph().Connected() {
				t.Fatal("spanner of connected graph must be connected")
			}
			if st, bound := Stretch(tt.g, sp), float64(2*tt.k-1); st > bound {
				t.Errorf("stretch %g exceeds 2k-1 = %g", st, bound)
			}
		})
	}
}

func TestSpannerSparsifiesClique(t *testing.T) {
	// K_n with k=2: expected size O(n^{3/2}), far below n²/2.
	n := 48
	g := graph.Clique(n, 1)
	sp, err := Build(g, 2, n, 9)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bound := 4 * int(math.Pow(float64(n), 1.5))
	if sp.Size() > bound {
		t.Errorf("2-spanner of K%d has %d edges, want O(n^1.5) ≈ <= %d", n, sp.Size(), bound)
	}
	if sp.Size() >= g.M() {
		t.Errorf("spanner did not sparsify: %d >= %d", sp.Size(), g.M())
	}
}

// TestLemma13OutDegree verifies the out-degree bound O(n^{1/k} log n) whp.
func TestLemma13OutDegree(t *testing.T) {
	n := 64
	g := graph.Clique(n, 1)
	k := int(math.Ceil(math.Log2(float64(n))))
	sp, err := Build(g, k, n, 11)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// n^{1/log n} = 2, so the bound is c·log n.
	bound := 6 * int(math.Ceil(math.Log2(float64(n))))
	if d := sp.MaxOutDegree(); d > bound {
		t.Errorf("max out-degree %d, want O(log n) <= %d (Lemma 13)", d, bound)
	}
}

// TestTheorem14SpannerSize verifies O(n log n) edges at k = log n.
func TestTheorem14SpannerSize(t *testing.T) {
	n := 64
	g := graph.GNP(n, 0.5, 1, true, 13)
	k := int(math.Ceil(math.Log2(float64(n))))
	sp, err := Build(g, k, n, 13)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bound := 8 * n * int(math.Ceil(math.Log2(float64(n))))
	if sp.Size() > bound {
		t.Errorf("spanner size %d, want O(n log n) <= %d", sp.Size(), bound)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := graph.GNP(30, 0.4, 1, true, 17)
	a, err := Build(g, 3, 30, 21)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := Build(g, 3, 30, 21)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a.Size() != b.Size() {
		t.Fatal("same seed produced different spanners")
	}
	for key := range a.edges {
		if !b.edges[key] {
			t.Fatalf("edge %v missing in second build", key)
		}
	}
}

// TestBallRestrictedAgreement is the distributed-consistency property that
// EID relies on: running the construction on a node's (k+1)-hop ball with
// the same shared seed yields the same out-edges for that node as the
// centralized run, because sampling coins are keyed by (seed, center, iter)
// and tie-breaking is canonical.
func TestBallRestrictedAgreement(t *testing.T) {
	g := graph.RingOfCliques(4, 6, 2)
	n := g.N()
	k := 3
	seed := uint64(31)
	global, err := Build(g, k, n, seed)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for v := 0; v < n; v++ {
		// Ball of hop radius k+2 around v.
		hop := g.HopDistances(v)
		ball := graph.New(n)
		for _, e := range g.Edges() {
			if hop[e.U] <= k+2 && hop[e.V] <= k+2 {
				ball.MustAddEdge(e.U, e.V, e.Latency)
			}
		}
		local, err := Build(ball, k, n, seed)
		if err != nil {
			t.Fatalf("Build(ball %d): %v", v, err)
		}
		want := map[graph.NodeID]bool{}
		for _, oe := range global.Out[v] {
			want[oe.To] = true
		}
		got := map[graph.NodeID]bool{}
		for _, oe := range local.Out[v] {
			got[oe.To] = true
		}
		// Out-edges may be recorded at the other endpoint when both rules
		// add the same undirected edge, so compare undirected membership.
		for to := range want {
			if !local.Has(v, to) {
				t.Errorf("node %d: edge to %d in global but not ball-restricted spanner", v, to)
			}
		}
		for to := range got {
			if !global.Has(v, to) {
				t.Errorf("node %d: edge to %d in ball-restricted but not global spanner", v, to)
			}
		}
	}
}

func TestQuickSpannerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(16)
		k := 2 + r.Intn(3)
		g := graph.RandomLatencies(graph.GNP(n, 0.4, 1, true, uint64(seed)), 1, 6, uint64(seed))
		sp, err := Build(g, k, n, uint64(seed))
		if err != nil {
			return false
		}
		// Subgraph: every spanner edge exists in g with matching latency.
		for _, out := range sp.Out {
			for _, oe := range out {
				l, ok := g.EdgeLatency(oe.From, oe.To)
				if !ok || l != oe.Latency {
					return false
				}
			}
		}
		// Connected and within stretch bound.
		if !sp.UndirectedGraph().Connected() {
			return false
		}
		return Stretch(g, sp) <= float64(2*k-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
