package spanner

import (
	"testing"

	"gossip/internal/graph"
)

// TestClusterHierarchy validates the Baswana–Sen clustering invariants on
// the recorded trace:
//
//  1. initial clustering is the identity;
//  2. a vertex's center after iteration i is either unchanged (its cluster
//     was sampled), a center that was sampled at iteration i, or −1 (left V′);
//  3. once unclustered, always unclustered;
//  4. the live cluster count is non-increasing.
func TestClusterHierarchy(t *testing.T) {
	g := graph.GNP(48, 0.25, 1, true, 7)
	k := 4
	seed := uint64(13)
	_, detail, err := BuildDetailed(g, k, g.N(), seed)
	if err != nil {
		t.Fatalf("BuildDetailed: %v", err)
	}
	if len(detail.Centers) != k { // initial + k-1 iterations
		t.Fatalf("recorded %d clusterings, want %d", len(detail.Centers), k)
	}
	for v, c := range detail.Centers[0] {
		if c != v {
			t.Fatalf("initial center of %d = %d, want identity", v, c)
		}
	}
	for i := 1; i < len(detail.Centers); i++ {
		prev, cur := detail.Centers[i-1], detail.Centers[i]
		for v := range cur {
			switch {
			case prev[v] < 0:
				if cur[v] >= 0 {
					t.Errorf("iter %d: node %d re-entered V′", i, v)
				}
			case cur[v] < 0:
				// Left V′ this iteration: its old cluster must NOT have been
				// sampled (else it would have stayed).
				if SampleCoin(g.N(), k, seed, prev[v], i) {
					t.Errorf("iter %d: node %d left V′ although its cluster %d was sampled", i, v, prev[v])
				}
			case cur[v] == prev[v]:
				// Stayed: its cluster must have been sampled.
				if !SampleCoin(g.N(), k, seed, prev[v], i) {
					t.Errorf("iter %d: node %d kept unsampled center %d", i, v, prev[v])
				}
			default:
				// Joined a new cluster: the new center must be sampled.
				if !SampleCoin(g.N(), k, seed, cur[v], i) {
					t.Errorf("iter %d: node %d joined unsampled cluster %d", i, v, cur[v])
				}
			}
		}
		if detail.DistinctCenters(i) > detail.DistinctCenters(i-1) {
			t.Errorf("iter %d: cluster count grew %d -> %d", i,
				detail.DistinctCenters(i-1), detail.DistinctCenters(i))
		}
	}
}

// TestClusterDecay checks the geometric decay of the expected cluster count
// (the mechanism behind the O(k·n^{1+1/k}) size bound): after iteration i,
// roughly n·p^i clusters survive, p = n^{-1/k}.
func TestClusterDecay(t *testing.T) {
	g := graph.Clique(128, 1)
	k := 3
	_, detail, err := BuildDetailed(g, k, g.N(), 21)
	if err != nil {
		t.Fatalf("BuildDetailed: %v", err)
	}
	n := float64(g.N())
	p := 1.0 / cubeRoot(n)
	for i := 1; i < len(detail.Centers); i++ {
		expected := n
		for j := 0; j < i; j++ {
			expected *= p
		}
		got := float64(detail.DistinctCenters(i))
		if got > 6*expected+8 {
			t.Errorf("iter %d: %g live clusters, expected ≈ %g", i, got, expected)
		}
	}
}

func cubeRoot(x float64) float64 {
	r := x
	for i := 0; i < 60; i++ {
		r = (2*r + x/(r*r)) / 3
	}
	return r
}
