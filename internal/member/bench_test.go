package member

import (
	"sort"
	"testing"
)

// quantile returns the q-quantile (0..1) of xs by nearest-rank.
func quantile(xs []int, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	i := int(q * float64(len(s)-1))
	return float64(s[i])
}

// BenchmarkMembershipConvergence measures a 64-node single-seed join to full
// convergence, reporting ticks and packets alongside wall time.
func BenchmarkMembershipConvergence(b *testing.B) {
	var ticks, sent float64
	for i := 0; i < b.N; i++ {
		c := NewCluster(64, Config{Seed: uint64(i + 1)}, nil)
		took := c.RunUntil(4*c.Config().SyncInterval, c.Converged)
		if took < 0 {
			b.Fatal("cluster failed to converge")
		}
		ticks += float64(took)
		sent += float64(c.Sent)
	}
	b.ReportMetric(ticks/float64(b.N), "ticks-to-converge/op")
	b.ReportMetric(sent/float64(b.N), "msgs/op")
}

// BenchmarkMembershipDetection crashes one node of a converged 64-node
// cluster and measures per-observer detection latency, reporting the p50 and
// p99 ticks-to-detect metrics that benchreport regression-gates.
func BenchmarkMembershipDetection(b *testing.B) {
	var all []int
	for i := 0; i < b.N; i++ {
		c := NewCluster(64, Config{Seed: uint64(i + 1), Record: true}, nil)
		if c.RunUntil(4*c.Config().SyncInterval, c.Converged) < 0 {
			b.Fatal("cluster failed to converge")
		}
		victim := 1 + i%63
		crashTick := c.Now()
		c.Crash(victim)
		bound := c.Config().DetectionBound(64)
		if c.RunUntil(bound, func() bool { return c.AllBelieve(victim, Dead) }) < 0 {
			b.Fatal("crash undetected within bound")
		}
		all = append(all, c.DetectionTicks(victim, crashTick)...)
	}
	b.ReportMetric(quantile(all, 0.50), "p50-detect-ticks/op")
	b.ReportMetric(quantile(all, 0.99), "p99-detect-ticks/op")
}

// BenchmarkMembershipChurn runs the sustained crash/restart schedule of the
// churn experiments: per iteration one crash detected cluster-wide plus one
// restart re-admitted, on a 32-node cluster.
func BenchmarkMembershipChurn(b *testing.B) {
	c := NewCluster(32, Config{Seed: 1, Record: true}, nil)
	if c.RunUntil(4*c.Config().SyncInterval, c.Converged) < 0 {
		b.Fatal("cluster failed to converge")
	}
	bound := c.Config().DetectionBound(32)
	var all []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := 1 + i%31
		crashTick := c.Now()
		c.Crash(victim)
		if c.RunUntil(bound, func() bool { return c.AllBelieve(victim, Dead) }) < 0 {
			b.Fatal("crash undetected within bound")
		}
		all = append(all, c.DetectionTicks(victim, crashTick)...)
		c.Restart(victim, []int{0})
		if c.RunUntil(4*c.Config().SyncInterval, func() bool { return c.AllBelieve(victim, Alive) }) < 0 {
			b.Fatal("restart not re-admitted")
		}
	}
	b.StopTimer()
	b.ReportMetric(quantile(all, 0.50), "p50-detect-ticks/op")
	b.ReportMetric(quantile(all, 0.99), "p99-detect-ticks/op")
}

// BenchmarkMembershipTick isolates the per-tick cost of one node's detector
// in a 64-member view — the overhead membership adds to every live tick.
func BenchmarkMembershipTick(b *testing.B) {
	cfg := Config{Seed: 1, N: 64}.Defaulted()
	nd := New(0, nil, cfg)
	for v := 1; v < 64; v++ {
		nd.Receive(Packet{Kind: PktSyncAck, From: v, Updates: []Update{{Node: v, St: Alive, Inc: 1}}}, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd.Tick(i + 1)
	}
}

// BenchmarkMembershipPacketCodec round-trips a piggybacked ping through the
// wire form.
func BenchmarkMembershipPacketCodec(b *testing.B) {
	p := Packet{Kind: PktPing, From: 3, Origin: 3, Subject: 9, Seq: 77}
	for v := 0; v < DefaultMaxPiggyback; v++ {
		p.Updates = append(p.Updates, Update{Node: v * 97, St: State(v % 3), Inc: uint32(v)})
	}
	b.ReportAllocs()
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendBinary(buf[:0])
		if _, err := DecodePacket(buf); err != nil {
			b.Fatal(err)
		}
	}
}
