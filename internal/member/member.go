// Package member is the SWIM-style dynamic membership and failure-detection
// layer: every node keeps a local view of which peers are alive, suspected,
// or dead, maintained purely by gossip — periodic probes, indirect ping-reqs
// through relays, suspicion timeouts, and piggybacked membership deltas on
// the traffic the detector sends anyway. No node is *told* who crashed; the
// cluster detects it.
//
// The protocol is the classic SWIM shape (Das, Gupta, Motivala 2002) with
// the suspicion refinement:
//
//   - every ProbeInterval ticks a node pings the next member of a randomly
//     shuffled round-robin order; an unanswered ping escalates to ping-req
//     relays, and an unanswered interval marks the target *suspected*;
//   - a suspicion that survives SuspicionTicks() becomes a *dead*
//     declaration; both transitions are disseminated as deltas;
//   - every delta carries the subject's incarnation number. A node that
//     hears itself suspected or declared dead refutes by incrementing its
//     own incarnation and gossiping a fresher alive record — alive{i}
//     overrides suspect{j} and dead{j} exactly when i > j, so a false
//     positive heals and a recovered process re-admits itself;
//   - deltas piggyback on ping/ack/ping-req packets, at most MaxPiggyback
//     per packet, each delta rebroadcast a logarithmic number of times —
//     dissemination costs no messages of its own;
//   - join and budget-expiry gaps are repaired by anti-entropy: a joining
//     node full-syncs with its seed peers, and every SyncInterval ticks each
//     node full-syncs with one random live member.
//
// The package is deterministic by construction: all timing is integer ticks
// supplied by the caller, and all randomness (probe order shuffles, relay
// and sync-partner choices) draws from rng streams seeded by (Config.Seed,
// node ID). Two runs that deliver the same packets at the same ticks produce
// byte-identical membership event logs — the property the live runtime's
// chaos tests and the churn experiments assert.
package member

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"gossip/internal/rng"
)

// State is a member's health in a local view. The zero value is Alive so a
// bare Update{Node: v} reads as "v joined".
type State uint8

const (
	// Alive members are believed up (confirmed by probes or gossip).
	Alive State = iota
	// Suspect members missed a probe interval and are on the suspicion
	// clock; they count as members until the clock expires.
	Suspect
	// Dead members were declared failed. Only an alive record with a higher
	// incarnation — a refutation or a rejoin — revives them.
	Dead
)

// String returns the state's lowercase name.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Update is one membership delta: node v is in the given state at the given
// incarnation. Updates are what piggybacks on packets and what Merge applies
// under the SWIM precedence rules.
type Update struct {
	Node int
	St   State
	Inc  uint32
}

// Event is one local view transition, the unit of the membership event log:
// at Tick, the observer started believing Node is in state St at incarnation
// Inc. Same seed and same packet schedule imply an identical event sequence.
type Event struct {
	Tick int
	Node int
	St   State
	Inc  uint32
}

// String formats the event in the stable log form.
func (e Event) String() string {
	return fmt.Sprintf("t=%d node=%d %s inc=%d", e.Tick, e.Node, e.St, e.Inc)
}

// Config tunes a membership node. The zero value is usable: Defaulted()
// fills every field the caller leaves zero.
type Config struct {
	// Seed drives the node's probe-order shuffles and relay choices. All
	// nodes of one cluster share the seed; per-node streams are derived
	// from (Seed, node ID).
	Seed uint64
	// N is the ID-space upper bound (node IDs are 0..N-1).
	N int
	// ProbeInterval is the number of ticks between a node's probes
	// (default DefaultProbeInterval).
	ProbeInterval int
	// ProbeTimeout is how many ticks a direct ping may go unanswered
	// before ping-req relays are engaged (default ProbeInterval/2, min 1).
	// It must leave room inside the interval for the indirect round trip.
	ProbeTimeout int
	// SuspicionMult scales the suspicion timeout:
	// SuspicionTicks = SuspicionMult · ProbeInterval · ⌈log₂ N⌉
	// (default DefaultSuspicionMult).
	SuspicionMult int
	// IndirectK is the number of ping-req relays per escalation (default
	// DefaultIndirectK).
	IndirectK int
	// MaxPiggyback bounds the membership deltas carried per packet — the
	// piggyback budget per frame (default DefaultMaxPiggyback).
	MaxPiggyback int
	// RetransmitMult scales each delta's rebroadcast budget:
	// budget = RetransmitMult · ⌈log₂ N⌉ piggybacks (default
	// DefaultRetransmitMult).
	RetransmitMult int
	// SyncInterval is the anti-entropy period: every SyncInterval ticks a
	// node exchanges full tables with one random live member (default
	// 8·ProbeInterval; negative disables periodic sync).
	SyncInterval int
	// Record keeps the event log (Events/EventLog). Tests and experiments
	// set it; long-lived daemons leave it off to bound memory.
	Record bool
	// OnChange, when non-nil, is invoked on every local view transition —
	// the same transitions the event log records, including the ones Record
	// leaves unlogged. The live runtime uses it to feed membership verdicts
	// to the transport's peer circuit breakers. It is called with the node's
	// lock held: it must be fast and must not call back into the Node.
	OnChange func(v int, st State, inc uint32)
}

// Membership defaults.
const (
	DefaultProbeInterval  = 4
	DefaultSuspicionMult  = 3
	DefaultIndirectK      = 2
	DefaultMaxPiggyback   = 6
	DefaultRetransmitMult = 3
)

// Defaulted returns the config with every zero field replaced by its
// default.
func (c Config) Defaulted() Config {
	if c.N < 1 {
		c.N = 1
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval / 2
		if c.ProbeTimeout < 1 {
			c.ProbeTimeout = 1
		}
	}
	if c.SuspicionMult <= 0 {
		c.SuspicionMult = DefaultSuspicionMult
	}
	if c.IndirectK <= 0 {
		c.IndirectK = DefaultIndirectK
	}
	if c.MaxPiggyback <= 0 {
		c.MaxPiggyback = DefaultMaxPiggyback
	}
	if c.RetransmitMult <= 0 {
		c.RetransmitMult = DefaultRetransmitMult
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 8 * c.ProbeInterval
	}
	return c
}

// ceilLog2 returns ⌈log₂ n⌉ for n >= 1, and 1 for n <= 2 (so budgets and
// timeouts never degenerate to zero in tiny clusters).
func ceilLog2(n int) int {
	l, p := 0, 1
	for p < n {
		p <<= 1
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// SuspicionTicks returns the suspicion timeout in ticks: how long a suspect
// may linger before the local view declares it dead. The churn tests assert
// detection latency against DetectionBound, which is built from this.
func (c Config) SuspicionTicks() int {
	c = c.Defaulted()
	return c.SuspicionMult * c.ProbeInterval * ceilLog2(c.N)
}

// DetectionBound returns a worst-case bound, in ticks, for every one of m
// live members to declare a crashed node dead: one full round-robin cycle
// for the slowest prober to reach the target (m·ProbeInterval), the
// suspicion timeout, and a dissemination+latency slack of one more
// logarithmic epoch. The deterministic chaos tests assert measured
// detection latency stays under this.
func (c Config) DetectionBound(m int) int {
	c = c.Defaulted()
	if m < 1 {
		m = 1
	}
	cycle := m * c.ProbeInterval
	slack := (c.SuspicionMult + c.RetransmitMult) * c.ProbeInterval * ceilLog2(m)
	return cycle + c.SuspicionTicks() + slack
}

// entry is one row of the local membership table.
type entry struct {
	known       bool
	st          State
	inc         uint32
	suspectedAt int // tick the local view marked it Suspect
}

// queued is one delta awaiting piggyback, with its rebroadcast budget.
type queued struct {
	up   Update
	left int
}

// Node is one member's failure detector and membership table. All methods
// are safe for concurrent use: the owner drives Tick/Receive from its own
// goroutine while observers (the live runtime's watcher, debug dumps) read
// StateOf/Snapshot.
type Node struct {
	mu  sync.Mutex
	cfg Config
	id  int
	rng *rand.Rand

	now     int
	inc     uint32 // own incarnation
	entries []entry

	probeOrder []int // shuffled round-robin probe order
	probeIdx   int
	seq        uint32
	target     int // outstanding probe target (-1 = none)
	targetSeq  uint32
	sentAt     int
	indirected bool
	acked      bool

	queue    []queued
	events   []Event
	joinSync []int // seeds to full-sync with on the first tick
	left     bool  // gracefully departed: no probing, no refutation
}

// memberSeedSalt separates the membership streams from the protocol streams
// that already use rng.Stream(seed, node).
const memberSeedSalt = 0x6d656d6272 // "membr"

// New builds the membership node for id, bootstrapped from the given seed
// peers (it believes only itself and the seeds exist until gossip teaches it
// more). A node restarted after a crash calls New again: state is lost, the
// incarnation restarts at zero, and the refutation rule re-admits it.
func New(id int, seeds []int, cfg Config) *Node {
	cfg = cfg.Defaulted()
	nd := &Node{
		cfg:     cfg,
		id:      id,
		rng:     rng.Stream(rng.Hash(cfg.Seed, memberSeedSalt), uint64(id)),
		entries: make([]entry, cfg.N),
		target:  -1,
	}
	if id >= 0 && id < cfg.N {
		nd.entries[id] = entry{known: true, st: Alive}
	}
	for _, s := range seeds {
		if s == id || s < 0 || s >= cfg.N {
			continue
		}
		if !nd.entries[s].known {
			nd.joinSync = append(nd.joinSync, s)
		}
		nd.entries[s] = entry{known: true, st: Alive}
	}
	// Announce ourselves: the join delta rides our first probes and syncs.
	nd.enqueueLocked(Update{Node: id, St: Alive, Inc: 0})
	return nd
}

// ID returns the node's own ID.
func (nd *Node) ID() int { return nd.id }

// Incarnation returns the node's own incarnation number.
func (nd *Node) Incarnation() uint32 {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.inc
}

// StateOf returns the local view of v. known is false while v has never been
// heard of.
func (nd *Node) StateOf(v int) (st State, inc uint32, known bool) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if v < 0 || v >= len(nd.entries) || !nd.entries[v].known {
		return 0, 0, false
	}
	e := nd.entries[v]
	return e.st, e.inc, true
}

// Counts returns the number of known members in each state (self included).
func (nd *Node) Counts() (alive, suspect, dead int) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	for i := range nd.entries {
		if !nd.entries[i].known {
			continue
		}
		switch nd.entries[i].st {
		case Alive:
			alive++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	return
}

// Snapshot returns the full table as updates, sorted by node ID — the
// payload of a sync packet and the shape debug dumps print.
func (nd *Node) Snapshot() []Update {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.snapshotLocked()
}

func (nd *Node) snapshotLocked() []Update {
	ups := make([]Update, 0, len(nd.entries))
	for v := range nd.entries {
		if !nd.entries[v].known {
			continue
		}
		e := nd.entries[v]
		ups = append(ups, Update{Node: v, St: e.st, Inc: e.inc})
	}
	return ups
}

// Events returns a copy of the event log (empty unless Config.Record).
func (nd *Node) Events() []Event {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return append([]Event(nil), nd.events...)
}

// EventLog renders the event log one event per line — the byte-comparable
// form the determinism tests diff.
func (nd *Node) EventLog() string {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	var b strings.Builder
	for _, e := range nd.events {
		fmt.Fprintf(&b, "%s\n", e)
	}
	return b.String()
}

// record notes a view transition. Events are the determinism surface, so
// they are appended only under Record; the OnChange hook always fires.
func (nd *Node) record(v int, st State, inc uint32) {
	if nd.cfg.Record {
		nd.events = append(nd.events, Event{Tick: nd.now, Node: v, St: st, Inc: inc})
	}
	if nd.cfg.OnChange != nil {
		nd.cfg.OnChange(v, st, inc)
	}
}

// enqueueLocked queues a delta for piggyback with a fresh rebroadcast
// budget, replacing any staler queued delta about the same node.
func (nd *Node) enqueueLocked(up Update) {
	budget := nd.cfg.RetransmitMult * ceilLog2(nd.memberCountLocked())
	for i := range nd.queue {
		if nd.queue[i].up.Node == up.Node {
			nd.queue[i] = queued{up: up, left: budget}
			return
		}
	}
	nd.queue = append(nd.queue, queued{up: up, left: budget})
}

// memberCountLocked counts known non-dead members (min 2 so budgets never
// degenerate).
func (nd *Node) memberCountLocked() int {
	n := 0
	for i := range nd.entries {
		if nd.entries[i].known && nd.entries[i].st != Dead {
			n++
		}
	}
	if n < 2 {
		n = 2
	}
	return n
}

// piggybackLocked selects up to MaxPiggyback queued deltas — freshest (most
// budget) first, ties by node ID for determinism — decrements their budgets,
// and drops the exhausted ones.
func (nd *Node) piggybackLocked() []Update {
	if len(nd.queue) == 0 {
		return nil
	}
	sort.SliceStable(nd.queue, func(i, j int) bool {
		if nd.queue[i].left != nd.queue[j].left {
			return nd.queue[i].left > nd.queue[j].left
		}
		return nd.queue[i].up.Node < nd.queue[j].up.Node
	})
	k := nd.cfg.MaxPiggyback
	if k > len(nd.queue) {
		k = len(nd.queue)
	}
	ups := make([]Update, k)
	for i := 0; i < k; i++ {
		ups[i] = nd.queue[i].up
		nd.queue[i].left--
	}
	live := nd.queue[:0]
	for _, q := range nd.queue {
		if q.left > 0 {
			live = append(live, q)
		}
	}
	nd.queue = live
	return ups
}

// applyLocked merges one delta under the SWIM precedence rules and reports
// whether the local view changed. Refutation: a suspect/dead claim about
// ourselves at our own (or higher) incarnation bumps our incarnation and
// gossips a fresher alive record instead of being believed.
func (nd *Node) applyLocked(up Update) bool {
	if up.Node < 0 || up.Node >= len(nd.entries) {
		return false
	}
	if up.Node == nd.id {
		if nd.left {
			// A departed node does not refute: the dead record it broadcast
			// on Leave is the truth, and fighting stragglers would undo it.
			return false
		}
		if up.St != Alive && up.Inc >= nd.inc {
			nd.inc = up.Inc + 1
			nd.entries[nd.id] = entry{known: true, st: Alive, inc: nd.inc}
			nd.enqueueLocked(Update{Node: nd.id, St: Alive, Inc: nd.inc})
			nd.record(nd.id, Alive, nd.inc)
			return true
		}
		return false
	}
	e := &nd.entries[up.Node]
	applies := false
	switch {
	case !e.known:
		applies = true
	case up.St == Alive:
		// A fresher incarnation overrides anything, including a dead
		// record — that is how a refutation heals a false positive and a
		// restarted process re-admits itself.
		applies = up.Inc > e.inc
	case up.St == Suspect:
		switch e.st {
		case Alive:
			applies = up.Inc >= e.inc
		case Suspect:
			applies = up.Inc > e.inc
		}
	case up.St == Dead:
		applies = e.st != Dead && up.Inc >= e.inc
	}
	if !applies {
		return false
	}
	*e = entry{known: true, st: up.St, inc: up.Inc, suspectedAt: nd.now}
	nd.enqueueLocked(up)
	nd.record(up.Node, up.St, up.Inc)
	return true
}

// learnSenderLocked admits an unknown packet sender as alive at incarnation
// zero — a joining node becomes visible from its very first probe even
// before its alive delta is merged.
func (nd *Node) learnSenderLocked(from int) {
	if from < 0 || from >= len(nd.entries) || from == nd.id || nd.entries[from].known {
		return
	}
	nd.applyLocked(Update{Node: from, St: Alive, Inc: 0})
}

// aliveMembersLocked lists the known live (alive or suspect) members other
// than self and excl, in ascending ID order.
func (nd *Node) aliveMembersLocked(excl int) []int {
	var ids []int
	for v := range nd.entries {
		if v == nd.id || v == excl {
			continue
		}
		if nd.entries[v].known && nd.entries[v].st != Dead {
			ids = append(ids, v)
		}
	}
	return ids
}

// Tick advances the detector to tick now and returns the packets to send:
// suspicion expiries, probe-timeout escalations, the interval's probe
// verdict and next ping, and the periodic anti-entropy sync. The caller
// delivers the envelopes through its transport.
func (nd *Node) Tick(now int) []Envelope {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.now = now
	if nd.left {
		return nil // departed: no probes, no syncs
	}
	var out []Envelope

	// 0. Join: full-sync with the seed peers straight away, so a fresh
	// node converges on the existing view (and hears any dead record about
	// itself to refute) without waiting out a sync period.
	if len(nd.joinSync) > 0 {
		for _, s := range nd.joinSync {
			out = append(out, Envelope{To: s, Pkt: Packet{
				Kind: PktSync, From: nd.id, Origin: nd.id,
				Updates: nd.snapshotLocked(),
			}})
		}
		nd.joinSync = nil
	}

	// 1. Suspicion clocks: a suspect that outlived the timeout is declared
	// dead and the declaration disseminated.
	timeout := nd.cfg.SuspicionTicks()
	for v := range nd.entries {
		e := &nd.entries[v]
		if v != nd.id && e.known && e.st == Suspect && now-e.suspectedAt >= timeout {
			e.st = Dead
			nd.enqueueLocked(Update{Node: v, St: Dead, Inc: e.inc})
			nd.record(v, Dead, e.inc)
		}
	}

	// 2. Direct-probe timeout: escalate to IndirectK ping-req relays.
	if nd.target >= 0 && !nd.acked && !nd.indirected && now-nd.sentAt >= nd.cfg.ProbeTimeout {
		nd.indirected = true
		relays := nd.aliveMembersLocked(nd.target)
		nd.rng.Shuffle(len(relays), func(i, j int) { relays[i], relays[j] = relays[j], relays[i] })
		k := nd.cfg.IndirectK
		if k > len(relays) {
			k = len(relays)
		}
		for _, r := range relays[:k] {
			out = append(out, Envelope{To: r, Pkt: Packet{
				Kind: PktPingReq, From: nd.id, Origin: nd.id, Subject: nd.target,
				Seq: nd.targetSeq, Updates: nd.piggybackLocked(),
			}})
		}
	}

	// 3. Probe interval boundary (staggered by ID so a cluster's probes
	// don't fire in lockstep): settle the outstanding probe, then ping the
	// next member of the shuffled round-robin order.
	if (now+nd.id)%nd.cfg.ProbeInterval == 0 {
		if nd.target >= 0 && !nd.acked {
			e := &nd.entries[nd.target]
			if e.known && e.st == Alive {
				e.st = Suspect
				e.suspectedAt = now
				nd.enqueueLocked(Update{Node: nd.target, St: Suspect, Inc: e.inc})
				nd.record(nd.target, Suspect, e.inc)
			}
		}
		nd.target = -1
		if t, ok := nd.nextProbeTargetLocked(); ok {
			nd.seq++
			nd.target, nd.targetSeq, nd.sentAt = t, nd.seq, now
			nd.indirected, nd.acked = false, false
			out = append(out, Envelope{To: t, Pkt: Packet{
				Kind: PktPing, From: nd.id, Origin: nd.id, Subject: t,
				Seq: nd.seq, Updates: nd.piggybackLocked(),
			}})
		}
	}

	// 4. Periodic anti-entropy: full-table exchange with one random live
	// member repairs anything the bounded piggyback budgets let expire.
	if nd.cfg.SyncInterval > 0 && (now+nd.id)%nd.cfg.SyncInterval == 0 {
		if peers := nd.aliveMembersLocked(-1); len(peers) > 0 {
			p := peers[nd.rng.Intn(len(peers))]
			out = append(out, Envelope{To: p, Pkt: Packet{
				Kind: PktSync, From: nd.id, Origin: nd.id,
				Updates: nd.snapshotLocked(),
			}})
		}
	}
	return out
}

// Leave gracefully departs the cluster at tick now: the node marks itself
// dead at its current incarnation and returns sync packets carrying the
// record to a logarithmic fanout of live members, so the cluster converges on
// the departure without waiting out a suspicion timeout. After Leave the
// detector is inert — Tick sends nothing and Receive answers nothing — and
// the node never refutes the dead record it just published. Idempotent: the
// second call returns nil.
func (nd *Node) Leave(now int) []Envelope {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.now = now
	if nd.left {
		return nil
	}
	nd.left = true
	nd.entries[nd.id] = entry{known: true, st: Dead, inc: nd.inc}
	nd.record(nd.id, Dead, nd.inc)
	nd.enqueueLocked(Update{Node: nd.id, St: Dead, Inc: nd.inc})
	peers := nd.aliveMembersLocked(-1)
	nd.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	fanout := 2 * ceilLog2(nd.memberCountLocked())
	if fanout > len(peers) {
		fanout = len(peers)
	}
	var out []Envelope
	snap := nd.snapshotLocked()
	for _, p := range peers[:fanout] {
		out = append(out, Envelope{To: p, Pkt: Packet{
			Kind: PktSync, From: nd.id, Origin: nd.id, Updates: snap,
		}})
	}
	return out
}

// Left reports whether the node has gracefully departed via Leave.
func (nd *Node) Left() bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.left
}

// nextProbeTargetLocked pops the next live member of the round-robin order,
// reshuffling (seeded) when the order is exhausted — every member is probed
// exactly once per cycle, in an order no adversaryless schedule can bias.
func (nd *Node) nextProbeTargetLocked() (int, bool) {
	for tries := 0; tries < 2; tries++ {
		for nd.probeIdx < len(nd.probeOrder) {
			t := nd.probeOrder[nd.probeIdx]
			nd.probeIdx++
			e := nd.entries[t]
			if e.known && e.st != Dead {
				return t, true
			}
		}
		nd.probeOrder = nd.aliveMembersLocked(-1)
		nd.rng.Shuffle(len(nd.probeOrder), func(i, j int) {
			nd.probeOrder[i], nd.probeOrder[j] = nd.probeOrder[j], nd.probeOrder[i]
		})
		nd.probeIdx = 0
		if len(nd.probeOrder) == 0 {
			return 0, false
		}
	}
	return 0, false
}

// Receive processes one incoming packet at tick now and returns the
// immediate replies (ack, relayed ping, sync answer). Every packet's
// piggybacked deltas are merged first, so even a reply-less packet advances
// the view.
func (nd *Node) Receive(pkt Packet, now int) []Envelope {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.now = now
	if nd.left {
		// Still merge what we hear (harmless), but answer nothing: peers'
		// probes to a departed node must time out exactly as for a crash,
		// and our acks would only delay the cluster learning we are gone.
		for _, up := range pkt.Updates {
			nd.applyLocked(up)
		}
		return nil
	}
	nd.learnSenderLocked(pkt.From)
	for _, up := range pkt.Updates {
		nd.applyLocked(up)
	}
	// A packet from a member we believe dead means it restarted (or we were
	// wrong): requeue the dead record so our reply carries it — the sender
	// refutes with a higher incarnation and re-admits itself.
	if f := pkt.From; f >= 0 && f < len(nd.entries) && f != nd.id &&
		nd.entries[f].known && nd.entries[f].st == Dead {
		nd.enqueueLocked(Update{Node: f, St: Dead, Inc: nd.entries[f].inc})
	}
	switch pkt.Kind {
	case PktPing:
		// Answer to the origin: a relayed ping's ack flows straight back
		// to the suspecting node.
		return []Envelope{{To: pkt.Origin, Pkt: Packet{
			Kind: PktAck, From: nd.id, Origin: nd.id, Subject: nd.id,
			Seq: pkt.Seq, Updates: nd.piggybackLocked(),
		}}}
	case PktAck:
		if nd.target >= 0 && pkt.Subject == nd.target && pkt.Seq == nd.targetSeq {
			nd.acked = true
		}
	case PktPingReq:
		nd.learnSenderLocked(pkt.Subject)
		return []Envelope{{To: pkt.Subject, Pkt: Packet{
			Kind: PktPing, From: nd.id, Origin: pkt.Origin, Subject: pkt.Subject,
			Seq: pkt.Seq, Updates: nd.piggybackLocked(),
		}}}
	case PktSync:
		return []Envelope{{To: pkt.From, Pkt: Packet{
			Kind: PktSyncAck, From: nd.id, Origin: nd.id,
			Updates: nd.snapshotLocked(),
		}}}
	case PktSyncAck:
		// Updates already merged above; nothing to send.
	}
	return nil
}
