package member

import (
	"encoding/binary"
	"fmt"
)

// PacketKind distinguishes the five SWIM message shapes.
type PacketKind uint8

const (
	// PktPing probes a member directly (or on behalf of Origin when
	// relayed by a ping-req).
	PktPing PacketKind = iota + 1
	// PktAck answers a ping; Subject is the node whose liveness it proves.
	PktAck
	// PktPingReq asks a relay to probe Subject on behalf of Origin.
	PktPingReq
	// PktSync requests a full-table anti-entropy exchange (carries the
	// sender's table).
	PktSync
	// PktSyncAck answers a sync with the receiver's full table.
	PktSyncAck
)

// String returns the kind's lowercase name.
func (k PacketKind) String() string {
	switch k {
	case PktPing:
		return "ping"
	case PktAck:
		return "ack"
	case PktPingReq:
		return "ping-req"
	case PktSync:
		return "sync"
	case PktSyncAck:
		return "sync-ack"
	}
	return fmt.Sprintf("PacketKind(%d)", uint8(k))
}

// Packet is one membership message. From is the sending node; Origin is the
// node the eventual ack must reach (differs from From on relayed pings);
// Subject is the node the packet is about (the probe target, the node an
// ack vouches for). Updates is the piggybacked delta batch, bounded by the
// sender's Config.MaxPiggyback (full tables for sync kinds).
type Packet struct {
	Kind    PacketKind
	From    int
	Origin  int
	Subject int
	Seq     uint32
	Updates []Update
}

// Envelope pairs a packet with its destination.
type Envelope struct {
	To  int
	Pkt Packet
}

// SizeBytes implements the simulator's payload accounting: the encoded
// length, so live metrics charge membership traffic its real wire cost.
func (p Packet) SizeBytes() int { return len(p.AppendBinary(nil)) }

// AppendBinary appends the packet's wire form to dst: a kind byte, the
// header fields as uvarints, then the delta count and per-delta
// (node, state, incarnation) triples. The same varint vocabulary as the
// live binary wire format, so a packet costs a few bytes plus ~3 per delta.
func (p Packet) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(p.Kind))
	dst = binary.AppendUvarint(dst, uint64(p.From))
	dst = binary.AppendUvarint(dst, uint64(p.Origin))
	dst = binary.AppendUvarint(dst, uint64(p.Subject))
	dst = binary.AppendUvarint(dst, uint64(p.Seq))
	dst = binary.AppendUvarint(dst, uint64(len(p.Updates)))
	for _, up := range p.Updates {
		dst = binary.AppendUvarint(dst, uint64(up.Node))
		dst = append(dst, byte(up.St))
		dst = binary.AppendUvarint(dst, uint64(up.Inc))
	}
	return dst
}

// maxPacketUpdates bounds the delta count a decoded packet may claim, so a
// corrupt or hostile length cannot trigger an oversized allocation.
const maxPacketUpdates = 1 << 16

// DecodePacket parses a packet from its wire form.
func DecodePacket(data []byte) (Packet, error) {
	bad := func(what string) (Packet, error) {
		return Packet{}, fmt.Errorf("member: malformed packet: %s", what)
	}
	if len(data) == 0 {
		return bad("empty")
	}
	p := Packet{Kind: PacketKind(data[0])}
	if p.Kind < PktPing || p.Kind > PktSyncAck {
		return bad(fmt.Sprintf("kind %d", data[0]))
	}
	off := 1
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	hdr := [4]*int{&p.From, &p.Origin, &p.Subject, nil}
	for i, dst := range hdr {
		v, ok := next()
		if !ok {
			return bad("header")
		}
		if i == 3 {
			p.Seq = uint32(v)
		} else {
			*dst = int(v)
		}
	}
	count, ok := next()
	if !ok || count > maxPacketUpdates {
		return bad("delta count")
	}
	if count > 0 {
		p.Updates = make([]Update, count)
		for i := range p.Updates {
			v, ok := next()
			if !ok || off >= len(data) {
				return bad("delta")
			}
			st := State(data[off])
			off++
			if st > Dead {
				return bad("delta state")
			}
			inc, ok2 := next()
			if !ok2 {
				return bad("delta incarnation")
			}
			p.Updates[i] = Update{Node: int(v), St: st, Inc: uint32(inc)}
		}
	}
	if off != len(data) {
		return bad("trailing bytes")
	}
	return p, nil
}
